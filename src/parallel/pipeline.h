#ifndef WIMPI_PARALLEL_PIPELINE_H_
#define WIMPI_PARALLEL_PIPELINE_H_

#include <cstdint>
#include <functional>

#include "parallel/cancellation.h"
#include "parallel/task_scheduler.h"

namespace wimpi::parallel {

// One pipeline: a single parallel phase of a query, expressed as a
// deterministic morsel loop (the DuckDB pipeline/executor split applied to
// this column-at-a-time engine: every parallel operator phase — a scan
// filter, a hash build, a probe, a partial-aggregation pass — is one
// independently schedulable unit, and a query is the DAG of such units its
// plan produces; the hand-written plans yield chain-shaped DAGs, one
// pipeline after another, discovered as the plan executes).
//
// The spec only borrows its pointers: `body` and `cancel` must stay valid
// until RunPipeline returns (they are the caller's stack; RunPipeline
// blocks until the pipeline has drained, so this holds naturally).
struct PipelineSpec {
  int64_t total_rows = 0;
  int64_t morsel_rows = kDefaultMorselRows;
  // Maximum concurrent morsels, counting the driving thread.
  int max_threads = 1;
  const std::function<void(const Morsel&)>* body = nullptr;
  const CancellationToken* cancel = nullptr;
};

// Where a query's pipelines go to be executed. The operator library hands
// every parallel phase to the scheduler installed in the ambient
// exec::ExecOptions; with none installed it uses Default(), which runs the
// morsel loop on TaskScheduler::Global() exactly as the pre-service engine
// did. The service's FairPipelineScheduler implements this interface to
// interleave many queries' morsel tasks over the same shared pool.
//
// Contract every implementation must honour (it is what keeps answers
// bit-identical across schedulers): morsel boundaries come from
// SplitMorsels(total_rows, morsel_rows) only; every morsel runs at most
// once; RunPipeline returns after all claimed morsels finished; when
// `cancel` fires, unclaimed morsels are skipped and RunPipeline returns
// normally (the caller owns the token and discards the partial work); a
// body exception aborts the pipeline and is rethrown on the caller as a
// TaskError naming the operator and morsel.
class PipelineScheduler {
 public:
  virtual ~PipelineScheduler() = default;

  // Blocks until the pipeline has drained (all morsels run, or the rest
  // skipped after cancellation / a body error).
  virtual void RunPipeline(const PipelineSpec& spec) = 0;

  // Process-default scheduler (single-query behaviour): delegates to
  // TaskScheduler::Global().RunMorsels.
  static PipelineScheduler& Default();
};

// Runs one morsel body, converting any escaping exception into a TaskError
// that names the operator and morsel (an incoming TaskError is forwarded
// untouched — it already carries the most specific context). Shared by the
// default and the fair scheduler so failure attribution is identical on
// both paths.
void RunPipelineMorsel(const std::function<void(const Morsel&)>& body,
                       const Morsel& m, const char* label);

}  // namespace wimpi::parallel

#endif  // WIMPI_PARALLEL_PIPELINE_H_
