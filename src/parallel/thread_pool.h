#ifndef WIMPI_PARALLEL_THREAD_POOL_H_
#define WIMPI_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/tracing/span.h"
#include "parallel/cancellation.h"

namespace wimpi::obs {
class Gauge;
}  // namespace wimpi::obs

namespace wimpi::parallel {

// A fixed set of worker threads draining a shared task queue (the classic
// condvar-guarded deque; a morsel-driven scheduler on top of this gets the
// load-balancing benefits of work stealing without per-thread deques,
// because tasks are already small and uniform).
//
// Idle workers (and an idle query service above them) consume no CPU:
// every wait in this file blocks on cv_ under mu_ — there is no polling
// loop anywhere on the idle path. With the pool metrics hooks enabled the
// "pool.queue_depth" gauge tracks the current queue length next to the
// existing queue-wait histogram, so a saturated (or wedged) service is
// visible from a metrics snapshot.
//
// Blocking rules that keep nested use deadlock-free:
//  * Submit() never blocks (it only enqueues).
//  * ParallelFor() called from a worker thread runs entirely inline on that
//    thread instead of waiting on the pool, so a task that fans out again
//    can never wait for a worker slot it is itself occupying.
class ThreadPool {
 public:
  // `num_threads` <= 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Enqueues `fn`; the future carries any exception it throws.
  std::future<void> Submit(std::function<void()> fn);

  // Runs fn(i) for every i in [0, n). The calling thread participates, up
  // to `max_workers - 1` pool workers help (<= 0 means the whole pool).
  // Iterations are claimed dynamically (morsel-driven); the first exception
  // is rethrown on the caller after all claimed iterations finish, and
  // unclaimed iterations are abandoned. Foreign exceptions are rethrown as
  // TaskError with the failing iteration index attached (an escaping
  // TaskError already carries context and is forwarded unchanged).
  //
  // `cancel` (optional) is polled before each claimed iteration runs: once
  // cancelled, remaining iterations are skipped and ParallelFor returns
  // normally — the caller owns the token and knows the work is partial.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn,
                   int max_workers = 0,
                   const CancellationToken* cancel = nullptr);

  // True when the current thread is one of this process's pool workers
  // (any pool). Operators use it to refuse nested re-parallelization.
  static bool OnWorkerThread();

 private:
  // A queued task plus the instant it was enqueued (0 when the pool
  // metrics hooks were off at enqueue time, so the worker skips the
  // queue-wait sample for it) and the submitter's span context (empty when
  // tracing was off — the worker then opens no cross-thread parentage).
  struct QueuedTask {
    std::function<void()> fn;
    int64_t enqueue_us = 0;
    obs::SpanContext ctx;
  };

  void WorkerLoop(int worker_index);
  void Enqueue(std::function<void()> fn);  // caller must hold mu_
  void PublishQueueDepth();                // caller must hold mu_

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedTask> queue_;
  bool shutting_down_ = false;
  // "pool.queue_depth" gauge, resolved on first instrumented enqueue (the
  // registry reference is stable for process lifetime). Guarded by mu_.
  obs::Gauge* queue_depth_ = nullptr;
  std::vector<std::thread> workers_;
};

}  // namespace wimpi::parallel

#endif  // WIMPI_PARALLEL_THREAD_POOL_H_
