#ifndef WIMPI_PARALLEL_TASK_SCHEDULER_H_
#define WIMPI_PARALLEL_TASK_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "parallel/cancellation.h"
#include "parallel/thread_pool.h"

namespace wimpi::parallel {

// Rows per morsel. 64K rows keeps a morsel's working set (a few hundred KB
// for the widest operators) inside the LLC of every profile in Table I
// while leaving enough morsels per scan for dynamic load balancing — the
// HyPer/DuckDB sweet spot.
inline constexpr int64_t kDefaultMorselRows = 64 * 1024;

// One contiguous slice of a scan. `index` is the position of the morsel in
// the deterministic split of [0, total): operators write per-morsel partial
// results into slot `index` and merge slots in index order, so results and
// counters do not depend on which worker ran which morsel.
struct Morsel {
  int index = 0;
  int64_t begin = 0;
  int64_t end = 0;

  int64_t rows() const { return end - begin; }
};

// Deterministic split of [0, total) into morsels of `morsel_rows` (last one
// ragged). Independent of thread count.
std::vector<Morsel> SplitMorsels(int64_t total, int64_t morsel_rows);

// Schedules morsel loops and task graphs onto a ThreadPool. The engine uses
// one process-wide instance (Global()) so repeated queries reuse the same
// workers; tests may build private instances.
class TaskScheduler {
 public:
  // `num_threads` <= 0 means hardware concurrency.
  explicit TaskScheduler(int num_threads = 0) : pool_(num_threads) {}

  // Process-wide scheduler backed by hardware_concurrency workers. Created
  // on first use; engine knobs (exec::ExecOptions.num_threads) bound how
  // many of its workers any one operator employs.
  static TaskScheduler& Global();

  ThreadPool& pool() { return pool_; }

  // Runs body(morsel) for every morsel of [0, total) on up to `threads`
  // threads (including the caller). Morsel boundaries depend only on
  // `total` and `morsel_rows`, never on `threads`.
  //
  // A body exception aborts the loop (remaining morsels are skipped) and
  // is rethrown on the caller as a TaskError naming the operator label and
  // the morsel it came from. When `cancel` is given and fires, in-flight
  // morsels finish, the rest are skipped, and RunMorsels returns normally
  // — the cancelling driver owns the token and discards the partial work.
  void RunMorsels(int64_t total, int64_t morsel_rows, int threads,
                  const std::function<void(const Morsel&)>& body,
                  const CancellationToken* cancel = nullptr);

  // Runs a pipeline expressed as a task graph: node i starts once every
  // node in deps[i] has finished; independent nodes run concurrently.
  // CHECK-fails on cycles (some node never becomes ready). A node
  // exception is rethrown as a TaskError naming the node; a fired `cancel`
  // token makes not-yet-started nodes no-ops (the graph still "completes"
  // so the caller never blocks).
  void RunTaskGraph(const std::vector<std::function<void()>>& nodes,
                    const std::vector<std::vector<int>>& deps,
                    const CancellationToken* cancel = nullptr);

 private:
  ThreadPool pool_;
};

}  // namespace wimpi::parallel

#endif  // WIMPI_PARALLEL_TASK_SCHEDULER_H_
