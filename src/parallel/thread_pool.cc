#include "parallel/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <string>

#include "obs/clock.h"
#include "obs/flight/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace wimpi::parallel {

namespace {

thread_local bool t_on_worker_thread = false;

// Per-worker metric handles, resolved on first use so the registry mutex
// is taken once per worker, not per task. Only touched when the pool
// metrics hooks are enabled.
struct WorkerMetrics {
  obs::Counter* busy_us = nullptr;
  obs::Counter* idle_us = nullptr;
  obs::Counter* tasks = nullptr;
  obs::Histogram* queue_wait_us = nullptr;
  obs::Histogram* task_run_us = nullptr;

  void Ensure(int worker_index) {
    if (busy_us != nullptr) return;
    auto& reg = obs::MetricsRegistry::Global();
    const std::string w = "pool.worker" + std::to_string(worker_index);
    busy_us = &reg.counter(w + ".busy_us");
    idle_us = &reg.counter(w + ".idle_us");
    tasks = &reg.counter("pool.tasks");
    queue_wait_us = &reg.histogram("pool.task.queue_wait_us");
    task_run_us = &reg.histogram("pool.task.run_us");
  }
};

}  // namespace

bool ThreadPool::OnWorkerThread() { return t_on_worker_thread; }

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::PublishQueueDepth() {
  if (queue_depth_ == nullptr) {
    queue_depth_ = &obs::MetricsRegistry::Global().gauge("pool.queue_depth");
  }
  queue_depth_->Set(static_cast<double>(queue_.size()));
}

void ThreadPool::Enqueue(std::function<void()> fn) {
  QueuedTask task;
  task.fn = std::move(fn);
  const bool instrumented = obs::PoolMetricsEnabled();
  if (instrumented) task.enqueue_us = obs::NowMicros();
  // Carry the submitter's span context across the thread boundary so the
  // worker's task span joins the submitter's trace.
  if (obs::TraceSink::Global().enabled()) task.ctx = obs::CurrentSpanContext();
  queue_.push_back(std::move(task));
  if (instrumented) PublishQueueDepth();
}

void ThreadPool::WorkerLoop(int worker_index) {
  t_on_worker_thread = true;
  WorkerMetrics metrics;
  for (;;) {
    QueuedTask task;
    // One relaxed load decides whether this iteration reads clocks at all;
    // with the hooks off the loop is exactly the seed pool's.
    const bool instrumented = obs::PoolMetricsEnabled();
    const int64_t idle_start = instrumented ? obs::NowMicros() : 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      if (instrumented) PublishQueueDepth();
    }
    if (!instrumented) {
      task.fn();
      // Flight recorder is always on (one relaxed load + a few relaxed
      // stores); pool tasks are coarse units (drain slots, parallel-for
      // helpers), so this is nowhere near the per-morsel path.
      obs::flight::FlightRecorder::Record(obs::flight::EventKind::kPoolTask,
                                          0, worker_index, 0);
      continue;
    }
    metrics.Ensure(worker_index);
    const int64_t start = obs::NowMicros();
    metrics.idle_us->Add(start - idle_start);
    if (task.enqueue_us > 0) {
      metrics.queue_wait_us->Record(
          static_cast<double>(start - task.enqueue_us));
    }
    {
      obs::ScopedSpanContext adopt(task.ctx);
      obs::Span span("task", "pool");
      task.fn();
    }
    const int64_t end = obs::NowMicros();
    metrics.busy_us->Add(end - start);
    metrics.task_run_us->Record(static_cast<double>(end - start));
    metrics.tasks->Add(1);
    obs::flight::FlightRecorder::Record(obs::flight::EventKind::kPoolTask, 0,
                                        worker_index, end - start);
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  auto task = std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> result = task->get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    Enqueue([task] { (*task)(); });
  }
  cv_.notify_one();
  return result;
}

void ThreadPool::ParallelFor(int64_t n, const std::function<void(int64_t)>& fn,
                             int max_workers,
                             const CancellationToken* cancel) {
  if (n <= 0) return;
  // From inside a worker (or with a trivial range) run inline: a task that
  // fans out must never wait on the pool it occupies.
  if (n == 1 || OnWorkerThread()) {
    for (int64_t i = 0; i < n; ++i) {
      if (cancel != nullptr && cancel->cancelled()) return;
      fn(i);
    }
    return;
  }

  // Shared claim/progress state for this loop. Kept on the heap so helper
  // tasks stay valid even if they start after the caller has returned
  // (impossible here — the caller waits — but cheap insurance against
  // future refactors).
  struct LoopState {
    std::atomic<int64_t> next{0};
    std::exception_ptr error;
    bool abort = false;
    int64_t done = 0;
    std::mutex mu;
    std::condition_variable done_cv;
  };
  auto state = std::make_shared<LoopState>();

  auto drain = [state, &fn, n, cancel] {
    for (;;) {
      const int64_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      const bool cancelled = cancel != nullptr && cancel->cancelled();
      {
        std::lock_guard<std::mutex> lock(state->mu);
        if (state->abort || cancelled) {
          // Still count the claimed iteration so `done` reaches the number
          // of claimed-and-finished items the caller waits for.
          ++state->done;
          state->done_cv.notify_one();
          continue;
        }
      }
      try {
        fn(i);
      } catch (...) {
        // Attribute the failure to its iteration; TaskError already carries
        // narrower context (morsel/op or graph node) from the layer above.
        std::exception_ptr error;
        try {
          throw;
        } catch (const TaskError&) {
          error = std::current_exception();
        } catch (const std::exception& e) {
          error = std::make_exception_ptr(TaskError(
              "[parallel-for i=" + std::to_string(i) + "] " + e.what()));
        } catch (...) {
          error = std::make_exception_ptr(TaskError(
              "[parallel-for i=" + std::to_string(i) +
              "] unknown exception"));
        }
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->error) state->error = error;
        state->abort = true;
      }
      {
        // Notify under the lock: the caller destroys the loop state as soon
        // as the predicate holds, which it cannot observe before unlock.
        std::lock_guard<std::mutex> lock(state->mu);
        ++state->done;
        state->done_cv.notify_one();
      }
    }
  };

  int helpers = size();
  if (max_workers > 0) helpers = std::min(helpers, max_workers - 1);
  helpers = static_cast<int>(
      std::min<int64_t>(helpers, n - 1));  // caller takes a share
  for (int h = 0; h < helpers; ++h) {
    std::lock_guard<std::mutex> lock(mu_);
    Enqueue(drain);
  }
  if (helpers > 0) cv_.notify_all();

  drain();  // caller participates

  // All n iterations were claimed once `drain` returned on every thread;
  // wait until each claimed iteration has finished executing.
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(lock, [&] { return state->done >= n; });
    // Detached copy: helper tasks may still hold `state` (and through it
    // the captured exception) until the pool recycles them.
    if (state->error) RethrowDetached(state->error);
  }
}

}  // namespace wimpi::parallel
