#ifndef WIMPI_PARALLEL_CANCELLATION_H_
#define WIMPI_PARALLEL_CANCELLATION_H_

#include <atomic>
#include <exception>
#include <stdexcept>
#include <string>

namespace wimpi::parallel {

// Cooperative cancellation flag shared between a driver and the morsel
// loops / task graphs working on its behalf. Cancel() may be called from
// any thread; workers poll cancelled() before claiming each unit of work,
// so an abandoned computation (e.g. a distributed query whose last live
// node just failed) stops after at most one in-flight morsel per worker
// instead of running to completion.
//
// Cancellation is advisory: already-running bodies finish, and the loop
// that observed the token returns normally with part of the work undone.
// Whoever cancelled must treat the computation's outputs as garbage.
class CancellationToken {
 public:
  CancellationToken() = default;

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  // Re-arms a token for reuse across sequential computations (tests).
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

// Worker-thread failure with execution context attached (task label,
// morsel index, graph node id). The scheduler layers wrap foreign
// exceptions exactly once: an escaping TaskError is forwarded as-is, so
// the innermost (most specific) context wins.
class TaskError : public std::runtime_error {
 public:
  explicit TaskError(const std::string& what) : std::runtime_error(what) {}
};

// Rethrows a captured worker failure as an exception owned solely by the
// calling thread. The object inside `error` may still be referenced by
// pool workers that have not yet dropped their copy of the shared
// loop/graph state; rethrowing it directly lets whichever side releases
// the last reference delete the object — on a worker, concurrently with
// the caller reading what(), through the runtime's exception refcounting,
// which synchronizes outside the memory model tools can see. Escaping a
// fresh copy keeps the exception's lifetime on the caller's side of the
// pool boundary.
[[noreturn]] inline void RethrowDetached(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const TaskError& e) {
    throw TaskError(e.what());
  } catch (const std::exception& e) {
    throw TaskError(e.what());
  }
  // Unreachable: capture sites wrap every foreign exception in a
  // TaskError, so the handlers above are exhaustive.
}

}  // namespace wimpi::parallel

#endif  // WIMPI_PARALLEL_CANCELLATION_H_
