#include "parallel/steal.h"

#include <algorithm>
#include <cmath>

namespace wimpi::parallel {

int MorselCountForRows(int64_t rows, double sf_scale, int64_t rows_per_morsel,
                       int max_morsels) {
  if (rows <= 0 || rows_per_morsel <= 0) return 1;
  const double scaled = static_cast<double>(rows) * sf_scale;
  const double count = std::ceil(scaled / static_cast<double>(rows_per_morsel));
  if (count <= 1.0) return 1;
  if (count >= static_cast<double>(max_morsels)) return max_morsels;
  return static_cast<int>(count);
}

MorselRange StealHalf(MorselRange* victim, int min_steal) {
  if (victim->size() < std::max(1, min_steal)) return MorselRange{};
  // Victim keeps the first half, rounded up: it is already executing from
  // `begin`, so the thief takes the furthest-away tail.
  const int mid = victim->begin + (victim->size() + 1) / 2;
  MorselRange stolen{mid, victim->end};
  victim->end = mid;
  return stolen;
}

int PickVictim(const std::vector<VictimLoad>& loads, int thief,
               int min_steal) {
  int best = -1;
  for (int i = 0; i < static_cast<int>(loads.size()); ++i) {
    if (i == thief) continue;
    if (loads[i].stealable_morsels < std::max(1, min_steal)) continue;
    if (best < 0 || loads[i].remaining_work > loads[best].remaining_work) {
      best = i;
    }
  }
  return best;
}

}  // namespace wimpi::parallel
