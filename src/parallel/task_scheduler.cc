#include "parallel/task_scheduler.h"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <mutex>
#include <string>

#include "common/logging.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "obs/tracing/span.h"
#include "parallel/pipeline.h"

namespace wimpi::parallel {

std::vector<Morsel> SplitMorsels(int64_t total, int64_t morsel_rows) {
  WIMPI_CHECK(morsel_rows > 0);
  std::vector<Morsel> morsels;
  if (total <= 0) return morsels;
  morsels.reserve(static_cast<size_t>((total + morsel_rows - 1) / morsel_rows));
  for (int64_t begin = 0; begin < total; begin += morsel_rows) {
    Morsel m;
    m.index = static_cast<int>(morsels.size());
    m.begin = begin;
    m.end = std::min(total, begin + morsel_rows);
    morsels.push_back(m);
  }
  return morsels;
}

TaskScheduler& TaskScheduler::Global() {
  static TaskScheduler* scheduler = new TaskScheduler(0);
  return *scheduler;
}

// Worker-thread failures must be attributable without a debugger:
// RunPipelineMorsel (parallel/pipeline.cc, shared with the service's fair
// scheduler) wraps foreign exceptions into TaskErrors naming the operator
// and morsel.

void TaskScheduler::RunMorsels(int64_t total, int64_t morsel_rows, int threads,
                               const std::function<void(const Morsel&)>& body,
                               const CancellationToken* cancel) {
  const std::vector<Morsel> morsels = SplitMorsels(total, morsel_rows);
  if (morsels.empty()) return;
  const char* label = obs::CurrentOpLabel();
  if (threads <= 1 || morsels.size() == 1) {
    for (const Morsel& m : morsels) {
      if (cancel != nullptr && cancel->cancelled()) return;
      RunPipelineMorsel(body, m, label);
    }
    return;
  }
  // Profiler hooks, both no-ops unless a profiled run enabled them: the
  // open operator scope learns this phase's fan-out, and with tracing on
  // every morsel becomes one chrome://tracing span on the worker (or
  // caller) thread that ran it.
  obs::NoteParallelPhase(threads, static_cast<int>(morsels.size()));
  if (obs::TraceSink::Global().enabled()) {
    // Capture the caller's span context so every morsel span, on whichever
    // worker thread it runs, becomes a child of the open operator span.
    const obs::SpanContext parent = obs::CurrentSpanContext();
    pool_.ParallelFor(
        static_cast<int64_t>(morsels.size()),
        [&, parent](int64_t i) {
          const Morsel& m = morsels[static_cast<size_t>(i)];
          char args[64];
          std::snprintf(args, sizeof(args), "{\"morsel\":%d,\"rows\":%lld}",
                        m.index, static_cast<long long>(m.rows()));
          obs::ScopedSpanContext adopt(parent);
          obs::Span span(std::string(label), "morsel", args);
          RunPipelineMorsel(body, m, label);
        },
        threads, cancel);
    return;
  }
  pool_.ParallelFor(
      static_cast<int64_t>(morsels.size()),
      [&](int64_t i) { RunPipelineMorsel(
                           body, morsels[static_cast<size_t>(i)], label); },
      threads, cancel);
}

namespace {

// Dataflow state for one RunTaskGraph call. Pool tasks capture it by
// shared_ptr so nothing they touch after a node body returns lives on the
// caller's stack (`nodes` is only dereferenced before the node's finish is
// counted, and the caller cannot return before every finish is counted).
struct GraphState {
  const std::vector<std::function<void()>>* nodes = nullptr;
  ThreadPool* pool = nullptr;
  const CancellationToken* cancel = nullptr;
  // Submitter's span context; node spans on any thread parent under it.
  obs::SpanContext ctx;
  std::vector<std::atomic<int>> pending;
  std::vector<std::vector<int>> dependents;
  std::exception_ptr error;
  std::atomic<bool> abort{false};
  int finished = 0;
  std::mutex mu;
  std::condition_variable done_cv;
  explicit GraphState(int n) : pending(n), dependents(n) {}
};

// Executes node `start`, then walks newly-ready successors: one continues
// inline (keeps the chain hot), the rest are farmed out to the pool so
// independent branches really overlap.
void RunNodeChain(const std::shared_ptr<GraphState>& state, int start) {
  int i = start;
  while (i >= 0) {
    if (!state->abort.load(std::memory_order_relaxed) &&
        (state->cancel == nullptr || !state->cancel->cancelled())) {
      try {
        obs::ScopedSpanContext adopt(state->ctx);
        obs::Span span("graph-node", "pool");
        (*state->nodes)[i]();
      } catch (...) {
        // First-error semantics, with the failing node attached so graph
        // failures are attributable (foreign exceptions only; a TaskError
        // from a nested morsel loop keeps its narrower context).
        std::exception_ptr error;
        try {
          throw;
        } catch (const TaskError&) {
          error = std::current_exception();
        } catch (const std::exception& e) {
          error = std::make_exception_ptr(
              TaskError("[graph node " + std::to_string(i) + "] " + e.what()));
        } catch (...) {
          error = std::make_exception_ptr(TaskError(
              "[graph node " + std::to_string(i) + "] unknown exception"));
        }
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->error) state->error = error;
        state->abort.store(true, std::memory_order_relaxed);
      }
    }
    int inline_next = -1;
    for (const int dep : state->dependents[i]) {
      if (state->pending[dep].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        if (inline_next < 0) {
          inline_next = dep;
        } else {
          state->pool->Submit([state, dep] { RunNodeChain(state, dep); });
        }
      }
    }
    {
      // Notify under the lock: the caller may destroy the cv the moment the
      // predicate holds, which is only reachable after this unlock.
      std::lock_guard<std::mutex> lock(state->mu);
      ++state->finished;
      state->done_cv.notify_one();
    }
    i = inline_next;
  }
}

}  // namespace

void TaskScheduler::RunTaskGraph(
    const std::vector<std::function<void()>>& nodes,
    const std::vector<std::vector<int>>& deps,
    const CancellationToken* cancel) {
  const int n = static_cast<int>(nodes.size());
  WIMPI_CHECK_EQ(deps.size(), nodes.size());
  if (n == 0) return;

  auto state = std::make_shared<GraphState>(n);
  state->nodes = &nodes;
  state->pool = &pool_;
  state->cancel = cancel;
  if (obs::TraceSink::Global().enabled()) {
    state->ctx = obs::CurrentSpanContext();
  }
  for (int i = 0; i < n; ++i) {
    state->pending[i].store(static_cast<int>(deps[i].size()),
                            std::memory_order_relaxed);
    for (const int d : deps[i]) {
      WIMPI_CHECK(d >= 0 && d < n) << "task graph dep out of range";
      state->dependents[d].push_back(i);
    }
  }

  // Reject cycles up front (Kahn's algorithm) so a malformed graph fails
  // loudly instead of deadlocking the caller.
  {
    std::vector<int> indegree(n);
    std::vector<int> ready;
    for (int i = 0; i < n; ++i) {
      indegree[i] = static_cast<int>(deps[i].size());
      if (indegree[i] == 0) ready.push_back(i);
    }
    int visited = 0;
    while (!ready.empty()) {
      const int i = ready.back();
      ready.pop_back();
      ++visited;
      for (const int dep : state->dependents[i]) {
        if (--indegree[dep] == 0) ready.push_back(dep);
      }
    }
    WIMPI_CHECK_EQ(visited, n) << "task graph contains a cycle";
  }

  // Launch every root: the first on the caller's thread, the rest on the
  // pool. (From inside a pool worker everything still completes — chains
  // just interleave with whatever the queue holds.)
  std::vector<int> roots;
  for (int i = 0; i < n; ++i) {
    if (deps[i].empty()) roots.push_back(i);
  }
  for (size_t r = 1; r < roots.size(); ++r) {
    const int root = roots[r];
    pool_.Submit([state, root] { RunNodeChain(state, root); });
  }
  RunNodeChain(state, roots[0]);

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->finished >= n; });
  // Detached copy: submitted chains may still hold `state` (and through it
  // the captured exception) until the pool recycles them.
  if (state->error) RethrowDetached(state->error);
}

}  // namespace wimpi::parallel
