#ifndef WIMPI_PARALLEL_STEAL_H_
#define WIMPI_PARALLEL_STEAL_H_

#include <cstdint>
#include <vector>

namespace wimpi::parallel {

// Stealable morsel ranges: the shared vocabulary between the intra-node
// morsel scheduler (64K-row morsels, task_scheduler.h) and the cluster's
// fine-grained recovery driver (cluster/recovery.h). A range is a
// half-open interval of morsel indices inside one partition's morsel
// space; the steal protocol operates on un-started tails only, so an
// executing owner's completed prefix is never disturbed.
//
// Everything here is pure integer/double math with a fixed tie-break
// order — the determinism rule that lets any steal schedule reproduce
// bit-identical answers (the work moves; the data and the merge order do
// not).
struct MorselRange {
  int begin = 0;
  int end = 0;  // exclusive

  int size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

// Deterministic morsel count for a partition holding `rows` physical rows
// scaled by `sf_scale` (model SF / physical SF), at `rows_per_morsel`
// (the engine's 64K-row convention) — clamped to [1, max_morsels] so the
// modeled schedule stays cheap at SF 100-class scale factors.
int MorselCountForRows(int64_t rows, double sf_scale, int64_t rows_per_morsel,
                       int max_morsels);

// The steal primitive: splits the un-started tail off `*victim` and
// returns it. The victim keeps the first half (rounded up, so it always
// retains at least as much as the thief takes and never goes empty).
// Returns an empty range — and leaves `*victim` untouched — when fewer
// than `min_steal` morsels remain.
MorselRange StealHalf(MorselRange* victim, int min_steal);

// One candidate victim's load as the steal protocol sees it.
struct VictimLoad {
  double remaining_work = 0;  // modeled seconds left in its queue
  int stealable_morsels = 0;  // un-started morsels a thief could take
};

// Fixed victim order: the index with the most remaining modeled work
// among entries with at least `min_steal` stealable morsels, lowest index
// on ties; `thief` itself is never selected. Returns -1 when nothing is
// worth stealing.
int PickVictim(const std::vector<VictimLoad>& loads, int thief,
               int min_steal);

}  // namespace wimpi::parallel

#endif  // WIMPI_PARALLEL_STEAL_H_
