#include "parallel/pipeline.h"

#include <string>

#include "obs/profiler.h"
#include "obs/timeline/sampler.h"

namespace wimpi::parallel {

void RunPipelineMorsel(const std::function<void(const Morsel&)>& body,
                       const Morsel& m, const char* label) {
  try {
    body(m);
  } catch (const TaskError&) {
    throw;
  } catch (const std::exception& e) {
    throw TaskError("[op " + std::string(label) + " morsel " +
                    std::to_string(m.index) + " rows " +
                    std::to_string(m.begin) + ".." + std::to_string(m.end) +
                    "] " + e.what());
  } catch (...) {
    throw TaskError("[op " + std::string(label) + " morsel " +
                    std::to_string(m.index) + "] unknown exception");
  }
}

namespace {

// The pre-service execution path, unchanged: one query at a time, morsel
// loops on the process-wide scheduler. Leaked singleton (like
// TaskScheduler::Global()) so it is never destroyed while workers run.
class DefaultScheduler : public PipelineScheduler {
 public:
  void RunPipeline(const PipelineSpec& spec) override {
    // Timeline attribution: the single-query path publishes on lane 0
    // (query id 0 = "the one query"). One relaxed load when the sampler
    // is off — the same budget as every other obs hook.
    obs::timeline::ScopedPipelineActivity activity(
        /*lane=*/0, obs::CurrentOpLabel(), /*query_id=*/0);
    TaskScheduler::Global().RunMorsels(spec.total_rows, spec.morsel_rows,
                                       spec.max_threads, *spec.body,
                                       spec.cancel);
  }
};

}  // namespace

PipelineScheduler& PipelineScheduler::Default() {
  static DefaultScheduler* scheduler = new DefaultScheduler;
  return *scheduler;
}

}  // namespace wimpi::parallel
