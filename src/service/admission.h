#ifndef WIMPI_SERVICE_ADMISSION_H_
#define WIMPI_SERVICE_ADMISSION_H_

#include <cstdint>
#include <mutex>

#include "exec/counters.h"
#include "storage/memory_tracker.h"

namespace wimpi::service {

// Reservation-based admission control against one node's memory budget.
//
// A query is admitted only once its estimated working set fits inside the
// unreserved part of the budget; the reservation is held for the query's
// whole run and released when it finishes. Because every admitted query
// reserved its estimate up front, the sum of concurrent estimates — and so
// (to the accuracy of the estimate) the node's peak memory — never exceeds
// the budget by construction. This is the same working-set approximation
// the cluster spill model uses: base columns touched plus the plan's peak
// intermediate allocations.
class AdmissionController {
 public:
  struct Options {
    // Reservation budget in bytes; <= 0 means unlimited (every TryReserve
    // succeeds and FitsBudget always holds).
    int64_t budget_bytes = 0;
  };

  explicit AdmissionController(Options opts) : opts_(opts), tracker_(opts.budget_bytes) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // False when `bytes` exceeds the whole budget — such a query can never be
  // admitted and must be rejected outright rather than queued forever.
  bool FitsBudget(int64_t bytes) const {
    return opts_.budget_bytes <= 0 || bytes <= opts_.budget_bytes;
  }

  // Atomically reserves `bytes` if the unreserved budget allows it right
  // now. Negative estimates are treated as zero (admit; nothing to hold).
  bool TryReserve(int64_t bytes) {
    if (bytes <= 0) return true;
    if (opts_.budget_bytes <= 0) {
      tracker_.Consume(bytes);
      return true;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (tracker_.used() + bytes > opts_.budget_bytes) return false;
    tracker_.Consume(bytes);
    return true;
  }

  void Release(int64_t bytes) {
    if (bytes > 0) tracker_.Release(bytes);
  }

  int64_t budget_bytes() const { return opts_.budget_bytes; }
  int64_t reserved_bytes() const { return tracker_.used(); }
  int64_t peak_reserved_bytes() const { return tracker_.peak(); }

  // The underlying tracker, exposed so tests and the throughput benchmark
  // can assert peak-vs-budget directly.
  const storage::MemoryTracker& tracker() const { return tracker_; }

 private:
  Options opts_;
  mutable std::mutex mu_;  // serializes check-then-consume in TryReserve
  storage::MemoryTracker tracker_;
};

// Estimated working set of a query, from the stats of a prior (or modeled)
// run: base column bytes it touches plus its peak concurrently-live
// intermediate bytes. Callers that have never run the query can pass the
// stats produced by exec::CollectQueryStats-style dry accounting.
int64_t EstimateWorkingSetBytes(const exec::QueryStats& stats);

}  // namespace wimpi::service

#endif  // WIMPI_SERVICE_ADMISSION_H_
