#include "service/admission.h"

#include <cmath>

namespace wimpi::service {

int64_t EstimateWorkingSetBytes(const exec::QueryStats& stats) {
  const double bytes =
      stats.BaseTouchedBytes() + stats.peak_intermediate_bytes;
  if (!(bytes > 0)) return 0;
  return static_cast<int64_t>(std::llround(bytes));
}

}  // namespace wimpi::service
