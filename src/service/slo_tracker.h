#ifndef WIMPI_SERVICE_SLO_TRACKER_H_
#define WIMPI_SERVICE_SLO_TRACKER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>

namespace wimpi::obs {
class Counter;
class Gauge;
}  // namespace wimpi::obs

namespace wimpi::service {

// Latency objectives for the query service, keyed by integer priority
// class (a query's stride priority, truncated). A query *meets* its SLO
// when it completes OK within the class objective; rejects, cancels,
// timeouts and failures all count as misses — from the client's side a
// rejected query is exactly as unserved as a slow one.
struct SloOptions {
  // Objective applied to priority classes without their own entry;
  // 0 disables SLO tracking entirely.
  int64_t default_objective_us = 0;
  // Attainment target in (0, 1); burn rate is measured against its error
  // budget: burn 1.0 = missing exactly (1 - target) of queries.
  double target = 0.99;
  // Rolling window for attainment/burn-rate.
  int64_t window_us = 60 * 1000 * 1000;
  // Per-priority-class overrides (key = (int)priority).
  std::map<int, int64_t> per_class_objective_us;
};

// Rolling-window SLO attainment and burn-rate per priority class,
// exported as gauges/counters the Prometheus exposition picks up:
//   slo.p<class>.objective_us   objective applied to the class
//   slo.p<class>.attainment     fraction of window queries meeting it
//   slo.p<class>.burn_rate      (1 - attainment) / (1 - target)
//   slo.p<class>.total          lifetime queries counted (counter)
//   slo.p<class>.breaches       lifetime misses (counter)
// Record() takes one short mutex hold; it is called once per query
// completion (never per morsel), so contention is irrelevant.
class SloTracker {
 public:
  explicit SloTracker(SloOptions opts);

  bool enabled() const { return opts_.default_objective_us > 0 ||
                                !opts_.per_class_objective_us.empty(); }
  int64_t ObjectiveFor(double priority) const;

  // Accounts one finished query: `ok` is "completed with OK status",
  // `latency_us` its submit->finish wall time, `now_us` the completion
  // time on the obs::NowMicros clock.
  void Record(double priority, bool ok, int64_t latency_us, int64_t now_us);

  // Point-in-time window attainment (1.0 when the window is empty).
  double Attainment(double priority) const;
  double BurnRate(double priority) const;

 private:
  struct ClassState {
    std::deque<std::pair<int64_t, bool>> window;  // (ts, met)
    int64_t window_met = 0;
    obs::Gauge* objective_g = nullptr;
    obs::Gauge* attainment_g = nullptr;
    obs::Gauge* burn_g = nullptr;
    obs::Counter* total_c = nullptr;
    obs::Counter* breaches_c = nullptr;
  };

  // Caller must hold mu_.
  ClassState& StateFor(int cls);
  void EvictLocked(ClassState& s, int64_t now_us);
  static int ClassOf(double priority) { return static_cast<int>(priority); }

  SloOptions opts_;
  mutable std::mutex mu_;
  std::map<int, ClassState> classes_;
};

}  // namespace wimpi::service

#endif  // WIMPI_SERVICE_SLO_TRACKER_H_
