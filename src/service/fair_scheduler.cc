#include "service/fair_scheduler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "obs/clock.h"
#include "obs/flight/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/timeline/sampler.h"
#include "obs/trace.h"
#include "obs/tracing/span.h"

namespace wimpi::service {

// One pipeline currently draining. Lives on the driving thread's stack for
// the duration of RunPipeline (which cannot return before in_flight == 0
// and next == morsels.size(), so slot references never dangle).
struct FairPipelineScheduler::ActivePipeline {
  std::vector<parallel::Morsel> morsels;
  const std::function<void(const parallel::Morsel&)>* body = nullptr;
  const char* label = "plan";
  // Driver's span context at fan-out time; morsel spans on any worker
  // parent under it (empty when tracing is off).
  obs::SpanContext trace_ctx;
  int max_threads = 1;
  size_t next = 0;          // next unclaimed morsel index
  int in_flight = 0;        // running anywhere (driver or slots)
  int remote_in_flight = 0; // running on drain slots only
  std::exception_ptr error;
  std::condition_variable done_cv;  // driver waits here (on mu_)

  bool Complete() const { return next >= morsels.size() && in_flight == 0; }
};

struct FairPipelineScheduler::Lane {
  double stride = kStrideBase;
  double pass = 0;
  parallel::CancellationToken* cancel = nullptr;
  int64_t deadline_us = 0;
  bool deadline_fired = false;
  uint64_t flight_id = 0;  // query id for flight-recorder events
  std::list<ActivePipeline*> pipelines;
  int64_t pipelines_run = 0;
  int64_t tasks_run = 0;
  int64_t rows_run = 0;
  int64_t worker_cpu_us = 0;  // drain-slot CPU only (see LaneUsage)
};

FairPipelineScheduler::FairPipelineScheduler(parallel::ThreadPool* pool)
    : FairPipelineScheduler(pool, Options()) {}

FairPipelineScheduler::FairPipelineScheduler(parallel::ThreadPool* pool,
                                             Options opts)
    : pool_(pool), opts_(opts) {
  WIMPI_CHECK(pool_ != nullptr);
  if (opts_.max_slots <= 0) opts_.max_slots = pool_->size();
  auto& reg = obs::MetricsRegistry::Global();
  pipelines_counter_ = &reg.counter("service.pipelines");
  tasks_counter_ = &reg.counter("service.tasks");
}

FairPipelineScheduler::~FairPipelineScheduler() {
  std::unique_lock<std::mutex> lock(mu_);
  WIMPI_CHECK(lanes_.empty()) << "lanes still open at scheduler destruction";
  slots_idle_cv_.wait(lock, [this] { return slots_running_ == 0; });
}

int FairPipelineScheduler::OpenLane(double priority,
                                    parallel::CancellationToken* cancel,
                                    int64_t deadline_us, uint64_t flight_id) {
  WIMPI_CHECK(cancel != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  const int id = next_lane_id_++;
  Lane& lane = lanes_[id];
  lane.stride = kStrideBase / std::max(priority, 1e-3);
  lane.cancel = cancel;
  lane.deadline_us = deadline_us;
  lane.flight_id = flight_id;
  // Join at the smallest pass currently in play: the new lane competes on
  // equal footing from now on instead of monopolizing the pool to "catch
  // up" on time it was not even submitted for.
  double min_pass = 0;
  bool first = true;
  for (const auto& [_, l] : lanes_) {
    if (&l == &lane) continue;
    if (first || l.pass < min_pass) min_pass = l.pass;
    first = false;
  }
  lane.pass = first ? 0 : min_pass;
  return id;
}

void FairPipelineScheduler::CloseLane(int lane_id, LaneUsage* usage) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = lanes_.find(lane_id);
  WIMPI_CHECK(it != lanes_.end()) << "closing unknown lane " << lane_id;
  WIMPI_CHECK(it->second.pipelines.empty())
      << "closing lane " << lane_id << " with an active pipeline";
  if (usage != nullptr) {
    usage->pipelines = it->second.pipelines_run;
    usage->tasks = it->second.tasks_run;
    usage->rows = it->second.rows_run;
    usage->worker_cpu_us = it->second.worker_cpu_us;
  }
  lanes_.erase(it);
}

bool FairPipelineScheduler::LaneDeadlineFired(int lane_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = lanes_.find(lane_id);
  WIMPI_CHECK(it != lanes_.end());
  return it->second.deadline_fired;
}

std::map<int, double> FairPipelineScheduler::LanePassesForTest() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<int, double> passes;
  for (const auto& [id, lane] : lanes_) passes[id] = lane.pass;
  return passes;
}

bool FairPipelineScheduler::PickTask(Lane** lane_out,
                                     ActivePipeline** pipe_out) {
  Lane* best_lane = nullptr;
  ActivePipeline* best_pipe = nullptr;
  for (auto& [id, lane] : lanes_) {
    // Deadline bookkeeping happens on every inspection, so a timed-out
    // query is cancelled by whichever dispatch looks at it next.
    if (lane.deadline_us > 0 && !lane.deadline_fired &&
        obs::NowMicros() >= lane.deadline_us) {
      lane.deadline_fired = true;
      lane.cancel->Cancel();
    }
    const bool cancelled = lane.cancel->cancelled();
    for (ActivePipeline* p : lane.pipelines) {
      if (cancelled || p->error != nullptr) {
        // Skip the rest; anyone waiting learns via the notify below.
        if (p->next < p->morsels.size()) {
          p->next = p->morsels.size();
          if (p->in_flight == 0) p->done_cv.notify_all();
        }
        continue;
      }
      if (p->next >= p->morsels.size()) continue;
      if (p->remote_in_flight >= p->max_threads - 1) continue;
      if (best_lane == nullptr || lane.pass < best_lane->pass) {
        best_lane = &lane;
        best_pipe = p;
      }
      break;  // one candidate pipeline per lane is enough
    }
  }
  if (best_lane == nullptr) return false;
  *lane_out = best_lane;
  *pipe_out = best_pipe;
  return true;
}

void FairPipelineScheduler::RunOneTask(std::unique_lock<std::mutex>& lock,
                                       Lane* lane, ActivePipeline* p,
                                       bool remote) {
  const parallel::Morsel m = p->morsels[p->next++];
  ++p->in_flight;
  lane->pass += lane->stride;
  ++lane->tasks_run;
  lane->rows_run += m.rows();
  const uint64_t flight_id = lane->flight_id;
  const std::function<void(const parallel::Morsel&)>* body = p->body;
  const char* label = p->label;
  const obs::SpanContext trace_ctx = p->trace_ctx;
  lock.unlock();

  // Per-morsel CPU accounting applies only to drain-slot (pool worker)
  // execution: the driver's own morsels fall inside its whole-query CPU
  // window, so measuring them here would double-count.
  const int64_t cpu0 = remote ? obs::ThreadCpuMicros() : 0;
  std::exception_ptr error;
  try {
    if (trace_ctx.valid()) {
      char args[64];
      std::snprintf(args, sizeof(args), "{\"morsel\":%d,\"rows\":%lld}",
                    m.index, static_cast<long long>(m.rows()));
      obs::ScopedSpanContext adopt(trace_ctx);
      obs::Span span(std::string(label), "morsel", args);
      parallel::RunPipelineMorsel(*body, m, label);
    } else {
      parallel::RunPipelineMorsel(*body, m, label);
    }
  } catch (...) {
    error = std::current_exception();
  }
  tasks_counter_->Add(1);
  obs::flight::FlightRecorder::Record(obs::flight::EventKind::kMorselBatch,
                                      flight_id, m.index, m.rows());
  const int64_t cpu_us = remote ? obs::ThreadCpuMicros() - cpu0 : 0;

  lock.lock();
  if (remote) lane->worker_cpu_us += cpu_us;
  --p->in_flight;
  if (error != nullptr) {
    if (p->error == nullptr) p->error = error;
    p->next = p->morsels.size();  // abort: skip unclaimed morsels
  }
  if (p->Complete()) p->done_cv.notify_all();
}

void FairPipelineScheduler::EnsureSlots(int wanted) {
  wanted = std::min(wanted, opts_.max_slots);
  while (slots_running_ < wanted) {
    ++slots_running_;
    pool_->Submit([this] { DrainSlot(); });
  }
}

void FairPipelineScheduler::DrainSlot() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    Lane* lane = nullptr;
    ActivePipeline* p = nullptr;
    if (!PickTask(&lane, &p)) {
      // Nothing runnable: exit instead of polling. New pipelines resubmit
      // slots under the same mutex, so this cannot race work into limbo.
      --slots_running_;
      if (slots_running_ == 0) slots_idle_cv_.notify_all();
      return;
    }
    ++p->remote_in_flight;
    RunOneTask(lock, lane, p, /*remote=*/true);
    --p->remote_in_flight;
  }
}

void FairPipelineScheduler::RunPipeline(int lane_id,
                                        const parallel::PipelineSpec& spec) {
  const std::vector<parallel::Morsel> morsels =
      parallel::SplitMorsels(spec.total_rows, spec.morsel_rows);
  if (morsels.empty()) return;
  const char* label = obs::CurrentOpLabel();
  // Timeline attribution: publish (lane, pipeline label, query id) for the
  // sampler. Lane ids start at 1, so service lanes never collide with the
  // default scheduler's lane 0. The flight-id lookup takes the scheduler
  // mutex, but only when the sampler is armed, and once per pipeline.
  uint64_t activity_query_id = 0;
  if (obs::timeline::SamplerEnabled()) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = lanes_.find(lane_id);
    if (it != lanes_.end()) activity_query_id = it->second.flight_id;
  }
  obs::timeline::ScopedPipelineActivity activity(lane_id, label,
                                                 activity_query_id);
  // Sequential fast path, identical to TaskScheduler::RunMorsels: a
  // single-threaded phase (or one already on a pool worker) never touches
  // the scheduler state.
  if (spec.max_threads <= 1 || morsels.size() == 1 ||
      parallel::ThreadPool::OnWorkerThread()) {
    for (const parallel::Morsel& m : morsels) {
      if (spec.cancel != nullptr && spec.cancel->cancelled()) return;
      parallel::RunPipelineMorsel(*spec.body, m, label);
    }
    return;
  }

  obs::NoteParallelPhase(spec.max_threads, static_cast<int>(morsels.size()));
  pipelines_counter_->Add(1);

  ActivePipeline p;
  p.morsels = morsels;
  p.body = spec.body;
  p.label = label;
  p.max_threads = spec.max_threads;
  if (obs::TraceSink::Global().enabled()) {
    p.trace_ctx = obs::CurrentSpanContext();
  }

  std::unique_lock<std::mutex> lock(mu_);
  auto lane_it = lanes_.find(lane_id);
  WIMPI_CHECK(lane_it != lanes_.end()) << "pipeline on unknown lane";
  Lane& lane = lane_it->second;
  ++lane.pipelines_run;
  const int64_t pipeline_start_us = obs::NowMicros();
  obs::flight::FlightRecorder::Record(
      obs::flight::EventKind::kPipelineStart, lane.flight_id,
      static_cast<int32_t>(morsels.size()), spec.total_rows);
  lane.pipelines.push_back(&p);
  EnsureSlots(slots_running_ +
              std::min<int>(spec.max_threads - 1,
                            static_cast<int>(morsels.size())));

  // Driver drain loop: claim own tasks (the caller participates, like the
  // single-query ParallelFor), then wait for remote in-flight ones. Every
  // wait is on a condition variable; the deadline wait doubles as the
  // lane's timeout when no dispatch happens to observe it first.
  for (;;) {
    if (lane.deadline_us > 0 && !lane.deadline_fired &&
        obs::NowMicros() >= lane.deadline_us) {
      lane.deadline_fired = true;
      lane.cancel->Cancel();
    }
    if (lane.cancel->cancelled() || p.error != nullptr) {
      p.next = p.morsels.size();  // skip unclaimed; in-flight ones finish
    }
    if (p.next < p.morsels.size()) {
      RunOneTask(lock, &lane, &p, /*remote=*/false);
      continue;
    }
    if (p.in_flight == 0) break;
    if (lane.deadline_us > 0 && !lane.deadline_fired) {
      p.done_cv.wait_until(
          lock, std::chrono::steady_clock::time_point(
                    std::chrono::microseconds(lane.deadline_us)));
    } else {
      p.done_cv.wait(lock);
    }
  }
  lane.pipelines.remove(&p);
  obs::flight::FlightRecorder::Record(
      obs::flight::EventKind::kPipelineEnd, lane.flight_id,
      static_cast<int32_t>(morsels.size()),
      obs::NowMicros() - pipeline_start_us);
  if (p.error != nullptr) {
    lock.unlock();
    std::rethrow_exception(p.error);
  }
}

}  // namespace wimpi::service
