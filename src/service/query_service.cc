#include "service/query_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "exec/exec_options.h"
#include "obs/clock.h"
#include "obs/flight/flight_recorder.h"
#include "obs/flight/slow_query_log.h"
#include "obs/metrics.h"
#include "obs/timeline/sampler.h"
#include "obs/tracing/span.h"
#include "parallel/cancellation.h"
#include "parallel/task_scheduler.h"

namespace wimpi::service {
namespace internal {

namespace flight = obs::flight;

// Service-wide query ids tag flight-recorder events; process-global so
// dumps mixing several QueryService instances stay unambiguous.
std::atomic<uint64_t> g_next_query_id{1};

enum class TicketPhase { kQueued, kRunning, kDone };

// All mutable ticket state is guarded by ServiceCore::mu (one service-wide
// mutex: state transitions are rare next to morsel work, so contention is
// irrelevant and there is no lock order to get wrong). `token` is safe to
// read lock-free; `result`/`stats` are written by the driver outside the
// lock but only read after the mutex-published transition to kDone.
struct TicketState {
  QuerySpec spec;
  uint64_t query_id = 0;
  double priority = 1.0;
  int threads = 1;
  int64_t deadline_us = 0;  // obs::NowMicros clock, from submission; 0 = none

  int64_t submit_us = 0;
  int64_t admit_us = 0;
  int64_t finish_us = 0;
  int64_t driver_cpu_us = 0;  // driver thread CPU across ExecuteQuery
  LaneUsage usage;            // lane totals (tasks, rows, worker CPU)
  flight::QueryResourceReport report;

  TicketPhase phase = TicketPhase::kQueued;
  bool entered_queue = false;  // false for immediate rejects
  bool cancel_requested = false;
  parallel::CancellationToken token;
  Status status;
  bool has_result = false;
  exec::Relation result;
  exec::QueryStats stats;
  int64_t pipelines = 0;
  int64_t tasks = 0;
  std::condition_variable done_cv;
};

struct ServiceCore {
  ServiceOptions opts;
  AdmissionController admission;
  FairPipelineScheduler scheduler;
  SloTracker slo;

  mutable std::mutex mu;
  std::condition_variable work_cv;  // drivers wait here for work / memory
  std::deque<std::shared_ptr<TicketState>> pending;
  int running = 0;
  bool stopping = false;

  // Flight dumps requested by FinalizeLocked (which holds mu): queued
  // here and written after the lock is released — a dump walks every
  // recorder ring and writes files, far too heavy for the service mutex.
  struct PendingDump {
    int64_t since_us = 0;
    std::string path;
    // The triggering query's timeline slice, captured at queue time (the
    // sampler ring trims oldest-first, so slicing at flush time could lose
    // the very samples the trigger was about). Written as a
    // `<path>.timeline.jsonl` sidecar next to the event dump.
    bool has_timeline = false;
    obs::timeline::QueryTimeline timeline;
  };
  std::vector<PendingDump> pending_dumps;
  int dumps_done = 0;
  int dump_seq = 0;

  obs::Counter* submitted;
  obs::Counter* completed;
  obs::Counter* rejected;
  obs::Counter* cancelled;
  obs::Counter* timeout;
  obs::Counter* failed;
  obs::Gauge* active_g;
  obs::Gauge* queued_g;
  obs::Histogram* queue_wait_h;
  obs::Histogram* exec_h;
  obs::Histogram* latency_h;
  obs::Counter* trigger_latency_c;
  obs::Counter* trigger_status_c;

  ServiceCore(const ServiceOptions& o, parallel::ThreadPool* pool)
      : opts(o), admission({o.budget_bytes}), scheduler(pool), slo(o.slo) {
    auto& reg = obs::MetricsRegistry::Global();
    submitted = &reg.counter("service.submitted");
    completed = &reg.counter("service.completed");
    rejected = &reg.counter("service.rejected");
    cancelled = &reg.counter("service.cancelled");
    timeout = &reg.counter("service.timeout");
    failed = &reg.counter("service.failed");
    active_g = &reg.gauge("service.active");
    queued_g = &reg.gauge("service.queued");
    queue_wait_h = &reg.histogram("service.queue_wait_us");
    exec_h = &reg.histogram("service.exec_us");
    latency_h = &reg.histogram("service.latency_us");
    trigger_latency_c = &reg.counter("flight.trigger.latency");
    trigger_status_c = &reg.counter("flight.trigger.status");
  }

  // Caller must hold mu. Publishes the terminal state and all metrics.
  void FinalizeLocked(const std::shared_ptr<TicketState>& t, Status status) {
    t->finish_us = obs::NowMicros();
    if (!status.ok()) {
      t->result = exec::Relation();
      t->has_result = false;
    }
    switch (status.code()) {
      case StatusCode::kOk:
        completed->Add(1);
        break;
      case StatusCode::kResourceExhausted:
        rejected->Add(1);
        break;
      case StatusCode::kCancelled:
        cancelled->Add(1);
        break;
      case StatusCode::kDeadlineExceeded:
        timeout->Add(1);
        break;
      default:
        failed->Add(1);
        break;
    }
    const int64_t wall = t->finish_us - t->submit_us;
    // Queue-wait covers every query that ever waited, not only admitted
    // ones: a query cancelled or rejected *while queued* waited its whole
    // life, and skipping those was survivorship bias in the tail metrics.
    const int64_t queue_wait =
        t->admit_us > 0 ? t->admit_us - t->submit_us
                        : (t->entered_queue ? wall : 0);
    if (t->admit_us > 0) {
      queue_wait_h->Record(static_cast<double>(queue_wait));
      exec_h->Record(static_cast<double>(t->finish_us - t->admit_us));
    } else if (t->entered_queue) {
      queue_wait_h->Record(static_cast<double>(queue_wait));
    }
    // Latency histograms cover queries that entered the queue; immediate
    // rejects would only drag the percentiles toward zero.
    if (t->entered_queue) {
      const double latency = static_cast<double>(wall);
      latency_h->Record(latency);
      if (opts.track_session_metrics && !t->spec.session_id.empty()) {
        obs::MetricsRegistry::Global()
            .histogram("service.session." + t->spec.session_id + ".latency_us")
            .Record(latency);
      }
    }

    // Per-query resource report: always built, attached to the ticket.
    flight::QueryResourceReport& r = t->report;
    r.query_id = t->query_id;
    r.wall_us = wall;
    r.queue_wait_us = queue_wait;
    r.exec_us = t->admit_us > 0 ? t->finish_us - t->admit_us : 0;
    r.driver_cpu_us = t->driver_cpu_us;
    r.worker_cpu_us = t->usage.worker_cpu_us;
    r.cpu_us = r.driver_cpu_us + r.worker_cpu_us;
    r.pipelines = t->usage.pipelines;
    r.tasks = t->usage.tasks;
    r.rows = t->usage.rows;
    r.bytes_scanned = t->stats.TotalSeqBytes();
    r.mem_peak_bytes = t->stats.peak_intermediate_bytes;
    r.threads = t->threads;
    t->pipelines = t->usage.pipelines;
    t->tasks = t->usage.tasks;

    // SLO accounting: every query that entered the queue counts, and a
    // reject/cancel/timeout is a miss — unserved is unserved.
    if (t->entered_queue && slo.enabled()) {
      slo.Record(t->priority, status.ok(), wall, t->finish_us);
    }

    // Flight-recorder terminal event.
    const StatusCode code = status.code();
    if (t->admit_us == 0 && code == StatusCode::kCancelled) {
      flight::FlightRecorder::Record(flight::EventKind::kQueryCancelQueued,
                                     t->query_id, 0, queue_wait);
    } else if (t->admit_us == 0 && !status.ok()) {
      flight::FlightRecorder::Record(flight::EventKind::kQueryReject,
                                     t->query_id, static_cast<int32_t>(code),
                                     queue_wait);
    } else {
      flight::FlightRecorder::Record(flight::EventKind::kQueryFinish,
                                     t->query_id, static_cast<int32_t>(code),
                                     wall);
    }

    // Timeline slice: when the roofline sampler is running, grab this
    // query's submit->finish window of the sampled series now (the ring
    // trims oldest-first). The sampler lock nests inside mu here; the
    // sampler never takes service locks, so the order is acyclic.
    obs::timeline::QueryTimeline qtl;
    bool have_timeline = false;
    if (obs::timeline::SamplerEnabled()) {
      qtl = obs::timeline::TimelineSampler::Global().Slice(t->submit_us,
                                                           t->finish_us);
      have_timeline = true;
    }

    // Tail-based triggers: a matching query lands in the slow-query log
    // and (when configured) schedules a retroactive flight dump. Dumps
    // are queued for after the mutex release (see pending_dumps).
    const char* trigger = nullptr;
    if (opts.flight.on_error &&
        (code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kCancelled ||
         code == StatusCode::kResourceExhausted)) {
      trigger = "status";
    }
    int64_t threshold = opts.flight.latency_threshold_us;
    if (threshold == 0) threshold = slo.ObjectiveFor(t->priority);
    if (trigger == nullptr && threshold > 0 && wall > threshold) {
      trigger = "latency";
    }
    if (trigger != nullptr) {
      (trigger[0] == 'l' ? trigger_latency_c : trigger_status_c)->Add(1);
      flight::SlowQueryEntry entry;
      entry.ts_us = t->finish_us;
      entry.label = t->spec.label;
      entry.session = t->spec.session_id;
      entry.status = Status::CodeName(code);
      entry.trigger = trigger;
      entry.priority = t->priority;
      entry.report = r;
      flight::SlowQueryLog::Global().Append(std::move(entry));
      if (!opts.flight.dump_path.empty() &&
          dumps_done < opts.flight.max_dumps) {
        ++dumps_done;
        std::string path = opts.flight.dump_path;
        if (dump_seq > 0) {
          path += '.';
          path += std::to_string(dump_seq);
        }
        ++dump_seq;
        pending_dumps.push_back({t->submit_us - opts.flight.window_margin_us,
                                 std::move(path), have_timeline, qtl});
      }
    }

    // Attach the slice to the ticket's report last, after the slow-query
    // entry copied `r`: log entries stay sample-free by construction.
    if (have_timeline) {
      r.timeline = std::move(qtl);
      r.timeline_valid = true;
    }

    t->status = std::move(status);
    t->phase = TicketPhase::kDone;
    t->done_cv.notify_all();
  }

  // Writes any dumps FinalizeLocked queued. Caller must NOT hold mu.
  void FlushDumps() {
    std::vector<PendingDump> dumps;
    {
      std::lock_guard<std::mutex> lock(mu);
      dumps.swap(pending_dumps);
    }
    for (const PendingDump& d : dumps) {
      std::string error;
      if (!flight::FlightRecorder::Global().DumpSince(d.since_us, d.path,
                                                      &error)) {
        WIMPI_LOG(Warning) << "flight dump to " << d.path
                        << " failed: " << error;
      }
      if (d.has_timeline) {
        const std::string tl_path = d.path + ".timeline.jsonl";
        std::ofstream out(tl_path, std::ios::trunc);
        if (out.is_open()) {
          out << d.timeline.ToJsonl();
        } else {
          WIMPI_LOG(Warning) << "timeline dump to " << tl_path << " failed";
        }
      }
    }
  }

  // Runs the claimed query on this driver thread. Called without mu held.
  Status ExecuteQuery(TicketState* t) {
    // Whole-query driver CPU window: covers sequential phases and every
    // driver-run morsel; drain-slot morsels are accounted separately by
    // the lane (LaneUsage::worker_cpu_us).
    const int64_t cpu0 = obs::ThreadCpuMicros();
    const int lane = scheduler.OpenLane(t->priority, &t->token,
                                        t->deadline_us, t->query_id);
    Status status;
    {
      LaneScheduler lane_sched(&scheduler, lane);
      exec::ExecOptions eopts;
      eopts.num_threads = t->threads;
      eopts.morsel_rows = opts.morsel_rows;
      eopts.cancellation = &t->token;
      eopts.pipeline_scheduler = &lane_sched;
      exec::ScopedExecOptions scoped(eopts);
      obs::Span span(t->spec.label.empty() ? "query" : t->spec.label,
                     "service", "");
      try {
        t->result = t->spec.plan(&t->stats);
        t->has_result = true;
      } catch (const std::exception& e) {
        status = Status::Internal(e.what());
      } catch (...) {
        status = Status::Internal("unknown exception in query plan");
      }
    }
    const bool deadline_fired = scheduler.LaneDeadlineFired(lane);
    scheduler.CloseLane(lane, &t->usage);
    t->driver_cpu_us = obs::ThreadCpuMicros() - cpu0;
    // A fired token means morsel loops skipped work: whatever the plan
    // returned is partial and must not be surfaced as an answer.
    if (status.ok() && t->token.cancelled()) {
      status = deadline_fired
                   ? Status::DeadlineExceeded("query timed out after " +
                                              std::to_string(t->spec.timeout_us) +
                                              " us")
                   : Status::Cancelled("query cancelled");
    }
    return status;
  }

  void DriverLoop() {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      // FIFO-with-skip scan: finalize queued tickets that were cancelled or
      // ran out their deadline, then claim the first whose reservation fits
      // the unreserved budget right now.
      std::shared_ptr<TicketState> claimed;
      int64_t nearest_deadline = 0;
      const int64_t now = obs::NowMicros();
      for (auto it = pending.begin(); it != pending.end();) {
        TicketState* t = it->get();
        if (t->cancel_requested) {
          auto dead = *it;
          it = pending.erase(it);
          FinalizeLocked(dead, Status::Cancelled("cancelled while queued"));
          continue;
        }
        if (t->deadline_us > 0 && now >= t->deadline_us) {
          auto dead = *it;
          it = pending.erase(it);
          FinalizeLocked(dead,
                         Status::DeadlineExceeded(
                             "timed out waiting for admission"));
          continue;
        }
        if (claimed == nullptr &&
            admission.TryReserve(t->spec.estimated_bytes)) {
          claimed = *it;
          it = pending.erase(it);
          continue;
        }
        if (t->deadline_us > 0 &&
            (nearest_deadline == 0 || t->deadline_us < nearest_deadline)) {
          nearest_deadline = t->deadline_us;
        }
        ++it;
      }
      queued_g->Set(static_cast<double>(pending.size()));

      // Write any flight dumps queued by the finalizations above (or by
      // the previous iteration's query) before running or blocking. The
      // claimed ticket is already off the queue and reserved, so briefly
      // dropping the lock here races with nothing.
      if (!pending_dumps.empty()) {
        lock.unlock();
        FlushDumps();
        lock.lock();
      }

      if (claimed != nullptr) {
        claimed->phase = TicketPhase::kRunning;
        claimed->admit_us = obs::NowMicros();
        ++running;
        active_g->Set(running);
        flight::FlightRecorder::Record(flight::EventKind::kQueryAdmit,
                                       claimed->query_id, running,
                                       claimed->admit_us - claimed->submit_us);
        lock.unlock();
        Status status = ExecuteQuery(claimed.get());
        lock.lock();
        --running;
        active_g->Set(running);
        admission.Release(claimed->spec.estimated_bytes);
        FinalizeLocked(claimed, std::move(status));
        // Released memory may make a queued query admissible on another
        // driver.
        work_cv.notify_all();
        continue;
      }

      if (stopping && pending.empty()) return;
      // Idle path: block — no deadline means no wakeup until a submit,
      // cancel, release or shutdown notifies. Nothing polls.
      if (nearest_deadline > 0) {
        work_cv.wait_until(lock,
                           std::chrono::steady_clock::time_point(
                               std::chrono::microseconds(nearest_deadline)));
      } else {
        work_cv.wait(lock);
      }
    }
  }
};

}  // namespace internal

using internal::ServiceCore;
using internal::TicketPhase;
using internal::TicketState;

Status QueryTicket::Wait() const {
  WIMPI_CHECK(state_ != nullptr) << "Wait on empty ticket";
  std::unique_lock<std::mutex> lock(core_->mu);
  state_->done_cv.wait(lock,
                       [&] { return state_->phase == TicketPhase::kDone; });
  return state_->status;
}

bool QueryTicket::Done() const {
  WIMPI_CHECK(state_ != nullptr);
  std::lock_guard<std::mutex> lock(core_->mu);
  return state_->phase == TicketPhase::kDone;
}

void QueryTicket::Cancel() {
  WIMPI_CHECK(state_ != nullptr);
  {
    std::lock_guard<std::mutex> lock(core_->mu);
    if (state_->phase == TicketPhase::kDone) return;
    state_->cancel_requested = true;
    state_->token.Cancel();
    bool finalized = false;
    if (state_->phase == TicketPhase::kQueued) {
      // Finalize right here: a cancelled queued query must not wait for a
      // driver to free up (all of them may be busy running long queries).
      auto it =
          std::find(core_->pending.begin(), core_->pending.end(), state_);
      if (it != core_->pending.end()) {
        core_->pending.erase(it);
        core_->queued_g->Set(static_cast<double>(core_->pending.size()));
        core_->FinalizeLocked(state_,
                              Status::Cancelled("cancelled while queued"));
        finalized = true;
      }
    }
    // Running: the fired token aborts it at its next morsel dispatch.
    if (!finalized) core_->work_cv.notify_all();
  }
  core_->FlushDumps();
}

exec::Relation QueryTicket::TakeResult() {
  WIMPI_CHECK(state_ != nullptr);
  std::lock_guard<std::mutex> lock(core_->mu);
  WIMPI_CHECK(state_->phase == TicketPhase::kDone && state_->has_result)
      << "TakeResult on a query without a result";
  state_->has_result = false;
  return std::move(state_->result);
}

const exec::QueryStats& QueryTicket::stats() const { return state_->stats; }

int64_t QueryTicket::queue_wait_us() const {
  // From the finalized report, so queued-but-never-admitted tickets
  // (cancelled/rejected in queue) report their time-in-queue too.
  return state_->report.queue_wait_us;
}
int64_t QueryTicket::exec_us() const {
  return state_->admit_us > 0 ? state_->finish_us - state_->admit_us : 0;
}
int64_t QueryTicket::pipelines() const { return state_->pipelines; }
int64_t QueryTicket::tasks() const { return state_->tasks; }
uint64_t QueryTicket::query_id() const { return state_->query_id; }

const obs::flight::QueryResourceReport& QueryTicket::resources() const {
  return state_->report;
}

QueryService::QueryService(ServiceOptions opts) {
  WIMPI_CHECK(opts.max_active > 0);
  WIMPI_CHECK(opts.max_queue >= 0);
  parallel::ThreadPool* pool =
      opts.pool != nullptr ? opts.pool
                           : &parallel::TaskScheduler::Global().pool();
  core_ = std::make_shared<ServiceCore>(opts, pool);
  drivers_.reserve(static_cast<size_t>(opts.max_active));
  for (int i = 0; i < opts.max_active; ++i) {
    drivers_.emplace_back([core = core_] { core->DriverLoop(); });
  }
}

QueryService::~QueryService() {
  {
    std::lock_guard<std::mutex> lock(core_->mu);
    core_->stopping = true;
    core_->work_cv.notify_all();
  }
  // Drivers drain the queue before exiting (the stop condition requires an
  // empty queue), so every outstanding ticket is Done after the joins.
  for (std::thread& t : drivers_) t.join();
  core_->FlushDumps();
}

QueryTicket QueryService::Submit(QuerySpec spec) {
  ServiceCore& core = *core_;
  auto t = std::make_shared<TicketState>();
  t->spec = std::move(spec);
  t->query_id =
      internal::g_next_query_id.fetch_add(1, std::memory_order_relaxed);
  t->priority = t->spec.priority > 0 ? t->spec.priority
                                     : core.opts.default_priority;
  t->threads =
      t->spec.num_threads > 0 ? t->spec.num_threads : core.opts.query_threads;
  t->submit_us = obs::NowMicros();
  if (t->spec.timeout_us > 0) t->deadline_us = t->submit_us + t->spec.timeout_us;
  internal::flight::FlightRecorder::Record(
      internal::flight::EventKind::kQuerySubmit, t->query_id,
      static_cast<int32_t>(t->priority * 1000), t->spec.estimated_bytes);

  {
    std::lock_guard<std::mutex> lock(core.mu);
    core.submitted->Add(1);
    if (!t->spec.plan) {
      core.FinalizeLocked(t, Status::InvalidArgument("query has no plan"));
    } else if (core.stopping) {
      core.FinalizeLocked(t, Status::Unavailable("service shutting down"));
    } else if (!core.admission.FitsBudget(t->spec.estimated_bytes)) {
      // Never admissible: reject now instead of queueing forever.
      core.FinalizeLocked(
          t, Status::ResourceExhausted(
                 "estimated working set (" +
                 std::to_string(t->spec.estimated_bytes) +
                 " bytes) exceeds the node budget (" +
                 std::to_string(core.admission.budget_bytes()) + " bytes)"));
    } else if (static_cast<int>(core.pending.size()) >= core.opts.max_queue) {
      core.FinalizeLocked(
          t, Status::ResourceExhausted(
                 "admission queue full (" +
                 std::to_string(core.opts.max_queue) + " queries)"));
    } else {
      t->entered_queue = true;
      core.pending.push_back(t);
      core.queued_g->Set(static_cast<double>(core.pending.size()));
      internal::flight::FlightRecorder::Record(
          internal::flight::EventKind::kQueueEnter, t->query_id,
          static_cast<int32_t>(core.pending.size()));
      core.work_cv.notify_one();
    }
  }
  core.FlushDumps();
  return QueryTicket(core_, std::move(t));
}

Status QueryService::Execute(QuerySpec spec, exec::Relation* result) {
  QueryTicket ticket = Submit(std::move(spec));
  Status status = ticket.Wait();
  if (status.ok() && result != nullptr) *result = ticket.TakeResult();
  return status;
}

int QueryService::active() const {
  std::lock_guard<std::mutex> lock(core_->mu);
  return core_->running;
}

int QueryService::queued() const {
  std::lock_guard<std::mutex> lock(core_->mu);
  return static_cast<int>(core_->pending.size());
}

const AdmissionController& QueryService::admission() const {
  return core_->admission;
}

QueryTicket ClientSession::Submit(QuerySpec spec) {
  spec.session_id = id_;
  if (spec.priority <= 0) spec.priority = priority_;
  return service_->Submit(std::move(spec));
}

Status ClientSession::Execute(QuerySpec spec, exec::Relation* result) {
  spec.session_id = id_;
  if (spec.priority <= 0) spec.priority = priority_;
  return service_->Execute(std::move(spec), result);
}

}  // namespace wimpi::service
