#ifndef WIMPI_SERVICE_FAIR_SCHEDULER_H_
#define WIMPI_SERVICE_FAIR_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>

#include "parallel/cancellation.h"
#include "parallel/pipeline.h"
#include "parallel/thread_pool.h"

namespace wimpi::obs {
class Counter;
}  // namespace wimpi::obs

namespace wimpi::service {

// Lifetime totals of one closed lane, reported by CloseLane: pipelines
// run through the parallel path, morsel tasks executed, rows those tasks
// covered, and CPU time the *pool workers* (drain slots) spent on them —
// driver-run morsels are covered by the driver thread's own CPU clock,
// so worker_cpu_us + the driver's thread time never double-counts.
struct LaneUsage {
  int64_t pipelines = 0;
  int64_t tasks = 0;
  int64_t rows = 0;
  int64_t worker_cpu_us = 0;
};

// Stride-scheduling quantum: a lane with priority p advances its pass by
// kStrideBase / p per morsel it runs, and the scheduler always dispatches
// from the lane with the smallest pass — so over any window the morsel
// throughput of concurrent lanes is proportional to their priorities.
inline constexpr double kStrideBase = 1 << 20;

// Schedules pipelines from many concurrent queries over one shared
// ThreadPool with stride-scheduling fairness.
//
// Each active query opens a *lane* (its scheduling account). The query's
// driver thread runs the plan; every parallel phase arrives here as a
// parallel::PipelineSpec via LaneScheduler (installed in the driver's
// ExecOptions), is split into deterministic morsel tasks, and drains with:
//   * the driver claiming tasks of its own pipeline (the caller
//     participates, as in the single-query scheduler), and
//   * up to max_threads-1 pool workers per pipeline pulling tasks through
//     *drain slots*: pool tasks that repeatedly ask "which lane has the
//     smallest pass and a runnable task?", run one morsel, and loop. A
//     slot with nothing runnable exits; slots are (re)submitted when new
//     pipelines arrive. Idle ⇒ zero queued pool tasks ⇒ pool workers
//     block on their condition variable — nothing spins.
//
// Dispatch-time gates: a fired cancellation token skips the lane's
// remaining tasks; a lane deadline fires the token at the first dispatch
// or driver wait past it (the timeout needs no timer thread). Determinism:
// which *worker* runs a morsel varies, but morsel boundaries and merge
// order never do, so answers are bit-identical to isolated execution.
//
// Metrics (always on; the service opted in): service.pipelines,
// service.tasks counters in obs::MetricsRegistry::Global().
class FairPipelineScheduler {
 public:
  struct Options {
    // Upper bound on concurrently running drain slots (pool tasks); <= 0
    // means the pool size.
    int max_slots = 0;
  };

  explicit FairPipelineScheduler(parallel::ThreadPool* pool);
  FairPipelineScheduler(parallel::ThreadPool* pool, Options opts);
  // Blocks until every outstanding drain slot has exited. All lanes must
  // be closed first.
  ~FairPipelineScheduler();

  FairPipelineScheduler(const FairPipelineScheduler&) = delete;
  FairPipelineScheduler& operator=(const FairPipelineScheduler&) = delete;

  // Opens a lane. `priority` >= 1 scales the lane's share of morsel
  // throughput. `cancel` (required, caller-owned, must outlive the lane)
  // gates every dispatch. `deadline_us` > 0 (obs::NowMicros clock) makes
  // the scheduler fire `cancel` at the first dispatch past the deadline.
  // `flight_id` tags the lane's flight-recorder events (0 = untagged).
  // Returns the lane id.
  int OpenLane(double priority, parallel::CancellationToken* cancel,
               int64_t deadline_us = 0, uint64_t flight_id = 0);

  // Closes a lane; no pipeline may be active on it. `usage` (may be null)
  // receives the lane's lifetime totals.
  void CloseLane(int lane_id, LaneUsage* usage = nullptr);

  // True once the lane's deadline fired its cancellation token (reported
  // so the driver can distinguish timeout from external cancellation).
  bool LaneDeadlineFired(int lane_id) const;

  // Runs one pipeline on `lane_id`'s account; blocks until it drains.
  // Called by LaneScheduler from the lane's driver thread (one pipeline
  // per driver at a time; concurrent calls on one lane from cooperating
  // threads are allowed and share the lane's fairness account).
  void RunPipeline(int lane_id, const parallel::PipelineSpec& spec);

  // Pass values of all open lanes (test introspection).
  std::map<int, double> LanePassesForTest() const;

 private:
  struct ActivePipeline;
  struct Lane;

  // Picks the dispatchable (lane, pipeline) with the smallest pass.
  // Handles deadline/cancellation bookkeeping for every lane it inspects.
  // Caller must hold mu_. Returns false when nothing is runnable.
  bool PickTask(Lane** lane_out, ActivePipeline** pipe_out);
  // Claims the next morsel of `p` for `lane` and runs it outside the
  // lock; `lock` is held on entry and on return. `remote` marks drain-slot
  // (pool worker) execution, which additionally accounts thread CPU time
  // to the lane.
  void RunOneTask(std::unique_lock<std::mutex>& lock, Lane* lane,
                  ActivePipeline* p, bool remote);
  void DrainSlot();
  void EnsureSlots(int wanted);  // caller must hold mu_

  parallel::ThreadPool* pool_;
  Options opts_;

  mutable std::mutex mu_;
  std::map<int, Lane> lanes_;
  int next_lane_id_ = 1;
  int slots_running_ = 0;
  std::condition_variable slots_idle_cv_;  // dtor waits for slots to exit

  // Resolved once; registry references are stable for process lifetime.
  obs::Counter* pipelines_counter_ = nullptr;
  obs::Counter* tasks_counter_ = nullptr;
};

// parallel::PipelineScheduler face of one lane: what a query driver
// installs in its ExecOptions. Copyable value; the FairPipelineScheduler
// and the lane must outlive it.
class LaneScheduler : public parallel::PipelineScheduler {
 public:
  LaneScheduler() = default;
  LaneScheduler(FairPipelineScheduler* scheduler, int lane_id)
      : scheduler_(scheduler), lane_id_(lane_id) {}

  void RunPipeline(const parallel::PipelineSpec& spec) override {
    scheduler_->RunPipeline(lane_id_, spec);
  }

 private:
  FairPipelineScheduler* scheduler_ = nullptr;
  int lane_id_ = 0;
};

}  // namespace wimpi::service

#endif  // WIMPI_SERVICE_FAIR_SCHEDULER_H_
