#ifndef WIMPI_SERVICE_QUERY_SERVICE_H_
#define WIMPI_SERVICE_QUERY_SERVICE_H_

// Concurrent query service for one wimpy node (ISSUE #6 tentpole).
//
// Many client sessions submit plans; the service runs up to `max_active` of
// them concurrently, each on its own driver thread, all sharing the one
// process-wide ThreadPool through a FairPipelineScheduler lane (stride
// scheduling ⇒ morsel throughput proportional to priority). Admission
// control reserves each query's estimated working set against the node's
// memory budget before it may start: queries that can never fit are
// rejected with kResourceExhausted immediately; queries that do not fit
// *right now* wait in a bounded queue. Cancellation and timeouts are
// cooperative — a fired token (or expired deadline) makes the query's
// remaining morsel dispatches no-ops, so the driver returns promptly with
// kCancelled / kDeadlineExceeded. Sequential operator phases do not poll
// the token; cancellation latency is bounded by the longest sequential
// phase, not by query runtime.
//
// Determinism: morsel boundaries and merge order are scheduler-independent,
// so every answer the service produces is bit-identical to running the same
// plan in isolation (tests/service_test.cc verifies all 22 TPC-H queries).
//
// Nothing here is on the default engine path: engine::Executor and every
// existing test/bench run exactly as before unless a caller constructs a
// QueryService.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "exec/counters.h"
#include "exec/relation.h"
#include "obs/flight/resource_report.h"
#include "service/admission.h"
#include "service/fair_scheduler.h"
#include "service/slo_tracker.h"

namespace wimpi::parallel {
class ThreadPool;
}  // namespace wimpi::parallel

namespace wimpi::service {

// Tail-based flight-recorder triggers (ISSUE #7): when a finished query
// matches one, its resource report goes to the process-wide slow-query
// log and — when `dump_path` is set — the recorder's recent history is
// retroactively dumped as a Chrome trace + JSONL.
struct FlightTriggerOptions {
  // Wall-time threshold marking a completed query slow. 0 falls back to
  // the query's SLO objective (if SLOs are configured); < 0 disables
  // latency triggers.
  int64_t latency_threshold_us = 0;
  // Also trigger on kDeadlineExceeded / kCancelled / kResourceExhausted.
  bool on_error = true;
  // Dump destination: "<path>" gets the Chrome trace, "<path>.jsonl" the
  // raw records; later dumps append ".1", ".2", ... Empty path = log
  // slow queries without writing dump files.
  std::string dump_path;
  // Cap on dump files per service (each dump rewrites the whole window).
  int max_dumps = 4;
  // History included before the triggering query's submit time, so the
  // dump shows what the node was busy with while the query waited.
  int64_t window_margin_us = 200 * 1000;
};

struct ServiceOptions {
  // Per-node memory budget the admission controller reserves against;
  // defaults to the paper's 1 GB wimpy node. <= 0 disables the budget.
  int64_t budget_bytes = int64_t{1} << 30;
  // Concurrently *running* queries (= driver threads).
  int max_active = 4;
  // Bounded admission queue; a submit beyond this depth is rejected with
  // kResourceExhausted instead of queueing without bound.
  int max_queue = 64;
  // Threads (including the driver) each query's parallel phases may use.
  int query_threads = 4;
  int64_t morsel_rows = 64 * 1024;
  // Priority applied when a QuerySpec leaves its own at 0.
  double default_priority = 1.0;
  // Also record per-session latency histograms
  // ("service.session.<id>.latency_us"). Off by default: thousands of
  // sessions would otherwise each allocate a registry histogram.
  bool track_session_metrics = false;
  // Pool the fair scheduler drains into; null means the process-wide
  // TaskScheduler pool.
  parallel::ThreadPool* pool = nullptr;
  // Per-priority-class latency objectives; tracking is off until an
  // objective is set (slo.default_objective_us > 0 or a per-class entry).
  SloOptions slo;
  // Tail-based flight-recorder triggers; see FlightTriggerOptions.
  FlightTriggerOptions flight;
};

// One query as submitted: a label, a plan closure producing the answer
// relation, and scheduling inputs. The plan runs on a service driver
// thread under that query's ExecOptions (thread count, morsel size,
// cancellation token, fair-scheduler lane).
struct QuerySpec {
  std::string label;
  std::function<exec::Relation(exec::QueryStats*)> plan;
  // Estimated working set (see EstimateWorkingSetBytes); reserved against
  // the budget for the query's whole run. <= 0 reserves nothing.
  int64_t estimated_bytes = 0;
  // Stride-scheduling weight; 0 means ServiceOptions::default_priority.
  double priority = 0;
  // Overrides ServiceOptions::query_threads when > 0.
  int num_threads = 0;
  // Wall-clock budget measured from submission; 0 means none.
  int64_t timeout_us = 0;
  // Owning session, for attribution (metrics / wimpi_top).
  std::string session_id;
};

namespace internal {
struct ServiceCore;
struct TicketState;
}  // namespace internal

// Handle to one submitted query. Copyable; all copies refer to the same
// underlying query. Valid even after the QueryService is destroyed (the
// service drains before shutdown, so the ticket is then Done).
class QueryTicket {
 public:
  QueryTicket() = default;

  // Blocks until the query finishes (completed, rejected, cancelled or
  // timed out) and returns its final status.
  Status Wait() const;
  bool Done() const;

  // Requests cooperative cancellation: a queued query finalizes without
  // starting; a running one aborts at its next morsel dispatch.
  void Cancel();

  // Moves out the answer relation. Only meaningful once Wait() returned
  // OK; at most one caller may take it.
  exec::Relation TakeResult();

  // Post-completion introspection (stable once Done()).
  const exec::QueryStats& stats() const;
  int64_t queue_wait_us() const;  // submit -> admission
  int64_t exec_us() const;        // admission -> finish
  int64_t pipelines() const;      // parallel pipelines run
  int64_t tasks() const;          // morsel tasks run
  // Service-wide query id (tags the query's flight-recorder events).
  uint64_t query_id() const;
  // Full resource accounting: wall/queue/CPU time, morsels, rows, bytes
  // scanned, memory peak (see obs/flight/resource_report.h).
  const obs::flight::QueryResourceReport& resources() const;

 private:
  friend class QueryService;
  QueryTicket(std::shared_ptr<internal::ServiceCore> core,
              std::shared_ptr<internal::TicketState> state)
      : core_(std::move(core)), state_(std::move(state)) {}

  std::shared_ptr<internal::ServiceCore> core_;
  std::shared_ptr<internal::TicketState> state_;
};

class QueryService {
 public:
  explicit QueryService(ServiceOptions opts = {});
  // Drains: waits for every queued and running query to finalize, then
  // stops the driver threads.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Admits or queues the query; returns its ticket. Submissions that can
  // never run (estimate over the whole budget) or do not fit the bounded
  // queue come back already Done with kResourceExhausted.
  QueryTicket Submit(QuerySpec spec);

  // Convenience: Submit + Wait.
  Status Execute(QuerySpec spec, exec::Relation* result = nullptr);

  // Point-in-time service state (also exported as service.* metrics).
  int active() const;
  int queued() const;

  // Admission state, for asserting peak reserved bytes never exceeded the
  // budget.
  const AdmissionController& admission() const;

 private:
  std::shared_ptr<internal::ServiceCore> core_;
  std::vector<std::thread> drivers_;
};

// A client session: a named principal submitting queries with a default
// priority. Sessions are lightweight objects — thousands can multiplex
// over the service's few driver threads (closed-loop benchmark clients are
// just loops around session.Execute).
class ClientSession {
 public:
  ClientSession(QueryService* service, std::string id, double priority = 0)
      : service_(service), id_(std::move(id)), priority_(priority) {}

  const std::string& id() const { return id_; }

  // Stamps the session id (and its priority, unless the spec sets one)
  // onto the spec and submits it.
  QueryTicket Submit(QuerySpec spec);
  Status Execute(QuerySpec spec, exec::Relation* result = nullptr);

 private:
  QueryService* service_;
  std::string id_;
  double priority_;
};

}  // namespace wimpi::service

#endif  // WIMPI_SERVICE_QUERY_SERVICE_H_
