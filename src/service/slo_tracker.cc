#include "service/slo_tracker.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace wimpi::service {

SloTracker::SloTracker(SloOptions opts) : opts_(std::move(opts)) {}

int64_t SloTracker::ObjectiveFor(double priority) const {
  const auto it = opts_.per_class_objective_us.find(ClassOf(priority));
  if (it != opts_.per_class_objective_us.end()) return it->second;
  return opts_.default_objective_us;
}

SloTracker::ClassState& SloTracker::StateFor(int cls) {
  auto [it, inserted] = classes_.emplace(cls, ClassState{});
  if (inserted) {
    auto& reg = obs::MetricsRegistry::Global();
    const std::string prefix = "slo.p" + std::to_string(cls) + ".";
    it->second.objective_g = &reg.gauge(prefix + "objective_us");
    it->second.attainment_g = &reg.gauge(prefix + "attainment");
    it->second.burn_g = &reg.gauge(prefix + "burn_rate");
    it->second.total_c = &reg.counter(prefix + "total");
    it->second.breaches_c = &reg.counter(prefix + "breaches");
  }
  return it->second;
}

void SloTracker::EvictLocked(ClassState& s, int64_t now_us) {
  const int64_t horizon = now_us - opts_.window_us;
  while (!s.window.empty() && s.window.front().first < horizon) {
    if (s.window.front().second) --s.window_met;
    s.window.pop_front();
  }
}

void SloTracker::Record(double priority, bool ok, int64_t latency_us,
                        int64_t now_us) {
  const int64_t objective = ObjectiveFor(priority);
  if (objective <= 0) return;
  const bool met = ok && latency_us <= objective;

  std::lock_guard<std::mutex> lock(mu_);
  ClassState& s = StateFor(ClassOf(priority));
  s.window.emplace_back(now_us, met);
  if (met) ++s.window_met;
  EvictLocked(s, now_us);

  s.total_c->Add(1);
  if (!met) s.breaches_c->Add(1);
  const double n = static_cast<double>(s.window.size());
  const double attainment =
      n == 0 ? 1.0 : static_cast<double>(s.window_met) / n;
  const double budget = std::max(1.0 - opts_.target, 1e-9);
  s.objective_g->Set(static_cast<double>(objective));
  s.attainment_g->Set(attainment);
  s.burn_g->Set((1.0 - attainment) / budget);
}

double SloTracker::Attainment(double priority) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = classes_.find(ClassOf(priority));
  if (it == classes_.end() || it->second.window.empty()) return 1.0;
  return static_cast<double>(it->second.window_met) /
         static_cast<double>(it->second.window.size());
}

double SloTracker::BurnRate(double priority) const {
  const double budget = std::max(1.0 - opts_.target, 1e-9);
  return (1.0 - Attainment(priority)) / budget;
}

}  // namespace wimpi::service
