#include "analysis/metrics.h"

#include <algorithm>

#include "common/logging.h"

namespace wimpi::analysis {

namespace {
// A single Raspberry Pi 3B+: $35 board, 5.1 W max draw, $0.0004/h at the
// US national average electricity price (paper Table I).
constexpr double kPiMsrp = 35.0;
constexpr double kPiHourly = 0.0004;
constexpr double kPiWatts = 5.1;
}  // namespace

double ServerMsrp(const hw::HardwareProfile& p) {
  if (p.msrp_usd < 0) return -1;
  return p.msrp_usd * p.sockets;
}

double PiClusterMsrp(int nodes) { return kPiMsrp * nodes; }

double ServerHourly(const hw::HardwareProfile& p) { return p.hourly_usd; }

double PiClusterHourly(int nodes) { return kPiHourly * nodes; }

double ServerEnergyJoules(const hw::HardwareProfile& p, double seconds) {
  if (p.tdp_watts < 0) return -1;
  return p.tdp_watts * seconds;
}

double PiClusterEnergyJoules(int nodes, double seconds) {
  return kPiWatts * nodes * seconds;
}

double Improvement(double server_runtime_s, double server_metric,
                   double pi_runtime_s, double pi_metric) {
  WIMPI_CHECK_GT(pi_runtime_s, 0.0);
  WIMPI_CHECK_GT(pi_metric, 0.0);
  return (server_runtime_s * server_metric) / (pi_runtime_s * pi_metric);
}

double Median(std::vector<double> values) {
  WIMPI_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

}  // namespace wimpi::analysis
