#ifndef WIMPI_ANALYSIS_POWER_H_
#define WIMPI_ANALYSIS_POWER_H_

// Idle power and energy proportionality (paper §III-B2): servers draw a
// large fraction of peak power while idle; Raspberry Pi nodes are nearly
// energy-proportional and can be switched off individually.

#include "hw/profile.h"

namespace wimpi::analysis {

struct PowerState {
  double active_watts = 0;
  double idle_watts = 0;
};

// Active/idle draw for a server profile (CPU-only, per the paper's
// methodology): idle modeled as a fraction of TDP (Xeons idle around
// 30-50% of TDP once uncore/DRAM are powered). Returns negative watts when
// the profile publishes no TDP.
PowerState ServerPower(const hw::HardwareProfile& p);

// Active/idle draw of one Pi 3B+: 5.1 W max, ~1.9 W idle (measured values
// commonly reported for the 3B+), ~0 W when powered off.
PowerState PiNodePower();

// Energy in joules for a duty-cycled workload: `busy_fraction` of
// `period_s` at active power, the rest idle. For the Pi cluster,
// `nodes_off` nodes are fully powered down during idle (the fine-grained
// resource control the paper highlights).
double ServerDutyCycleEnergy(const hw::HardwareProfile& p, double period_s,
                             double busy_fraction);
double PiClusterDutyCycleEnergy(int nodes, double period_s,
                                double busy_fraction, int nodes_off_when_idle);

// Energy proportionality index in [0,1]: 1 means power scales perfectly
// with load (idle draw 0), 0 means idle draw equals active draw.
double EnergyProportionality(const PowerState& s);

}  // namespace wimpi::analysis

#endif  // WIMPI_ANALYSIS_POWER_H_
