#include "analysis/power.h"

#include <algorithm>

namespace wimpi::analysis {

namespace {
constexpr double kServerIdleFraction = 0.45;  // of TDP, CPU package
constexpr double kPiActiveWatts = 5.1;
constexpr double kPiIdleWatts = 1.9;
}  // namespace

PowerState ServerPower(const hw::HardwareProfile& p) {
  if (p.tdp_watts < 0) return {-1, -1};
  return {p.tdp_watts, p.tdp_watts * kServerIdleFraction};
}

PowerState PiNodePower() { return {kPiActiveWatts, kPiIdleWatts}; }

double ServerDutyCycleEnergy(const hw::HardwareProfile& p, double period_s,
                             double busy_fraction) {
  const PowerState s = ServerPower(p);
  if (s.active_watts < 0) return -1;
  return period_s * (busy_fraction * s.active_watts +
                     (1 - busy_fraction) * s.idle_watts);
}

double PiClusterDutyCycleEnergy(int nodes, double period_s,
                                double busy_fraction,
                                int nodes_off_when_idle) {
  const PowerState s = PiNodePower();
  const int idle_nodes = std::max(0, nodes - nodes_off_when_idle);
  const double active_j = busy_fraction * period_s * nodes * s.active_watts;
  const double idle_j =
      (1 - busy_fraction) * period_s * idle_nodes * s.idle_watts;
  return active_j + idle_j;
}

double EnergyProportionality(const PowerState& s) {
  if (s.active_watts <= 0) return 0;
  return 1.0 - s.idle_watts / s.active_watts;
}

}  // namespace wimpi::analysis
