#ifndef WIMPI_ANALYSIS_METRICS_H_
#define WIMPI_ANALYSIS_METRICS_H_

#include <vector>

#include "hw/profile.h"

namespace wimpi::analysis {

// Cost and energy normalizations from Section III of the paper. All
// follow the paper's methodology exactly: servers are charged only for
// their CPUs (MSRP doubled for dual-socket machines, TDP per CPU), the Pi
// is charged for the whole board -- deliberately pessimistic for the Pi.

// Total CPU MSRP of a server ($; msrp x sockets). < 0 when unavailable.
double ServerMsrp(const hw::HardwareProfile& p);

// MSRP of an n-node Raspberry Pi 3B+ cluster ($35 per node).
double PiClusterMsrp(int nodes);

// Hourly cost ($/h). < 0 when unavailable.
double ServerHourly(const hw::HardwareProfile& p);

// Hourly electricity cost of an n-node Pi cluster (max draw x US average
// $/kWh, the paper's estimate of $0.0004/h per node).
double PiClusterHourly(int nodes);

// Energy in joules for a query of `seconds` (TDP-based, CPU only for
// servers; whole board for the Pi).
double ServerEnergyJoules(const hw::HardwareProfile& p, double seconds);
double PiClusterEnergyJoules(int nodes, double seconds);

// The paper's normalized-improvement factor: how much better the Pi
// configuration is once runtimes are weighted by the metric. > 1 means the
// Pi side wins; the break-even line in Figures 5-7 is 1.0.
//   improvement = (server_runtime x server_metric) /
//                 (pi_runtime x pi_metric)
double Improvement(double server_runtime_s, double server_metric,
                   double pi_runtime_s, double pi_metric);

// Median of a non-empty vector (used for the paper's median speedups).
double Median(std::vector<double> values);

}  // namespace wimpi::analysis

#endif  // WIMPI_ANALYSIS_METRICS_H_
