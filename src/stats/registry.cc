#include "stats/registry.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>

#include "exec/exec_options.h"

namespace wimpi::stats {
namespace {

// Process-global origin id allocator (0 is reserved for "unknown").
uint32_t NextOrigin() {
  static std::atomic<uint32_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

// Selectivity of one predicate given its column's statistics.
double PredicateSelectivity(const ColumnStats& cs, const exec::Predicate& p) {
  using Kind = exec::Predicate::Kind;
  using StrHint = exec::Predicate::StrHint;
  switch (p.kind()) {
    case Kind::kCmpI32:
    case Kind::kCmpI64:
      return cs.CmpSelectivity(p.op(), static_cast<double>(p.i64_lo()));
    case Kind::kCmpF64:
      return cs.CmpSelectivity(p.op(), p.f64_lo());
    case Kind::kBetweenI32:
      return cs.RangeSelectivity(static_cast<double>(p.i64_lo()),
                                 static_cast<double>(p.i64_hi()));
    case Kind::kBetweenF64:
      return cs.RangeSelectivity(p.f64_lo(), p.f64_hi());
    case Kind::kInI32: {
      double sel = 0;
      for (const int32_t v : p.in_values()) {
        sel += cs.EqSelectivityAt(static_cast<double>(v));
      }
      return std::min(sel, 1.0);
    }
    case Kind::kStrPred:
      // The dictionary test is opaque; the factory's shape hint picks the
      // formula (NDV is over dictionary codes = distinct values).
      switch (p.str_hint()) {
        case StrHint::kEq:
          return cs.EqSelectivity();
        case StrHint::kNe:
          return std::clamp(1.0 - cs.EqSelectivity(), 0.0, 1.0);
        case StrHint::kIn:
          return std::min(
              static_cast<double>(p.str_hint_count()) * cs.EqSelectivity(),
              1.0);
        case StrHint::kLike:
          return 0.1;  // classic System R magic constant
        case StrHint::kNotLike:
          return 0.9;
        case StrHint::kGeneric:
        case StrHint::kNone:
          return 0.25;
      }
      return 0.25;
  }
  return 1.0;
}

// Join-output estimate from per-key NDVs. Keys without statistics on
// either side contribute nothing (factor 1); one-sided-unknown keys use
// the containment assumption (the unknown side's key domain is contained
// in the known side's).
double JoinEstimate(const std::vector<const ColumnStats*>& build_stats,
                    int64_t build_rows,
                    const std::vector<const ColumnStats*>& probe_stats,
                    int64_t probe_rows, exec::JoinKind kind) {
  const double b = static_cast<double>(build_rows);
  const double p = static_cast<double>(probe_rows);
  if (build_rows == 0 || probe_rows == 0) {
    switch (kind) {
      case exec::JoinKind::kInner:
      case exec::JoinKind::kSemi:
        return 0;
      case exec::JoinKind::kAnti:
      case exec::JoinKind::kLeftOuter:
        return p;
    }
  }
  bool any_known = false;
  double inner_div = 1;   // ∏ max(db, dp)
  double semi_frac = 1;   // ∏ min(1, db/dp)
  const size_t nkeys = build_stats.size();
  for (size_t k = 0; k < nkeys; ++k) {
    const ColumnStats* bs = build_stats[k];
    const ColumnStats* ps = probe_stats[k];
    double db = bs != nullptr ? std::min(bs->ndv, b) : -1;
    double dp = ps != nullptr ? std::min(ps->ndv, p) : -1;
    if (db < 0 && dp < 0) continue;  // no information for this key
    any_known = true;
    if (db < 0) db = dp;  // containment
    if (dp < 0) dp = db;
    db = std::max(db, 1.0);
    dp = std::max(dp, 1.0);
    inner_div *= std::max(db, dp);
    semi_frac *= std::min(1.0, db / dp);
  }
  if (!any_known) return -1;
  double est = 0;
  switch (kind) {
    case exec::JoinKind::kInner:
      est = b * p / inner_div;
      break;
    case exec::JoinKind::kSemi:
      est = p * semi_frac;
      break;
    case exec::JoinKind::kAnti:
      est = p * (1.0 - semi_frac);
      break;
    case exec::JoinKind::kLeftOuter:
      est = std::max(b * p / inner_div, p);
      break;
  }
  return std::clamp(est, 0.0, b * p);
}

}  // namespace

const TableStats& StatsRegistry::Store(storage::Table& table, TableStats ts) {
  std::unique_lock lock(mu_);
  // Re-collecting: drop the old stats' origin entries first — they point
  // into the TableStats we are about to replace.
  const auto old = tables_.find(ts.table);
  if (old != tables_.end()) {
    for (const auto& [_, cs] : old->second.columns) {
      by_origin_.erase(cs.origin);
    }
  }
  TableStats& stored = tables_[ts.table] = std::move(ts);
  for (auto& [name, cs] : stored.columns) {
    cs.origin = NextOrigin();
    table.column(name).set_origin(cs.origin);
    by_origin_[cs.origin] = &cs;
  }
  return stored;
}

const TableStats& StatsRegistry::Collect(storage::Table& table,
                                         const StatsBuildOptions& opts) {
  // The heavy streaming pass runs outside the lock; only the map splice
  // and origin stamping are serialized.
  return Store(table, BuildTableStats(table, opts));
}

void StatsRegistry::CollectDatabase(const engine::Database& db,
                                    const StatsBuildOptions& opts) {
  for (const auto& [name, table] : db.tables()) {
    Collect(*table, opts);
  }
}

void StatsRegistry::EnableAutoCollect(const engine::Database* db,
                                      StatsBuildOptions opts) {
  std::unique_lock lock(mu_);
  auto_collect_db_ = db;
  // Lazy collection exists to be cheap: force a sampled build.
  if (opts.scan_stride <= 1) opts.scan_stride = 16;
  auto_collect_opts_ = opts;
}

const TableStats* StatsRegistry::Find(const std::string& table) const {
  std::shared_lock lock(mu_);
  const auto it = tables_.find(table);
  return it == tables_.end() ? nullptr : &it->second;
}

const ColumnStats* StatsRegistry::FindColumn(const std::string& table,
                                             const std::string& column) const {
  std::shared_lock lock(mu_);
  const auto it = tables_.find(table);
  return it == tables_.end() ? nullptr : it->second.Find(column);
}

const ColumnStats* StatsRegistry::FindByOriginLocked(uint32_t origin) const {
  if (origin == 0) return nullptr;
  const auto it = by_origin_.find(origin);
  return it == by_origin_.end() ? nullptr : it->second;
}

const ColumnStats* StatsRegistry::ResolveByOrigin(uint32_t origin) const {
  std::shared_lock lock(mu_);
  return FindByOriginLocked(origin);
}

const TableStats* StatsRegistry::MaybeAutoCollect(
    const storage::Table& table) const {
  StatsBuildOptions opts;
  {
    std::shared_lock lock(mu_);
    if (auto_collect_db_ == nullptr) return nullptr;
    if (!auto_collect_db_->HasTable(table.name())) return nullptr;
    opts = auto_collect_opts_;
  }
  if (!exec::CurrentExecOptions().collect_scan_stats) return nullptr;
  // Single-driver mode (see class comment): the const_cast stamps origin
  // tags on the base table's columns, which is only metadata the operators
  // never read, but is still a write — hence the documented restriction.
  StatsRegistry* self = const_cast<StatsRegistry*>(this);
  storage::Table& t = *auto_collect_db_->table_ptr(table.name());
  return &self->Collect(t, opts);
}

const ColumnStats* StatsRegistry::ResolveColumn(
    const exec::ColumnSource& src, const std::string& column) const {
  const storage::Column& col = src.column(column);
  {
    std::shared_lock lock(mu_);
    const ColumnStats* cs = FindByOriginLocked(col.origin());
    if (cs != nullptr) return cs;
    if (src.table() != nullptr) {
      const auto it = tables_.find(src.table()->name());
      if (it != tables_.end()) return it->second.Find(column);
    }
  }
  if (src.table() != nullptr) {
    const TableStats* ts = MaybeAutoCollect(*src.table());
    if (ts != nullptr) return ts->Find(column);
  }
  return nullptr;
}

double StatsRegistry::EstimateSelectivity(
    const std::string& table,
    const std::vector<exec::Predicate>& preds) const {
  std::shared_lock lock(mu_);
  const auto it = tables_.find(table);
  if (it == tables_.end()) return 1.0;
  double sel = 1.0;
  for (const exec::Predicate& p : preds) {
    const ColumnStats* cs = it->second.Find(p.column_name());
    if (cs == nullptr) continue;  // unknown column: no reduction assumed
    sel *= PredicateSelectivity(*cs, p);
  }
  return std::clamp(sel, 0.0, 1.0);
}

double StatsRegistry::EstimateJoinCardinality(
    const std::string& left, const std::string& right,
    const std::vector<std::pair<std::string, std::string>>& keys,
    exec::JoinKind kind) const {
  std::shared_lock lock(mu_);
  const auto lit = tables_.find(left);
  const auto rit = tables_.find(right);
  if (lit == tables_.end() || rit == tables_.end()) return -1;
  const int64_t lrows = lit->second.row_count;
  const int64_t rrows = rit->second.row_count;
  std::vector<const ColumnStats*> ls, rs;
  ls.reserve(keys.size());
  rs.reserve(keys.size());
  for (const auto& [lcol, rcol] : keys) {
    ls.push_back(lit->second.Find(lcol));
    rs.push_back(rit->second.Find(rcol));
  }
  return JoinEstimate(ls, lrows, rs, rrows, kind);
}

double StatsRegistry::EstimateFilterRows(const exec::ColumnSource& src,
                                         const exec::Predicate& pred,
                                         int64_t rows_in) const {
  const ColumnStats* cs = ResolveColumn(src, pred.column_name());
  if (cs == nullptr) return -1;
  return PredicateSelectivity(*cs, pred) * static_cast<double>(rows_in);
}

double StatsRegistry::EstimateColCmpRows(const exec::ColumnSource& src,
                                         const std::string& a,
                                         exec::CmpOp op, const std::string& b,
                                         int64_t rows_in) const {
  const double n = static_cast<double>(rows_in);
  if (op != exec::CmpOp::kEq && op != exec::CmpOp::kNe) {
    // Order comparison between two columns: the classic 1/3 heuristic
    // (no statistic captures their correlation).
    return n / 3.0;
  }
  const ColumnStats* as = ResolveColumn(src, a);
  const ColumnStats* bs = ResolveColumn(src, b);
  const double nda = as != nullptr ? as->ndv : -1;
  const double ndb = bs != nullptr ? bs->ndv : -1;
  const double d = std::max(nda, ndb);
  if (d < 1) return -1;
  const double eq = n / d;
  return op == exec::CmpOp::kEq ? eq : std::max(n - eq, 0.0);
}

double StatsRegistry::EstimateJoinRows(
    const std::vector<const storage::Column*>& build_keys, int64_t build_rows,
    const std::vector<const storage::Column*>& probe_keys, int64_t probe_rows,
    exec::JoinKind kind) const {
  std::vector<const ColumnStats*> bs, ps;
  bs.reserve(build_keys.size());
  ps.reserve(probe_keys.size());
  {
    std::shared_lock lock(mu_);
    for (const storage::Column* c : build_keys) {
      bs.push_back(FindByOriginLocked(c->origin()));
    }
    for (const storage::Column* c : probe_keys) {
      ps.push_back(FindByOriginLocked(c->origin()));
    }
  }
  return JoinEstimate(bs, build_rows, ps, probe_rows, kind);
}

double StatsRegistry::EstimateGroupRows(
    const exec::ColumnSource& src, const std::vector<std::string>& group_by,
    int64_t rows_in) const {
  if (rows_in <= 0) return 0;
  const double n = static_cast<double>(rows_in);
  if (group_by.empty()) return 1;
  double groups = 1;
  for (const std::string& col : group_by) {
    const ColumnStats* cs = ResolveColumn(src, col);
    // Unknown key column: sqrt(n) is the usual agnostic guess.
    groups *= cs != nullptr ? std::min(cs->ndv, n) : std::sqrt(n);
  }
  return std::clamp(groups, 1.0, n);
}

}  // namespace wimpi::stats
