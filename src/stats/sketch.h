#ifndef WIMPI_STATS_SKETCH_H_
#define WIMPI_STATS_SKETCH_H_

#include <cstdint>
#include <vector>

namespace wimpi::stats {

// HyperLogLog distinct-count sketch (Flajolet et al.). Callers feed
// already-hashed 64-bit values (wimpi::HashInt64 of the value's bit
// pattern, or of the dictionary code for strings); the sketch keeps the
// maximum leading-zero rank per register. Merge is a register-wise max,
// which is commutative and associative, so per-morsel shards merged in any
// order give the same registers as a single sequential pass — the property
// that makes parallel stats collection deterministic.
//
// At the default precision (2^14 registers, 16 KiB) the standard error is
// 1.04/sqrt(2^14) ~ 0.8%; stats_test asserts < 3% across a cardinality
// sweep. Small cardinalities use the linear-counting correction.
class HllSketch {
 public:
  static constexpr int kDefaultPrecision = 14;

  explicit HllSketch(int precision = kDefaultPrecision);

  // Adds one pre-hashed value.
  void AddHash(uint64_t hash);

  // Register-wise max; `other` must share this sketch's precision.
  void Merge(const HllSketch& other);

  // Bias-corrected cardinality estimate.
  double Estimate() const;

  int precision() const { return precision_; }
  const std::vector<uint8_t>& registers() const { return registers_; }

 private:
  int precision_;
  std::vector<uint8_t> registers_;
};

// Equi-depth histogram over a numeric sample: buckets()+1 bound values at
// evenly spaced sample quantiles plus the exact cumulative fractions of
// the sample at (<=) and strictly below (<) each bound, so duplicate-heavy
// (skewed) distributions keep their point masses. Selectivity queries
// interpolate linearly inside a bucket. Built from a deterministic stride
// sample of the column, so the histogram is identical at any thread count.
class EquiDepthHistogram {
 public:
  EquiDepthHistogram() = default;

  // Builds from an (unsorted) sample; `buckets` is the target bucket
  // count. An empty sample yields an empty histogram.
  static EquiDepthHistogram FromSample(std::vector<double> sample,
                                       int buckets);

  bool empty() const { return bounds_.empty(); }
  int buckets() const {
    return bounds_.empty() ? 0 : static_cast<int>(bounds_.size()) - 1;
  }
  double min() const { return bounds_.front(); }
  double max() const { return bounds_.back(); }
  const std::vector<double>& bounds() const { return bounds_; }

  // Fraction of values <= v (and < v), in [0, 1]. At an exact bucket
  // bound the point mass is resolved exactly against the sample; between
  // bounds both interpolate linearly (they differ only by point masses
  // the sample can't see there).
  double FractionAtMost(double v) const;
  double FractionBelow(double v) const;

  // Value at cumulative fraction q in [0, 1] (inverse of FractionAtMost).
  double Quantile(double q) const;

 private:
  std::vector<double> bounds_;  // bucket edges, strictly increasing
  std::vector<double> cum_le_;  // fraction of sample <= bounds_[i]
  std::vector<double> cum_lt_;  // fraction of sample <  bounds_[i]
};

}  // namespace wimpi::stats

#endif  // WIMPI_STATS_SKETCH_H_
