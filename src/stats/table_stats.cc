#include "stats/table_stats.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/hash.h"
#include "exec/morsel_exec.h"

namespace wimpi::stats {
namespace {

using storage::Column;
using storage::DataType;

// Value hashing matches the join's ValueHash exactly (same bit patterns in,
// same Murmur3 finalizer), so NDV estimates describe the very key
// distribution the hash join will see. Strings hash their dictionary code
// (codes map 1:1 to values within a shared dictionary).
uint64_t ValueHashAt(const Column& col, int64_t row) {
  switch (col.type()) {
    case DataType::kInt64:
      return HashInt64(static_cast<uint64_t>(col.I64Data()[row]));
    case DataType::kFloat64: {
      const double d = col.F64Data()[row];
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return HashInt64(bits);
    }
    default:
      return HashInt64(
          static_cast<uint64_t>(static_cast<uint32_t>(col.I32Data()[row])));
  }
}

double ValueAsF64(const Column& col, int64_t row) {
  switch (col.type()) {
    case DataType::kInt64:
      return static_cast<double>(col.I64Data()[row]);
    case DataType::kFloat64:
      return col.F64Data()[row];
    default:
      return static_cast<double>(col.I32Data()[row]);
  }
}

// Per-chunk partial accumulator. Every merge step below is independent of
// how rows were partitioned: HLL merge is a register max, min/max combine
// is a max/min, width sums are exact int64 adds, and the stride sample
// selects rows by *global* index (r % stride == 0), so concatenating
// shards in chunk order reproduces the sequential sample exactly.
struct Shard {
  explicit Shard(int precision) : hll(precision) {}
  HllSketch hll;
  bool any = false;
  double min = 0;
  double max = 0;
  int64_t width_sum = 0;  // string bytes over scanned rows
  std::vector<double> sample;
};

ColumnStats BuildColumnStats(const Column& col, const std::string& name,
                             int64_t n, const StatsBuildOptions& opts) {
  ColumnStats cs;
  cs.column = name;
  cs.type = col.type();
  cs.row_count = n;
  const bool numeric = cs.numeric();

  const int64_t row_stride = std::max<int64_t>(1, opts.scan_stride);
  const int64_t scanned =
      n == 0 ? 0 : (n + row_stride - 1) / row_stride;
  // Histogram rows are a sub-stride of the scanned rows (a multiple of
  // row_stride), targeting ~sample_target values.
  int64_t hist_stride = row_stride;
  if (opts.sample_target > 0 && scanned > opts.sample_target) {
    hist_stride = row_stride * (scanned / opts.sample_target);
  }
  cs.sample_rows = scanned;
  if (!numeric) {
    cs.avg_width = 0;  // filled from width_sum below
  } else {
    cs.avg_width = storage::TypeWidth(col.type());
  }
  if (n == 0) return cs;

  const int threads = exec::PlannedThreads(n);
  const int64_t chunk_rows =
      threads <= 1 ? n : (n + threads - 1) / threads;
  const int num_chunks =
      static_cast<int>((n + chunk_rows - 1) / chunk_rows);
  std::vector<Shard> shards;
  shards.reserve(num_chunks);
  for (int i = 0; i < num_chunks; ++i) shards.emplace_back(opts.hll_precision);

  auto scan = [&](int64_t begin, int64_t end, Shard& sh) {
    // First scanned global index at or after `begin`.
    int64_t r = begin % row_stride == 0
                    ? begin
                    : begin + (row_stride - begin % row_stride);
    const storage::Dictionary* dict =
        col.dict() != nullptr ? col.dict().get() : nullptr;
    const int32_t* codes = numeric ? nullptr : col.I32Data();
    for (; r < end; r += row_stride) {
      sh.hll.AddHash(ValueHashAt(col, r));
      if (numeric) {
        const double v = ValueAsF64(col, r);
        if (!sh.any || v < sh.min) sh.min = v;
        if (!sh.any || v > sh.max) sh.max = v;
        sh.any = true;
        if (r % hist_stride == 0) sh.sample.push_back(v);
      } else {
        sh.width_sum +=
            static_cast<int64_t>(dict->ValueAt(codes[r]).size());
      }
    }
  };

  if (threads <= 1) {
    scan(0, n, shards[0]);
  } else {
    exec::RunChunks(n, chunk_rows, threads,
                    [&](const parallel::Morsel& m) {
                      scan(m.begin, m.end, shards[m.index]);
                    });
  }

  // Merge in chunk order.
  Shard merged(opts.hll_precision);
  size_t sample_total = 0;
  for (const Shard& sh : shards) sample_total += sh.sample.size();
  merged.sample.reserve(sample_total);
  for (const Shard& sh : shards) {
    merged.hll.Merge(sh.hll);
    if (sh.any) {
      if (!merged.any || sh.min < merged.min) merged.min = sh.min;
      if (!merged.any || sh.max > merged.max) merged.max = sh.max;
      merged.any = true;
    }
    merged.width_sum += sh.width_sum;
    merged.sample.insert(merged.sample.end(), sh.sample.begin(),
                         sh.sample.end());
  }

  double d = merged.hll.Estimate();
  if (row_stride > 1 && scanned > 0) {
    // Sampled build: a key-like column (nearly every sampled value
    // distinct) extrapolates linearly; a low-NDV column has already shown
    // its whole domain to the sample.
    const double f =
        static_cast<double>(scanned) / static_cast<double>(n);
    if (d >= 0.9 * static_cast<double>(scanned)) d /= f;
  }
  cs.ndv = std::clamp(d, 0.0, static_cast<double>(n));
  if (numeric) {
    cs.min_value = merged.min;
    cs.max_value = merged.max;
    cs.histogram = EquiDepthHistogram::FromSample(std::move(merged.sample),
                                                  opts.histogram_buckets);
  } else if (scanned > 0) {
    cs.avg_width = static_cast<double>(merged.width_sum) /
                   static_cast<double>(scanned);
  }
  return cs;
}

}  // namespace

double ColumnStats::UniformFraction(double v, bool inclusive) const {
  if (max_value <= min_value) {
    // Degenerate (single-point) domain.
    if (v < min_value) return 0;
    if (v > min_value) return 1;
    return inclusive ? 1.0 : 0.0;
  }
  return std::clamp((v - min_value) / (max_value - min_value), 0.0, 1.0);
}

double ColumnStats::EqSelectivity() const {
  if (row_count <= 0) return 0;
  if (ndv <= 1) return 1;
  return std::clamp(1.0 / ndv, 0.0, 1.0);
}

double ColumnStats::EqSelectivityAt(double v) const {
  if (row_count <= 0) return 0;
  if (numeric() && (v < min_value || v > max_value)) return 0;
  // Integral domains: the histogram's point mass at v is exact for heavy
  // hitters the sample resolved; between resolved points fall back to the
  // uniform 1/NDV.
  if (!histogram.empty() && type != storage::DataType::kFloat64) {
    const double mass =
        histogram.FractionAtMost(v) - histogram.FractionBelow(v);
    if (mass > 0) return std::clamp(mass, 0.0, 1.0);
  }
  return EqSelectivity();
}

double ColumnStats::CmpSelectivity(exec::CmpOp op, double v) const {
  if (row_count <= 0) return 0;
  double sel = 0;
  switch (op) {
    case exec::CmpOp::kEq:
      return EqSelectivityAt(v);
    case exec::CmpOp::kNe:
      return std::clamp(1.0 - EqSelectivityAt(v), 0.0, 1.0);
    case exec::CmpOp::kLt:
      sel = histogram.empty() ? UniformFraction(v, false)
                              : histogram.FractionBelow(v);
      break;
    case exec::CmpOp::kLe:
      sel = histogram.empty() ? UniformFraction(v, true)
                              : histogram.FractionAtMost(v);
      break;
    case exec::CmpOp::kGt:
      sel = 1.0 - (histogram.empty() ? UniformFraction(v, true)
                                     : histogram.FractionAtMost(v));
      break;
    case exec::CmpOp::kGe:
      sel = 1.0 - (histogram.empty() ? UniformFraction(v, false)
                                     : histogram.FractionBelow(v));
      break;
  }
  return std::clamp(sel, 0.0, 1.0);
}

double ColumnStats::RangeSelectivity(double lo, double hi) const {
  if (row_count <= 0 || hi < lo) return 0;
  const double below_hi = histogram.empty() ? UniformFraction(hi, true)
                                            : histogram.FractionAtMost(hi);
  const double below_lo = histogram.empty() ? UniformFraction(lo, false)
                                            : histogram.FractionBelow(lo);
  return std::clamp(below_hi - below_lo, 0.0, 1.0);
}

TableStats BuildTableStats(const storage::Table& table,
                           const StatsBuildOptions& opts) {
  TableStats ts;
  ts.table = table.name();
  ts.row_count = table.num_rows();
  const storage::Schema& schema = table.schema();
  for (int i = 0; i < schema.num_fields(); ++i) {
    const std::string& name = schema.field(i).name;
    ts.columns.emplace(
        name, BuildColumnStats(table.column(i), name, ts.row_count, opts));
  }
  return ts;
}

}  // namespace wimpi::stats
