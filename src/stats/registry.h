#ifndef WIMPI_STATS_REGISTRY_H_
#define WIMPI_STATS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "engine/database.h"
#include "exec/estimator.h"
#include "stats/table_stats.h"

namespace wimpi::stats {

// Catalog of table/column statistics plus the cardinality estimator built
// on them (DESIGN.md §13). Collect() runs one streaming pass over a table
// (parallel under the ambient exec options, bit-identical at any thread
// count) and stamps a process-unique origin id on every base column, so
// intermediates that gathered from that column still resolve to its
// statistics during estimation.
//
// The estimator side implements exec::CardinalityEstimator: install a
// registry via Executor::set_cardinality_estimator (or ExecOptions) and
// every operator records its prediction in OpStats.est_rows next to the
// measured actuals. Estimates are observational only — answers are
// bit-identical with or without them.
//
// Concurrency: Find/Estimate* take a shared lock, Collect an exclusive
// one, so concurrent estimation against a stable registry is safe, as is
// eager collection of different tables from several threads. The lazy
// EnableAutoCollect mode additionally stamps origins on base columns
// during estimation, which can race with concurrent readers of those
// columns' origin tags — use it only from a single query driver; services
// running concurrent queries should CollectDatabase eagerly before
// arming the estimator.
class StatsRegistry : public exec::CardinalityEstimator {
 public:
  StatsRegistry() = default;

  // Collects (or re-collects) statistics for `table` with one streaming
  // pass and stamps origin ids on its columns. Returns the stored stats.
  const TableStats& Collect(storage::Table& table,
                            const StatsBuildOptions& opts = {});

  // Eagerly collects every table in `db` (deterministic name order).
  void CollectDatabase(const engine::Database& db,
                       const StatsBuildOptions& opts = {});

  // Arms lazy collection: the first estimate that touches an un-collected
  // base table of `db` builds its statistics from a deterministic stride
  // sample (opts.scan_stride forced > 1) — but only while the ambient
  // ExecOptions.collect_scan_stats flag is on. Single-driver only (see
  // class comment). Pass nullptr to disarm.
  void EnableAutoCollect(const engine::Database* db,
                         StatsBuildOptions opts = DefaultSampledOptions());

  static StatsBuildOptions DefaultSampledOptions() {
    StatsBuildOptions o;
    o.scan_stride = 16;
    return o;
  }

  // -- Lookup --
  const TableStats* Find(const std::string& table) const;
  const ColumnStats* FindColumn(const std::string& table,
                                const std::string& column) const;

  // -- Optimizer entry points --

  // Fraction of `table`'s rows surviving the conjunction `preds`
  // (independence assumption; conjuncts on unknown columns contribute 1).
  double EstimateSelectivity(const std::string& table,
                             const std::vector<exec::Predicate>& preds) const;

  // Output rows of left JOIN right on the given (left column, right
  // column) key pairs; left is the build side. Negative when neither
  // side has statistics for any key.
  double EstimateJoinCardinality(
      const std::string& left, const std::string& right,
      const std::vector<std::pair<std::string, std::string>>& keys,
      exec::JoinKind kind = exec::JoinKind::kInner) const;

  // -- exec::CardinalityEstimator --
  double EstimateFilterRows(const exec::ColumnSource& src,
                            const exec::Predicate& pred,
                            int64_t rows_in) const override;
  double EstimateColCmpRows(const exec::ColumnSource& src,
                            const std::string& a, exec::CmpOp op,
                            const std::string& b,
                            int64_t rows_in) const override;
  double EstimateJoinRows(const std::vector<const storage::Column*>& build_keys,
                          int64_t build_rows,
                          const std::vector<const storage::Column*>& probe_keys,
                          int64_t probe_rows,
                          exec::JoinKind kind) const override;
  double EstimateGroupRows(const exec::ColumnSource& src,
                           const std::vector<std::string>& group_by,
                           int64_t rows_in) const override;

 private:
  // Stores freshly built stats and stamps origins; caller holds no lock.
  const TableStats& Store(storage::Table& table, TableStats ts);

  // Column stats by origin tag (locked).
  const ColumnStats* FindByOriginLocked(uint32_t origin) const;

  // Resolves a named column of `src` to its statistics: by the column's
  // origin tag first, then (base tables) by table name; triggers a lazy
  // auto-collect when armed. Takes/releases the lock internally.
  const ColumnStats* ResolveColumn(const exec::ColumnSource& src,
                                   const std::string& column) const;
  const ColumnStats* ResolveByOrigin(uint32_t origin) const;

  // Lazily collects `table` under auto-collect, if armed and allowed.
  // Returns the table's stats or nullptr.
  const TableStats* MaybeAutoCollect(const storage::Table& table) const;

  mutable std::shared_mutex mu_;
  // node-stable: ColumnStats pointers in by_origin_ point into this map.
  mutable std::map<std::string, TableStats> tables_;
  mutable std::map<uint32_t, const ColumnStats*> by_origin_;

  const engine::Database* auto_collect_db_ = nullptr;
  StatsBuildOptions auto_collect_opts_;
};

}  // namespace wimpi::stats

#endif  // WIMPI_STATS_REGISTRY_H_
