#include "stats/sketch.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.h"

namespace wimpi::stats {

HllSketch::HllSketch(int precision) : precision_(precision) {
  WIMPI_CHECK(precision >= 4 && precision <= 18);
  registers_.assign(size_t{1} << precision_, 0);
}

void HllSketch::AddHash(uint64_t hash) {
  const uint64_t idx = hash >> (64 - precision_);
  const uint64_t rest = hash << precision_;
  // Rank = leading zeros of the remaining 64-p bits, plus one. An all-zero
  // remainder gets the maximum rank.
  const int rank =
      rest == 0 ? 64 - precision_ + 1 : std::countl_zero(rest) + 1;
  uint8_t& reg = registers_[idx];
  if (rank > reg) reg = static_cast<uint8_t>(rank);
}

void HllSketch::Merge(const HllSketch& other) {
  WIMPI_CHECK_EQ(precision_, other.precision_);
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

double HllSketch::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  const double alpha = 0.7213 / (1.0 + 1.079 / m);
  double inv_sum = 0;
  int64_t zeros = 0;
  for (const uint8_t reg : registers_) {
    // ldexp keeps each term an exact power of two, so the sum is the same
    // at every summation order the merge might have produced — it didn't
    // produce any: registers are merged before estimation, and this loop is
    // always sequential. Exactness still helps cross-host determinism.
    inv_sum += std::ldexp(1.0, -static_cast<int>(reg));
    if (reg == 0) ++zeros;
  }
  const double raw = alpha * m * m / inv_sum;
  if (raw <= 2.5 * m && zeros > 0) {
    // Linear counting: much more accurate in the small-cardinality regime.
    return m * std::log(m / static_cast<double>(zeros));
  }
  return raw;
}

EquiDepthHistogram EquiDepthHistogram::FromSample(std::vector<double> sample,
                                                  int buckets) {
  EquiDepthHistogram h;
  if (sample.empty() || buckets <= 0) return h;
  std::sort(sample.begin(), sample.end());
  const size_t s = sample.size();
  const int b = std::min<int>(buckets, static_cast<int>(s));
  h.bounds_.reserve(b + 1);
  h.cum_le_.reserve(b + 1);
  h.cum_lt_.reserve(b + 1);
  for (int i = 0; i <= b; ++i) {
    const size_t pos = (i * (s - 1)) / b;
    const double bound = sample[pos];
    // Collapse duplicate bounds (heavy hitters spanning several quantile
    // positions); the cumulative fractions at the bound already carry the
    // point mass.
    if (!h.bounds_.empty() && bound == h.bounds_.back()) continue;
    const auto le = std::upper_bound(sample.begin(), sample.end(), bound) -
                    sample.begin();
    const auto lt = std::lower_bound(sample.begin(), sample.end(), bound) -
                    sample.begin();
    h.bounds_.push_back(bound);
    h.cum_le_.push_back(static_cast<double>(le) / static_cast<double>(s));
    h.cum_lt_.push_back(static_cast<double>(lt) / static_cast<double>(s));
  }
  return h;
}

double EquiDepthHistogram::FractionAtMost(double v) const {
  if (bounds_.empty()) return 0;
  if (v < bounds_.front()) return 0;
  if (v >= bounds_.back()) return 1;
  // bounds_[j] <= v < bounds_[j+1]
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v);
  const size_t j = static_cast<size_t>(it - bounds_.begin()) - 1;
  if (v == bounds_[j]) return cum_le_[j];
  // Interpolate over the open interval: from "everything <= lower bound"
  // to "everything strictly below the upper bound".
  const double lo = bounds_[j], hi = bounds_[j + 1];
  const double clo = cum_le_[j], chi = cum_lt_[j + 1];
  return clo + (chi - clo) * (v - lo) / (hi - lo);
}

double EquiDepthHistogram::FractionBelow(double v) const {
  if (bounds_.empty()) return 0;
  if (v <= bounds_.front()) return 0;
  if (v > bounds_.back()) return 1;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  if (it != bounds_.end() && *it == v) {
    return cum_lt_[static_cast<size_t>(it - bounds_.begin())];
  }
  return FractionAtMost(v);
}

double EquiDepthHistogram::Quantile(double q) const {
  if (bounds_.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= cum_le_.front()) return bounds_.front();
  if (q >= cum_le_.back()) return bounds_.back();
  const auto it = std::lower_bound(cum_le_.begin(), cum_le_.end(), q);
  const size_t j = static_cast<size_t>(it - cum_le_.begin());
  // The point mass at bounds_[j] spans [cum_lt_[j], cum_le_[j]]; any q in
  // that span is the bound itself. Below it, interpolate the continuous
  // part of the bucket.
  if (q >= cum_lt_[j]) return bounds_[j];
  const double clo = cum_le_[j - 1], chi = cum_lt_[j];
  const double lo = bounds_[j - 1], hi = bounds_[j];
  if (chi <= clo) return hi;
  return lo + (hi - lo) * (q - clo) / (chi - clo);
}

}  // namespace wimpi::stats
