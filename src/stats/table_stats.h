#ifndef WIMPI_STATS_TABLE_STATS_H_
#define WIMPI_STATS_TABLE_STATS_H_

#include <cstdint>
#include <map>
#include <string>

#include "exec/filter.h"
#include "stats/sketch.h"
#include "storage/table.h"
#include "storage/types.h"

namespace wimpi::stats {

// Statistics for one column, built in a single streaming pass (eagerly or
// from a stride sample — see StatsBuildOptions). String columns carry NDV
// (over dictionary codes, which map 1:1 to values) and average value
// length but no histogram or min/max (codes have no value order).
struct ColumnStats {
  std::string column;
  storage::DataType type = storage::DataType::kInt32;
  // Statistics identity stamped on the base column by StatsRegistry and
  // propagated through gathers; 0 until registered.
  uint32_t origin = 0;

  int64_t row_count = 0;
  // Always 0: the engine stores no NULLs (see storage::Column). Kept so
  // the stats schema matches what a general optimizer expects.
  int64_t null_count = 0;
  // Rows that actually fed the sketches (== row_count for an eager build,
  // fewer for a sampled one).
  int64_t sample_rows = 0;

  double ndv = 0;        // HyperLogLog estimate, clamped to [0, row_count]
  double min_value = 0;  // numeric columns only (0 for strings)
  double max_value = 0;
  double avg_width = 0;  // bytes per value; mean length for strings
  EquiDepthHistogram histogram;  // numeric columns only

  bool numeric() const { return type != storage::DataType::kString; }

  // -- Selectivity formulas (System R style + histogram refinements). All
  // return a fraction clamped to [0, 1]; they assume this struct holds
  // real statistics (callers check existence first). --

  // P(col == v): the histogram point mass where the sample resolves it
  // (heavy hitters on integral columns), else 1/NDV.
  double EqSelectivityAt(double v) const;
  double EqSelectivity() const;  // 1/NDV, no value known
  // P(col <op> v) for an order comparison or equality.
  double CmpSelectivity(exec::CmpOp op, double v) const;
  // P(lo <= col <= hi), bounds inclusive.
  double RangeSelectivity(double lo, double hi) const;

 private:
  // Histogram-less fallback: fraction <= v (inclusive) or < v assuming a
  // uniform distribution over [min_value, max_value].
  double UniformFraction(double v, bool inclusive) const;
};

// Statistics for one table, keyed by column name.
struct TableStats {
  std::string table;
  int64_t row_count = 0;
  std::map<std::string, ColumnStats> columns;

  const ColumnStats* Find(const std::string& column) const {
    const auto it = columns.find(column);
    return it == columns.end() ? nullptr : &it->second;
  }
};

struct StatsBuildOptions {
  int hll_precision = HllSketch::kDefaultPrecision;
  int histogram_buckets = 64;
  // Target histogram sample size; the sample takes every k-th row for the
  // deterministic k that lands closest at or under the target.
  int64_t sample_target = 16 * 1024;
  // 1 = eager (every row feeds the sketches). > 1 = sampled build: only
  // every scan_stride-th row is read; NDV is scaled up for key-like
  // columns and min/max are those of the sample. Used by the lazy
  // collect-during-scans mode.
  int64_t scan_stride = 1;
};

// One streaming pass over every column of `table`. Parallel under the
// ambient exec options (per-chunk shards merged in chunk order; every
// merge step — HLL register max, min/max, integer width sums, global-
// index stride samples — is partition-independent), so the result is
// bit-identical at any thread count and morsel size.
TableStats BuildTableStats(const storage::Table& table,
                           const StatsBuildOptions& opts = {});

}  // namespace wimpi::stats

#endif  // WIMPI_STATS_TABLE_STATS_H_
