#include "strategies/strategies.h"

#include <cstdio>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/date.h"
#include "common/strings.h"
#include "tpch/dbgen.h"

namespace wimpi::strategies {
namespace {

using engine::Database;
using exec::OpStats;
using exec::QueryStats;
using storage::Column;
using storage::Table;

// Per-strategy modeling knobs. Branch cost applies per tuple-at-a-time
// predicate test (mispredict exposure); the random-access discount models
// how well probes overlap (batched probes prefetch, lone probes stall).
struct StrategyTraits {
  double branch_cost;   // extra ops per short-circuit predicate test
  double vector_cost;   // ops per vectorized predicate element
  double rand_factor;   // multiplier on probe rand_count
};

StrategyTraits Traits(Strategy s) {
  switch (s) {
    case Strategy::kDataCentric:
      return {3.0, 0.0, 1.0};
    case Strategy::kHybrid:
      return {0.0, 1.2, 0.7};
    case Strategy::kAccessAware:
      return {0.0, 1.0, 0.5};
  }
  return {0, 0, 0};
}

void Record(QueryStats* stats, const char* op, double ops, double bytes,
            double rand_count = 0, double rand_struct = 0) {
  if (stats == nullptr) return;
  OpStats s;
  s.op = op;
  s.compute_ops = ops;
  s.seq_bytes = bytes;
  s.rand_count = rand_count;
  s.rand_struct_bytes = rand_struct;
  stats->Add(std::move(s));
}

StratResult ToResult(const std::map<std::string, double>& m) {
  return StratResult(m.begin(), m.end());
}

int32_t Code(const Column& col, std::string_view value) {
  return col.dict()->Find(value);
}

// ---------------------------------------------------------------------
// Q1: scan lineitem, filter on shipdate, aggregate by (rf, ls).
// ---------------------------------------------------------------------
StratResult Q1(Strategy strat, const Database& db, QueryStats* stats) {
  const StrategyTraits t = Traits(strat);
  const Table& l = db.table("lineitem");
  const int64_t n = l.num_rows();
  const int32_t cutoff = ParseDate("1998-12-01") - 90;

  const int32_t* ship = l.column("l_shipdate").I32Data();
  const int32_t* rf = l.column("l_returnflag").I32Data();
  const int32_t* ls = l.column("l_linestatus").I32Data();
  const double* qty = l.column("l_quantity").F64Data();
  const double* price = l.column("l_extendedprice").F64Data();
  const double* disc = l.column("l_discount").F64Data();
  const double* tax = l.column("l_tax").F64Data();

  // Aggregate state indexed by (rf_code, ls_code); both dictionaries are
  // tiny (<= 3 entries).
  struct Acc {
    double qty = 0, base = 0, disc_price = 0, charge = 0;
    int64_t count = 0;
  };
  std::map<std::pair<int32_t, int32_t>, Acc> groups;
  auto update = [&](int64_t i) {
    Acc& a = groups[{rf[i], ls[i]}];
    const double dp = price[i] * (1 - disc[i]);
    a.qty += qty[i];
    a.base += price[i];
    a.disc_price += dp;
    a.charge += dp * (1 + tax[i]);
    ++a.count;
  };

  int64_t selected = 0;
  if (strat == Strategy::kDataCentric) {
    for (int64_t i = 0; i < n; ++i) {
      if (ship[i] > cutoff) continue;  // branch per tuple
      update(i);
      ++selected;
    }
    Record(stats, "q1_fused_scan",
           n * (1 + t.branch_cost) + 10.0 * selected,
           n * 4.0 + selected * (8.0 * 5 + 8));
  } else if (strat == Strategy::kHybrid) {
    constexpr int64_t kBlock = 1024;
    std::vector<int32_t> sel(kBlock);
    for (int64_t base = 0; base < n; base += kBlock) {
      const int64_t end = std::min(n, base + kBlock);
      int64_t cnt = 0;
      for (int64_t i = base; i < end; ++i) {
        sel[cnt] = static_cast<int32_t>(i);
        cnt += ship[i] <= cutoff ? 1 : 0;  // branchless select
      }
      for (int64_t k = 0; k < cnt; ++k) update(sel[k]);
      selected += cnt;
    }
    Record(stats, "q1_block_scan",
           n * t.vector_cost + 10.0 * selected,
           n * 4.0 + selected * (4 + 8.0 * 5 + 8));
  } else {  // kAccessAware: full-column bitmap, then dense pass
    std::vector<uint8_t> pass(n);
    for (int64_t i = 0; i < n; ++i) pass[i] = ship[i] <= cutoff ? 1 : 0;
    for (int64_t i = 0; i < n; ++i) {
      if (pass[i]) {
        update(i);
        ++selected;
      }
    }
    Record(stats, "q1_pullup_scan",
           n * t.vector_cost + n * 0.5 + 10.0 * selected,
           n * 4.0 + 2.0 * n + selected * (8.0 * 5 + 8));
  }

  std::map<std::string, double> out;
  const auto& rfd = *l.column("l_returnflag").dict();
  const auto& lsd = *l.column("l_linestatus").dict();
  for (const auto& [k, a] : groups) {
    const std::string key =
        std::string(rfd.ValueAt(k.first)) + "|" +
        std::string(lsd.ValueAt(k.second));
    out[key] = a.disc_price;
    out[key + "#count"] = static_cast<double>(a.count);
    out[key + "#charge"] = a.charge;
  }
  return ToResult(out);
}

// ---------------------------------------------------------------------
// Q6: scan lineitem, three predicates, global sum.
// ---------------------------------------------------------------------
StratResult Q6(Strategy strat, const Database& db, QueryStats* stats) {
  const StrategyTraits t = Traits(strat);
  const Table& l = db.table("lineitem");
  const int64_t n = l.num_rows();
  const int32_t lo = ParseDate("1994-01-01");
  const int32_t hi = ParseDate("1994-12-31");

  const int32_t* ship = l.column("l_shipdate").I32Data();
  const double* qty = l.column("l_quantity").F64Data();
  const double* price = l.column("l_extendedprice").F64Data();
  const double* disc = l.column("l_discount").F64Data();

  double rev = 0;
  if (strat == Strategy::kDataCentric) {
    int64_t s1 = 0, s2 = 0, s3 = 0;
    for (int64_t i = 0; i < n; ++i) {
      if (ship[i] < lo || ship[i] > hi) continue;
      ++s1;
      if (disc[i] < 0.05 || disc[i] > 0.07) continue;
      ++s2;
      if (qty[i] >= 24) continue;
      ++s3;
      rev += price[i] * disc[i];
    }
    Record(stats, "q6_fused_scan",
           n * (1 + t.branch_cost) + s1 * (1 + t.branch_cost) +
               s2 * (1 + t.branch_cost) + s3 * 2,
           n * 4.0 + s1 * 8.0 + s2 * 8.0 + s3 * 16.0);
  } else if (strat == Strategy::kHybrid) {
    constexpr int64_t kBlock = 1024;
    std::vector<int32_t> sel(kBlock), sel2(kBlock);
    int64_t s1 = 0, s2 = 0;
    for (int64_t base = 0; base < n; base += kBlock) {
      const int64_t end = std::min(n, base + kBlock);
      int64_t c1 = 0;
      for (int64_t i = base; i < end; ++i) {
        sel[c1] = static_cast<int32_t>(i);
        c1 += (ship[i] >= lo && ship[i] <= hi) ? 1 : 0;
      }
      int64_t c2 = 0;
      for (int64_t k = 0; k < c1; ++k) {
        const int32_t i = sel[k];
        sel2[c2] = i;
        c2 += (disc[i] >= 0.05 && disc[i] <= 0.07) ? 1 : 0;
      }
      for (int64_t k = 0; k < c2; ++k) {
        const int32_t i = sel2[k];
        if (qty[i] < 24) rev += price[i] * disc[i];
      }
      s1 += c1;
      s2 += c2;
    }
    Record(stats, "q6_block_scan",
           n * t.vector_cost + s1 * t.vector_cost + s2 * 3,
           n * 4.0 + s1 * 8.0 + s2 * 24.0);
  } else {  // kAccessAware
    std::vector<uint8_t> b1(n), b2(n), b3(n);
    for (int64_t i = 0; i < n; ++i) b1[i] = ship[i] >= lo && ship[i] <= hi;
    for (int64_t i = 0; i < n; ++i) b2[i] = disc[i] >= 0.05 && disc[i] <= 0.07;
    for (int64_t i = 0; i < n; ++i) b3[i] = qty[i] < 24;
    int64_t s3 = 0;
    for (int64_t i = 0; i < n; ++i) {
      if (b1[i] & b2[i] & b3[i]) {
        rev += price[i] * disc[i];
        ++s3;
      }
    }
    Record(stats, "q6_pullup_scan",
           n * t.vector_cost * 3 + n * 0.5 + s3 * 2,
           n * (4.0 + 8 + 8) + 6.0 * n + s3 * 16.0);
  }

  return {{"revenue", rev}};
}

// ---------------------------------------------------------------------
// Join-query machinery shared by Q3/Q4/Q5/Q14/Q19: per-key lookup arrays
// built once per run (build cost recorded identically for all strategies;
// the strategies differ in the probe/scan loop structure).
// ---------------------------------------------------------------------

// Scans lineitem with a per-tuple predicate + action, emitting counters in
// the given strategy's style. `pred_cols_bytes` is the per-tuple byte
// weight of predicate columns; `payload_bytes` the per-selected-tuple
// payload weight.
template <typename Pred, typename Action>
int64_t StrategyScan(Strategy strat, int64_t n, Pred pred, Action action,
                     double pred_cols_bytes, double payload_bytes,
                     double action_ops, QueryStats* stats, const char* name) {
  const StrategyTraits t = Traits(strat);
  int64_t selected = 0;
  if (strat == Strategy::kDataCentric) {
    for (int64_t i = 0; i < n; ++i) {
      if (!pred(i)) continue;
      action(i);
      ++selected;
    }
    Record(stats, name, n * (1 + t.branch_cost) + selected * action_ops,
           n * pred_cols_bytes + selected * payload_bytes);
  } else if (strat == Strategy::kHybrid) {
    constexpr int64_t kBlock = 1024;
    std::vector<int32_t> sel(kBlock);
    for (int64_t base = 0; base < n; base += kBlock) {
      const int64_t end = std::min(n, base + kBlock);
      int64_t cnt = 0;
      for (int64_t i = base; i < end; ++i) {
        sel[cnt] = static_cast<int32_t>(i);
        cnt += pred(i) ? 1 : 0;
      }
      for (int64_t k = 0; k < cnt; ++k) action(sel[k]);
      selected += cnt;
    }
    Record(stats, name, n * t.vector_cost + selected * action_ops,
           n * pred_cols_bytes + selected * (payload_bytes + 4));
  } else {  // kAccessAware
    std::vector<uint8_t> pass(n);
    for (int64_t i = 0; i < n; ++i) pass[i] = pred(i) ? 1 : 0;
    for (int64_t i = 0; i < n; ++i) {
      if (pass[i]) {
        action(i);
        ++selected;
      }
    }
    Record(stats, name, n * t.vector_cost + n * 0.5 + selected * action_ops,
           n * pred_cols_bytes + 2.0 * n + selected * payload_bytes);
  }
  return selected;
}

// ---------------------------------------------------------------------
// Q3
// ---------------------------------------------------------------------
StratResult Q3(Strategy strat, const Database& db, QueryStats* stats) {
  const StrategyTraits t = Traits(strat);
  const int32_t cutoff = ParseDate("1995-03-15");

  // Build side (identical across strategies).
  const Table& c = db.table("customer");
  const int32_t seg = Code(c.column("c_mktsegment"), "BUILDING");
  std::vector<uint8_t> building(c.num_rows() + 1, 0);
  {
    const int32_t* key = c.column("c_custkey").I32Data();
    const int32_t* m = c.column("c_mktsegment").I32Data();
    for (int64_t i = 0; i < c.num_rows(); ++i) {
      if (m[i] == seg) building[key[i]] = 1;
    }
    Record(stats, "q3_build_customer", c.num_rows() * 2.0,
           c.num_rows() * 9.0);
  }
  const Table& o = db.table("orders");
  std::unordered_map<int64_t, int32_t> order_date;
  {
    const int64_t* okey = o.column("o_orderkey").I64Data();
    const int32_t* ckey = o.column("o_custkey").I32Data();
    const int32_t* date = o.column("o_orderdate").I32Data();
    for (int64_t i = 0; i < o.num_rows(); ++i) {
      if (date[i] < cutoff && building[ckey[i]]) order_date[okey[i]] = date[i];
    }
    Record(stats, "q3_build_orders", o.num_rows() * 8.0, o.num_rows() * 16.0,
           o.num_rows(), static_cast<double>(o.num_rows()) * 16);
  }

  const Table& l = db.table("lineitem");
  const int64_t* lokey = l.column("l_orderkey").I64Data();
  const int32_t* ship = l.column("l_shipdate").I32Data();
  const double* price = l.column("l_extendedprice").F64Data();
  const double* disc = l.column("l_discount").F64Data();

  std::unordered_map<int64_t, double> revenue;
  const int64_t selected = StrategyScan(
      strat, l.num_rows(), [&](int64_t i) { return ship[i] > cutoff; },
      [&](int64_t i) {
        auto it = order_date.find(lokey[i]);
        if (it != order_date.end()) {
          revenue[lokey[i]] += price[i] * (1 - disc[i]);
        }
      },
      4.0, 24.0, 10.0, stats, "q3_probe_scan");
  Record(stats, "q3_probes", 0, 0, selected * t.rand_factor,
         static_cast<double>(order_date.size()) * 24);

  std::map<std::string, double> out;
  char buf[32];
  for (const auto& [k, v] : revenue) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(k));
    out[buf] = v;
  }
  return ToResult(out);
}

// ---------------------------------------------------------------------
// Q4
// ---------------------------------------------------------------------
StratResult Q4(Strategy strat, const Database& db, QueryStats* stats) {
  const StrategyTraits t = Traits(strat);
  const Table& l = db.table("lineitem");
  const int64_t* lokey = l.column("l_orderkey").I64Data();
  const int32_t* commit = l.column("l_commitdate").I32Data();
  const int32_t* receipt = l.column("l_receiptdate").I32Data();

  std::unordered_set<int64_t> late;
  const int64_t sel = StrategyScan(
      strat, l.num_rows(),
      [&](int64_t i) { return commit[i] < receipt[i]; },
      [&](int64_t i) { late.insert(lokey[i]); }, 8.0, 8.0, 6.0, stats,
      "q4_late_scan");
  Record(stats, "q4_late_inserts", 0, 0, sel * t.rand_factor,
         static_cast<double>(late.size()) * 16);

  const int32_t lo = ParseDate("1993-07-01");
  const int32_t hi = DateAddMonths(lo, 3) - 1;
  const Table& o = db.table("orders");
  const int64_t* okey = o.column("o_orderkey").I64Data();
  const int32_t* date = o.column("o_orderdate").I32Data();
  const int32_t* prio = o.column("o_orderpriority").I32Data();

  std::map<int32_t, int64_t> counts;
  const int64_t osel = StrategyScan(
      strat, o.num_rows(),
      [&](int64_t i) { return date[i] >= lo && date[i] <= hi; },
      [&](int64_t i) {
        if (late.count(okey[i])) ++counts[prio[i]];
      },
      4.0, 12.0, 8.0, stats, "q4_order_scan");
  Record(stats, "q4_order_probes", 0, 0, osel * t.rand_factor,
         static_cast<double>(late.size()) * 16);

  std::map<std::string, double> out;
  const auto& pd = *o.column("o_orderpriority").dict();
  for (const auto& [k, v] : counts) {
    out[std::string(pd.ValueAt(k))] = static_cast<double>(v);
  }
  return ToResult(out);
}

// ---------------------------------------------------------------------
// Q5
// ---------------------------------------------------------------------
StratResult Q5(Strategy strat, const Database& db, QueryStats* stats) {
  const StrategyTraits t = Traits(strat);
  const int32_t lo = ParseDate("1994-01-01");
  const int32_t hi = ParseDate("1994-12-31");

  // Asia nation bitmap.
  std::vector<uint8_t> asia(25, 0);
  {
    const Table& r = db.table("region");
    const Table& nt = db.table("nation");
    int32_t asia_key = -1;
    for (int64_t i = 0; i < r.num_rows(); ++i) {
      if (r.column("r_name").StringAt(i) == "ASIA") {
        asia_key = r.column("r_regionkey").I32Data()[i];
      }
    }
    for (int64_t i = 0; i < nt.num_rows(); ++i) {
      if (nt.column("n_regionkey").I32Data()[i] == asia_key) {
        asia[nt.column("n_nationkey").I32Data()[i]] = 1;
      }
    }
  }
  // customer nation array, supplier nation array.
  const Table& c = db.table("customer");
  std::vector<int32_t> cust_nation(c.num_rows() + 1, -1);
  for (int64_t i = 0; i < c.num_rows(); ++i) {
    cust_nation[c.column("c_custkey").I32Data()[i]] =
        c.column("c_nationkey").I32Data()[i];
  }
  const Table& s = db.table("supplier");
  std::vector<int32_t> supp_nation(s.num_rows() + 1, -1);
  for (int64_t i = 0; i < s.num_rows(); ++i) {
    supp_nation[s.column("s_suppkey").I32Data()[i]] =
        s.column("s_nationkey").I32Data()[i];
  }
  Record(stats, "q5_build_dims", (c.num_rows() + s.num_rows()) * 2.0,
         (c.num_rows() + s.num_rows()) * 8.0);

  // Orders within the date range -> customer nation.
  const Table& o = db.table("orders");
  std::unordered_map<int64_t, int32_t> order_cnation;
  {
    const int64_t* okey = o.column("o_orderkey").I64Data();
    const int32_t* ckey = o.column("o_custkey").I32Data();
    const int32_t* date = o.column("o_orderdate").I32Data();
    for (int64_t i = 0; i < o.num_rows(); ++i) {
      if (date[i] >= lo && date[i] <= hi) {
        order_cnation[okey[i]] = cust_nation[ckey[i]];
      }
    }
    Record(stats, "q5_build_orders", o.num_rows() * 6.0, o.num_rows() * 16.0,
           o.num_rows(), static_cast<double>(order_cnation.size()) * 16);
  }

  const Table& l = db.table("lineitem");
  const int64_t* lokey = l.column("l_orderkey").I64Data();
  const int32_t* lsupp = l.column("l_suppkey").I32Data();
  const double* price = l.column("l_extendedprice").F64Data();
  const double* disc = l.column("l_discount").F64Data();

  std::map<int32_t, double> rev;
  // No scan predicate: the probe itself filters, so all strategies stream
  // the full payload; they differ in probe batching.
  const int64_t n = l.num_rows();
  for (int64_t i = 0; i < n; ++i) {
    auto it = order_cnation.find(lokey[i]);
    if (it == order_cnation.end()) continue;
    const int32_t sn = supp_nation[lsupp[i]];
    if (sn == it->second && asia[sn]) rev[sn] += price[i] * (1 - disc[i]);
  }
  Record(stats, "q5_probe_scan", n * 8.0, n * 28.0, n * t.rand_factor,
         static_cast<double>(order_cnation.size()) * 16);

  std::map<std::string, double> out;
  const Table& nt = db.table("nation");
  for (const auto& [nk, v] : rev) {
    out[std::string(nt.column("n_name").StringAt(nk))] = v;
  }
  return ToResult(out);
}

// ---------------------------------------------------------------------
// Q13
// ---------------------------------------------------------------------
StratResult Q13(Strategy strat, const Database& db, QueryStats* stats) {
  const StrategyTraits t = Traits(strat);
  const Table& o = db.table("orders");
  const Table& c = db.table("customer");
  const int32_t* ckey = o.column("o_custkey").I32Data();
  const auto& comments = o.column("o_comment");
  const auto& dict = *comments.dict();
  const int32_t* codes = comments.I32Data();

  // Comment filter: the LIKE is the expensive part; all strategies
  // evaluate it per (distinct) comment, but data-centric interleaves it
  // with the probe loop while access-aware runs a dedicated pass.
  std::vector<uint8_t> excluded(dict.size());
  double dict_bytes = 0;
  for (int32_t i = 0; i < dict.size(); ++i) {
    const auto v = dict.ValueAt(i);
    excluded[i] = LikeMatch(v, "%special%requests%") ? 1 : 0;
    dict_bytes += static_cast<double>(v.size());
  }
  Record(stats, "q13_like_pass", static_cast<double>(dict.size()) * 40.0,
         dict_bytes);

  std::vector<int32_t> per_cust(c.num_rows() + 1, 0);
  const int64_t n = o.num_rows();
  const int64_t sel = StrategyScan(
      strat, n, [&](int64_t i) { return excluded[codes[i]] == 0; },
      [&](int64_t i) { ++per_cust[ckey[i]]; }, 4.0, 4.0, 2.0, stats,
      "q13_count_scan");
  Record(stats, "q13_count_updates", 0, 0, sel * t.rand_factor,
         static_cast<double>(per_cust.size()) * 4);

  std::map<int64_t, int64_t> dist;
  for (int64_t i = 1; i <= c.num_rows(); ++i) ++dist[per_cust[i]];
  Record(stats, "q13_histogram", c.num_rows() * 2.0, c.num_rows() * 4.0);

  std::map<std::string, double> out;
  char buf[32];
  for (const auto& [k, v] : dist) {
    std::snprintf(buf, sizeof(buf), "%06lld", static_cast<long long>(k));
    out[buf] = static_cast<double>(v);
  }
  return ToResult(out);
}

// ---------------------------------------------------------------------
// Q14
// ---------------------------------------------------------------------
StratResult Q14(Strategy strat, const Database& db, QueryStats* stats) {
  const StrategyTraits t = Traits(strat);
  const int32_t lo = ParseDate("1995-09-01");
  const int32_t hi = DateAddMonths(lo, 1) - 1;

  const Table& p = db.table("part");
  std::vector<uint8_t> promo(p.num_rows() + 1, 0);
  {
    const auto& types = p.column("p_type");
    const int32_t* pk = p.column("p_partkey").I32Data();
    for (int64_t i = 0; i < p.num_rows(); ++i) {
      promo[pk[i]] = StartsWith(types.StringAt(i), "PROMO") ? 1 : 0;
    }
    Record(stats, "q14_build_promo", p.num_rows() * 6.0, p.num_rows() * 20.0);
  }

  const Table& l = db.table("lineitem");
  const int32_t* ship = l.column("l_shipdate").I32Data();
  const int32_t* lpart = l.column("l_partkey").I32Data();
  const double* price = l.column("l_extendedprice").F64Data();
  const double* disc = l.column("l_discount").F64Data();

  double promo_rev = 0, total = 0;
  const int64_t sel = StrategyScan(
      strat, l.num_rows(),
      [&](int64_t i) { return ship[i] >= lo && ship[i] <= hi; },
      [&](int64_t i) {
        const double rev = price[i] * (1 - disc[i]);
        total += rev;
        if (promo[lpart[i]]) promo_rev += rev;
      },
      4.0, 20.0, 6.0, stats, "q14_scan");
  Record(stats, "q14_probes", 0, 0, sel * t.rand_factor,
         static_cast<double>(promo.size()));

  return {{"promo_revenue", total == 0 ? 0 : 100.0 * promo_rev / total}};
}

// ---------------------------------------------------------------------
// Q19
// ---------------------------------------------------------------------
StratResult Q19(Strategy strat, const Database& db, QueryStats* stats) {
  const StrategyTraits t = Traits(strat);
  const Table& p = db.table("part");
  const Table& l = db.table("lineitem");

  // Dense part-keyed dimension arrays.
  const int64_t np = p.num_rows();
  std::vector<int32_t> brand(np + 1), container(np + 1), size(np + 1);
  {
    const int32_t* pk = p.column("p_partkey").I32Data();
    const int32_t* b = p.column("p_brand").I32Data();
    const int32_t* ct = p.column("p_container").I32Data();
    const int32_t* sz = p.column("p_size").I32Data();
    for (int64_t i = 0; i < np; ++i) {
      brand[pk[i]] = b[i];
      container[pk[i]] = ct[i];
      size[pk[i]] = sz[i];
    }
    Record(stats, "q19_build_part", np * 4.0, np * 28.0);
  }
  const int32_t b12 = Code(p.column("p_brand"), "Brand#12");
  const int32_t b23 = Code(p.column("p_brand"), "Brand#23");
  const int32_t b34 = Code(p.column("p_brand"), "Brand#34");
  auto cset = [&](std::initializer_list<const char*> names) {
    std::vector<int32_t> v;
    for (const char* nm : names) v.push_back(Code(p.column("p_container"), nm));
    return v;
  };
  const auto sm = cset({"SM CASE", "SM BOX", "SM PACK", "SM PKG"});
  const auto med = cset({"MED BAG", "MED BOX", "MED PKG", "MED PACK"});
  const auto lg = cset({"LG CASE", "LG BOX", "LG PACK", "LG PKG"});
  auto has = [](const std::vector<int32_t>& v, int32_t x) {
    for (const int32_t e : v) {
      if (e == x) return true;
    }
    return false;
  };

  const int32_t instr = Code(l.column("l_shipinstruct"), "DELIVER IN PERSON");
  const int32_t air = Code(l.column("l_shipmode"), "AIR");
  const int32_t air_reg = Code(l.column("l_shipmode"), "AIR REG");

  const int32_t* li = l.column("l_shipinstruct").I32Data();
  const int32_t* lm = l.column("l_shipmode").I32Data();
  const int32_t* lpart = l.column("l_partkey").I32Data();
  const double* qty = l.column("l_quantity").F64Data();
  const double* price = l.column("l_extendedprice").F64Data();
  const double* disc = l.column("l_discount").F64Data();

  double rev = 0;
  const int64_t sel = StrategyScan(
      strat, l.num_rows(),
      [&](int64_t i) {
        return li[i] == instr && (lm[i] == air || lm[i] == air_reg);
      },
      [&](int64_t i) {
        const int32_t pk = lpart[i];
        const bool m1 = brand[pk] == b12 && has(sm, container[pk]) &&
                        qty[i] >= 1 && qty[i] <= 11 && size[pk] >= 1 &&
                        size[pk] <= 5;
        const bool m2 = brand[pk] == b23 && has(med, container[pk]) &&
                        qty[i] >= 10 && qty[i] <= 20 && size[pk] >= 1 &&
                        size[pk] <= 10;
        const bool m3 = brand[pk] == b34 && has(lg, container[pk]) &&
                        qty[i] >= 20 && qty[i] <= 30 && size[pk] >= 1 &&
                        size[pk] <= 15;
        if (m1 || m2 || m3) rev += price[i] * (1 - disc[i]);
      },
      8.0, 28.0, 12.0, stats, "q19_scan");
  Record(stats, "q19_probes", 0, 0, sel * 3 * t.rand_factor,
         static_cast<double>(np) * 12);

  return {{"revenue", rev}};
}

}  // namespace

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kDataCentric:
      return "data-centric";
    case Strategy::kHybrid:
      return "hybrid";
    case Strategy::kAccessAware:
      return "access-aware";
  }
  return "?";
}

StratResult RunStrategy(int q, Strategy s, const Database& db,
                        QueryStats* stats) {
  switch (q) {
    case 1: return Q1(s, db, stats);
    case 3: return Q3(s, db, stats);
    case 4: return Q4(s, db, stats);
    case 5: return Q5(s, db, stats);
    case 6: return Q6(s, db, stats);
    case 13: return Q13(s, db, stats);
    case 14: return Q14(s, db, stats);
    case 19: return Q19(s, db, stats);
    default:
      WIMPI_CHECK(false) << "Q" << q << " has no strategy implementation";
      return {};
  }
}

}  // namespace wimpi::strategies
