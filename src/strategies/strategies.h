#ifndef WIMPI_STRATEGIES_STRATEGIES_H_
#define WIMPI_STRATEGIES_STRATEGIES_H_

#include <string>
#include <utility>
#include <vector>

#include "engine/database.h"
#include "exec/counters.h"

namespace wimpi::strategies {

// The three query-execution paradigms compared in Figure 4, following the
// paper's cited "Getting Swole" taxonomy (Crotty et al., ICDE 2020):
//
//  kDataCentric  - fully fused tuple-at-a-time loops: evaluate every
//                  predicate with short-circuit branches per tuple, probe
//                  join tables and update aggregates inline.
//  kHybrid       - relaxed operator fusion: vectorized predicate evaluation
//                  over fixed-size blocks into selection vectors, fused
//                  probe/aggregate stage over the survivors.
//  kAccessAware  - predicate pullup: every predicate is evaluated over the
//                  full column into a bitmap (no branches, perfectly
//                  sequential), bitmaps are combined, survivors are
//                  gathered densely, then joined/aggregated. Trades extra
//                  memory traffic for consistent access patterns.
//
// All strategies run single-threaded (as in the paper) and are hand-coded
// loops, not engine plans.
enum class Strategy { kDataCentric, kHybrid, kAccessAware };

const char* StrategyName(Strategy s);

inline constexpr Strategy kAllStrategies[] = {
    Strategy::kDataCentric, Strategy::kHybrid, Strategy::kAccessAware};

// Canonical result: (group key rendering, aggregate value) pairs, sorted by
// key. Strategies compute the query's core scan/join/aggregate work; final
// presentation (ORDER BY / LIMIT) is excluded, as in the paper's low-level
// experiments.
using StratResult = std::vector<std::pair<std::string, double>>;

// Runs query q (one of 1,3,4,5,6,13,14,19) with strategy `s`.
StratResult RunStrategy(int q, Strategy s, const engine::Database& db,
                        exec::QueryStats* stats);

}  // namespace wimpi::strategies

#endif  // WIMPI_STRATEGIES_STRATEGIES_H_
