#ifndef WIMPI_TPCH_QUERIES_H_
#define WIMPI_TPCH_QUERIES_H_

#include <vector>

#include "engine/database.h"
#include "exec/counters.h"
#include "exec/relation.h"

namespace wimpi::tpch {

// Runs TPC-H query `q` (1..22) against `db`, returning the result relation
// and recording abstract work in `stats` (pass nullptr to skip
// instrumentation). Queries are hand-written physical plans over the
// column-at-a-time operator library; correlated subqueries are manually
// decorrelated in the standard way.
exec::Relation RunQuery(int q, const engine::Database& db,
                        exec::QueryStats* stats);

// The eight-query subset used by the paper for the SF 10 distributed
// experiments (the TPC-H "choke point" subset of Menon et al. / Crotty et
// al. that the paper cites).
inline constexpr int kSf10Queries[] = {1, 3, 4, 5, 6, 13, 14, 19};
inline constexpr int kNumSf10Queries = 8;

// True if query `q` is in the SF 10 subset.
bool InSf10Subset(int q);

}  // namespace wimpi::tpch

#endif  // WIMPI_TPCH_QUERIES_H_
