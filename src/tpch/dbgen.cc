#include "tpch/dbgen.h"

#include <algorithm>
#include <cmath>

#include "common/date.h"
#include "common/decimal.h"
#include "common/hash.h"
#include "common/rng.h"
#include "tpch/text.h"

namespace wimpi::tpch {
namespace {

using storage::DataType;
using storage::Schema;
using storage::Table;

// Fixed nation -> region assignment from the TPC-H specification.
struct NationSpec {
  const char* name;
  int32_t regionkey;
};
constexpr NationSpec kNations[25] = {
    {"ALGERIA", 0},  {"ARGENTINA", 1}, {"BRAZIL", 1},    {"CANADA", 1},
    {"EGYPT", 4},    {"ETHIOPIA", 0},  {"FRANCE", 3},    {"GERMANY", 3},
    {"INDIA", 2},    {"INDONESIA", 2}, {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},    {"JORDAN", 4},    {"KENYA", 0},     {"MOROCCO", 0},
    {"MOZAMBIQUE", 0}, {"PERU", 1},    {"CHINA", 2},     {"ROMANIA", 3},
    {"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},  {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

constexpr const char* kRegions[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                     "MIDDLE EAST"};

constexpr const char* kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                      "MACHINERY", "HOUSEHOLD"};

constexpr const char* kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                        "4-NOT SPECIFIED", "5-LOW"};

constexpr const char* kShipModes[7] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                                       "TRUCK",   "MAIL", "FOB"};

constexpr const char* kShipInstructs[4] = {"DELIVER IN PERSON", "COLLECT COD",
                                           "NONE", "TAKE BACK RETURN"};

constexpr const char* kTypeSyl1[6] = {"STANDARD", "SMALL",   "MEDIUM",
                                      "LARGE",    "ECONOMY", "PROMO"};
constexpr const char* kTypeSyl2[5] = {"ANODIZED", "BURNISHED", "PLATED",
                                      "POLISHED", "BRUSHED"};
constexpr const char* kTypeSyl3[5] = {"TIN", "NICKEL", "BRASS", "STEEL",
                                      "COPPER"};

constexpr const char* kContainer1[5] = {"SM", "MED", "LG", "JUMBO", "WRAP"};
constexpr const char* kContainer2[8] = {"CASE", "BOX", "BAG", "JAR",
                                        "PKG",  "PACK", "CAN", "DRUM"};

// Per-entity RNG: values depend only on (seed, table tag, key).
Rng EntityRng(uint64_t seed, uint64_t table_tag, int64_t key) {
  uint64_t h = HashCombine(HashInt64(seed), table_tag);
  h = HashCombine(h, static_cast<uint64_t>(key));
  return Rng(h);
}

enum TableTag : uint64_t {
  kTagSupplier = 1,
  kTagPart = 2,
  kTagPartsupp = 3,
  kTagCustomer = 4,
  kTagOrders = 5,
  kTagLineitem = 6,
};

double MoneyUniform(Rng* rng, int64_t lo_cents, int64_t hi_cents) {
  return static_cast<double>(rng->Uniform(lo_cents, hi_cents)) / 100.0;
}

}  // namespace

RowCounts RowCountsFor(double sf) {
  RowCounts c;
  c.supplier = std::max<int64_t>(1, std::llround(10000 * sf));
  c.part = std::max<int64_t>(4, std::llround(200000 * sf));
  c.customer = std::max<int64_t>(3, std::llround(150000 * sf));
  c.orders = std::max<int64_t>(1, std::llround(1500000 * sf));
  c.partsupp = 4 * c.part;
  return c;
}

int32_t SupplierForPart(int32_t partkey, int i, int64_t num_suppliers) {
  const int64_t s = num_suppliers;
  const int64_t step = std::max<int64_t>(1, s / 4);
  return static_cast<int32_t>((partkey - 1 + i * step) % s + 1);
}

double RetailPrice(int32_t p) {
  return (90000.0 + ((p / 10) % 20001) + 100.0 * (p % 1000)) / 100.0;
}

int32_t StartDate() { return DateFromCivil(1992, 1, 1); }
int32_t CurrentDate() { return DateFromCivil(1995, 6, 17); }
int32_t EndDate() { return DateFromCivil(1998, 12, 31); }

std::shared_ptr<Table> GenerateRegion(const GenOptions& opts) {
  Schema schema({{"r_regionkey", DataType::kInt32},
                 {"r_name", DataType::kString},
                 {"r_comment", DataType::kString}});
  auto t = std::make_shared<Table>("region", schema);
  Rng rng(opts.seed ^ 0xfeed);
  for (int32_t r = 0; r < 5; ++r) {
    t->column(0).AppendInt32(r);
    t->column(1).AppendString(kRegions[r]);
    t->column(2).AppendString(
        opts.include_unused_text ? RandomText(&rng, 40) : "");
  }
  t->FinishLoad();
  return t;
}

std::shared_ptr<Table> GenerateNation(const GenOptions& opts) {
  Schema schema({{"n_nationkey", DataType::kInt32},
                 {"n_name", DataType::kString},
                 {"n_regionkey", DataType::kInt32},
                 {"n_comment", DataType::kString}});
  auto t = std::make_shared<Table>("nation", schema);
  Rng rng(opts.seed ^ 0xbeef);
  for (int32_t n = 0; n < 25; ++n) {
    t->column(0).AppendInt32(n);
    t->column(1).AppendString(kNations[n].name);
    t->column(2).AppendInt32(kNations[n].regionkey);
    t->column(3).AppendString(
        opts.include_unused_text ? RandomText(&rng, 40) : "");
  }
  t->FinishLoad();
  return t;
}

std::shared_ptr<Table> GenerateSupplier(const GenOptions& opts) {
  const RowCounts counts = RowCountsFor(opts.scale_factor);
  Schema schema({{"s_suppkey", DataType::kInt32},
                 {"s_name", DataType::kString},
                 {"s_address", DataType::kString},
                 {"s_nationkey", DataType::kInt32},
                 {"s_phone", DataType::kString},
                 {"s_acctbal", DataType::kFloat64},
                 {"s_comment", DataType::kString}});
  auto t = std::make_shared<Table>("supplier", schema);
  for (int i = 0; i < schema.num_fields(); ++i) {
    t->column(i).Reserve(counts.supplier);
  }
  for (int64_t k = 1; k <= counts.supplier; ++k) {
    Rng rng = EntityRng(opts.seed, kTagSupplier, k);
    const auto nation = static_cast<int32_t>(rng.Uniform(0, 24));
    t->column(0).AppendInt32(static_cast<int32_t>(k));
    t->column(1).AppendString(NumberedName("Supplier", k));
    t->column(2).AppendString(AddressText(&rng));
    t->column(3).AppendInt32(nation);
    t->column(4).AppendString(PhoneNumber(&rng, nation));
    t->column(5).AppendFloat64(MoneyUniform(&rng, -99999, 999999));
    t->column(6).AppendString(SupplierComment(&rng));
  }
  t->FinishLoad();
  return t;
}

std::shared_ptr<Table> GeneratePart(const GenOptions& opts) {
  const RowCounts counts = RowCountsFor(opts.scale_factor);
  Schema schema({{"p_partkey", DataType::kInt32},
                 {"p_name", DataType::kString},
                 {"p_mfgr", DataType::kString},
                 {"p_brand", DataType::kString},
                 {"p_type", DataType::kString},
                 {"p_size", DataType::kInt32},
                 {"p_container", DataType::kString},
                 {"p_retailprice", DataType::kFloat64},
                 {"p_comment", DataType::kString}});
  auto t = std::make_shared<Table>("part", schema);
  for (int i = 0; i < schema.num_fields(); ++i) t->column(i).Reserve(counts.part);

  for (int64_t k = 1; k <= counts.part; ++k) {
    Rng rng = EntityRng(opts.seed, kTagPart, k);
    // p_name: five distinct colors.
    int idx[5];
    for (int i = 0; i < 5; ++i) {
      bool dup;
      do {
        idx[i] = static_cast<int>(rng.Uniform(0, kNumColors - 1));
        dup = false;
        for (int j = 0; j < i; ++j) dup = dup || idx[j] == idx[i];
      } while (dup);
    }
    std::string name;
    for (int i = 0; i < 5; ++i) {
      if (i > 0) name += ' ';
      name += kColors[idx[i]];
    }
    const int m = static_cast<int>(rng.Uniform(1, 5));
    const int n = static_cast<int>(rng.Uniform(1, 5));
    char mfgr[32], brand[32];
    std::snprintf(mfgr, sizeof(mfgr), "Manufacturer#%d", m);
    std::snprintf(brand, sizeof(brand), "Brand#%d%d", m, n);
    std::string type = kTypeSyl1[rng.Uniform(0, 5)];
    type += ' ';
    type += kTypeSyl2[rng.Uniform(0, 4)];
    type += ' ';
    type += kTypeSyl3[rng.Uniform(0, 4)];
    std::string container = kContainer1[rng.Uniform(0, 4)];
    container += ' ';
    container += kContainer2[rng.Uniform(0, 7)];

    t->column(0).AppendInt32(static_cast<int32_t>(k));
    t->column(1).AppendString(name);
    t->column(2).AppendString(mfgr);
    t->column(3).AppendString(brand);
    t->column(4).AppendString(type);
    t->column(5).AppendInt32(static_cast<int32_t>(rng.Uniform(1, 50)));
    t->column(6).AppendString(container);
    t->column(7).AppendFloat64(RetailPrice(static_cast<int32_t>(k)));
    t->column(8).AppendString(
        opts.include_unused_text ? RandomText(&rng, 15) : "");
  }
  t->FinishLoad();
  return t;
}

std::shared_ptr<Table> GeneratePartsupp(const GenOptions& opts) {
  const RowCounts counts = RowCountsFor(opts.scale_factor);
  Schema schema({{"ps_partkey", DataType::kInt32},
                 {"ps_suppkey", DataType::kInt32},
                 {"ps_availqty", DataType::kInt32},
                 {"ps_supplycost", DataType::kFloat64},
                 {"ps_comment", DataType::kString}});
  auto t = std::make_shared<Table>("partsupp", schema);
  for (int i = 0; i < schema.num_fields(); ++i) {
    t->column(i).Reserve(counts.partsupp);
  }
  for (int64_t p = 1; p <= counts.part; ++p) {
    for (int i = 0; i < 4; ++i) {
      Rng rng = EntityRng(opts.seed, kTagPartsupp, p * 4 + i);
      t->column(0).AppendInt32(static_cast<int32_t>(p));
      t->column(1).AppendInt32(
          SupplierForPart(static_cast<int32_t>(p), i, counts.supplier));
      t->column(2).AppendInt32(static_cast<int32_t>(rng.Uniform(1, 9999)));
      t->column(3).AppendFloat64(MoneyUniform(&rng, 100, 100000));
      t->column(4).AppendString(
          opts.include_unused_text ? RandomText(&rng, 30) : "");
    }
  }
  t->FinishLoad();
  return t;
}

std::shared_ptr<Table> GenerateCustomer(const GenOptions& opts) {
  const RowCounts counts = RowCountsFor(opts.scale_factor);
  Schema schema({{"c_custkey", DataType::kInt32},
                 {"c_name", DataType::kString},
                 {"c_address", DataType::kString},
                 {"c_nationkey", DataType::kInt32},
                 {"c_phone", DataType::kString},
                 {"c_acctbal", DataType::kFloat64},
                 {"c_mktsegment", DataType::kString},
                 {"c_comment", DataType::kString}});
  auto t = std::make_shared<Table>("customer", schema);
  for (int i = 0; i < schema.num_fields(); ++i) {
    t->column(i).Reserve(counts.customer);
  }
  for (int64_t k = 1; k <= counts.customer; ++k) {
    Rng rng = EntityRng(opts.seed, kTagCustomer, k);
    const auto nation = static_cast<int32_t>(rng.Uniform(0, 24));
    t->column(0).AppendInt32(static_cast<int32_t>(k));
    t->column(1).AppendString(NumberedName("Customer", k));
    t->column(2).AppendString(AddressText(&rng));
    t->column(3).AppendInt32(nation);
    t->column(4).AppendString(PhoneNumber(&rng, nation));
    t->column(5).AppendFloat64(MoneyUniform(&rng, -99999, 999999));
    t->column(6).AppendString(kSegments[rng.Uniform(0, 4)]);
    t->column(7).AppendString(
        opts.include_unused_text ? RandomText(&rng, 40) : "");
  }
  t->FinishLoad();
  return t;
}

void GenerateOrdersAndLineitem(const GenOptions& opts,
                               std::shared_ptr<Table>* orders_out,
                               std::shared_ptr<Table>* lineitem_out) {
  const RowCounts counts = RowCountsFor(opts.scale_factor);

  Schema oschema({{"o_orderkey", DataType::kInt64},
                  {"o_custkey", DataType::kInt32},
                  {"o_orderstatus", DataType::kString},
                  {"o_totalprice", DataType::kFloat64},
                  {"o_orderdate", DataType::kDate},
                  {"o_orderpriority", DataType::kString},
                  {"o_clerk", DataType::kString},
                  {"o_shippriority", DataType::kInt32},
                  {"o_comment", DataType::kString}});
  auto orders = std::make_shared<Table>("orders", oschema);
  for (int i = 0; i < oschema.num_fields(); ++i) {
    orders->column(i).Reserve(counts.orders);
  }

  Schema lschema({{"l_orderkey", DataType::kInt64},
                  {"l_partkey", DataType::kInt32},
                  {"l_suppkey", DataType::kInt32},
                  {"l_linenumber", DataType::kInt32},
                  {"l_quantity", DataType::kFloat64},
                  {"l_extendedprice", DataType::kFloat64},
                  {"l_discount", DataType::kFloat64},
                  {"l_tax", DataType::kFloat64},
                  {"l_returnflag", DataType::kString},
                  {"l_linestatus", DataType::kString},
                  {"l_shipdate", DataType::kDate},
                  {"l_commitdate", DataType::kDate},
                  {"l_receiptdate", DataType::kDate},
                  {"l_shipinstruct", DataType::kString},
                  {"l_shipmode", DataType::kString},
                  {"l_comment", DataType::kString}});
  auto lineitem = std::make_shared<Table>("lineitem", lschema);
  const int64_t est_lines = counts.orders * 4;
  for (int i = 0; i < lschema.num_fields(); ++i) {
    lineitem->column(i).Reserve(est_lines);
  }

  const int32_t start = StartDate();
  const int32_t current = CurrentDate();
  // o_orderdate range leaves room for the longest shipping chain
  // (121 + 30 days) before END_DATE, per the spec.
  const int32_t last_order_date = EndDate() - 151;

  for (int64_t okey = 1; okey <= counts.orders; ++okey) {
    Rng rng = EntityRng(opts.seed, kTagOrders, okey);
    // Customers with custkey % 3 == 0 never place orders (dbgen rule that
    // Q13/Q22 depend on).
    int64_t custkey;
    do {
      custkey = rng.Uniform(1, counts.customer);
    } while (custkey % 3 == 0 && counts.customer >= 3);
    const auto odate =
        static_cast<int32_t>(rng.Uniform(start, last_order_date));
    const int n_lines = static_cast<int>(rng.Uniform(1, 7));

    double total = 0;
    int n_open = 0;
    for (int ln = 1; ln <= n_lines; ++ln) {
      Rng lrng = EntityRng(opts.seed, kTagLineitem, okey * 8 + ln);
      const auto partkey =
          static_cast<int32_t>(lrng.Uniform(1, counts.part));
      const int supp_i = static_cast<int>(lrng.Uniform(0, 3));
      const int32_t suppkey =
          SupplierForPart(partkey, supp_i, counts.supplier);
      const double qty = static_cast<double>(lrng.Uniform(1, 50));
      const double price = RetailPrice(partkey) * qty;
      const double discount =
          static_cast<double>(lrng.Uniform(0, 10)) / 100.0;
      const double tax = static_cast<double>(lrng.Uniform(0, 8)) / 100.0;
      const auto shipdate =
          static_cast<int32_t>(odate + lrng.Uniform(1, 121));
      const auto commitdate =
          static_cast<int32_t>(odate + lrng.Uniform(30, 90));
      const auto receiptdate =
          static_cast<int32_t>(shipdate + lrng.Uniform(1, 30));
      const bool shipped = shipdate <= current;
      const char* returnflag =
          receiptdate <= current ? (lrng.Bernoulli(0.5) ? "R" : "A") : "N";
      const char* linestatus = shipped ? "F" : "O";
      if (!shipped) ++n_open;
      total += price * (1.0 - discount) * (1.0 + tax);

      lineitem->column(0).AppendInt64(okey);
      lineitem->column(1).AppendInt32(partkey);
      lineitem->column(2).AppendInt32(suppkey);
      lineitem->column(3).AppendInt32(ln);
      lineitem->column(4).AppendFloat64(qty);
      lineitem->column(5).AppendFloat64(price);
      lineitem->column(6).AppendFloat64(discount);
      lineitem->column(7).AppendFloat64(tax);
      lineitem->column(8).AppendString(returnflag);
      lineitem->column(9).AppendString(linestatus);
      lineitem->column(10).AppendInt32(shipdate);
      lineitem->column(11).AppendInt32(commitdate);
      lineitem->column(12).AppendInt32(receiptdate);
      lineitem->column(13).AppendString(kShipInstructs[lrng.Uniform(0, 3)]);
      lineitem->column(14).AppendString(kShipModes[lrng.Uniform(0, 6)]);
      lineitem->column(15).AppendString(
          opts.include_unused_text ? RandomText(&lrng, 20) : "");
    }

    const char* status = n_open == 0 ? "F" : (n_open == n_lines ? "O" : "P");
    orders->column(0).AppendInt64(okey);
    orders->column(1).AppendInt32(static_cast<int32_t>(custkey));
    orders->column(2).AppendString(status);
    orders->column(3).AppendFloat64(total);
    orders->column(4).AppendInt32(odate);
    orders->column(5).AppendString(kPriorities[rng.Uniform(0, 4)]);
    orders->column(6).AppendString(
        opts.include_unused_text ? NumberedName("Clerk", rng.Uniform(1, 1000))
                                 : "");
    orders->column(7).AppendInt32(0);
    // Spec average o_comment length is ~48 chars; ~1% carry the
    // "special ... requests" phrase Q13 filters on.
    orders->column(8).AppendString(CommentText(&rng, 48, 0.01));
  }

  orders->FinishLoad();
  lineitem->FinishLoad();
  *orders_out = std::move(orders);
  *lineitem_out = std::move(lineitem);
}

engine::Database GenerateDatabase(const GenOptions& opts) {
  engine::Database db;
  db.AddTable(GenerateRegion(opts));
  db.AddTable(GenerateNation(opts));
  db.AddTable(GenerateSupplier(opts));
  db.AddTable(GeneratePart(opts));
  db.AddTable(GeneratePartsupp(opts));
  db.AddTable(GenerateCustomer(opts));
  std::shared_ptr<Table> orders, lineitem;
  GenerateOrdersAndLineitem(opts, &orders, &lineitem);
  db.AddTable(std::move(orders));
  db.AddTable(std::move(lineitem));
  return db;
}

double LogicalTableBytes(const std::string& table, double sf) {
  // Approximate per-row in-memory bytes of a full (all text populated)
  // dictionary-encoded columnar representation, derived from the spec's
  // average row widths.
  const RowCounts c = RowCountsFor(sf);
  if (table == "lineitem") return static_cast<double>(c.orders) * 4 * 120;
  if (table == "orders") return static_cast<double>(c.orders) * 130;
  if (table == "customer") return static_cast<double>(c.customer) * 230;
  if (table == "part") return static_cast<double>(c.part) * 180;
  if (table == "partsupp") return static_cast<double>(c.partsupp) * 170;
  if (table == "supplier") return static_cast<double>(c.supplier) * 230;
  if (table == "nation") return 25 * 150.0;
  if (table == "region") return 5 * 150.0;
  return 0;
}

}  // namespace wimpi::tpch
