#ifndef WIMPI_TPCH_DBGEN_H_
#define WIMPI_TPCH_DBGEN_H_

#include <memory>

#include "engine/database.h"
#include "storage/table.h"

namespace wimpi::tpch {

// Options for the TPC-H data generator. The generator is a from-scratch
// dbgen equivalent: the schema, key relationships, value distributions,
// and the query-relevant text properties follow the TPC-H specification;
// the text corpus itself is original (see text.h).
struct GenOptions {
  double scale_factor = 1.0;
  uint64_t seed = 19921201;
  // When false (default), columns no TPC-H query ever reads (l_comment,
  // o_clerk, p_comment, ps_comment, n_comment, r_comment, c_comment,
  // c_address beyond what Q10 prints) are left empty to save host memory.
  // Their logical size is still modeled (see LogicalTableBytes) so the
  // cluster memory accounting matches a full database.
  bool include_unused_text = false;
};

// Base-table cardinalities at a scale factor (lineitem is data-dependent,
// roughly 4x orders).
struct RowCounts {
  int64_t supplier;
  int64_t part;
  int64_t customer;
  int64_t orders;
  int64_t partsupp;  // 4 * part
};
RowCounts RowCountsFor(double sf);

// Deterministic generation: same options => identical database, and every
// entity's values depend only on (seed, table, primary key), never on
// generation order. Generates all eight tables.
engine::Database GenerateDatabase(const GenOptions& opts);

// Individual table generators (exposed for tests and partial loads).
// GenerateOrdersAndLineitem fills both tables in one pass because
// o_totalprice / o_orderstatus are derived from the order's lineitems.
std::shared_ptr<storage::Table> GenerateRegion(const GenOptions& opts);
std::shared_ptr<storage::Table> GenerateNation(const GenOptions& opts);
std::shared_ptr<storage::Table> GenerateSupplier(const GenOptions& opts);
std::shared_ptr<storage::Table> GeneratePart(const GenOptions& opts);
std::shared_ptr<storage::Table> GeneratePartsupp(const GenOptions& opts);
std::shared_ptr<storage::Table> GenerateCustomer(const GenOptions& opts);
void GenerateOrdersAndLineitem(const GenOptions& opts,
                               std::shared_ptr<storage::Table>* orders,
                               std::shared_ptr<storage::Table>* lineitem);

// The supplier assignment rule shared by partsupp and lineitem: the i-th
// (0..3) supplier of `partkey` among `num_suppliers` total.
int32_t SupplierForPart(int32_t partkey, int i, int64_t num_suppliers);

// p_retailprice as a pure function of the part key (TPC-H spec formula);
// lineitem uses it to derive l_extendedprice without a lookup.
double RetailPrice(int32_t partkey);

// Modeled in-memory bytes of a table at scale factor `sf` including the
// text columns the generator may have skipped. Used for node memory
// accounting in the cluster simulator.
double LogicalTableBytes(const std::string& table, double sf);

// TPC-H date constants (days since 1970-01-01).
int32_t StartDate();    // 1992-01-01
int32_t CurrentDate();  // 1995-06-17
int32_t EndDate();      // 1998-12-31

}  // namespace wimpi::tpch

#endif  // WIMPI_TPCH_DBGEN_H_
