#include "tpch/text.h"

#include <cstdio>

namespace wimpi::tpch {

const char* const kColors[92] = {
    "almond",    "antique",   "aquamarine", "forest",    "azure",
    "beige",     "bisque",    "black",      "blanched",  "blue",
    "blush",     "brown",     "burlywood",  "burnished", "chartreuse",
    "chiffon",   "chocolate", "coral",      "cornflower", "cornsilk",
    "cream",     "cyan",      "dark",       "deep",      "dim",
    "dodger",    "drab",      "firebrick",  "floral",    "frosted",
    "gainsboro", "ghost",     "goldenrod",  "honeydew",  "hot",
    "indian",    "ivory",     "khaki",      "lace",      "lavender",
    "lawn",      "lemon",     "light",      "green",     "linen",
    "magenta",   "maroon",    "medium",     "metallic",  "midnight",
    "mint",      "misty",     "moccasin",   "navajo",    "navy",
    "olive",     "orange",    "orchid",     "pale",      "papaya",
    "peach",     "peru",      "pink",       "plum",      "powder",
    "puff",      "purple",    "red",        "rose",      "rosy",
    "royal",     "saddle",    "salmon",     "sandy",     "seashell",
    "sienna",    "sky",       "slate",      "smoke",     "snow",
    "spring",    "steel",     "tan",        "thistle",   "tomato",
    "turquoise", "violet",    "wheat",      "white",     "yellow",
    "ultramarine", "vermilion"};

namespace {

const char* const kNouns[] = {
    "packages", "requests", "accounts", "deposits",  "foxes",
    "ideas",    "theodolites", "pinto beans", "instructions", "dependencies",
    "excuses",  "platelets", "asymptotes", "courts",  "dolphins",
    "multipliers", "sauternes", "warthogs", "frets",  "dinos"};

const char* const kVerbs[] = {
    "sleep",  "wake",    "are",     "cajole",  "haggle",
    "nag",    "use",     "boost",   "affix",   "detect",
    "integrate", "maintain", "nod", "was",     "lose",
    "sublate", "solve",  "thrash",  "promise", "engage"};

const char* const kAdjectives[] = {
    "furious", "sly",    "careful", "blithe",  "quick",
    "fluffy",  "slow",   "quiet",   "ruthless", "thin",
    "close",   "dogged", "daring",  "brave",   "stealthy",
    "permanent", "enticing", "idle", "busy",   "regular",
    "final",   "ironic", "even",    "bold",    "silent",
    "special", "pending", "express", "unusual"};

const char* const kAdverbs[] = {
    "sometimes", "always",  "never",   "furiously", "slyly",
    "carefully", "blithely", "quickly", "fluffily",  "slowly",
    "quietly",   "ruthlessly", "thinly", "closely",  "doggedly",
    "daringly",  "bravely", "stealthily", "permanently", "enticingly",
    "idly",      "busily",  "regularly", "finally",  "ironically",
    "evenly",    "boldly",  "silently"};

template <size_t N>
const char* Pick(Rng* rng, const char* const (&arr)[N]) {
  return arr[rng->Uniform(0, static_cast<int64_t>(N) - 1)];
}

}  // namespace

std::string RandomText(Rng* rng, int target_len) {
  std::string out;
  out.reserve(target_len + 16);
  while (static_cast<int>(out.size()) < target_len) {
    if (!out.empty()) out += ' ';
    switch (rng->Uniform(0, 3)) {
      case 0:
        out += Pick(rng, kAdverbs);
        break;
      case 1:
        out += Pick(rng, kAdjectives);
        break;
      case 2:
        out += Pick(rng, kNouns);
        break;
      default:
        out += Pick(rng, kVerbs);
        break;
    }
  }
  return out;
}

std::string CommentText(Rng* rng, int target_len, double special_prob) {
  std::string out = RandomText(rng, target_len);
  if (special_prob > 0 && rng->Bernoulli(special_prob)) {
    out += " special ";
    out += Pick(rng, kAdjectives);
    out += " requests";
  }
  return out;
}

std::string SupplierComment(Rng* rng) {
  const double r = rng->NextDouble();
  std::string out = RandomText(rng, 40);
  if (r < 5.0 / 10000.0) {
    out += " Customer ";
    out += Pick(rng, kAdjectives);
    out += " Complaints";
  } else if (r < 10.0 / 10000.0) {
    out += " Customer ";
    out += Pick(rng, kAdjectives);
    out += " Recommends";
  }
  return out;
}

std::string NumberedName(const char* prefix, int64_t key) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s#%09lld", prefix,
                static_cast<long long>(key));
  return buf;
}

std::string PhoneNumber(Rng* rng, int32_t nationkey) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%02d-%03d-%03d-%04d", 10 + nationkey,
                static_cast<int>(rng->Uniform(100, 999)),
                static_cast<int>(rng->Uniform(100, 999)),
                static_cast<int>(rng->Uniform(1000, 9999)));
  return buf;
}

std::string AddressText(Rng* rng) {
  static constexpr char kChars[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ,";
  const int len = static_cast<int>(rng->Uniform(10, 40));
  std::string out;
  out.reserve(len);
  for (int i = 0; i < len; ++i) {
    out += kChars[rng->Uniform(0, sizeof(kChars) - 2)];
  }
  return out;
}

}  // namespace wimpi::tpch
