#ifndef WIMPI_TPCH_QUERIES_IMPL_H_
#define WIMPI_TPCH_QUERIES_IMPL_H_

// Internal declarations of the per-query entry points; use RunQuery from
// queries.h instead.

#include "engine/database.h"
#include "exec/counters.h"
#include "exec/relation.h"

namespace wimpi::tpch {

#define WIMPI_DECLARE_QUERY(n)                              \
  exec::Relation RunQ##n(const engine::Database& db,        \
                         exec::QueryStats* stats)
WIMPI_DECLARE_QUERY(1);
WIMPI_DECLARE_QUERY(2);
WIMPI_DECLARE_QUERY(3);
WIMPI_DECLARE_QUERY(4);
WIMPI_DECLARE_QUERY(5);
WIMPI_DECLARE_QUERY(6);
WIMPI_DECLARE_QUERY(7);
WIMPI_DECLARE_QUERY(8);
WIMPI_DECLARE_QUERY(9);
WIMPI_DECLARE_QUERY(10);
WIMPI_DECLARE_QUERY(11);
WIMPI_DECLARE_QUERY(12);
WIMPI_DECLARE_QUERY(13);
WIMPI_DECLARE_QUERY(14);
WIMPI_DECLARE_QUERY(15);
WIMPI_DECLARE_QUERY(16);
WIMPI_DECLARE_QUERY(17);
WIMPI_DECLARE_QUERY(18);
WIMPI_DECLARE_QUERY(19);
WIMPI_DECLARE_QUERY(20);
WIMPI_DECLARE_QUERY(21);
WIMPI_DECLARE_QUERY(22);
#undef WIMPI_DECLARE_QUERY

}  // namespace wimpi::tpch

#endif  // WIMPI_TPCH_QUERIES_IMPL_H_
