#ifndef WIMPI_TPCH_TEXT_H_
#define WIMPI_TPCH_TEXT_H_

#include <string>

#include "common/rng.h"

namespace wimpi::tpch {

// Pseudo-text generation in the spirit of TPC-H dbgen's grammar. The exact
// corpus differs from dbgen's (which is copyrighted spec text), but the
// properties the queries depend on are preserved:
//   * p_name is a space-separated list of 5 distinct colors from a 92-color
//     list including "green" (Q9, Q17, Q20) and "forest" (Q20);
//   * comments occasionally contain "special ... requests" (Q13) and
//     supplier comments "Customer ... Complaints" / "... Recommends" (Q16)
//     at roughly dbgen's rates.

// 92 color words; index 3 is "forest", index 43 is "green".
extern const char* const kColors[92];
inline constexpr int kNumColors = 92;

// Random sentence of roughly `target_len` characters from a noun/verb/
// adjective vocabulary.
std::string RandomText(Rng* rng, int target_len);

// Order/lineitem-style comment; injects "special ... requests" with
// probability `special_prob`.
std::string CommentText(Rng* rng, int target_len, double special_prob);

// Supplier comment; injects "Customer ... Complaints" with probability
// 5/10000 and "Customer ... Recommends" with probability 5/10000 (dbgen's
// Q16 rates).
std::string SupplierComment(Rng* rng);

// "Customer#000000001"-style fixed-width names.
std::string NumberedName(const char* prefix, int64_t key);

// Phone number "CC-III-III-IIII" where CC = 10 + nationkey (Q22 depends on
// this country-code rule).
std::string PhoneNumber(Rng* rng, int32_t nationkey);

// Random address-ish string (v-string in the spec).
std::string AddressText(Rng* rng);

}  // namespace wimpi::tpch

#endif  // WIMPI_TPCH_TEXT_H_
