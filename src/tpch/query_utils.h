#ifndef WIMPI_TPCH_QUERY_UTILS_H_
#define WIMPI_TPCH_QUERY_UTILS_H_

#include <string>
#include <vector>

#include "engine/database.h"
#include "exec/aggregate.h"
#include "exec/expr.h"
#include "exec/filter.h"
#include "exec/join.h"
#include "exec/sort.h"

namespace wimpi::tpch {

// Shorthand used throughout the hand-written TPC-H physical plans.
using exec::AggFn;
using exec::AggSpec;
using exec::CmpOp;
using exec::ColumnSource;
using exec::JoinKind;
using exec::Predicate;
using exec::QueryStats;
using exec::Relation;
using exec::SelVec;
using exec::SortKey;

// {"a", "b"} -> {{"a","a"}, {"b","b"}} for GatherColumns.
std::vector<std::pair<std::string, std::string>> Cols(
    const std::vector<std::string>& names);

// Filters a base table and materializes `cols` of the qualifying rows.
Relation ScanGather(const storage::Table& t,
                    const std::vector<Predicate>& preds,
                    const std::vector<std::string>& cols, QueryStats* stats);

// Materializes whole columns of a table (no filter).
Relation ScanAll(const storage::Table& t,
                 const std::vector<std::string>& cols, QueryStats* stats);

// Hash-joins two relations on named key columns and gathers the requested
// output columns from each side. For kSemi/kAnti, `build_cols` must be
// empty (only probe rows survive). Key columns themselves can be re-gathered
// by listing them in the output sets.
Relation JoinGather(const Relation& build,
                    const std::vector<std::string>& build_keys,
                    const std::vector<std::string>& build_cols,
                    const Relation& probe,
                    const std::vector<std::string>& probe_keys,
                    const std::vector<std::string>& probe_cols,
                    JoinKind kind, QueryStats* stats);

// n_nationkey for a nation name; CHECK-fails if unknown.
int32_t NationKey(const engine::Database& db, const std::string& name);

// Nation keys of every nation in `region_name`.
std::vector<int32_t> NationKeysInRegion(const engine::Database& db,
                                        const std::string& region_name);

}  // namespace wimpi::tpch

#endif  // WIMPI_TPCH_QUERY_UTILS_H_
