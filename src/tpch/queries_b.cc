// TPC-H queries 12-22 plus the RunQuery registry. See queries_a.cc.
#include "common/date.h"
#include "common/strings.h"
#include "exec/exec_options.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "tpch/queries_impl.h"
#include "tpch/query_utils.h"

namespace wimpi::tpch {

using engine::Database;
using exec::CastF64;
using exec::ConstMinusF64;
using exec::DivF64;
using exec::HashAggregate;
using exec::MaskedF64;
using exec::MaxF64;
using exec::MulConstF64;
using exec::MulF64;
using exec::SortRelation;
using exec::StrMatchMask;
using exec::SumF64;

namespace {

// A single-row, single-column relation holding a scalar query answer.
Relation ScalarRelation(const std::string& name, double value) {
  auto col = std::make_unique<storage::Column>(storage::DataType::kFloat64);
  col->AppendFloat64(value);
  Relation r;
  r.AddColumn(name, std::move(col));
  return r;
}

// 0/1 mask as a float64 column (for conditional counts like Q12).
std::unique_ptr<storage::Column> MaskToF64(const std::vector<uint8_t>& mask,
                                           QueryStats* stats) {
  auto col = std::make_unique<storage::Column>(storage::DataType::kFloat64);
  auto& v = col->MutableF64();
  v.resize(mask.size());
  for (size_t i = 0; i < mask.size(); ++i) v[i] = mask[i] != 0 ? 1.0 : 0.0;
  if (stats != nullptr) {
    exec::OpStats op;
    op.op = "mask_to_f64";
    op.compute_ops = static_cast<double>(mask.size());
    op.seq_bytes = static_cast<double>(mask.size()) * 9;
    op.output_bytes = static_cast<double>(mask.size()) * 8;
    op.rows_in = static_cast<double>(mask.size());
    op.rows_out = static_cast<double>(mask.size());
    if (exec::CurrentExecOptions().cardinality_estimator != nullptr) {
      op.est_rows = static_cast<double>(mask.size());  // element-wise map
    }
    stats->Add(std::move(op));
  }
  return col;
}

std::unique_ptr<storage::Column> AddConstI32(const storage::Column& a,
                                             int32_t c, QueryStats* stats) {
  auto col = std::make_unique<storage::Column>(storage::DataType::kInt32);
  auto& v = col->MutableI32();
  const int64_t n = a.size();
  v.resize(n);
  const int32_t* d = a.I32Data();
  for (int64_t i = 0; i < n; ++i) v[i] = d[i] + c;
  if (stats != nullptr) {
    exec::OpStats op;
    op.op = "add_const_i32";
    op.compute_ops = static_cast<double>(n);
    op.seq_bytes = static_cast<double>(n) * 8;
    op.output_bytes = static_cast<double>(n) * 4;
    op.rows_in = static_cast<double>(n);
    op.rows_out = static_cast<double>(n);
    if (exec::CurrentExecOptions().cardinality_estimator != nullptr) {
      op.est_rows = static_cast<double>(n);  // element-wise map
    }
    stats->Add(std::move(op));
  }
  return col;
}

void AddRevenue(Relation* r, const std::string& name, QueryStats* stats) {
  auto one_minus = ConstMinusF64(1.0, r->column("l_discount"), stats);
  r->AddColumn(name, MulF64(r->column("l_extendedprice"), *one_minus, stats));
}

}  // namespace

exec::Relation RunQ12(const Database& db, QueryStats* stats) {
  const storage::Table& l = db.table("lineitem");
  const ColumnSource lsrc(l);
  const int32_t lo = ParseDate("1994-01-01");
  SelVec sel = exec::Filter(
      lsrc,
      {Predicate::StrIn("l_shipmode", {"MAIL", "SHIP"}),
       Predicate::BetweenDate("l_receiptdate", lo,
                              DateAddMonths(lo, 12) - 1)},
      stats);
  sel = exec::FilterColCmpCol(lsrc, "l_commitdate", CmpOp::kLt,
                              "l_receiptdate", stats, &sel);
  sel = exec::FilterColCmpCol(lsrc, "l_shipdate", CmpOp::kLt, "l_commitdate",
                              stats, &sel);
  Relation line = exec::GatherColumns(lsrc, Cols({"l_orderkey", "l_shipmode"}),
                                      sel, stats);

  Relation orders =
      ScanAll(db.table("orders"), {"o_orderkey", "o_orderpriority"}, stats);
  Relation j =
      JoinGather(orders, {"o_orderkey"}, {"o_orderpriority"}, line,
                 {"l_orderkey"}, {"l_shipmode"}, JoinKind::kInner, stats);

  const auto high = StrMatchMask(
      j.column("o_orderpriority"),
      [](std::string_view s) { return s == "1-URGENT" || s == "2-HIGH"; },
      2.0, stats);
  auto high_col = MaskToF64(high, stats);
  std::vector<uint8_t> low(high.size());
  for (size_t i = 0; i < high.size(); ++i) low[i] = high[i] == 0 ? 1 : 0;
  j.AddColumn("high", std::move(high_col));
  j.AddColumn("low", MaskToF64(low, stats));

  Relation agg = HashAggregate(ColumnSource(j), {"l_shipmode"},
                               {{AggFn::kSum, "high", "high_line_count"},
                                {AggFn::kSum, "low", "low_line_count"}},
                               stats);
  return SortRelation(agg, {{"l_shipmode", true}}, stats);
}

exec::Relation RunQ13(const Database& db, QueryStats* stats) {
  Relation orders = ScanGather(
      db.table("orders"),
      {Predicate::NotLike("o_comment", "%special%requests%")}, {"o_custkey"},
      stats);
  Relation per_cust = HashAggregate(ColumnSource(orders), {"o_custkey"},
                                    {{AggFn::kCountStar, "", "c_count"}},
                                    stats);
  Relation cust = ScanAll(db.table("customer"), {"c_custkey"}, stats);
  // Left outer: customers without orders get c_count = 0.
  Relation j = JoinGather(per_cust, {"o_custkey"}, {"c_count"}, cust,
                          {"c_custkey"}, {"c_custkey"}, JoinKind::kLeftOuter,
                          stats);
  Relation agg = HashAggregate(ColumnSource(j), {"c_count"},
                               {{AggFn::kCountStar, "", "custdist"}}, stats);
  return SortRelation(agg, {{"custdist", false}, {"c_count", false}}, stats);
}

exec::Relation RunQ14(const Database& db, QueryStats* stats) {
  const int32_t lo = ParseDate("1995-09-01");
  Relation line = ScanGather(
      db.table("lineitem"),
      {Predicate::BetweenDate("l_shipdate", lo, DateAddMonths(lo, 1) - 1)},
      {"l_partkey", "l_extendedprice", "l_discount"}, stats);
  Relation parts = ScanAll(db.table("part"), {"p_partkey", "p_type"}, stats);
  Relation j = JoinGather(parts, {"p_partkey"}, {"p_type"}, line,
                          {"l_partkey"}, {"l_extendedprice", "l_discount"},
                          JoinKind::kInner, stats);
  AddRevenue(&j, "rev", stats);
  const auto promo = StrMatchMask(
      j.column("p_type"),
      [](std::string_view s) { return StartsWith(s, "PROMO"); }, 3.0, stats);
  auto promo_rev = MaskedF64(j.column("rev"), promo, stats);
  const double promo_sum = SumF64(*promo_rev, stats);
  const double total = SumF64(j.column("rev"), stats);
  return ScalarRelation("promo_revenue",
                        total == 0 ? 0 : 100.0 * promo_sum / total);
}

exec::Relation RunQ15(const Database& db, QueryStats* stats) {
  const int32_t lo = ParseDate("1996-01-01");
  Relation line = ScanGather(
      db.table("lineitem"),
      {Predicate::BetweenDate("l_shipdate", lo, DateAddMonths(lo, 3) - 1)},
      {"l_suppkey", "l_extendedprice", "l_discount"}, stats);
  AddRevenue(&line, "rev", stats);
  Relation revenue = HashAggregate(ColumnSource(line), {"l_suppkey"},
                                   {{AggFn::kSum, "rev", "total_revenue"}},
                                   stats);
  const double best = MaxF64(revenue.column("total_revenue"), stats);
  const SelVec top = exec::Filter(
      ColumnSource(revenue),
      {Predicate::CmpF64("total_revenue", CmpOp::kGe, best)}, stats);
  Relation winners = exec::GatherColumns(
      ColumnSource(revenue), Cols({"l_suppkey", "total_revenue"}), top,
      stats);
  Relation supp = ScanAll(db.table("supplier"),
                          {"s_suppkey", "s_name", "s_address", "s_phone"},
                          stats);
  Relation j = JoinGather(winners, {"l_suppkey"}, {"total_revenue"}, supp,
                          {"s_suppkey"},
                          {"s_suppkey", "s_name", "s_address", "s_phone"},
                          JoinKind::kInner, stats);
  return SortRelation(j, {{"s_suppkey", true}}, stats);
}

exec::Relation RunQ16(const Database& db, QueryStats* stats) {
  Relation parts = ScanGather(
      db.table("part"),
      {Predicate::StrNe("p_brand", "Brand#45"),
       Predicate::NotLike("p_type", "MEDIUM POLISHED%"),
       Predicate::InI32("p_size", {49, 14, 23, 45, 19, 3, 36, 9})},
      {"p_partkey", "p_brand", "p_type", "p_size"}, stats);

  Relation bad_supp = ScanGather(
      db.table("supplier"),
      {Predicate::Like("s_comment", "%Customer%Complaints%")}, {"s_suppkey"},
      stats);
  Relation ps =
      ScanAll(db.table("partsupp"), {"ps_partkey", "ps_suppkey"}, stats);
  Relation good_ps =
      JoinGather(bad_supp, {"s_suppkey"}, {}, ps, {"ps_suppkey"},
                 {"ps_partkey", "ps_suppkey"}, JoinKind::kAnti, stats);

  Relation j = JoinGather(parts, {"p_partkey"},
                          {"p_brand", "p_type", "p_size"}, good_ps,
                          {"ps_partkey"}, {"ps_suppkey"}, JoinKind::kInner,
                          stats);
  // COUNT(DISTINCT ps_suppkey): dedup on the full grouping + suppkey, then
  // count per group.
  Relation dedup = HashAggregate(
      ColumnSource(j), {"p_brand", "p_type", "p_size", "ps_suppkey"},
      {{AggFn::kCountStar, "", "ignore"}}, stats);
  Relation agg =
      HashAggregate(ColumnSource(dedup), {"p_brand", "p_type", "p_size"},
                    {{AggFn::kCountStar, "", "supplier_cnt"}}, stats);
  return SortRelation(agg,
                      {{"supplier_cnt", false},
                       {"p_brand", true},
                       {"p_type", true},
                       {"p_size", true}},
                      stats);
}

exec::Relation RunQ17(const Database& db, QueryStats* stats) {
  Relation parts = ScanGather(
      db.table("part"),
      {Predicate::StrEq("p_brand", "Brand#23"),
       Predicate::StrEq("p_container", "MED BOX")},
      {"p_partkey"}, stats);
  Relation line = ScanAll(db.table("lineitem"),
                          {"l_partkey", "l_quantity", "l_extendedprice"},
                          stats);
  Relation j = JoinGather(parts, {"p_partkey"}, {}, line, {"l_partkey"},
                          {"l_partkey", "l_quantity", "l_extendedprice"},
                          JoinKind::kSemi, stats);
  Relation avg = HashAggregate(ColumnSource(j), {"l_partkey"},
                               {{AggFn::kAvg, "l_quantity", "avg_qty"}},
                               stats);
  avg.AddColumn("limit_qty", MulConstF64(avg.column("avg_qty"), 0.2, stats));
  Relation j2 = JoinGather(avg, {"l_partkey"}, {"limit_qty"}, j,
                           {"l_partkey"}, {"l_quantity", "l_extendedprice"},
                           JoinKind::kInner, stats);
  const SelVec below = exec::FilterColCmpCol(
      ColumnSource(j2), "l_quantity", CmpOp::kLt, "limit_qty", stats);
  Relation kept = exec::GatherColumns(ColumnSource(j2),
                                      Cols({"l_extendedprice"}), below,
                                      stats);
  const double total = SumF64(kept.column("l_extendedprice"), stats);
  return ScalarRelation("avg_yearly", total / 7.0);
}

exec::Relation RunQ18(const Database& db, QueryStats* stats) {
  Relation line =
      ScanAll(db.table("lineitem"), {"l_orderkey", "l_quantity"}, stats);
  Relation per_order = HashAggregate(ColumnSource(line), {"l_orderkey"},
                                     {{AggFn::kSum, "l_quantity", "sum_qty"}},
                                     stats);
  const SelVec big = exec::Filter(
      ColumnSource(per_order),
      {Predicate::CmpF64("sum_qty", CmpOp::kGt, 300)}, stats);
  Relation big_orders = exec::GatherColumns(
      ColumnSource(per_order), Cols({"l_orderkey", "sum_qty"}), big, stats);

  Relation orders =
      ScanAll(db.table("orders"),
              {"o_orderkey", "o_custkey", "o_totalprice", "o_orderdate"},
              stats);
  Relation j = JoinGather(
      big_orders, {"l_orderkey"}, {"sum_qty"}, orders, {"o_orderkey"},
      {"o_orderkey", "o_custkey", "o_totalprice", "o_orderdate"},
      JoinKind::kInner, stats);
  Relation cust =
      ScanAll(db.table("customer"), {"c_custkey", "c_name"}, stats);
  Relation j2 = JoinGather(
      cust, {"c_custkey"}, {"c_name", "c_custkey"}, j, {"o_custkey"},
      {"o_orderkey", "o_orderdate", "o_totalprice", "sum_qty"},
      JoinKind::kInner, stats);
  return SortRelation(j2, {{"o_totalprice", false}, {"o_orderdate", true}},
                      stats, 100);
}

exec::Relation RunQ19(const Database& db, QueryStats* stats) {
  Relation line = ScanGather(
      db.table("lineitem"),
      {Predicate::StrEq("l_shipinstruct", "DELIVER IN PERSON"),
       Predicate::StrIn("l_shipmode", {"AIR", "AIR REG"})},
      {"l_partkey", "l_quantity", "l_extendedprice", "l_discount"}, stats);
  Relation parts = ScanAll(db.table("part"),
                           {"p_partkey", "p_brand", "p_container", "p_size"},
                           stats);
  Relation j = JoinGather(
      parts, {"p_partkey"}, {"p_brand", "p_container", "p_size"}, line,
      {"l_partkey"}, {"l_quantity", "l_extendedprice", "l_discount"},
      JoinKind::kInner, stats);

  const ColumnSource src(j);
  const SelVec b1 = exec::Filter(
      src,
      {Predicate::StrEq("p_brand", "Brand#12"),
       Predicate::StrIn("p_container",
                        {"SM CASE", "SM BOX", "SM PACK", "SM PKG"}),
       Predicate::BetweenF64("l_quantity", 1, 11),
       Predicate::BetweenI32("p_size", 1, 5)},
      stats);
  const SelVec b2 = exec::Filter(
      src,
      {Predicate::StrEq("p_brand", "Brand#23"),
       Predicate::StrIn("p_container",
                        {"MED BAG", "MED BOX", "MED PKG", "MED PACK"}),
       Predicate::BetweenF64("l_quantity", 10, 20),
       Predicate::BetweenI32("p_size", 1, 10)},
      stats);
  const SelVec b3 = exec::Filter(
      src,
      {Predicate::StrEq("p_brand", "Brand#34"),
       Predicate::StrIn("p_container",
                        {"LG CASE", "LG BOX", "LG PACK", "LG PKG"}),
       Predicate::BetweenF64("l_quantity", 20, 30),
       Predicate::BetweenI32("p_size", 1, 15)},
      stats);
  const SelVec all = exec::UnionSel({&b1, &b2, &b3}, stats);
  Relation kept = exec::GatherColumns(
      src, Cols({"l_extendedprice", "l_discount"}), all, stats);
  AddRevenue(&kept, "rev", stats);
  return ScalarRelation("revenue", SumF64(kept.column("rev"), stats));
}

exec::Relation RunQ20(const Database& db, QueryStats* stats) {
  const int32_t canada = NationKey(db, "CANADA");
  Relation parts = ScanGather(db.table("part"),
                              {Predicate::Like("p_name", "forest%")},
                              {"p_partkey"}, stats);
  const int32_t lo = ParseDate("1994-01-01");
  Relation line = ScanGather(
      db.table("lineitem"),
      {Predicate::BetweenDate("l_shipdate", lo, DateAddMonths(lo, 12) - 1)},
      {"l_partkey", "l_suppkey", "l_quantity"}, stats);
  Relation fl = JoinGather(parts, {"p_partkey"}, {}, line, {"l_partkey"},
                           {"l_partkey", "l_suppkey", "l_quantity"},
                           JoinKind::kSemi, stats);
  Relation shipped = HashAggregate(
      ColumnSource(fl), {"l_partkey", "l_suppkey"},
      {{AggFn::kSum, "l_quantity", "sum_qty"}}, stats);
  shipped.AddColumn("half_qty",
                    MulConstF64(shipped.column("sum_qty"), 0.5, stats));

  Relation ps = ScanAll(db.table("partsupp"),
                        {"ps_partkey", "ps_suppkey", "ps_availqty"}, stats);
  Relation j = JoinGather(shipped, {"l_partkey", "l_suppkey"}, {"half_qty"},
                          ps, {"ps_partkey", "ps_suppkey"},
                          {"ps_suppkey", "ps_availqty"}, JoinKind::kInner,
                          stats);
  j.AddColumn("availqty_f", CastF64(j.column("ps_availqty"), stats));
  const SelVec enough = exec::FilterColCmpCol(
      ColumnSource(j), "availqty_f", CmpOp::kGt, "half_qty", stats);
  Relation suppliers = exec::GatherColumns(ColumnSource(j),
                                           Cols({"ps_suppkey"}), enough,
                                           stats);
  Relation distinct = HashAggregate(ColumnSource(suppliers), {"ps_suppkey"},
                                    {{AggFn::kCountStar, "", "ignore"}},
                                    stats);

  Relation supp = ScanGather(
      db.table("supplier"),
      {Predicate::CmpI32("s_nationkey", CmpOp::kEq, canada)},
      {"s_suppkey", "s_name", "s_address"}, stats);
  Relation out =
      JoinGather(distinct, {"ps_suppkey"}, {}, supp, {"s_suppkey"},
                 {"s_name", "s_address"}, JoinKind::kSemi, stats);
  return SortRelation(out, {{"s_name", true}}, stats);
}

exec::Relation RunQ21(const Database& db, QueryStats* stats) {
  const int32_t saudi = NationKey(db, "SAUDI ARABIA");
  const storage::Table& l = db.table("lineitem");
  const ColumnSource lsrc(l);

  // Distinct suppliers per order, over all lineitems and over late ones.
  Relation lkeys = ScanAll(l, {"l_orderkey", "l_suppkey"}, stats);
  Relation pairs =
      HashAggregate(ColumnSource(lkeys), {"l_orderkey", "l_suppkey"},
                    {{AggFn::kCountStar, "", "n"}}, stats);
  Relation n_supp_all = HashAggregate(ColumnSource(pairs), {"l_orderkey"},
                                      {{AggFn::kCountStar, "", "n_supp"}},
                                      stats);

  const SelVec late = exec::FilterColCmpCol(lsrc, "l_receiptdate", CmpOp::kGt,
                                            "l_commitdate", stats);
  Relation late_rows = exec::GatherColumns(
      lsrc, Cols({"l_orderkey", "l_suppkey"}), late, stats);
  Relation late_pairs =
      HashAggregate(ColumnSource(late_rows), {"l_orderkey", "l_suppkey"},
                    {{AggFn::kCountStar, "", "n"}}, stats);
  Relation n_supp_late =
      HashAggregate(ColumnSource(late_pairs), {"l_orderkey"},
                    {{AggFn::kCountStar, "", "n_late"}}, stats);

  // l1 candidates: late lineitems of 'F' orders.
  Relation orders_f = ScanGather(db.table("orders"),
                                 {Predicate::StrEq("o_orderstatus", "F")},
                                 {"o_orderkey"}, stats);
  Relation l1 = JoinGather(orders_f, {"o_orderkey"}, {}, late_rows,
                           {"l_orderkey"}, {"l_orderkey", "l_suppkey"},
                           JoinKind::kSemi, stats);

  // EXISTS other-supplier lineitem: orders with > 1 distinct supplier.
  const SelVec multi = exec::Filter(
      ColumnSource(n_supp_all),
      {Predicate::CmpI64("n_supp", CmpOp::kGt, 1)}, stats);
  Relation multi_orders = exec::GatherColumns(ColumnSource(n_supp_all),
                                              Cols({"l_orderkey"}), multi,
                                              stats);
  l1 = JoinGather(multi_orders, {"l_orderkey"}, {}, l1, {"l_orderkey"},
                  {"l_orderkey", "l_suppkey"}, JoinKind::kSemi, stats);

  // NOT EXISTS other late supplier: orders whose late lineitems all come
  // from a single supplier.
  const SelVec solo = exec::Filter(
      ColumnSource(n_supp_late),
      {Predicate::CmpI64("n_late", CmpOp::kEq, 1)}, stats);
  Relation solo_orders = exec::GatherColumns(ColumnSource(n_supp_late),
                                             Cols({"l_orderkey"}), solo,
                                             stats);
  l1 = JoinGather(solo_orders, {"l_orderkey"}, {}, l1, {"l_orderkey"},
                  {"l_orderkey", "l_suppkey"}, JoinKind::kSemi, stats);

  // Saudi suppliers, then count waits per supplier name.
  Relation supp = ScanGather(
      db.table("supplier"),
      {Predicate::CmpI32("s_nationkey", CmpOp::kEq, saudi)},
      {"s_suppkey", "s_name"}, stats);
  Relation named = JoinGather(supp, {"s_suppkey"}, {"s_name"}, l1,
                              {"l_suppkey"}, {}, JoinKind::kInner, stats);
  Relation agg = HashAggregate(ColumnSource(named), {"s_name"},
                               {{AggFn::kCountStar, "", "numwait"}}, stats);
  return SortRelation(agg, {{"numwait", false}, {"s_name", true}}, stats,
                      100);
}

exec::Relation RunQ22(const Database& db, QueryStats* stats) {
  const std::vector<std::string> codes = {"13", "31", "23", "29",
                                          "30", "18", "17"};
  Relation cust = ScanGather(
      db.table("customer"),
      {Predicate::StrTest(
          "c_phone",
          [codes](std::string_view s) {
            if (s.size() < 2) return false;
            const std::string_view prefix = s.substr(0, 2);
            for (const auto& c : codes) {
              if (prefix == c) return true;
            }
            return false;
          },
          4.0)},
      {"c_custkey", "c_acctbal", "c_nationkey"}, stats);
  // cntrycode == 10 + c_nationkey by the generator's phone rule.
  cust.AddColumn("cntrycode", AddConstI32(cust.column("c_nationkey"), 10,
                                          stats));

  // AVG over customers with positive balance in those codes.
  const SelVec positive = exec::Filter(
      ColumnSource(cust), {Predicate::CmpF64("c_acctbal", CmpOp::kGt, 0.0)},
      stats);
  Relation pos = exec::GatherColumns(ColumnSource(cust),
                                     Cols({"c_acctbal"}), positive, stats);
  const double avg = exec::AvgF64(pos.column("c_acctbal"), stats);

  const SelVec rich = exec::Filter(
      ColumnSource(cust), {Predicate::CmpF64("c_acctbal", CmpOp::kGt, avg)},
      stats);
  Relation rich_cust = exec::GatherColumns(
      ColumnSource(cust), Cols({"c_custkey", "c_acctbal", "cntrycode"}),
      rich, stats);

  Relation orders = ScanAll(db.table("orders"), {"o_custkey"}, stats);
  Relation no_orders = JoinGather(orders, {"o_custkey"}, {}, rich_cust,
                                  {"c_custkey"}, {"cntrycode", "c_acctbal"},
                                  JoinKind::kAnti, stats);
  Relation agg = HashAggregate(ColumnSource(no_orders), {"cntrycode"},
                               {{AggFn::kCountStar, "", "numcust"},
                                {AggFn::kSum, "c_acctbal", "totacctbal"}},
                               stats);
  return SortRelation(agg, {{"cntrycode", true}}, stats);
}

exec::Relation RunQuery(int q, const Database& db, QueryStats* stats) {
  switch (q) {
    case 1: return RunQ1(db, stats);
    case 2: return RunQ2(db, stats);
    case 3: return RunQ3(db, stats);
    case 4: return RunQ4(db, stats);
    case 5: return RunQ5(db, stats);
    case 6: return RunQ6(db, stats);
    case 7: return RunQ7(db, stats);
    case 8: return RunQ8(db, stats);
    case 9: return RunQ9(db, stats);
    case 10: return RunQ10(db, stats);
    case 11: return RunQ11(db, stats);
    case 12: return RunQ12(db, stats);
    case 13: return RunQ13(db, stats);
    case 14: return RunQ14(db, stats);
    case 15: return RunQ15(db, stats);
    case 16: return RunQ16(db, stats);
    case 17: return RunQ17(db, stats);
    case 18: return RunQ18(db, stats);
    case 19: return RunQ19(db, stats);
    case 20: return RunQ20(db, stats);
    case 21: return RunQ21(db, stats);
    case 22: return RunQ22(db, stats);
    default:
      WIMPI_CHECK(false) << "no such TPC-H query: " << q;
      return exec::Relation();
  }
}

bool InSf10Subset(int q) {
  for (const int s : kSf10Queries) {
    if (s == q) return true;
  }
  return false;
}

}  // namespace wimpi::tpch
