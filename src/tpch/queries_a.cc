// TPC-H queries 1-11 as hand-written physical plans. Each function follows
// the official query text (parameters fixed to the spec's validation
// values); correlated subqueries are decorrelated into join/aggregate
// combinations, which is also how MonetDB executes them.
#include "common/date.h"
#include "common/strings.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "tpch/queries_impl.h"
#include "tpch/query_utils.h"

namespace wimpi::tpch {

using engine::Database;
using exec::CastF64;
using exec::ConstMinusF64;
using exec::ConstPlusF64;
using exec::DivF64;
using exec::HashAggregate;
using exec::I32EqMask;
using exec::MaskedF64;
using exec::MulF64;
using exec::SortRelation;
using exec::StrMatchMask;
using exec::SubF64;
using exec::SumF64;

namespace {

// revenue = l_extendedprice * (1 - l_discount), appended as `name`.
void AddRevenue(Relation* r, const std::string& name, QueryStats* stats) {
  auto one_minus = ConstMinusF64(1.0, r->column("l_discount"), stats);
  r->AddColumn(name, MulF64(r->column("l_extendedprice"), *one_minus, stats));
}

}  // namespace

exec::Relation RunQ1(const Database& db, QueryStats* stats) {
  Relation r = ScanGather(
      db.table("lineitem"),
      {Predicate::CmpDate("l_shipdate", CmpOp::kLe,
                          ParseDate("1998-12-01") - 90)},
      {"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice",
       "l_discount", "l_tax"},
      stats);
  auto one_minus = ConstMinusF64(1.0, r.column("l_discount"), stats);
  auto disc_price = MulF64(r.column("l_extendedprice"), *one_minus, stats);
  auto one_plus = ConstPlusF64(1.0, r.column("l_tax"), stats);
  auto charge = MulF64(*disc_price, *one_plus, stats);
  r.AddColumn("disc_price", std::move(disc_price));
  r.AddColumn("charge", std::move(charge));

  Relation agg = HashAggregate(
      ColumnSource(r), {"l_returnflag", "l_linestatus"},
      {{AggFn::kSum, "l_quantity", "sum_qty"},
       {AggFn::kSum, "l_extendedprice", "sum_base_price"},
       {AggFn::kSum, "disc_price", "sum_disc_price"},
       {AggFn::kSum, "charge", "sum_charge"},
       {AggFn::kAvg, "l_quantity", "avg_qty"},
       {AggFn::kAvg, "l_extendedprice", "avg_price"},
       {AggFn::kAvg, "l_discount", "avg_disc"},
       {AggFn::kCountStar, "", "count_order"}},
      stats);
  return SortRelation(
      agg, {{"l_returnflag", true}, {"l_linestatus", true}}, stats);
}

exec::Relation RunQ2(const Database& db, QueryStats* stats) {
  const std::vector<int32_t> europe = NationKeysInRegion(db, "EUROPE");

  Relation supp = ScanGather(
      db.table("supplier"), {Predicate::InI32("s_nationkey", europe)},
      {"s_suppkey", "s_acctbal", "s_name", "s_address", "s_phone",
       "s_comment", "s_nationkey"},
      stats);
  Relation parts = ScanGather(
      db.table("part"),
      {Predicate::CmpI32("p_size", CmpOp::kEq, 15),
       Predicate::Like("p_type", "%BRASS")},
      {"p_partkey", "p_mfgr"}, stats);
  Relation ps = ScanAll(db.table("partsupp"),
                        {"ps_partkey", "ps_suppkey", "ps_supplycost"}, stats);

  // partsupp rows for qualifying parts...
  Relation j1 = JoinGather(parts, {"p_partkey"}, {"p_partkey", "p_mfgr"}, ps,
                           {"ps_partkey"}, {"ps_suppkey", "ps_supplycost"},
                           JoinKind::kInner, stats);
  // ...restricted to European suppliers, keeping supplier attributes.
  Relation j2 = JoinGather(
      supp, {"s_suppkey"},
      {"s_acctbal", "s_name", "s_address", "s_phone", "s_comment",
       "s_nationkey"},
      j1, {"ps_suppkey"}, {"p_partkey", "p_mfgr", "ps_supplycost"},
      JoinKind::kInner, stats);

  // Decorrelated subquery: min supplycost per part (over Europe).
  Relation mins = HashAggregate(ColumnSource(j2), {"p_partkey"},
                                {{AggFn::kMin, "ps_supplycost", "min_cost"}},
                                stats);
  Relation best =
      JoinGather(mins, {"p_partkey", "min_cost"}, {}, j2,
                 {"p_partkey", "ps_supplycost"},
                 {"s_acctbal", "s_name", "s_nationkey", "p_partkey", "p_mfgr",
                  "s_address", "s_phone", "s_comment"},
                 JoinKind::kSemi, stats);

  Relation nations =
      ScanAll(db.table("nation"), {"n_nationkey", "n_name"}, stats);
  Relation named = JoinGather(nations, {"n_nationkey"}, {"n_name"}, best,
                              {"s_nationkey"},
                              {"s_acctbal", "s_name", "p_partkey", "p_mfgr",
                               "s_address", "s_phone", "s_comment"},
                              JoinKind::kInner, stats);
  return SortRelation(named,
                      {{"s_acctbal", false},
                       {"n_name", true},
                       {"s_name", true},
                       {"p_partkey", true}},
                      stats, 100);
}

exec::Relation RunQ3(const Database& db, QueryStats* stats) {
  const int32_t cutoff = ParseDate("1995-03-15");
  Relation cust = ScanGather(db.table("customer"),
                             {Predicate::StrEq("c_mktsegment", "BUILDING")},
                             {"c_custkey"}, stats);
  Relation orders = ScanGather(
      db.table("orders"),
      {Predicate::CmpDate("o_orderdate", CmpOp::kLt, cutoff)},
      {"o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"}, stats);
  Relation o2 = JoinGather(
      cust, {"c_custkey"}, {}, orders, {"o_custkey"},
      {"o_orderkey", "o_orderdate", "o_shippriority"}, JoinKind::kSemi, stats);

  Relation line = ScanGather(
      db.table("lineitem"),
      {Predicate::CmpDate("l_shipdate", CmpOp::kGt, cutoff)},
      {"l_orderkey", "l_extendedprice", "l_discount"}, stats);
  Relation j = JoinGather(o2, {"o_orderkey"},
                          {"o_orderdate", "o_shippriority"}, line,
                          {"l_orderkey"},
                          {"l_orderkey", "l_extendedprice", "l_discount"},
                          JoinKind::kInner, stats);
  AddRevenue(&j, "rev", stats);
  Relation agg = HashAggregate(
      ColumnSource(j), {"l_orderkey", "o_orderdate", "o_shippriority"},
      {{AggFn::kSum, "rev", "revenue"}}, stats);
  return SortRelation(agg, {{"revenue", false}, {"o_orderdate", true}},
                      stats, 10);
}

exec::Relation RunQ4(const Database& db, QueryStats* stats) {
  const storage::Table& l = db.table("lineitem");
  const SelVec late = exec::FilterColCmpCol(
      ColumnSource(l), "l_commitdate", CmpOp::kLt, "l_receiptdate", stats);
  Relation lkeys = exec::GatherColumns(ColumnSource(l),
                                       Cols({"l_orderkey"}), late, stats);

  const int32_t lo = ParseDate("1993-07-01");
  Relation orders = ScanGather(
      db.table("orders"),
      {Predicate::BetweenDate("o_orderdate", lo,
                              DateAddMonths(lo, 3) - 1)},
      {"o_orderkey", "o_orderpriority"}, stats);

  Relation j = JoinGather(lkeys, {"l_orderkey"}, {}, orders, {"o_orderkey"},
                          {"o_orderpriority"}, JoinKind::kSemi, stats);
  Relation agg =
      HashAggregate(ColumnSource(j), {"o_orderpriority"},
                    {{AggFn::kCountStar, "", "order_count"}}, stats);
  return SortRelation(agg, {{"o_orderpriority", true}}, stats);
}

exec::Relation RunQ5(const Database& db, QueryStats* stats) {
  const std::vector<int32_t> asia = NationKeysInRegion(db, "ASIA");
  const int32_t lo = ParseDate("1994-01-01");

  Relation cust =
      ScanAll(db.table("customer"), {"c_custkey", "c_nationkey"}, stats);
  Relation orders = ScanGather(
      db.table("orders"),
      {Predicate::BetweenDate("o_orderdate", lo, DateAddMonths(lo, 12) - 1)},
      {"o_orderkey", "o_custkey"}, stats);
  Relation j1 =
      JoinGather(cust, {"c_custkey"}, {"c_nationkey"}, orders, {"o_custkey"},
                 {"o_orderkey"}, JoinKind::kInner, stats);

  Relation line =
      ScanAll(db.table("lineitem"),
              {"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"},
              stats);
  Relation j2 = JoinGather(j1, {"o_orderkey"}, {"c_nationkey"}, line,
                           {"l_orderkey"},
                           {"l_suppkey", "l_extendedprice", "l_discount"},
                           JoinKind::kInner, stats);

  Relation supp = ScanGather(db.table("supplier"),
                             {Predicate::InI32("s_nationkey", asia)},
                             {"s_suppkey", "s_nationkey"}, stats);
  // Two-key join enforces both l_suppkey = s_suppkey and the correlated
  // c_nationkey = s_nationkey condition.
  Relation j3 = JoinGather(supp, {"s_suppkey", "s_nationkey"},
                           {"s_nationkey"}, j2,
                           {"l_suppkey", "c_nationkey"},
                           {"l_extendedprice", "l_discount"},
                           JoinKind::kInner, stats);
  AddRevenue(&j3, "rev", stats);
  Relation agg = HashAggregate(ColumnSource(j3), {"s_nationkey"},
                               {{AggFn::kSum, "rev", "revenue"}}, stats);
  Relation nations =
      ScanAll(db.table("nation"), {"n_nationkey", "n_name"}, stats);
  Relation named =
      JoinGather(nations, {"n_nationkey"}, {"n_name"}, agg, {"s_nationkey"},
                 {"revenue"}, JoinKind::kInner, stats);
  return SortRelation(named, {{"revenue", false}}, stats);
}

exec::Relation RunQ6(const Database& db, QueryStats* stats) {
  const int32_t lo = ParseDate("1994-01-01");
  Relation r = ScanGather(
      db.table("lineitem"),
      {Predicate::BetweenDate("l_shipdate", lo, DateAddMonths(lo, 12) - 1),
       Predicate::BetweenF64("l_discount", 0.05, 0.07),
       Predicate::CmpF64("l_quantity", CmpOp::kLt, 24)},
      {"l_extendedprice", "l_discount"}, stats);
  auto product =
      MulF64(r.column("l_extendedprice"), r.column("l_discount"), stats);
  Relation rev;
  rev.AddColumn("product", std::move(product));
  return HashAggregate(ColumnSource(rev), {},
                       {{AggFn::kSum, "product", "revenue"}}, stats);
}

exec::Relation RunQ7(const Database& db, QueryStats* stats) {
  const int32_t france = NationKey(db, "FRANCE");
  const int32_t germany = NationKey(db, "GERMANY");

  Relation supp = ScanGather(
      db.table("supplier"),
      {Predicate::InI32("s_nationkey", {france, germany})},
      {"s_suppkey", "s_nationkey"}, stats);
  Relation line = ScanGather(
      db.table("lineitem"),
      {Predicate::BetweenDate("l_shipdate", ParseDate("1995-01-01"),
                              ParseDate("1996-12-31"))},
      {"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount",
       "l_shipdate"},
      stats);
  Relation j1 = JoinGather(supp, {"s_suppkey"}, {"s_nationkey"}, line,
                           {"l_suppkey"},
                           {"l_orderkey", "l_extendedprice", "l_discount",
                            "l_shipdate"},
                           JoinKind::kInner, stats);

  Relation orders =
      ScanAll(db.table("orders"), {"o_orderkey", "o_custkey"}, stats);
  Relation j2 = JoinGather(
      j1, {"l_orderkey"},
      {"s_nationkey", "l_extendedprice", "l_discount", "l_shipdate"}, orders,
      {"o_orderkey"}, {"o_custkey"}, JoinKind::kInner, stats);

  Relation cust = ScanGather(
      db.table("customer"),
      {Predicate::InI32("c_nationkey", {france, germany})},
      {"c_custkey", "c_nationkey"}, stats);
  Relation j3 = JoinGather(
      cust, {"c_custkey"}, {"c_nationkey"}, j2, {"o_custkey"},
      {"s_nationkey", "l_extendedprice", "l_discount", "l_shipdate"},
      JoinKind::kInner, stats);

  // (supp=FRANCE and cust=GERMANY) or (supp=GERMANY and cust=FRANCE)
  const ColumnSource src(j3);
  const SelVec fr_de =
      exec::Filter(src,
                   {Predicate::CmpI32("s_nationkey", CmpOp::kEq, france),
                    Predicate::CmpI32("c_nationkey", CmpOp::kEq, germany)},
                   stats);
  const SelVec de_fr =
      exec::Filter(src,
                   {Predicate::CmpI32("s_nationkey", CmpOp::kEq, germany),
                    Predicate::CmpI32("c_nationkey", CmpOp::kEq, france)},
                   stats);
  const SelVec both = exec::UnionSel({&fr_de, &de_fr}, stats);
  Relation sel = exec::GatherColumns(
      src,
      Cols({"s_nationkey", "c_nationkey", "l_shipdate", "l_extendedprice",
            "l_discount"}),
      both, stats);
  sel.AddColumn("l_year", exec::ExtractYear(sel.column("l_shipdate"), stats));
  AddRevenue(&sel, "volume", stats);

  Relation agg = HashAggregate(
      ColumnSource(sel), {"s_nationkey", "c_nationkey", "l_year"},
      {{AggFn::kSum, "volume", "revenue"}}, stats);

  // Attach nation names for both sides of the pair.
  Relation nations =
      ScanAll(db.table("nation"), {"n_nationkey", "n_name"}, stats);
  Relation a = JoinGather(nations, {"n_nationkey"}, {"n_name"}, agg,
                          {"s_nationkey"},
                          {"c_nationkey", "l_year", "revenue"},
                          JoinKind::kInner, stats);
  a.SetName(0, "supp_nation");
  Relation b = JoinGather(nations, {"n_nationkey"}, {"n_name"}, a,
                          {"c_nationkey"},
                          {"supp_nation", "l_year", "revenue"},
                          JoinKind::kInner, stats);
  b.SetName(0, "cust_nation");
  return SortRelation(
      b, {{"supp_nation", true}, {"cust_nation", true}, {"l_year", true}},
      stats);
}

exec::Relation RunQ8(const Database& db, QueryStats* stats) {
  const std::vector<int32_t> america = NationKeysInRegion(db, "AMERICA");
  const int32_t brazil = NationKey(db, "BRAZIL");

  Relation parts = ScanGather(
      db.table("part"),
      {Predicate::StrEq("p_type", "ECONOMY ANODIZED STEEL")}, {"p_partkey"},
      stats);
  Relation line =
      ScanAll(db.table("lineitem"),
              {"l_orderkey", "l_partkey", "l_suppkey", "l_extendedprice",
               "l_discount"},
              stats);
  Relation j1 = JoinGather(parts, {"p_partkey"}, {}, line, {"l_partkey"},
                           {"l_orderkey", "l_suppkey", "l_extendedprice",
                            "l_discount"},
                           JoinKind::kSemi, stats);

  Relation orders = ScanGather(
      db.table("orders"),
      {Predicate::BetweenDate("o_orderdate", ParseDate("1995-01-01"),
                              ParseDate("1996-12-31"))},
      {"o_orderkey", "o_custkey", "o_orderdate"}, stats);
  Relation j2 = JoinGather(
      j1, {"l_orderkey"},
      {"l_suppkey", "l_extendedprice", "l_discount"}, orders, {"o_orderkey"},
      {"o_custkey", "o_orderdate"}, JoinKind::kInner, stats);

  Relation cust = ScanGather(db.table("customer"),
                             {Predicate::InI32("c_nationkey", america)},
                             {"c_custkey"}, stats);
  Relation j3 = JoinGather(
      cust, {"c_custkey"}, {}, j2, {"o_custkey"},
      {"l_suppkey", "l_extendedprice", "l_discount", "o_orderdate"},
      JoinKind::kSemi, stats);

  Relation supp =
      ScanAll(db.table("supplier"), {"s_suppkey", "s_nationkey"}, stats);
  Relation j4 = JoinGather(
      supp, {"s_suppkey"}, {"s_nationkey"}, j3, {"l_suppkey"},
      {"l_extendedprice", "l_discount", "o_orderdate"}, JoinKind::kInner,
      stats);

  j4.AddColumn("o_year", exec::ExtractYear(j4.column("o_orderdate"), stats));
  AddRevenue(&j4, "volume", stats);
  const auto mask = I32EqMask(j4.column("s_nationkey"), brazil, stats);
  j4.AddColumn("brazil_volume", MaskedF64(j4.column("volume"), mask, stats));

  Relation agg =
      HashAggregate(ColumnSource(j4), {"o_year"},
                    {{AggFn::kSum, "brazil_volume", "brazil"},
                     {AggFn::kSum, "volume", "total"}},
                    stats);
  Relation out;
  Relation sorted = SortRelation(agg, {{"o_year", true}}, stats);
  out.AddColumn("o_year", sorted.TakeColumn(0));
  out.AddColumn("mkt_share",
                DivF64(sorted.column("brazil"), sorted.column("total"),
                       stats));
  return out;
}

exec::Relation RunQ9(const Database& db, QueryStats* stats) {
  Relation parts = ScanGather(
      db.table("part"),
      {Predicate::StrTest(
          "p_name",
          [](std::string_view s) { return Contains(s, "green"); }, 8.0)},
      {"p_partkey"}, stats);
  Relation line =
      ScanAll(db.table("lineitem"),
              {"l_orderkey", "l_partkey", "l_suppkey", "l_quantity",
               "l_extendedprice", "l_discount"},
              stats);
  Relation j1 = JoinGather(parts, {"p_partkey"}, {}, line, {"l_partkey"},
                           {"l_orderkey", "l_partkey", "l_suppkey",
                            "l_quantity", "l_extendedprice", "l_discount"},
                           JoinKind::kSemi, stats);

  Relation ps = ScanAll(db.table("partsupp"),
                        {"ps_partkey", "ps_suppkey", "ps_supplycost"}, stats);
  Relation j2 = JoinGather(
      ps, {"ps_partkey", "ps_suppkey"}, {"ps_supplycost"}, j1,
      {"l_partkey", "l_suppkey"},
      {"l_orderkey", "l_suppkey", "l_quantity", "l_extendedprice",
       "l_discount"},
      JoinKind::kInner, stats);

  Relation supp =
      ScanAll(db.table("supplier"), {"s_suppkey", "s_nationkey"}, stats);
  Relation j3 = JoinGather(
      supp, {"s_suppkey"}, {"s_nationkey"}, j2, {"l_suppkey"},
      {"l_orderkey", "l_quantity", "l_extendedprice", "l_discount",
       "ps_supplycost"},
      JoinKind::kInner, stats);

  Relation orders =
      ScanAll(db.table("orders"), {"o_orderkey", "o_orderdate"}, stats);
  Relation j4 = JoinGather(
      j3, {"l_orderkey"},
      {"s_nationkey", "l_quantity", "l_extendedprice", "l_discount",
       "ps_supplycost"},
      orders, {"o_orderkey"}, {"o_orderdate"}, JoinKind::kInner, stats);

  j4.AddColumn("o_year", exec::ExtractYear(j4.column("o_orderdate"), stats));
  AddRevenue(&j4, "gross", stats);
  auto cost = MulF64(j4.column("ps_supplycost"), j4.column("l_quantity"),
                     stats);
  j4.AddColumn("amount", SubF64(j4.column("gross"), *cost, stats));

  Relation agg = HashAggregate(ColumnSource(j4), {"s_nationkey", "o_year"},
                               {{AggFn::kSum, "amount", "sum_profit"}},
                               stats);
  Relation nations =
      ScanAll(db.table("nation"), {"n_nationkey", "n_name"}, stats);
  Relation named =
      JoinGather(nations, {"n_nationkey"}, {"n_name"}, agg, {"s_nationkey"},
                 {"o_year", "sum_profit"}, JoinKind::kInner, stats);
  named.SetName(0, "nation");
  return SortRelation(named, {{"nation", true}, {"o_year", false}}, stats);
}

exec::Relation RunQ10(const Database& db, QueryStats* stats) {
  const int32_t lo = ParseDate("1993-10-01");
  Relation orders = ScanGather(
      db.table("orders"),
      {Predicate::BetweenDate("o_orderdate", lo, DateAddMonths(lo, 3) - 1)},
      {"o_orderkey", "o_custkey"}, stats);
  Relation line = ScanGather(db.table("lineitem"),
                             {Predicate::StrEq("l_returnflag", "R")},
                             {"l_orderkey", "l_extendedprice", "l_discount"},
                             stats);
  Relation j = JoinGather(orders, {"o_orderkey"}, {"o_custkey"}, line,
                          {"l_orderkey"}, {"l_extendedprice", "l_discount"},
                          JoinKind::kInner, stats);
  AddRevenue(&j, "rev", stats);
  Relation agg = HashAggregate(ColumnSource(j), {"o_custkey"},
                               {{AggFn::kSum, "rev", "revenue"}}, stats);

  Relation cust = ScanAll(db.table("customer"),
                          {"c_custkey", "c_name", "c_acctbal", "c_phone",
                           "c_nationkey", "c_address", "c_comment"},
                          stats);
  Relation j2 = JoinGather(cust, {"c_custkey"},
                           {"c_custkey", "c_name", "c_acctbal", "c_phone",
                            "c_nationkey", "c_address", "c_comment"},
                           agg, {"o_custkey"}, {"revenue"}, JoinKind::kInner,
                           stats);
  Relation nations =
      ScanAll(db.table("nation"), {"n_nationkey", "n_name"}, stats);
  Relation named = JoinGather(nations, {"n_nationkey"}, {"n_name"}, j2,
                              {"c_nationkey"},
                              {"c_custkey", "c_name", "revenue", "c_acctbal",
                               "c_phone", "c_address", "c_comment"},
                              JoinKind::kInner, stats);
  return SortRelation(named, {{"revenue", false}, {"c_custkey", true}},
                      stats, 20);
}

exec::Relation RunQ11(const Database& db, QueryStats* stats) {
  const int32_t germany = NationKey(db, "GERMANY");
  // The HAVING threshold fraction is 0.0001 / SF per the spec; recover SF
  // from the supplier cardinality.
  const double sf =
      static_cast<double>(db.table("supplier").num_rows()) / 10000.0;
  const double fraction = 0.0001 / std::max(sf, 1e-9);

  Relation supp = ScanGather(db.table("supplier"),
                             {Predicate::CmpI32("s_nationkey", CmpOp::kEq,
                                                germany)},
                             {"s_suppkey"}, stats);
  Relation ps =
      ScanAll(db.table("partsupp"),
              {"ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"},
              stats);
  Relation j = JoinGather(supp, {"s_suppkey"}, {}, ps, {"ps_suppkey"},
                          {"ps_partkey", "ps_availqty", "ps_supplycost"},
                          JoinKind::kSemi, stats);
  auto qty = CastF64(j.column("ps_availqty"), stats);
  j.AddColumn("value", MulF64(j.column("ps_supplycost"), *qty, stats));

  const double total = SumF64(j.column("value"), stats);
  Relation agg = HashAggregate(ColumnSource(j), {"ps_partkey"},
                               {{AggFn::kSum, "value", "value"}}, stats);
  const SelVec keep =
      exec::Filter(ColumnSource(agg),
                   {Predicate::CmpF64("value", CmpOp::kGt, total * fraction)},
                   stats);
  Relation out = exec::GatherColumns(ColumnSource(agg),
                                     Cols({"ps_partkey", "value"}), keep,
                                     stats);
  return SortRelation(out, {{"value", false}}, stats);
}

}  // namespace wimpi::tpch
