#ifndef WIMPI_TPCH_TBL_IO_H_
#define WIMPI_TPCH_TBL_IO_H_

// Interop with the official TPC-H dbgen '.tbl' format ('|'-separated, one
// trailing '|', dates as YYYY-MM-DD). WriteTbl lets our deterministic
// generator feed other systems; ReadTbl loads data produced by the real
// dbgen into a table with a given schema, so results can be cross-checked
// against a reference DBMS.

#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace wimpi::tpch {

// Writes `table` to `path` in .tbl format. Returns the number of rows
// written or an error.
Result<int64_t> WriteTbl(const storage::Table& table, const std::string& path);

// Appends rows parsed from the .tbl file at `path` into `table` (whose
// schema defines the expected column count and types). Call FinishLoad()
// afterwards. Returns rows read or an error.
Result<int64_t> ReadTbl(const std::string& path, storage::Table* table);

}  // namespace wimpi::tpch

#endif  // WIMPI_TPCH_TBL_IO_H_
