#include "tpch/query_utils.h"

namespace wimpi::tpch {

std::vector<std::pair<std::string, std::string>> Cols(
    const std::vector<std::string>& names) {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(names.size());
  for (const auto& n : names) out.emplace_back(n, n);
  return out;
}

Relation ScanGather(const storage::Table& t,
                    const std::vector<Predicate>& preds,
                    const std::vector<std::string>& cols,
                    QueryStats* stats) {
  const ColumnSource src(t);
  const SelVec sel = exec::Filter(src, preds, stats);
  return exec::GatherColumns(src, Cols(cols), sel, stats);
}

Relation ScanAll(const storage::Table& t,
                 const std::vector<std::string>& cols, QueryStats* stats) {
  const ColumnSource src(t);
  SelVec sel(t.num_rows());
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    sel[i] = static_cast<int32_t>(i);
  }
  return exec::GatherColumns(src, Cols(cols), sel, stats);
}

Relation JoinGather(const Relation& build,
                    const std::vector<std::string>& build_keys,
                    const std::vector<std::string>& build_cols,
                    const Relation& probe,
                    const std::vector<std::string>& probe_keys,
                    const std::vector<std::string>& probe_cols,
                    JoinKind kind, QueryStats* stats) {
  std::vector<const storage::Column*> bk, pk;
  for (const auto& k : build_keys) bk.push_back(&build.column(k));
  for (const auto& k : probe_keys) pk.push_back(&probe.column(k));
  const exec::JoinResult jr = exec::HashJoin(bk, pk, kind, stats);

  Relation out;
  if (kind == JoinKind::kInner || kind == JoinKind::kLeftOuter) {
    WIMPI_CHECK(kind != JoinKind::kLeftOuter || !build_cols.empty() ||
                !probe_cols.empty());
    for (const auto& c : build_cols) {
      if (kind == JoinKind::kLeftOuter) {
        out.AddColumn(c, exec::GatherWithDefault(build.column(c),
                                                 jr.build_idx, 0, stats));
      } else {
        out.AddColumn(c, exec::Gather(build.column(c), jr.build_idx, stats));
      }
    }
    for (const auto& c : probe_cols) {
      out.AddColumn(c, exec::Gather(probe.column(c), jr.probe_idx, stats));
    }
  } else {  // semi / anti: probe rows only
    WIMPI_CHECK(build_cols.empty()) << "semi/anti join cannot emit build side";
    for (const auto& c : probe_cols) {
      out.AddColumn(c, exec::Gather(probe.column(c), jr.probe_idx, stats));
    }
  }
  return out;
}

int32_t NationKey(const engine::Database& db, const std::string& name) {
  const storage::Table& nation = db.table("nation");
  const auto& names = nation.column("n_name");
  for (int64_t i = 0; i < nation.num_rows(); ++i) {
    if (names.StringAt(i) == name) {
      return nation.column("n_nationkey").I32Data()[i];
    }
  }
  WIMPI_CHECK(false) << "unknown nation " << name;
  return -1;
}

std::vector<int32_t> NationKeysInRegion(const engine::Database& db,
                                        const std::string& region_name) {
  const storage::Table& region = db.table("region");
  int32_t rkey = -1;
  for (int64_t i = 0; i < region.num_rows(); ++i) {
    if (region.column("r_name").StringAt(i) == region_name) {
      rkey = region.column("r_regionkey").I32Data()[i];
    }
  }
  WIMPI_CHECK_GE(rkey, 0) << "unknown region " << region_name;
  std::vector<int32_t> out;
  const storage::Table& nation = db.table("nation");
  for (int64_t i = 0; i < nation.num_rows(); ++i) {
    if (nation.column("n_regionkey").I32Data()[i] == rkey) {
      out.push_back(nation.column("n_nationkey").I32Data()[i]);
    }
  }
  return out;
}

}  // namespace wimpi::tpch
