#include "tpch/tbl_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/date.h"
#include "common/strings.h"

namespace wimpi::tpch {

Result<int64_t> WriteTbl(const storage::Table& table,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  char buf[64];
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < table.schema().num_fields(); ++c) {
      const storage::Column& col = table.column(c);
      switch (col.type()) {
        case storage::DataType::kInt32:
          std::snprintf(buf, sizeof(buf), "%d", col.I32Data()[r]);
          out << buf;
          break;
        case storage::DataType::kInt64:
          std::snprintf(buf, sizeof(buf), "%lld",
                        static_cast<long long>(col.I64Data()[r]));
          out << buf;
          break;
        case storage::DataType::kFloat64:
          std::snprintf(buf, sizeof(buf), "%.2f", col.F64Data()[r]);
          out << buf;
          break;
        case storage::DataType::kDate:
          out << FormatDate(col.I32Data()[r]);
          break;
        case storage::DataType::kString:
          out << col.StringAt(r);
          break;
      }
      out << '|';
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::Internal("write failed for " + path);
  return table.num_rows();
}

Result<int64_t> ReadTbl(const std::string& path, storage::Table* table) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  const int n_cols = table->schema().num_fields();
  std::string line;
  int64_t rows = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // dbgen terminates each row with '|', so drop the trailing empty piece.
    std::vector<std::string> fields = Split(line, '|');
    if (!fields.empty() && fields.back().empty()) fields.pop_back();
    if (static_cast<int>(fields.size()) != n_cols) {
      return Status::InvalidArgument(
          path + ": row " + std::to_string(rows + 1) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(n_cols));
    }
    for (int c = 0; c < n_cols; ++c) {
      storage::Column& col = table->column(c);
      const std::string& f = fields[c];
      switch (col.type()) {
        case storage::DataType::kInt32:
          col.AppendInt32(static_cast<int32_t>(std::strtol(f.c_str(),
                                                           nullptr, 10)));
          break;
        case storage::DataType::kInt64:
          col.AppendInt64(std::strtoll(f.c_str(), nullptr, 10));
          break;
        case storage::DataType::kFloat64:
          col.AppendFloat64(std::strtod(f.c_str(), nullptr));
          break;
        case storage::DataType::kDate:
          col.AppendInt32(ParseDate(f));
          break;
        case storage::DataType::kString:
          col.AppendString(f);
          break;
      }
    }
    ++rows;
  }
  return rows;
}

}  // namespace wimpi::tpch
