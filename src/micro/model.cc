#include "micro/model.h"

namespace wimpi::micro {
namespace {

// Normalizations anchored on published Raspberry Pi 3B+ scores.
// Pi single-core work rate = 1.4 GHz * 0.6 ipc = 0.84e9 units/s.
constexpr double kMwipsPerRate = 700.0 / 0.84e9;
constexpr double kDmipsPerRate = 3100.0 / 0.84e9;
// sysbench --cpu-max-prime=10000: ~2.8e7 trial divisions per event batch.
constexpr double kPrimeDivisions = 2.8e8;

}  // namespace

double MicrobenchModel::WhetstoneMwips(const hw::HardwareProfile& p,
                                       bool all_cores) const {
  return kMwipsPerRate * p.SingleCoreRate() * Scale(p, all_cores);
}

double MicrobenchModel::DhrystoneDmips(const hw::HardwareProfile& p,
                                       bool all_cores) const {
  return kDmipsPerRate * p.SingleCoreRate() * Scale(p, all_cores);
}

double MicrobenchModel::SysbenchPrimeSeconds(const hw::HardwareProfile& p,
                                             bool all_cores) const {
  const double div_rate = p.freq_ghz * 1e9 * p.div_ipc;
  return kPrimeDivisions / (div_rate * Scale(p, all_cores));
}

double MicrobenchModel::MemoryBandwidthGbps(const hw::HardwareProfile& p,
                                            bool all_cores) const {
  return all_cores ? p.mem_bw_all_gbps : p.mem_bw_single_gbps;
}

}  // namespace wimpi::micro
