#ifndef WIMPI_MICRO_MODEL_H_
#define WIMPI_MICRO_MODEL_H_

#include "hw/cost_model.h"
#include "hw/profile.h"

namespace wimpi::micro {

// Projects the four microbenchmarks onto a hardware profile (Figure 2 of
// the paper). Constants are normalized so that the Raspberry Pi 3B+ lands
// at its commonly published scores (~700 single-core MWIPS, ~3100 DMIPS);
// all cross-profile ratios then follow from the calibrated profile fields.
class MicrobenchModel {
 public:
  explicit MicrobenchModel(const hw::CostModel& cost_model)
      : cost_model_(&cost_model) {}

  // Fig 2a: Millions of Whetstone Instructions Per Second.
  double WhetstoneMwips(const hw::HardwareProfile& p, bool all_cores) const;

  // Fig 2b: Dhrystone MIPS.
  double DhrystoneDmips(const hw::HardwareProfile& p, bool all_cores) const;

  // Fig 2c: sysbench prime-loop seconds (lower is better). The loop is
  // divider-bound, so it scales with div_ipc, not general IPC.
  double SysbenchPrimeSeconds(const hw::HardwareProfile& p,
                              bool all_cores) const;

  // Fig 2d: sysbench sequential-read bandwidth in GB/s.
  double MemoryBandwidthGbps(const hw::HardwareProfile& p,
                             bool all_cores) const;

 private:
  // Microbenchmark loops are independent per core and scale nearly
  // linearly, unlike database queries (see CostModelOptions): the paper's
  // Figure 2 shows 10-90x all-core gaps while TPC-H shows only ~3-10x.
  double Scale(const hw::HardwareProfile& p, bool all_cores) const {
    if (!all_cores) return 1.0;
    double scale = 1.0 + 0.92 * (p.cores - 1);
    if (p.threads > p.cores) scale *= 1.25;
    return scale;
  }

  const hw::CostModel* cost_model_;
};

}  // namespace wimpi::micro

#endif  // WIMPI_MICRO_MODEL_H_
