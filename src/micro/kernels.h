#ifndef WIMPI_MICRO_KERNELS_H_
#define WIMPI_MICRO_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace wimpi::micro {

// From-scratch implementations of the paper's four microbenchmark kernels
// (§II-C). Each is genuinely runnable on the host — the bench harness uses
// host measurements to ground the modeled per-profile values.

// Whetstone-style synthetic floating-point benchmark. Returns MWIPS
// (millions of Whetstone-ish instructions per second).
double RunWhetstone(int64_t loops);

// Dhrystone-style synthetic integer/string benchmark. Returns DMIPS.
double RunDhrystone(int64_t loops);

// sysbench-style CPU test: verify primality of every number up to
// `max_prime` by trial division, `events` times. Returns seconds.
double RunSysbenchPrime(int32_t max_prime, int events);

// sysbench-style sequential memory read over a `buffer_bytes` buffer,
// `passes` times. Returns GB/s.
double RunMemoryBandwidth(size_t buffer_bytes, int passes);

// All-core variants (the figure's "all cores" bars): the same kernel
// bodies run concurrently on `threads` pool threads (<= 0 means hardware
// concurrency). These are the measured anchors for the near-linear
// independent-kernel scaling law in MicrobenchModel — unlike query work,
// no state is shared, so speedup is limited only by the hardware.

// Each thread runs `loops_per_thread`; returns aggregate MWIPS.
double RunWhetstoneAllCores(int64_t loops_per_thread, int threads = 0);

// Each thread runs `loops_per_thread`; returns aggregate DMIPS.
double RunDhrystoneAllCores(int64_t loops_per_thread, int threads = 0);

// `events` total events split across threads (sysbench semantics);
// returns wall seconds — compare against RunSysbenchPrime with the same
// event count.
double RunSysbenchPrimeAllCores(int32_t max_prime, int events,
                                int threads = 0);

// Each thread scans its own private buffer; returns aggregate GB/s.
double RunMemoryBandwidthAllCores(size_t buffer_bytes_per_thread, int passes,
                                  int threads = 0);

}  // namespace wimpi::micro

#endif  // WIMPI_MICRO_KERNELS_H_
