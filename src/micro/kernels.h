#ifndef WIMPI_MICRO_KERNELS_H_
#define WIMPI_MICRO_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace wimpi::micro {

// From-scratch implementations of the paper's four microbenchmark kernels
// (§II-C). Each is genuinely runnable on the host — the bench harness uses
// host measurements to ground the modeled per-profile values.

// Whetstone-style synthetic floating-point benchmark. Returns MWIPS
// (millions of Whetstone-ish instructions per second).
double RunWhetstone(int64_t loops);

// Dhrystone-style synthetic integer/string benchmark. Returns DMIPS.
double RunDhrystone(int64_t loops);

// sysbench-style CPU test: verify primality of every number up to
// `max_prime` by trial division, `events` times. Returns seconds.
double RunSysbenchPrime(int32_t max_prime, int events);

// sysbench-style sequential memory read over a `buffer_bytes` buffer,
// `passes` times. Returns GB/s.
double RunMemoryBandwidth(size_t buffer_bytes, int passes);

}  // namespace wimpi::micro

#endif  // WIMPI_MICRO_KERNELS_H_
