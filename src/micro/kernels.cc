#include "micro/kernels.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "parallel/thread_pool.h"

namespace wimpi::micro {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Prevents the optimizer from deleting benchmark loops.
template <typename T>
void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

int ResolveThreads(int threads) {
  if (threads > 0) return threads;
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

// Untimed kernel bodies, shared by the single-core entry points (which
// time one call) and the all-core entry points (which time `threads`
// concurrent calls).

void WhetstoneBody(int64_t loops) {
  // The classic Whetstone modules: transcendental-heavy floating point
  // with array and conditional modules, scaled so one loop ~ 1 million
  // Whetstone instructions (the unit the figure reports).
  double e1[4] = {1.0, -1.0, -1.0, -1.0};
  const double t = 0.499975, t1 = 0.50025, t2 = 2.0;
  double x = 1.0, y = 1.0, z = 1.0;

  for (int64_t l = 0; l < loops; ++l) {
    // Module 1: simple identifiers.
    for (int i = 0; i < 120; ++i) {
      e1[0] = (e1[0] + e1[1] + e1[2] - e1[3]) * t;
      e1[1] = (e1[0] + e1[1] - e1[2] + e1[3]) * t;
      e1[2] = (e1[0] - e1[1] + e1[2] + e1[3]) * t;
      e1[3] = (-e1[0] + e1[1] + e1[2] + e1[3]) * t;
    }
    // Module 4: conditional jumps (integer flavor).
    int j = 1;
    for (int i = 0; i < 140; ++i) {
      j = j == 1 ? 2 : 3;
      j = j > 2 ? 0 : 1;
      j = j < 1 ? 1 : 0;
    }
    DoNotOptimize(j);
    // Module 7: trig.
    for (int i = 0; i < 28; ++i) {
      x = t * std::atan(t2 * std::sin(x) * std::cos(x) /
                        (std::cos(x + y) + std::cos(x - y) - 1.0));
      y = t * std::atan(t2 * std::sin(y) * std::cos(y) /
                        (std::cos(x + y) + std::cos(x - y) - 1.0));
    }
    // Module 8: procedure-ish arithmetic.
    for (int i = 0; i < 90; ++i) {
      x = t * (x + y);
      y = t * (x + y);
      z = (x + y) / t2;
    }
    // Module 11: standard functions.
    for (int i = 0; i < 18; ++i) {
      x = std::sqrt(std::exp(std::log(std::fabs(x) + 1.0) / t1));
    }
    DoNotOptimize(x);
    DoNotOptimize(z);
    e1[0] = 1.0;  // keep values bounded
    x = 0.75;
    y = 0.75;
  }
}

void DhrystoneBody(int64_t loops) {
  // Dhrystone-style mix: struct assignment, string compare/copy, integer
  // arithmetic and branching. One loop ~ 1757 Dhrystones per the
  // traditional normalization (we report DMIPS = dhry/s / 1757).
  struct Record {
    int int_comp;
    int enum_comp;
    char str_comp[31];
  };
  Record r1{0, 0, "DHRYSTONE PROGRAM, SOME STRING"};
  Record r2{0, 0, "DHRYSTONE PROGRAM, 2'ND STRING"};
  char buf[31];
  int int1 = 1, int2 = 2, int3 = 3;

  for (int64_t l = 0; l < loops * 1000; ++l) {
    int1 = int2 * int3 - (int1 % 7);
    int2 = int3 * 3 - int1;
    std::memcpy(buf, r1.str_comp, sizeof(buf));
    if (std::strcmp(buf, r2.str_comp) > 0) {
      r2 = r1;
      int3 = int1 + int2;
    } else {
      r1.int_comp = int2;
      int3 = int2 - 1;
    }
    r1.enum_comp = (r1.enum_comp + 1) % 5;
    DoNotOptimize(r1);
    DoNotOptimize(int3);
  }
}

void SysbenchPrimeBody(int32_t max_prime, int events) {
  int64_t found = 0;
  for (int e = 0; e < events; ++e) {
    for (int32_t c = 3; c <= max_prime; ++c) {
      bool prime = true;
      for (int32_t i = 2; i <= c / i; ++i) {
        if (c % i == 0) {
          prime = false;
          break;
        }
      }
      if (prime) ++found;
    }
  }
  DoNotOptimize(found);
}

void MemoryScanBody(const std::vector<uint64_t>& buf, int passes) {
  const size_t n = buf.size();
  uint64_t sink = 0;
  for (int p = 0; p < passes; ++p) {
    const uint64_t* d = buf.data();
    uint64_t acc = 0;
    for (size_t i = 0; i < n; i += 8) {
      acc += d[i] + d[i + 1] + d[i + 2] + d[i + 3] + d[i + 4] + d[i + 5] +
             d[i + 6] + d[i + 7];
    }
    sink ^= acc;
  }
  DoNotOptimize(sink);
}

}  // namespace

double RunWhetstone(int64_t loops) {
  const double start = NowSeconds();
  WhetstoneBody(loops);
  const double elapsed = NowSeconds() - start;
  return elapsed > 0 ? static_cast<double>(loops) / elapsed : 0;
}

double RunDhrystone(int64_t loops) {
  const double start = NowSeconds();
  DhrystoneBody(loops);
  const double elapsed = NowSeconds() - start;
  const double dhry_per_s =
      elapsed > 0 ? static_cast<double>(loops) * 1000.0 / elapsed : 0;
  return dhry_per_s / 1757.0;
}

double RunSysbenchPrime(int32_t max_prime, int events) {
  const double start = NowSeconds();
  SysbenchPrimeBody(max_prime, events);
  return NowSeconds() - start;
}

double RunMemoryBandwidth(size_t buffer_bytes, int passes) {
  const size_t n = buffer_bytes / sizeof(uint64_t);
  std::vector<uint64_t> buf(n, 1);
  const double start = NowSeconds();
  MemoryScanBody(buf, passes);
  const double elapsed = NowSeconds() - start;
  const double bytes =
      static_cast<double>(n) * sizeof(uint64_t) * passes;
  return elapsed > 0 ? bytes / elapsed / 1e9 : 0;
}

double RunWhetstoneAllCores(int64_t loops_per_thread, int threads) {
  const int t = ResolveThreads(threads);
  parallel::ThreadPool pool(t);
  const double start = NowSeconds();
  pool.ParallelFor(t, [&](int64_t) { WhetstoneBody(loops_per_thread); }, t);
  const double elapsed = NowSeconds() - start;
  const double total = static_cast<double>(loops_per_thread) * t;
  return elapsed > 0 ? total / elapsed : 0;
}

double RunDhrystoneAllCores(int64_t loops_per_thread, int threads) {
  const int t = ResolveThreads(threads);
  parallel::ThreadPool pool(t);
  const double start = NowSeconds();
  pool.ParallelFor(t, [&](int64_t) { DhrystoneBody(loops_per_thread); }, t);
  const double elapsed = NowSeconds() - start;
  const double dhry_per_s =
      elapsed > 0
          ? static_cast<double>(loops_per_thread) * 1000.0 * t / elapsed
          : 0;
  return dhry_per_s / 1757.0;
}

double RunSysbenchPrimeAllCores(int32_t max_prime, int events, int threads) {
  const int t = ResolveThreads(threads);
  parallel::ThreadPool pool(t);
  // sysbench semantics: a fixed event count drained by all threads.
  const int base = events / t;
  const int extra = events % t;
  const double start = NowSeconds();
  pool.ParallelFor(
      t,
      [&](int64_t i) {
        SysbenchPrimeBody(max_prime, base + (i < extra ? 1 : 0));
      },
      t);
  return NowSeconds() - start;
}

double RunMemoryBandwidthAllCores(size_t buffer_bytes_per_thread, int passes,
                                  int threads) {
  const int t = ResolveThreads(threads);
  parallel::ThreadPool pool(t);
  const size_t n = buffer_bytes_per_thread / sizeof(uint64_t);
  std::vector<std::vector<uint64_t>> bufs(t);
  for (auto& b : bufs) b.assign(n, 1);
  const double start = NowSeconds();
  pool.ParallelFor(t, [&](int64_t i) { MemoryScanBody(bufs[i], passes); }, t);
  const double elapsed = NowSeconds() - start;
  const double bytes =
      static_cast<double>(n) * sizeof(uint64_t) * passes * t;
  return elapsed > 0 ? bytes / elapsed / 1e9 : 0;
}

}  // namespace wimpi::micro
