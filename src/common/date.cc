#include "common/date.h"

#include <cstdio>

#include "common/logging.h"

namespace wimpi {
namespace {

bool IsLeap(int32_t y) {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

int32_t DaysInMonth(int32_t y, int32_t m) {
  static constexpr int32_t kDays[] = {31, 28, 31, 30, 31, 30,
                                      31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeap(y)) return 29;
  return kDays[m - 1];
}

}  // namespace

DateValue DateFromCivil(int32_t y, int32_t m, int32_t d) {
  // days_from_civil, Howard Hinnant, http://howardhinnant.github.io/date_algorithms.html
  y -= m <= 2;
  const int32_t era = (y >= 0 ? y : y - 399) / 400;
  const uint32_t yoe = static_cast<uint32_t>(y - era * 400);           // [0, 399]
  const uint32_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1; // [0, 365]
  const uint32_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;          // [0, 146096]
  return era * 146097 + static_cast<int32_t>(doe) - 719468;
}

CivilDate CivilFromDate(DateValue z) {
  z += 719468;
  const int32_t era = (z >= 0 ? z : z - 146096) / 146097;
  const uint32_t doe = static_cast<uint32_t>(z - era * 146097);
  const uint32_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int32_t y = static_cast<int32_t>(yoe) + era * 400;
  const uint32_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const uint32_t mp = (5 * doy + 2) / 153;
  const uint32_t d = doy - (153 * mp + 2) / 5 + 1;
  const uint32_t m = mp + (mp < 10 ? 3 : -9);
  return CivilDate{y + (m <= 2), static_cast<int32_t>(m),
                   static_cast<int32_t>(d)};
}

int32_t DateYear(DateValue days) { return CivilFromDate(days).year; }

DateValue DateAddMonths(DateValue days, int32_t months) {
  CivilDate c = CivilFromDate(days);
  int32_t total = c.year * 12 + (c.month - 1) + months;
  int32_t y = total / 12;
  int32_t m = total % 12;
  if (m < 0) {
    m += 12;
    y -= 1;
  }
  m += 1;
  int32_t d = c.day;
  const int32_t dim = DaysInMonth(y, m);
  if (d > dim) d = dim;
  return DateFromCivil(y, m, d);
}

DateValue ParseDate(std::string_view s) {
  WIMPI_CHECK_EQ(s.size(), 10u) << "bad date literal: " << std::string(s);
  auto digits = [&](int pos, int n) {
    int32_t v = 0;
    for (int i = 0; i < n; ++i) {
      const char c = s[pos + i];
      WIMPI_CHECK(c >= '0' && c <= '9') << "bad date literal: " << std::string(s);
      v = v * 10 + (c - '0');
    }
    return v;
  };
  WIMPI_CHECK(s[4] == '-' && s[7] == '-') << "bad date literal: " << std::string(s);
  return DateFromCivil(digits(0, 4), digits(5, 2), digits(8, 2));
}

std::string FormatDate(DateValue days) {
  const CivilDate c = CivilFromDate(days);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", c.year, c.month, c.day);
  return buf;
}

}  // namespace wimpi
