#ifndef WIMPI_COMMON_STATUS_H_
#define WIMPI_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace wimpi {

// Error codes used across the library. Kept deliberately small: the engine
// is an analytical prototype and most failures are programmer errors caught
// by CHECKs; Status is reserved for data-dependent conditions (e.g. a node
// running out of its memory budget).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfMemory,
  kUnimplemented,
  kInternal,
  // Distributed-execution conditions (cluster fault model): a node (or the
  // whole cluster) cannot serve the request right now / an attempt blew
  // its modeled deadline.
  kUnavailable,
  kDeadlineExceeded,
  // Admission control: a query was refused because a bounded resource
  // (the per-node memory budget, the admission queue) cannot ever / right
  // now accommodate it. Distinct from kOutOfMemory, which reports actual
  // over-budget consumption during execution.
  kResourceExhausted,
  // The caller abandoned the operation (session cancel). Distinct from
  // kDeadlineExceeded, which the service applies when its own timeout
  // fired the cancellation.
  kCancelled,
};

// A lightweight success-or-error value, modeled on absl::Status.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status OutOfMemory(std::string m) {
    return Status(StatusCode::kOutOfMemory, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk:
        return "OK";
      case StatusCode::kInvalidArgument:
        return "InvalidArgument";
      case StatusCode::kNotFound:
        return "NotFound";
      case StatusCode::kOutOfMemory:
        return "OutOfMemory";
      case StatusCode::kUnimplemented:
        return "Unimplemented";
      case StatusCode::kInternal:
        return "Internal";
      case StatusCode::kUnavailable:
        return "Unavailable";
      case StatusCode::kDeadlineExceeded:
        return "DeadlineExceeded";
      case StatusCode::kResourceExhausted:
        return "ResourceExhausted";
      case StatusCode::kCancelled:
        return "Cancelled";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string message_;
};

// A value-or-Status result, modeled on absl::StatusOr.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}          // NOLINT
  Result(Status status) : value_(std::move(status)) {}   // NOLINT

  bool ok() const { return std::holds_alternative<T>(value_); }
  const Status& status() const { return std::get<Status>(value_); }

  T& value() & { return std::get<T>(value_); }
  const T& value() const& { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> value_;
};

// Early-return helpers for Status / Result<T> call chains, modeled on
// absl's RETURN_IF_ERROR / ASSIGN_OR_RETURN. Usable in any function whose
// return type is implicitly constructible from Status.
//
//   WIMPI_RETURN_IF_ERROR(DoThing());
//   WIMPI_ASSIGN_OR_RETURN(auto run, cluster.Run(q, model));
#define WIMPI_STATUS_CONCAT_INNER_(a, b) a##b
#define WIMPI_STATUS_CONCAT_(a, b) WIMPI_STATUS_CONCAT_INNER_(a, b)

#define WIMPI_RETURN_IF_ERROR(expr)                       \
  do {                                                    \
    ::wimpi::Status wimpi_status_tmp_ = (expr);           \
    if (!wimpi_status_tmp_.ok()) return wimpi_status_tmp_; \
  } while (false)

#define WIMPI_ASSIGN_OR_RETURN(lhs, rexpr)                                 \
  WIMPI_ASSIGN_OR_RETURN_IMPL_(                                            \
      WIMPI_STATUS_CONCAT_(wimpi_result_tmp_, __LINE__), lhs, rexpr)

#define WIMPI_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                 \
  if (!result.ok()) return result.status();              \
  lhs = std::move(result).value()

}  // namespace wimpi

#endif  // WIMPI_COMMON_STATUS_H_
