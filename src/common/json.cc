#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace wimpi {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no Inf/NaN
  char buf[40];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

// ---------- JsonWriter ----------

void JsonWriter::BeforeValue() {
  WIMPI_CHECK(!done_) << "JsonWriter: document already complete";
  if (stack_.empty()) return;
  Level& top = stack_.back();
  if (top.kind == '{') {
    WIMPI_CHECK(top.pending_key)
        << "JsonWriter: value inside an object needs a Key() first";
    top.pending_key = false;
  } else {
    if (top.has_items) out_ += ',';
  }
  top.has_items = true;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back({'{'});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  WIMPI_CHECK(!stack_.empty() && stack_.back().kind == '{' &&
              !stack_.back().pending_key)
      << "JsonWriter: unbalanced EndObject";
  stack_.pop_back();
  out_ += '}';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back({'['});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  WIMPI_CHECK(!stack_.empty() && stack_.back().kind == '[')
      << "JsonWriter: unbalanced EndArray";
  stack_.pop_back();
  out_ += ']';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& k) {
  WIMPI_CHECK(!stack_.empty() && stack_.back().kind == '{' &&
              !stack_.back().pending_key)
      << "JsonWriter: Key() outside an object (or doubled)";
  if (stack_.back().has_items) out_ += ',';
  stack_.back().has_items = true;  // comma bookkeeping done here
  stack_.back().pending_key = true;
  out_ += '"';
  out_ += JsonEscape(k);
  out_ += "\":";
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& v) {
  if (!stack_.empty() && stack_.back().kind == '{') {
    WIMPI_CHECK(stack_.back().pending_key)
        << "JsonWriter: value inside an object needs a Key() first";
    stack_.back().pending_key = false;
  } else {
    BeforeValue();
  }
  out_ += '"';
  out_ += JsonEscape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& json) {
  if (!stack_.empty() && stack_.back().kind == '{') {
    WIMPI_CHECK(stack_.back().pending_key)
        << "JsonWriter: value inside an object needs a Key() first";
    stack_.back().pending_key = false;
  } else {
    BeforeValue();
  }
  out_ += json;
  return *this;
}

JsonWriter& JsonWriter::RawMembers(const std::string& obj_json) {
  WIMPI_CHECK(!stack_.empty() && stack_.back().kind == '{' &&
              !stack_.back().pending_key)
      << "JsonWriter: RawMembers() needs an open object and no pending key";
  WIMPI_CHECK(obj_json.size() >= 2 && obj_json.front() == '{' &&
              obj_json.back() == '}')
      << "JsonWriter: RawMembers() takes a brace-wrapped object";
  const std::string inner = obj_json.substr(1, obj_json.size() - 2);
  if (inner.empty()) return *this;
  if (stack_.back().has_items) out_ += ',';
  stack_.back().has_items = true;
  out_ += inner;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t v) {
  return Raw(std::to_string(v));
}

JsonWriter& JsonWriter::Double(double v) { return Raw(JsonNumber(v)); }

JsonWriter& JsonWriter::Bool(bool v) { return Raw(v ? "true" : "false"); }

JsonWriter& JsonWriter::Null() { return Raw("null"); }

const std::string& JsonWriter::str() const {
  WIMPI_CHECK(stack_.empty())
      << "JsonWriter: str() with open containers";
  return out_;
}

// ---------- JsonValue ----------

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.str_ = std::move(s);
  return v;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

double JsonValue::GetDouble(const std::string& key, double def) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->AsDouble() : def;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& def) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->AsString() : def;
}

// Recursive-descent parser. Depth-limited so hostile input cannot blow the
// stack; artifacts nest three levels deep.
class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Run(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out, 0)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const std::string& what) {
    if (error_ != nullptr) {
      *error_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Literal(const char* lit) {
    const size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) != 0) return Fail("invalid literal");
    pos_ += n;
    return true;
  }

  bool ParseString(std::string* out) {
    if (text_[pos_] != '"') return Fail("expected string");
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("truncated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += h - '0';
              } else if (h >= 'a' && h <= 'f') {
                code += h - 'a' + 10;
              } else if (h >= 'A' && h <= 'F') {
                code += h - 'A' + 10;
              } else {
                return Fail("bad \\u escape");
              }
            }
            // UTF-8 encode (the writer only ever emits \u00xx, but accept
            // the full BMP; surrogate pairs are out of scope).
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Fail("unknown escape");
        }
      } else {
        *out += c;
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected number");
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("malformed number");
    *out = JsonValue::MakeNumber(v);
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->type_ = JsonValue::Type::kObject;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipWs();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipWs();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return Fail("expected ':'");
        }
        ++pos_;
        SkipWs();
        JsonValue member;
        if (!ParseValue(&member, depth + 1)) return false;
        out->obj_.emplace(std::move(key), std::move(member));
        SkipWs();
        if (pos_ >= text_.size()) return Fail("unterminated object");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      out->type_ = JsonValue::Type::kArray;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipWs();
        JsonValue item;
        if (!ParseValue(&item, depth + 1)) return false;
        out->arr_.push_back(std::move(item));
        SkipWs();
        if (pos_ >= text_.size()) return Fail("unterminated array");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->type_ = JsonValue::Type::kString;
      return ParseString(&out->str_);
    }
    if (c == 't') {
      if (!Literal("true")) return false;
      *out = JsonValue::MakeBool(true);
      return true;
    }
    if (c == 'f') {
      if (!Literal("false")) return false;
      *out = JsonValue::MakeBool(false);
      return true;
    }
    if (c == 'n') {
      if (!Literal("null")) return false;
      *out = JsonValue::MakeNull();
      return true;
    }
    return ParseNumber(out);
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

bool JsonValue::Parse(const std::string& text, JsonValue* out,
                      std::string* error) {
  *out = JsonValue();
  JsonParser parser(text, error);
  return parser.Run(out);
}

}  // namespace wimpi
