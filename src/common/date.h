#ifndef WIMPI_COMMON_DATE_H_
#define WIMPI_COMMON_DATE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace wimpi {

// Dates are stored as int32 days since the civil epoch 1970-01-01
// (proleptic Gregorian). TPC-H only needs 1992..1998 but the conversions
// are valid over a wide range.
using DateValue = int32_t;

struct CivilDate {
  int32_t year = 1970;
  int32_t month = 1;  // 1..12
  int32_t day = 1;    // 1..31
};

// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
DateValue DateFromCivil(int32_t year, int32_t month, int32_t day);

// Inverse of DateFromCivil.
CivilDate CivilFromDate(DateValue days);

// Extracts the year, as in SQL EXTRACT(YEAR FROM d).
int32_t DateYear(DateValue days);

// Adds a number of months, clamping the day-of-month (SQL interval
// semantics: 1994-01-31 + 1 month = 1994-02-28).
DateValue DateAddMonths(DateValue days, int32_t months);

// Adds days (trivial, provided for symmetry with DateAddMonths).
inline DateValue DateAddDays(DateValue days, int32_t delta) {
  return days + delta;
}

// Parses "YYYY-MM-DD". Terminates on malformed input (dates in this
// codebase are compile-time query constants).
DateValue ParseDate(std::string_view s);

// Formats as "YYYY-MM-DD".
std::string FormatDate(DateValue days);

}  // namespace wimpi

#endif  // WIMPI_COMMON_DATE_H_
