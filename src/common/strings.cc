#include "common/strings.h"

namespace wimpi {

bool LikeMatch(std::string_view value, std::string_view pattern) {
  size_t v = 0;
  size_t p = 0;
  size_t star_p = std::string_view::npos;  // position after last '%'
  size_t star_v = 0;                       // value position to resume from

  while (v < value.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == value[v])) {
      ++p;
      ++v;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = ++p;
      star_v = v;
    } else if (star_p != std::string_view::npos) {
      p = star_p;
      v = ++star_v;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

bool Contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace wimpi
