#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace wimpi {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  WIMPI_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto rule = [&] {
    os << '+';
    for (size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (size_t i = 0; i < cells.size(); ++i) {
      os << ' ' << cells[i] << std::string(widths[i] - cells[i].size(), ' ')
         << " |";
    }
    os << '\n';
  };

  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      rule();
    } else {
      line(row);
    }
  }
  rule();
}

std::string TablePrinter::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

std::string TablePrinter::Fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string TablePrinter::Multiplier(double v) {
  char buf[64];
  if (v >= 100) {
    std::snprintf(buf, sizeof(buf), "%.0fx", v);
  } else if (v >= 10) {
    std::snprintf(buf, sizeof(buf), "%.1fx", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fx", v);
  }
  return buf;
}

}  // namespace wimpi
