#ifndef WIMPI_COMMON_LOGGING_H_
#define WIMPI_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace wimpi {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError, kFatal };

// Minimal leveled logger. A message is emitted to stderr when its level is
// at or above the global threshold (default kInfo, override with the
// WIMPI_LOG_LEVEL environment variable: debug/info/warning/error).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

  static LogLevel threshold();
  static void set_threshold(LogLevel level);

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

namespace internal_logging {
// Swallows the streamed expression when the log statement is compiled out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Turns a streamed LogMessage chain into a void expression so it can sit in
// the else-branch of a ternary. `&` binds looser than `<<` (the whole chain
// is one operand) but tighter than `?:`.
struct Voidify {
  void operator&(LogMessage&) {}
};
}  // namespace internal_logging

#define WIMPI_LOG(level) \
  ::wimpi::LogMessage(::wimpi::LogLevel::k##level, __FILE__, __LINE__)

// CHECK macros terminate the process on failure; they guard invariants that
// indicate programmer error, not data-dependent conditions. The ternary
// shape (instead of a bare `if`) keeps the macro a single expression, so
//   if (a) WIMPI_CHECK(b); else foo();
// attaches the else to the outer if rather than the macro's.
#define WIMPI_CHECK(cond)                                             \
  (cond) ? (void)0                                                    \
         : ::wimpi::internal_logging::Voidify() &                     \
               ::wimpi::LogMessage(::wimpi::LogLevel::kFatal,         \
                                   __FILE__, __LINE__)                \
                   << "Check failed: " #cond " "

#define WIMPI_CHECK_OK(expr)                                           \
  do {                                                                 \
    const ::wimpi::Status _wimpi_check_status = (expr);                \
    if (!_wimpi_check_status.ok()) {                                   \
      ::wimpi::LogMessage(::wimpi::LogLevel::kFatal, __FILE__,         \
                          __LINE__)                                    \
          << "Status not OK: " << _wimpi_check_status.ToString();      \
    }                                                                  \
  } while (0)

#define WIMPI_CHECK_EQ(a, b) WIMPI_CHECK((a) == (b))
#define WIMPI_CHECK_NE(a, b) WIMPI_CHECK((a) != (b))
#define WIMPI_CHECK_LT(a, b) WIMPI_CHECK((a) < (b))
#define WIMPI_CHECK_LE(a, b) WIMPI_CHECK((a) <= (b))
#define WIMPI_CHECK_GT(a, b) WIMPI_CHECK((a) > (b))
#define WIMPI_CHECK_GE(a, b) WIMPI_CHECK((a) >= (b))

}  // namespace wimpi

#endif  // WIMPI_COMMON_LOGGING_H_
