#ifndef WIMPI_COMMON_STRINGS_H_
#define WIMPI_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace wimpi {

// SQL LIKE with '%' (any run) and '_' (any single char) wildcards, no
// escape support (TPC-H patterns never escape). Iterative backtracking over
// the last '%' seen; O(n*m) worst case but linear on TPC-H patterns.
bool LikeMatch(std::string_view value, std::string_view pattern);

inline bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

inline bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

// Substring containment, the common "%word%" fast path.
bool Contains(std::string_view s, std::string_view needle);

// Splits on a single character; empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char sep);

}  // namespace wimpi

#endif  // WIMPI_COMMON_STRINGS_H_
