#ifndef WIMPI_COMMON_HASH_H_
#define WIMPI_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace wimpi {

// 64-bit integer mix (Murmur3 finalizer). The primary hash used by the
// engine's hash joins and aggregations; cheap and well distributed for the
// integer keys that dominate TPC-H.
inline uint64_t HashInt64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Combines two hashes (boost-style with a 64-bit constant).
inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  return h ^ (HashInt64(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

// FNV-1a over arbitrary bytes; used for string keys.
inline uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

}  // namespace wimpi

#endif  // WIMPI_COMMON_HASH_H_
