#ifndef WIMPI_COMMON_CLI_H_
#define WIMPI_COMMON_CLI_H_

#include <map>
#include <string>
#include <vector>

namespace wimpi {

// Minimal command-line flag parser for the benchmark and example binaries.
// Accepts "--name=value" and "--name value"; bare "--name" is "true".
class CommandLine {
 public:
  CommandLine(int argc, char** argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& def) const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace wimpi

#endif  // WIMPI_COMMON_CLI_H_
