#include "common/cli.h"

#include <cstdlib>
#include <string_view>

namespace wimpi {

CommandLine::CommandLine(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.substr(0, 2) != "--") {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      flags_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) !=
                                   "--") {
      flags_[std::string(arg)] = argv[++i];
    } else {
      flags_[std::string(arg)] = "true";
    }
  }
}

bool CommandLine::Has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string CommandLine::GetString(const std::string& name,
                                   const std::string& def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

int64_t CommandLine::GetInt(const std::string& name, int64_t def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CommandLine::GetDouble(const std::string& name, double def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool CommandLine::GetBool(const std::string& name, bool def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace wimpi
