#include "common/decimal.h"

#include <cstdio>
#include <cstdlib>

namespace wimpi {

std::string Money::ToString() const {
  const int64_t c = cents_;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%lld.%02lld", c < 0 ? "-" : "",
                static_cast<long long>(std::llabs(c) / 100),
                static_cast<long long>(std::llabs(c) % 100));
  return buf;
}

}  // namespace wimpi
