#include "common/logging.h"

#include <atomic>
#include <cstring>

namespace wimpi {
namespace {

std::atomic<int> g_threshold{-1};

LogLevel ThresholdFromEnv() {
  const char* env = std::getenv("WIMPI_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelName(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= threshold() || level_ == LogLevel::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

LogLevel LogMessage::threshold() {
  int t = g_threshold.load(std::memory_order_relaxed);
  if (t < 0) {
    t = static_cast<int>(ThresholdFromEnv());
    g_threshold.store(t, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(t);
}

void LogMessage::set_threshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

}  // namespace wimpi
