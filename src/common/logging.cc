#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace wimpi {
namespace {

std::atomic<int> g_threshold{-1};

LogLevel ThresholdFromEnv() {
  const char* env = std::getenv("WIMPI_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelName(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= threshold() || level_ == LogLevel::kFatal) {
    // Assemble the full line first, then emit it as one write under a
    // process-wide mutex: messages from concurrent threads interleave as
    // whole lines, never character-by-character. (Leaked, never destroyed:
    // logging must work during static destruction too.)
    stream_ << "\n";
    const std::string msg = stream_.str();
    static std::mutex* mu = new std::mutex;
    std::lock_guard<std::mutex> lock(*mu);
    std::fwrite(msg.data(), 1, msg.size(), stderr);
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

LogLevel LogMessage::threshold() {
  // WIMPI_LOG_LEVEL is parsed exactly once (thread-safe magic static);
  // set_threshold overrides it for the rest of the process.
  static const int env_threshold = static_cast<int>(ThresholdFromEnv());
  const int t = g_threshold.load(std::memory_order_relaxed);
  return static_cast<LogLevel>(t < 0 ? env_threshold : t);
}

void LogMessage::set_threshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

}  // namespace wimpi
