#ifndef WIMPI_COMMON_JSON_H_
#define WIMPI_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace wimpi {

// Escapes a string for embedding in a JSON string literal (quotes,
// backslashes, control characters). Shared by the trace exporter, the bench
// artifact writer, and anything else that emits JSON by hand.
std::string JsonEscape(const std::string& s);

// Renders a double with the fewest digits that still parse back to the
// same value (tries %.*g at increasing precision). Keeps artifacts both
// diff-friendly and lossless for comparison tools.
std::string JsonNumber(double v);

// Minimal streaming JSON writer: handles commas, nesting, and escaping so
// call sites never concatenate raw punctuation. Usage:
//
//   JsonWriter w;
//   w.BeginObject().Key("bench").String("table2_sf1")
//    .Key("rows").BeginArray().Int(1).Int(2).EndArray()
//    .EndObject();
//   w.str();  // {"bench":"table2_sf1","rows":[1,2]}
//
// Misuse (value without a pending key inside an object, EndArray closing an
// object, ...) is a programming error and CHECK-fails.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& k);
  JsonWriter& String(const std::string& v);
  JsonWriter& Int(int64_t v);
  JsonWriter& Double(double v);
  JsonWriter& Bool(bool v);
  JsonWriter& Null();
  // Splices pre-rendered JSON (e.g. a trace event's args object) as one
  // value. The caller guarantees `json` is well formed.
  JsonWriter& Raw(const std::string& json);

  // Splices the members of a pre-rendered JSON object (`"{...}"`) into the
  // currently open object, handling the comma bookkeeping. Lets exporters
  // merge caller-provided args objects with their own keys without
  // re-parsing. CHECK-fails when `obj_json` is not brace-wrapped or no
  // object is open; the caller guarantees the members are well formed and
  // do not duplicate keys already written.
  JsonWriter& RawMembers(const std::string& obj_json);

  // Complete document; CHECK-fails while containers are still open.
  const std::string& str() const;

 private:
  void BeforeValue();

  struct Level {
    char kind;  // '{' or '['
    bool has_items = false;
    bool pending_key = false;
  };
  std::string out_;
  std::vector<Level> stack_;
  bool done_ = false;
};

// Parsed JSON document: a tagged tree. Numbers are doubles (the artifact
// schema stores nothing that needs 64-bit integer exactness beyond 2^53).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  // Parses `text` into `*out`. Returns false and fills `*error` (with a
  // byte offset) on malformed input. Trailing garbage is an error.
  static bool Parse(const std::string& text, JsonValue* out,
                    std::string* error);

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return num_; }
  const std::string& AsString() const { return str_; }
  const std::vector<JsonValue>& AsArray() const { return arr_; }
  const std::map<std::string, JsonValue>& AsObject() const { return obj_; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  // Typed convenience lookups with defaults.
  double GetDouble(const std::string& key, double def) const;
  std::string GetString(const std::string& key,
                        const std::string& def) const;

  // Construction helpers (tests, programmatic trees).
  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string s);

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::map<std::string, JsonValue> obj_;
};

}  // namespace wimpi

#endif  // WIMPI_COMMON_JSON_H_
