#ifndef WIMPI_COMMON_RNG_H_
#define WIMPI_COMMON_RNG_H_

#include <cstdint>

namespace wimpi {

// Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64).
//
// The TPC-H generator and all property tests depend on this being stable
// across platforms and compiler versions, so we do not use <random> engines
// (their distributions are implementation-defined).
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 to spread a small seed over the full state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % range);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli draw with probability p of returning true.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace wimpi

#endif  // WIMPI_COMMON_RNG_H_
