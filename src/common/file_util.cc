#include "common/file_util.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace wimpi {

bool ValidateWritablePath(const std::string& path, std::string* error) {
  if (path.empty()) {
    if (error != nullptr) *error = "output path is empty";
    return false;
  }
  // Probe existence first so we know whether to clean up our probe file.
  std::FILE* probe = std::fopen(path.c_str(), "rb");
  const bool existed = probe != nullptr;
  if (probe != nullptr) std::fclose(probe);

  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot write " + path + ": " + std::strerror(errno);
    }
    return false;
  }
  std::fclose(f);
  if (!existed) std::remove(path.c_str());
  return true;
}

}  // namespace wimpi
