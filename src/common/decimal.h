#ifndef WIMPI_COMMON_DECIMAL_H_
#define WIMPI_COMMON_DECIMAL_H_

#include <cstdint>
#include <string>

namespace wimpi {

// Fixed-point money value with two fractional digits (cents), used by the
// TPC-H generator so that prices are exact and deterministic. Query columns
// store doubles (like MonetDB's floating-point execution of TPC-H); the
// conversion happens at load time via ToDouble().
class Money {
 public:
  constexpr Money() : cents_(0) {}
  static constexpr Money FromCents(int64_t cents) { return Money(cents); }
  static constexpr Money FromUnits(int64_t units) {
    return Money(units * 100);
  }

  constexpr int64_t cents() const { return cents_; }
  constexpr double ToDouble() const {
    return static_cast<double>(cents_) / 100.0;
  }

  constexpr Money operator+(Money o) const { return Money(cents_ + o.cents_); }
  constexpr Money operator-(Money o) const { return Money(cents_ - o.cents_); }
  // Multiplies by an integer quantity (exact).
  constexpr Money operator*(int64_t q) const { return Money(cents_ * q); }

  constexpr bool operator==(const Money&) const = default;
  constexpr auto operator<=>(const Money&) const = default;

  // Formats as "-123.45".
  std::string ToString() const;

 private:
  explicit constexpr Money(int64_t cents) : cents_(cents) {}
  int64_t cents_;
};

}  // namespace wimpi

#endif  // WIMPI_COMMON_DECIMAL_H_
