#ifndef WIMPI_COMMON_TABLE_PRINTER_H_
#define WIMPI_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace wimpi {

// Renders rows of strings as an aligned ASCII table; used by the benchmark
// harnesses to print paper-style tables (Table I/II/III) and figure series.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Adds one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  // Inserts a horizontal separator before the next row.
  void AddSeparator();

  void Print(std::ostream& os) const;
  std::string ToString() const;

  // Numeric formatting helpers for benchmark output.
  static std::string Fixed(double v, int digits);
  // "12.3x"-style multiplier with 3 significant-ish digits.
  static std::string Multiplier(double v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace wimpi

#endif  // WIMPI_COMMON_TABLE_PRINTER_H_
