#ifndef WIMPI_COMMON_FILE_UTIL_H_
#define WIMPI_COMMON_FILE_UTIL_H_

#include <string>

namespace wimpi {

// Checks up front that `path` can be opened for writing, so tools taking
// an output path fail before doing minutes of work, not after. Opens the
// file in append mode (existing contents untouched) and removes it again
// if this probe created it. Returns false and fills *error (with the
// failing path) when the path is unwritable — missing directory, no
// permission, path is a directory, ...
bool ValidateWritablePath(const std::string& path, std::string* error);

}  // namespace wimpi

#endif  // WIMPI_COMMON_FILE_UTIL_H_
