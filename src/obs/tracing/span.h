#ifndef WIMPI_OBS_TRACING_SPAN_H_
#define WIMPI_OBS_TRACING_SPAN_H_

#include <cstdint>
#include <string>

#include "obs/trace.h"

namespace wimpi::obs {

// Distributed-tracing context: which trace the current work belongs to and
// which span is its would-be parent. Propagated through a thread-local so
// nested Spans form a tree on one thread, and copied explicitly across
// thread / layer boundaries (pool tasks, morsel workers, the simulated
// cluster driver) so the whole distributed run shares one trace id.
struct SpanContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool valid() const { return span_id != 0; }
};

// Process-unique id allocation (never 0). Ids only need uniqueness within
// one process lifetime; a relaxed counter keeps allocation lock-free.
uint64_t NewTraceId();
uint64_t NewSpanId();

// The calling thread's ambient context ({0,0} when none is installed).
const SpanContext& CurrentSpanContext();

// Installs `ctx` as the calling thread's ambient context for the scope's
// lifetime. Used to adopt a parent context on a different thread (pool
// workers running morsels/graph nodes) or a manufactured modeled-time
// context (cluster partials executing under a distributed-run root span).
class ScopedSpanContext {
 public:
  explicit ScopedSpanContext(const SpanContext& ctx);
  ~ScopedSpanContext();

  ScopedSpanContext(const ScopedSpanContext&) = delete;
  ScopedSpanContext& operator=(const ScopedSpanContext&) = delete;

 private:
  SpanContext prev_;
};

// RAII real-clock span: when the sink is enabled at construction, becomes
// a child of the ambient context (starting a fresh trace when there is
// none), installs itself as the ambient context, and records one complete
// event on destruction. Cheap no-op otherwise (one relaxed atomic load).
class Span {
 public:
  Span(const char* name, const char* category);
  Span(std::string name, const char* category, std::string args_json);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }
  // This span's context ({0,0} when inactive) — hand it to work fanned out
  // to other threads so their spans become children of this one.
  const SpanContext& context() const { return ctx_; }

 private:
  void Open();

  bool active_ = false;
  SpanContext ctx_;
  SpanContext prev_;
  uint64_t parent_id_ = 0;
  std::string name_;
  const char* category_ = nullptr;
  std::string args_json_;
  int64_t start_us_ = 0;
};

}  // namespace wimpi::obs

#endif  // WIMPI_OBS_TRACING_SPAN_H_
