#include "obs/tracing/span.h"

#include <atomic>
#include <utility>

#include "obs/clock.h"

namespace wimpi::obs {

namespace {

// Start above 0 so 0 stays the "no id" sentinel everywhere.
std::atomic<uint64_t> g_next_trace_id{1};
std::atomic<uint64_t> g_next_span_id{1};

thread_local SpanContext t_current;

}  // namespace

uint64_t NewTraceId() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

uint64_t NewSpanId() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

const SpanContext& CurrentSpanContext() { return t_current; }

ScopedSpanContext::ScopedSpanContext(const SpanContext& ctx) : prev_(t_current) {
  t_current = ctx;
}

ScopedSpanContext::~ScopedSpanContext() { t_current = prev_; }

Span::Span(const char* name, const char* category) {
  if (!TraceSink::Global().enabled()) return;
  name_ = name;
  category_ = category;
  Open();
}

Span::Span(std::string name, const char* category, std::string args_json)
    : name_(std::move(name)), args_json_(std::move(args_json)) {
  if (!TraceSink::Global().enabled()) return;
  category_ = category;
  Open();
}

void Span::Open() {
  active_ = true;
  prev_ = t_current;
  parent_id_ = prev_.span_id;
  ctx_.trace_id = prev_.trace_id != 0 ? prev_.trace_id : NewTraceId();
  ctx_.span_id = NewSpanId();
  t_current = ctx_;
  start_us_ = NowMicros();
}

Span::~Span() {
  if (!active_) return;
  t_current = prev_;
  TraceEvent e;
  e.name = std::move(name_);
  e.category = category_;
  e.ts_us = start_us_;
  e.dur_us = NowMicros() - start_us_;
  e.tid = TraceSink::CurrentThreadId();
  e.trace_id = ctx_.trace_id;
  e.span_id = ctx_.span_id;
  e.parent_id = parent_id_;
  e.args_json = std::move(args_json_);
  TraceSink::Global().Record(std::move(e));
}

}  // namespace wimpi::obs
