#ifndef WIMPI_OBS_PERF_COUNTERS_H_
#define WIMPI_OBS_PERF_COUNTERS_H_

#include <array>
#include <cstdint>
#include <string>

namespace wimpi::obs {

// Hardware performance counters via perf_event_open(2). The paper's whole
// method substitutes abstract work counters (exec::OpStats) for physical
// ones; this module measures the physical side — cycles, instructions, LLC
// traffic, branch misses, task time — so the substitution can be validated
// on the host (obs::CounterResiduals) and per-operator micro-architectural
// behaviour (IPC, LLC-miss rate) shows up in profile trees.
//
// Every event degrades independently: containers and VMs commonly expose
// the syscall but no PMU (hardware events fail with ENOENT), and
// perf_event_paranoid or seccomp can block everything. An unavailable
// event reads as -1 and reports render "counters unavailable"; the engine
// itself never behaves differently (enforced by obs_perf_test).

// Slot index of each physical quantity in PerfCounts.
enum class PerfEvent : int {
  kCycles = 0,
  kInstructions,
  kLlcLoads,
  kLlcMisses,
  kBranchMisses,
  kTaskClockNs,
  kCount,
};

// Short stable name, e.g. "cycles", "llc_misses", "task_clock_ns".
const char* PerfEventName(PerfEvent e);

// True when WIMPI_PERF_DISABLE=1 is set (README env-var table): counters
// refuse to open AND the timeline sampler refuses to start, so runs pinned
// by that variable are deterministic and sampler-free.
bool PerfDisabledByEnv();

// One sample (or delta) of the counter set. -1 = event unavailable.
struct PerfCounts {
  static constexpr int kNumEvents = static_cast<int>(PerfEvent::kCount);
  static constexpr int64_t kUnavailable = -1;
  // Bytes moved per LLC miss (cache-line size assumed on every Table I
  // machine and on any x86/arm host this runs on).
  static constexpr double kBytesPerLine = 64.0;

  std::array<int64_t, kNumEvents> v{
      kUnavailable, kUnavailable, kUnavailable,
      kUnavailable, kUnavailable, kUnavailable};

  int64_t Get(PerfEvent e) const { return v[static_cast<int>(e)]; }
  void Set(PerfEvent e, int64_t value) { v[static_cast<int>(e)] = value; }
  bool Has(PerfEvent e) const { return Get(e) >= 0; }
  bool AnyAvailable() const;

  // Derived micro-architectural metrics; < 0 when the inputs are
  // unavailable (or the denominator is zero).
  double Ipc() const;          // instructions / cycles
  double LlcMissRate() const;  // llc_misses / llc_loads, in [0, 1]
  double DramBytes() const;    // llc_misses * 64 (DRAM-side traffic)
  double GhzEffective() const; // cycles / task_clock_ns

  // Element-wise difference / sum; unavailability is sticky (an event
  // missing on either side stays -1).
  PerfCounts Delta(const PerfCounts& since) const;
  PerfCounts& Accumulate(const PerfCounts& other);

  // Compact one-line rendering of the available subset, e.g.
  // "1.2G ins, IPC 1.85, LLC-miss 12.3%, 42ms task". Empty when nothing
  // is available.
  std::string Summary() const;
};

// RAII owner of one perf_event_open fd per event, counting the calling
// thread. Opened with inherit=1, so threads spawned while the counters are
// live (e.g. a pool created on first use inside the measured region) are
// aggregated into the parent counts — but workers that already existed are
// not. For full physical coverage of a parallel query, profile at
// num_threads=1; the counter-residual validation does exactly that.
class PerfCounters {
 public:
  PerfCounters() = default;
  ~PerfCounters() { Close(); }

  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  // Opens and enables every event it can. Returns true when at least one
  // event is counting; otherwise error() explains why (first errno seen).
  // Honors WIMPI_PERF_DISABLE=1 (forces "unavailable", for tests and
  // deterministic CI runs) and compiles to the unavailable path outside
  // Linux.
  bool Open();
  bool open() const { return n_open_ > 0; }
  int num_events_open() const { return n_open_; }
  const std::string& error() const { return error_; }

  // Current totals since Open(). Non-destructive mid-flight read: the fds
  // are read without reset or disable, so callers may sample while the
  // measured region is still running (the timeline sampler does, every
  // tick) and a later Read() continues from the same baseline. Any thread
  // may call it — the fd aggregates the opener's thread tree regardless of
  // who reads. Unavailable events read -1.
  PerfCounts Read() const;

  void Close();

  // One-shot probe: can this process count at least one event right now?
  // Not cached — WIMPI_PERF_DISABLE may change between calls in tests.
  static bool Available();
  // "" when available, else the reason counting is off (shared wording
  // with profile trees: reports print "counters unavailable: <note>").
  static std::string AvailabilityNote();

 private:
  std::array<int, PerfCounts::kNumEvents> fds_{-1, -1, -1, -1, -1, -1};
  int n_open_ = 0;
  std::string error_;
};

}  // namespace wimpi::obs

#endif  // WIMPI_OBS_PERF_COUNTERS_H_
