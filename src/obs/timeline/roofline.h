#ifndef WIMPI_OBS_TIMELINE_ROOFLINE_H_
#define WIMPI_OBS_TIMELINE_ROOFLINE_H_

#include <string>
#include <vector>

#include "exec/counters.h"
#include "hw/cost_model.h"
#include "hw/profile.h"
#include "obs/timeline/timeline.h"

namespace wimpi::obs::timeline {

// Live roofline classification of a sampled timeline (ISSUE #10): each
// pipeline window is labelled bandwidth-bound vs compute-bound from its
// measured counter deltas, and the per-query summary is cross-checked
// against what hw::CostModel predicts for the same operators — the
// time-resolved generalization of obs::CounterResiduals. Lives in
// wimpi_obs_report (needs wimpi_hw), like the residual reports.

enum class BoundClass { kUnknown, kBandwidth, kCompute };
const char* BoundClassName(BoundClass c);
BoundClass BoundClassFromName(const std::string& name);

// The measured-side roofline of one host/profile at one thread count.
struct RooflineSpec {
  std::string profile;          // profile name, for reports
  double peak_gbps = 0;         // sysbench-style all-core peak
  double achievable_gbps = 0;   // x stream efficiency (mixed traffic)
  double saturation_gbps = 0;   // achievable x profile.bw_saturation_frac
  double peak_instr_per_sec = 0;  // threads-scaled interpreter instr rate
  // Ridge point in instructions/byte: intervals below it cannot be
  // compute-bound even at peak IPC.
  double ridge_instr_per_byte = 0;

  static RooflineSpec FromProfile(const hw::HardwareProfile& hw, int threads,
                                  const hw::CostModel& model = hw::CostModel());
};

// Classifies one interval's measured signals against the roofline:
// bandwidth-bound when DRAM traffic runs at or above the saturation
// threshold, or when arithmetic intensity sits below the ridge; compute-
// bound when clearly above the ridge with unsaturated bandwidth; kUnknown
// when the counters needed are unavailable (degraded hosts).
BoundClass ClassifyInterval(const TimelineInterval& iv,
                            const RooflineSpec& spec);

// Same classification applied to one pipeline window's accumulated deltas.
BoundClass ClassifyWindow(const PipelineWindow& w, const RooflineSpec& spec);

// One pipeline's roofline verdict, measured and modeled side by side.
struct PipelineRoofline {
  std::string label;
  uint64_t query_id = 0;
  double seconds = 0;
  double gbps = -1;
  double ipc = -1;
  BoundClass measured = BoundClass::kUnknown;
  BoundClass modeled = BoundClass::kUnknown;  // filled by the cross-check
};

struct RooflineSummary {
  std::string profile;
  double total_s = 0;                // sampled span covered by intervals
  double time_at_saturation_s = 0;   // intervals with gbps >= saturation
  double saturation_fraction = 0;    // time_at_saturation_s / total_s
  double peak_gbps = -1;             // best interval observed
  double mean_gbps = -1;
  double mean_ipc = -1;
  std::vector<PipelineRoofline> pipelines;
  // Cross-check tallies over pipelines where both sides are known.
  int agree = 0;
  int disagree = 0;
  double AgreementFraction() const {
    return agree + disagree > 0
               ? static_cast<double>(agree) / (agree + disagree)
               : -1;
  }

  std::string Format() const;
};

// Builds the measured summary (pipelines carry measured classes only).
RooflineSummary BuildRooflineSummary(const QueryTimeline& timeline,
                                     const RooflineSpec& spec);

// Modeled verdicts for the same query's operators, matched to measured
// pipelines by operator label: each pipeline whose label matches a modeled
// operator class gets `modeled` filled, and agree/disagree are tallied.
// `stats` are the query's recorded work counters (scaled to the SF the
// claim is made at); `threads` the count the model should assume.
void CrossCheckWithModel(const hw::CostModel& model,
                         const hw::HardwareProfile& hw,
                         const exec::QueryStats& stats, int threads,
                         RooflineSummary* summary);

// Query-level modeled class on `hw`: bandwidth iff the seconds-weighted
// bandwidth-bound fraction of operator time exceeds one half.
BoundClass ModeledQueryBound(const hw::CostModel& model,
                             const hw::HardwareProfile& hw,
                             const exec::QueryStats& stats, int threads,
                             double* bw_fraction = nullptr);

}  // namespace wimpi::obs::timeline

#endif  // WIMPI_OBS_TIMELINE_ROOFLINE_H_
