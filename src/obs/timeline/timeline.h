#ifndef WIMPI_OBS_TIMELINE_TIMELINE_H_
#define WIMPI_OBS_TIMELINE_TIMELINE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/perf_counters.h"

namespace wimpi::obs {
class TraceSink;
}  // namespace wimpi::obs

namespace wimpi::obs::timeline {

// Time-resolved observability (ISSUE #10): while queries run, the
// TimelineSampler (sampler.h) periodically snapshots the physical state of
// the node — perf-counter totals, memory footprint, pool queue depth, and
// which pipeline each scheduler lane is executing — into TimelineSample
// records. A QueryTimeline is a slice of those records; consecutive samples
// difference into TimelineInterval derived signals (effective DRAM GB/s,
// IPC, CPU utilization), the time-resolved generalization of the
// whole-query obs::CounterResiduals. The roofline classification of those
// intervals lives in roofline.h (wimpi_obs_report: it needs wimpi_hw).

// One scheduler lane observed mid-pipeline. `label` is the operator-scope
// string literal the driver published (never freed, safe to keep); `seq`
// distinguishes back-to-back pipelines with the same label.
struct ActivitySample {
  int lane = -1;
  uint64_t query_id = 0;
  uint64_t seq = 0;
  const char* label = nullptr;
};

// One sampler tick. Perf counts are cumulative since sampler start (the
// sampler differences them per interval); -1 per event = unavailable.
struct TimelineSample {
  static constexpr int kMaxActive = 4;

  int64_t ts_us = 0;  // obs::NowMicros clock
  PerfCounts perf;
  int64_t mem_used_bytes = 0;
  int64_t mem_peak_bytes = 0;
  double queue_depth = 0;  // "pool.queue_depth" gauge
  int num_active = 0;      // lanes mid-pipeline at sample time
  std::array<ActivitySample, kMaxActive> active{};
};

// Derived signals between two consecutive samples. Every rate is -1 when
// its counter inputs are unavailable (PMU hidden); the structural fields
// (timestamps, memory, queue depth, activity) are always valid.
struct TimelineInterval {
  int64_t t0_us = 0;
  int64_t t1_us = 0;
  double dt_s = 0;
  double gbps = -1;          // LLC misses x 64B / dt (DRAM-side traffic)
  double ipc = -1;           // instructions / cycles over the interval
  double instr_per_sec = -1;
  double cpu_util = -1;      // busy cores: task-clock ns / wall ns
  int64_t mem_used_bytes = 0;
  double queue_depth = 0;
  int num_active = 0;
  std::array<ActivitySample, TimelineSample::kMaxActive> active{};

  // First active lane's label ("idle" when none was mid-pipeline).
  const char* Label() const;
};

// A contiguous run of intervals during which one (lane, seq) pipeline was
// active: the unit the roofline layer classifies as bandwidth- vs
// compute-bound. Perf deltas accumulate the member intervals.
struct PipelineWindow {
  int lane = -1;
  uint64_t query_id = 0;
  uint64_t seq = 0;
  const char* label = nullptr;
  int64_t t0_us = 0;
  int64_t t1_us = 0;
  double seconds = 0;
  PerfCounts delta;  // counter movement across the window

  double Gbps() const;
  double Ipc() const;
};

// One query's (or one window's) slice of the sampled series.
struct QueryTimeline {
  int64_t start_us = 0;  // requested slice bounds, not first/last sample
  int64_t end_us = 0;
  int64_t period_us = 0;       // sampler period the series was captured at
  bool perf_available = false; // any hardware/software event counted
  std::vector<TimelineSample> samples;

  bool empty() const { return samples.empty(); }

  // Consecutive-sample derived signals (samples.size() - 1 entries).
  std::vector<TimelineInterval> Intervals() const;

  // Pipeline activity windows reconstructed from the per-lane samples.
  std::vector<PipelineWindow> PipelineWindows() const;

  // One JSON object per line: a "header" line (slice bounds, period, perf
  // availability) followed by one "interval" line per derived interval.
  std::string ToJsonl() const;

  // Chrome trace-event counter tracks ('C' phase): gbps / ipc / cpu_util /
  // mem_mb / queue_depth series under pid kTracePidHost, rendered by
  // chrome://tracing and Perfetto alongside the existing query spans.
  // Appends regardless of the sink's enabled() state (export-time call).
  void AppendCounterTracks(TraceSink* sink) const;
};

}  // namespace wimpi::obs::timeline

#endif  // WIMPI_OBS_TIMELINE_TIMELINE_H_
