#include "obs/timeline/roofline.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace wimpi::obs::timeline {

const char* BoundClassName(BoundClass c) {
  switch (c) {
    case BoundClass::kBandwidth:
      return "bandwidth";
    case BoundClass::kCompute:
      return "compute";
    default:
      return "unknown";
  }
}

BoundClass BoundClassFromName(const std::string& name) {
  if (name == "bandwidth") return BoundClass::kBandwidth;
  if (name == "compute") return BoundClass::kCompute;
  return BoundClass::kUnknown;
}

RooflineSpec RooflineSpec::FromProfile(const hw::HardwareProfile& hw,
                                       int threads,
                                       const hw::CostModel& model) {
  const double eff = model.options().stream_efficiency;
  RooflineSpec spec;
  spec.profile = hw.name;
  spec.peak_gbps = hw.mem_bw_all_gbps;
  spec.achievable_gbps = hw.AchievableBwGbps(eff);
  spec.saturation_gbps = hw.SaturationGbps(eff);
  // Interpreter-code instruction rate at this thread count. OLAP operators
  // retire a handful of instructions per abstract work unit; the absolute
  // calibration matters less than the ridge it induces being stable.
  spec.peak_instr_per_sec =
      hw.DbSingleCoreRate() * model.ComputeScale(hw, threads) *
      model.options().cycles_per_op;
  if (spec.achievable_gbps > 0) {
    spec.ridge_instr_per_byte =
        spec.peak_instr_per_sec / (spec.achievable_gbps * 1e9);
  }
  return spec;
}

namespace {

// Shared verdict from (gbps, instructions/s): saturation first, then the
// roofline position (arithmetic intensity vs the ridge).
BoundClass ClassifySignals(double gbps, double instr_per_sec,
                           const RooflineSpec& spec) {
  if (gbps < 0) return BoundClass::kUnknown;
  if (spec.saturation_gbps > 0 && gbps >= spec.saturation_gbps) {
    return BoundClass::kBandwidth;
  }
  if (instr_per_sec >= 0 && gbps > 0 && spec.ridge_instr_per_byte > 0) {
    const double intensity = instr_per_sec / (gbps * 1e9);
    return intensity < spec.ridge_instr_per_byte ? BoundClass::kBandwidth
                                                 : BoundClass::kCompute;
  }
  // Traffic measured but unsaturated with no instruction counter: the
  // memory wall is demonstrably not the limit.
  return BoundClass::kCompute;
}

}  // namespace

BoundClass ClassifyInterval(const TimelineInterval& iv,
                            const RooflineSpec& spec) {
  return ClassifySignals(iv.gbps, iv.instr_per_sec, spec);
}

BoundClass ClassifyWindow(const PipelineWindow& w, const RooflineSpec& spec) {
  double instr_per_sec = -1;
  if (w.delta.Has(PerfEvent::kInstructions) && w.seconds > 0) {
    instr_per_sec =
        static_cast<double>(w.delta.Get(PerfEvent::kInstructions)) /
        w.seconds;
  }
  return ClassifySignals(w.Gbps(), instr_per_sec, spec);
}

RooflineSummary BuildRooflineSummary(const QueryTimeline& timeline,
                                     const RooflineSpec& spec) {
  RooflineSummary out;
  out.profile = spec.profile;
  double gbps_weight = 0;
  double gbps_sum = 0;
  double ipc_weight = 0;
  double ipc_sum = 0;
  for (const TimelineInterval& iv : timeline.Intervals()) {
    out.total_s += iv.dt_s;
    if (iv.gbps >= 0) {
      out.peak_gbps = std::max(out.peak_gbps, iv.gbps);
      gbps_sum += iv.gbps * iv.dt_s;
      gbps_weight += iv.dt_s;
      if (spec.saturation_gbps > 0 && iv.gbps >= spec.saturation_gbps) {
        out.time_at_saturation_s += iv.dt_s;
      }
    }
    if (iv.ipc >= 0) {
      ipc_sum += iv.ipc * iv.dt_s;
      ipc_weight += iv.dt_s;
    }
  }
  if (gbps_weight > 0) out.mean_gbps = gbps_sum / gbps_weight;
  if (ipc_weight > 0) out.mean_ipc = ipc_sum / ipc_weight;
  if (out.total_s > 0) {
    out.saturation_fraction = out.time_at_saturation_s / out.total_s;
  }
  for (const PipelineWindow& w : timeline.PipelineWindows()) {
    PipelineRoofline p;
    p.label = w.label != nullptr ? w.label : "plan";
    p.query_id = w.query_id;
    p.seconds = w.seconds;
    p.gbps = w.Gbps();
    p.ipc = w.Ipc();
    p.measured = ClassifyWindow(w, spec);
    out.pipelines.push_back(std::move(p));
  }
  return out;
}

void CrossCheckWithModel(const hw::CostModel& model,
                         const hw::HardwareProfile& hw,
                         const exec::QueryStats& stats, int threads,
                         RooflineSummary* summary) {
  // Seconds-weighted roofs per operator label: the measured pipelines are
  // labelled by operator scope, so the modeled verdict for "Filter" is the
  // aggregate over every Filter invocation in the plan.
  struct Roof {
    double total_s = 0;
    double bandwidth_s = 0;
  };
  std::map<std::string, Roof> by_label;
  for (const auto& op : stats.ops) {
    const hw::CostModel::OpRoofs roofs = model.OpRoofline(hw, op, threads);
    const double sec =
        std::max(roofs.compute_s, roofs.seq_s) + roofs.rand_s;
    Roof& r = by_label[op.op];
    r.total_s += sec;
    if (roofs.BandwidthBound()) r.bandwidth_s += sec;
  }
  for (PipelineRoofline& p : summary->pipelines) {
    auto it = by_label.find(p.label);
    if (it == by_label.end() || it->second.total_s <= 0) continue;
    p.modeled = it->second.bandwidth_s >= it->second.total_s * 0.5
                    ? BoundClass::kBandwidth
                    : BoundClass::kCompute;
    if (p.measured == BoundClass::kUnknown) continue;
    if (p.measured == p.modeled) {
      ++summary->agree;
    } else {
      ++summary->disagree;
    }
  }
}

BoundClass ModeledQueryBound(const hw::CostModel& model,
                             const hw::HardwareProfile& hw,
                             const exec::QueryStats& stats, int threads,
                             double* bw_fraction) {
  const double frac = model.BandwidthBoundFraction(hw, stats, threads);
  if (bw_fraction != nullptr) *bw_fraction = frac;
  if (stats.ops.empty()) return BoundClass::kUnknown;
  return frac > 0.5 ? BoundClass::kBandwidth : BoundClass::kCompute;
}

std::string RooflineSummary::Format() const {
  char buf[160];
  std::string out = "--- roofline timeline (" + profile + ") ---\n";
  std::snprintf(buf, sizeof(buf),
                "  sampled %.3fs, %.1f%% at bandwidth saturation",
                total_s, saturation_fraction * 100);
  out += buf;
  if (peak_gbps >= 0) {
    std::snprintf(buf, sizeof(buf), ", peak %.2f GB/s, mean %.2f GB/s",
                  peak_gbps, mean_gbps);
    out += buf;
  }
  if (mean_ipc >= 0) {
    std::snprintf(buf, sizeof(buf), ", IPC %.2f", mean_ipc);
    out += buf;
  }
  out += '\n';
  for (const PipelineRoofline& p : pipelines) {
    std::snprintf(buf, sizeof(buf),
                  "  %-18s %8.3fs  measured=%-9s modeled=%-9s",
                  p.label.c_str(), p.seconds, BoundClassName(p.measured),
                  BoundClassName(p.modeled));
    out += buf;
    if (p.gbps >= 0) {
      std::snprintf(buf, sizeof(buf), "  %6.2f GB/s", p.gbps);
      out += buf;
    }
    out += '\n';
  }
  if (agree + disagree > 0) {
    std::snprintf(buf, sizeof(buf),
                  "  measured vs modeled: %d agree, %d disagree (%.0f%%)\n",
                  agree, disagree, AgreementFraction() * 100);
    out += buf;
  }
  return out;
}

}  // namespace wimpi::obs::timeline
