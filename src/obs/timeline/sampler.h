#ifndef WIMPI_OBS_TIMELINE_SAMPLER_H_
#define WIMPI_OBS_TIMELINE_SAMPLER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/perf_counters.h"
#include "obs/timeline/timeline.h"

namespace wimpi::storage {
class MemoryTracker;
}  // namespace wimpi::storage

namespace wimpi::obs::timeline {

// ---------------------------------------------------------------------------
// Lane activity registry
//
// Schedulers publish "lane L is running pipeline <label> of query Q" into a
// fixed array of atomic slots; the sampler thread reads them at each tick.
// Publishing is the engine-side cost of the whole subsystem, so it follows
// the obs ground rule: one relaxed atomic load when the sampler is off,
// three relaxed stores per *pipeline* (not per morsel) when it is on.
// ---------------------------------------------------------------------------

inline constexpr int kMaxLanes = 64;

struct LaneActivity {
  // Bumped odd at pipeline start and even at end (seqlock flavor): the
  // sampler pairs (seq, label, query) and discards torn half-open reads.
  std::atomic<uint64_t> seq{0};
  std::atomic<const char*> label{nullptr};  // string literal; null = idle
  std::atomic<uint64_t> query_id{0};
};

// Slot for a lane id (lanes beyond kMaxLanes share slots modulo; sampling
// stays correct-enough — attribution, not accounting).
LaneActivity& LaneSlot(int lane);

// True while a TimelineSampler is running (one relaxed load).
bool SamplerEnabled();

// RAII activity mark published by PipelineScheduler implementations around
// one pipeline's drain. No-op (and clock-free) while the sampler is off.
class ScopedPipelineActivity {
 public:
  ScopedPipelineActivity(int lane, const char* label, uint64_t query_id);
  ~ScopedPipelineActivity();

  ScopedPipelineActivity(const ScopedPipelineActivity&) = delete;
  ScopedPipelineActivity& operator=(const ScopedPipelineActivity&) = delete;

 private:
  int lane_ = -1;  // -1 = sampler was off at construction
};

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

struct SamplerOptions {
  // Tick period; the default 1 ms gives ~1k samples/s of ~150 B each.
  int64_t period_us = 1000;
  // Ring capacity: oldest samples fall off beyond this (default ~67 s of
  // history at the default period, bounded memory like the flight rings).
  size_t max_samples = 1 << 16;
  // Memory footprint source sampled into mem_used/mem_peak; typically the
  // admission controller's tracker. Null = footprint reads 0.
  const storage::MemoryTracker* memory = nullptr;
  // Attach perf counters (cycles/instructions/LLC/task-clock). Degrades
  // per event exactly like PerfCounters::Open.
  bool perf = true;
};

// Process-wide background sampler (one instance, like FlightRecorder).
//
// Start() opens the perf-counter group on the *calling* thread (inherit=1:
// workers spawned later are aggregated, pre-existing ones are not — the
// same coverage contract as ScopedProfiling) and launches the sampler
// thread; every tick appends one TimelineSample to a bounded ring. The
// engine never blocks on the sampler: hot paths only see SamplerEnabled()
// and the activity slots, and the ring mutex is contended only by the
// sampler thread itself and slice readers.
//
// WIMPI_PERF_DISABLE=1 forces Start() to refuse entirely (not just the
// counters): deterministic CI runs stay sampler-free. On hosts where
// perf_event_open cannot count anything the sampler still runs — samples
// then carry timestamps, memory, queue depth and lane activity, and every
// derived rate reads -1 (graceful degradation, tested).
class TimelineSampler {
 public:
  static TimelineSampler& Global();

  // False (and running() stays false) when already running or disabled via
  // WIMPI_PERF_DISABLE=1; note() explains.
  bool Start(SamplerOptions opts = {});
  void Stop();

  bool enabled() const { return g_enabled.load(std::memory_order_relaxed); }
  // Why the last Start() refused, or why counters are degraded ("" = fully
  // armed).
  const std::string& note() const { return note_; }
  const SamplerOptions& options() const { return opts_; }

  // Copies the samples with ts_us in [since_us, until_us).
  std::vector<TimelineSample> SnapshotRange(int64_t since_us,
                                            int64_t until_us) const;

  // Timeline slice for one query/window (start/end/period/perf filled in).
  QueryTimeline Slice(int64_t start_us, int64_t end_us) const;

  // Total ticks taken since Start (test/diagnostic).
  int64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

 private:
  TimelineSampler() = default;
  void Loop();
  void TakeSample(int64_t now_us);

  static std::atomic<bool> g_enabled;

  SamplerOptions opts_;
  std::string note_;
  PerfCounters perf_;
  bool perf_open_ = false;
  bool prev_pool_metrics_ = false;
  std::thread thread_;
  std::atomic<int64_t> ticks_{0};

  mutable std::mutex mu_;          // guards ring_ + stop_ handshake
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::deque<TimelineSample> ring_;
};

}  // namespace wimpi::obs::timeline

#endif  // WIMPI_OBS_TIMELINE_SAMPLER_H_
