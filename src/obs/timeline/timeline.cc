#include "obs/timeline/timeline.h"

#include <algorithm>

#include "common/json.h"
#include "obs/trace.h"

namespace wimpi::obs::timeline {

namespace {

// Interval rates from a cumulative-counter delta. dt <= 0 (clock went
// nowhere between ticks) yields "unavailable" rather than infinities.
void FillRates(const PerfCounts& d, double dt_s, TimelineInterval* out) {
  if (dt_s <= 0) return;
  const double dram = d.DramBytes();
  if (dram >= 0) out->gbps = dram / dt_s / 1e9;
  out->ipc = d.Ipc();
  if (d.Has(PerfEvent::kInstructions)) {
    out->instr_per_sec =
        static_cast<double>(d.Get(PerfEvent::kInstructions)) / dt_s;
  }
  if (d.Has(PerfEvent::kTaskClockNs)) {
    out->cpu_util =
        static_cast<double>(d.Get(PerfEvent::kTaskClockNs)) / (dt_s * 1e9);
  }
}

}  // namespace

const char* TimelineInterval::Label() const {
  return num_active > 0 && active[0].label != nullptr ? active[0].label
                                                      : "idle";
}

double PipelineWindow::Gbps() const {
  const double dram = delta.DramBytes();
  if (dram < 0 || seconds <= 0) return -1;
  return dram / seconds / 1e9;
}

double PipelineWindow::Ipc() const { return delta.Ipc(); }

std::vector<TimelineInterval> QueryTimeline::Intervals() const {
  std::vector<TimelineInterval> out;
  if (samples.size() < 2) return out;
  out.reserve(samples.size() - 1);
  for (size_t i = 1; i < samples.size(); ++i) {
    const TimelineSample& a = samples[i - 1];
    const TimelineSample& b = samples[i];
    TimelineInterval iv;
    iv.t0_us = a.ts_us;
    iv.t1_us = b.ts_us;
    iv.dt_s = static_cast<double>(b.ts_us - a.ts_us) * 1e-6;
    FillRates(b.perf.Delta(a.perf), iv.dt_s, &iv);
    // State fields describe the interval's end sample: what the node was
    // doing when the tick landed.
    iv.mem_used_bytes = b.mem_used_bytes;
    iv.queue_depth = b.queue_depth;
    iv.num_active = b.num_active;
    iv.active = b.active;
    out.push_back(iv);
  }
  return out;
}

std::vector<PipelineWindow> QueryTimeline::PipelineWindows() const {
  std::vector<PipelineWindow> out;
  // Open windows per lane, keyed by slot position in `out`.
  std::array<int, TimelineSample::kMaxActive * 16> open;
  open.fill(-1);
  auto open_index = [&open](int lane) -> int& {
    return open[static_cast<size_t>(lane) % open.size()];
  };
  int64_t prev_ts = samples.empty() ? 0 : samples.front().ts_us;
  for (const TimelineSample& s : samples) {
    // Close windows whose (lane, seq) no longer appears in this sample.
    for (size_t slot = 0; slot < open.size(); ++slot) {
      const int idx = open[slot];
      if (idx < 0) continue;
      bool still_active = false;
      for (int i = 0; i < s.num_active; ++i) {
        const ActivitySample& a = s.active[static_cast<size_t>(i)];
        if (a.lane == out[static_cast<size_t>(idx)].lane &&
            a.seq == out[static_cast<size_t>(idx)].seq) {
          still_active = true;
          break;
        }
      }
      if (!still_active) open[slot] = -1;
    }
    for (int i = 0; i < s.num_active; ++i) {
      const ActivitySample& a = s.active[static_cast<size_t>(i)];
      if (a.lane < 0) continue;
      int& idx = open_index(a.lane);
      if (idx >= 0 && out[static_cast<size_t>(idx)].seq == a.seq) {
        // Extend: the same pipeline is still running on this lane.
        PipelineWindow& w = out[static_cast<size_t>(idx)];
        w.t1_us = s.ts_us;
        w.seconds = static_cast<double>(w.t1_us - w.t0_us) * 1e-6;
        continue;
      }
      PipelineWindow w;
      w.lane = a.lane;
      w.query_id = a.query_id;
      w.seq = a.seq;
      w.label = a.label;
      // The pipeline started somewhere between the previous tick and this
      // one; attribute from the previous tick (at most one period early).
      w.t0_us = prev_ts;
      w.t1_us = s.ts_us;
      w.seconds = static_cast<double>(w.t1_us - w.t0_us) * 1e-6;
      idx = static_cast<int>(out.size());
      out.push_back(w);
    }
    prev_ts = s.ts_us;
  }
  // Accumulate counter deltas per window from the interval series.
  const std::vector<TimelineInterval> ivs = Intervals();
  for (PipelineWindow& w : out) {
    for (const TimelineInterval& iv : ivs) {
      if (iv.t1_us <= w.t0_us || iv.t0_us >= w.t1_us) continue;
      // Rebuild the raw delta from rates x dt (lossless enough for
      // classification; avoids holding per-interval PerfCounts twice).
      PerfCounts d;
      if (iv.gbps >= 0) {
        d.Set(PerfEvent::kLlcMisses,
              static_cast<int64_t>(iv.gbps * 1e9 * iv.dt_s /
                                   PerfCounts::kBytesPerLine));
      }
      if (iv.instr_per_sec >= 0) {
        d.Set(PerfEvent::kInstructions,
              static_cast<int64_t>(iv.instr_per_sec * iv.dt_s));
        if (iv.ipc > 0) {
          d.Set(PerfEvent::kCycles,
                static_cast<int64_t>(iv.instr_per_sec * iv.dt_s / iv.ipc));
        }
      }
      if (iv.cpu_util >= 0) {
        d.Set(PerfEvent::kTaskClockNs,
              static_cast<int64_t>(iv.cpu_util * iv.dt_s * 1e9));
      }
      w.delta.Accumulate(d);
    }
  }
  return out;
}

std::string QueryTimeline::ToJsonl() const {
  std::string out;
  {
    JsonWriter w;
    w.BeginObject()
        .Key("type").String("header")
        .Key("start_us").Int(start_us)
        .Key("end_us").Int(end_us)
        .Key("period_us").Int(period_us)
        .Key("perf_available").Bool(perf_available)
        .Key("samples").Int(static_cast<int64_t>(samples.size()))
        .EndObject();
    out += w.str();
    out += '\n';
  }
  for (const TimelineInterval& iv : Intervals()) {
    JsonWriter w;
    w.BeginObject()
        .Key("type").String("interval")
        .Key("t0_us").Int(iv.t0_us)
        .Key("t1_us").Int(iv.t1_us);
    if (iv.gbps >= 0) w.Key("gbps").Double(iv.gbps);
    if (iv.ipc >= 0) w.Key("ipc").Double(iv.ipc);
    if (iv.cpu_util >= 0) w.Key("cpu_util").Double(iv.cpu_util);
    w.Key("mem_used_bytes").Int(iv.mem_used_bytes)
        .Key("queue_depth").Double(iv.queue_depth)
        .Key("active").BeginArray();
    for (int i = 0; i < iv.num_active; ++i) {
      const ActivitySample& a = iv.active[static_cast<size_t>(i)];
      w.BeginObject()
          .Key("lane").Int(a.lane)
          .Key("query").Int(static_cast<int64_t>(a.query_id))
          .Key("label").String(a.label != nullptr ? a.label : "")
          .EndObject();
    }
    w.EndArray().EndObject();
    out += w.str();
    out += '\n';
  }
  return out;
}

void QueryTimeline::AppendCounterTracks(TraceSink* sink) const {
  auto counter = [sink](const char* name, int64_t ts_us, double value) {
    TraceEvent e;
    e.name = name;
    e.category = "timeline";
    e.phase = 'C';
    e.ts_us = ts_us;
    e.pid = kTracePidHost;
    e.tid = 0;
    JsonWriter w;
    w.BeginObject().Key("value").Double(value).EndObject();
    e.args_json = w.str();
    sink->Record(std::move(e));
  };
  for (const TimelineInterval& iv : Intervals()) {
    if (iv.gbps >= 0) counter("timeline.gbps", iv.t1_us, iv.gbps);
    if (iv.ipc >= 0) counter("timeline.ipc", iv.t1_us, iv.ipc);
    if (iv.cpu_util >= 0) counter("timeline.cpu_util", iv.t1_us, iv.cpu_util);
    counter("timeline.mem_mb", iv.t1_us,
            static_cast<double>(iv.mem_used_bytes) / (1024.0 * 1024.0));
    counter("timeline.queue_depth", iv.t1_us, iv.queue_depth);
  }
}

}  // namespace wimpi::obs::timeline
