#include "obs/timeline/sampler.h"

#include <algorithm>
#include <array>
#include <chrono>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "storage/memory_tracker.h"

namespace wimpi::obs::timeline {

// ---------------------------------------------------------------------------
// Lane activity registry
// ---------------------------------------------------------------------------

namespace {
std::array<LaneActivity, kMaxLanes> g_lanes;
}  // namespace

LaneActivity& LaneSlot(int lane) {
  return g_lanes[static_cast<size_t>(lane < 0 ? 0 : lane) % kMaxLanes];
}

std::atomic<bool> TimelineSampler::g_enabled{false};

bool SamplerEnabled() {
  return TimelineSampler::Global().enabled();
}

ScopedPipelineActivity::ScopedPipelineActivity(int lane, const char* label,
                                               uint64_t query_id) {
  if (!SamplerEnabled()) return;
  lane_ = lane < 0 ? 0 : lane;
  LaneActivity& slot = LaneSlot(lane_);
  slot.query_id.store(query_id, std::memory_order_relaxed);
  slot.label.store(label, std::memory_order_relaxed);
  // Odd seq = active. Release so a sampler that observed the new seq also
  // observes the label/query stores above.
  slot.seq.fetch_add(1, std::memory_order_release);
}

ScopedPipelineActivity::~ScopedPipelineActivity() {
  if (lane_ < 0) return;
  LaneActivity& slot = LaneSlot(lane_);
  slot.label.store(nullptr, std::memory_order_relaxed);
  slot.seq.fetch_add(1, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

TimelineSampler& TimelineSampler::Global() {
  static TimelineSampler* sampler = new TimelineSampler;
  return *sampler;
}

bool TimelineSampler::Start(SamplerOptions opts) {
  if (enabled()) {
    note_ = "sampler already running";
    return false;
  }
  if (PerfDisabledByEnv()) {
    // The env var that silences perf counters silences the sampler too
    // (README env-var table): CI stages that pin determinism with
    // WIMPI_PERF_DISABLE=1 must not grow a background thread.
    note_ = "disabled via WIMPI_PERF_DISABLE=1";
    return false;
  }
  opts_ = opts;
  opts_.period_us = std::max<int64_t>(opts_.period_us, 50);
  opts_.max_samples = std::max<size_t>(opts_.max_samples, 2);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ring_.clear();
    stop_ = false;
  }
  ticks_.store(0, std::memory_order_relaxed);
  // Counters are opened on the caller's thread (inherit=1): coverage
  // follows the same contract as ScopedProfiling — workers spawned after
  // this call aggregate, pre-existing ones do not.
  perf_open_ = opts_.perf && perf_.Open();
  note_ = perf_open_ ? ""
                     : (opts_.perf ? perf_.error() : "perf disabled by options");
  // Queue depth comes from the pool's own gauge, which only moves while
  // the pool metric hooks are armed.
  prev_pool_metrics_ = PoolMetricsEnabled();
  SetPoolMetricsEnabled(true);
  g_enabled.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { Loop(); });
  return true;
}

void TimelineSampler::Stop() {
  if (!thread_.joinable()) return;
  g_enabled.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    stop_cv_.notify_all();
  }
  thread_.join();
  perf_.Close();
  perf_open_ = false;
  SetPoolMetricsEnabled(prev_pool_metrics_);
}

void TimelineSampler::TakeSample(int64_t now_us) {
  TimelineSample s;
  s.ts_us = now_us;
  if (perf_open_) s.perf = perf_.Read();
  if (opts_.memory != nullptr) {
    s.mem_used_bytes = opts_.memory->used();
    s.mem_peak_bytes = opts_.memory->peak();
  }
  s.queue_depth = MetricsRegistry::Global().gauge("pool.queue_depth").Value();
  for (int lane = 0; lane < kMaxLanes && s.num_active < TimelineSample::kMaxActive;
       ++lane) {
    LaneActivity& slot = g_lanes[static_cast<size_t>(lane)];
    const uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if ((seq & 1) == 0) continue;  // even = idle
    const char* label = slot.label.load(std::memory_order_relaxed);
    const uint64_t query = slot.query_id.load(std::memory_order_relaxed);
    if (label == nullptr) continue;  // torn: start/end mid-read
    if (slot.seq.load(std::memory_order_acquire) != seq) continue;
    ActivitySample& a = s.active[static_cast<size_t>(s.num_active++)];
    a.lane = lane;
    a.query_id = query;
    a.seq = seq;
    a.label = label;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(s);
  while (ring_.size() > opts_.max_samples) ring_.pop_front();
  ticks_.fetch_add(1, std::memory_order_relaxed);
}

void TimelineSampler::Loop() {
  // One tick immediately so even sub-period windows see a sample boundary.
  TakeSample(NowMicros());
  int64_t next_us = NowMicros() + opts_.period_us;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stop_) return;
    stop_cv_.wait_until(lock,
                        std::chrono::steady_clock::time_point(
                            std::chrono::microseconds(next_us)));
    if (stop_) return;
    const int64_t now = NowMicros();
    if (now < next_us) continue;  // spurious wakeup
    lock.unlock();
    TakeSample(now);
    lock.lock();
    next_us = now + opts_.period_us;
  }
}

std::vector<TimelineSample> TimelineSampler::SnapshotRange(
    int64_t since_us, int64_t until_us) const {
  std::vector<TimelineSample> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const TimelineSample& s : ring_) {
    if (s.ts_us >= since_us && s.ts_us < until_us) out.push_back(s);
  }
  return out;
}

QueryTimeline TimelineSampler::Slice(int64_t start_us, int64_t end_us) const {
  QueryTimeline t;
  t.start_us = start_us;
  t.end_us = end_us;
  t.period_us = opts_.period_us;
  t.samples = SnapshotRange(start_us, end_us == 0 ? INT64_MAX : end_us);
  for (const TimelineSample& s : t.samples) {
    if (s.perf.AnyAvailable()) {
      t.perf_available = true;
      break;
    }
  }
  return t;
}

}  // namespace wimpi::obs::timeline
