#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace wimpi::obs {

namespace {

// Lock-free min/max over an atomic<double> via CAS; relaxed ordering is
// fine — these are statistics, not synchronization.
void AtomicMin(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicAdd(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::atomic<bool> g_pool_metrics{false};

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  WIMPI_CHECK(!bounds_.empty());
  WIMPI_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_.resize(bounds_.size() + 1);  // last = overflow
}

std::vector<double> Histogram::DefaultLatencyBoundsUs() {
  // 1, 1.8, 3.2, 5.6 per decade from 1us up to 60s.
  std::vector<double> b;
  for (double decade = 1; decade <= 1e7; decade *= 10) {
    for (const double m : {1.0, 1.8, 3.2, 5.6}) b.push_back(decade * m);
  }
  b.push_back(6e7);
  return b;
}

void Histogram::Record(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t idx = static_cast<size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  const int64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, v);
  if (n == 0) {
    // First sample initializes min/max; races with concurrent firsts are
    // resolved by the CAS loops below.
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  AtomicMin(min_, v);
  AtomicMax(max_, v);
}

int64_t Histogram::Count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::Min() const {
  return Count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

double Histogram::Max() const {
  return Count() == 0 ? 0 : max_.load(std::memory_order_relaxed);
}

double Histogram::Percentile(double p) const {
  const std::vector<int64_t> counts = BucketCounts();
  int64_t total = 0;
  for (const int64_t c : counts) total += c;
  if (total == 0) return 0;
  const double target = p * static_cast<double>(total);
  int64_t cum = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const int64_t next = cum + counts[i];
    if (static_cast<double>(next) >= target) {
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = i < bounds_.size() ? bounds_[i] : Max();
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(counts[i]);
      const double est = lo + (std::max(hi, lo) - lo) * std::min(1.0, frac);
      // Interpolation assumes samples spread across the whole bucket; the
      // true extremes are tighter bounds than the bucket edges.
      return std::clamp(est, Min(), Max());
    }
    cum = next;
  }
  return Max();
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  // try_emplace constructs the Histogram in place: atomics make it neither
  // movable nor copyable, and map nodes keep the reference stable.
  return histograms_.try_emplace(name, bounds).first->second;
}

void MetricsRegistry::SetInfo(const std::string& name,
                              std::map<std::string, std::string> labels) {
  std::lock_guard<std::mutex> lock(mu_);
  infos_[name] = std::move(labels);
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [_, c] : counters_) c.Reset();
  for (auto& [_, g] : gauges_) g.Reset();
  for (auto& [_, h] : histograms_) h.Reset();
  // Infos carry identity, not accumulation — erasing (not zeroing) them is
  // what a test expects from a clean slate; nothing caches info pointers.
  infos_.clear();
}

std::string MetricsRegistry::FormatText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << name << " " << c.Value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << name << " " << g.Value() << "\n";
  }
  char buf[160];
  for (const auto& [name, h] : histograms_) {
    std::snprintf(buf, sizeof(buf),
                  "%s count=%lld mean=%.1f p50=%.1f p95=%.1f p99=%.1f "
                  "max=%.1f",
                  name.c_str(), static_cast<long long>(h.Count()), h.Mean(),
                  h.Percentile(0.5), h.Percentile(0.95), h.Percentile(0.99),
                  h.Max());
    out << buf << "\n";
  }
  for (const auto& [name, labels] : infos_) {
    out << name << "{";
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) out << ",";
      out << k << "=\"" << v << "\"";
      first = false;
    }
    out << "} 1\n";
  }
  return out.str();
}

std::map<std::string, double> MetricsRegistry::ScalarSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, c] : counters_) {
    out[name] = static_cast<double>(c.Value());
  }
  for (const auto& [name, g] : gauges_) out[name] = g.Value();
  for (const auto& [name, h] : histograms_) {
    out[name + ".count"] = static_cast<double>(h.Count());
    out[name + ".sum"] = h.Sum();
  }
  return out;
}

RegistrySnapshot MetricsRegistry::SnapshotAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  snap.infos = infos_;
  for (const auto& [name, c] : counters_) snap.counters[name] = c.Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g.Value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.bounds = h.bounds();
    hs.bucket_counts = h.BucketCounts();
    hs.count = h.Count();
    hs.sum = h.Sum();
    hs.min = h.Min();
    hs.max = h.Max();
    snap.histograms[name] = std::move(hs);
  }
  return snap;
}

bool PoolMetricsEnabled() {
  return g_pool_metrics.load(std::memory_order_relaxed);
}

void SetPoolMetricsEnabled(bool enabled) {
  g_pool_metrics.store(enabled, std::memory_order_relaxed);
}

}  // namespace wimpi::obs
