#ifndef WIMPI_OBS_PROFILER_H_
#define WIMPI_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/counters.h"
#include "obs/perf_counters.h"
#include "obs/tracing/span.h"

namespace wimpi::obs {

// Profiling knobs, the observability sibling of exec::ExecOptions. All off
// by default: the operator library then performs one relaxed atomic load
// per operator invocation and never reads a clock, so unprofiled runs keep
// the seed engine's behaviour (and results) bit-for-bit.
struct ProfileOptions {
  // Collect the EXPLAIN ANALYZE-style operator tree (wall time, rows,
  // morsels, threads, OpStats side by side).
  bool operator_profile = true;
  // Record per-morsel / per-task spans into TraceSink (chrome://tracing).
  bool trace = false;
  // Enable the ThreadPool/TaskScheduler metric hooks (task latency, queue
  // wait, per-worker busy/idle) in MetricsRegistry::Global().
  bool pool_metrics = false;
  // Count hardware events (cycles, instructions, LLC traffic, branch
  // misses, task time) for the query and attribute per-operator deltas, so
  // trees and reports show IPC and LLC-miss rate next to the abstract
  // counters. Degrades gracefully: when perf_event_open cannot count
  // (container, perf_event_paranoid, non-Linux, WIMPI_PERF_DISABLE=1) the
  // run is bit-identical and reports say "counters unavailable".
  bool perf_counters = false;
};

// One node of the profile tree: an operator invocation (or the query root).
// Children are operators invoked while this one was on the scope stack,
// e.g. SortRelation -> [SortPerm, Gather...]. OpStats recorded via
// QueryStats::Add land on the node that was innermost at Add time.
struct ProfileNode {
  std::string name;  // operator kind, e.g. "Filter", "HashJoin"
  double wall_seconds = 0;
  int64_t rows_in = 0;
  int64_t rows_out = 0;
  int threads = 1;  // max threads of any parallel phase (1 = sequential)
  int morsels = 1;  // morsel/chunk count of the widest parallel phase
  // Abstract work counters recorded while this scope was innermost — the
  // model-side view of the same invocation, side by side with wall time.
  std::vector<exec::OpStats> op_stats;
  // Physical counters measured while this scope was open (inclusive of
  // children, like wall_seconds). Valid only when ProfileOptions
  // .perf_counters was on and at least one event could be counted.
  bool perf_valid = false;
  PerfCounts perf;
  std::vector<std::unique_ptr<ProfileNode>> children;

  double ChildSeconds() const;
  double SelfSeconds() const { return wall_seconds - ChildSeconds(); }
  double TotalComputeOps() const;
  double TotalSeqBytes() const;
  double TotalRandCount() const;
};

// Result of one profiled query execution.
struct QueryProfile {
  ProfileNode root;  // root.name = label passed to ScopedProfiling
  double wall_seconds = 0;

  // Whole-query physical counters (root.perf mirrors them). When
  // ProfileOptions.perf_counters was requested but nothing could be
  // counted, perf_valid is false and perf_note holds the reason; trees and
  // reports then print "counters unavailable". Empty note = not requested.
  bool perf_valid = false;
  PerfCounts perf;
  std::string perf_note;

  // Sum of wall seconds over the root's direct children (the top-level
  // operator invocations). The gap to `wall_seconds` is plan glue.
  double OperatorSeconds() const { return root.ChildSeconds(); }

  // EXPLAIN ANALYZE-style text rendering of the tree.
  std::string FormatTree() const;

  // Machine-readable rendering of the same tree (wall/rows/threads/model
  // counters per node, perf totals at the top level).
  std::string ToJson() const;
};

// Installs profiling for the current thread's query execution (RAII).
// Exactly one may be active at a time per process; the constructor records
// the owning thread, and scopes opened on other threads (operators running
// inside pool tasks) become no-ops, so worker threads never touch the
// scope stack.
class ScopedProfiling {
 public:
  ScopedProfiling(const ProfileOptions& opts, QueryProfile* out,
                  std::string label = "query");
  ~ScopedProfiling();

  ScopedProfiling(const ScopedProfiling&) = delete;
  ScopedProfiling& operator=(const ScopedProfiling&) = delete;

 private:
  QueryProfile* out_;
  ProfileOptions opts_;
  int64_t start_us_ = 0;
  bool prev_trace_ = false;
  bool prev_pool_metrics_ = false;
  PerfCounters perf_;  // open only when opts_.perf_counters and available
  // Root span of the query's distributed trace (open only when opts.trace):
  // operator scopes and morsel tasks become its descendants, and a cluster
  // driver that installed its context first makes the query a child of the
  // distributed run.
  std::unique_ptr<Span> span_;
};

// RAII operator scope. When no profiler is active (or the caller is not
// the profiling thread) construction is one relaxed load and everything
// else is a no-op.
class OpScope {
 public:
  // `name` must be a string literal (stored unowned for trace labels).
  OpScope(const char* name, int64_t rows_in);
  ~OpScope();

  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

  bool active() const { return node_ != nullptr; }
  void set_rows_out(int64_t rows) {
    if (node_ != nullptr) node_->rows_out = rows;
  }

 private:
  ProfileNode* node_ = nullptr;
  ProfileNode* parent_ = nullptr;
  const char* prev_label_ = nullptr;
  int64_t start_us_ = 0;
  PerfCounts perf_start_;  // read only when counters are live
  std::unique_ptr<Span> span_;  // open only when the trace sink is enabled
};

// True while a ScopedProfiling with operator_profile is installed (any
// thread may ask; only the owning thread may open scopes).
bool ProfilerActive();

// Called by the morsel scheduler glue on the profiling thread before
// fanning out: records the parallel shape on the innermost open scope.
void NoteParallelPhase(int threads, int morsels);

// Label of the innermost open scope ("plan" when none); readable from
// worker threads while they execute that scope's morsels, used to name
// trace spans. Returns a string literal pointer.
const char* CurrentOpLabel();

}  // namespace wimpi::obs

#endif  // WIMPI_OBS_PROFILER_H_
