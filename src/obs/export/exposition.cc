#include "obs/export/exposition.h"

#include <cctype>
#include <cstdlib>

#include "common/json.h"

namespace wimpi::obs {

namespace {

void WriteSample(std::string& out, const std::string& name,
                 const std::string& labels, double value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += JsonNumber(value);
  out += '\n';
}

void WriteType(std::string& out, const std::string& name, const char* type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string ExpositionFormat::SanitizeName(const std::string& name) {
  std::string out = "wimpi_";
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string ExpositionFormat::Write(const RegistrySnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string n = SanitizeName(name);
    WriteType(out, n, "counter");
    WriteSample(out, n, "", static_cast<double>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string n = SanitizeName(name);
    WriteType(out, n, "gauge");
    WriteSample(out, n, "", value);
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string n = SanitizeName(name);
    WriteType(out, n, "histogram");
    // Prometheus buckets are cumulative: each le bound counts everything
    // at or below it, ending in the le="+Inf" total.
    int64_t cum = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cum += i < h.bucket_counts.size() ? h.bucket_counts[i] : 0;
      WriteSample(out, n + "_bucket",
                  "le=\"" + JsonNumber(h.bounds[i]) + "\"",
                  static_cast<double>(cum));
    }
    WriteSample(out, n + "_bucket", "le=\"+Inf\"",
                static_cast<double>(h.count));
    WriteSample(out, n + "_sum", "", h.sum);
    WriteSample(out, n + "_count", "", static_cast<double>(h.count));
  }
  return out;
}

std::string ExpositionFormat::WriteGlobal() {
  return Write(MetricsRegistry::Global().SnapshotAll());
}

bool ExpositionFormat::Parse(const std::string& text,
                             std::vector<ExpositionSample>* out,
                             std::string* error) {
  out->clear();
  size_t pos = 0;
  int line_no = 0;
  auto fail = [&](const std::string& what) {
    if (error != nullptr) {
      *error = "exposition line " + std::to_string(line_no) + ": " + what;
    }
    return false;
  };
  while (pos < text.size()) {
    ++line_no;
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;

    ExpositionSample sample;
    size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    if (i == 0) return fail("missing metric name");
    sample.name = line.substr(0, i);
    if (i < line.size() && line[i] == '{') {
      const size_t close = line.find('}', i);
      if (close == std::string::npos) return fail("unterminated labels");
      std::string labels = line.substr(i + 1, close - i - 1);
      size_t lp = 0;
      while (lp < labels.size()) {
        const size_t eq = labels.find('=', lp);
        if (eq == std::string::npos || eq + 1 >= labels.size() ||
            labels[eq + 1] != '"') {
          return fail("malformed label");
        }
        const size_t endq = labels.find('"', eq + 2);
        if (endq == std::string::npos) return fail("unterminated label value");
        sample.labels[labels.substr(lp, eq - lp)] =
            labels.substr(eq + 2, endq - eq - 2);
        lp = endq + 1;
        if (lp < labels.size() && labels[lp] == ',') ++lp;
      }
      i = close + 1;
    }
    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size()) return fail("missing sample value");
    char* end = nullptr;
    sample.value = std::strtod(line.c_str() + i, &end);
    if (end == line.c_str() + i) return fail("malformed sample value");
    out->push_back(std::move(sample));
  }
  return true;
}

}  // namespace wimpi::obs
