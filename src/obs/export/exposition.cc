#include "obs/export/exposition.h"

#include <cctype>
#include <cstdlib>
#include <utility>

#include "common/json.h"

namespace wimpi::obs {

namespace {

void WriteSample(std::string& out, const std::string& name,
                 const std::string& labels, double value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += JsonNumber(value);
  out += '\n';
}

// Help text is escaped like label values minus the quote rule: the
// exposition format only requires backslash and line-feed escapes here.
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void WriteFamilyHeader(std::string& out, const std::string& raw_name,
                       const std::string& sanitized, const char* type) {
  out += "# HELP ";
  out += sanitized;
  out += ' ';
  out += EscapeHelp(ExpositionFormat::HelpFor(raw_name));
  out += '\n';
  out += "# TYPE ";
  out += sanitized;
  out += ' ';
  out += type;
  out += '\n';
}

// Matches `name` against `pattern` where '*' spans any run of characters
// (used for one-level metric families like service.session.*.latency_us).
bool MatchesPattern(const std::string& name, const std::string& pattern) {
  const size_t star = pattern.find('*');
  if (star == std::string::npos) return name == pattern;
  const std::string prefix = pattern.substr(0, star);
  const std::string suffix = pattern.substr(star + 1);
  return name.size() >= prefix.size() + suffix.size() &&
         name.compare(0, prefix.size(), prefix) == 0 &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

struct HelpEntry {
  const char* pattern;
  const char* help;
};

// Descriptions for the exposition's `# HELP` lines. Exact names first,
// then starred families; order matters (first match wins).
constexpr HelpEntry kHelpTable[] = {
    {"service.submitted", "Queries submitted to the query service"},
    {"service.completed", "Queries that finished with OK status"},
    {"service.rejected", "Queries rejected by admission control"},
    {"service.cancelled", "Queries cancelled by their client"},
    {"service.timeout", "Queries that exceeded their deadline"},
    {"service.failed", "Queries that failed with an internal error"},
    {"service.active", "Queries currently running on driver threads"},
    {"service.queued", "Queries waiting in the admission queue"},
    {"service.pipelines", "Parallel pipelines run by the fair scheduler"},
    {"service.tasks", "Morsel tasks run by the fair scheduler"},
    {"service.queue_wait_us",
     "Microseconds from submit to admission (or to rejection for queries "
     "that never ran)"},
    {"service.exec_us", "Microseconds from admission to completion"},
    {"service.latency_us", "Microseconds from submit to completion"},
    {"service.session.*.latency_us",
     "Per-session microseconds from submit to completion"},
    {"pool.tasks", "Tasks executed by the shared thread pool"},
    {"pool.queue_depth", "Tasks waiting in the thread pool queue"},
    {"pool.task.queue_wait_us",
     "Microseconds pool tasks spent queued before a worker picked them up"},
    {"pool.task.run_us", "Microseconds pool tasks spent executing"},
    {"pool.worker*.busy_us", "Microseconds this pool worker spent running "
                             "tasks"},
    {"pool.worker*.idle_us", "Microseconds this pool worker spent waiting "
                             "for work"},
    {"eventlog.dropped",
     "Structured-log events evicted from the bounded ring"},
    {"flight.dumps", "Retroactive flight-recorder dumps written"},
    {"flight.trigger.latency",
     "Flight triggers fired by queries over their latency threshold"},
    {"flight.trigger.status",
     "Flight triggers fired by cancelled/timed-out/rejected queries"},
    {"flight.trigger.fault", "Flight triggers fired by cluster faults"},
    {"slowlog.entries", "Entries appended to the slow-query log"},
    {"slo.p*.objective_us", "Latency objective for this priority class"},
    {"slo.p*.attainment",
     "Fraction of window queries meeting the class objective"},
    {"slo.p*.burn_rate",
     "Error-budget burn rate: (1 - attainment) / (1 - target)"},
    {"slo.p*.total", "Queries counted against this class objective"},
    {"slo.p*.breaches", "Queries that missed this class objective"},
    {"cluster.fault.attempts", "Partition attempts under the fault plan"},
    {"cluster.fault.retries", "Failed attempts that were retried"},
    {"cluster.fault.reassigned_partitions",
     "Partitions moved to another node after repeated failures"},
    {"cluster.fault.nodes_failed", "Nodes lost during the run"},
    {"host.info",
     "Host fingerprint (constant 1; labels identify cpu model and thread "
     "count so series from different hosts are distinguishable)"},
    {"stats.qerror",
     "Cardinality Q-error max(est/act, act/est) per estimated operator"},
    {"stats.qerror.max", "Worst cardinality Q-error observed"},
    {"stats.qerror.ops.estimated",
     "Operator invocations with both an estimate and an actual"},
    {"stats.qerror.ops.recorded",
     "Operator invocations with actual cardinalities recorded"},
    {"stats.qerror.class.*",
     "Cardinality Q-error per estimated operator of this class"},
};

}  // namespace

std::string ExpositionFormat::SanitizeName(const std::string& name) {
  std::string out = "wimpi_";
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string ExpositionFormat::HelpFor(const std::string& name) {
  for (const HelpEntry& e : kHelpTable) {
    if (MatchesPattern(name, e.pattern)) return e.help;
  }
  return "wimpi metric " + name;
}

std::string ExpositionFormat::EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string ExpositionFormat::Write(const RegistrySnapshot& snapshot) {
  std::string out;
  for (const auto& [name, labels] : snapshot.infos) {
    const std::string n = SanitizeName(name);
    WriteFamilyHeader(out, name, n, "gauge");
    std::string label_str;
    for (const auto& [k, v] : labels) {
      if (!label_str.empty()) label_str += ',';
      label_str += SanitizeName(k).substr(6);  // drop the wimpi_ prefix
      label_str += "=\"";
      label_str += EscapeLabelValue(v);
      label_str += '"';
    }
    WriteSample(out, n, label_str, 1);
  }
  for (const auto& [name, value] : snapshot.counters) {
    const std::string n = SanitizeName(name);
    WriteFamilyHeader(out, name, n, "counter");
    WriteSample(out, n, "", static_cast<double>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string n = SanitizeName(name);
    WriteFamilyHeader(out, name, n, "gauge");
    WriteSample(out, n, "", value);
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string n = SanitizeName(name);
    WriteFamilyHeader(out, name, n, "histogram");
    // Prometheus buckets are cumulative: each le bound counts everything
    // at or below it, ending in the le="+Inf" total.
    int64_t cum = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cum += i < h.bucket_counts.size() ? h.bucket_counts[i] : 0;
      WriteSample(out, n + "_bucket",
                  "le=\"" + EscapeLabelValue(JsonNumber(h.bounds[i])) + "\"",
                  static_cast<double>(cum));
    }
    WriteSample(out, n + "_bucket", "le=\"+Inf\"",
                static_cast<double>(h.count));
    WriteSample(out, n + "_sum", "", h.sum);
    WriteSample(out, n + "_count", "", static_cast<double>(h.count));
  }
  return out;
}

std::string ExpositionFormat::WriteGlobal() {
  return Write(MetricsRegistry::Global().SnapshotAll());
}

namespace {

// Unescapes a `# HELP` payload: `\\` -> backslash, `\n` -> line feed.
std::string UnescapeHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      out += s[i] == 'n' ? '\n' : s[i];
    } else {
      out += s[i];
    }
  }
  return out;
}

}  // namespace

bool ExpositionFormat::Parse(const std::string& text,
                             std::vector<ExpositionSample>* out,
                             std::string* error) {
  return Parse(text, out, nullptr, error);
}

bool ExpositionFormat::Parse(const std::string& text,
                             std::vector<ExpositionSample>* out,
                             std::map<std::string, ExpositionMeta>* meta,
                             std::string* error) {
  out->clear();
  if (meta != nullptr) meta->clear();
  size_t pos = 0;
  int line_no = 0;
  auto fail = [&](const std::string& what) {
    if (error != nullptr) {
      *error = "exposition line " + std::to_string(line_no) + ": " + what;
    }
    return false;
  };
  while (pos < text.size()) {
    ++line_no;
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // `# HELP <name> <text>` / `# TYPE <name> <kind>`; anything else
      // is a free-form comment and is skipped either way.
      if (meta != nullptr) {
        const bool is_help = line.rfind("# HELP ", 0) == 0;
        const bool is_type = line.rfind("# TYPE ", 0) == 0;
        if (is_help || is_type) {
          const size_t name_start = 7;
          const size_t name_end = line.find(' ', name_start);
          if (name_end != std::string::npos && name_end > name_start) {
            const std::string name =
                line.substr(name_start, name_end - name_start);
            const std::string rest = line.substr(name_end + 1);
            if (is_help) {
              (*meta)[name].help = UnescapeHelp(rest);
            } else {
              (*meta)[name].type = rest;
            }
          }
        }
      }
      continue;
    }

    ExpositionSample sample;
    size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    if (i == 0) return fail("missing metric name");
    sample.name = line.substr(0, i);
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (true) {
        if (i >= line.size()) return fail("unterminated labels");
        if (line[i] == '}') {
          ++i;
          break;
        }
        const size_t eq = line.find('=', i);
        if (eq == std::string::npos || eq == i) {
          return fail("malformed label");
        }
        const std::string key = line.substr(i, eq - i);
        i = eq + 1;
        if (i >= line.size() || line[i] != '"') return fail("malformed label");
        ++i;
        // Escape-aware value scan: \" stays inside the value, and a '}'
        // inside quotes never terminates the label block.
        std::string value;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\') {
            if (i + 1 >= line.size()) return fail("unterminated label value");
            const char c = line[i + 1];
            value += c == 'n' ? '\n' : c;
            i += 2;
          } else {
            value += line[i++];
          }
        }
        if (i >= line.size()) return fail("unterminated label value");
        ++i;  // closing quote
        sample.labels[key] = std::move(value);
        if (i < line.size() && line[i] == ',') ++i;
      }
    }
    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size()) return fail("missing sample value");
    char* end = nullptr;
    sample.value = std::strtod(line.c_str() + i, &end);
    if (end == line.c_str() + i) return fail("malformed sample value");
    out->push_back(std::move(sample));
  }
  return true;
}

}  // namespace wimpi::obs
