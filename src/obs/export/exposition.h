#ifndef WIMPI_OBS_EXPORT_EXPOSITION_H_
#define WIMPI_OBS_EXPORT_EXPOSITION_H_

#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace wimpi::obs {

// One scraped sample: metric name plus optional labels, e.g.
// {name:"pool_task_run_us_bucket", labels:{{"le","3.2"}}, value:17}.
struct ExpositionSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0;
};

// Prometheus text-format exposition of a metrics snapshot.
//
// Writer: counters become `# TYPE <n> counter` + one sample, gauges the
// same with type gauge, histograms become the standard cumulative
// `<n>_bucket{le="..."}` series (including le="+Inf") plus `<n>_sum` and
// `<n>_count`. Metric names are sanitized (dots and other invalid
// characters -> underscores) since wimpi names use dotted paths.
//
// Parser: reads the same subset of the format back into samples, so tests
// and tools can round-trip an exposition without a real Prometheus.
class ExpositionFormat {
 public:
  static std::string Write(const RegistrySnapshot& snapshot);

  // Convenience: snapshot + write the global registry.
  static std::string WriteGlobal();

  // Maps a dotted wimpi metric name to a valid Prometheus name.
  static std::string SanitizeName(const std::string& name);

  // Parses exposition text ("# ..." comments skipped). Returns false and
  // fills *error on a malformed sample line.
  static bool Parse(const std::string& text,
                    std::vector<ExpositionSample>* out, std::string* error);
};

}  // namespace wimpi::obs

#endif  // WIMPI_OBS_EXPORT_EXPOSITION_H_
