#ifndef WIMPI_OBS_EXPORT_EXPOSITION_H_
#define WIMPI_OBS_EXPORT_EXPOSITION_H_

#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace wimpi::obs {

// One scraped sample: metric name plus optional labels, e.g.
// {name:"pool_task_run_us_bucket", labels:{{"le","3.2"}}, value:17}.
struct ExpositionSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0;
};

// Per-metric metadata parsed back from `# HELP` / `# TYPE` comment lines,
// keyed by the (sanitized) metric name.
struct ExpositionMeta {
  std::string type;  // "counter" | "gauge" | "histogram"
  std::string help;
};

// Prometheus text-format exposition of a metrics snapshot.
//
// Writer: every metric family gets a `# HELP <n> <text>` line (help text
// from a built-in description table) and a `# TYPE <n> <kind>` line;
// counters and gauges emit one sample, histograms the standard cumulative
// `<n>_bucket{le="..."}` series (including le="+Inf") plus `<n>_sum` and
// `<n>_count`. Metric names are sanitized (dots and other invalid
// characters -> underscores) since wimpi names use dotted paths; label
// values are escaped per the exposition format (backslash, quote,
// newline).
//
// Parser: reads the same subset of the format back into samples — both
// comment forms round-trip through the optional metadata map — so tests
// and tools can consume an exposition without a real Prometheus.
class ExpositionFormat {
 public:
  static std::string Write(const RegistrySnapshot& snapshot);

  // Convenience: snapshot + write the global registry.
  static std::string WriteGlobal();

  // Maps a dotted wimpi metric name to a valid Prometheus name.
  static std::string SanitizeName(const std::string& name);

  // One-line human description for a (dotted) wimpi metric name, used
  // for the `# HELP` line. Unknown names get a generic description.
  static std::string HelpFor(const std::string& name);

  // Escapes a label value for the exposition format: backslash, double
  // quote, and newline get backslash escapes.
  static std::string EscapeLabelValue(const std::string& value);

  // Parses exposition text. `# HELP` / `# TYPE` comments are captured
  // into *meta when given (other comments are skipped). Returns false
  // and fills *error (with a line number) on a malformed sample line;
  // samples before the malformed line are kept in *out so callers can
  // recover what was parseable.
  static bool Parse(const std::string& text,
                    std::vector<ExpositionSample>* out, std::string* error);
  static bool Parse(const std::string& text,
                    std::vector<ExpositionSample>* out,
                    std::map<std::string, ExpositionMeta>* meta,
                    std::string* error);
};

}  // namespace wimpi::obs

#endif  // WIMPI_OBS_EXPORT_EXPOSITION_H_
