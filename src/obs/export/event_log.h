#ifndef WIMPI_OBS_EXPORT_EVENT_LOG_H_
#define WIMPI_OBS_EXPORT_EVENT_LOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace wimpi::obs {

class Counter;

enum class EventLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* EventLevelName(EventLevel level);

// One typed key/value pair of a structured event. Numbers stay numbers in
// the JSONL rendering so consumers never parse strings back into doubles.
struct EventField {
  EventField(std::string k, std::string v)
      : key(std::move(k)), str(std::move(v)), is_number(false) {}
  EventField(std::string k, double v)
      : key(std::move(k)), num(v), is_number(true) {}
  EventField(std::string k, int64_t v)
      : EventField(std::move(k), static_cast<double>(v)) {}
  EventField(std::string k, int v)
      : EventField(std::move(k), static_cast<double>(v)) {}

  std::string key;
  std::string str;
  double num = 0;
  bool is_number;
};

// One recorded event: a component ("cluster", "scheduler", ...), a
// machine-matchable event name ("attempt.failed"), and flat fields.
struct EventRecord {
  int64_t ts_us = 0;
  EventLevel level = EventLevel::kInfo;
  std::string component;
  std::string event;
  int tid = 0;
  std::vector<EventField> fields;
};

// Process-wide structured event log: leveled, ring-buffered, thread-safe.
// Replaces free-form WIMPI_LOG strings on the cluster/fault/scheduler
// paths with machine-parseable JSONL. Off by default — a disabled log
// costs one relaxed atomic load per call site; nothing else runs.
//
// The ring bounds memory on long runs: once `capacity` events are held the
// oldest are evicted and `dropped()` counts what was lost, so consumers
// can tell a complete log from a truncated one.
class EventLog {
 public:
  static EventLog& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  // Events below this level are discarded at Record() time.
  void set_min_level(EventLevel level);
  EventLevel min_level() const;

  // Ring size; shrinking evicts oldest events immediately.
  void set_capacity(size_t capacity);

  void Record(EventLevel level, std::string component, std::string event,
              std::vector<EventField> fields = {});

  std::vector<EventRecord> Snapshot() const;
  size_t size() const;
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  void Clear();

  // One JSON object per line:
  //   {"ts_us":...,"level":"info","component":"cluster",
  //    "event":"attempt.failed","tid":0,<fields...>}
  std::string ToJsonl() const;

  // Returns false (and logs) when the file cannot be written.
  bool WriteFile(const std::string& path) const;

 private:
  EventLog() = default;

  // Bumps dropped_ and mirrors it into the registry's "eventlog.dropped"
  // counter so scrapers see evictions without polling dropped().
  void NoteDropped();

  std::atomic<bool> enabled_{false};
  std::atomic<int> min_level_{static_cast<int>(EventLevel::kInfo)};
  std::atomic<int64_t> dropped_{0};
  std::atomic<Counter*> dropped_counter_{nullptr};
  mutable std::mutex mu_;
  size_t capacity_ = 4096;
  std::deque<EventRecord> events_;
};

}  // namespace wimpi::obs

#endif  // WIMPI_OBS_EXPORT_EVENT_LOG_H_
