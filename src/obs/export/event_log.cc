#include "obs/export/event_log.h"

#include <cstdio>

#include "common/json.h"
#include "common/logging.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace wimpi::obs {

const char* EventLevelName(EventLevel level) {
  switch (level) {
    case EventLevel::kDebug:
      return "debug";
    case EventLevel::kInfo:
      return "info";
    case EventLevel::kWarn:
      return "warn";
    case EventLevel::kError:
      return "error";
  }
  return "info";
}

EventLog& EventLog::Global() {
  static EventLog* log = new EventLog();
  return *log;
}

void EventLog::set_min_level(EventLevel level) {
  min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
}

EventLevel EventLog::min_level() const {
  return static_cast<EventLevel>(min_level_.load(std::memory_order_relaxed));
}

void EventLog::NoteDropped() {
  dropped_.fetch_add(1, std::memory_order_relaxed);
  // Resolve the registry counter once; Counter::Add is lock-free, so
  // holding mu_ across the bump cannot invert lock order with the
  // registry (only the first resolution takes the registry mutex, and
  // the registry never calls back into the event log).
  Counter* c = dropped_counter_.load(std::memory_order_acquire);
  if (c == nullptr) {
    c = &MetricsRegistry::Global().counter("eventlog.dropped");
    dropped_counter_.store(c, std::memory_order_release);
  }
  c->Add(1);
}

void EventLog::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  while (events_.size() > capacity_) {
    events_.pop_front();
    NoteDropped();
  }
}

void EventLog::Record(EventLevel level, std::string component,
                      std::string event, std::vector<EventField> fields) {
  // Call sites on hot paths guard on enabled() before building fields;
  // this re-check makes unguarded calls safe too.
  if (!enabled()) return;
  if (static_cast<int>(level) < min_level_.load(std::memory_order_relaxed)) {
    return;
  }
  EventRecord rec;
  rec.ts_us = NowMicros();
  rec.level = level;
  rec.component = std::move(component);
  rec.event = std::move(event);
  rec.tid = TraceSink::CurrentThreadId();
  rec.fields = std::move(fields);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(rec));
  while (events_.size() > capacity_) {
    events_.pop_front();
    NoteDropped();
  }
}

std::vector<EventRecord> EventLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {events_.begin(), events_.end()};
}

size_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void EventLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

std::string EventLog::ToJsonl() const {
  const std::vector<EventRecord> events = Snapshot();
  std::string out;
  for (const EventRecord& rec : events) {
    JsonWriter w;
    w.BeginObject()
        .Key("ts_us").Int(rec.ts_us)
        .Key("level").String(EventLevelName(rec.level))
        .Key("component").String(rec.component)
        .Key("event").String(rec.event)
        .Key("tid").Int(rec.tid);
    for (const EventField& f : rec.fields) {
      w.Key(f.key);
      if (f.is_number) {
        w.Double(f.num);
      } else {
        w.String(f.str);
      }
    }
    w.EndObject();
    out += w.str();
    out += '\n';
  }
  return out;
}

bool EventLog::WriteFile(const std::string& path) const {
  const std::string text = ToJsonl();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    WIMPI_LOG(Error) << "cannot open event log file " << path;
    return false;
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  // fclose flushes; a full disk can surface only here.
  const bool closed = std::fclose(f) == 0;
  if (written != text.size() || !closed) {
    WIMPI_LOG(Error) << "short write to event log file " << path;
    return false;
  }
  return true;
}

}  // namespace wimpi::obs
