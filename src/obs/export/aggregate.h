#ifndef WIMPI_OBS_EXPORT_AGGREGATE_H_
#define WIMPI_OBS_EXPORT_AGGREGATE_H_

#include <map>
#include <string>
#include <vector>

namespace wimpi::obs {

// Rolls per-node scalar snapshots up into cluster-level statistics. Each
// input map is one node's metrics (same key space across nodes, missing
// keys treated as 0). For every key K the result holds:
//   K.min / K.max / K.sum / K.mean   — over all nodes
//   K.skew                          — max / mean (0 when mean is 0); the
//                                     straggler signal: 1.0 = perfectly
//                                     balanced, larger = one node is doing
//                                     disproportionate work.
std::map<std::string, double> AggregateNodeScalars(
    const std::vector<std::map<std::string, double>>& per_node);

}  // namespace wimpi::obs

#endif  // WIMPI_OBS_EXPORT_AGGREGATE_H_
