#include "obs/export/aggregate.h"

#include <algorithm>
#include <set>

namespace wimpi::obs {

std::map<std::string, double> AggregateNodeScalars(
    const std::vector<std::map<std::string, double>>& per_node) {
  std::map<std::string, double> out;
  if (per_node.empty()) return out;
  std::set<std::string> keys;
  for (const auto& node : per_node) {
    for (const auto& [k, _] : node) keys.insert(k);
  }
  const double n = static_cast<double>(per_node.size());
  for (const std::string& k : keys) {
    double mn = 0, mx = 0, sum = 0;
    bool first = true;
    for (const auto& node : per_node) {
      const auto it = node.find(k);
      const double v = it == node.end() ? 0.0 : it->second;
      mn = first ? v : std::min(mn, v);
      mx = first ? v : std::max(mx, v);
      sum += v;
      first = false;
    }
    const double mean = sum / n;
    out[k + ".min"] = mn;
    out[k + ".max"] = mx;
    out[k + ".sum"] = sum;
    out[k + ".mean"] = mean;
    out[k + ".skew"] = mean == 0 ? 0 : mx / mean;
  }
  return out;
}

}  // namespace wimpi::obs
