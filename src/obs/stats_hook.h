#ifndef WIMPI_OBS_STATS_HOOK_H_
#define WIMPI_OBS_STATS_HOOK_H_

#include <atomic>

// Minimal hook header included by exec/counters.h (which obs/profiler.h
// itself includes — hence no profiler types here, only a forward
// declaration). QueryStats::Add calls the hook so each recorded OpStats
// lands on the profile node that is innermost at Add time; with no
// profiler installed the hook is a single relaxed load.

namespace wimpi::exec {
struct OpStats;
}  // namespace wimpi::exec

namespace wimpi::obs::internal {

extern std::atomic<bool> g_stats_hook_armed;

inline bool StatsHookArmed() {
  return g_stats_hook_armed.load(std::memory_order_relaxed);
}

// Defined in profiler.cc: copies `s` onto the current profile node when the
// calling thread owns the active profiler, else no-op.
void OpStatsAdded(const exec::OpStats& s);

}  // namespace wimpi::obs::internal

#endif  // WIMPI_OBS_STATS_HOOK_H_
