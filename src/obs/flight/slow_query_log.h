#ifndef WIMPI_OBS_FLIGHT_SLOW_QUERY_LOG_H_
#define WIMPI_OBS_FLIGHT_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/flight/resource_report.h"

namespace wimpi::obs::flight {

// One slow-query-log entry: why the query tripped a tail-based trigger
// ("latency" = over its objective, "status" = cancelled/timed out/
// rejected, "fault" = a cluster fault fired during it) plus its full
// resource report.
struct SlowQueryEntry {
  int64_t ts_us = 0;  // finish time
  std::string label;
  std::string session;
  std::string status;   // Status::CodeName
  std::string trigger;  // "latency" | "status" | "fault"
  double priority = 0;
  QueryResourceReport report;
};

// Process-wide structured slow-query log: bounded ring, thread-safe,
// always on. Entries arrive only from tail-based triggers, so the mutex
// is off the per-query fast path entirely — a service meeting its SLOs
// never appends.
class SlowQueryLog {
 public:
  static SlowQueryLog& Global();

  void Append(SlowQueryEntry entry);

  std::vector<SlowQueryEntry> Snapshot() const;
  size_t size() const;
  int64_t total() const;  // lifetime appends (survives ring eviction)
  void Clear();
  void set_capacity(size_t capacity);

  // One flat JSON object per line, e.g.
  //   {"ts_us":...,"query":7,"label":"q18","session":"s0","status":
  //    "OK","trigger":"latency","priority":1,"wall_us":...,"cpu_us":...}
  std::string ToJsonl() const;
  bool WriteFile(const std::string& path) const;

 private:
  SlowQueryLog() = default;

  mutable std::mutex mu_;
  size_t capacity_ = 256;
  int64_t total_ = 0;
  std::deque<SlowQueryEntry> entries_;
};

}  // namespace wimpi::obs::flight

#endif  // WIMPI_OBS_FLIGHT_SLOW_QUERY_LOG_H_
