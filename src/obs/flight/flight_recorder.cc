#include "obs/flight/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <utility>

#include "common/json.h"
#include "common/logging.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace wimpi::obs::flight {

namespace {

constexpr size_t kDefaultRingEvents = 8192;
constexpr size_t kWordsPerEvent = 4;
// Retroactive window for fault-triggered dumps.
constexpr int64_t kFaultWindowUs = 5 * 1000 * 1000;

// word2 packs (kind << 32) | uint32(a).
uint64_t PackKindA(EventKind kind, int32_t a) {
  return (static_cast<uint64_t>(kind) << 32) |
         static_cast<uint32_t>(a);
}

}  // namespace

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kQuerySubmit:
      return "query.submit";
    case EventKind::kQueueEnter:
      return "queue.enter";
    case EventKind::kQueryAdmit:
      return "query.admit";
    case EventKind::kQueryReject:
      return "query.reject";
    case EventKind::kQueryCancelQueued:
      return "query.cancel_queued";
    case EventKind::kQueryFinish:
      return "query.finish";
    case EventKind::kPipelineStart:
      return "pipeline.start";
    case EventKind::kPipelineEnd:
      return "pipeline.end";
    case EventKind::kMorselBatch:
      return "morsel.batch";
    case EventKind::kPoolTask:
      return "pool.task";
    case EventKind::kClusterFault:
      return "cluster.fault";
    case EventKind::kClusterSteal:
      return "cluster.steal";
    case EventKind::kClusterCkpt:
      return "cluster.ckpt";
  }
  return "unknown";
}

// One thread's ring. Owned (and leaked) by the global registry so a
// reader can snapshot rings of threads that have already exited. Only
// the owning thread writes; head ordering publishes complete events:
// the writer fills the four words with relaxed stores, then bumps head
// with release, and readers load head with acquire before touching
// slots — so every slot *below* head holds a fully written event except
// the currently-overwritten one at the wrap frontier, which the reader
// filters by timestamp plausibility.
struct FlightRecorder::Ring {
  explicit Ring(int thread_id, size_t capacity_events)
      : tid(thread_id),
        capacity(capacity_events),
        words(std::make_unique<std::atomic<uint64_t>[]>(capacity_events *
                                                        kWordsPerEvent)) {}

  const int tid;
  const size_t capacity;
  std::atomic<uint64_t> head{0};  // events ever written by this ring
  std::unique_ptr<std::atomic<uint64_t>[]> words;

  void Push(int64_t ts_us, uint64_t query, EventKind kind, int32_t a,
            int64_t b) {
    const uint64_t h = head.load(std::memory_order_relaxed);
    const size_t base = (h % capacity) * kWordsPerEvent;
    words[base + 0].store(static_cast<uint64_t>(ts_us),
                          std::memory_order_relaxed);
    words[base + 1].store(query, std::memory_order_relaxed);
    words[base + 2].store(PackKindA(kind, a), std::memory_order_relaxed);
    words[base + 3].store(static_cast<uint64_t>(b),
                          std::memory_order_relaxed);
    head.store(h + 1, std::memory_order_release);
  }
};

thread_local FlightRecorder::Ring* FlightRecorder::t_ring_ = nullptr;

FlightRecorder::FlightRecorder() : ring_capacity_(kDefaultRingEvents) {
  const char* env = std::getenv("WIMPI_FLIGHT_DISABLE");
  if (env != nullptr && env[0] == '1') {
    enabled_.store(false, std::memory_order_relaxed);
  }
  const char* fault_path = std::getenv("WIMPI_FLIGHT_FAULT_DUMP");
  if (fault_path != nullptr && fault_path[0] != '\0') {
    fault_dump_path_ = fault_path;
    fault_dumps_left_ = 4;
  }
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::set_ring_capacity(size_t events) {
  ring_capacity_.store(events == 0 ? 1 : events, std::memory_order_relaxed);
}

FlightRecorder::Ring* FlightRecorder::RegisterRing() {
  auto* ring = new Ring(TraceSink::CurrentThreadId(),
                        ring_capacity_.load(std::memory_order_relaxed));
  std::lock_guard<std::mutex> lock(rings_mu_);
  rings_.push_back(ring);
  return ring;
}

void FlightRecorder::Record(EventKind kind, uint64_t query, int32_t a,
                            int64_t b) {
  FlightRecorder& g = Global();
  if (!g.enabled_.load(std::memory_order_relaxed)) return;
  Ring* ring = t_ring_;
  if (ring == nullptr) ring = t_ring_ = g.RegisterRing();
  ring->Push(NowMicros(), query, kind, a, b);
}

void FlightRecorder::NoteFault(int32_t node, int64_t detail) {
  FlightRecorder& g = Global();
  if (!g.enabled_.load(std::memory_order_relaxed)) return;
  Record(EventKind::kClusterFault, 0, node, detail);
  MetricsRegistry::Global().counter("flight.trigger.fault").Add(1);
  std::string path;
  {
    std::lock_guard<std::mutex> lock(g.fault_mu_);
    if (g.fault_dump_path_.empty() || g.fault_dumps_left_ <= 0) return;
    --g.fault_dumps_left_;
    path = g.fault_dump_path_;
    if (g.fault_dump_seq_ > 0) {
      path += '.';
      path += std::to_string(g.fault_dump_seq_);
    }
    ++g.fault_dump_seq_;
  }
  g.DumpSince(NowMicros() - kFaultWindowUs, path);
}

void FlightRecorder::SetFaultDumpPath(std::string path, int max_dumps) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  fault_dump_path_ = std::move(path);
  fault_dumps_left_ = max_dumps;
  fault_dump_seq_ = 0;
}

void FlightRecorder::AppendRingEvents(const Ring& ring, int64_t since_us,
                                      std::vector<FlightEvent>* out) const {
  const uint64_t head = ring.head.load(std::memory_order_acquire);
  const uint64_t resident = std::min<uint64_t>(head, ring.capacity);
  const int64_t now = NowMicros();
  for (uint64_t i = head - resident; i < head; ++i) {
    const size_t base = (i % ring.capacity) * kWordsPerEvent;
    FlightEvent e;
    e.ts_us = static_cast<int64_t>(
        ring.words[base + 0].load(std::memory_order_relaxed));
    e.query = ring.words[base + 1].load(std::memory_order_relaxed);
    const uint64_t ka = ring.words[base + 2].load(std::memory_order_relaxed);
    e.kind = static_cast<EventKind>(ka >> 32);
    e.a = static_cast<int32_t>(static_cast<uint32_t>(ka));
    e.b = static_cast<int64_t>(
        ring.words[base + 3].load(std::memory_order_relaxed));
    e.tid = ring.tid;
    // Torn-record filter: a slot the writer is overwriting right now can
    // mix words of two events. Timestamps outside (0, now] or kinds off
    // the enum are impossible for a complete record — drop them.
    if (e.ts_us <= 0 || e.ts_us > now) continue;
    if ((ka >> 32) < 1 ||
        (ka >> 32) > static_cast<uint64_t>(EventKind::kClusterCkpt)) {
      continue;
    }
    if (e.ts_us < since_us) continue;
    out->push_back(e);
  }
}

std::vector<FlightEvent> FlightRecorder::SnapshotSince(
    int64_t since_us) const {
  std::vector<FlightEvent> out;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    for (const Ring* ring : rings_) {
      AppendRingEvents(*ring, since_us, &out);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightEvent& x, const FlightEvent& y) {
                     return x.ts_us < y.ts_us;
                   });
  return out;
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  return SnapshotSince(0);
}

int64_t FlightRecorder::TotalRecorded() const {
  std::lock_guard<std::mutex> lock(rings_mu_);
  int64_t total = 0;
  for (const Ring* ring : rings_) {
    total += static_cast<int64_t>(ring->head.load(std::memory_order_relaxed));
  }
  return total;
}

int64_t FlightRecorder::TotalDropped() const {
  std::lock_guard<std::mutex> lock(rings_mu_);
  int64_t dropped = 0;
  for (const Ring* ring : rings_) {
    const uint64_t head = ring->head.load(std::memory_order_relaxed);
    if (head > ring->capacity) {
      dropped += static_cast<int64_t>(head - ring->capacity);
    }
  }
  return dropped;
}

size_t FlightRecorder::ring_count() const {
  std::lock_guard<std::mutex> lock(rings_mu_);
  return rings_.size();
}

namespace {

void WriteEventArgs(JsonWriter& w, const FlightEvent& e) {
  w.Key("args")
      .BeginObject()
      .Key("query").Int(static_cast<int64_t>(e.query))
      .Key("a").Int(e.a)
      .Key("b").Int(e.b)
      .EndObject();
}

void WriteTraceEvent(JsonWriter& w, const char* name, const char* cat,
                     char phase, int pid, int tid, int64_t ts_us,
                     int64_t dur_us) {
  w.BeginObject()
      .Key("name").String(name)
      .Key("cat").String(cat)
      .Key("ph").String(std::string(1, phase))
      .Key("ts").Int(ts_us)
      .Key("pid").Int(pid)
      .Key("tid").Int(tid);
  if (phase == 'X') w.Key("dur").Int(dur_us);
}

}  // namespace

std::string FlightRecorder::ToChromeTrace(
    const std::vector<FlightEvent>& events) {
  JsonWriter w;
  w.BeginObject().Key("traceEvents").BeginArray();

  // Query lanes (pid 2): one 'X' span per query whose submit (or first
  // sighting) and finish both fall inside the window; open-ended queries
  // get a zero-length marker at their first event instead.
  struct QuerySpanInfo {
    int64_t first_ts = 0;
    int64_t finish_ts = -1;
    int32_t status = -1;
    int64_t wall_us = 0;
    int lane = 0;
  };
  std::map<uint64_t, QuerySpanInfo> queries;
  int next_lane = 0;
  for (const FlightEvent& e : events) {
    if (e.query == 0) continue;
    auto [it, inserted] = queries.emplace(e.query, QuerySpanInfo{});
    if (inserted) {
      it->second.first_ts = e.ts_us;
      it->second.lane = next_lane++;
    }
    if (e.kind == EventKind::kQueryFinish ||
        e.kind == EventKind::kQueryReject ||
        e.kind == EventKind::kQueryCancelQueued) {
      it->second.finish_ts = e.ts_us;
      it->second.status =
          e.kind == EventKind::kQueryCancelQueued ? -2 : e.a;
      it->second.wall_us = e.b;
    }
  }
  for (const auto& [query, info] : queries) {
    const int64_t end = info.finish_ts >= 0 ? info.finish_ts : info.first_ts;
    w.BeginObject()
        .Key("name").String("query-" + std::to_string(query))
        .Key("cat").String("flight.query")
        .Key("ph").String("X")
        .Key("ts").Int(info.first_ts)
        .Key("dur").Int(std::max<int64_t>(end - info.first_ts, 1))
        .Key("pid").Int(2)
        .Key("tid").Int(info.lane)
        .Key("args")
        .BeginObject()
        .Key("query").Int(static_cast<int64_t>(query))
        .Key("status").Int(info.status)
        .Key("wall_us").Int(info.wall_us)
        .EndObject()
        .EndObject();
  }

  // Pipeline spans (pid 1): match start/end pairs per (tid, query) as a
  // stack — the driver thread records both ends of each pipeline.
  std::map<std::pair<int, uint64_t>, std::vector<const FlightEvent*>> open;
  for (const FlightEvent& e : events) {
    if (e.kind == EventKind::kPipelineStart) {
      open[{e.tid, e.query}].push_back(&e);
    } else if (e.kind == EventKind::kPipelineEnd) {
      auto& stack = open[{e.tid, e.query}];
      if (stack.empty()) continue;  // start fell off the ring
      const FlightEvent* start = stack.back();
      stack.pop_back();
      w.BeginObject()
          .Key("name").String("pipeline")
          .Key("cat").String("flight.pipeline")
          .Key("ph").String("X")
          .Key("ts").Int(start->ts_us)
          .Key("dur").Int(std::max<int64_t>(e.ts_us - start->ts_us, 1))
          .Key("pid").Int(1)
          .Key("tid").Int(e.tid)
          .Key("args")
          .BeginObject()
          .Key("query").Int(static_cast<int64_t>(e.query))
          .Key("morsels").Int(start->a)
          .Key("rows").Int(start->b)
          .EndObject()
          .EndObject();
    }
  }

  // Every record as an instant on its thread row.
  for (const FlightEvent& e : events) {
    WriteTraceEvent(w, EventKindName(e.kind), "flight.event", 'i', 1, e.tid,
                    e.ts_us, 0);
    w.Key("s").String("t");  // instant scope: thread
    WriteEventArgs(w, e);
    w.EndObject();
  }

  w.EndArray().Key("displayTimeUnit").String("ms").EndObject();
  return w.str();
}

std::string FlightRecorder::ToJsonl(const std::vector<FlightEvent>& events) {
  std::string out;
  for (const FlightEvent& e : events) {
    JsonWriter w;
    w.BeginObject()
        .Key("ts_us").Int(e.ts_us)
        .Key("kind").String(EventKindName(e.kind))
        .Key("query").Int(static_cast<int64_t>(e.query))
        .Key("tid").Int(e.tid)
        .Key("a").Int(e.a)
        .Key("b").Int(e.b)
        .EndObject();
    out += w.str();
    out += '\n';
  }
  return out;
}

namespace {

bool WriteWholeFile(const std::string& path, const std::string& text,
                    std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != text.size() || !closed) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

}  // namespace

bool FlightRecorder::DumpSince(int64_t since_us, const std::string& path,
                               std::string* error) const {
  const std::vector<FlightEvent> events = SnapshotSince(since_us);
  if (events.empty()) {
    if (error != nullptr) *error = "flight window is empty";
    return false;
  }
  if (!WriteWholeFile(path, ToChromeTrace(events), error)) return false;
  if (!WriteWholeFile(path + ".jsonl", ToJsonl(events), error)) return false;
  MetricsRegistry::Global().counter("flight.dumps").Add(1);
  return true;
}

}  // namespace wimpi::obs::flight
