#include "obs/flight/slow_query_log.h"

#include <cstdio>
#include <utility>

#include "common/json.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace wimpi::obs::flight {

SlowQueryLog& SlowQueryLog::Global() {
  static SlowQueryLog* log = new SlowQueryLog();
  return *log;
}

void SlowQueryLog::Append(SlowQueryEntry entry) {
  MetricsRegistry::Global().counter("slowlog.entries").Add(1);
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  entries_.push_back(std::move(entry));
  while (entries_.size() > capacity_) entries_.pop_front();
}

std::vector<SlowQueryEntry> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {entries_.begin(), entries_.end()};
}

size_t SlowQueryLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

int64_t SlowQueryLog::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  total_ = 0;
}

void SlowQueryLog::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  while (entries_.size() > capacity_) entries_.pop_front();
}

std::string SlowQueryLog::ToJsonl() const {
  const std::vector<SlowQueryEntry> entries = Snapshot();
  std::string out;
  for (const SlowQueryEntry& e : entries) {
    const QueryResourceReport& r = e.report;
    JsonWriter w;
    w.BeginObject()
        .Key("ts_us").Int(e.ts_us)
        .Key("query").Int(static_cast<int64_t>(r.query_id))
        .Key("label").String(e.label)
        .Key("session").String(e.session)
        .Key("status").String(e.status)
        .Key("trigger").String(e.trigger)
        .Key("priority").Double(e.priority)
        .Key("wall_us").Int(r.wall_us)
        .Key("queue_wait_us").Int(r.queue_wait_us)
        .Key("exec_us").Int(r.exec_us)
        .Key("cpu_us").Int(r.cpu_us)
        .Key("driver_cpu_us").Int(r.driver_cpu_us)
        .Key("worker_cpu_us").Int(r.worker_cpu_us)
        .Key("pipelines").Int(r.pipelines)
        .Key("tasks").Int(r.tasks)
        .Key("rows").Int(r.rows)
        .Key("bytes_scanned").Double(r.bytes_scanned)
        .Key("mem_peak_bytes").Double(r.mem_peak_bytes)
        .Key("threads").Int(r.threads)
        .EndObject();
    out += w.str();
    out += '\n';
  }
  return out;
}

bool SlowQueryLog::WriteFile(const std::string& path) const {
  const std::string text = ToJsonl();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    WIMPI_LOG(Error) << "cannot open slow-query log file " << path;
    return false;
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != text.size() || !closed) {
    WIMPI_LOG(Error) << "short write to slow-query log file " << path;
    return false;
  }
  return true;
}

}  // namespace wimpi::obs::flight
