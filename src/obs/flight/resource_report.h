#ifndef WIMPI_OBS_FLIGHT_RESOURCE_REPORT_H_
#define WIMPI_OBS_FLIGHT_RESOURCE_REPORT_H_

#include <cstdint>

#include "obs/timeline/timeline.h"

namespace wimpi::obs::flight {

// Per-query resource accounting, attached to every QueryTicket and
// emitted to the slow-query log. CPU time is real thread CPU time
// (CLOCK_THREAD_CPUTIME_ID): the driver measures itself across the whole
// execution, pool workers accumulate per remote morsel task, so
// cpu_us = driver_cpu_us + worker_cpu_us never double-counts (driver-run
// morsels are inside the driver's own window). `rows`/`tasks` count the
// fair-scheduled parallel path; sequential phases show up in CPU and
// wall time but not in morsel counts.
struct QueryResourceReport {
  uint64_t query_id = 0;
  int64_t wall_us = 0;        // submit -> finish
  int64_t queue_wait_us = 0;  // submit -> admit (or finish, if never admitted)
  int64_t exec_us = 0;        // admit -> finish (0 if never admitted)
  int64_t cpu_us = 0;         // driver + workers
  int64_t driver_cpu_us = 0;
  int64_t worker_cpu_us = 0;
  int64_t pipelines = 0;      // parallel pipelines run
  int64_t tasks = 0;          // morsel tasks run
  int64_t rows = 0;           // rows processed by those tasks
  double bytes_scanned = 0;   // QueryStats sequential bytes
  double mem_peak_bytes = 0;  // QueryStats peak intermediates
  int threads = 0;            // thread budget the query ran with

  // When the timeline sampler was running while this query executed, its
  // submit->finish slice of the sampled series rides along (bandwidth /
  // IPC / occupancy over time — see obs/timeline/). The copy the
  // slow-query log keeps omits it: log entries stay small, the full
  // series lands in the flight dump's .timeline.jsonl sidecar instead.
  bool timeline_valid = false;
  timeline::QueryTimeline timeline;
};

}  // namespace wimpi::obs::flight

#endif  // WIMPI_OBS_FLIGHT_RESOURCE_REPORT_H_
