#ifndef WIMPI_OBS_FLIGHT_FLIGHT_RECORDER_H_
#define WIMPI_OBS_FLIGHT_FLIGHT_RECORDER_H_

// Always-on flight recorder (ISSUE #7 tentpole).
//
// Every thread that records gets its own fixed-capacity ring of compact
// 32-byte event records; recording is wait-free and unconditional:
//   one relaxed load (the global enable flag), four relaxed stores (the
//   event words), one release store (the ring head). No lock, no
//   allocation, no clock syscall beyond the monotonic NowMicros read.
// The rings keep the last few thousand events per thread — enough recent
// history that when a query blows its latency objective, gets cancelled,
// times out, or a cluster fault fires, the service can *retroactively*
// dump the window around it as a Chrome trace + JSONL without anyone
// having asked for tracing up front.
//
// Overwritten events are simply lost (that is the point of a flight
// recorder: bounded memory, newest history wins). A reader snapshotting a
// ring concurrently with its writer can observe a torn event at the wrap
// frontier; Snapshot() drops records whose timestamp is outside the
// plausible window instead of crashing — diagnostics may lose one event,
// the engine never blocks. All ring words are std::atomic so TSan sees
// plain relaxed accesses, not data races.
//
// The recorder is enabled by default (set WIMPI_FLIGHT_DISABLE=1 to turn
// it off); determinism is unaffected either way — recording writes only
// telemetry words, never anything an operator reads.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace wimpi::obs::flight {

// Compact event taxonomy. `a` and `b` are kind-specific payloads (see the
// Record call sites); `query` is the service-wide query id (0 = none).
enum class EventKind : uint32_t {
  kQuerySubmit = 1,   // a = priority permille, b = estimated bytes
  kQueueEnter = 2,    // a = queue depth after the push
  kQueryAdmit = 3,    // a = running count, b = queue wait us
  kQueryReject = 4,   // a = StatusCode, b = queue wait us
  kQueryCancelQueued = 5,  // b = queue wait us
  kQueryFinish = 6,   // a = StatusCode, b = wall us
  kPipelineStart = 7, // a = morsel count, b = total rows
  kPipelineEnd = 8,   // a = morsel count, b = pipeline wall us
  kMorselBatch = 9,   // a = morsel index, b = rows
  kPoolTask = 10,     // a = worker index
  kClusterFault = 11, // a = node id, b = fault detail
  kClusterSteal = 12, // a = thief node, b = victim node << 32 | morsels
  kClusterCkpt = 13,  // a = node id, b = partition << 32 | morsels
};

const char* EventKindName(EventKind kind);

// One decoded flight record.
struct FlightEvent {
  int64_t ts_us = 0;
  uint64_t query = 0;
  EventKind kind = EventKind::kQuerySubmit;
  int tid = 0;      // dense TraceSink thread id of the recording thread
  int32_t a = 0;
  int64_t b = 0;
};

class FlightRecorder {
 public:
  static FlightRecorder& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Ring capacity (events per thread) applied to rings created *after*
  // the call; existing rings keep their size. Test/tool knob.
  void set_ring_capacity(size_t events);

  // The hot path: one relaxed load when disabled; four relaxed stores, a
  // release head bump, and one NowMicros read when enabled.
  static void Record(EventKind kind, uint64_t query, int32_t a = 0,
                     int64_t b = 0);

  // Cluster-fault trigger: records a kClusterFault event, bumps the
  // flight.trigger.fault counter, and — when a fault dump path was
  // configured via SetFaultDumpPath or WIMPI_FLIGHT_FAULT_DUMP — dumps
  // the last few seconds of history retroactively (bounded by the same
  // max-dumps cap the service triggers use).
  static void NoteFault(int32_t node, int64_t detail);
  void SetFaultDumpPath(std::string path, int max_dumps = 4);

  // Point-in-time merge of every thread's ring, oldest first. Torn or
  // implausible records at the wrap frontier are dropped.
  std::vector<FlightEvent> Snapshot() const;
  // Only events with ts_us >= since_us (the retroactive trigger window).
  std::vector<FlightEvent> SnapshotSince(int64_t since_us) const;

  // Lifetime totals across all rings: events recorded, and events lost to
  // ring wrap (recorded minus still resident, clamped at zero per ring).
  int64_t TotalRecorded() const;
  int64_t TotalDropped() const;
  size_t ring_count() const;

  // Renders `events` as a self-contained Chrome trace: one 'X' span per
  // completed query lifecycle (pid 2, cat "flight.query"), one 'X' span
  // per matched pipeline start/end pair on its thread row (pid 1, cat
  // "flight.pipeline"), and every record as an 'i' instant (pid 1, cat
  // "flight.event").
  static std::string ToChromeTrace(const std::vector<FlightEvent>& events);
  // One JSON object per line: {"ts_us":..,"kind":"...","query":..,
  // "tid":..,"a":..,"b":..}.
  static std::string ToJsonl(const std::vector<FlightEvent>& events);

  // Dumps the window since `since_us` to `path` (Chrome trace) and
  // `path + ".jsonl"` (raw records). Returns false and fills *error when
  // either file cannot be written or the window is empty.
  bool DumpSince(int64_t since_us, const std::string& path,
                 std::string* error = nullptr) const;

 private:
  FlightRecorder();

  struct Ring;
  Ring* RegisterRing();
  void AppendRingEvents(const Ring& ring, int64_t since_us,
                        std::vector<FlightEvent>* out) const;

  static thread_local Ring* t_ring_;

  std::atomic<bool> enabled_{true};
  std::atomic<size_t> ring_capacity_;

  mutable std::mutex rings_mu_;
  std::vector<Ring*> rings_;  // leaked: rings outlive their threads

  std::mutex fault_mu_;
  std::string fault_dump_path_;
  int fault_dumps_left_ = 0;
  int fault_dump_seq_ = 0;
};

}  // namespace wimpi::obs::flight

#endif  // WIMPI_OBS_FLIGHT_FLIGHT_RECORDER_H_
