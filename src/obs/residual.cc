#include "obs/residual.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/metrics.h"

namespace wimpi::obs {

namespace {

std::string OpClass(const std::string& op_name) {
  const size_t paren = op_name.find('(');
  return paren == std::string::npos ? op_name : op_name.substr(0, paren);
}

struct ClassAccum {
  double measured = 0;
  double modeled = 0;
};

// Attributes one node's self wall time to the op classes of the OpStats it
// recorded, split proportionally to each class's modeled seconds (a node
// usually holds one class; Filter holds one per conjunct, all "filter").
void AccumulateNode(const ProfileNode& node, const hw::CostModel& model,
                    const hw::HardwareProfile& host, int threads,
                    std::map<std::string, ClassAccum>* acc) {
  if (!node.op_stats.empty()) {
    std::map<std::string, double> modeled_by_class;
    double modeled_total = 0;
    for (const auto& s : node.op_stats) {
      const double sec = model.OpSeconds(host, s, threads);
      modeled_by_class[OpClass(s.op)] += sec;
      modeled_total += sec;
    }
    const double self = std::max(0.0, node.SelfSeconds());
    for (const auto& [cls, sec] : modeled_by_class) {
      ClassAccum& a = (*acc)[cls];
      a.modeled += sec;
      a.measured += modeled_total > 0
                        ? self * (sec / modeled_total)
                        : self / static_cast<double>(modeled_by_class.size());
    }
  }
  for (const auto& c : node.children) {
    AccumulateNode(*c, model, host, threads, acc);
  }
}

}  // namespace

ResidualReport CostModelResiduals(const QueryProfile& profile,
                                  const hw::CostModel& model,
                                  const hw::HardwareProfile& host,
                                  int threads) {
  ResidualReport report;
  report.label = profile.root.name;
  report.threads = threads;

  std::map<std::string, ClassAccum> acc;
  // Children only: the root's own op_stats are plan glue recorded outside
  // any operator scope, with no meaningful wall attribution.
  for (const auto& c : profile.root.children) {
    AccumulateNode(*c, model, host, threads, &acc);
  }

  for (const auto& [_, a] : acc) {
    report.measured_total_seconds += a.measured;
    report.modeled_total_seconds += a.modeled;
  }
  report.anchor = report.modeled_total_seconds > 0
                      ? report.measured_total_seconds /
                            report.modeled_total_seconds
                      : 1.0;

  for (const auto& [cls, a] : acc) {
    ResidualEntry e;
    e.op_class = cls;
    e.measured_seconds = a.measured;
    e.modeled_seconds = a.modeled;
    e.anchored_model_seconds = a.modeled * report.anchor;
    e.residual_seconds = a.measured - e.anchored_model_seconds;
    e.measured_share = report.measured_total_seconds > 0
                           ? a.measured / report.measured_total_seconds
                           : 0;
    e.modeled_share = report.modeled_total_seconds > 0
                          ? a.modeled / report.modeled_total_seconds
                          : 0;
    report.entries.push_back(std::move(e));
  }
  std::sort(report.entries.begin(), report.entries.end(),
            [](const ResidualEntry& a, const ResidualEntry& b) {
              return a.measured_seconds > b.measured_seconds;
            });
  return report;
}

std::string ResidualReport::Format() const {
  std::ostringstream out;
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "Cost-model residuals for %s (threads=%d, anchor=%.3g: "
                "measured %.3f ms vs modeled %.3f ms)\n",
                label.c_str(), threads, anchor,
                measured_total_seconds * 1e3, modeled_total_seconds * 1e3);
  out << buf;
  std::snprintf(buf, sizeof(buf), "  %-18s %12s %12s %12s %8s %8s\n",
                "op class", "measured ms", "model ms", "residual ms",
                "meas %", "model %");
  out << buf;
  for (const auto& e : entries) {
    std::snprintf(buf, sizeof(buf),
                  "  %-18s %12.3f %12.3f %+12.3f %7.1f%% %7.1f%%\n",
                  e.op_class.c_str(), e.measured_seconds * 1e3,
                  e.anchored_model_seconds * 1e3, e.residual_seconds * 1e3,
                  e.measured_share * 100, e.modeled_share * 100);
    out << buf;
  }
  out << "  (model ms are anchored: residuals show share/shape error, not "
         "absolute host speed)\n";
  return out.str();
}

// ---------- Counter residuals ----------

namespace {

double Ratio(double num, double den) {
  if (num < 0 || den <= 0) return -1;
  return num / den;
}

// Physical counters of a subtree: the node's own inclusive counts when it
// has them, else the sum over children (a parent whose scope closed before
// counters were enabled never has counts, but its children might).
PerfCounts SubtreePerf(const ProfileNode& n) {
  if (n.perf_valid) return n.perf;
  PerfCounts sum;
  for (const auto& c : n.children) sum.Accumulate(SubtreePerf(*c));
  return sum;
}

}  // namespace

double CounterResidualEntry::InstructionsPerOp() const {
  return Ratio(
      static_cast<double>(perf.Get(PerfEvent::kInstructions)), compute_ops);
}

double CounterResidualEntry::DramPerSeqByte() const {
  return Ratio(perf.DramBytes(), seq_bytes);
}

double CounterResidualReport::InstructionsPerOp() const {
  return Ratio(static_cast<double>(total.Get(PerfEvent::kInstructions)),
               total_compute_ops);
}

double CounterResidualReport::DramPerSeqByte() const {
  return Ratio(total.DramBytes(), total_seq_bytes);
}

CounterResidualReport CounterResiduals(const QueryProfile& profile) {
  CounterResidualReport report;
  report.label = profile.root.name;
  report.available = profile.perf_valid;
  report.note = profile.perf_note;
  report.total = profile.perf;
  report.total_compute_ops = profile.root.TotalComputeOps();
  report.total_seq_bytes = profile.root.TotalSeqBytes();
  report.total_rand_count = profile.root.TotalRandCount();
  for (const auto& child : profile.root.children) {
    CounterResidualEntry e;
    e.name = child->name;
    e.compute_ops = child->TotalComputeOps();
    e.seq_bytes = child->TotalSeqBytes();
    e.rand_count = child->TotalRandCount();
    e.perf = SubtreePerf(*child);
    report.entries.push_back(std::move(e));
  }
  return report;
}

std::string CounterResidualReport::Format() const {
  std::ostringstream out;
  out << "Counter residuals for " << label
      << " (measured hardware events vs abstract work counters)\n";
  if (!available) {
    out << "  "
        << (note.empty() ? std::string("counters unavailable") : note)
        << "\n";
    return out.str();
  }
  char buf[220];
  auto cell = [](double v, const char* fmt) {
    char b[32];
    if (v < 0) return std::string("-");
    std::snprintf(b, sizeof(b), fmt, v);
    return std::string(b);
  };
  std::snprintf(buf, sizeof(buf),
                "  %-22s %12s %8s %10s %12s %12s %9s %9s\n", "operator",
                "instructions", "IPC", "LLC-miss", "dram MB", "abs Mops",
                "ins/op", "dram/seq");
  out << buf;
  auto line = [&](const std::string& name, const PerfCounts& p, double ops,
                  double ins_per_op, double dram_per_seq) {
    const double ins = static_cast<double>(p.Get(PerfEvent::kInstructions));
    std::snprintf(
        buf, sizeof(buf), "  %-22s %12s %8s %10s %12s %12s %9s %9s\n",
        name.c_str(), cell(ins < 0 ? -1 : ins / 1e6, "%.1fM").c_str(),
        cell(p.Ipc(), "%.2f").c_str(),
        cell(p.LlcMissRate() < 0 ? -1 : p.LlcMissRate() * 100, "%.1f%%")
            .c_str(),
        cell(p.DramBytes() < 0 ? -1 : p.DramBytes() / 1e6, "%.1f").c_str(),
        cell(ops / 1e6, "%.1f").c_str(),
        cell(ins_per_op, "%.2f").c_str(),
        cell(dram_per_seq, "%.2f").c_str());
    out << buf;
  };
  for (const auto& e : entries) {
    line(e.name, e.perf, e.compute_ops, e.InstructionsPerOp(),
         e.DramPerSeqByte());
  }
  line("TOTAL", total, total_compute_ops, InstructionsPerOp(),
       DramPerSeqByte());
  out << "  (ins/op should cluster across operators; dram/seq >> 1 means "
         "the abstract counters under-count traffic, << 1 means LLC "
         "reuse)\n";
  const int missing = [&] {
    int m = 0;
    for (int i = 0; i < PerfCounts::kNumEvents; ++i) {
      if (!total.Has(static_cast<PerfEvent>(i))) ++m;
    }
    return m;
  }();
  if (missing > 0) {
    out << "  (" << missing
        << " event(s) unavailable on this host; '-' columns follow from "
           "that)\n";
  }
  return out.str();
}

// ---------- Cardinality residuals ----------

double QError(double est, double actual) {
  const double e = std::max(est, 1.0);
  const double a = std::max(actual, 1.0);
  return std::max(e / a, a / e);
}

namespace {

struct ClassQAccum {
  int ops = 0;
  double log_sum = 0;  // sum of ln(q) for the geomean
  double max_q = 1;
  CardinalityEntry worst;
};

void CollectProfileOps(const ProfileNode& node,
                       std::vector<exec::OpStats>* out) {
  out->insert(out->end(), node.op_stats.begin(), node.op_stats.end());
  for (const auto& c : node.children) CollectProfileOps(*c, out);
}

}  // namespace

CardinalityReport CardinalityResiduals(const std::vector<exec::OpStats>& ops,
                                       std::string label) {
  CardinalityReport report;
  report.label = std::move(label);
  std::map<std::string, ClassQAccum> classes;
  double log_sum = 0;
  for (const exec::OpStats& s : ops) {
    if (s.rows_out < 0) continue;  // no actual recorded
    ++report.recorded;
    if (s.est_rows < 0) continue;  // no estimator was installed / no stats
    ++report.estimated;
    CardinalityEntry e;
    e.op = s.op;
    e.rows_in = s.rows_in;
    e.rows_out = s.rows_out;
    e.est_rows = s.est_rows;
    e.q_error = QError(s.est_rows, s.rows_out);
    log_sum += std::log(e.q_error);
    if (e.q_error > report.max_q) report.max_q = e.q_error;
    ClassQAccum& a = classes[OpClass(s.op)];
    ++a.ops;
    a.log_sum += std::log(e.q_error);
    if (a.ops == 1 || e.q_error > a.max_q) {
      a.max_q = e.q_error;
      a.worst = e;
    }
    report.entries.push_back(std::move(e));
  }
  std::sort(report.entries.begin(), report.entries.end(),
            [](const CardinalityEntry& a, const CardinalityEntry& b) {
              return a.q_error > b.q_error;
            });
  report.geomean_q =
      report.estimated > 0 ? std::exp(log_sum / report.estimated) : 1;
  for (auto& [cls, a] : classes) {
    CardinalityClassEntry c;
    c.op_class = cls;
    c.ops = a.ops;
    c.max_q = a.max_q;
    c.geomean_q = a.ops > 0 ? std::exp(a.log_sum / a.ops) : 1;
    c.worst = std::move(a.worst);
    report.classes.push_back(std::move(c));
  }
  std::sort(report.classes.begin(), report.classes.end(),
            [](const CardinalityClassEntry& a, const CardinalityClassEntry& b) {
              return a.max_q > b.max_q;
            });
  return report;
}

CardinalityReport CardinalityResiduals(const exec::QueryStats& stats,
                                       std::string label) {
  return CardinalityResiduals(stats.ops, std::move(label));
}

CardinalityReport CardinalityResiduals(const QueryProfile& profile) {
  std::vector<exec::OpStats> ops;
  CollectProfileOps(profile.root, &ops);
  return CardinalityResiduals(ops, profile.root.name);
}

std::string CardinalityReport::Format() const {
  std::ostringstream out;
  char buf[220];
  std::snprintf(buf, sizeof(buf),
                "Cardinality residuals for %s (%d ops with actuals, %d "
                "estimated; Q-error max %.2f geomean %.2f)\n",
                label.c_str(), recorded, estimated, max_q, geomean_q);
  out << buf;
  if (estimated == 0) {
    out << "  no estimates recorded (install a cardinality estimator — see "
           "DESIGN.md §13)\n";
    return out.str();
  }
  std::snprintf(buf, sizeof(buf), "  %-18s %5s %9s %9s   %s\n", "op class",
                "ops", "max Q", "geo Q", "worst offender (est -> actual)");
  out << buf;
  for (const auto& c : classes) {
    std::snprintf(buf, sizeof(buf),
                  "  %-18s %5d %9.2f %9.2f   %s (%.0f -> %.0f)\n",
                  c.op_class.c_str(), c.ops, c.max_q, c.geomean_q,
                  c.worst.op.c_str(), c.worst.est_rows, c.worst.rows_out);
    out << buf;
  }
  out << "  (Q-error = max(est/act, act/est), 1.00 = perfect; large values "
         "flag stale sketches or bad selectivity formulas)\n";
  return out.str();
}

void RecordCardinalityMetrics(const CardinalityReport& report,
                              MetricsRegistry* registry) {
  MetricsRegistry& reg =
      registry != nullptr ? *registry : MetricsRegistry::Global();
  // Q-error buckets: ratios, not latencies — dense near 1.
  static const std::vector<double> kQBounds = {1,  1.1, 1.25, 1.5, 2,    3,
                                               5,  10,  30,   100, 1000};
  reg.counter("stats.qerror.ops.recorded").Add(report.recorded);
  reg.counter("stats.qerror.ops.estimated").Add(report.estimated);
  if (report.estimated == 0) return;
  Gauge& max_g = reg.gauge("stats.qerror.max");
  if (report.max_q > max_g.Value()) max_g.Set(report.max_q);
  Histogram& all = reg.histogram("stats.qerror", kQBounds);
  for (const auto& e : report.entries) {
    all.Record(e.q_error);
    const size_t paren = e.op.find('(');
    const std::string cls =
        paren == std::string::npos ? e.op : e.op.substr(0, paren);
    reg.histogram("stats.qerror.class." + cls, kQBounds).Record(e.q_error);
  }
}

}  // namespace wimpi::obs
