#include "obs/residual.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace wimpi::obs {

namespace {

std::string OpClass(const std::string& op_name) {
  const size_t paren = op_name.find('(');
  return paren == std::string::npos ? op_name : op_name.substr(0, paren);
}

struct ClassAccum {
  double measured = 0;
  double modeled = 0;
};

// Attributes one node's self wall time to the op classes of the OpStats it
// recorded, split proportionally to each class's modeled seconds (a node
// usually holds one class; Filter holds one per conjunct, all "filter").
void AccumulateNode(const ProfileNode& node, const hw::CostModel& model,
                    const hw::HardwareProfile& host, int threads,
                    std::map<std::string, ClassAccum>* acc) {
  if (!node.op_stats.empty()) {
    std::map<std::string, double> modeled_by_class;
    double modeled_total = 0;
    for (const auto& s : node.op_stats) {
      const double sec = model.OpSeconds(host, s, threads);
      modeled_by_class[OpClass(s.op)] += sec;
      modeled_total += sec;
    }
    const double self = std::max(0.0, node.SelfSeconds());
    for (const auto& [cls, sec] : modeled_by_class) {
      ClassAccum& a = (*acc)[cls];
      a.modeled += sec;
      a.measured += modeled_total > 0
                        ? self * (sec / modeled_total)
                        : self / static_cast<double>(modeled_by_class.size());
    }
  }
  for (const auto& c : node.children) {
    AccumulateNode(*c, model, host, threads, acc);
  }
}

}  // namespace

ResidualReport CostModelResiduals(const QueryProfile& profile,
                                  const hw::CostModel& model,
                                  const hw::HardwareProfile& host,
                                  int threads) {
  ResidualReport report;
  report.label = profile.root.name;
  report.threads = threads;

  std::map<std::string, ClassAccum> acc;
  // Children only: the root's own op_stats are plan glue recorded outside
  // any operator scope, with no meaningful wall attribution.
  for (const auto& c : profile.root.children) {
    AccumulateNode(*c, model, host, threads, &acc);
  }

  for (const auto& [_, a] : acc) {
    report.measured_total_seconds += a.measured;
    report.modeled_total_seconds += a.modeled;
  }
  report.anchor = report.modeled_total_seconds > 0
                      ? report.measured_total_seconds /
                            report.modeled_total_seconds
                      : 1.0;

  for (const auto& [cls, a] : acc) {
    ResidualEntry e;
    e.op_class = cls;
    e.measured_seconds = a.measured;
    e.modeled_seconds = a.modeled;
    e.anchored_model_seconds = a.modeled * report.anchor;
    e.residual_seconds = a.measured - e.anchored_model_seconds;
    e.measured_share = report.measured_total_seconds > 0
                           ? a.measured / report.measured_total_seconds
                           : 0;
    e.modeled_share = report.modeled_total_seconds > 0
                          ? a.modeled / report.modeled_total_seconds
                          : 0;
    report.entries.push_back(std::move(e));
  }
  std::sort(report.entries.begin(), report.entries.end(),
            [](const ResidualEntry& a, const ResidualEntry& b) {
              return a.measured_seconds > b.measured_seconds;
            });
  return report;
}

std::string ResidualReport::Format() const {
  std::ostringstream out;
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "Cost-model residuals for %s (threads=%d, anchor=%.3g: "
                "measured %.3f ms vs modeled %.3f ms)\n",
                label.c_str(), threads, anchor,
                measured_total_seconds * 1e3, modeled_total_seconds * 1e3);
  out << buf;
  std::snprintf(buf, sizeof(buf), "  %-18s %12s %12s %12s %8s %8s\n",
                "op class", "measured ms", "model ms", "residual ms",
                "meas %", "model %");
  out << buf;
  for (const auto& e : entries) {
    std::snprintf(buf, sizeof(buf),
                  "  %-18s %12.3f %12.3f %+12.3f %7.1f%% %7.1f%%\n",
                  e.op_class.c_str(), e.measured_seconds * 1e3,
                  e.anchored_model_seconds * 1e3, e.residual_seconds * 1e3,
                  e.measured_share * 100, e.modeled_share * 100);
    out << buf;
  }
  out << "  (model ms are anchored: residuals show share/shape error, not "
         "absolute host speed)\n";
  return out.str();
}

}  // namespace wimpi::obs
