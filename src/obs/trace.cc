#include "obs/trace.h"

#include <cstdio>

#include "common/json.h"
#include "common/logging.h"
#include "obs/clock.h"

namespace wimpi::obs {

namespace {

std::atomic<int> g_next_tid{0};
thread_local int t_tid = -1;

}  // namespace

TraceSink& TraceSink::Global() {
  static TraceSink* sink = new TraceSink();
  return *sink;
}

int TraceSink::CurrentThreadId() {
  if (t_tid < 0) t_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return t_tid;
}

void TraceSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceSink::RecordComplete(std::string name, const char* category,
                               int64_t ts_us, int64_t dur_us,
                               std::string args_json) {
  TraceEvent e;
  e.name = std::move(name);
  e.category = category;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.tid = CurrentThreadId();
  e.args_json = std::move(args_json);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

std::vector<TraceEvent> TraceSink::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string TraceSink::ToJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  JsonWriter w;
  w.BeginObject().Key("traceEvents").BeginArray();
  for (const TraceEvent& e : events) {
    w.BeginObject()
        .Key("name").String(e.name)
        .Key("cat").String(e.category)
        .Key("ph").String("X")
        .Key("ts").Int(e.ts_us)
        .Key("dur").Int(e.dur_us)
        .Key("pid").Int(1)
        .Key("tid").Int(e.tid);
    if (!e.args_json.empty()) w.Key("args").Raw(e.args_json);
    w.EndObject();
  }
  w.EndArray().Key("displayTimeUnit").String("ms").EndObject();
  return w.str();
}

bool TraceSink::WriteFile(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    WIMPI_LOG(Error) << "cannot open trace file " << path;
    return false;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    WIMPI_LOG(Error) << "short write to trace file " << path;
    return false;
  }
  return true;
}

TraceSpan::TraceSpan(const char* name, const char* category)
    : active_(TraceSink::Global().enabled()),
      category_(category) {
  if (!active_) return;
  name_ = name;
  start_us_ = NowMicros();
}

TraceSpan::TraceSpan(std::string name, const char* category,
                     std::string args_json)
    : active_(TraceSink::Global().enabled()),
      category_(category) {
  if (!active_) return;
  name_ = std::move(name);
  args_json_ = std::move(args_json);
  start_us_ = NowMicros();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const int64_t end = NowMicros();
  TraceSink::Global().RecordComplete(std::move(name_), category_, start_us_,
                                     end - start_us_, std::move(args_json_));
}

}  // namespace wimpi::obs
