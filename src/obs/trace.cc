#include "obs/trace.h"

#include <cstdio>

#include "common/json.h"
#include "common/logging.h"
#include "obs/clock.h"

namespace wimpi::obs {

namespace {

std::atomic<int> g_next_tid{0};
thread_local int t_tid = -1;

std::string HexId(uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llx",
                static_cast<unsigned long long>(id));
  return buf;
}

// Writes the shared per-event fields ("args" merges the distributed ids
// with the caller's pre-rendered object, so both renderings expose the
// causal tree the same way).
void WriteEventBody(JsonWriter& w, const TraceEvent& e) {
  const char ph[2] = {e.phase, '\0'};
  w.Key("name").String(e.name)
      .Key("cat").String(e.category)
      .Key("ph").String(ph)
      .Key("ts").Int(e.ts_us);
  if (e.phase == 'X') w.Key("dur").Int(e.dur_us);
  w.Key("pid").Int(e.pid).Key("tid").Int(e.tid);
  if (e.phase == 'i') w.Key("s").String("t");  // instant scope: thread
  if (e.flow_id != 0) {
    w.Key("id").String(HexId(e.flow_id));
    // Bind the finish side to the slice starting at this timestamp.
    if (e.phase == 'f') w.Key("bp").String("e");
  }
  const bool has_ids = e.trace_id != 0 || e.span_id != 0;
  if (has_ids || !e.args_json.empty()) {
    w.Key("args").BeginObject();
    if (e.trace_id != 0) w.Key("trace").String(HexId(e.trace_id));
    if (e.span_id != 0) w.Key("span").String(HexId(e.span_id));
    if (e.parent_id != 0) w.Key("parent").String(HexId(e.parent_id));
    if (!e.args_json.empty()) w.RawMembers(e.args_json);
    w.EndObject();
  }
}

}  // namespace

TraceSink& TraceSink::Global() {
  static TraceSink* sink = new TraceSink();
  return *sink;
}

int TraceSink::CurrentThreadId() {
  if (t_tid < 0) t_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return t_tid;
}

void TraceSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceSink::Record(TraceEvent e) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void TraceSink::RecordComplete(std::string name, const char* category,
                               int64_t ts_us, int64_t dur_us,
                               std::string args_json) {
  TraceEvent e;
  e.name = std::move(name);
  e.category = category;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.tid = CurrentThreadId();
  e.args_json = std::move(args_json);
  Record(std::move(e));
}

std::vector<TraceEvent> TraceSink::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string TraceSink::ToJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  bool has_cluster = false;
  for (const TraceEvent& e : events) {
    if (e.pid == kTracePidCluster) has_cluster = true;
  }
  JsonWriter w;
  w.BeginObject().Key("traceEvents").BeginArray();
  // Name the process groups so viewers label the two clocks.
  auto process_name = [&](int pid, const char* name) {
    w.BeginObject()
        .Key("name").String("process_name")
        .Key("ph").String("M")
        .Key("pid").Int(pid)
        .Key("tid").Int(0)
        .Key("args").BeginObject().Key("name").String(name).EndObject()
        .EndObject();
  };
  process_name(kTracePidHost, "wimpi host (real time)");
  if (has_cluster) process_name(kTracePidCluster, "wimpi cluster (modeled time)");
  for (const TraceEvent& e : events) {
    w.BeginObject();
    WriteEventBody(w, e);
    w.EndObject();
  }
  w.EndArray().Key("displayTimeUnit").String("ms").EndObject();
  return w.str();
}

std::string TraceSink::ToJsonl() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string out;
  for (const TraceEvent& e : events) {
    JsonWriter w;
    w.BeginObject();
    WriteEventBody(w, e);
    w.EndObject();
    out += w.str();
    out += '\n';
  }
  return out;
}

bool TraceSink::WriteFile(const std::string& path) const {
  const bool jsonl =
      path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0;
  const std::string json = jsonl ? ToJsonl() : ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    WIMPI_LOG(Error) << "cannot open trace file " << path;
    return false;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  // fclose flushes; a full disk can surface only here.
  const bool closed = std::fclose(f) == 0;
  if (written != json.size() || !closed) {
    WIMPI_LOG(Error) << "short write to trace file " << path;
    return false;
  }
  return true;
}

}  // namespace wimpi::obs
