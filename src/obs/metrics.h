#ifndef WIMPI_OBS_METRICS_H_
#define WIMPI_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace wimpi::obs {

// Monotonically increasing count (events, accumulated microseconds, ...).
// Add/Value are lock-free; writers from any thread.
class Counter {
 public:
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Last-written value (queue depth, active workers, ...).
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

// Fixed-bucket histogram. Bucket upper bounds are set at construction and
// never change, so Record() is a binary search plus one relaxed increment —
// safe from any number of threads. Percentiles are estimated by linear
// interpolation inside the bucket that crosses the requested rank, which is
// exact enough for latency reporting (p50/p95/p99) at the default
// exponential bucket layout.
class Histogram {
 public:
  // `bounds` are ascending inclusive upper bounds; values above the last
  // bound land in a catch-all overflow bucket.
  explicit Histogram(std::vector<double> bounds);

  // Default bounds for microsecond-scale latencies: 1us .. 60s, roughly
  // four buckets per decade.
  static std::vector<double> DefaultLatencyBoundsUs();

  void Record(double v);

  int64_t Count() const;
  double Sum() const;
  double Mean() const { return Count() == 0 ? 0 : Sum() / Count(); }
  double Min() const;
  double Max() const;
  // p in (0, 1], e.g. 0.5 / 0.95 / 0.99. Returns 0 on an empty histogram.
  double Percentile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<int64_t> BucketCounts() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::deque<std::atomic<int64_t>> buckets_;  // bounds_.size() + 1 (overflow)
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> min_{0};
  std::atomic<double> max_{0};
};

// Point-in-time copy of one histogram's full state, for exporters that
// need buckets (Prometheus exposition) rather than just scalars.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<int64_t> bucket_counts;  // bounds.size() + 1 (overflow)
  int64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
};

// Point-in-time copy of every registered metric.
struct RegistrySnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  // Info metrics: constant gauges of value 1 whose labels carry identity
  // (e.g. host.info{cpu="...",threads="..."}), Prometheus convention for
  // distinguishing series scraped from different hosts.
  std::map<std::string, std::map<std::string, std::string>> infos;
};

// Process-wide named metrics. Lookup takes a mutex; the returned references
// are stable for the registry's lifetime (node-based storage), so hot paths
// resolve a metric once and then update it lock-free.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  // Histogram bounds are fixed by the first call for a given name.
  Histogram& histogram(
      const std::string& name,
      const std::vector<double>& bounds = Histogram::DefaultLatencyBoundsUs());

  // Registers (or replaces) an info metric: exported as a gauge of
  // constant value 1 whose labels carry identity strings, e.g.
  // SetInfo("host.info", {{"cpu", "..."}, {"threads", "4"}}).
  void SetInfo(const std::string& name,
               std::map<std::string, std::string> labels);

  // Zeroes every metric (keeps registrations). Test helper.
  void Reset();

  // Same as Reset(), under the name tests should use between cases so
  // metric accumulation from earlier cases cannot leak into assertions.
  // Entries are zeroed, never erased: pool workers cache raw metric
  // pointers that must stay valid for the registry's lifetime.
  void ResetForTesting() { Reset(); }

  // Sorted "name value" / "name count=.. mean=.. p50=.. p95=.. p99=.." text.
  std::string FormatText() const;

  // Snapshot of scalar values for programmatic checks.
  std::map<std::string, double> ScalarSnapshot() const;

  // Full snapshot including histogram buckets, for exposition writers.
  RegistrySnapshot SnapshotAll() const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, std::map<std::string, std::string>> infos_;
};

// Global switch for the ThreadPool/TaskScheduler instrumentation hooks.
// Off by default: pool hot paths then skip every clock read. Flipped by
// ScopedProfiling (ProfileOptions.pool_metrics) or directly by tools.
bool PoolMetricsEnabled();
void SetPoolMetricsEnabled(bool enabled);

}  // namespace wimpi::obs

#endif  // WIMPI_OBS_METRICS_H_
