#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/json.h"
#include "common/logging.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/stats_hook.h"
#include "obs/trace.h"

namespace wimpi::obs {

namespace internal {
std::atomic<bool> g_stats_hook_armed{false};
}  // namespace internal

namespace {

// The profiler is single-owner: only the thread that constructed the
// active ScopedProfiling opens scopes or receives OpStats, so the mutable
// state below needs no locking — other threads only ever read the two
// atomics (g_active, g_op_label).
std::atomic<bool> g_active{false};
std::atomic<const char*> g_op_label{"plan"};
thread_local bool t_owner = false;
QueryProfile* g_profile = nullptr;
ProfileNode* g_current = nullptr;
// Live counter set of the active ScopedProfiling (nullptr when counters
// were not requested or could not be opened). Only the owning thread reads
// it, same single-owner discipline as the rest of the profiler state.
PerfCounters* g_perf = nullptr;

bool OwnerActive() {
  return g_active.load(std::memory_order_relaxed) && t_owner;
}

}  // namespace

namespace internal {

void OpStatsAdded(const exec::OpStats& s) {
  if (!OwnerActive() || g_current == nullptr) return;
  g_current->op_stats.push_back(s);
}

}  // namespace internal

double ProfileNode::ChildSeconds() const {
  double t = 0;
  for (const auto& c : children) t += c->wall_seconds;
  return t;
}

double ProfileNode::TotalComputeOps() const {
  double t = 0;
  for (const auto& s : op_stats) t += s.compute_ops;
  for (const auto& c : children) t += c->TotalComputeOps();
  return t;
}

double ProfileNode::TotalSeqBytes() const {
  double t = 0;
  for (const auto& s : op_stats) t += s.seq_bytes;
  for (const auto& c : children) t += c->TotalSeqBytes();
  return t;
}

double ProfileNode::TotalRandCount() const {
  double t = 0;
  for (const auto& s : op_stats) t += s.rand_count;
  for (const auto& c : children) t += c->TotalRandCount();
  return t;
}

ScopedProfiling::ScopedProfiling(const ProfileOptions& opts,
                                 QueryProfile* out, std::string label)
    : out_(out), opts_(opts) {
  WIMPI_CHECK(out != nullptr);
  WIMPI_CHECK(!g_active.load(std::memory_order_relaxed))
      << "nested ScopedProfiling is not supported";
  out_->root = ProfileNode{};
  out_->root.name = std::move(label);
  out_->wall_seconds = 0;
  if (opts_.operator_profile) {
    g_profile = out_;
    g_current = &out_->root;
    t_owner = true;
    g_op_label.store("plan", std::memory_order_relaxed);
    g_active.store(true, std::memory_order_relaxed);
    internal::g_stats_hook_armed.store(true, std::memory_order_relaxed);
  }
  prev_trace_ = TraceSink::Global().enabled();
  if (opts_.trace) {
    TraceSink::Global().set_enabled(true);
    // Root of the query's span tree; child of whatever context the caller
    // (e.g. the cluster driver) installed on this thread.
    span_ = std::make_unique<Span>(out_->root.name, "query", "");
  }
  prev_pool_metrics_ = PoolMetricsEnabled();
  if (opts_.pool_metrics) SetPoolMetricsEnabled(true);
  if (opts_.perf_counters) {
    if (perf_.Open()) {
      if (opts_.operator_profile) g_perf = &perf_;
    } else {
      out_->perf_note = "counters unavailable: " + perf_.error();
    }
  }
  start_us_ = NowMicros();
}

ScopedProfiling::~ScopedProfiling() {
  const double wall = MicrosToSeconds(NowMicros() - start_us_);
  out_->wall_seconds = wall;
  out_->root.wall_seconds = wall;
  if (perf_.open()) {
    out_->perf = perf_.Read();
    out_->perf_valid = out_->perf.AnyAvailable();
    out_->root.perf = out_->perf;
    out_->root.perf_valid = out_->perf_valid;
    g_perf = nullptr;
    perf_.Close();
  }
  if (opts_.operator_profile) {
    internal::g_stats_hook_armed.store(false, std::memory_order_relaxed);
    g_active.store(false, std::memory_order_relaxed);
    t_owner = false;
    g_current = nullptr;
    g_profile = nullptr;
  }
  span_.reset();  // record the query span before the sink is re-disabled
  TraceSink::Global().set_enabled(prev_trace_);
  SetPoolMetricsEnabled(prev_pool_metrics_);
}

OpScope::OpScope(const char* name, int64_t rows_in) {
  if (!OwnerActive()) return;
  parent_ = g_current;
  auto node = std::make_unique<ProfileNode>();
  node->name = name;
  node->rows_in = rows_in;
  node_ = node.get();
  parent_->children.push_back(std::move(node));
  g_current = node_;
  prev_label_ = g_op_label.load(std::memory_order_relaxed);
  g_op_label.store(name, std::memory_order_relaxed);
  if (TraceSink::Global().enabled()) {
    span_ = std::make_unique<Span>(name, "op");
  }
  if (g_perf != nullptr) perf_start_ = g_perf->Read();
  start_us_ = NowMicros();
}

OpScope::~OpScope() {
  if (node_ == nullptr) return;
  node_->wall_seconds = MicrosToSeconds(NowMicros() - start_us_);
  if (g_perf != nullptr) {
    node_->perf = g_perf->Read().Delta(perf_start_);
    node_->perf_valid = node_->perf.AnyAvailable();
  }
  span_.reset();
  g_current = parent_;
  g_op_label.store(prev_label_, std::memory_order_relaxed);
}

bool ProfilerActive() { return g_active.load(std::memory_order_relaxed); }

void NoteParallelPhase(int threads, int morsels) {
  if (!OwnerActive() || g_current == nullptr) return;
  g_current->threads = std::max(g_current->threads, threads);
  g_current->morsels = std::max(g_current->morsels, morsels);
}

const char* CurrentOpLabel() {
  return g_op_label.load(std::memory_order_relaxed);
}

namespace {

std::string HumanCount(double v) {
  char buf[32];
  if (v >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.1fG", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fK", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}

void FormatNode(const ProfileNode& n, const std::string& prefix, bool last,
                bool root, std::ostringstream& out) {
  if (root) {
    out << n.name;
  } else {
    out << prefix << (last ? "`- " : "|- ") << n.name;
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %.3f ms", n.wall_seconds * 1e3);
  out << buf;
  if (!root) {
    out << "  rows " << n.rows_in << "->" << n.rows_out;
    if (n.threads > 1) {
      out << "  threads " << n.threads << "  morsels " << n.morsels;
    }
  }
  // The model-side view of the same invocation (this node only, so the
  // numbers do not double count what child lines already show).
  double ops = 0, seq = 0, rnd = 0;
  for (const auto& s : n.op_stats) {
    ops += s.compute_ops;
    seq += s.seq_bytes;
    rnd += s.rand_count;
  }
  if (ops > 0 || seq > 0 || rnd > 0) {
    out << "  [" << HumanCount(ops) << " ops, " << HumanCount(seq)
        << "B seq, " << HumanCount(rnd) << " rand]";
  }
  if (!n.op_stats.empty()) {
    out << "  {";
    for (size_t i = 0; i < n.op_stats.size(); ++i) {
      if (i > 0) out << ", ";
      out << n.op_stats[i].op;
    }
    out << "}";
  }
  // The physical view of the same invocation (root totals print in the
  // footer instead, next to the availability note).
  if (!root && n.perf_valid) {
    const std::string perf = n.perf.Summary();
    if (!perf.empty()) out << "  (perf: " << perf << ")";
  }
  out << "\n";
  const std::string child_prefix =
      root ? "" : prefix + (last ? "   " : "|  ");
  for (size_t i = 0; i < n.children.size(); ++i) {
    FormatNode(*n.children[i], child_prefix, i + 1 == n.children.size(),
               false, out);
  }
}

}  // namespace

std::string QueryProfile::FormatTree() const {
  std::ostringstream out;
  FormatNode(root, "", true, true, out);
  const double op_s = OperatorSeconds();
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "wall %.3f ms, operators %.3f ms (%.1f%%), plan glue "
                "%.3f ms\n",
                wall_seconds * 1e3, op_s * 1e3,
                wall_seconds > 0 ? 100.0 * op_s / wall_seconds : 0.0,
                (wall_seconds - op_s) * 1e3);
  out << buf;
  if (perf_valid) {
    out << "perf: " << perf.Summary() << "\n";
  } else if (!perf_note.empty()) {
    out << "perf: " << perf_note << "\n";
  }
  return out.str();
}

namespace {

void NodeToJson(const ProfileNode& n, JsonWriter& w) {
  w.BeginObject()
      .Key("name").String(n.name)
      .Key("wall_seconds").Double(n.wall_seconds)
      .Key("rows_in").Int(n.rows_in)
      .Key("rows_out").Int(n.rows_out)
      .Key("threads").Int(n.threads)
      .Key("morsels").Int(n.morsels);
  double ops = 0, seq = 0, rnd = 0;
  for (const auto& s : n.op_stats) {
    ops += s.compute_ops;
    seq += s.seq_bytes;
    rnd += s.rand_count;
  }
  w.Key("compute_ops").Double(ops)
      .Key("seq_bytes").Double(seq)
      .Key("rand_count").Double(rnd);
  if (n.perf_valid) {
    w.Key("perf").BeginObject();
    for (int i = 0; i < PerfCounts::kNumEvents; ++i) {
      const auto e = static_cast<PerfEvent>(i);
      if (n.perf.Has(e)) {
        w.Key(PerfEventName(e)).Double(static_cast<double>(n.perf.Get(e)));
      }
    }
    w.EndObject();
  }
  w.Key("children").BeginArray();
  for (const auto& c : n.children) NodeToJson(*c, w);
  w.EndArray().EndObject();
}

}  // namespace

std::string QueryProfile::ToJson() const {
  JsonWriter w;
  w.BeginObject()
      .Key("wall_seconds").Double(wall_seconds)
      .Key("operator_seconds").Double(OperatorSeconds())
      .Key("perf_valid").Bool(perf_valid);
  if (!perf_note.empty()) w.Key("perf_note").String(perf_note);
  w.Key("root");
  NodeToJson(root, w);
  w.EndObject();
  return w.str();
}

}  // namespace wimpi::obs
