#ifndef WIMPI_OBS_RESIDUAL_H_
#define WIMPI_OBS_RESIDUAL_H_

#include <string>
#include <vector>

#include "hw/cost_model.h"
#include "hw/profile.h"
#include "obs/profiler.h"

namespace wimpi::obs {

// Cost-model residuals: measured per-operator-class host seconds (from a
// profiled run) against the seconds the hw::CostModel predicts for the same
// abstract work on hw::HostProfile(). The host pseudo-profile only knows
// its thread topology, not absolute rates, so modeled times are first
// scaled by one global anchor (total measured / total modeled — the same
// move the paper makes when it anchors Figure 3/4 ratios to one machine);
// residuals then expose *shape* errors: operator classes whose measured
// share deviates from their modeled share.

struct ResidualEntry {
  std::string op_class;  // OpStats name up to '(' — e.g. "filter"
  double measured_seconds = 0;
  double modeled_seconds = 0;         // raw model output (unanchored)
  double anchored_model_seconds = 0;  // modeled * anchor
  double residual_seconds = 0;        // measured - anchored_model
  double measured_share = 0;          // measured / total measured
  double modeled_share = 0;           // modeled / total modeled
};

struct ResidualReport {
  std::string label;     // query label from the profile root
  int threads = 1;       // thread count the model was asked about
  double anchor = 1;     // total measured / total modeled
  double measured_total_seconds = 0;
  double modeled_total_seconds = 0;
  std::vector<ResidualEntry> entries;  // sorted by measured share, desc

  std::string Format() const;
};

// Walks the profile tree, groups leaf operator time by op class, and pairs
// it with CostModel::OpSeconds on `host` at `threads` threads. Nodes whose
// wall time covers several classes split their measured seconds in
// proportion to the modeled seconds of each class.
ResidualReport CostModelResiduals(const QueryProfile& profile,
                                  const hw::CostModel& model,
                                  const hw::HardwareProfile& host,
                                  int threads);

// Counter residuals: physical counters measured by perf_event_open against
// the abstract work counters the cost model consumes — the end-to-end
// validation of the repro's central substitution (OpStats for hardware
// events). Per top-level operator and for the whole query it pairs
//   measured instructions   vs  abstract compute_ops   -> instructions/op
//   measured DRAM bytes     vs  abstract seq_bytes     -> dram/seq byte
// (DRAM-side traffic estimated as LLC misses x 64B lines). A healthy
// model shows instructions/op clustered across operators (the abstract
// unit has one consistent physical exchange rate) and dram/seq near or
// below 1 (streams mostly come from memory; far above 1 means the
// abstract counters under-count traffic, far below means LLC reuse).
struct CounterResidualEntry {
  std::string name;  // top-level operator invocation (tree child)
  double compute_ops = 0;  // subtree abstract totals
  double seq_bytes = 0;
  double rand_count = 0;
  PerfCounts perf;  // subtree-inclusive physical counts

  // < 0 when the needed counter was unavailable or the divisor is zero.
  double InstructionsPerOp() const;
  double DramPerSeqByte() const;
};

struct CounterResidualReport {
  std::string label;
  bool available = false;  // at least one physical counter was live
  std::string note;        // unavailable reason ("" when available)
  PerfCounts total;        // whole-query counters
  double total_compute_ops = 0;
  double total_seq_bytes = 0;
  double total_rand_count = 0;
  std::vector<CounterResidualEntry> entries;

  double InstructionsPerOp() const;
  double DramPerSeqByte() const;
  std::string Format() const;
};

// Builds the counter-residual report from a profile collected with
// ProfileOptions.perf_counters. When counters were unavailable the report
// carries the note and Format() renders "counters unavailable".
CounterResidualReport CounterResiduals(const QueryProfile& profile);

// ---------- Cardinality residuals (plan quality, DESIGN.md §13) ----------
//
// The third residual family: predicted vs measured operator output
// cardinalities. Operators record actual rows_in/rows_out in OpStats
// always, and est_rows when an exec::CardinalityEstimator (typically a
// stats::StatsRegistry) is installed; this report aggregates the classic
// Q-error max(est/act, act/est) per operator class, so plan-quality
// regressions (sketch drift, broken selectivity formulas) surface next to
// the cost-model and counter residuals.

// Q-error of one estimate/actual pair, always >= 1 (1 = perfect). Both
// sides are clamped to >= 1 row first, so zero-row operators do not
// produce infinities.
double QError(double est, double actual);

struct CardinalityEntry {
  std::string op;       // full OpStats name, e.g. "filter(l_shipdate)"
  double rows_in = -1;
  double rows_out = -1;
  double est_rows = -1;
  double q_error = 1;
};

struct CardinalityClassEntry {
  std::string op_class;  // OpStats name up to '(' — e.g. "filter"
  int ops = 0;           // invocations with both estimate and actual
  double max_q = 1;
  double geomean_q = 1;
  CardinalityEntry worst;  // the invocation that set max_q
};

struct CardinalityReport {
  std::string label;
  int recorded = 0;   // OpStats carrying actual cardinalities
  int estimated = 0;  // of those, OpStats also carrying an estimate
  double max_q = 1;
  double geomean_q = 1;  // over all estimated ops
  std::vector<CardinalityClassEntry> classes;  // sorted by max_q, desc
  std::vector<CardinalityEntry> entries;       // estimated ops, worst first

  std::string Format() const;
};

// Aggregates Q-errors from raw OpStats (any source: QueryStats or a
// profile tree's per-node stats). Ops without actuals are counted as
// unrecorded; ops without estimates contribute to `recorded` only.
CardinalityReport CardinalityResiduals(const std::vector<exec::OpStats>& ops,
                                       std::string label = "query");
CardinalityReport CardinalityResiduals(const exec::QueryStats& stats,
                                       std::string label = "query");
CardinalityReport CardinalityResiduals(const QueryProfile& profile);

// Publishes a report into the metrics registry for Prometheus exposition:
//   stats.qerror                  histogram of per-op Q-errors
//   stats.qerror.class.<class>    per-class histograms
//   stats.qerror.max              gauge, worst Q-error seen so far
//   stats.qerror.ops.estimated    counter
//   stats.qerror.ops.recorded     counter
class MetricsRegistry;
void RecordCardinalityMetrics(const CardinalityReport& report,
                              MetricsRegistry* registry = nullptr);

}  // namespace wimpi::obs

#endif  // WIMPI_OBS_RESIDUAL_H_
