#ifndef WIMPI_OBS_RESIDUAL_H_
#define WIMPI_OBS_RESIDUAL_H_

#include <string>
#include <vector>

#include "hw/cost_model.h"
#include "hw/profile.h"
#include "obs/profiler.h"

namespace wimpi::obs {

// Cost-model residuals: measured per-operator-class host seconds (from a
// profiled run) against the seconds the hw::CostModel predicts for the same
// abstract work on hw::HostProfile(). The host pseudo-profile only knows
// its thread topology, not absolute rates, so modeled times are first
// scaled by one global anchor (total measured / total modeled — the same
// move the paper makes when it anchors Figure 3/4 ratios to one machine);
// residuals then expose *shape* errors: operator classes whose measured
// share deviates from their modeled share.

struct ResidualEntry {
  std::string op_class;  // OpStats name up to '(' — e.g. "filter"
  double measured_seconds = 0;
  double modeled_seconds = 0;         // raw model output (unanchored)
  double anchored_model_seconds = 0;  // modeled * anchor
  double residual_seconds = 0;        // measured - anchored_model
  double measured_share = 0;          // measured / total measured
  double modeled_share = 0;           // modeled / total modeled
};

struct ResidualReport {
  std::string label;     // query label from the profile root
  int threads = 1;       // thread count the model was asked about
  double anchor = 1;     // total measured / total modeled
  double measured_total_seconds = 0;
  double modeled_total_seconds = 0;
  std::vector<ResidualEntry> entries;  // sorted by measured share, desc

  std::string Format() const;
};

// Walks the profile tree, groups leaf operator time by op class, and pairs
// it with CostModel::OpSeconds on `host` at `threads` threads. Nodes whose
// wall time covers several classes split their measured seconds in
// proportion to the modeled seconds of each class.
ResidualReport CostModelResiduals(const QueryProfile& profile,
                                  const hw::CostModel& model,
                                  const hw::HardwareProfile& host,
                                  int threads);

// Counter residuals: physical counters measured by perf_event_open against
// the abstract work counters the cost model consumes — the end-to-end
// validation of the repro's central substitution (OpStats for hardware
// events). Per top-level operator and for the whole query it pairs
//   measured instructions   vs  abstract compute_ops   -> instructions/op
//   measured DRAM bytes     vs  abstract seq_bytes     -> dram/seq byte
// (DRAM-side traffic estimated as LLC misses x 64B lines). A healthy
// model shows instructions/op clustered across operators (the abstract
// unit has one consistent physical exchange rate) and dram/seq near or
// below 1 (streams mostly come from memory; far above 1 means the
// abstract counters under-count traffic, far below means LLC reuse).
struct CounterResidualEntry {
  std::string name;  // top-level operator invocation (tree child)
  double compute_ops = 0;  // subtree abstract totals
  double seq_bytes = 0;
  double rand_count = 0;
  PerfCounts perf;  // subtree-inclusive physical counts

  // < 0 when the needed counter was unavailable or the divisor is zero.
  double InstructionsPerOp() const;
  double DramPerSeqByte() const;
};

struct CounterResidualReport {
  std::string label;
  bool available = false;  // at least one physical counter was live
  std::string note;        // unavailable reason ("" when available)
  PerfCounts total;        // whole-query counters
  double total_compute_ops = 0;
  double total_seq_bytes = 0;
  double total_rand_count = 0;
  std::vector<CounterResidualEntry> entries;

  double InstructionsPerOp() const;
  double DramPerSeqByte() const;
  std::string Format() const;
};

// Builds the counter-residual report from a profile collected with
// ProfileOptions.perf_counters. When counters were unavailable the report
// carries the note and Format() renders "counters unavailable".
CounterResidualReport CounterResiduals(const QueryProfile& profile);

}  // namespace wimpi::obs

#endif  // WIMPI_OBS_RESIDUAL_H_
