#ifndef WIMPI_OBS_CLOCK_H_
#define WIMPI_OBS_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <ctime>

namespace wimpi::obs {

// Monotonic microseconds since an arbitrary process-local epoch. All
// profiler, metrics, and trace timestamps share this clock so spans from
// different threads line up in one timeline.
inline int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline double MicrosToSeconds(int64_t us) {
  return static_cast<double>(us) * 1e-6;
}

// CPU time consumed by the calling thread, in microseconds. One
// clock_gettime(CLOCK_THREAD_CPUTIME_ID) syscall (~100-200 ns); call
// sites amortize it per morsel or per query, never per tuple. Returns 0
// where the clock is unavailable so accounting degrades to "unknown"
// instead of failing.
inline int64_t ThreadCpuMicros() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
#else
  return 0;
#endif
}

}  // namespace wimpi::obs

#endif  // WIMPI_OBS_CLOCK_H_
