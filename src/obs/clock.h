#ifndef WIMPI_OBS_CLOCK_H_
#define WIMPI_OBS_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace wimpi::obs {

// Monotonic microseconds since an arbitrary process-local epoch. All
// profiler, metrics, and trace timestamps share this clock so spans from
// different threads line up in one timeline.
inline int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline double MicrosToSeconds(int64_t us) {
  return static_cast<double>(us) * 1e-6;
}

}  // namespace wimpi::obs

#endif  // WIMPI_OBS_CLOCK_H_
