#include "obs/perf_counters.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#ifdef __linux__
#include <cerrno>
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace wimpi::obs {

namespace {

const char* const kEventNames[PerfCounts::kNumEvents] = {
    "cycles",        "instructions", "llc_loads",
    "llc_misses",    "branch_misses", "task_clock_ns",
};

std::string HumanCount(double v) {
  char buf[32];
  if (v >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.1fG", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fK", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}

}  // namespace

const char* PerfEventName(PerfEvent e) {
  return kEventNames[static_cast<int>(e)];
}

bool PerfDisabledByEnv() {
  const char* env = std::getenv("WIMPI_PERF_DISABLE");
  return env != nullptr && env[0] == '1';
}

bool PerfCounts::AnyAvailable() const {
  for (const int64_t x : v) {
    if (x >= 0) return true;
  }
  return false;
}

double PerfCounts::Ipc() const {
  const int64_t cyc = Get(PerfEvent::kCycles);
  const int64_t ins = Get(PerfEvent::kInstructions);
  if (cyc <= 0 || ins < 0) return -1;
  return static_cast<double>(ins) / static_cast<double>(cyc);
}

double PerfCounts::LlcMissRate() const {
  const int64_t loads = Get(PerfEvent::kLlcLoads);
  const int64_t misses = Get(PerfEvent::kLlcMisses);
  if (loads <= 0 || misses < 0) return -1;
  return static_cast<double>(misses) / static_cast<double>(loads);
}

double PerfCounts::DramBytes() const {
  const int64_t misses = Get(PerfEvent::kLlcMisses);
  if (misses < 0) return -1;
  return static_cast<double>(misses) * kBytesPerLine;
}

double PerfCounts::GhzEffective() const {
  const int64_t cyc = Get(PerfEvent::kCycles);
  const int64_t ns = Get(PerfEvent::kTaskClockNs);
  if (cyc < 0 || ns <= 0) return -1;
  return static_cast<double>(cyc) / static_cast<double>(ns);
}

PerfCounts PerfCounts::Delta(const PerfCounts& since) const {
  PerfCounts out;
  for (int i = 0; i < kNumEvents; ++i) {
    if (v[i] >= 0 && since.v[i] >= 0) out.v[i] = v[i] - since.v[i];
  }
  return out;
}

PerfCounts& PerfCounts::Accumulate(const PerfCounts& other) {
  for (int i = 0; i < kNumEvents; ++i) {
    if (other.v[i] < 0) continue;
    v[i] = (v[i] < 0 ? 0 : v[i]) + other.v[i];
  }
  return *this;
}

std::string PerfCounts::Summary() const {
  std::string out;
  auto append = [&out](const std::string& part) {
    if (!out.empty()) out += ", ";
    out += part;
  };
  char buf[64];
  if (Has(PerfEvent::kInstructions)) {
    append(HumanCount(static_cast<double>(Get(PerfEvent::kInstructions))) +
           " ins");
  }
  if (Ipc() >= 0) {
    std::snprintf(buf, sizeof(buf), "IPC %.2f", Ipc());
    append(buf);
  }
  if (LlcMissRate() >= 0) {
    std::snprintf(buf, sizeof(buf), "LLC-miss %.1f%%", LlcMissRate() * 100);
    append(buf);
  } else if (Has(PerfEvent::kLlcMisses)) {
    append(HumanCount(DramBytes()) + "B dram");
  }
  if (Has(PerfEvent::kBranchMisses)) {
    append(HumanCount(static_cast<double>(Get(PerfEvent::kBranchMisses))) +
           " br-miss");
  }
  if (Has(PerfEvent::kTaskClockNs)) {
    std::snprintf(buf, sizeof(buf), "%.1fms task",
                  static_cast<double>(Get(PerfEvent::kTaskClockNs)) * 1e-6);
    append(buf);
  }
  return out;
}

#ifdef __linux__

namespace {

struct EventSpec {
  uint32_t type;
  uint64_t config;
};

EventSpec SpecFor(PerfEvent e) {
  switch (e) {
    case PerfEvent::kCycles:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES};
    case PerfEvent::kInstructions:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS};
    case PerfEvent::kLlcLoads:
      return {PERF_TYPE_HW_CACHE,
              PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                  (PERF_COUNT_HW_CACHE_RESULT_ACCESS << 16)};
    case PerfEvent::kLlcMisses:
      return {PERF_TYPE_HW_CACHE,
              PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                  (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)};
    case PerfEvent::kBranchMisses:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES};
    case PerfEvent::kTaskClockNs:
    default:
      return {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK};
  }
}

int OpenEvent(PerfEvent e) {
  const EventSpec spec = SpecFor(e);
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  attr.disabled = 1;
  // Aggregate threads spawned while counting (see class comment); this
  // rules out PERF_FORMAT_GROUP, hence one fd per event.
  attr.inherit = 1;
  // perf_event_paranoid >= 2 (the common container default) only permits
  // user-space self-measurement.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, /*group_fd=*/-1, /*flags=*/0));
}

}  // namespace

bool PerfCounters::Open() {
  Close();
  if (PerfDisabledByEnv()) {
    error_ = "disabled via WIMPI_PERF_DISABLE=1";
    return false;
  }
  int first_errno = 0;
  for (int i = 0; i < PerfCounts::kNumEvents; ++i) {
    const int fd = OpenEvent(static_cast<PerfEvent>(i));
    if (fd < 0) {
      if (first_errno == 0) first_errno = errno;
      continue;
    }
    fds_[i] = fd;
    ++n_open_;
  }
  if (n_open_ == 0) {
    error_ = std::string("perf_event_open failed: ") +
             std::strerror(first_errno) +
             " (PMU hidden by the container/VM, or perf_event_paranoid "
             "too high)";
    return false;
  }
  for (const int fd : fds_) {
    if (fd >= 0) ioctl(fd, PERF_EVENT_IOC_RESET, 0);
  }
  for (const int fd : fds_) {
    if (fd >= 0) ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
  return true;
}

PerfCounts PerfCounters::Read() const {
  PerfCounts out;
  for (int i = 0; i < PerfCounts::kNumEvents; ++i) {
    if (fds_[i] < 0) continue;
    uint64_t value = 0;
    if (read(fds_[i], &value, sizeof(value)) == sizeof(value)) {
      out.v[i] = static_cast<int64_t>(value);
    }
  }
  return out;
}

void PerfCounters::Close() {
  for (int& fd : fds_) {
    if (fd >= 0) {
      close(fd);
      fd = -1;
    }
  }
  n_open_ = 0;
  error_.clear();
}

#else  // !__linux__

bool PerfCounters::Open() {
  Close();
  error_ = PerfDisabledByEnv()
               ? "disabled via WIMPI_PERF_DISABLE=1"
               : "perf_event_open is Linux-only";
  return false;
}

PerfCounts PerfCounters::Read() const { return PerfCounts{}; }

void PerfCounters::Close() {
  n_open_ = 0;
  error_.clear();
}

#endif  // __linux__

bool PerfCounters::Available() {
  PerfCounters probe;
  return probe.Open();
}

std::string PerfCounters::AvailabilityNote() {
  PerfCounters probe;
  if (probe.Open()) return "";
  return probe.error();
}

}  // namespace wimpi::obs
