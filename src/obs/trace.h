#ifndef WIMPI_OBS_TRACE_H_
#define WIMPI_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace wimpi::obs {

// Process ids used to separate the two clocks a distributed run mixes:
// real host time (operator scopes, morsel tasks) and the simulated node
// clock of the cluster driver. Viewers render them as two process groups
// of one timeline; span ids still join them into one causal tree.
inline constexpr int kTracePidHost = 1;
inline constexpr int kTracePidCluster = 2;

// One event in Chrome trace-event format. Timestamps are NowMicros()
// values for host events and modeled microseconds for cluster events;
// tids are small dense ids assigned per thread (host) or lane ids picked
// by the cluster exporter so chrome://tracing / Perfetto renders one row
// per worker / node.
//
// The distributed-tracing ids (trace/span/parent) make the causal tree
// explicit: a span with parent_id P is a child of the span whose span_id
// is P, wherever (and on whichever clock) that span ran. Flow events
// ('s'/'f' pairs sharing flow_id) add non-tree causal links, e.g. fault
// event -> the retry it caused.
struct TraceEvent {
  std::string name;
  const char* category = "exec";
  // 'X' complete span, 'i' instant event, 's'/'f' flow start/finish.
  char phase = 'X';
  int64_t ts_us = 0;
  int64_t dur_us = 0;  // 'X' only
  int tid = 0;
  int pid = kTracePidHost;
  uint64_t trace_id = 0;   // 0 = not part of a distributed trace
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root of its trace
  uint64_t flow_id = 0;    // 's'/'f' pair id
  // Optional pre-rendered JSON object for the "args" field (e.g.
  // R"({"morsel":3,"rows":65536})"); empty = no args. The exporter merges
  // the span ids into the same object.
  std::string args_json;
};

// Process-wide span sink. Recording is a mutex-guarded vector append and
// happens only while enabled, so disabled runs never allocate or lock.
// The scheduler/pool hooks check `enabled()` (one relaxed atomic load)
// before reading any clock.
class TraceSink {
 public:
  static TraceSink& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  void Clear();
  size_t size() const;

  // Appends one fully-specified event; the cluster exporter and the span
  // layer fill the id/pid/tid fields themselves.
  void Record(TraceEvent e);

  // Legacy-shaped helper for plain host spans without distributed ids.
  void RecordComplete(std::string name, const char* category, int64_t ts_us,
                      int64_t dur_us, std::string args_json = "");

  std::vector<TraceEvent> Snapshot() const;

  // {"traceEvents":[...],"displayTimeUnit":"ms"} — loadable by
  // chrome://tracing and https://ui.perfetto.dev. Span/trace ids are
  // exported inside each event's args ("trace"/"span"/"parent" hex
  // strings) so external tools can rebuild the causal tree.
  std::string ToJson() const;

  // One JSON object per line per event (same fields as ToJson, flat), for
  // streaming consumers and line-oriented diffing.
  std::string ToJsonl() const;

  // Returns false (and logs) when the file cannot be written. Paths ending
  // in ".jsonl" get the JSONL rendering, everything else Chrome JSON.
  bool WriteFile(const std::string& path) const;

  // Dense id of the calling thread (0 = first thread ever seen).
  static int CurrentThreadId();

 private:
  TraceSink() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

}  // namespace wimpi::obs

#endif  // WIMPI_OBS_TRACE_H_
