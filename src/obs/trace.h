#ifndef WIMPI_OBS_TRACE_H_
#define WIMPI_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace wimpi::obs {

// One complete ("ph":"X") event in Chrome trace-event format. Timestamps
// are NowMicros() values; tids are small dense ids assigned per thread so
// chrome://tracing / Perfetto renders one row per worker.
struct TraceEvent {
  std::string name;
  const char* category = "exec";
  int64_t ts_us = 0;
  int64_t dur_us = 0;
  int tid = 0;
  // Optional pre-rendered JSON object for the "args" field (e.g.
  // R"({"morsel":3,"rows":65536})"); empty = no args.
  std::string args_json;
};

// Process-wide span sink. Recording is a mutex-guarded vector append and
// happens only while enabled, so disabled runs never allocate or lock.
// The scheduler/pool hooks check `enabled()` (one relaxed atomic load)
// before reading any clock.
class TraceSink {
 public:
  static TraceSink& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  void Clear();
  size_t size() const;

  void RecordComplete(std::string name, const char* category, int64_t ts_us,
                      int64_t dur_us, std::string args_json = "");

  std::vector<TraceEvent> Snapshot() const;

  // {"traceEvents":[...],"displayTimeUnit":"ms"} — loadable by
  // chrome://tracing and https://ui.perfetto.dev.
  std::string ToJson() const;
  // Returns false (and logs) when the file cannot be written.
  bool WriteFile(const std::string& path) const;

  // Dense id of the calling thread (0 = first thread ever seen).
  static int CurrentThreadId();

 private:
  TraceSink() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

// RAII span: records a complete event on destruction when the sink was
// enabled at construction. Cheap no-op otherwise.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category);
  TraceSpan(std::string name, const char* category, std::string args_json);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_ = false;
  std::string name_;
  const char* category_ = nullptr;
  std::string args_json_;
  int64_t start_us_ = 0;
};

}  // namespace wimpi::obs

#endif  // WIMPI_OBS_TRACE_H_
