#ifndef WIMPI_EXEC_SORT_H_
#define WIMPI_EXEC_SORT_H_

#include <string>
#include <vector>

#include "exec/counters.h"
#include "exec/filter.h"
#include "exec/relation.h"

namespace wimpi::exec {

struct SortKey {
  std::string col;
  bool ascending = true;
};

// Returns the permutation (row ids) ordering `src` by `keys`; string
// columns compare by dictionary value (lexicographic), not code. If
// limit >= 0, only the first `limit` rows of the permutation are produced
// (top-N via partial sort). Ties keep source order (stable).
SelVec SortPerm(const ColumnSource& src, const std::vector<SortKey>& keys,
                QueryStats* stats, int64_t limit = -1);

// Convenience: sorts a whole relation (gathers every column through the
// permutation).
Relation SortRelation(const Relation& in, const std::vector<SortKey>& keys,
                      QueryStats* stats, int64_t limit = -1);

}  // namespace wimpi::exec

#endif  // WIMPI_EXEC_SORT_H_
