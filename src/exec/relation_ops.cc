#include "exec/relation_ops.h"

#include <memory>
#include <utility>

#include "common/logging.h"
#include "exec/exec_options.h"
#include "obs/profiler.h"
#include "storage/column.h"

namespace wimpi::exec {

Relation ConcatRelations(std::vector<Relation> parts, QueryStats* stats) {
  WIMPI_CHECK(!parts.empty());
  int64_t rows_in = 0;
  for (const Relation& part : parts) rows_in += part.num_rows();
  obs::OpScope scope("ConcatRelations", rows_in);
  scope.set_rows_out(rows_in);
  Relation out;
  const Relation& first = parts[0];
  double bytes = 0;
  for (int c = 0; c < first.num_columns(); ++c) {
    const auto& proto = first.column(c);
    auto col = proto.dict() != nullptr
                   ? std::make_unique<storage::Column>(proto.type(),
                                                       proto.dict())
                   : std::make_unique<storage::Column>(proto.type());
    // Concatenated partials keep their statistics identity when every part
    // agrees on where the values came from (DESIGN.md §13).
    uint32_t origin = proto.origin();
    for (const Relation& part : parts) {
      if (part.column(c).origin() != origin) origin = 0;
    }
    col->set_origin(origin);
    for (const Relation& part : parts) {
      const auto& src = part.column(c);
      WIMPI_CHECK(src.type() == proto.type());
      WIMPI_CHECK(src.dict() == proto.dict())
          << "concat requires shared dictionaries";
      const int64_t n = src.size();
      switch (src.type()) {
        case storage::DataType::kInt64:
          col->MutableI64().insert(col->MutableI64().end(), src.I64Data(),
                                   src.I64Data() + n);
          break;
        case storage::DataType::kFloat64:
          col->MutableF64().insert(col->MutableF64().end(), src.F64Data(),
                                   src.F64Data() + n);
          break;
        default:
          col->MutableI32().insert(col->MutableI32().end(), src.I32Data(),
                                   src.I32Data() + n);
          break;
      }
      bytes += static_cast<double>(n) * storage::TypeWidth(src.type());
    }
    out.AddColumn(first.name(c), std::move(col));
  }
  if (stats != nullptr) {
    OpStats op;
    op.op = "concat_partials";
    op.seq_bytes = 2 * bytes;
    op.output_bytes = bytes;
    op.compute_ops = bytes / 8;
    op.parallel_fraction = 0.0;  // coordinator-side, single stream
    op.rows_in = static_cast<double>(rows_in);
    op.rows_out = static_cast<double>(rows_in);
    if (CurrentExecOptions().cardinality_estimator != nullptr) {
      op.est_rows = static_cast<double>(rows_in);  // pure concatenation
    }
    stats->Add(std::move(op));
    stats->TrackAlloc(bytes);
  }
  return out;
}

}  // namespace wimpi::exec
