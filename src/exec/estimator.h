#ifndef WIMPI_EXEC_ESTIMATOR_H_
#define WIMPI_EXEC_ESTIMATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/filter.h"
#include "exec/join.h"

namespace wimpi::exec {

// Predicts operator output cardinalities for plan-quality observability
// (DESIGN.md §13). Installed via ExecOptions.cardinality_estimator; the
// operator library calls it on the driving thread right before running an
// operator and stores the prediction in OpStats.est_rows next to the
// measured rows_in/rows_out, so obs::CardinalityResiduals can report
// Q-error per operator class. The concrete implementation lives above the
// operator layer (stats::StatsRegistry, backed by per-column sketches);
// this interface keeps src/exec free of a dependency on src/stats.
//
// Contract for every method: return the estimated number of OUTPUT rows,
// or a negative value when no estimate is possible (unknown column, no
// statistics); implementations must be const-thread-safe and must not
// mutate anything observable by execution — estimates never change
// answers.
class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;

  // Rows surviving one filter conjunct applied to `rows_in` input rows of
  // `src` (rows_in can be smaller than src.rows() when refining a prior
  // selection; conjuncts are estimated independently).
  virtual double EstimateFilterRows(const ColumnSource& src,
                                    const Predicate& pred,
                                    int64_t rows_in) const = 0;

  // Rows surviving a column-vs-column comparison filter.
  virtual double EstimateColCmpRows(const ColumnSource& src,
                                    const std::string& a, CmpOp op,
                                    const std::string& b,
                                    int64_t rows_in) const = 0;

  // Output rows of a hash join. Key columns identify their base-table
  // statistics through storage::Column::origin() (stamped at stats
  // collection time and propagated through gathers).
  virtual double EstimateJoinRows(
      const std::vector<const storage::Column*>& build_keys,
      int64_t build_rows,
      const std::vector<const storage::Column*>& probe_keys,
      int64_t probe_rows, JoinKind kind) const = 0;

  // Distinct groups produced by a hash aggregation over `group_by`.
  virtual double EstimateGroupRows(const ColumnSource& src,
                                   const std::vector<std::string>& group_by,
                                   int64_t rows_in) const = 0;
};

}  // namespace wimpi::exec

#endif  // WIMPI_EXEC_ESTIMATOR_H_
