#include "exec/filter.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "exec/estimator.h"
#include "exec/morsel_exec.h"
#include "obs/profiler.h"

namespace wimpi::exec {

Predicate Predicate::CmpI32(std::string col, CmpOp op, int32_t v) {
  Predicate p;
  p.kind_ = Kind::kCmpI32;
  p.col_ = std::move(col);
  p.op_ = op;
  p.i64_ = v;
  return p;
}

Predicate Predicate::CmpI64(std::string col, CmpOp op, int64_t v) {
  Predicate p;
  p.kind_ = Kind::kCmpI64;
  p.col_ = std::move(col);
  p.op_ = op;
  p.i64_ = v;
  return p;
}

Predicate Predicate::CmpF64(std::string col, CmpOp op, double v) {
  Predicate p;
  p.kind_ = Kind::kCmpF64;
  p.col_ = std::move(col);
  p.op_ = op;
  p.f64_ = v;
  return p;
}

Predicate Predicate::BetweenI32(std::string col, int32_t lo, int32_t hi) {
  Predicate p;
  p.kind_ = Kind::kBetweenI32;
  p.col_ = std::move(col);
  p.i64_ = lo;
  p.i64_hi_ = hi;
  return p;
}

Predicate Predicate::BetweenF64(std::string col, double lo, double hi) {
  Predicate p;
  p.kind_ = Kind::kBetweenF64;
  p.col_ = std::move(col);
  p.f64_ = lo;
  p.f64_hi_ = hi;
  return p;
}

Predicate Predicate::InI32(std::string col, std::vector<int32_t> values) {
  Predicate p;
  p.kind_ = Kind::kInI32;
  p.col_ = std::move(col);
  std::sort(values.begin(), values.end());
  p.in_values_ = std::move(values);
  return p;
}

Predicate Predicate::StrEq(std::string col, std::string value) {
  Predicate p = StrTest(
      std::move(col),
      [v = std::move(value)](std::string_view s) { return s == v; }, 2.0);
  p.str_hint_ = StrHint::kEq;
  p.str_hint_count_ = 1;
  return p;
}

Predicate Predicate::StrNe(std::string col, std::string value) {
  Predicate p = StrTest(
      std::move(col),
      [v = std::move(value)](std::string_view s) { return s != v; }, 2.0);
  p.str_hint_ = StrHint::kNe;
  p.str_hint_count_ = 1;
  return p;
}

Predicate Predicate::StrIn(std::string col, std::vector<std::string> values) {
  const int count = static_cast<int>(values.size());
  Predicate p = StrTest(
      std::move(col),
      [vs = std::move(values)](std::string_view s) {
        for (const auto& v : vs) {
          if (s == v) return true;
        }
        return false;
      },
      4.0);
  p.str_hint_ = StrHint::kIn;
  p.str_hint_count_ = count;
  return p;
}

Predicate Predicate::Like(std::string col, std::string pattern) {
  // Pattern matching costs grow with pattern complexity (MonetDB falls back
  // to PCRE for multi-wildcard patterns).
  const double cost = 4.0 + 2.0 * cost::kLikePerChar * pattern.size();
  Predicate p = StrTest(
      std::move(col),
      [pat = std::move(pattern)](std::string_view s) {
        return LikeMatch(s, pat);
      },
      cost);
  p.str_hint_ = StrHint::kLike;
  return p;
}

Predicate Predicate::NotLike(std::string col, std::string pattern) {
  const double cost = 4.0 + 2.0 * cost::kLikePerChar * pattern.size();
  Predicate p = StrTest(
      std::move(col),
      [pat = std::move(pattern)](std::string_view s) {
        return !LikeMatch(s, pat);
      },
      cost);
  p.str_hint_ = StrHint::kNotLike;
  return p;
}

Predicate Predicate::StrTest(std::string col,
                             std::function<bool(std::string_view)> test,
                             double cost_per_value) {
  Predicate p;
  p.kind_ = Kind::kStrPred;
  p.col_ = std::move(col);
  p.str_test_ = std::move(test);
  p.str_cost_ = cost_per_value;
  p.str_hint_ = StrHint::kGeneric;
  return p;
}

namespace {

template <typename T>
bool Cmp(T a, CmpOp op, T b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
  }
  return false;
}

}  // namespace

// Internal helper with access to Predicate fields.
class FilterRunner {
 public:
  // Appends rows from [candidates or 0..rows) that satisfy `p` to `out`.
  static void Apply(const ColumnSource& src, const Predicate& p,
                    const SelVec* candidates, SelVec* out,
                    QueryStats* stats) {
    const storage::Column& col = src.column(p.col_);
    const int64_t n =
        candidates != nullptr ? static_cast<int64_t>(candidates->size())
                              : src.rows();
    const int width = storage::TypeWidth(col.type());

    OpStats op;
    op.op = "filter(" + p.col_ + ")";
    const size_t out_before = out->size();
    op.rows_in = static_cast<double>(n);
    // Predicted before running; the estimate is observational only, so the
    // filter below is byte-for-byte the seed path either way.
    if (const CardinalityEstimator* est =
            CurrentExecOptions().cardinality_estimator) {
      op.est_rows = est->EstimateFilterRows(src, p, n);
    }
    // Candidate-list passes read scattered positions, but at cache-line
    // granularity even moderate selectivity touches most of the column:
    // traffic = rows * width * (1 - (1 - s)^(values per 64B line)).
    double touched = static_cast<double>(n) * width;
    if (candidates != nullptr && src.rows() > 0) {
      const double sel_frac =
          static_cast<double>(n) / static_cast<double>(src.rows());
      const double line_frac =
          1.0 - std::pow(1.0 - std::min(1.0, sel_frac), 64.0 / width);
      touched = static_cast<double>(src.rows()) * width * line_frac;
    }
    op.seq_bytes = touched;
    op.compute_ops = static_cast<double>(n) * cost::kCompare;

    // Sequential when PlannedThreads says so; otherwise morsel-parallel with
    // per-morsel partial selections concatenated in morsel order (the morsel
    // split ignores the thread count, so the output is the same SelVec the
    // sequential loop produces).
    const int threads = PlannedThreads(n);
    auto for_each = [&](auto&& test) {
      if (threads <= 1) {
        if (candidates != nullptr) {
          for (const int32_t row : *candidates) {
            if (test(row)) out->push_back(row);
          }
        } else {
          const int64_t rows = src.rows();
          for (int64_t row = 0; row < rows; ++row) {
            if (test(row)) out->push_back(static_cast<int32_t>(row));
          }
        }
        return;
      }
      std::vector<SelVec> parts(NumMorsels(n));
      RunMorsels(n, threads, [&](const parallel::Morsel& m) {
        SelVec& local = parts[m.index];
        if (candidates != nullptr) {
          for (int64_t k = m.begin; k < m.end; ++k) {
            const int32_t row = (*candidates)[k];
            if (test(row)) local.push_back(row);
          }
        } else {
          for (int64_t row = m.begin; row < m.end; ++row) {
            if (test(row)) local.push_back(static_cast<int32_t>(row));
          }
        }
      });
      size_t total = out->size();
      for (const SelVec& part : parts) total += part.size();
      out->reserve(total);
      for (const SelVec& part : parts) {
        out->insert(out->end(), part.begin(), part.end());
      }
    };

    switch (p.kind_) {
      case Predicate::Kind::kCmpI32: {
        const int32_t* d = col.I32Data();
        const auto v = static_cast<int32_t>(p.i64_);
        const CmpOp o = p.op_;
        for_each([&](int64_t r) { return Cmp(d[r], o, v); });
        break;
      }
      case Predicate::Kind::kCmpI64: {
        const int64_t* d = col.I64Data();
        const int64_t v = p.i64_;
        const CmpOp o = p.op_;
        for_each([&](int64_t r) { return Cmp(d[r], o, v); });
        break;
      }
      case Predicate::Kind::kCmpF64: {
        const double* d = col.F64Data();
        const double v = p.f64_;
        const CmpOp o = p.op_;
        for_each([&](int64_t r) { return Cmp(d[r], o, v); });
        break;
      }
      case Predicate::Kind::kBetweenI32: {
        const int32_t* d = col.I32Data();
        const auto lo = static_cast<int32_t>(p.i64_);
        const auto hi = static_cast<int32_t>(p.i64_hi_);
        for_each([&](int64_t r) { return d[r] >= lo && d[r] <= hi; });
        break;
      }
      case Predicate::Kind::kBetweenF64: {
        const double* d = col.F64Data();
        const double lo = p.f64_;
        const double hi = p.f64_hi_;
        for_each([&](int64_t r) { return d[r] >= lo && d[r] <= hi; });
        break;
      }
      case Predicate::Kind::kInI32: {
        const int32_t* d = col.I32Data();
        const auto& vals = p.in_values_;
        op.compute_ops = static_cast<double>(n) * cost::kCompare * 2;
        for_each([&](int64_t r) {
          return std::binary_search(vals.begin(), vals.end(), d[r]);
        });
        break;
      }
      case Predicate::Kind::kStrPred: {
        // Evaluate the test once per dictionary entry, then filter codes.
        const auto& dict = *col.dict();
        std::vector<uint8_t> match(dict.size());
        double dict_bytes = 0;
        for (int32_t c = 0; c < dict.size(); ++c) {
          const std::string_view v = dict.ValueAt(c);
          match[c] = p.str_test_(v) ? 1 : 0;
          dict_bytes += static_cast<double>(v.size());
        }
        op.compute_ops = static_cast<double>(dict.size()) * p.str_cost_ +
                         static_cast<double>(n) * cost::kCompare;
        op.seq_bytes += dict_bytes + static_cast<double>(dict.size());
        const int32_t* d = col.I32Data();
        for_each([&](int64_t r) { return match[d[r]] != 0; });
        break;
      }
    }

    op.output_bytes = static_cast<double>(out->size()) * sizeof(int32_t);
    op.seq_bytes += op.output_bytes;
    op.rows_out = static_cast<double>(out->size() - out_before);
    if (stats != nullptr) stats->Add(std::move(op));
  }
};

SelVec Filter(const ColumnSource& src, const std::vector<Predicate>& preds,
              QueryStats* stats, const SelVec* base) {
  WIMPI_CHECK(!preds.empty());
  obs::OpScope scope("Filter",
                     base != nullptr ? static_cast<int64_t>(base->size())
                                     : src.rows());
  if (stats != nullptr && src.table() != nullptr) {
    for (const auto& p : preds) {
      const auto& col = src.column(p.column_name());
      // String columns carry their dictionary into the working set (the
      // codes are 4 bytes, but evaluating a predicate touches the values).
      const double dict_bytes =
          col.dict() != nullptr ? col.dict()->MemoryBytes() : 0.0;
      stats->TouchBaseColumn(
          src.table()->name() + "." + p.column_name(),
          static_cast<double>(src.rows()) * storage::TypeWidth(col.type()) +
              dict_bytes);
    }
  }
  SelVec current;
  const SelVec* input = base;
  for (size_t i = 0; i < preds.size(); ++i) {
    SelVec next;
    next.reserve(input != nullptr ? input->size()
                                  : static_cast<size_t>(src.rows()) / 4);
    FilterRunner::Apply(src, preds[i], input, &next, stats);
    current = std::move(next);
    input = &current;
  }
  scope.set_rows_out(static_cast<int64_t>(current.size()));
  return current;
}

SelVec FilterColCmpCol(const ColumnSource& src, const std::string& a,
                       CmpOp op, const std::string& b, QueryStats* stats,
                       const SelVec* base) {
  const storage::Column& ca = src.column(a);
  const storage::Column& cb = src.column(b);
  WIMPI_CHECK(ca.type() != storage::DataType::kString &&
              cb.type() != storage::DataType::kString &&
              (ca.type() == cb.type() ||
               (storage::TypeWidth(ca.type()) == 4 &&
                storage::TypeWidth(cb.type()) == 4)))
      << "FilterColCmpCol type mismatch";
  SelVec out;
  const int64_t n = base != nullptr ? static_cast<int64_t>(base->size())
                                    : src.rows();
  obs::OpScope scope("FilterColCmpCol", n);
  out.reserve(n / 2);
  const int threads = PlannedThreads(n);
  auto run = [&](auto&& test) {
    if (threads <= 1) {
      if (base != nullptr) {
        for (const int32_t r : *base) {
          if (test(r)) out.push_back(r);
        }
      } else {
        for (int64_t r = 0; r < n; ++r) {
          if (test(static_cast<int32_t>(r))) {
            out.push_back(static_cast<int32_t>(r));
          }
        }
      }
      return;
    }
    std::vector<SelVec> parts(NumMorsels(n));
    RunMorsels(n, threads, [&](const parallel::Morsel& m) {
      SelVec& local = parts[m.index];
      for (int64_t k = m.begin; k < m.end; ++k) {
        const int32_t r =
            base != nullptr ? (*base)[k] : static_cast<int32_t>(k);
        if (test(r)) local.push_back(r);
      }
    });
    for (const SelVec& part : parts) {
      out.insert(out.end(), part.begin(), part.end());
    }
  };
  switch (ca.type()) {
    case storage::DataType::kInt64: {
      const int64_t* da = ca.I64Data();
      const int64_t* db = cb.I64Data();
      run([&](int32_t r) { return Cmp(da[r], op, db[r]); });
      break;
    }
    case storage::DataType::kFloat64: {
      const double* da = ca.F64Data();
      const double* db = cb.F64Data();
      run([&](int32_t r) { return Cmp(da[r], op, db[r]); });
      break;
    }
    default: {
      const int32_t* da = ca.I32Data();
      const int32_t* db = cb.I32Data();
      run([&](int32_t r) { return Cmp(da[r], op, db[r]); });
      break;
    }
  }
  if (stats != nullptr) {
    OpStats op_stats;
    op_stats.op = "filter(" + a + " vs " + b + ")";
    op_stats.compute_ops = static_cast<double>(n) * cost::kCompare;
    op_stats.seq_bytes = static_cast<double>(n) * 8 +
                         static_cast<double>(out.size()) * sizeof(int32_t);
    op_stats.output_bytes = static_cast<double>(out.size()) * sizeof(int32_t);
    op_stats.rows_in = static_cast<double>(n);
    op_stats.rows_out = static_cast<double>(out.size());
    if (const CardinalityEstimator* est =
            CurrentExecOptions().cardinality_estimator) {
      op_stats.est_rows = est->EstimateColCmpRows(src, a, op, b, n);
    }
    stats->Add(std::move(op_stats));
  }
  scope.set_rows_out(static_cast<int64_t>(out.size()));
  return out;
}

SelVec UnionSel(const std::vector<const SelVec*>& sels, QueryStats* stats) {
  SelVec out;
  size_t total = 0;
  for (const SelVec* s : sels) total += s->size();
  obs::OpScope scope("UnionSel", static_cast<int64_t>(total));
  out.reserve(total);
  for (const SelVec* s : sels) out.insert(out.end(), s->begin(), s->end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (stats != nullptr) {
    OpStats op;
    op.op = "union_sel";
    op.compute_ops = static_cast<double>(total) * cost::kSortPerCmp *
                     (total > 1 ? std::max(1.0, std::log2(double(total))) : 1);
    op.seq_bytes = static_cast<double>(total + out.size()) * sizeof(int32_t);
    op.output_bytes = static_cast<double>(out.size()) * sizeof(int32_t);
    op.rows_in = static_cast<double>(total);
    op.rows_out = static_cast<double>(out.size());
    stats->Add(std::move(op));
  }
  scope.set_rows_out(static_cast<int64_t>(out.size()));
  return out;
}

std::unique_ptr<storage::Column> Gather(const storage::Column& src,
                                        const SelVec& sel,
                                        QueryStats* stats) {
  auto out = src.dict() != nullptr
                 ? std::make_unique<storage::Column>(src.type(), src.dict())
                 : std::make_unique<storage::Column>(src.type());
  // A gathered column holds a subset of the source's values, so it keeps
  // the source's statistics identity (DESIGN.md §13).
  out->set_origin(src.origin());
  const int64_t n = static_cast<int64_t>(sel.size());
  obs::OpScope scope("Gather", n);
  scope.set_rows_out(n);
  out->Reserve(n);
  const int threads = PlannedThreads(n);
  // The parallel path pre-sizes the output and writes disjoint morsel
  // ranges, which yields the exact rows the sequential push_back loop does.
  auto fill = [&](auto* d, auto& v) {
    if (threads <= 1) {
      for (const int32_t r : sel) v.push_back(d[r]);
      return;
    }
    v.resize(n);
    RunMorsels(n, threads, [&](const parallel::Morsel& m) {
      for (int64_t k = m.begin; k < m.end; ++k) v[k] = d[sel[k]];
    });
  };
  switch (src.type()) {
    case storage::DataType::kInt64:
      fill(src.I64Data(), out->MutableI64());
      break;
    case storage::DataType::kFloat64:
      fill(src.F64Data(), out->MutableF64());
      break;
    default:
      fill(src.I32Data(), out->MutableI32());
      break;
  }
  if (stats != nullptr) {
    const int width = storage::TypeWidth(src.type());
    OpStats op;
    op.op = "gather";
    op.compute_ops = static_cast<double>(n) * cost::kGather;
    // A gather reads the selection vector sequentially and the source
    // column at cache-line granularity (candidate lists are ascending, so
    // the traffic is sequential over the touched lines).
    double src_touched = static_cast<double>(n) * width;
    if (src.size() > 0) {
      const double sel_frac =
          static_cast<double>(n) / static_cast<double>(src.size());
      const double line_frac =
          1.0 - std::pow(1.0 - std::min(1.0, sel_frac), 64.0 / width);
      src_touched = static_cast<double>(src.size()) * width * line_frac;
    }
    op.seq_bytes = static_cast<double>(n) * (sizeof(int32_t) + width) +
                   src_touched;
    op.output_bytes = static_cast<double>(n) * width;
    op.rows_in = static_cast<double>(n);
    op.rows_out = static_cast<double>(n);
    if (CurrentExecOptions().cardinality_estimator != nullptr) {
      op.est_rows = static_cast<double>(n);  // cardinality-preserving
    }
    stats->Add(std::move(op));
    stats->TrackAlloc(static_cast<double>(n) * width);
  }
  return out;
}

Relation GatherColumns(
    const ColumnSource& src,
    const std::vector<std::pair<std::string, std::string>>& cols,
    const SelVec& sel, QueryStats* stats) {
  Relation out;
  obs::OpScope scope("GatherColumns", static_cast<int64_t>(sel.size()));
  scope.set_rows_out(static_cast<int64_t>(sel.size()));
  for (const auto& [in_name, out_name] : cols) {
    if (stats != nullptr && src.table() != nullptr) {
      const auto& col = src.column(in_name);
      const double dict_bytes =
          col.dict() != nullptr ? col.dict()->MemoryBytes() : 0.0;
      stats->TouchBaseColumn(
          src.table()->name() + "." + in_name,
          static_cast<double>(src.rows()) * storage::TypeWidth(col.type()) +
              dict_bytes);
    }
    out.AddColumn(out_name, Gather(src.column(in_name), sel, stats));
  }
  return out;
}

std::unique_ptr<storage::Column> GatherWithDefault(
    const storage::Column& src, const std::vector<int32_t>& idx, double def,
    QueryStats* stats) {
  auto out = std::make_unique<storage::Column>(src.type());
  // Outer-join fill adds at most one value (`def`) outside the source's
  // domain; close enough for estimation to keep the origin.
  out->set_origin(src.origin());
  const int64_t n = static_cast<int64_t>(idx.size());
  obs::OpScope scope("GatherWithDefault", n);
  scope.set_rows_out(n);
  out->Reserve(n);
  const int threads = PlannedThreads(n);
  auto fill = [&](auto* d, auto& v) {
    using T = std::decay_t<decltype(v[0])>;
    const T dv = static_cast<T>(def);
    if (threads <= 1) {
      for (const int32_t r : idx) v.push_back(r < 0 ? dv : d[r]);
      return;
    }
    v.resize(n);
    RunMorsels(n, threads, [&](const parallel::Morsel& m) {
      for (int64_t k = m.begin; k < m.end; ++k) {
        const int32_t r = idx[k];
        v[k] = r < 0 ? dv : d[r];
      }
    });
  };
  switch (src.type()) {
    case storage::DataType::kInt64:
      fill(src.I64Data(), out->MutableI64());
      break;
    case storage::DataType::kFloat64:
      fill(src.F64Data(), out->MutableF64());
      break;
    default:
      fill(src.I32Data(), out->MutableI32());
      break;
  }
  if (stats != nullptr) {
    const int width = storage::TypeWidth(src.type());
    OpStats op;
    op.op = "gather_default";
    op.compute_ops = static_cast<double>(n) * cost::kGather;
    op.seq_bytes = static_cast<double>(n) * (sizeof(int32_t) + 2 * width);
    op.output_bytes = static_cast<double>(n) * width;
    op.rows_in = static_cast<double>(n);
    op.rows_out = static_cast<double>(n);
    if (CurrentExecOptions().cardinality_estimator != nullptr) {
      op.est_rows = static_cast<double>(n);  // cardinality-preserving
    }
    stats->Add(std::move(op));
    stats->TrackAlloc(static_cast<double>(n) * width);
  }
  return out;
}

}  // namespace wimpi::exec
