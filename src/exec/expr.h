#ifndef WIMPI_EXEC_EXPR_H_
#define WIMPI_EXEC_EXPR_H_

#include <functional>
#include <memory>
#include <vector>

#include "exec/counters.h"
#include "storage/column.h"

namespace wimpi::exec {

// Column-at-a-time expression kernels. Each materializes its result (the
// MonetDB execution style the paper benchmarked) and records the work.

// out[i] = a[i] * b[i]
std::unique_ptr<storage::Column> MulF64(const storage::Column& a,
                                        const storage::Column& b,
                                        QueryStats* stats);
// out[i] = a[i] + b[i]
std::unique_ptr<storage::Column> AddF64(const storage::Column& a,
                                        const storage::Column& b,
                                        QueryStats* stats);
// out[i] = a[i] - b[i]
std::unique_ptr<storage::Column> SubF64(const storage::Column& a,
                                        const storage::Column& b,
                                        QueryStats* stats);
// out[i] = c - a[i] (e.g. 1 - l_discount)
std::unique_ptr<storage::Column> ConstMinusF64(double c,
                                               const storage::Column& a,
                                               QueryStats* stats);
// out[i] = c + a[i] (e.g. 1 + l_tax)
std::unique_ptr<storage::Column> ConstPlusF64(double c,
                                              const storage::Column& a,
                                              QueryStats* stats);
// out[i] = a[i] * c
std::unique_ptr<storage::Column> MulConstF64(const storage::Column& a,
                                             double c, QueryStats* stats);

// EXTRACT(YEAR FROM d) as an int32 column.
std::unique_ptr<storage::Column> ExtractYear(const storage::Column& dates,
                                             QueryStats* stats);

// Per-row 0/1 mask from a test over a string column's dictionary values
// (CASE WHEN <string predicate> THEN ... ELSE 0).
std::vector<uint8_t> StrMatchMask(const storage::Column& col,
                                  const std::function<bool(std::string_view)>& test,
                                  double cost_per_value, QueryStats* stats);

// Per-row 0/1 mask from an int32/date column test.
std::vector<uint8_t> I32EqMask(const storage::Column& col, int32_t value,
                               QueryStats* stats);

// out[i] = mask[i] ? a[i] : 0
std::unique_ptr<storage::Column> MaskedF64(const storage::Column& a,
                                           const std::vector<uint8_t>& mask,
                                           QueryStats* stats);

// out[i] = a[i] / b[i] (b[i] == 0 yields 0, which only arises on empty
// groups that SQL would make NULL).
std::unique_ptr<storage::Column> DivF64(const storage::Column& a,
                                        const storage::Column& b,
                                        QueryStats* stats);

// Converts an int32/int64/date column to float64.
std::unique_ptr<storage::Column> CastF64(const storage::Column& a,
                                         QueryStats* stats);

}  // namespace wimpi::exec

#endif  // WIMPI_EXEC_EXPR_H_
