#ifndef WIMPI_EXEC_FILTER_H_
#define WIMPI_EXEC_FILTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/counters.h"
#include "exec/relation.h"
#include "storage/table.h"

namespace wimpi::exec {

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

// One conjunct of a scan filter. Factory functions cover every predicate
// shape in TPC-H; string predicates are evaluated once per dictionary entry
// (a code bitmap) and then applied to the code column, which is both how a
// dictionary-encoded column store really does it and what makes the Pi's
// strong compute / weak bandwidth trade-off visible in the model.
class Predicate {
 public:
  enum class Kind {
    kCmpI32,  // also dates
    kCmpI64,
    kCmpF64,
    kBetweenI32,
    kBetweenF64,
    kInI32,
    kStrPred,  // arbitrary per-dictionary-value test
  };

  // Shape hint for kStrPred conjuncts. The dictionary test itself is an
  // opaque lambda; the factory that built it records what it means so a
  // cardinality estimator can pick a selectivity formula (eq -> 1/NDV,
  // in -> k/NDV, like/generic -> defaults). Purely observational.
  enum class StrHint {
    kNone,     // not a string predicate
    kEq,
    kNe,
    kIn,       // str_hint_count() values
    kLike,
    kNotLike,
    kGeneric,  // arbitrary StrTest
  };

  static Predicate CmpI32(std::string col, CmpOp op, int32_t v);
  static Predicate CmpDate(std::string col, CmpOp op, int32_t days) {
    return CmpI32(std::move(col), op, days);
  }
  static Predicate CmpI64(std::string col, CmpOp op, int64_t v);
  static Predicate CmpF64(std::string col, CmpOp op, double v);
  // Inclusive ranges.
  static Predicate BetweenI32(std::string col, int32_t lo, int32_t hi);
  static Predicate BetweenDate(std::string col, int32_t lo, int32_t hi) {
    return BetweenI32(std::move(col), lo, hi);
  }
  static Predicate BetweenF64(std::string col, double lo, double hi);
  static Predicate InI32(std::string col, std::vector<int32_t> values);

  // String predicates (dictionary-evaluated).
  static Predicate StrEq(std::string col, std::string value);
  static Predicate StrNe(std::string col, std::string value);
  static Predicate StrIn(std::string col, std::vector<std::string> values);
  static Predicate Like(std::string col, std::string pattern);
  static Predicate NotLike(std::string col, std::string pattern);
  // Arbitrary test; `cost_per_value` is the abstract compute units charged
  // per dictionary entry when building the code bitmap.
  static Predicate StrTest(std::string col,
                           std::function<bool(std::string_view)> test,
                           double cost_per_value);

  Kind kind() const { return kind_; }
  const std::string& column_name() const { return col_; }

  // Read-only views for cardinality estimation (stats::StatsRegistry).
  // Which fields are meaningful depends on kind(): cmp kinds use op() and
  // the lo value; between kinds use [lo, hi]; kInI32 uses in_values();
  // kStrPred uses str_hint()/str_hint_count().
  CmpOp op() const { return op_; }
  int64_t i64_lo() const { return i64_; }
  int64_t i64_hi() const { return i64_hi_; }
  double f64_lo() const { return f64_; }
  double f64_hi() const { return f64_hi_; }
  const std::vector<int32_t>& in_values() const { return in_values_; }
  StrHint str_hint() const { return str_hint_; }
  int str_hint_count() const { return str_hint_count_; }

 private:
  friend class FilterRunner;
  Predicate() = default;

  Kind kind_ = Kind::kCmpI32;
  std::string col_;
  CmpOp op_ = CmpOp::kEq;
  int64_t i64_ = 0;
  int64_t i64_hi_ = 0;
  double f64_ = 0;
  double f64_hi_ = 0;
  std::vector<int32_t> in_values_;
  std::function<bool(std::string_view)> str_test_;
  double str_cost_ = 1.0;
  StrHint str_hint_ = StrHint::kNone;
  int str_hint_count_ = 0;
};

// A source of named columns: either a base table or an intermediate
// relation. Cheap to copy.
class ColumnSource {
 public:
  explicit ColumnSource(const storage::Table& t)
      : table_(&t), rows_(t.num_rows()) {}
  explicit ColumnSource(const Relation& r)
      : relation_(&r), rows_(r.num_rows()) {}

  const storage::Column& column(const std::string& name) const {
    return table_ != nullptr ? table_->column(name)
                             : relation_->column(name);
  }
  int64_t rows() const { return rows_; }

  // Non-null when this source is a base table (used for working-set
  // accounting).
  const storage::Table* table() const { return table_; }

 private:
  const storage::Table* table_ = nullptr;
  const Relation* relation_ = nullptr;
  int64_t rows_ = 0;
};

// Applies a conjunction of predicates; returns selected row ids in
// ascending order. If `base` is non-null, refines that selection instead of
// scanning all rows.
SelVec Filter(const ColumnSource& src, const std::vector<Predicate>& preds,
              QueryStats* stats, const SelVec* base = nullptr);

// Column-vs-column comparison filter (e.g. l_commitdate < l_receiptdate in
// Q4/Q12/Q21, l_quantity < limit in Q17/Q20). Both columns must have the
// same width class: int32/date vs int32/date, int64 vs int64, or float64 vs
// float64. Refines `base` when given.
SelVec FilterColCmpCol(const ColumnSource& src, const std::string& a,
                       CmpOp op, const std::string& b, QueryStats* stats,
                       const SelVec* base = nullptr);

// Sorted-merge union of selection vectors (for disjunctions, e.g. Q19).
SelVec UnionSel(const std::vector<const SelVec*>& sels, QueryStats* stats);

// Materializes `src[sel]` into a fresh column.
std::unique_ptr<storage::Column> Gather(const storage::Column& src,
                                        const SelVec& sel,
                                        QueryStats* stats);

// Gathers several columns at once into a Relation with the given output
// names ({{"l_orderkey", "okey"}, ...}); pass the same name twice to keep it.
Relation GatherColumns(
    const ColumnSource& src,
    const std::vector<std::pair<std::string, std::string>>& cols,
    const SelVec& sel, QueryStats* stats);

// Gathers by explicit indices where -1 yields `def` (left outer join fill).
std::unique_ptr<storage::Column> GatherWithDefault(
    const storage::Column& src, const std::vector<int32_t>& idx, double def,
    QueryStats* stats);

}  // namespace wimpi::exec

#endif  // WIMPI_EXEC_FILTER_H_
