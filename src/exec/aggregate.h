#ifndef WIMPI_EXEC_AGGREGATE_H_
#define WIMPI_EXEC_AGGREGATE_H_

#include <string>
#include <vector>

#include "exec/counters.h"
#include "exec/filter.h"
#include "exec/relation.h"

namespace wimpi::exec {

enum class AggFn {
  kSum,        // double result
  kSumI64,     // int64 result over int32/int64 input (distributed count
               // merges must stay integral)
  kMin,        // input type preserved
  kMax,        // input type preserved
  kCount,      // int64 result (no NULLs, so kCount == kCountStar over a col)
  kCountStar,  // int64 result; `in` ignored
  kAvg,        // double result
};

struct AggSpec {
  AggFn fn;
  std::string in;   // input column name (ignored for kCountStar)
  std::string out;  // output column name
};

// Grouped aggregation via a bucket-chained hash table on the group-key
// columns. Output columns: the group keys (values gathered from each
// group's first row) followed by one column per AggSpec, in order.
// With an empty `group_by`, produces exactly one row (global aggregate),
// even over empty input (SQL semantics: COUNT = 0, SUM/AVG/MIN/MAX = 0
// here since the engine has no NULLs).
Relation HashAggregate(const ColumnSource& src,
                       const std::vector<std::string>& group_by,
                       const std::vector<AggSpec>& aggs, QueryStats* stats);

// Scalar helpers for subquery thresholds (Q11, Q15, Q17, Q22).
double SumF64(const storage::Column& col, QueryStats* stats);
double AvgF64(const storage::Column& col, QueryStats* stats);
double MaxF64(const storage::Column& col, QueryStats* stats);

}  // namespace wimpi::exec

#endif  // WIMPI_EXEC_AGGREGATE_H_
