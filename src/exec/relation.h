#ifndef WIMPI_EXEC_RELATION_H_
#define WIMPI_EXEC_RELATION_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "storage/column.h"

namespace wimpi::exec {

// Row indices selected from a table or relation. Fits SF <= ~300.
using SelVec = std::vector<int32_t>;

// A fully materialized intermediate result: named, aligned columns.
// MonetDB-style column-at-a-time execution materializes every operator
// output; the work counters account for that traffic, which is exactly the
// behaviour the paper measured.
class Relation {
 public:
  Relation() = default;

  // Non-copyable (columns can be large); movable.
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  int num_columns() const { return static_cast<int>(columns_.size()); }
  int64_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0]->size();
  }

  void AddColumn(std::string name, std::unique_ptr<storage::Column> col) {
    names_.push_back(std::move(name));
    columns_.push_back(std::move(col));
  }

  const std::string& name(int i) const { return names_[i]; }
  void SetName(int i, std::string name) { names_[i] = std::move(name); }
  storage::Column& column(int i) { return *columns_[i]; }
  const storage::Column& column(int i) const { return *columns_[i]; }

  int ColumnIndex(const std::string& name) const {
    for (size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) return static_cast<int>(i);
    }
    WIMPI_CHECK(false) << "no column '" << name << "' in relation";
    return -1;
  }
  const storage::Column& column(const std::string& name) const {
    return *columns_[ColumnIndex(name)];
  }
  bool HasColumn(const std::string& name) const {
    for (const auto& n : names_) {
      if (n == name) return true;
    }
    return false;
  }

  // Transfers a column out (used when re-keying results).
  std::unique_ptr<storage::Column> TakeColumn(int i) {
    return std::move(columns_[i]);
  }

  int64_t ValueBytes() const {
    int64_t b = 0;
    for (const auto& c : columns_) b += c->ValueBytes();
    return b;
  }

 private:
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<storage::Column>> columns_;
};

}  // namespace wimpi::exec

#endif  // WIMPI_EXEC_RELATION_H_
