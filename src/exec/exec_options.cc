#include "exec/exec_options.h"

#include <algorithm>
#include <thread>

#include "parallel/thread_pool.h"

namespace wimpi::exec {

namespace {
// Per-thread: every query driver carries its own ambient options, which is
// what lets the service run many queries concurrently. A fresh thread
// starts from the defaults (one thread, seed morsel size), exactly like
// the old process-global did at startup.
thread_local ExecOptions g_options;
}  // namespace

const ExecOptions& CurrentExecOptions() { return g_options; }

void SetExecOptions(const ExecOptions& opts) { g_options = opts; }

ScopedExecOptions::ScopedExecOptions(const ExecOptions& opts)
    : prev_(CurrentExecOptions()) {
  SetExecOptions(opts);
}

ScopedExecOptions::~ScopedExecOptions() { SetExecOptions(prev_); }

int PlannedThreads(int64_t rows) {
  const ExecOptions& opts = g_options;
  int threads = opts.num_threads;
  if (threads <= 0) {
    threads =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  if (threads == 1) return 1;
  if (parallel::ThreadPool::OnWorkerThread()) return 1;
  const int64_t morsels =
      (rows + opts.morsel_rows - 1) / std::max<int64_t>(1, opts.morsel_rows);
  return static_cast<int>(std::min<int64_t>(threads, std::max<int64_t>(1,
                                                                       morsels)));
}

}  // namespace wimpi::exec
