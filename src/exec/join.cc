#include "exec/join.h"

#include <bit>

#include "common/hash.h"
#include "common/logging.h"
#include "exec/estimator.h"
#include "exec/morsel_exec.h"
#include "obs/profiler.h"

namespace wimpi::exec {
namespace {

using storage::Column;
using storage::DataType;

uint64_t ValueHash(const Column& col, int64_t row) {
  switch (col.type()) {
    case DataType::kInt64:
      return HashInt64(static_cast<uint64_t>(col.I64Data()[row]));
    case DataType::kFloat64: {
      double d = col.F64Data()[row];
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return HashInt64(bits);
    }
    default:
      return HashInt64(static_cast<uint64_t>(
          static_cast<uint32_t>(col.I32Data()[row])));
  }
}

uint64_t RowHash(const std::vector<const Column*>& keys, int64_t row) {
  uint64_t h = ValueHash(*keys[0], row);
  for (size_t i = 1; i < keys.size(); ++i) {
    h = HashCombine(h, ValueHash(*keys[i], row));
  }
  return h;
}

bool ValueEq(const Column& a, int64_t ra, const Column& b, int64_t rb) {
  switch (a.type()) {
    case DataType::kInt64:
      return a.I64Data()[ra] == b.I64Data()[rb];
    case DataType::kFloat64:
      return a.F64Data()[ra] == b.F64Data()[rb];
    default:
      return a.I32Data()[ra] == b.I32Data()[rb];
  }
}

bool RowEq(const std::vector<const Column*>& a, int64_t ra,
           const std::vector<const Column*>& b, int64_t rb) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (!ValueEq(*a[i], ra, *b[i], rb)) return false;
  }
  return true;
}

int KeyWidth(const std::vector<const Column*>& keys) {
  int w = 0;
  for (const Column* c : keys) w += storage::TypeWidth(c->type());
  return w;
}

}  // namespace

JoinResult HashJoin(const std::vector<const Column*>& build_keys,
                    const std::vector<const Column*>& probe_keys,
                    JoinKind kind, QueryStats* stats) {
  WIMPI_CHECK(!build_keys.empty());
  WIMPI_CHECK_EQ(build_keys.size(), probe_keys.size());
  for (size_t i = 0; i < build_keys.size(); ++i) {
    WIMPI_CHECK(build_keys[i]->type() == probe_keys[i]->type())
        << "join key type mismatch at position " << i;
  }

  const int64_t n_build = build_keys[0]->size();
  const int64_t n_probe = probe_keys[0]->size();
  obs::OpScope join_scope("HashJoin", n_probe);

  // Bucket-chained table: head[bucket] -> entry index, next[] chains.
  const uint64_t n_buckets =
      std::bit_ceil(static_cast<uint64_t>(std::max<int64_t>(n_build, 1)) * 2);
  const uint64_t mask = n_buckets - 1;
  std::vector<int32_t> head(n_buckets, -1);
  std::vector<int32_t> next(n_build, -1);

  const int bkw = KeyWidth(build_keys);
  const int pkw = KeyWidth(probe_keys);
  const double table_bytes = static_cast<double>(n_buckets) * 4 +
                             static_cast<double>(n_build) * (4 + bkw);

  {
    obs::OpScope build_scope("hash_build", n_build);
    build_scope.set_rows_out(n_build);
    const int build_threads = PlannedThreads(n_build);
    if (build_threads <= 1) {
      for (int64_t i = 0; i < n_build; ++i) {
        const uint64_t b = RowHash(build_keys, i) & mask;
        next[i] = head[b];
        head[b] = static_cast<int32_t>(i);
      }
    } else {
      // Two-phase parallel build. Phase 1 precomputes the row hashes (pure
      // element-wise map). Phase 2 partitions the *bucket* range: each task
      // scans every row in order but links only the rows that land in its
      // own buckets, so no two tasks touch the same chain and every chain
      // ends up in the exact LIFO order the sequential insert produces.
      std::vector<uint64_t> hashes(n_build);
      RunMorsels(n_build, build_threads, [&](const parallel::Morsel& m) {
        for (int64_t i = m.begin; i < m.end; ++i) {
          hashes[i] = RowHash(build_keys, i) & mask;
        }
      });
      const int64_t buckets = static_cast<int64_t>(n_buckets);
      const int64_t per_task =
          (buckets + build_threads - 1) / build_threads;
      RunChunks(buckets, per_task, build_threads,
                [&](const parallel::Morsel& m) {
                  const uint64_t lo = static_cast<uint64_t>(m.begin);
                  const uint64_t hi = static_cast<uint64_t>(m.end);
                  for (int64_t i = 0; i < n_build; ++i) {
                    const uint64_t b = hashes[i];
                    if (b < lo || b >= hi) continue;
                    next[i] = head[b];
                    head[b] = static_cast<int32_t>(i);
                  }
                });
    }
    if (stats != nullptr) {
      OpStats op;
      op.op = "hash_build";
      op.compute_ops = static_cast<double>(n_build) * cost::kHashInsert *
                       static_cast<double>(build_keys.size());
      op.seq_bytes = static_cast<double>(n_build) * bkw;
      op.rand_count = static_cast<double>(n_build);
      op.rand_struct_bytes = table_bytes;
      // The build inserts every input row; its cardinality is exact by
      // construction.
      op.rows_in = static_cast<double>(n_build);
      op.rows_out = static_cast<double>(n_build);
      if (CurrentExecOptions().cardinality_estimator != nullptr) {
        op.est_rows = static_cast<double>(n_build);
      }
      stats->Add(std::move(op));
      stats->TrackAlloc(table_bytes);
    }
  }

  JoinResult result;
  double chain_steps = 0;
  const bool want_pairs =
      kind == JoinKind::kInner || kind == JoinKind::kLeftOuter;

  // The finished table is read-only from here on: probe morsels share it
  // and emit per-morsel pair lists that concatenate in morsel order.
  auto probe_range = [&](int64_t begin, int64_t end,
                         std::vector<int32_t>* build_out,
                         std::vector<int32_t>* probe_out, double* steps) {
    for (int64_t p = begin; p < end; ++p) {
      const uint64_t b = RowHash(probe_keys, p) & mask;
      bool matched = false;
      for (int32_t e = head[b]; e >= 0; e = next[e]) {
        ++*steps;
        if (!RowEq(build_keys, e, probe_keys, p)) continue;
        matched = true;
        if (want_pairs) {
          build_out->push_back(e);
          probe_out->push_back(static_cast<int32_t>(p));
        } else if (kind == JoinKind::kSemi) {
          probe_out->push_back(static_cast<int32_t>(p));
          break;
        } else {  // kAnti: keep walking to be sure, but we can stop early
          break;
        }
      }
      if (!matched) {
        if (kind == JoinKind::kAnti) {
          probe_out->push_back(static_cast<int32_t>(p));
        } else if (kind == JoinKind::kLeftOuter) {
          build_out->push_back(-1);
          probe_out->push_back(static_cast<int32_t>(p));
        }
      }
    }
  };

  {
    obs::OpScope probe_scope("hash_probe", n_probe);
    const int probe_threads = PlannedThreads(n_probe);
    if (probe_threads <= 1) {
      probe_range(0, n_probe, &result.build_idx, &result.probe_idx,
                  &chain_steps);
    } else {
      struct ProbePart {
        std::vector<int32_t> build_idx;
        std::vector<int32_t> probe_idx;
        double chain_steps = 0;
      };
      std::vector<ProbePart> parts(NumMorsels(n_probe));
      RunMorsels(n_probe, probe_threads, [&](const parallel::Morsel& m) {
        ProbePart& part = parts[m.index];
        probe_range(m.begin, m.end, &part.build_idx, &part.probe_idx,
                    &part.chain_steps);
      });
      size_t total_b = 0, total_p = 0;
      for (const ProbePart& part : parts) {
        total_b += part.build_idx.size();
        total_p += part.probe_idx.size();
      }
      result.build_idx.reserve(total_b);
      result.probe_idx.reserve(total_p);
      for (const ProbePart& part : parts) {
        result.build_idx.insert(result.build_idx.end(),
                                part.build_idx.begin(),
                                part.build_idx.end());
        result.probe_idx.insert(result.probe_idx.end(),
                                part.probe_idx.begin(),
                                part.probe_idx.end());
        chain_steps += part.chain_steps;
      }
    }

    if (stats != nullptr) {
      OpStats op;
      op.op = "hash_probe";
      op.compute_ops =
          (static_cast<double>(n_probe) * cost::kHashProbe + chain_steps) *
          static_cast<double>(probe_keys.size());
      op.seq_bytes = static_cast<double>(n_probe) * pkw;
      op.rand_count = static_cast<double>(n_probe) + chain_steps;
      op.rand_struct_bytes = table_bytes;
      const double out_bytes =
          static_cast<double>(result.build_idx.size() +
                              result.probe_idx.size()) *
          sizeof(int32_t);
      op.output_bytes = out_bytes;
      op.seq_bytes += out_bytes;
      op.rows_in = static_cast<double>(n_probe);
      op.rows_out = static_cast<double>(result.probe_idx.size());
      if (const CardinalityEstimator* est =
              CurrentExecOptions().cardinality_estimator) {
        op.est_rows = est->EstimateJoinRows(build_keys, n_build, probe_keys,
                                            n_probe, kind);
      }
      stats->Add(std::move(op));
      stats->TrackAlloc(out_bytes);
      stats->TrackFree(table_bytes);
    }
    probe_scope.set_rows_out(static_cast<int64_t>(result.probe_idx.size()));
  }
  join_scope.set_rows_out(static_cast<int64_t>(result.probe_idx.size()));
  return result;
}

}  // namespace wimpi::exec
