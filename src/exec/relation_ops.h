#ifndef WIMPI_EXEC_RELATION_OPS_H_
#define WIMPI_EXEC_RELATION_OPS_H_

#include <vector>

#include "exec/counters.h"
#include "exec/relation.h"

namespace wimpi::exec {

// Concatenates relations with identical schemas (string columns must share
// dictionaries). Used by the cluster coordinator to merge node partials and
// by the parallel aggregation path to merge thread-local partial tables.
Relation ConcatRelations(std::vector<Relation> parts, QueryStats* stats);

}  // namespace wimpi::exec

#endif  // WIMPI_EXEC_RELATION_OPS_H_
