#include "exec/aggregate.h"

#include <bit>
#include <limits>

#include "common/hash.h"
#include "common/logging.h"

namespace wimpi::exec {
namespace {

using storage::Column;
using storage::DataType;

uint64_t ValueHash(const Column& col, int64_t row) {
  switch (col.type()) {
    case DataType::kInt64:
      return HashInt64(static_cast<uint64_t>(col.I64Data()[row]));
    case DataType::kFloat64: {
      double d = col.F64Data()[row];
      uint64_t bits;
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return HashInt64(bits);
    }
    default:
      return HashInt64(
          static_cast<uint64_t>(static_cast<uint32_t>(col.I32Data()[row])));
  }
}

bool ValueEq(const Column& c, int64_t a, int64_t b) {
  switch (c.type()) {
    case DataType::kInt64:
      return c.I64Data()[a] == c.I64Data()[b];
    case DataType::kFloat64:
      return c.F64Data()[a] == c.F64Data()[b];
    default:
      return c.I32Data()[a] == c.I32Data()[b];
  }
}

double ValueAsF64(const Column& c, int64_t row) {
  switch (c.type()) {
    case DataType::kInt64:
      return static_cast<double>(c.I64Data()[row]);
    case DataType::kFloat64:
      return c.F64Data()[row];
    default:
      return static_cast<double>(c.I32Data()[row]);
  }
}

// Running state for one aggregate over all groups.
struct AggState {
  AggFn fn;
  const Column* in = nullptr;  // null for kCountStar
  std::vector<double> acc;     // sum / min / max
  std::vector<int64_t> count;  // kCount/kCountStar/kAvg

  void AddGroup() {
    switch (fn) {
      case AggFn::kSum:
      case AggFn::kAvg:
        acc.push_back(0);
        if (fn == AggFn::kAvg) count.push_back(0);
        break;
      case AggFn::kSumI64:
        count.push_back(0);
        break;
      case AggFn::kMin:
        acc.push_back(std::numeric_limits<double>::infinity());
        break;
      case AggFn::kMax:
        acc.push_back(-std::numeric_limits<double>::infinity());
        break;
      case AggFn::kCount:
      case AggFn::kCountStar:
        count.push_back(0);
        break;
    }
  }

  void Update(int32_t g, int64_t row) {
    switch (fn) {
      case AggFn::kSum:
        acc[g] += ValueAsF64(*in, row);
        break;
      case AggFn::kAvg:
        acc[g] += ValueAsF64(*in, row);
        ++count[g];
        break;
      case AggFn::kMin:
        acc[g] = std::min(acc[g], ValueAsF64(*in, row));
        break;
      case AggFn::kMax:
        acc[g] = std::max(acc[g], ValueAsF64(*in, row));
        break;
      case AggFn::kSumI64:
        count[g] += in->type() == storage::DataType::kInt64
                        ? in->I64Data()[row]
                        : static_cast<int64_t>(in->I32Data()[row]);
        break;
      case AggFn::kCount:
      case AggFn::kCountStar:
        ++count[g];
        break;
    }
  }
};

std::unique_ptr<Column> Finalize(const AggState& s, int64_t n_groups) {
  switch (s.fn) {
    case AggFn::kSum: {
      auto col = std::make_unique<Column>(DataType::kFloat64);
      col->MutableF64() = s.acc;
      return col;
    }
    case AggFn::kAvg: {
      auto col = std::make_unique<Column>(DataType::kFloat64);
      auto& v = col->MutableF64();
      v.resize(n_groups);
      for (int64_t g = 0; g < n_groups; ++g) {
        v[g] = s.count[g] == 0 ? 0 : s.acc[g] / static_cast<double>(s.count[g]);
      }
      return col;
    }
    case AggFn::kMin:
    case AggFn::kMax: {
      // Preserve the input type so downstream joins/sorts see the right
      // representation (e.g. min(date) stays a date). String min/max is not
      // supported (dictionary codes are not ordered); TPC-H never needs it.
      const DataType t = s.in->type();
      WIMPI_CHECK(t != DataType::kString) << "min/max over strings";
      auto col = std::make_unique<Column>(t);
      switch (t) {
        case DataType::kInt64: {
          auto& v = col->MutableI64();
          v.resize(n_groups);
          for (int64_t g = 0; g < n_groups; ++g) {
            v[g] = static_cast<int64_t>(s.acc[g]);
          }
          break;
        }
        case DataType::kFloat64: {
          col->MutableF64() = s.acc;
          break;
        }
        default: {
          auto& v = col->MutableI32();
          v.resize(n_groups);
          for (int64_t g = 0; g < n_groups; ++g) {
            v[g] = static_cast<int32_t>(s.acc[g]);
          }
          break;
        }
      }
      return col;
    }
    case AggFn::kSumI64:
    case AggFn::kCount:
    case AggFn::kCountStar: {
      auto col = std::make_unique<Column>(DataType::kInt64);
      col->MutableI64() = s.count;
      return col;
    }
  }
  WIMPI_CHECK(false);
  return nullptr;
}

}  // namespace

Relation HashAggregate(const ColumnSource& src,
                       const std::vector<std::string>& group_by,
                       const std::vector<AggSpec>& aggs, QueryStats* stats) {
  const int64_t n = src.rows();

  std::vector<const Column*> keys;
  keys.reserve(group_by.size());
  for (const auto& name : group_by) keys.push_back(&src.column(name));

  std::vector<AggState> states(aggs.size());
  for (size_t i = 0; i < aggs.size(); ++i) {
    states[i].fn = aggs[i].fn;
    if (aggs[i].fn != AggFn::kCountStar) {
      states[i].in = &src.column(aggs[i].in);
    }
  }

  std::vector<int32_t> group_rep;  // first source row of each group
  double chain_steps = 0;

  if (keys.empty()) {
    // Global aggregate: one group covering all rows.
    for (auto& s : states) s.AddGroup();
    for (int64_t row = 0; row < n; ++row) {
      for (auto& s : states) s.Update(0, row);
    }
    group_rep.push_back(0);
  } else {
    const uint64_t n_buckets =
        std::bit_ceil(static_cast<uint64_t>(std::max<int64_t>(n / 2, 16)));
    const uint64_t mask = n_buckets - 1;
    std::vector<int32_t> head(n_buckets, -1);
    std::vector<int32_t> next;  // chains group ids

    for (int64_t row = 0; row < n; ++row) {
      uint64_t h = ValueHash(*keys[0], row);
      for (size_t k = 1; k < keys.size(); ++k) {
        h = HashCombine(h, ValueHash(*keys[k], row));
      }
      const uint64_t b = h & mask;
      int32_t g = -1;
      for (int32_t e = head[b]; e >= 0; e = next[e]) {
        ++chain_steps;
        bool eq = true;
        for (const Column* key : keys) {
          if (!ValueEq(*key, group_rep[e], row)) {
            eq = false;
            break;
          }
        }
        if (eq) {
          g = e;
          break;
        }
      }
      if (g < 0) {
        g = static_cast<int32_t>(group_rep.size());
        group_rep.push_back(static_cast<int32_t>(row));
        next.push_back(head[b]);
        head[b] = g;
        for (auto& s : states) s.AddGroup();
      }
      for (auto& s : states) s.Update(g, row);
    }
  }

  const auto n_groups = static_cast<int64_t>(group_rep.size());

  Relation out;
  // Group-key columns first (gathered representative values)...
  if (!keys.empty()) {
    SelVec sel(group_rep.begin(), group_rep.end());
    for (size_t k = 0; k < keys.size(); ++k) {
      out.AddColumn(group_by[k], Gather(*keys[k], sel, nullptr));
    }
  }
  // ...then the aggregates.
  for (size_t i = 0; i < aggs.size(); ++i) {
    out.AddColumn(aggs[i].out, Finalize(states[i], n_groups));
  }

  if (stats != nullptr) {
    int key_width = 0;
    for (const Column* k : keys) key_width += storage::TypeWidth(k->type());
    int state_width = 0;
    for (const auto& s : states) {
      state_width += s.acc.empty() ? 0 : 8;
      state_width += s.count.empty() ? 0 : 8;
    }
    const double table_bytes =
        static_cast<double>(n_groups) * (key_width + state_width + 8) +
        (keys.empty() ? 0.0 : static_cast<double>(n)) * 0;  // heads ~ groups*2
    OpStats op;
    op.op = "hash_aggregate";
    op.compute_ops =
        static_cast<double>(n) *
            (cost::kHash * std::max<size_t>(keys.size(), 1) +
             cost::kAggUpdate * static_cast<double>(aggs.size())) +
        chain_steps * cost::kCompare;
    op.seq_bytes = static_cast<double>(n) *
                   (key_width + 8.0 * static_cast<double>(aggs.size()));
    op.rand_count = keys.empty() ? 0 : static_cast<double>(n) + chain_steps;
    op.rand_struct_bytes = table_bytes;
    op.output_bytes =
        static_cast<double>(n_groups) * (key_width + state_width);
    stats->Add(std::move(op));
    stats->TrackAlloc(table_bytes);
  }
  return out;
}

double SumF64(const Column& col, QueryStats* stats) {
  const int64_t n = col.size();
  double sum = 0;
  const double* d = col.F64Data();
  for (int64_t i = 0; i < n; ++i) sum += d[i];
  if (stats != nullptr) {
    OpStats op;
    op.op = "sum_f64";
    op.compute_ops = static_cast<double>(n) * cost::kArith;
    op.seq_bytes = static_cast<double>(n) * 8;
    stats->Add(std::move(op));
  }
  return sum;
}

double AvgF64(const Column& col, QueryStats* stats) {
  const int64_t n = col.size();
  if (n == 0) return 0;
  return SumF64(col, stats) / static_cast<double>(n);
}

double MaxF64(const Column& col, QueryStats* stats) {
  const int64_t n = col.size();
  double m = -std::numeric_limits<double>::infinity();
  const double* d = col.F64Data();
  for (int64_t i = 0; i < n; ++i) m = std::max(m, d[i]);
  if (stats != nullptr) {
    OpStats op;
    op.op = "max_f64";
    op.compute_ops = static_cast<double>(n) * cost::kCompare;
    op.seq_bytes = static_cast<double>(n) * 8;
    stats->Add(std::move(op));
  }
  return m;
}

}  // namespace wimpi::exec
