#include "exec/aggregate.h"

#include <bit>
#include <limits>

#include "common/hash.h"
#include "common/logging.h"
#include "exec/estimator.h"
#include "exec/morsel_exec.h"
#include "exec/relation_ops.h"
#include "obs/profiler.h"

namespace wimpi::exec {
namespace {

using storage::Column;
using storage::DataType;

uint64_t ValueHash(const Column& col, int64_t row) {
  switch (col.type()) {
    case DataType::kInt64:
      return HashInt64(static_cast<uint64_t>(col.I64Data()[row]));
    case DataType::kFloat64: {
      double d = col.F64Data()[row];
      uint64_t bits;
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return HashInt64(bits);
    }
    default:
      return HashInt64(
          static_cast<uint64_t>(static_cast<uint32_t>(col.I32Data()[row])));
  }
}

bool ValueEq(const Column& c, int64_t a, int64_t b) {
  switch (c.type()) {
    case DataType::kInt64:
      return c.I64Data()[a] == c.I64Data()[b];
    case DataType::kFloat64:
      return c.F64Data()[a] == c.F64Data()[b];
    default:
      return c.I32Data()[a] == c.I32Data()[b];
  }
}

double ValueAsF64(const Column& c, int64_t row) {
  switch (c.type()) {
    case DataType::kInt64:
      return static_cast<double>(c.I64Data()[row]);
    case DataType::kFloat64:
      return c.F64Data()[row];
    default:
      return static_cast<double>(c.I32Data()[row]);
  }
}

// Running state for one aggregate over all groups.
struct AggState {
  AggFn fn;
  const Column* in = nullptr;  // null for kCountStar
  std::vector<double> acc;     // sum / min / max
  std::vector<int64_t> count;  // kCount/kCountStar/kAvg

  void AddGroup() {
    switch (fn) {
      case AggFn::kSum:
      case AggFn::kAvg:
        acc.push_back(0);
        if (fn == AggFn::kAvg) count.push_back(0);
        break;
      case AggFn::kSumI64:
        count.push_back(0);
        break;
      case AggFn::kMin:
        acc.push_back(std::numeric_limits<double>::infinity());
        break;
      case AggFn::kMax:
        acc.push_back(-std::numeric_limits<double>::infinity());
        break;
      case AggFn::kCount:
      case AggFn::kCountStar:
        count.push_back(0);
        break;
    }
  }

  void Update(int32_t g, int64_t row) {
    switch (fn) {
      case AggFn::kSum:
        acc[g] += ValueAsF64(*in, row);
        break;
      case AggFn::kAvg:
        acc[g] += ValueAsF64(*in, row);
        ++count[g];
        break;
      case AggFn::kMin:
        acc[g] = std::min(acc[g], ValueAsF64(*in, row));
        break;
      case AggFn::kMax:
        acc[g] = std::max(acc[g], ValueAsF64(*in, row));
        break;
      case AggFn::kSumI64:
        count[g] += in->type() == storage::DataType::kInt64
                        ? in->I64Data()[row]
                        : static_cast<int64_t>(in->I32Data()[row]);
        break;
      case AggFn::kCount:
      case AggFn::kCountStar:
        ++count[g];
        break;
    }
  }
};

std::unique_ptr<Column> Finalize(const AggState& s, int64_t n_groups) {
  switch (s.fn) {
    case AggFn::kSum: {
      auto col = std::make_unique<Column>(DataType::kFloat64);
      col->MutableF64() = s.acc;
      return col;
    }
    case AggFn::kAvg: {
      auto col = std::make_unique<Column>(DataType::kFloat64);
      auto& v = col->MutableF64();
      v.resize(n_groups);
      for (int64_t g = 0; g < n_groups; ++g) {
        v[g] = s.count[g] == 0 ? 0 : s.acc[g] / static_cast<double>(s.count[g]);
      }
      return col;
    }
    case AggFn::kMin:
    case AggFn::kMax: {
      // Preserve the input type so downstream joins/sorts see the right
      // representation (e.g. min(date) stays a date). String min/max is not
      // supported (dictionary codes are not ordered); TPC-H never needs it.
      const DataType t = s.in->type();
      WIMPI_CHECK(t != DataType::kString) << "min/max over strings";
      auto col = std::make_unique<Column>(t);
      switch (t) {
        case DataType::kInt64: {
          auto& v = col->MutableI64();
          v.resize(n_groups);
          for (int64_t g = 0; g < n_groups; ++g) {
            v[g] = static_cast<int64_t>(s.acc[g]);
          }
          break;
        }
        case DataType::kFloat64: {
          col->MutableF64() = s.acc;
          break;
        }
        default: {
          auto& v = col->MutableI32();
          v.resize(n_groups);
          for (int64_t g = 0; g < n_groups; ++g) {
            v[g] = static_cast<int32_t>(s.acc[g]);
          }
          break;
        }
      }
      return col;
    }
    case AggFn::kSumI64:
    case AggFn::kCount:
    case AggFn::kCountStar: {
      auto col = std::make_unique<Column>(DataType::kInt64);
      col->MutableI64() = s.count;
      return col;
    }
  }
  WIMPI_CHECK(false);
  return nullptr;
}

// Group table + per-agg states built over the row range [begin, end). This
// is the whole sequential algorithm; the public entry runs it over the full
// range, while the parallel path runs one instance per thread chunk and a
// final sequential instance over the concatenated partials.
struct GroupedAgg {
  std::vector<int32_t> group_rep;  // first source row of each group
  std::vector<AggState> states;
  double chain_steps = 0;
};

GroupedAgg AggregateRange(const ColumnSource& src,
                          const std::vector<const Column*>& keys,
                          const std::vector<AggSpec>& aggs, int64_t begin,
                          int64_t end) {
  GroupedAgg out;
  out.states.resize(aggs.size());
  for (size_t i = 0; i < aggs.size(); ++i) {
    out.states[i].fn = aggs[i].fn;
    if (aggs[i].fn != AggFn::kCountStar) {
      out.states[i].in = &src.column(aggs[i].in);
    }
  }

  if (keys.empty()) {
    // Global aggregate: one group covering all rows.
    for (auto& s : out.states) s.AddGroup();
    for (int64_t row = begin; row < end; ++row) {
      for (auto& s : out.states) s.Update(0, row);
    }
    out.group_rep.push_back(static_cast<int32_t>(begin));
    return out;
  }

  const int64_t n = end - begin;
  const uint64_t n_buckets =
      std::bit_ceil(static_cast<uint64_t>(std::max<int64_t>(n / 2, 16)));
  const uint64_t mask = n_buckets - 1;
  std::vector<int32_t> head(n_buckets, -1);
  std::vector<int32_t> next;  // chains group ids

  for (int64_t row = begin; row < end; ++row) {
    uint64_t h = ValueHash(*keys[0], row);
    for (size_t k = 1; k < keys.size(); ++k) {
      h = HashCombine(h, ValueHash(*keys[k], row));
    }
    const uint64_t b = h & mask;
    int32_t g = -1;
    for (int32_t e = head[b]; e >= 0; e = next[e]) {
      ++out.chain_steps;
      bool eq = true;
      for (const Column* key : keys) {
        if (!ValueEq(*key, out.group_rep[e], row)) {
          eq = false;
          break;
        }
      }
      if (eq) {
        g = e;
        break;
      }
    }
    if (g < 0) {
      g = static_cast<int32_t>(out.group_rep.size());
      out.group_rep.push_back(static_cast<int32_t>(row));
      next.push_back(head[b]);
      head[b] = g;
      for (auto& s : out.states) s.AddGroup();
    }
    for (auto& s : out.states) s.Update(g, row);
  }
  return out;
}

// Gathered group keys followed by finalized aggregate columns — the output
// shape of both the full aggregation and each per-thread partial.
Relation FinalizeGroups(const std::vector<const Column*>& keys,
                        const std::vector<std::string>& group_by,
                        const std::vector<AggSpec>& aggs,
                        const GroupedAgg& g) {
  const auto n_groups = static_cast<int64_t>(g.group_rep.size());
  Relation out;
  if (!keys.empty()) {
    SelVec sel(g.group_rep.begin(), g.group_rep.end());
    for (size_t k = 0; k < keys.size(); ++k) {
      out.AddColumn(group_by[k], Gather(*keys[k], sel, nullptr));
    }
  }
  for (size_t i = 0; i < aggs.size(); ++i) {
    out.AddColumn(aggs[i].out, Finalize(g.states[i], n_groups));
  }
  return out;
}

int StateWidth(AggFn fn) {
  switch (fn) {
    case AggFn::kAvg:
      return 16;  // sum + count
    default:
      return 8;
  }
}

// Decomposition of one user-facing aggregate into a chunk-local partial
// aggregate (computed per thread) and the merge aggregate that recombines
// the concatenated partials: sums re-sum, counts sum as integers, min/max
// re-min/max, and avg ships sum+count so the final division is exact.
struct PartialPlan {
  std::vector<AggSpec> partial;  // run per chunk
  std::vector<AggSpec> merge;    // run over the concatenated partials
  // For aggs[i]: index of its merged column, and for kAvg the index of the
  // merged count column that completes the division.
  std::vector<int> value_idx;
  std::vector<int> count_idx;
};

PartialPlan PlanPartials(const std::vector<AggSpec>& aggs) {
  PartialPlan plan;
  for (size_t i = 0; i < aggs.size(); ++i) {
    const AggSpec& a = aggs[i];
    std::string pcol = std::to_string(i);
    pcol.insert(pcol.begin(), 'p');
    plan.value_idx.push_back(static_cast<int>(plan.partial.size()));
    plan.count_idx.push_back(-1);
    switch (a.fn) {
      case AggFn::kSum:
        plan.partial.push_back({AggFn::kSum, a.in, pcol});
        plan.merge.push_back({AggFn::kSum, pcol, pcol});
        break;
      case AggFn::kSumI64:
        plan.partial.push_back({AggFn::kSumI64, a.in, pcol});
        plan.merge.push_back({AggFn::kSumI64, pcol, pcol});
        break;
      case AggFn::kMin:
        plan.partial.push_back({AggFn::kMin, a.in, pcol});
        plan.merge.push_back({AggFn::kMin, pcol, pcol});
        break;
      case AggFn::kMax:
        plan.partial.push_back({AggFn::kMax, a.in, pcol});
        plan.merge.push_back({AggFn::kMax, pcol, pcol});
        break;
      case AggFn::kCount:
      case AggFn::kCountStar:
        plan.partial.push_back({a.fn, a.in, pcol});
        plan.merge.push_back({AggFn::kSumI64, pcol, pcol});
        break;
      case AggFn::kAvg:
        plan.partial.push_back({AggFn::kSum, a.in, pcol + "s"});
        plan.merge.push_back({AggFn::kSum, pcol + "s", pcol + "s"});
        plan.count_idx.back() = static_cast<int>(plan.partial.size());
        plan.partial.push_back({AggFn::kCount, a.in, pcol + "c"});
        plan.merge.push_back({AggFn::kSumI64, pcol + "c", pcol + "c"});
        break;
    }
  }
  return plan;
}

}  // namespace

Relation HashAggregate(const ColumnSource& src,
                       const std::vector<std::string>& group_by,
                       const std::vector<AggSpec>& aggs, QueryStats* stats) {
  const int64_t n = src.rows();
  obs::OpScope scope("HashAggregate", n);

  std::vector<const Column*> keys;
  keys.reserve(group_by.size());
  for (const auto& name : group_by) keys.push_back(&src.column(name));

  const int threads = PlannedThreads(n);

  Relation out;
  double chain_steps = 0;
  int64_t n_groups = 0;

  if (threads <= 1) {
    GroupedAgg g = AggregateRange(src, keys, aggs, 0, n);
    chain_steps = g.chain_steps;
    n_groups = static_cast<int64_t>(g.group_rep.size());
    out = FinalizeGroups(keys, group_by, aggs, g);
  } else {
    // Thread-local aggregation: each chunk builds its own group table (no
    // shared mutable state), the partial tables concatenate in chunk order,
    // and one sequential merge pass recombines them — the same shape the
    // cluster coordinator uses for node partials. Group order is preserved:
    // first-appearance order across the concatenated chunks is exactly the
    // sequential scan's first-appearance order.
    const PartialPlan plan = PlanPartials(aggs);
    const int64_t chunk_rows = (n + threads - 1) / threads;
    const int n_chunks =
        static_cast<int>((n + chunk_rows - 1) / chunk_rows);
    std::vector<Relation> parts(n_chunks);
    std::vector<double> part_steps(n_chunks, 0);
    RunChunks(n, chunk_rows, threads, [&](const parallel::Morsel& m) {
      GroupedAgg g = AggregateRange(src, keys, plan.partial, m.begin, m.end);
      part_steps[m.index] = g.chain_steps;
      parts[m.index] = FinalizeGroups(keys, group_by, plan.partial, g);
    });
    for (const double s : part_steps) chain_steps += s;

    Relation all = ConcatRelations(std::move(parts), nullptr);
    ColumnSource merge_src(all);
    std::vector<const Column*> merge_keys;
    merge_keys.reserve(group_by.size());
    for (const auto& name : group_by) {
      merge_keys.push_back(&merge_src.column(name));
    }
    GroupedAgg merged = AggregateRange(merge_src, merge_keys, plan.merge, 0,
                                       all.num_rows());
    chain_steps += merged.chain_steps;
    n_groups = static_cast<int64_t>(merged.group_rep.size());

    if (!merge_keys.empty()) {
      SelVec sel(merged.group_rep.begin(), merged.group_rep.end());
      for (size_t k = 0; k < merge_keys.size(); ++k) {
        out.AddColumn(group_by[k], Gather(*merge_keys[k], sel, nullptr));
      }
    }
    for (size_t i = 0; i < aggs.size(); ++i) {
      if (aggs[i].fn == AggFn::kAvg) {
        const AggState& sum_s = merged.states[plan.value_idx[i]];
        const AggState& cnt_s = merged.states[plan.count_idx[i]];
        auto col = std::make_unique<Column>(DataType::kFloat64);
        auto& v = col->MutableF64();
        v.resize(n_groups);
        for (int64_t g = 0; g < n_groups; ++g) {
          v[g] = cnt_s.count[g] == 0
                     ? 0
                     : sum_s.acc[g] / static_cast<double>(cnt_s.count[g]);
        }
        out.AddColumn(aggs[i].out, std::move(col));
      } else {
        out.AddColumn(aggs[i].out,
                      Finalize(merged.states[plan.value_idx[i]], n_groups));
      }
    }
  }

  if (stats != nullptr) {
    int key_width = 0;
    for (const Column* k : keys) key_width += storage::TypeWidth(k->type());
    int state_width = 0;
    for (const auto& a : aggs) state_width += StateWidth(a.fn);
    const double table_bytes =
        static_cast<double>(n_groups) * (key_width + state_width + 8);
    OpStats op;
    op.op = "hash_aggregate";
    op.compute_ops =
        static_cast<double>(n) *
            (cost::kHash * std::max<size_t>(keys.size(), 1) +
             cost::kAggUpdate * static_cast<double>(aggs.size())) +
        chain_steps * cost::kCompare;
    op.seq_bytes = static_cast<double>(n) *
                   (key_width + 8.0 * static_cast<double>(aggs.size()));
    op.rand_count = keys.empty() ? 0 : static_cast<double>(n) + chain_steps;
    op.rand_struct_bytes = table_bytes;
    op.output_bytes =
        static_cast<double>(n_groups) * (key_width + state_width);
    op.rows_in = static_cast<double>(n);
    op.rows_out = static_cast<double>(n_groups);
    if (const CardinalityEstimator* est =
            CurrentExecOptions().cardinality_estimator) {
      op.est_rows = est->EstimateGroupRows(src, group_by, n);
    }
    stats->Add(std::move(op));
    stats->TrackAlloc(table_bytes);
  }
  scope.set_rows_out(n_groups);
  return out;
}

double SumF64(const Column& col, QueryStats* stats) {
  const int64_t n = col.size();
  obs::OpScope scope("sum_f64", n);
  scope.set_rows_out(1);
  double sum = 0;
  const double* d = col.F64Data();
  const int threads = PlannedThreads(n);
  if (threads <= 1) {
    for (int64_t i = 0; i < n; ++i) sum += d[i];
  } else {
    std::vector<double> partial(NumMorsels(n), 0.0);
    RunMorsels(n, threads, [&](const parallel::Morsel& m) {
      double local = 0;
      for (int64_t i = m.begin; i < m.end; ++i) local += d[i];
      partial[m.index] = local;
    });
    for (const double p : partial) sum += p;
  }
  if (stats != nullptr) {
    OpStats op;
    op.op = "sum_f64";
    op.compute_ops = static_cast<double>(n) * cost::kArith;
    op.seq_bytes = static_cast<double>(n) * 8;
    op.rows_in = static_cast<double>(n);
    op.rows_out = 1;
    if (CurrentExecOptions().cardinality_estimator != nullptr) op.est_rows = 1;
    stats->Add(std::move(op));
  }
  return sum;
}

double AvgF64(const Column& col, QueryStats* stats) {
  const int64_t n = col.size();
  if (n == 0) return 0;
  return SumF64(col, stats) / static_cast<double>(n);
}

double MaxF64(const Column& col, QueryStats* stats) {
  const int64_t n = col.size();
  obs::OpScope scope("max_f64", n);
  scope.set_rows_out(1);
  double m = -std::numeric_limits<double>::infinity();
  const double* d = col.F64Data();
  const int threads = PlannedThreads(n);
  if (threads <= 1) {
    for (int64_t i = 0; i < n; ++i) m = std::max(m, d[i]);
  } else {
    std::vector<double> partial(NumMorsels(n),
                                -std::numeric_limits<double>::infinity());
    RunMorsels(n, threads, [&](const parallel::Morsel& mo) {
      double local = -std::numeric_limits<double>::infinity();
      for (int64_t i = mo.begin; i < mo.end; ++i) {
        local = std::max(local, d[i]);
      }
      partial[mo.index] = local;
    });
    for (const double p : partial) m = std::max(m, p);
  }
  if (stats != nullptr) {
    OpStats op;
    op.op = "max_f64";
    op.compute_ops = static_cast<double>(n) * cost::kCompare;
    op.seq_bytes = static_cast<double>(n) * 8;
    op.rows_in = static_cast<double>(n);
    op.rows_out = 1;
    if (CurrentExecOptions().cardinality_estimator != nullptr) op.est_rows = 1;
    stats->Add(std::move(op));
  }
  return m;
}

}  // namespace wimpi::exec
