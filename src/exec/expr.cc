#include "exec/expr.h"

#include "common/date.h"
#include "common/logging.h"
#include "exec/morsel_exec.h"
#include "obs/profiler.h"

namespace wimpi::exec {
namespace {

using storage::Column;
using storage::DataType;

// Fills out[i] = f(i) for i in [0, n), morsel-parallel when the ambient
// options allow it. Element-wise maps have no cross-row state, so the
// parallel result is bit-identical to the sequential loop.
template <typename T, typename F>
void FillRows(std::vector<T>& out_vec, int64_t n, F f) {
  const int threads = PlannedThreads(n);
  T* out = out_vec.data();
  if (threads <= 1) {
    for (int64_t i = 0; i < n; ++i) out[i] = f(i);
    return;
  }
  RunMorsels(n, threads, [&](const parallel::Morsel& m) {
    for (int64_t i = m.begin; i < m.end; ++i) out[i] = f(i);
  });
}

// Cardinality capture for element-wise maps: one output row per input
// row, so the estimate (when an estimator is armed) is exact.
void TagMapRows(OpStats& op, int64_t n) {
  op.rows_in = static_cast<double>(n);
  op.rows_out = static_cast<double>(n);
  if (CurrentExecOptions().cardinality_estimator != nullptr) {
    op.est_rows = static_cast<double>(n);
  }
}

void RecordUnary(const char* name, int64_t n, int in_width, int out_width,
                 QueryStats* stats) {
  if (stats == nullptr) return;
  OpStats op;
  op.op = name;
  op.compute_ops = static_cast<double>(n) * cost::kArith;
  op.seq_bytes = static_cast<double>(n) * (in_width + out_width);
  op.output_bytes = static_cast<double>(n) * out_width;
  TagMapRows(op, n);
  stats->Add(std::move(op));
  stats->TrackAlloc(static_cast<double>(n) * out_width);
}

void RecordBinary(const char* name, int64_t n, QueryStats* stats) {
  if (stats == nullptr) return;
  OpStats op;
  op.op = name;
  op.compute_ops = static_cast<double>(n) * cost::kArith;
  op.seq_bytes = static_cast<double>(n) * 24;  // two inputs + one output
  op.output_bytes = static_cast<double>(n) * 8;
  TagMapRows(op, n);
  stats->Add(std::move(op));
  stats->TrackAlloc(static_cast<double>(n) * 8);
}

template <typename F>
std::unique_ptr<Column> BinaryOp(const char* name, const Column& a,
                                 const Column& b, QueryStats* stats, F f) {
  WIMPI_CHECK_EQ(a.size(), b.size());
  const int64_t n = a.size();
  obs::OpScope scope(name, n);
  scope.set_rows_out(n);
  auto out = std::make_unique<Column>(DataType::kFloat64);
  auto& v = out->MutableF64();
  v.resize(n);
  const double* pa = a.F64Data();
  const double* pb = b.F64Data();
  FillRows(v, n, [&](int64_t i) { return f(pa[i], pb[i]); });
  RecordBinary(name, n, stats);
  return out;
}

template <typename F>
std::unique_ptr<Column> UnaryF64Op(const char* name, const Column& a,
                                   QueryStats* stats, F f) {
  const int64_t n = a.size();
  obs::OpScope scope(name, n);
  scope.set_rows_out(n);
  auto out = std::make_unique<Column>(DataType::kFloat64);
  auto& v = out->MutableF64();
  v.resize(n);
  const double* pa = a.F64Data();
  FillRows(v, n, [&](int64_t i) { return f(pa[i]); });
  RecordUnary(name, n, 8, 8, stats);
  return out;
}

}  // namespace

std::unique_ptr<Column> MulF64(const Column& a, const Column& b,
                               QueryStats* stats) {
  return BinaryOp("mul_f64", a, b, stats,
                  [](double x, double y) { return x * y; });
}

std::unique_ptr<Column> AddF64(const Column& a, const Column& b,
                               QueryStats* stats) {
  return BinaryOp("add_f64", a, b, stats,
                  [](double x, double y) { return x + y; });
}

std::unique_ptr<Column> SubF64(const Column& a, const Column& b,
                               QueryStats* stats) {
  return BinaryOp("sub_f64", a, b, stats,
                  [](double x, double y) { return x - y; });
}

std::unique_ptr<Column> ConstMinusF64(double c, const Column& a,
                                      QueryStats* stats) {
  return UnaryF64Op("const_minus_f64", a, stats,
                    [c](double x) { return c - x; });
}

std::unique_ptr<Column> ConstPlusF64(double c, const Column& a,
                                     QueryStats* stats) {
  return UnaryF64Op("const_plus_f64", a, stats,
                    [c](double x) { return c + x; });
}

std::unique_ptr<Column> MulConstF64(const Column& a, double c,
                                    QueryStats* stats) {
  return UnaryF64Op("mul_const_f64", a, stats,
                    [c](double x) { return x * c; });
}

std::unique_ptr<Column> ExtractYear(const Column& dates, QueryStats* stats) {
  const int64_t n = dates.size();
  obs::OpScope scope("extract_year", n);
  scope.set_rows_out(n);
  auto out = std::make_unique<Column>(DataType::kInt32);
  auto& v = out->MutableI32();
  v.resize(n);
  const int32_t* d = dates.I32Data();
  FillRows(v, n, [&](int64_t i) { return DateYear(d[i]); });
  if (stats != nullptr) {
    OpStats op;
    op.op = "extract_year";
    op.compute_ops = static_cast<double>(n) * cost::kArith * 4;
    op.seq_bytes = static_cast<double>(n) * 8;
    op.output_bytes = static_cast<double>(n) * 4;
    TagMapRows(op, n);
    stats->Add(std::move(op));
    stats->TrackAlloc(static_cast<double>(n) * 4);
  }
  return out;
}

std::vector<uint8_t> StrMatchMask(
    const Column& col, const std::function<bool(std::string_view)>& test,
    double cost_per_value, QueryStats* stats) {
  obs::OpScope scope("str_match_mask", col.size());
  scope.set_rows_out(col.size());
  const auto& dict = *col.dict();
  std::vector<uint8_t> code_match(dict.size());
  double dict_bytes = 0;
  for (int32_t c = 0; c < dict.size(); ++c) {
    const std::string_view v = dict.ValueAt(c);
    code_match[c] = test(v) ? 1 : 0;
    dict_bytes += static_cast<double>(v.size());
  }
  const int64_t n = col.size();
  std::vector<uint8_t> mask(n);
  const int32_t* codes = col.I32Data();
  FillRows(mask, n, [&](int64_t i) { return code_match[codes[i]]; });
  if (stats != nullptr) {
    OpStats op;
    op.op = "str_match_mask";
    op.compute_ops = static_cast<double>(dict.size()) * cost_per_value +
                     static_cast<double>(n) * cost::kCompare;
    op.seq_bytes = dict_bytes + static_cast<double>(n) * 5;
    op.output_bytes = static_cast<double>(n);
    TagMapRows(op, n);
    stats->Add(std::move(op));
  }
  return mask;
}

std::vector<uint8_t> I32EqMask(const Column& col, int32_t value,
                               QueryStats* stats) {
  const int64_t n = col.size();
  obs::OpScope scope("i32_eq_mask", n);
  scope.set_rows_out(n);
  std::vector<uint8_t> mask(n);
  const int32_t* d = col.I32Data();
  FillRows(mask, n,
           [&](int64_t i) -> uint8_t { return d[i] == value ? 1 : 0; });
  if (stats != nullptr) {
    OpStats op;
    op.op = "i32_eq_mask";
    op.compute_ops = static_cast<double>(n) * cost::kCompare;
    op.seq_bytes = static_cast<double>(n) * 5;
    op.output_bytes = static_cast<double>(n);
    TagMapRows(op, n);
    stats->Add(std::move(op));
  }
  return mask;
}

std::unique_ptr<Column> MaskedF64(const Column& a,
                                  const std::vector<uint8_t>& mask,
                                  QueryStats* stats) {
  WIMPI_CHECK_EQ(a.size(), static_cast<int64_t>(mask.size()));
  const int64_t n = a.size();
  auto out = std::make_unique<Column>(DataType::kFloat64);
  auto& v = out->MutableF64();
  v.resize(n);
  const double* pa = a.F64Data();
  FillRows(v, n, [&](int64_t i) { return mask[i] != 0 ? pa[i] : 0.0; });
  RecordBinary("masked_f64", n, stats);
  return out;
}

std::unique_ptr<Column> DivF64(const Column& a, const Column& b,
                               QueryStats* stats) {
  return BinaryOp("div_f64", a, b, stats,
                  [](double x, double y) { return y == 0 ? 0.0 : x / y; });
}

std::unique_ptr<Column> CastF64(const Column& a, QueryStats* stats) {
  const int64_t n = a.size();
  obs::OpScope scope("cast_f64", n);
  scope.set_rows_out(n);
  auto out = std::make_unique<Column>(DataType::kFloat64);
  auto& v = out->MutableF64();
  v.resize(n);
  switch (a.type()) {
    case DataType::kInt64: {
      const int64_t* d = a.I64Data();
      FillRows(v, n, [&](int64_t i) { return static_cast<double>(d[i]); });
      break;
    }
    case DataType::kFloat64: {
      const double* d = a.F64Data();
      FillRows(v, n, [&](int64_t i) { return d[i]; });
      break;
    }
    default: {
      const int32_t* d = a.I32Data();
      FillRows(v, n, [&](int64_t i) { return static_cast<double>(d[i]); });
      break;
    }
  }
  RecordUnary("cast_f64", n, storage::TypeWidth(a.type()), 8, stats);
  return out;
}

}  // namespace wimpi::exec
