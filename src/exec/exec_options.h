#ifndef WIMPI_EXEC_EXEC_OPTIONS_H_
#define WIMPI_EXEC_EXEC_OPTIONS_H_

#include <cstdint>

namespace wimpi::parallel {
class CancellationToken;
class PipelineScheduler;
}  // namespace wimpi::parallel

namespace wimpi::exec {

class CardinalityEstimator;

// Engine-wide execution knobs. The default (one thread) preserves the
// seed behaviour bit-for-bit: every operator takes its original sequential
// path and no thread pool is ever touched, so existing tests and benches
// are unaffected unless a caller opts in.
struct ExecOptions {
  // Maximum threads (including the calling thread) any one operator may
  // use. <= 0 means hardware concurrency.
  int num_threads = 1;
  // Rows per scan morsel. The split of an input into morsels depends only
  // on this value — never on num_threads — so per-morsel partial results
  // merged in morsel order give the same answer at every thread count.
  int64_t morsel_rows = 64 * 1024;
  // Cooperative cancellation for every morsel loop run under these
  // options. Null (the default) means not cancellable. The pointed-to
  // token must outlive the plan; a fired token makes in-flight operators
  // return partial garbage, so only a driver that is abandoning the whole
  // computation (e.g. the cluster fault path) should cancel.
  const parallel::CancellationToken* cancellation = nullptr;
  // Where the plan's parallel phases (pipelines) are scheduled. Null (the
  // default) means parallel::PipelineScheduler::Default(): morsel loops on
  // the process-wide TaskScheduler, exactly the single-query engine. The
  // query service installs a per-query fair scheduler here so pipelines
  // from many concurrent queries interleave over the shared pool. Morsel
  // boundaries (and therefore answers) are scheduler-independent.
  parallel::PipelineScheduler* pipeline_scheduler = nullptr;
  // Plan-quality observability (DESIGN.md §13). When non-null, operators
  // that record OpStats also ask this estimator for a predicted output
  // cardinality and store it in OpStats.est_rows next to the actuals.
  // Estimates are consulted on the driving thread only and never alter
  // execution: answers are bit-identical with or without an estimator.
  // Null (the default) keeps est_rows at -1 everywhere.
  const CardinalityEstimator* cardinality_estimator = nullptr;
  // Lets an installed estimator that supports it (stats::StatsRegistry
  // with EnableAutoCollect) build missing table statistics lazily from a
  // deterministic stride sample the first time a scan asks for an estimate
  // on an un-collected table. Off (the default): unknown tables simply
  // yield no estimate.
  bool collect_scan_stats = false;
};

// Ambient options consulted by the operator library on the thread that
// drives a plan. Thread-local: each query driver (a test's main thread,
// an engine::Executor caller, a service driver thread) installs its own
// options, so concurrent queries on different threads never see each
// other's knobs. Morsel bodies running on pool workers never consult the
// ambient options — operators capture everything they need on the driving
// thread before fanning out (workers would otherwise read their own
// thread's defaults).
const ExecOptions& CurrentExecOptions();
void SetExecOptions(const ExecOptions& opts);

// RAII setter used by the engine executor, tests and benches.
class ScopedExecOptions {
 public:
  explicit ScopedExecOptions(const ExecOptions& opts);
  ~ScopedExecOptions();

  ScopedExecOptions(const ScopedExecOptions&) = delete;
  ScopedExecOptions& operator=(const ScopedExecOptions&) = delete;

 private:
  ExecOptions prev_;
};

// Threads an operator over `rows` input rows should use under the current
// options: 1 (take the sequential path) unless parallelism is enabled, the
// input spans at least two morsels, and we are not already inside a pool
// worker (operators invoked from a parallel phase stay sequential instead
// of re-entering the scheduler).
int PlannedThreads(int64_t rows);

}  // namespace wimpi::exec

#endif  // WIMPI_EXEC_EXEC_OPTIONS_H_
