#ifndef WIMPI_EXEC_MORSEL_EXEC_H_
#define WIMPI_EXEC_MORSEL_EXEC_H_

// Internal glue between the operator library and wimpi::parallel: every
// parallel operator phase becomes one parallel::PipelineSpec handed to the
// ambient pipeline scheduler (the pipeline/executor split). Operators call
// PlannedThreads() first and only come here when it returns > 1, so the
// sequential paths never touch the scheduler (and num_threads=1 stays
// bit-identical to the single-threaded engine). With no scheduler
// installed the pipeline runs on PipelineScheduler::Default() — the
// process-wide TaskScheduler, i.e. the pre-service engine; the query
// service installs a per-query fair scheduler instead, which interleaves
// this pipeline's morsels with other queries' pipelines.

#include <cstdint>
#include <functional>

#include "exec/exec_options.h"
#include "parallel/pipeline.h"
#include "parallel/task_scheduler.h"

namespace wimpi::exec {

// Morsel count of an n-row input under the current options (the slot count
// for per-morsel partial results; independent of thread count).
inline int NumMorsels(int64_t rows) {
  const int64_t per = CurrentExecOptions().morsel_rows;
  return static_cast<int>((rows + per - 1) / per);
}

// Runs body over every morsel of [0, rows) on up to `threads` threads
// (including the caller). Partial results indexed by morsel.index and
// merged in index order are deterministic at any thread count and under
// any scheduler.
inline void RunMorsels(int64_t rows, int threads,
                       const std::function<void(const parallel::Morsel&)>& body) {
  const ExecOptions& opts = CurrentExecOptions();
  parallel::PipelineSpec spec;
  spec.total_rows = rows;
  spec.morsel_rows = opts.morsel_rows;
  spec.max_threads = threads;
  spec.body = &body;
  spec.cancel = opts.cancellation;
  (opts.pipeline_scheduler != nullptr
       ? *opts.pipeline_scheduler
       : parallel::PipelineScheduler::Default())
      .RunPipeline(spec);
}

// Same, but with an explicit chunk size — used when the partial-result
// granularity must be "one chunk per thread" (e.g. thread-local aggregation
// tables) rather than one per morsel.
inline void RunChunks(int64_t rows, int64_t chunk_rows, int threads,
                      const std::function<void(const parallel::Morsel&)>& body) {
  const ExecOptions& opts = CurrentExecOptions();
  parallel::PipelineSpec spec;
  spec.total_rows = rows;
  spec.morsel_rows = chunk_rows;
  spec.max_threads = threads;
  spec.body = &body;
  spec.cancel = opts.cancellation;
  (opts.pipeline_scheduler != nullptr
       ? *opts.pipeline_scheduler
       : parallel::PipelineScheduler::Default())
      .RunPipeline(spec);
}

}  // namespace wimpi::exec

#endif  // WIMPI_EXEC_MORSEL_EXEC_H_
