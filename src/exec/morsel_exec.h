#ifndef WIMPI_EXEC_MORSEL_EXEC_H_
#define WIMPI_EXEC_MORSEL_EXEC_H_

// Internal glue between the operator library and wimpi::parallel: morsel
// loops under the ambient ExecOptions. Operators call PlannedThreads()
// first and only come here when it returns > 1, so the sequential paths
// never touch the scheduler (and num_threads=1 stays bit-identical to the
// single-threaded engine).

#include <cstdint>
#include <functional>

#include "exec/exec_options.h"
#include "parallel/task_scheduler.h"

namespace wimpi::exec {

// Morsel count of an n-row input under the current options (the slot count
// for per-morsel partial results; independent of thread count).
inline int NumMorsels(int64_t rows) {
  const int64_t per = CurrentExecOptions().morsel_rows;
  return static_cast<int>((rows + per - 1) / per);
}

// Runs body over every morsel of [0, rows) on up to `threads` threads
// (including the caller). Partial results indexed by morsel.index and
// merged in index order are deterministic at any thread count.
inline void RunMorsels(int64_t rows, int threads,
                       const std::function<void(const parallel::Morsel&)>& body) {
  const ExecOptions& opts = CurrentExecOptions();
  parallel::TaskScheduler::Global().RunMorsels(rows, opts.morsel_rows,
                                               threads, body,
                                               opts.cancellation);
}

// Same, but with an explicit chunk size — used when the partial-result
// granularity must be "one chunk per thread" (e.g. thread-local aggregation
// tables) rather than one per morsel.
inline void RunChunks(int64_t rows, int64_t chunk_rows, int threads,
                      const std::function<void(const parallel::Morsel&)>& body) {
  parallel::TaskScheduler::Global().RunMorsels(
      rows, chunk_rows, threads, body, CurrentExecOptions().cancellation);
}

}  // namespace wimpi::exec

#endif  // WIMPI_EXEC_MORSEL_EXEC_H_
