#include "exec/sort.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "exec/exec_options.h"
#include "obs/profiler.h"

namespace wimpi::exec {
namespace {

using storage::Column;
using storage::DataType;

// -1 / 0 / +1 comparison of one column's values at two rows.
int CompareAt(const Column& c, int64_t a, int64_t b) {
  switch (c.type()) {
    case DataType::kInt64: {
      const int64_t x = c.I64Data()[a], y = c.I64Data()[b];
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case DataType::kFloat64: {
      const double x = c.F64Data()[a], y = c.F64Data()[b];
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case DataType::kString: {
      const auto x = c.StringAt(a), y = c.StringAt(b);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    default: {
      const int32_t x = c.I32Data()[a], y = c.I32Data()[b];
      return x < y ? -1 : (x > y ? 1 : 0);
    }
  }
}

}  // namespace

SelVec SortPerm(const ColumnSource& src, const std::vector<SortKey>& keys,
                QueryStats* stats, int64_t limit) {
  const int64_t n = src.rows();
  obs::OpScope scope("SortPerm", n);
  std::vector<const Column*> cols;
  cols.reserve(keys.size());
  for (const auto& k : keys) cols.push_back(&src.column(k.col));

  SelVec perm(n);
  for (int64_t i = 0; i < n; ++i) perm[i] = static_cast<int32_t>(i);

  auto less = [&](int32_t a, int32_t b) {
    for (size_t k = 0; k < keys.size(); ++k) {
      const int c = CompareAt(*cols[k], a, b);
      if (c != 0) return keys[k].ascending ? c < 0 : c > 0;
    }
    return a < b;  // stable tiebreak on source order
  };

  if (limit >= 0 && limit < n) {
    std::partial_sort(perm.begin(), perm.begin() + limit, perm.end(), less);
    perm.resize(limit);
  } else {
    std::sort(perm.begin(), perm.end(), less);
  }

  if (stats != nullptr) {
    int key_width = 0;
    for (const Column* c : cols) key_width += storage::TypeWidth(c->type());
    const double cmps =
        n <= 1 ? 0.0
               : static_cast<double>(n) * std::log2(static_cast<double>(n));
    OpStats op;
    op.op = "sort";
    op.compute_ops = cmps * cost::kSortPerCmp * keys.size();
    op.seq_bytes = cmps * key_width + static_cast<double>(n) * 8;
    op.output_bytes = static_cast<double>(perm.size()) * sizeof(int32_t);
    // Sorting has limited morsel parallelism (merge phases serialize).
    op.parallel_fraction = 0.7;
    op.rows_in = static_cast<double>(n);
    op.rows_out = static_cast<double>(perm.size());
    if (CurrentExecOptions().cardinality_estimator != nullptr) {
      // A sort is cardinality-preserving up to its LIMIT.
      op.est_rows = static_cast<double>(
          limit >= 0 ? std::min<int64_t>(limit, n) : n);
    }
    stats->Add(std::move(op));
  }
  scope.set_rows_out(static_cast<int64_t>(perm.size()));
  return perm;
}

Relation SortRelation(const Relation& in, const std::vector<SortKey>& keys,
                      QueryStats* stats, int64_t limit) {
  obs::OpScope scope("SortRelation", in.num_rows());
  const SelVec perm = SortPerm(ColumnSource(in), keys, stats, limit);
  scope.set_rows_out(static_cast<int64_t>(perm.size()));
  Relation out;
  for (int i = 0; i < in.num_columns(); ++i) {
    out.AddColumn(in.name(i), Gather(in.column(i), perm, stats));
  }
  return out;
}

}  // namespace wimpi::exec
