#ifndef WIMPI_EXEC_COUNTERS_H_
#define WIMPI_EXEC_COUNTERS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/stats_hook.h"

namespace wimpi::exec {

// Abstract work performed by one operator invocation. The engine executes
// queries for real on the host; these counters are what the hardware model
// (src/hw) converts into simulated runtimes for each of the paper's
// comparison points. Units:
//   compute_ops    - abstract per-tuple work units (one comparison or one
//                    arithmetic op ~ 1 unit; a hash ~ 4 units)
//   seq_bytes      - bytes streamed sequentially (column scans and
//                    materialized outputs)
//   rand_count     - random accesses into a structure of rand_struct_bytes
//                    total size (hash probes/inserts); the model decides
//                    whether each access hits LLC or memory
//   output_bytes   - bytes of materialized output (also added to seq_bytes
//                    by convention; kept separately for working-set
//                    accounting)
struct OpStats {
  std::string op;
  double compute_ops = 0;
  double seq_bytes = 0;
  double rand_count = 0;
  double rand_struct_bytes = 0;
  double output_bytes = 0;
  // Fraction of this operator's work that can use all cores (morsel
  // parallelism). Single-threaded phases (e.g. final merges) use 0.
  double parallel_fraction = 1.0;
  // Cardinality capture (plan-quality observability, DESIGN.md §13).
  // rows_in/rows_out are the actual input and output rows of this
  // invocation; est_rows is what the ambient exec::CardinalityEstimator
  // predicted the output to be *before* the operator ran. -1 means "not
  // recorded"; est_rows additionally stays -1 whenever no estimator is
  // installed (ExecOptions.cardinality_estimator == nullptr, the default).
  // Estimates never influence execution — they exist only so
  // obs::CardinalityResiduals can report Q-error.
  double rows_in = -1;
  double rows_out = -1;
  double est_rows = -1;
};

// Accumulated statistics for one query execution.
struct QueryStats {
  std::vector<OpStats> ops;
  // Peak bytes of live intermediates + hash tables during execution,
  // maintained by the executor; drives the cluster spill model.
  double peak_intermediate_bytes = 0;
  double live_intermediate_bytes = 0;

  // Base-table columns touched, "table.column" -> full column bytes.
  // Together with peak_intermediate_bytes this approximates the query's
  // working set (MonetDB memory-maps base data, so only touched columns
  // occupy node memory) for the cluster spill model.
  std::map<std::string, double> base_columns;

  void TouchBaseColumn(const std::string& key, double bytes) {
    auto [it, inserted] = base_columns.emplace(key, bytes);
    if (!inserted && bytes > it->second) it->second = bytes;
  }
  double BaseTouchedBytes() const {
    double t = 0;
    for (const auto& [_, b] : base_columns) t += b;
    return t;
  }

  // When a query profiler is installed, the hook attributes the OpStats to
  // the operator scope that is innermost right now; otherwise it is one
  // relaxed atomic load.
  void Add(OpStats s) {
    if (obs::internal::StatsHookArmed()) obs::internal::OpStatsAdded(s);
    ops.push_back(std::move(s));
  }

  void TrackAlloc(double bytes) {
    live_intermediate_bytes += bytes;
    if (live_intermediate_bytes > peak_intermediate_bytes) {
      peak_intermediate_bytes = live_intermediate_bytes;
    }
  }
  void TrackFree(double bytes) { live_intermediate_bytes -= bytes; }

  double TotalComputeOps() const {
    double t = 0;
    for (const auto& s : ops) t += s.compute_ops;
    return t;
  }
  double TotalSeqBytes() const {
    double t = 0;
    for (const auto& s : ops) t += s.seq_bytes;
    return t;
  }
  double TotalRandCount() const {
    double t = 0;
    for (const auto& s : ops) t += s.rand_count;
    return t;
  }

  // Scales all counters by `f`; used to project a physically-executed
  // SF s run to a modeled SF s*f run (documented in DESIGN.md §2).
  void Scale(double f) {
    for (auto& s : ops) {
      s.compute_ops *= f;
      s.seq_bytes *= f;
      s.rand_count *= f;
      s.rand_struct_bytes *= f;
      s.output_bytes *= f;
      // Cardinalities scale with the data; -1 ("not recorded") is sticky.
      // Scaling est and actual together keeps Q-error invariant under SF
      // projection.
      if (s.rows_in >= 0) s.rows_in *= f;
      if (s.rows_out >= 0) s.rows_out *= f;
      if (s.est_rows >= 0) s.est_rows *= f;
    }
    peak_intermediate_bytes *= f;
    for (auto& [_, b] : base_columns) b *= f;
  }

  void Merge(const QueryStats& other) {
    ops.insert(ops.end(), other.ops.begin(), other.ops.end());
    peak_intermediate_bytes =
        std::max(peak_intermediate_bytes, other.peak_intermediate_bytes);
    for (const auto& [k, b] : other.base_columns) TouchBaseColumn(k, b);
  }
};

// Rough per-tuple compute unit constants shared by operators.
namespace cost {
inline constexpr double kCompare = 1.0;
inline constexpr double kArith = 1.0;
inline constexpr double kGather = 1.5;
inline constexpr double kHash = 4.0;
inline constexpr double kHashInsert = 6.0;
inline constexpr double kHashProbe = 5.0;
inline constexpr double kAggUpdate = 2.0;
inline constexpr double kSortPerCmp = 2.5;
inline constexpr double kLikePerChar = 1.0;
}  // namespace cost

}  // namespace wimpi::exec

#endif  // WIMPI_EXEC_COUNTERS_H_
