#ifndef WIMPI_EXEC_JOIN_H_
#define WIMPI_EXEC_JOIN_H_

#include <vector>

#include "exec/counters.h"
#include "exec/relation.h"
#include "storage/column.h"

namespace wimpi::exec {

enum class JoinKind {
  kInner,      // emit every (build, probe) match pair
  kSemi,       // emit probe rows with >= 1 match
  kAnti,       // emit probe rows with no match
  kLeftOuter,  // probe side is the outer: unmatched probe rows emit
               // build_idx = -1
};

// Join output as row-index vectors into the two inputs; callers gather the
// payload columns they need (full materialization, MonetDB style).
struct JoinResult {
  std::vector<int32_t> build_idx;  // empty for kSemi/kAnti
  std::vector<int32_t> probe_idx;
};

// Equi-join via a bucket-chained hash table on the build side. Key columns
// are compared value-wise, so multi-column keys of any supported type work;
// string keys require both sides to share a dictionary (true for all tables
// in this codebase, including cluster partitions).
JoinResult HashJoin(const std::vector<const storage::Column*>& build_keys,
                    const std::vector<const storage::Column*>& probe_keys,
                    JoinKind kind, QueryStats* stats);

}  // namespace wimpi::exec

#endif  // WIMPI_EXEC_JOIN_H_
