#ifndef WIMPI_STORAGE_SCHEMA_H_
#define WIMPI_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "storage/types.h"

namespace wimpi::storage {

struct Field {
  std::string name;
  DataType type;
};

// Ordered list of named, typed fields.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[i]; }

  // Index of the field with `name`, or -1 if absent.
  int FieldIndex(const std::string& name) const {
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (fields_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  void AddField(std::string name, DataType type) {
    fields_.push_back({std::move(name), type});
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace wimpi::storage

#endif  // WIMPI_STORAGE_SCHEMA_H_
