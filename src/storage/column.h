#ifndef WIMPI_STORAGE_COLUMN_H_
#define WIMPI_STORAGE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/logging.h"
#include "storage/dictionary.h"
#include "storage/types.h"

namespace wimpi::storage {

// A contiguous, typed, in-memory column. NULLs are not supported: TPC-H has
// no NULLs and MonetDB's TPC-H setup never produces them in base tables;
// outer-join absent matches are handled by the join operator itself.
//
// Physical representation by type:
//   kInt32/kDate/kString -> vector<int32_t> (string values are dictionary
//                           codes; the dictionary is shared, so replicated
//                           cluster tables don't duplicate it)
//   kInt64               -> vector<int64_t>
//   kFloat64             -> vector<double>
class Column {
 public:
  explicit Column(DataType type) : type_(type) {
    if (type == DataType::kString) dict_ = std::make_shared<Dictionary>();
  }
  Column(DataType type, std::shared_ptr<Dictionary> dict)
      : type_(type), dict_(std::move(dict)) {
    WIMPI_CHECK(type == DataType::kString);
  }

  DataType type() const { return type_; }
  int64_t size() const {
    switch (type_) {
      case DataType::kInt64:
        return static_cast<int64_t>(i64_.size());
      case DataType::kFloat64:
        return static_cast<int64_t>(f64_.size());
      default:
        return static_cast<int64_t>(i32_.size());
    }
  }

  // -- Typed appends (debug-checked against the column type) --
  void AppendInt32(int32_t v) {
    WIMPI_CHECK(type_ == DataType::kInt32 || type_ == DataType::kDate);
    i32_.push_back(v);
  }
  void AppendInt64(int64_t v) {
    WIMPI_CHECK(type_ == DataType::kInt64);
    i64_.push_back(v);
  }
  void AppendFloat64(double v) {
    WIMPI_CHECK(type_ == DataType::kFloat64);
    f64_.push_back(v);
  }
  void AppendString(std::string_view v) {
    WIMPI_CHECK(type_ == DataType::kString);
    i32_.push_back(dict_->GetOrAdd(v));
  }
  void AppendCode(int32_t code) {
    WIMPI_CHECK(type_ == DataType::kString);
    i32_.push_back(code);
  }

  // -- Raw data access for the vectorized operators --
  const int32_t* I32Data() const { return i32_.data(); }
  const int64_t* I64Data() const { return i64_.data(); }
  const double* F64Data() const { return f64_.data(); }
  std::vector<int32_t>& MutableI32() { return i32_; }
  std::vector<int64_t>& MutableI64() { return i64_; }
  std::vector<double>& MutableF64() { return f64_; }

  // String value at a row (resolves the dictionary code).
  std::string_view StringAt(int64_t row) const {
    return dict_->ValueAt(i32_[row]);
  }

  const std::shared_ptr<Dictionary>& dict() const { return dict_; }

  void Reserve(int64_t n) {
    switch (type_) {
      case DataType::kInt64:
        i64_.reserve(n);
        break;
      case DataType::kFloat64:
        f64_.reserve(n);
        break;
      default:
        i32_.reserve(n);
        break;
    }
  }

  void ShrinkToFit();

  // Statistics origin tag (DESIGN.md §13): a process-unique id stamped by
  // stats::StatsRegistry on base-table columns when statistics are
  // collected, and propagated by Gather/GatherWithDefault/ConcatRelations
  // so a gathered intermediate still identifies which base column its
  // values came from. 0 = unknown (no stats). Purely observational: never
  // read by the operators themselves.
  uint32_t origin() const { return origin_; }
  void set_origin(uint32_t origin) { origin_ = origin; }

  // Heap bytes of the value array (excludes any shared dictionary).
  int64_t ValueBytes() const {
    return static_cast<int64_t>(i32_.capacity()) * sizeof(int32_t) +
           static_cast<int64_t>(i64_.capacity()) * sizeof(int64_t) +
           static_cast<int64_t>(f64_.capacity()) * sizeof(double);
  }

 private:
  DataType type_;
  std::vector<int32_t> i32_;
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::shared_ptr<Dictionary> dict_;
  uint32_t origin_ = 0;
};

}  // namespace wimpi::storage

#endif  // WIMPI_STORAGE_COLUMN_H_
