#ifndef WIMPI_STORAGE_MEMORY_TRACKER_H_
#define WIMPI_STORAGE_MEMORY_TRACKER_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace wimpi::storage {

// Tracks logical memory consumption against an optional budget. The WIMPI
// cluster simulator gives each simulated node a 1 GB tracker; exceeding it
// does not fail the (host-side) execution but is recorded so the hardware
// model can apply the microSD spill penalty the paper observed, and so the
// "swap disabled" failure mode can be simulated (Section III-C4).
class MemoryTracker {
 public:
  // budget_bytes <= 0 means unlimited.
  explicit MemoryTracker(int64_t budget_bytes = 0)
      : budget_(budget_bytes) {}

  void Consume(int64_t bytes) {
    used_ += bytes;
    if (used_ > peak_) peak_ = used_;
  }
  void Release(int64_t bytes) { used_ -= bytes; }

  int64_t used() const { return used_; }
  int64_t peak() const { return peak_; }
  int64_t budget() const { return budget_; }

  bool over_budget() const { return budget_ > 0 && used_ > budget_; }
  // Peak overshoot relative to the budget; 0 when within budget.
  int64_t PeakOvershoot() const {
    if (budget_ <= 0 || peak_ <= budget_) return 0;
    return peak_ - budget_;
  }

  // Error for callers that treat over-budget as fatal (swap disabled).
  Status CheckBudget(const std::string& what) const {
    if (over_budget()) {
      return Status::OutOfMemory(what + ": " + std::to_string(used_) +
                                 " bytes used, budget " +
                                 std::to_string(budget_));
    }
    return Status::OK();
  }

  void Reset() {
    used_ = 0;
    peak_ = 0;
  }

 private:
  int64_t budget_;
  int64_t used_ = 0;
  int64_t peak_ = 0;
};

}  // namespace wimpi::storage

#endif  // WIMPI_STORAGE_MEMORY_TRACKER_H_
