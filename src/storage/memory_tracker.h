#ifndef WIMPI_STORAGE_MEMORY_TRACKER_H_
#define WIMPI_STORAGE_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace wimpi::storage {

// Tracks logical memory consumption against an optional budget. The WIMPI
// cluster simulator gives each simulated node a 1 GB tracker; exceeding it
// does not fail the (host-side) execution but is recorded so the hardware
// model can apply the microSD spill penalty the paper observed, and so the
// "swap disabled" failure mode can be simulated (Section III-C4).
//
// Thread-safe: morsel-parallel operators consume/release from pool workers
// concurrently. `peak` is maintained with a CAS loop, so it never
// under-reports a momentary high-water mark, though under concurrent
// Consume/Release it reflects one linearization of the updates.
class MemoryTracker {
 public:
  // budget_bytes <= 0 means unlimited.
  explicit MemoryTracker(int64_t budget_bytes = 0)
      : budget_(budget_bytes) {}

  void Consume(int64_t bytes) {
    const int64_t now =
        used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    int64_t prev = peak_.load(std::memory_order_relaxed);
    while (now > prev &&
           !peak_.compare_exchange_weak(prev, now,
                                        std::memory_order_relaxed)) {
    }
  }
  void Release(int64_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  int64_t used() const { return used_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  int64_t budget() const { return budget_; }

  bool over_budget() const { return budget_ > 0 && used() > budget_; }
  // Peak overshoot relative to the budget; 0 when within budget.
  int64_t PeakOvershoot() const {
    if (budget_ <= 0 || peak() <= budget_) return 0;
    return peak() - budget_;
  }

  // Error for callers that treat over-budget as fatal (swap disabled).
  Status CheckBudget(const std::string& what) const {
    if (over_budget()) {
      return Status::OutOfMemory(what + ": " + std::to_string(used()) +
                                 " bytes used, budget " +
                                 std::to_string(budget_));
    }
    return Status::OK();
  }

  void Reset() {
    used_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  int64_t budget_;
  std::atomic<int64_t> used_{0};
  std::atomic<int64_t> peak_{0};
};

}  // namespace wimpi::storage

#endif  // WIMPI_STORAGE_MEMORY_TRACKER_H_
