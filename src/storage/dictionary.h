#ifndef WIMPI_STORAGE_DICTIONARY_H_
#define WIMPI_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace wimpi::storage {

// Order-preserving-insertion string dictionary. Codes are assigned densely
// in first-seen order; the reverse index is only needed while loading and
// can be released with FreezeForRead() to reclaim memory.
class Dictionary {
 public:
  Dictionary() = default;

  // Returns the code for `s`, inserting it if new.
  int32_t GetOrAdd(std::string_view s);

  // Returns the code for `s` or -1 if absent. Works after FreezeForRead()
  // by falling back to a linear scan (only used by tests and point lookups).
  int32_t Find(std::string_view s) const;

  std::string_view ValueAt(int32_t code) const { return values_[code]; }
  int64_t size() const { return static_cast<int64_t>(values_.size()); }

  // Drops the hash index; the dictionary becomes read-only.
  void FreezeForRead();

  // Bytes of heap memory used (values + index).
  int64_t MemoryBytes() const;

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, int32_t> index_;
  bool frozen_ = false;
};

}  // namespace wimpi::storage

#endif  // WIMPI_STORAGE_DICTIONARY_H_
