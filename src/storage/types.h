#ifndef WIMPI_STORAGE_TYPES_H_
#define WIMPI_STORAGE_TYPES_H_

#include <cstdint>
#include <string>

namespace wimpi::storage {

// Column data types. Strings are always dictionary-encoded (int32 codes
// into a per-column Dictionary), matching the fixed-width dictionary
// encoding the paper describes for in-memory DBMSs (Section III-C2).
enum class DataType : uint8_t {
  kInt32 = 0,
  kInt64,
  kFloat64,
  kDate,    // int32 days since 1970-01-01
  kString,  // int32 dictionary code
};

// Width in bytes of the in-memory representation of one value.
inline int TypeWidth(DataType t) {
  switch (t) {
    case DataType::kInt32:
    case DataType::kDate:
    case DataType::kString:
      return 4;
    case DataType::kInt64:
    case DataType::kFloat64:
      return 8;
  }
  return 0;
}

inline const char* TypeName(DataType t) {
  switch (t) {
    case DataType::kInt32:
      return "int32";
    case DataType::kInt64:
      return "int64";
    case DataType::kFloat64:
      return "float64";
    case DataType::kDate:
      return "date";
    case DataType::kString:
      return "string";
  }
  return "?";
}

}  // namespace wimpi::storage

#endif  // WIMPI_STORAGE_TYPES_H_
