#include "storage/dictionary.h"

#include "common/logging.h"

namespace wimpi::storage {

int32_t Dictionary::GetOrAdd(std::string_view s) {
  WIMPI_CHECK(!frozen_) << "GetOrAdd on frozen dictionary";
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  const int32_t code = static_cast<int32_t>(values_.size());
  values_.emplace_back(s);
  index_.emplace(values_.back(), code);
  return code;
}

int32_t Dictionary::Find(std::string_view s) const {
  if (!frozen_) {
    auto it = index_.find(std::string(s));
    return it == index_.end() ? -1 : it->second;
  }
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] == s) return static_cast<int32_t>(i);
  }
  return -1;
}

void Dictionary::FreezeForRead() {
  index_.clear();
  frozen_ = true;
}

int64_t Dictionary::MemoryBytes() const {
  int64_t bytes = 0;
  for (const auto& v : values_) {
    bytes += static_cast<int64_t>(v.capacity()) + sizeof(std::string);
  }
  // Rough estimate of unordered_map overhead per entry.
  bytes += static_cast<int64_t>(index_.size()) * 64;
  return bytes;
}

}  // namespace wimpi::storage
