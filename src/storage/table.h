#ifndef WIMPI_STORAGE_TABLE_H_
#define WIMPI_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "storage/column.h"
#include "storage/schema.h"

namespace wimpi::storage {

// An immutable-after-load, column-oriented in-memory table.
class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  int64_t num_rows() const { return num_rows_; }

  Column& column(int i) { return *columns_[i]; }
  const Column& column(int i) const { return *columns_[i]; }
  // Column lookup by field name; CHECK-fails if absent.
  const Column& column(const std::string& name) const;
  Column& column(const std::string& name);
  int ColumnIndex(const std::string& name) const;

  // Recomputes the row count from column sizes; call after bulk loading.
  // CHECK-fails if columns disagree.
  void FinishLoad();

  // Total heap bytes: value arrays plus dictionaries. A dictionary shared
  // between this table and others is counted here in full (the cluster
  // simulator's per-node accounting wants logical, not physical, size).
  int64_t MemoryBytes() const;

  // Bytes of the value arrays only (what a scan streams from memory).
  int64_t ValueBytes() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<std::unique_ptr<Column>> columns_;
  int64_t num_rows_ = 0;
};

// Creates a table whose string columns share dictionaries with `base` so
// that partitions of a table do not duplicate dictionary storage.
std::unique_ptr<Table> NewTableLike(const Table& base, std::string name);

}  // namespace wimpi::storage

#endif  // WIMPI_STORAGE_TABLE_H_
