#include "storage/column.h"

namespace wimpi::storage {

void Column::ShrinkToFit() {
  i32_.shrink_to_fit();
  i64_.shrink_to_fit();
  f64_.shrink_to_fit();
}

}  // namespace wimpi::storage
