#include "storage/table.h"

#include <unordered_set>

namespace wimpi::storage {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (int i = 0; i < schema_.num_fields(); ++i) {
    columns_.push_back(std::make_unique<Column>(schema_.field(i).type));
  }
}

const Column& Table::column(const std::string& name) const {
  return *columns_[ColumnIndex(name)];
}

Column& Table::column(const std::string& name) {
  return *columns_[ColumnIndex(name)];
}

int Table::ColumnIndex(const std::string& name) const {
  const int idx = schema_.FieldIndex(name);
  WIMPI_CHECK_GE(idx, 0) << "no column '" << name << "' in table " << name_;
  return idx;
}

void Table::FinishLoad() {
  if (columns_.empty()) {
    num_rows_ = 0;
    return;
  }
  num_rows_ = columns_[0]->size();
  for (const auto& col : columns_) {
    WIMPI_CHECK_EQ(col->size(), num_rows_)
        << "ragged columns in table " << name_;
    col->ShrinkToFit();
  }
}

int64_t Table::MemoryBytes() const {
  int64_t bytes = ValueBytes();
  // Count each distinct dictionary once even if several columns share it.
  std::unordered_set<const Dictionary*> seen;
  for (const auto& col : columns_) {
    if (col->dict() != nullptr && seen.insert(col->dict().get()).second) {
      bytes += col->dict()->MemoryBytes();
    }
  }
  return bytes;
}

int64_t Table::ValueBytes() const {
  int64_t bytes = 0;
  for (const auto& col : columns_) bytes += col->ValueBytes();
  return bytes;
}

std::unique_ptr<Table> NewTableLike(const Table& base, std::string name) {
  auto table = std::make_unique<Table>(std::move(name), base.schema());
  for (int i = 0; i < base.schema().num_fields(); ++i) {
    if (base.schema().field(i).type == DataType::kString) {
      // Replace the fresh empty dictionary with the shared one.
      table->column(i) = Column(DataType::kString, base.column(i).dict());
    }
  }
  return table;
}

}  // namespace wimpi::storage
