#ifndef WIMPI_CLUSTER_WIMPI_CLUSTER_H_
#define WIMPI_CLUSTER_WIMPI_CLUSTER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/fault.h"
#include "cluster/recovery.h"
#include "common/status.h"
#include "engine/database.h"
#include "exec/relation.h"
#include "hw/cost_model.h"
#include "hw/profile.h"

namespace wimpi::cluster {

// Configuration of the simulated WIMPI cluster (defaults follow the paper's
// prototype: Raspberry Pi 3B+ nodes, 1 GB RAM, GbE limited to ~220 Mbps by
// the shared USB bus, microSD-class storage behind disabled swap).
struct ClusterOptions {
  int num_nodes = 24;
  double node_memory_bytes = 1024.0 * 1024 * 1024;
  double node_net_mbps = 220.0;
  double per_node_latency_s = 0.002;  // request/response round trip
  double microsd_mbps = 15.0;         // effective microSD bandwidth
  // Thrash multiplier: bytes of microSD traffic caused per byte of
  // working-set overshoot (page evictions + reloads).
  double thrash_factor = 1.0;
  // Counter multiplier: model SF / physically executed SF. The queries run
  // for real at the physical SF; counters and working sets are scaled to
  // the modeled SF (see DESIGN.md §2).
  double sf_scale = 1.0;
  int threads_per_node = 4;

  // ---- fault injection & recovery (DESIGN.md §9) ----
  // Empty plan (the default) disables the whole fault path: Run() takes
  // the exact pre-fault code shape and produces bit-identical results and
  // modeled times.
  FaultPlan faults;
  // Failed attempts tolerated on one node before the partition is
  // reassigned to a surviving node (crashes reassign immediately).
  int max_retries = 3;
  // Capped exponential backoff between attempts of one partition:
  // min(retry_backoff_s * 2^(attempt-1), retry_backoff_cap_s), charged to
  // modeled time.
  double retry_backoff_s = 0.05;
  double retry_backoff_cap_s = 1.0;
  // Per-attempt deadline: timeout_factor * the partition's expected node
  // seconds under the cost model, floored at min_timeout_s.
  double timeout_factor = 4.0;
  double min_timeout_s = 0.01;
  // Total failed attempts tolerated across the whole run before Run()
  // stops retrying and returns kUnavailable (surfaced through the
  // cluster.retry.exhausted counter). 0 derives the default budget,
  // 4 * max_retries * num_nodes — generous enough that every generated
  // FaultPlan converges, tight enough that an adversarial plan exhausts
  // deterministically instead of spinning.
  int retry_budget = 0;

  // ---- fine-grained recovery (DESIGN.md §14) ----
  // kRetry (the default) keeps the whole-partition schedule above;
  // kFineGrained executes morsel ranges with checkpointed partials,
  // cross-node stealing, and elastic membership.
  RecoveryOptions recovery;
  // Membership changes during the run (fine-grained mode only).
  ResizePlan resize;
};

// One scheduling attempt of a lineitem partition on a node, in modeled
// node-clock seconds. outcome: kOk on success, kUnavailable for a crashed
// or transiently failing node, kDeadlineExceeded for a straggler that blew
// its deadline.
struct AttemptRecord {
  int partition = 0;
  int node = 0;
  int attempt = 0;  // 0-based, per partition
  double start_seconds = 0;
  double end_seconds = 0;
  StatusCode outcome = StatusCode::kOk;
  // Steal provenance (fine-grained recovery only; retry-mode attempts
  // cover the whole partition and leave morsel_end at 0). The attempt
  // executed morsels [morsel_begin, morsel_end); prev_node is where the
  // range came from (-1 = initial assignment), stolen says whether it was
  // taken from a live victim rather than reassigned from a dead one.
  int morsel_begin = 0;
  int morsel_end = 0;
  int prev_node = -1;
  bool stolen = false;
};

// Per-query result of a simulated distributed execution.
struct DistributedRun {
  exec::Relation result;        // equals the single-node query answer
  double total_seconds = 0;     // simulated end-to-end time
  double max_node_seconds = 0;  // slowest node's local work
  double spill_seconds = 0;     // included in max_node_seconds
  double network_seconds = 0;
  double merge_seconds = 0;
  double network_bytes = 0;
  double max_working_set_bytes = 0;  // worst node's working set (scaled)
  int nodes_used = 1;

  // ---- recovery accounting (all zero on a fault-free run) ----
  int retries = 0;                 // failed attempts that were retried
  int reassigned_partitions = 0;   // partitions that left their home node
  int nodes_failed = 0;            // nodes observed crashed during the run
  // Extra modeled time the faults cost: total_seconds minus what this very
  // run would have taken with an empty FaultPlan.
  double degraded_seconds = 0;
  // Per-attempt timeline in partition order (one kOk entry per partition
  // on a clean run).
  std::vector<AttemptRecord> attempts;

  // ---- fine-grained recovery accounting (kFineGrained runs only) ----
  int total_morsels = 0;      // sum of per-partition morsel counts
  int steals = 0;             // cross-node steal operations
  int stolen_morsels = 0;     // morsels executed away from their assignee
  int checkpoints = 0;        // merge-ready chunks published
  double checkpoint_bytes = 0;
  int recovered_morsels = 0;  // executed-but-lost morsels re-executed
  int joins = 0;              // nodes that joined mid-run
  int leaves = 0;             // nodes that left gracefully mid-run
  std::vector<StealRecord> steal_log;

  // ---- telemetry (populated only while the trace sink is enabled) ----
  // Id of the distributed trace this run exported: the modeled span tree
  // (root -> partition -> attempt chain) and the real-clock partial
  // executions all carry it. 0 on an untraced run.
  uint64_t trace_id = 0;

  // Cluster-level rollups of per-node scalars (busy_s, spill_s, attempts,
  // retries, failed), each expanded to .min/.max/.sum/.mean/.skew — the
  // straggler diagnosis view (skew = max/mean; 1.0 means balanced). Always
  // populated; derived purely from modeled quantities, so deterministic.
  std::map<std::string, double> node_rollups;
};

// Simulated WIMPI cluster: lineitem is hash-partitioned on l_orderkey
// across nodes, all other tables are fully replicated (physically shared in
// host memory). Partial plans execute for real per node; the hardware model
// converts each node's counters into simulated time, and the driver adds
// the paper's network, merge, and memory-pressure effects.
//
// With a non-empty ClusterOptions::faults plan, Run() also simulates the
// paper's failure modes: each attempt gets a modeled deadline, failures
// are retried with capped exponential backoff, and partitions whose node
// died (or kept timing out) are reassigned to the surviving node with the
// least accumulated work — any survivor can recompute any partition,
// because lineitem partitions are deterministic hash ranges and every
// other table is replicated. Results stay bit-identical to the fault-free
// answer; only the modeled time degrades. Run() errors (kUnavailable)
// only when no live node remains.
class WimpiCluster {
 public:
  WimpiCluster(const engine::Database& db, const ClusterOptions& opts);

  const ClusterOptions& options() const { return opts_; }
  int num_nodes() const { return opts_.num_nodes; }
  const engine::Database& node_db(int i) const { return node_dbs_[i]; }

  // Runs one of the eight distributed queries (Q13 uses a single node).
  // Returns InvalidArgument for queries outside the distributed subset and
  // Unavailable when the fault plan kills every node.
  Result<DistributedRun> Run(int q, const hw::CostModel& model) const;

  // Simulated seconds to ship `bytes` from `n_senders` nodes to the
  // coordinator (receive-side 220 Mbps bottleneck + per-node latency).
  double NetworkSeconds(double bytes, int n_senders) const;

  // Logical per-node memory of base tables at the model scale factor
  // (replicated tables + one lineitem partition), as WIMPI provisioning
  // would see it.
  double NodeLogicalBytes(double model_sf) const;

 private:
  ClusterOptions opts_;
  std::vector<engine::Database> node_dbs_;
};

}  // namespace wimpi::cluster

#endif  // WIMPI_CLUSTER_WIMPI_CLUSTER_H_
