#ifndef WIMPI_CLUSTER_RECOVERY_H_
#define WIMPI_CLUSTER_RECOVERY_H_

#include <cstdint>
#include <vector>

#include "cluster/fault.h"
#include "common/status.h"
#include "parallel/steal.h"

namespace wimpi::cluster {

// Fine-grained recovery (DESIGN.md §14): the modeled scheduler that
// replaces whole-partition retry with morsel-range execution, checkpointed
// partials, cross-node stealing, and elastic membership.
//
// Like the fault model it extends (§9), this is pure data-in/data-out
// simulation on modeled node clocks: the partition's real partial executes
// exactly once regardless of schedule, and the scheduler only decides
// *which worker's clock* pays for each morsel. That is the determinism
// argument in one line — the data, the partial plans, and the merge order
// never depend on the steal schedule, so any fault x steal x resize
// interleaving is bit-identical to the clean run by construction, and the
// chaos harness (bench_chaos) enforces it with checksums anyway.

enum class RecoveryMode {
  kRetry,        // whole-partition retry/reassign (§9, the default)
  kFineGrained,  // morsel ranges + checkpoints + stealing (§14)
};

struct RecoveryOptions {
  RecoveryMode mode = RecoveryMode::kRetry;
  // Morsel granularity: one modeled morsel covers `morsel_rows` rows of
  // the partition's driving table at the model SF (the engine's intra-node
  // 64K-row convention), capped so SF-100-class runs stay cheap to model.
  int64_t morsel_rows = 64 * 1024;
  int max_morsels_per_partition = 256;
  // Checkpoint boundary rule: a node publishes a merge-ready partial
  // covering every `checkpoint_interval` completed morsels (and at range
  // end). Publishing costs modeled time — one round trip plus the chunk's
  // share of the partial's bytes over the node link — so smaller intervals
  // buy cheaper recovery with higher clean-run overhead.
  int checkpoint_interval = 4;
  // Cross-node stealing: an idle worker takes the un-started half of the
  // most-loaded worker's remaining range (fixed victim order, half-split;
  // see parallel/steal.h). Off = checkpoint-only recovery.
  bool steal = true;
  int min_steal_morsels = 2;
  // Publish deadline: a checkpoint publish that would stall longer than
  // this (a network-stall fault) is abandoned and the chunk re-executed —
  // the fine-grained analogue of the retry path's per-attempt timeout.
  // Losing at most `checkpoint_interval` morsels is what bounds a stalled
  // link's blast radius; waiting out the stall would not.
  double publish_timeout_s = 0.05;
};

// One contiguous run of morsels by one worker. `prev_node` records where
// the range came from (-1 = initial assignment): with stolen = true it was
// taken from a live victim, otherwise it was reassigned from a dead or
// departed node. outcome kUnavailable marks work that was executed but
// lost (crash/transient before the checkpoint); its morsels re-appear in a
// later segment.
struct MorselSegment {
  int partition = 0;
  int node = 0;
  int begin = 0;
  int end = 0;  // exclusive morsel index
  double start_seconds = 0;
  double end_seconds = 0;
  int prev_node = -1;
  bool stolen = false;
  StatusCode outcome = StatusCode::kOk;
};

struct StealRecord {
  int partition = 0;
  int victim = 0;
  int thief = 0;
  int begin = 0;
  int end = 0;
  double at_seconds = 0;
};

struct CheckpointRecord {
  int partition = 0;
  int node = 0;
  int morsels = 0;
  double bytes = 0;
  double at_seconds = 0;
};

struct FineInputs {
  int pool_nodes = 0;                 // initial membership
  std::vector<double> work_s;         // per partition, spill included
  std::vector<double> spill_s;        // per partition
  std::vector<int> morsels;           // per partition (>= 1)
  std::vector<double> partial_bytes;  // scaled merge-ready partial size
  const FaultPlan* faults = nullptr;  // may be nullptr (clean)
  const ResizePlan* resize = nullptr; // may be nullptr (static membership)
  RecoveryOptions opts;
  double per_node_latency_s = 0.002;
  double net_mbps = 220.0;
};

struct FineSchedule {
  // False iff every worker died or left with work outstanding.
  bool completed = false;
  double makespan_s = 0;  // max worker clock
  std::vector<double> node_clock;  // indexed by worker id (pool + joins)
  std::vector<double> node_spill;
  std::vector<char> alive;
  std::vector<MorselSegment> segments;  // in completion order
  std::vector<StealRecord> steals;
  std::vector<CheckpointRecord> checkpoints;
  int total_morsels = 0;
  int stolen_morsels = 0;
  int recovered_morsels = 0;  // re-executed after un-checkpointed loss
  int nodes_failed = 0;
  int joins = 0;
  int leaves = 0;
  double checkpoint_bytes = 0;
};

// Runs the event-driven modeled schedule. Deterministic: fixed actor
// order (smallest clock, lowest worker id on ties), fixed victim order,
// fixed fault trigger points — same inputs, same schedule, byte for byte.
FineSchedule SimulateFineGrained(const FineInputs& in);

}  // namespace wimpi::cluster

#endif  // WIMPI_CLUSTER_RECOVERY_H_
