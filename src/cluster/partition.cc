#include "cluster/partition.h"

#include "common/hash.h"
#include "common/logging.h"

namespace wimpi::cluster {

std::vector<std::shared_ptr<storage::Table>> PartitionByKey(
    const storage::Table& table, const std::string& key_column,
    int num_parts) {
  WIMPI_CHECK_GT(num_parts, 0);
  const storage::Column& key = table.column(key_column);
  WIMPI_CHECK(key.type() == storage::DataType::kInt64)
      << "PartitionByKey expects an int64 key";

  std::vector<std::shared_ptr<storage::Table>> parts;
  parts.reserve(num_parts);
  for (int p = 0; p < num_parts; ++p) {
    parts.push_back(storage::NewTableLike(table, table.name()));
  }

  const int64_t n = table.num_rows();
  const int64_t* keys = key.I64Data();
  // Precompute each row's destination, then append column-by-column for
  // cache friendliness.
  std::vector<int32_t> dest(n);
  for (int64_t i = 0; i < n; ++i) {
    dest[i] = static_cast<int32_t>(
        HashInt64(static_cast<uint64_t>(keys[i])) %
        static_cast<uint64_t>(num_parts));
  }

  for (int c = 0; c < table.schema().num_fields(); ++c) {
    const storage::Column& src = table.column(c);
    switch (src.type()) {
      case storage::DataType::kInt64: {
        const int64_t* d = src.I64Data();
        for (int64_t i = 0; i < n; ++i) {
          parts[dest[i]]->column(c).AppendInt64(d[i]);
        }
        break;
      }
      case storage::DataType::kFloat64: {
        const double* d = src.F64Data();
        for (int64_t i = 0; i < n; ++i) {
          parts[dest[i]]->column(c).AppendFloat64(d[i]);
        }
        break;
      }
      case storage::DataType::kString: {
        const int32_t* d = src.I32Data();
        for (int64_t i = 0; i < n; ++i) {
          parts[dest[i]]->column(c).AppendCode(d[i]);
        }
        break;
      }
      default: {
        const int32_t* d = src.I32Data();
        for (int64_t i = 0; i < n; ++i) {
          parts[dest[i]]->column(c).AppendInt32(d[i]);
        }
        break;
      }
    }
  }
  for (auto& p : parts) p->FinishLoad();
  return parts;
}

}  // namespace wimpi::cluster
