#include "cluster/wimpi_cluster.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "cluster/partials.h"
#include "cluster/partition.h"
#include "exec/exec_options.h"
#include "obs/export/aggregate.h"
#include "obs/export/event_log.h"
#include "obs/flight/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/tracing/span.h"
#include "parallel/cancellation.h"
#include "parallel/steal.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace wimpi::cluster {

WimpiCluster::WimpiCluster(const engine::Database& db,
                           const ClusterOptions& opts)
    : opts_(opts) {
  WIMPI_CHECK_GT(opts.num_nodes, 0);
  const auto parts =
      PartitionByKey(db.table("lineitem"), "l_orderkey", opts.num_nodes);
  node_dbs_.resize(opts.num_nodes);
  for (int i = 0; i < opts.num_nodes; ++i) {
    for (const auto& [name, table] : db.tables()) {
      if (name == "lineitem") continue;
      node_dbs_[i].AddTable(table);  // replicated (physically shared)
    }
    node_dbs_[i].AddTable(parts[i]);
  }
}

double WimpiCluster::NetworkSeconds(double bytes, int n_senders) const {
  return bytes * 8.0 / (opts_.node_net_mbps * 1e6) +
         opts_.per_node_latency_s * n_senders;
}

double WimpiCluster::NodeLogicalBytes(double model_sf) const {
  double replicated = 0;
  for (const char* t : {"orders", "customer", "part", "partsupp", "supplier",
                        "nation", "region"}) {
    replicated += tpch::LogicalTableBytes(t, model_sf);
  }
  return replicated +
         tpch::LogicalTableBytes("lineitem", model_sf) / opts_.num_nodes;
}

namespace {

// Cached real execution of one lineitem partition's partial plan. The
// partition's data and plan are fixed (deterministic hash ranges + replicas
// physically shared in host memory), so its relation and counters are
// identical whichever node the fault schedule runs it on: the partial
// executes once and failed/retried attempts are modeled from the cache.
struct PartitionExec {
  bool done = false;
  exec::Relation partial;
  double work_s = 0;  // modeled local work, spill included
  double spill_s = 0;
  double working_set = 0;
};

// Trace lanes on the modeled-time process: tid 0 is the run itself, one
// row per node for attempts/faults, one row per partition for the
// umbrella spans (so retry chains bouncing across nodes stay readable).
int NodeLane(int node) { return 1 + node; }
int PartitionLane(int p) { return 1000 + p; }

int64_t ModeledUs(double seconds) {
  return static_cast<int64_t>(seconds * 1e6);
}

// What failed: the injected fault's kind for unavailable attempts, the
// deadline for abandoned stragglers.
const char* FaultLabel(const AttemptRecord& a, const FaultPlan& plan) {
  if (a.outcome == StatusCode::kDeadlineExceeded) return "timeout";
  const NodeFault* f = plan.FaultFor(a.node);
  return f != nullptr ? FaultKindName(f->kind) : "unavailable";
}

// Exports the run's modeled timeline as one causal span tree under
// `root`:
//
//   Q<q> distributed                      (root, lane 0)
//   `- partition p                        (lane 1000+p)
//      `- attempt 0 on its home node      (lane 1+node)
//         `- attempt 1 ...                (retry chain: each retry is a
//            `- attempt 2 ...              child of the attempt it retries)
//
// Every failed attempt additionally gets a fault instant event (child of
// the failed attempt) and a flow arrow from the failure to the retry or
// reassigned attempt it triggered, so a straggler's recovery history reads
// directly off the trace.
void EmitClusterTrace(int q, const DistributedRun& run, const FaultPlan& plan,
                      const obs::SpanContext& root) {
  auto& sink = obs::TraceSink::Global();

  {
    obs::TraceEvent e;
    e.name = "Q" + std::to_string(q) + " distributed";
    e.category = "cluster";
    e.pid = obs::kTracePidCluster;
    e.tid = 0;
    e.ts_us = 0;
    e.dur_us = ModeledUs(run.total_seconds);
    e.trace_id = root.trace_id;
    e.span_id = root.span_id;
    char args[120];
    std::snprintf(args, sizeof(args),
                  "{\"nodes\":%d,\"retries\":%d,\"reassigned\":%d}",
                  run.nodes_used, run.retries, run.reassigned_partitions);
    e.args_json = args;
    sink.Record(std::move(e));
  }

  // Group the (partition-ordered) timeline by partition.
  std::map<int, std::vector<const AttemptRecord*>> by_partition;
  for (const AttemptRecord& a : run.attempts) {
    by_partition[a.partition].push_back(&a);
  }

  for (const auto& [p, attempts] : by_partition) {
    obs::TraceEvent part;
    part.name = "partition " + std::to_string(p);
    part.category = "cluster.partition";
    part.pid = obs::kTracePidCluster;
    part.tid = PartitionLane(p);
    part.ts_us = ModeledUs(attempts.front()->start_seconds);
    part.dur_us = ModeledUs(attempts.back()->end_seconds) - part.ts_us;
    part.trace_id = root.trace_id;
    part.span_id = obs::NewSpanId();
    part.parent_id = root.span_id;
    const uint64_t partition_span = part.span_id;
    sink.Record(std::move(part));

    uint64_t prev_span = partition_span;
    for (size_t i = 0; i < attempts.size(); ++i) {
      const AttemptRecord& a = *attempts[i];
      obs::TraceEvent e;
      char name[64];
      std::snprintf(name, sizeof(name), "Q%d p%d try%d", q, a.partition,
                    a.attempt);
      e.name = name;
      e.category = "cluster.attempt";
      e.pid = obs::kTracePidCluster;
      e.tid = NodeLane(a.node);
      e.ts_us = ModeledUs(a.start_seconds);
      e.dur_us = ModeledUs(a.end_seconds) - e.ts_us;
      e.trace_id = root.trace_id;
      e.span_id = obs::NewSpanId();
      e.parent_id = prev_span;
      char args[120];
      std::snprintf(
          args, sizeof(args),
          "{\"partition\":%d,\"node\":%d,\"attempt\":%d,\"outcome\":\"%s\"}",
          a.partition, a.node, a.attempt,
          Status::CodeName(a.outcome).c_str());
      e.args_json = args;
      const uint64_t attempt_span = e.span_id;
      sink.Record(std::move(e));

      if (a.outcome != StatusCode::kOk) {
        obs::TraceEvent fault;
        fault.name = FaultLabel(a, plan);
        fault.category = "cluster.fault";
        fault.phase = 'i';
        fault.pid = obs::kTracePidCluster;
        fault.tid = NodeLane(a.node);
        fault.ts_us = ModeledUs(a.end_seconds);
        fault.trace_id = root.trace_id;
        fault.span_id = obs::NewSpanId();
        fault.parent_id = attempt_span;
        sink.Record(std::move(fault));

        if (i + 1 < attempts.size()) {
          // Causal arrow: this failure triggered the next attempt.
          const AttemptRecord& next = *attempts[i + 1];
          const uint64_t flow = obs::NewSpanId();
          obs::TraceEvent s;
          s.name = "retry";
          s.category = "cluster.flow";
          s.phase = 's';
          s.pid = obs::kTracePidCluster;
          s.tid = NodeLane(a.node);
          s.ts_us = ModeledUs(a.end_seconds);
          s.trace_id = root.trace_id;
          s.flow_id = flow;
          sink.Record(std::move(s));
          obs::TraceEvent f;
          f.name = "retry";
          f.category = "cluster.flow";
          f.phase = 'f';
          f.pid = obs::kTracePidCluster;
          f.tid = NodeLane(next.node);
          f.ts_us = ModeledUs(next.start_seconds);
          f.trace_id = root.trace_id;
          f.flow_id = flow;
          sink.Record(std::move(f));
        }
      }
      prev_span = attempt_span;
    }
  }
}

// Fine-grained recovery timeline (DESIGN.md §14). Same lane layout as the
// retry trace, but the unit of work is a morsel-range segment:
//
//   Q<q> distributed [fine]                (root, lane 0)
//   `- partition p {morsels:M}             (lane 1000+p)
//      `- Q<q> p<p> seg<k>                 (lane 1+node, one per segment)
//
// Every steal gets an instant on the thief's lane (parented to the thief's
// stolen segment) plus a "steal" flow arrow from the victim's lane; every
// checkpoint publish gets a "ckpt" instant carrying {partition, morsels,
// bytes} — so per partition the ckpt morsels sum to the partition's
// morsel count, the invariant wimpi_trace_check enforces. Lost segments
// get a fault instant and a "recover" flow to the segment that re-executes
// the lost range.
void EmitFineTrace(int q, const DistributedRun& run, const FaultPlan& plan,
                   const std::vector<int>& morsels,
                   const std::vector<CheckpointRecord>& ckpts,
                   const obs::SpanContext& root) {
  auto& sink = obs::TraceSink::Global();

  {
    obs::TraceEvent e;
    e.name = "Q" + std::to_string(q) + " distributed [fine]";
    e.category = "cluster";
    e.pid = obs::kTracePidCluster;
    e.tid = 0;
    e.ts_us = 0;
    e.dur_us = ModeledUs(run.total_seconds);
    e.trace_id = root.trace_id;
    e.span_id = root.span_id;
    char args[160];
    std::snprintf(args, sizeof(args),
                  "{\"nodes\":%d,\"steals\":%d,\"ckpts\":%d,"
                  "\"recovered\":%d,\"mode\":\"fine\"}",
                  run.nodes_used, run.steals, run.checkpoints,
                  run.recovered_morsels);
    e.args_json = args;
    sink.Record(std::move(e));
  }

  std::map<int, std::vector<const AttemptRecord*>> by_partition;
  for (const AttemptRecord& a : run.attempts) {
    by_partition[a.partition].push_back(&a);
  }

  std::map<int, uint64_t> partition_span;
  std::map<const AttemptRecord*, uint64_t> span_of;
  for (const auto& [p, segs] : by_partition) {
    double t0 = segs.front()->start_seconds;
    double t1 = segs.front()->end_seconds;
    for (const AttemptRecord* a : segs) {
      t0 = std::min(t0, a->start_seconds);
      t1 = std::max(t1, a->end_seconds);
    }
    obs::TraceEvent part;
    part.name = "partition " + std::to_string(p);
    part.category = "cluster.partition";
    part.pid = obs::kTracePidCluster;
    part.tid = PartitionLane(p);
    part.ts_us = ModeledUs(t0);
    part.dur_us = ModeledUs(t1) - part.ts_us;
    part.trace_id = root.trace_id;
    part.span_id = obs::NewSpanId();
    part.parent_id = root.span_id;
    char pargs[64];
    std::snprintf(pargs, sizeof(pargs), "{\"partition\":%d,\"morsels\":%d}",
                  p, morsels[p]);
    part.args_json = pargs;
    partition_span[p] = part.span_id;
    sink.Record(std::move(part));

    for (size_t i = 0; i < segs.size(); ++i) {
      const AttemptRecord& a = *segs[i];
      obs::TraceEvent e;
      char name[64];
      std::snprintf(name, sizeof(name), "Q%d p%d seg%d", q, a.partition,
                    a.attempt);
      e.name = name;
      e.category = "cluster.attempt";
      e.pid = obs::kTracePidCluster;
      e.tid = NodeLane(a.node);
      e.ts_us = ModeledUs(a.start_seconds);
      e.dur_us = ModeledUs(a.end_seconds) - e.ts_us;
      e.trace_id = root.trace_id;
      e.span_id = obs::NewSpanId();
      e.parent_id = partition_span[p];
      char args[180];
      std::snprintf(args, sizeof(args),
                    "{\"partition\":%d,\"node\":%d,\"begin\":%d,\"end\":%d,"
                    "\"stolen\":%s,\"prev\":%d,\"outcome\":\"%s\"}",
                    a.partition, a.node, a.morsel_begin, a.morsel_end,
                    a.stolen ? "true" : "false", a.prev_node,
                    Status::CodeName(a.outcome).c_str());
      e.args_json = args;
      span_of[&a] = e.span_id;
      sink.Record(std::move(e));

      if (a.outcome != StatusCode::kOk) {
        obs::TraceEvent fault;
        fault.name = FaultLabel(a, plan);
        fault.category = "cluster.fault";
        fault.phase = 'i';
        fault.pid = obs::kTracePidCluster;
        fault.tid = NodeLane(a.node);
        fault.ts_us = ModeledUs(a.end_seconds);
        fault.trace_id = root.trace_id;
        fault.span_id = obs::NewSpanId();
        fault.parent_id = span_of[&a];
        sink.Record(std::move(fault));

        // The segment that re-executes the lost range starts at its
        // begin morsel after the loss: link the fault to it.
        for (const AttemptRecord* b : segs) {
          if (b == &a || b->morsel_begin != a.morsel_begin ||
              b->start_seconds < a.end_seconds - 1e-9) {
            continue;
          }
          const uint64_t flow = obs::NewSpanId();
          obs::TraceEvent s;
          s.name = "recover";
          s.category = "cluster.flow";
          s.phase = 's';
          s.pid = obs::kTracePidCluster;
          s.tid = NodeLane(a.node);
          s.ts_us = ModeledUs(a.end_seconds);
          s.trace_id = root.trace_id;
          s.flow_id = flow;
          sink.Record(std::move(s));
          obs::TraceEvent f;
          f.name = "recover";
          f.category = "cluster.flow";
          f.phase = 'f';
          f.pid = obs::kTracePidCluster;
          f.tid = NodeLane(b->node);
          f.ts_us = ModeledUs(b->start_seconds);
          f.trace_id = root.trace_id;
          f.flow_id = flow;
          sink.Record(std::move(f));
          break;
        }
      }
    }
  }

  for (const StealRecord& sr : run.steal_log) {
    uint64_t parent = partition_span[sr.partition];
    for (const AttemptRecord* a : by_partition[sr.partition]) {
      if (a->node == sr.thief && a->stolen &&
          a->morsel_begin == sr.begin) {
        parent = span_of[a];
        break;
      }
    }
    obs::TraceEvent e;
    e.name = "steal";
    e.category = "cluster.steal";
    e.phase = 'i';
    e.pid = obs::kTracePidCluster;
    e.tid = NodeLane(sr.thief);
    e.ts_us = ModeledUs(sr.at_seconds);
    e.trace_id = root.trace_id;
    e.span_id = obs::NewSpanId();
    e.parent_id = parent;
    char args[120];
    std::snprintf(args, sizeof(args),
                  "{\"partition\":%d,\"victim\":%d,\"thief\":%d,"
                  "\"morsels\":%d}",
                  sr.partition, sr.victim, sr.thief, sr.end - sr.begin);
    e.args_json = args;
    sink.Record(std::move(e));

    const uint64_t flow = obs::NewSpanId();
    obs::TraceEvent s;
    s.name = "steal";
    s.category = "cluster.flow";
    s.phase = 's';
    s.pid = obs::kTracePidCluster;
    s.tid = NodeLane(sr.victim);
    s.ts_us = ModeledUs(sr.at_seconds);
    s.trace_id = root.trace_id;
    s.flow_id = flow;
    sink.Record(std::move(s));
    obs::TraceEvent f;
    f.name = "steal";
    f.category = "cluster.flow";
    f.phase = 'f';
    f.pid = obs::kTracePidCluster;
    f.tid = NodeLane(sr.thief);
    f.ts_us = ModeledUs(sr.at_seconds);
    f.trace_id = root.trace_id;
    f.flow_id = flow;
    sink.Record(std::move(f));
  }

  for (const CheckpointRecord& ck : ckpts) {
    obs::TraceEvent e;
    e.name = "ckpt";
    e.category = "cluster.ckpt";
    e.phase = 'i';
    e.pid = obs::kTracePidCluster;
    e.tid = NodeLane(ck.node);
    e.ts_us = ModeledUs(ck.at_seconds);
    e.trace_id = root.trace_id;
    e.span_id = obs::NewSpanId();
    e.parent_id = partition_span[ck.partition];
    char args[120];
    std::snprintf(args, sizeof(args),
                  "{\"partition\":%d,\"morsels\":%d,\"bytes\":%.0f}",
                  ck.partition, ck.morsels, ck.bytes);
    e.args_json = args;
    sink.Record(std::move(e));
  }
}

}  // namespace

Result<DistributedRun> WimpiCluster::Run(int q,
                                         const hw::CostModel& model) const {
  if (!tpch::InSf10Subset(q)) {
    std::string msg = "Q";
    msg += std::to_string(q);
    msg += " is not in the distributed subset {1,3,4,5,6,13,14,19}";
    return Status::InvalidArgument(std::move(msg));
  }
  const hw::HardwareProfile& pi = hw::PiProfile();
  const bool fan_out = QueryFansOut(q);
  const int nodes = fan_out ? opts_.num_nodes : 1;
  const FaultPlan& plan = opts_.faults;

  DistributedRun run;
  run.nodes_used = nodes;

  // Tracing context, allocated up front so the real-clock partial
  // executions and the modeled timeline emitted at the end share one
  // trace id. Purely observational: a traced run computes the exact same
  // schedule, times, and result as an untraced one.
  const bool traced = obs::TraceSink::Global().enabled();
  obs::SpanContext root_ctx;
  if (traced) {
    root_ctx.trace_id = obs::NewTraceId();
    root_ctx.span_id = obs::NewSpanId();
    run.trace_id = root_ctx.trace_id;
  }
  auto& elog = obs::EventLog::Global();
  if (elog.enabled()) {
    elog.Record(obs::EventLevel::kInfo, "cluster", "run.start",
                {{"q", q},
                 {"nodes", nodes},
                 {"fault_nodes", static_cast<int>(plan.faults.size())},
                 {"seed", static_cast<double>(plan.seed)}});
  }

  // Partial-result sizes that scale with data (per-group outputs like Q3's)
  // are projected to the model SF; few-row aggregates are not.
  auto scaled_bytes = [&](const exec::Relation& r) {
    const double bytes = static_cast<double>(r.ValueBytes());
    return r.num_rows() > 100 ? bytes * opts_.sf_scale : bytes;
  };

  // ---- Real execution per partition (lazy: a query abandoned mid-way
  // never executes the remaining partitions, and the cancellation token
  // stops any in-flight morsel loop of the current one promptly). ----
  std::vector<PartitionExec> parts(nodes);
  parallel::CancellationToken cancel;
  auto ensure_exec = [&](int p) -> const PartitionExec& {
    PartitionExec& pe = parts[p];
    if (pe.done) return pe;
    exec::QueryStats stats;
    {
      // Join the host-side execution (operator scopes, morsel tasks on
      // pool workers) to the distributed trace: the partial's real-clock
      // spans become children of the run's modeled root span.
      obs::ScopedSpanContext adopt(traced ? root_ctx
                                          : obs::CurrentSpanContext());
      obs::Span span("partial p" + std::to_string(p), "cluster.exec", "");
      if (plan.empty()) {
        pe.partial = RunPartial(q, node_dbs_[p], &stats);
      } else {
        exec::ExecOptions eopts = exec::CurrentExecOptions();
        eopts.cancellation = &cancel;
        exec::ScopedExecOptions scope(eopts);
        pe.partial = RunPartial(q, node_dbs_[p], &stats);
      }
    }
    stats.Scale(opts_.sf_scale);
    pe.work_s = model.WorkSeconds(pi, stats, opts_.threads_per_node);

    // Memory-pressure model: when the touched working set exceeds node
    // memory, the overshoot pages through the microSD card (the paper's
    // thrashing failure mode, Section III-C4).
    pe.working_set = stats.BaseTouchedBytes() + stats.peak_intermediate_bytes;
    const double overshoot =
        std::max(0.0, pe.working_set - opts_.node_memory_bytes);
    pe.spill_s =
        overshoot * opts_.thrash_factor / (opts_.microsd_mbps * 1e6);
    pe.work_s += pe.spill_s;
    pe.done = true;
    return pe;
  };

  // Shared tail of both recovery modes: ship the partials, merge on the
  // coordinator, add the driver overhead. Identical inputs in identical
  // (partition) order whatever the schedule was — the bit-identity
  // argument lives here.
  auto finish_merge = [&](DistributedRun* r) {
    std::vector<exec::Relation> partials;
    partials.reserve(nodes);
    for (int p = 0; p < nodes; ++p) {
      r->max_working_set_bytes =
          std::max(r->max_working_set_bytes, parts[p].working_set);
      r->network_bytes += scaled_bytes(parts[p].partial);
      partials.push_back(std::move(parts[p].partial));
    }
    // Network: every node ships its partial to the coordinator, whose
    // receive link is the bottleneck.
    r->network_seconds =
        fan_out ? NetworkSeconds(r->network_bytes, nodes) : 0.0;
    // Merge on the coordinator (itself a Pi). Every merge in the
    // distributed subset consumes per-node aggregates (at most tens of
    // rows per node), so merge work does not scale with SF and is modeled
    // unscaled.
    exec::QueryStats merge_stats;
    exec::Relation merged =
        MergePartials(q, node_dbs_[0], std::move(partials), &merge_stats);
    r->merge_seconds =
        model.WorkSeconds(pi, merge_stats, opts_.threads_per_node);
    // One query overhead (driver + plan setup) on the coordinator.
    const double overhead_s = model.QuerySeconds(pi, exec::QueryStats{}, 1);
    r->total_seconds = overhead_s + r->max_node_seconds +
                       r->network_seconds + r->merge_seconds;
    r->result = std::move(merged);
  };

  // ---- Fine-grained recovery (DESIGN.md §14): morsel-range schedule with
  // checkpointed partials, cross-node stealing, and elastic membership.
  // The real partials still execute exactly once per partition; only the
  // modeled schedule below decides which worker's clock pays for which
  // morsels, so any fault x steal x resize interleaving merges the same
  // relation, bit for bit. ----
  if (opts_.recovery.mode == RecoveryMode::kFineGrained) {
    const int pool_nodes = opts_.num_nodes;
    FineInputs fin;
    fin.pool_nodes = pool_nodes;
    fin.faults = plan.empty() ? nullptr : &plan;
    fin.resize = opts_.resize.empty() ? nullptr : &opts_.resize;
    fin.opts = opts_.recovery;
    fin.per_node_latency_s = opts_.per_node_latency_s;
    fin.net_mbps = opts_.node_net_mbps;
    // Morsel basis: the partition's slice of the fan-out table. Q13 does
    // not fan out (its partial scans replicated orders/customer), but that
    // is exactly why its morsels CAN be stolen: any node can execute any
    // orders range, so the paper's one-node Q13 pathology parallelizes.
    const char* basis = fan_out ? "lineitem" : "orders";
    for (int p = 0; p < nodes; ++p) {
      const PartitionExec& pe = ensure_exec(p);
      fin.work_s.push_back(pe.work_s);
      fin.spill_s.push_back(pe.spill_s);
      fin.partial_bytes.push_back(scaled_bytes(pe.partial));
      fin.morsels.push_back(parallel::MorselCountForRows(
          node_dbs_[p].table(basis).num_rows(), opts_.sf_scale,
          opts_.recovery.morsel_rows,
          opts_.recovery.max_morsels_per_partition));
    }

    FineSchedule sched = SimulateFineGrained(fin);
    if (!sched.completed) {
      cancel.Cancel();
      if (elog.enabled()) {
        elog.Record(obs::EventLevel::kError, "cluster", "run.aborted",
                    {{"q", q},
                     {"reason", std::string("every worker failed or left")}});
      }
      std::string msg = "Q";
      msg += std::to_string(q);
      msg += ": every worker failed or left (faults: ";
      msg += plan.ToString();
      msg += "; resize: ";
      msg += opts_.resize.ToString();
      msg += ")";
      return Status::Unavailable(std::move(msg));
    }
    // Degradation = this schedule versus the same inputs with no faults
    // and no resizes (pure modeled re-simulation, no re-execution).
    FineInputs clean_in = fin;
    clean_in.faults = nullptr;
    clean_in.resize = nullptr;
    const FineSchedule clean = SimulateFineGrained(clean_in);

    run.max_node_seconds = sched.makespan_s;
    int slowest = 0;
    for (size_t n = 1; n < sched.node_clock.size(); ++n) {
      if (sched.node_clock[n] > sched.node_clock[slowest]) {
        slowest = static_cast<int>(n);
      }
    }
    run.spill_seconds = sched.node_spill[slowest];
    run.degraded_seconds = sched.makespan_s - clean.makespan_s;
    run.nodes_failed = sched.nodes_failed;
    run.total_morsels = sched.total_morsels;
    run.steals = static_cast<int>(sched.steals.size());
    run.stolen_morsels = sched.stolen_morsels;
    run.checkpoints = static_cast<int>(sched.checkpoints.size());
    run.checkpoint_bytes = sched.checkpoint_bytes;
    run.recovered_morsels = sched.recovered_morsels;
    run.joins = sched.joins;
    run.leaves = sched.leaves;
    run.steal_log = sched.steals;

    // Attempt timeline: segments partition-major, per-partition in start
    // order — the provenance view wimpi_top renders.
    std::vector<MorselSegment> ordered = sched.segments;
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const MorselSegment& a, const MorselSegment& b) {
                       if (a.partition != b.partition) {
                         return a.partition < b.partition;
                       }
                       if (a.start_seconds != b.start_seconds) {
                         return a.start_seconds < b.start_seconds;
                       }
                       return a.begin < b.begin;
                     });
    std::vector<char> reassigned(nodes, 0);
    int cur_part = -1;
    int seq = 0;
    for (const MorselSegment& s : ordered) {
      if (s.partition != cur_part) {
        cur_part = s.partition;
        seq = 0;
      }
      AttemptRecord a;
      a.partition = s.partition;
      a.node = s.node;
      a.attempt = seq++;
      a.start_seconds = s.start_seconds;
      a.end_seconds = s.end_seconds;
      a.outcome = s.outcome;
      a.morsel_begin = s.begin;
      a.morsel_end = s.end;
      a.prev_node = s.prev_node;
      a.stolen = s.stolen;
      run.attempts.push_back(a);
      if (s.outcome != StatusCode::kOk) {
        ++run.retries;
        obs::flight::FlightRecorder::NoteFault(
            s.node, static_cast<int64_t>(s.outcome));
      }
      if (s.prev_node >= 0 && s.prev_node != s.node && !s.stolen) {
        reassigned[s.partition] = 1;  // claimed off a dead/departed node
      }
    }
    for (int p = 0; p < nodes; ++p) {
      if (reassigned[p]) ++run.reassigned_partitions;
    }

    // Per-worker accounting over the full membership (pool + joiners).
    const int workers = static_cast<int>(sched.node_clock.size());
    std::vector<int> n_segments(workers, 0);
    std::vector<int> n_failed(workers, 0);
    std::vector<int> n_stolen(workers, 0);
    for (const MorselSegment& s : sched.segments) {
      ++n_segments[s.node];
      if (s.outcome != StatusCode::kOk) ++n_failed[s.node];
      if (s.stolen && s.outcome == StatusCode::kOk) {
        n_stolen[s.node] += s.end - s.begin;
      }
    }
    int used = 0;
    for (int n = 0; n < workers; ++n) {
      if (n_segments[n] > 0) ++used;
    }
    run.nodes_used = used;
    {
      std::vector<std::map<std::string, double>> per_node(workers);
      for (int n = 0; n < workers; ++n) {
        per_node[n]["node.busy_s"] = sched.node_clock[n];
        per_node[n]["node.spill_s"] = sched.node_spill[n];
        per_node[n]["node.attempts"] = n_segments[n];
        per_node[n]["node.failed_attempts"] = n_failed[n];
        per_node[n]["node.stolen_morsels"] = n_stolen[n];
        per_node[n]["node.dead"] = sched.alive[n] ? 0.0 : 1.0;
      }
      run.node_rollups = obs::AggregateNodeScalars(per_node);
    }

    finish_merge(&run);

    auto& reg = obs::MetricsRegistry::Global();
    reg.counter("cluster.steal.count").Add(run.steals);
    reg.counter("cluster.steal.stolen_morsels").Add(run.stolen_morsels);
    reg.counter("cluster.ckpt.count").Add(run.checkpoints);
    reg.counter("cluster.ckpt.bytes")
        .Add(static_cast<int64_t>(run.checkpoint_bytes));
    reg.counter("cluster.ckpt.recovered_morsels").Add(run.recovered_morsels);
    if (run.joins > 0) reg.counter("cluster.resize.joins").Add(run.joins);
    if (run.leaves > 0) reg.counter("cluster.resize.leaves").Add(run.leaves);
    if (!plan.empty()) {
      reg.counter("cluster.fault.attempts")
          .Add(static_cast<int64_t>(run.attempts.size()));
      reg.counter("cluster.fault.retries").Add(run.retries);
      reg.counter("cluster.fault.reassigned_partitions")
          .Add(run.reassigned_partitions);
      reg.counter("cluster.fault.nodes_failed").Add(run.nodes_failed);
    }
    for (const StealRecord& sr : sched.steals) {
      obs::flight::FlightRecorder::Record(
          obs::flight::EventKind::kClusterSteal, 0, sr.thief,
          (static_cast<int64_t>(sr.victim) << 32) | (sr.end - sr.begin));
    }
    for (const CheckpointRecord& ck : sched.checkpoints) {
      obs::flight::FlightRecorder::Record(
          obs::flight::EventKind::kClusterCkpt, 0, ck.node,
          (static_cast<int64_t>(ck.partition) << 32) | ck.morsels);
    }

    if (traced) {
      EmitFineTrace(q, run, plan, fin.morsels, sched.checkpoints, root_ctx);
    }
    if (elog.enabled()) {
      elog.Record(obs::EventLevel::kInfo, "cluster", "run.complete",
                  {{"q", q},
                   {"total_s", run.total_seconds},
                   {"steals", run.steals},
                   {"ckpts", run.checkpoints},
                   {"recovered_morsels", run.recovered_morsels},
                   {"joins", run.joins},
                   {"leaves", run.leaves},
                   {"nodes_failed", run.nodes_failed}});
    }
    return run;
  }

  // ---- Attempt schedule (modeled). Every partition retries on its home
  // node with capped exponential backoff, then reassigns to the surviving
  // node with the least accumulated work; crashes reassign immediately.
  // A partition that has failed 2*max_retries attempts (or has only one
  // node left to run on) stops honouring the deadline and completes as a
  // straggler, so any plan that leaves one live node always finishes. ----
  const int pool_nodes = opts_.num_nodes;
  std::vector<double> node_clock(pool_nodes, 0.0);
  std::vector<double> node_spill(pool_nodes, 0.0);
  std::vector<char> alive(pool_nodes, 1);
  std::vector<int> flaky_used(pool_nodes, 0);  // transient/stall failures used
  int live = pool_nodes;

  for (int p = 0; p < nodes; ++p) {
    const int home = p % pool_nodes;
    int node = home;
    int tries_on_node = 0;
    int attempt_idx = 0;
    bool assigned_away = false;
    for (bool done = false; !done;) {
      WIMPI_CHECK_LT(attempt_idx, 1000) << "fault schedule did not converge";
      // (Re)assign if the current node is gone: cheapest surviving node,
      // lowest index on ties — deterministic.
      if (!alive[node]) {
        int best = -1;
        for (int n = 0; n < pool_nodes; ++n) {
          if (!alive[n]) continue;
          if (best < 0 || node_clock[n] < node_clock[best]) best = n;
        }
        if (best < 0) {
          cancel.Cancel();  // stop any in-flight partial work promptly
          if (elog.enabled()) {
            elog.Record(obs::EventLevel::kError, "cluster", "run.aborted",
                        {{"q", q}, {"reason", std::string("every node failed")}});
          }
          std::string msg = "Q";
          msg += std::to_string(q);
          msg += ": every node failed (plan: ";
          msg += plan.ToString();
          msg += ")";
          return Status::Unavailable(std::move(msg));
        }
        if (elog.enabled()) {
          elog.Record(obs::EventLevel::kInfo, "cluster",
                      "partition.reassigned",
                      {{"q", q}, {"partition", p}, {"from", node},
                       {"to", best}});
        }
        node = best;
        tries_on_node = 0;
        if (node != home && !assigned_away) {
          assigned_away = true;
          ++run.reassigned_partitions;
        }
      }

      const PartitionExec& pe = ensure_exec(p);
      const double w = pe.work_s;
      const double deadline =
          std::max(opts_.min_timeout_s, opts_.timeout_factor * w);
      // Jittered exponential backoff, capped: the jitter factor in
      // [0.5, 1.5) is a pure hash of (plan seed, partition, attempt), so
      // concurrent retries against a recovering node decorrelate while the
      // whole schedule stays deterministic.
      const double backoff =
          attempt_idx == 0
              ? 0.0
              : std::min(opts_.retry_backoff_cap_s,
                         opts_.retry_backoff_s *
                             std::pow(2.0, attempt_idx - 1) *
                             (0.5 + DeterministicJitter(
                                        plan.seed, static_cast<uint64_t>(p),
                                        static_cast<uint64_t>(attempt_idx))));
      // Degraded last resort: no alternative node, or the partition has
      // bounced long enough — accept a straggler run over the deadline.
      const bool last_resort =
          live <= 1 || attempt_idx >= 2 * opts_.max_retries;

      const NodeFault* f = plan.FaultFor(node);
      double dur = w;
      StatusCode outcome = StatusCode::kOk;
      bool dies = false;
      if (f != nullptr) {
        switch (f->kind) {
          case FaultKind::kCrash:
            // Crash at the scan->aggregate phase boundary: half the
            // modeled work is spent, plus one round trip to detect it.
            outcome = StatusCode::kUnavailable;
            dur = std::min(0.5 * w, deadline) + opts_.per_node_latency_s;
            dies = true;
            break;
          case FaultKind::kSlowdown:
            dur = w * f->slowdown;
            if (dur > deadline && !last_resort) {
              dur = deadline;
              outcome = StatusCode::kDeadlineExceeded;
            }
            break;
          case FaultKind::kNetworkStall:
            if (flaky_used[node] < f->fail_attempts) {
              ++flaky_used[node];
              dur = w + f->stall_seconds;
              if (dur > deadline && !last_resort) {
                dur = deadline;
                outcome = StatusCode::kDeadlineExceeded;
              }
            }
            break;
          case FaultKind::kTransient:
            if (flaky_used[node] < f->fail_attempts) {
              ++flaky_used[node];
              outcome = StatusCode::kUnavailable;
              dur = std::min(0.5 * w, deadline) + opts_.per_node_latency_s;
            }
            break;
        }
      }

      const double start = node_clock[node] + backoff;
      const double end = start + dur;
      node_clock[node] = end;
      run.attempts.push_back({p, node, attempt_idx, start, end, outcome});
      ++attempt_idx;

      if (dies) {
        alive[node] = 0;
        --live;
        ++run.nodes_failed;
        if (elog.enabled()) {
          elog.Record(obs::EventLevel::kWarn, "cluster", "node.died",
                      {{"q", q}, {"node", node}, {"t_s", end}});
        }
      }
      if (outcome == StatusCode::kOk) {
        node_spill[node] += pe.spill_s;
        done = true;
      } else {
        ++run.retries;
        // Retry-budget guard: a run-wide cap on failed attempts so an
        // adversarial plan (every node flaky, forever) exhausts
        // deterministically instead of bouncing partitions for thousands
        // of modeled attempts. Generated plans stay far under the default
        // budget of 4 * max_retries * num_nodes.
        const int budget = opts_.retry_budget > 0
                               ? opts_.retry_budget
                               : 4 * opts_.max_retries * pool_nodes;
        if (run.retries > budget) {
          obs::MetricsRegistry::Global()
              .counter("cluster.retry.exhausted")
              .Add(1);
          cancel.Cancel();
          if (elog.enabled()) {
            elog.Record(
                obs::EventLevel::kError, "cluster", "run.aborted",
                {{"q", q},
                 {"reason", std::string("retry budget exhausted")},
                 {"budget", budget}});
          }
          std::string msg = "Q";
          msg += std::to_string(q);
          msg += ": retry budget (";
          msg += std::to_string(budget);
          msg += ") exhausted (plan: ";
          msg += plan.ToString();
          msg += ")";
          return Status::Unavailable(std::move(msg));
        }
        // Flight-recorder fault trigger: lands in the always-on rings
        // (and retroactively dumps the recent window when a fault dump
        // path is configured), so a service run disturbed by a simulated
        // fault can be explained after the fact.
        obs::flight::FlightRecorder::NoteFault(
            node, static_cast<int64_t>(outcome));
        if (elog.enabled()) {
          elog.Record(obs::EventLevel::kWarn, "cluster", "attempt.failed",
                      {{"q", q},
                       {"partition", p},
                       {"node", node},
                       {"attempt", attempt_idx - 1},
                       {"outcome", Status::CodeName(outcome)},
                       {"t_s", end}});
        }
        if (alive[node]) {
          ++tries_on_node;
          if (tries_on_node >= opts_.max_retries && live > 1) {
            // Give up on this node: move to the cheapest other survivor.
            int best = -1;
            for (int n = 0; n < pool_nodes; ++n) {
              if (!alive[n] || n == node) continue;
              if (best < 0 || node_clock[n] < node_clock[best]) best = n;
            }
            if (best >= 0) {
              if (elog.enabled()) {
                elog.Record(obs::EventLevel::kInfo, "cluster",
                            "partition.reassigned",
                            {{"q", q}, {"partition", p}, {"from", node},
                             {"to", best}});
              }
              node = best;
              tries_on_node = 0;
              if (node != home && !assigned_away) {
                assigned_away = true;
                ++run.reassigned_partitions;
              }
            }
          }
        }
      }
    }
  }

  // Slowest node bounds local work; spill attribution follows it.
  for (int n = 0; n < pool_nodes; ++n) {
    if (node_clock[n] > run.max_node_seconds) {
      run.max_node_seconds = node_clock[n];
      run.spill_seconds = node_spill[n];
    }
  }
  double clean_max_node = 0;
  for (int p = 0; p < nodes; ++p) {
    clean_max_node = std::max(clean_max_node, parts[p].work_s);
  }
  // Faults only stretch local work; network, merge and overhead are
  // identical to the clean run, so the degradation is the node-time delta.
  run.degraded_seconds = run.max_node_seconds - clean_max_node;

  finish_merge(&run);

  // Per-node scalar rollups (straggler diagnosis): min/max/sum/mean/skew
  // of each node's modeled load. Derived from modeled quantities only, so
  // identical whether or not tracing was on.
  {
    std::vector<int> n_attempts(pool_nodes, 0);
    std::vector<int> n_failed(pool_nodes, 0);
    for (const AttemptRecord& a : run.attempts) {
      ++n_attempts[a.node];
      if (a.outcome != StatusCode::kOk) ++n_failed[a.node];
    }
    const int roll_nodes = fan_out ? pool_nodes : 1;
    std::vector<std::map<std::string, double>> per_node(roll_nodes);
    for (int n = 0; n < roll_nodes; ++n) {
      per_node[n]["node.busy_s"] = node_clock[n];
      per_node[n]["node.spill_s"] = node_spill[n];
      per_node[n]["node.attempts"] = n_attempts[n];
      per_node[n]["node.failed_attempts"] = n_failed[n];
      per_node[n]["node.dead"] = alive[n] ? 0.0 : 1.0;
    }
    run.node_rollups = obs::AggregateNodeScalars(per_node);
  }

  if (!plan.empty()) {
    auto& reg = obs::MetricsRegistry::Global();
    reg.counter("cluster.fault.attempts")
        .Add(static_cast<int64_t>(run.attempts.size()));
    reg.counter("cluster.fault.retries").Add(run.retries);
    reg.counter("cluster.fault.reassigned_partitions")
        .Add(run.reassigned_partitions);
    reg.counter("cluster.fault.nodes_failed").Add(run.nodes_failed);
  }
  if (traced) EmitClusterTrace(q, run, plan, root_ctx);
  if (elog.enabled()) {
    elog.Record(obs::EventLevel::kInfo, "cluster", "run.complete",
                {{"q", q},
                 {"total_s", run.total_seconds},
                 {"retries", run.retries},
                 {"reassigned", run.reassigned_partitions},
                 {"nodes_failed", run.nodes_failed}});
  }
  return run;
}

}  // namespace wimpi::cluster
