#include "cluster/wimpi_cluster.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "cluster/partials.h"
#include "cluster/partition.h"
#include "exec/exec_options.h"
#include "obs/export/aggregate.h"
#include "obs/export/event_log.h"
#include "obs/flight/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/tracing/span.h"
#include "parallel/cancellation.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace wimpi::cluster {

WimpiCluster::WimpiCluster(const engine::Database& db,
                           const ClusterOptions& opts)
    : opts_(opts) {
  WIMPI_CHECK_GT(opts.num_nodes, 0);
  const auto parts =
      PartitionByKey(db.table("lineitem"), "l_orderkey", opts.num_nodes);
  node_dbs_.resize(opts.num_nodes);
  for (int i = 0; i < opts.num_nodes; ++i) {
    for (const auto& [name, table] : db.tables()) {
      if (name == "lineitem") continue;
      node_dbs_[i].AddTable(table);  // replicated (physically shared)
    }
    node_dbs_[i].AddTable(parts[i]);
  }
}

double WimpiCluster::NetworkSeconds(double bytes, int n_senders) const {
  return bytes * 8.0 / (opts_.node_net_mbps * 1e6) +
         opts_.per_node_latency_s * n_senders;
}

double WimpiCluster::NodeLogicalBytes(double model_sf) const {
  double replicated = 0;
  for (const char* t : {"orders", "customer", "part", "partsupp", "supplier",
                        "nation", "region"}) {
    replicated += tpch::LogicalTableBytes(t, model_sf);
  }
  return replicated +
         tpch::LogicalTableBytes("lineitem", model_sf) / opts_.num_nodes;
}

namespace {

// Cached real execution of one lineitem partition's partial plan. The
// partition's data and plan are fixed (deterministic hash ranges + replicas
// physically shared in host memory), so its relation and counters are
// identical whichever node the fault schedule runs it on: the partial
// executes once and failed/retried attempts are modeled from the cache.
struct PartitionExec {
  bool done = false;
  exec::Relation partial;
  double work_s = 0;  // modeled local work, spill included
  double spill_s = 0;
  double working_set = 0;
};

// Trace lanes on the modeled-time process: tid 0 is the run itself, one
// row per node for attempts/faults, one row per partition for the
// umbrella spans (so retry chains bouncing across nodes stay readable).
int NodeLane(int node) { return 1 + node; }
int PartitionLane(int p) { return 1000 + p; }

int64_t ModeledUs(double seconds) {
  return static_cast<int64_t>(seconds * 1e6);
}

// What failed: the injected fault's kind for unavailable attempts, the
// deadline for abandoned stragglers.
const char* FaultLabel(const AttemptRecord& a, const FaultPlan& plan) {
  if (a.outcome == StatusCode::kDeadlineExceeded) return "timeout";
  const NodeFault* f = plan.FaultFor(a.node);
  return f != nullptr ? FaultKindName(f->kind) : "unavailable";
}

// Exports the run's modeled timeline as one causal span tree under
// `root`:
//
//   Q<q> distributed                      (root, lane 0)
//   `- partition p                        (lane 1000+p)
//      `- attempt 0 on its home node      (lane 1+node)
//         `- attempt 1 ...                (retry chain: each retry is a
//            `- attempt 2 ...              child of the attempt it retries)
//
// Every failed attempt additionally gets a fault instant event (child of
// the failed attempt) and a flow arrow from the failure to the retry or
// reassigned attempt it triggered, so a straggler's recovery history reads
// directly off the trace.
void EmitClusterTrace(int q, const DistributedRun& run, const FaultPlan& plan,
                      const obs::SpanContext& root) {
  auto& sink = obs::TraceSink::Global();

  {
    obs::TraceEvent e;
    e.name = "Q" + std::to_string(q) + " distributed";
    e.category = "cluster";
    e.pid = obs::kTracePidCluster;
    e.tid = 0;
    e.ts_us = 0;
    e.dur_us = ModeledUs(run.total_seconds);
    e.trace_id = root.trace_id;
    e.span_id = root.span_id;
    char args[120];
    std::snprintf(args, sizeof(args),
                  "{\"nodes\":%d,\"retries\":%d,\"reassigned\":%d}",
                  run.nodes_used, run.retries, run.reassigned_partitions);
    e.args_json = args;
    sink.Record(std::move(e));
  }

  // Group the (partition-ordered) timeline by partition.
  std::map<int, std::vector<const AttemptRecord*>> by_partition;
  for (const AttemptRecord& a : run.attempts) {
    by_partition[a.partition].push_back(&a);
  }

  for (const auto& [p, attempts] : by_partition) {
    obs::TraceEvent part;
    part.name = "partition " + std::to_string(p);
    part.category = "cluster.partition";
    part.pid = obs::kTracePidCluster;
    part.tid = PartitionLane(p);
    part.ts_us = ModeledUs(attempts.front()->start_seconds);
    part.dur_us = ModeledUs(attempts.back()->end_seconds) - part.ts_us;
    part.trace_id = root.trace_id;
    part.span_id = obs::NewSpanId();
    part.parent_id = root.span_id;
    const uint64_t partition_span = part.span_id;
    sink.Record(std::move(part));

    uint64_t prev_span = partition_span;
    for (size_t i = 0; i < attempts.size(); ++i) {
      const AttemptRecord& a = *attempts[i];
      obs::TraceEvent e;
      char name[64];
      std::snprintf(name, sizeof(name), "Q%d p%d try%d", q, a.partition,
                    a.attempt);
      e.name = name;
      e.category = "cluster.attempt";
      e.pid = obs::kTracePidCluster;
      e.tid = NodeLane(a.node);
      e.ts_us = ModeledUs(a.start_seconds);
      e.dur_us = ModeledUs(a.end_seconds) - e.ts_us;
      e.trace_id = root.trace_id;
      e.span_id = obs::NewSpanId();
      e.parent_id = prev_span;
      char args[120];
      std::snprintf(
          args, sizeof(args),
          "{\"partition\":%d,\"node\":%d,\"attempt\":%d,\"outcome\":\"%s\"}",
          a.partition, a.node, a.attempt,
          Status::CodeName(a.outcome).c_str());
      e.args_json = args;
      const uint64_t attempt_span = e.span_id;
      sink.Record(std::move(e));

      if (a.outcome != StatusCode::kOk) {
        obs::TraceEvent fault;
        fault.name = FaultLabel(a, plan);
        fault.category = "cluster.fault";
        fault.phase = 'i';
        fault.pid = obs::kTracePidCluster;
        fault.tid = NodeLane(a.node);
        fault.ts_us = ModeledUs(a.end_seconds);
        fault.trace_id = root.trace_id;
        fault.span_id = obs::NewSpanId();
        fault.parent_id = attempt_span;
        sink.Record(std::move(fault));

        if (i + 1 < attempts.size()) {
          // Causal arrow: this failure triggered the next attempt.
          const AttemptRecord& next = *attempts[i + 1];
          const uint64_t flow = obs::NewSpanId();
          obs::TraceEvent s;
          s.name = "retry";
          s.category = "cluster.flow";
          s.phase = 's';
          s.pid = obs::kTracePidCluster;
          s.tid = NodeLane(a.node);
          s.ts_us = ModeledUs(a.end_seconds);
          s.trace_id = root.trace_id;
          s.flow_id = flow;
          sink.Record(std::move(s));
          obs::TraceEvent f;
          f.name = "retry";
          f.category = "cluster.flow";
          f.phase = 'f';
          f.pid = obs::kTracePidCluster;
          f.tid = NodeLane(next.node);
          f.ts_us = ModeledUs(next.start_seconds);
          f.trace_id = root.trace_id;
          f.flow_id = flow;
          sink.Record(std::move(f));
        }
      }
      prev_span = attempt_span;
    }
  }
}

}  // namespace

Result<DistributedRun> WimpiCluster::Run(int q,
                                         const hw::CostModel& model) const {
  if (!tpch::InSf10Subset(q)) {
    std::string msg = "Q";
    msg += std::to_string(q);
    msg += " is not in the distributed subset {1,3,4,5,6,13,14,19}";
    return Status::InvalidArgument(std::move(msg));
  }
  const hw::HardwareProfile& pi = hw::PiProfile();
  const bool fan_out = QueryFansOut(q);
  const int nodes = fan_out ? opts_.num_nodes : 1;
  const FaultPlan& plan = opts_.faults;

  DistributedRun run;
  run.nodes_used = nodes;

  // Tracing context, allocated up front so the real-clock partial
  // executions and the modeled timeline emitted at the end share one
  // trace id. Purely observational: a traced run computes the exact same
  // schedule, times, and result as an untraced one.
  const bool traced = obs::TraceSink::Global().enabled();
  obs::SpanContext root_ctx;
  if (traced) {
    root_ctx.trace_id = obs::NewTraceId();
    root_ctx.span_id = obs::NewSpanId();
    run.trace_id = root_ctx.trace_id;
  }
  auto& elog = obs::EventLog::Global();
  if (elog.enabled()) {
    elog.Record(obs::EventLevel::kInfo, "cluster", "run.start",
                {{"q", q},
                 {"nodes", nodes},
                 {"fault_nodes", static_cast<int>(plan.faults.size())},
                 {"seed", static_cast<double>(plan.seed)}});
  }

  // Partial-result sizes that scale with data (per-group outputs like Q3's)
  // are projected to the model SF; few-row aggregates are not.
  auto scaled_bytes = [&](const exec::Relation& r) {
    const double bytes = static_cast<double>(r.ValueBytes());
    return r.num_rows() > 100 ? bytes * opts_.sf_scale : bytes;
  };

  // ---- Real execution per partition (lazy: a query abandoned mid-way
  // never executes the remaining partitions, and the cancellation token
  // stops any in-flight morsel loop of the current one promptly). ----
  std::vector<PartitionExec> parts(nodes);
  parallel::CancellationToken cancel;
  auto ensure_exec = [&](int p) -> const PartitionExec& {
    PartitionExec& pe = parts[p];
    if (pe.done) return pe;
    exec::QueryStats stats;
    {
      // Join the host-side execution (operator scopes, morsel tasks on
      // pool workers) to the distributed trace: the partial's real-clock
      // spans become children of the run's modeled root span.
      obs::ScopedSpanContext adopt(traced ? root_ctx
                                          : obs::CurrentSpanContext());
      obs::Span span("partial p" + std::to_string(p), "cluster.exec", "");
      if (plan.empty()) {
        pe.partial = RunPartial(q, node_dbs_[p], &stats);
      } else {
        exec::ExecOptions eopts = exec::CurrentExecOptions();
        eopts.cancellation = &cancel;
        exec::ScopedExecOptions scope(eopts);
        pe.partial = RunPartial(q, node_dbs_[p], &stats);
      }
    }
    stats.Scale(opts_.sf_scale);
    pe.work_s = model.WorkSeconds(pi, stats, opts_.threads_per_node);

    // Memory-pressure model: when the touched working set exceeds node
    // memory, the overshoot pages through the microSD card (the paper's
    // thrashing failure mode, Section III-C4).
    pe.working_set = stats.BaseTouchedBytes() + stats.peak_intermediate_bytes;
    const double overshoot =
        std::max(0.0, pe.working_set - opts_.node_memory_bytes);
    pe.spill_s =
        overshoot * opts_.thrash_factor / (opts_.microsd_mbps * 1e6);
    pe.work_s += pe.spill_s;
    pe.done = true;
    return pe;
  };

  // ---- Attempt schedule (modeled). Every partition retries on its home
  // node with capped exponential backoff, then reassigns to the surviving
  // node with the least accumulated work; crashes reassign immediately.
  // A partition that has failed 2*max_retries attempts (or has only one
  // node left to run on) stops honouring the deadline and completes as a
  // straggler, so any plan that leaves one live node always finishes. ----
  const int pool_nodes = opts_.num_nodes;
  std::vector<double> node_clock(pool_nodes, 0.0);
  std::vector<double> node_spill(pool_nodes, 0.0);
  std::vector<char> alive(pool_nodes, 1);
  std::vector<int> flaky_used(pool_nodes, 0);  // transient/stall failures used
  int live = pool_nodes;

  for (int p = 0; p < nodes; ++p) {
    const int home = p % pool_nodes;
    int node = home;
    int tries_on_node = 0;
    int attempt_idx = 0;
    bool assigned_away = false;
    for (bool done = false; !done;) {
      WIMPI_CHECK_LT(attempt_idx, 1000) << "fault schedule did not converge";
      // (Re)assign if the current node is gone: cheapest surviving node,
      // lowest index on ties — deterministic.
      if (!alive[node]) {
        int best = -1;
        for (int n = 0; n < pool_nodes; ++n) {
          if (!alive[n]) continue;
          if (best < 0 || node_clock[n] < node_clock[best]) best = n;
        }
        if (best < 0) {
          cancel.Cancel();  // stop any in-flight partial work promptly
          if (elog.enabled()) {
            elog.Record(obs::EventLevel::kError, "cluster", "run.aborted",
                        {{"q", q}, {"reason", std::string("every node failed")}});
          }
          std::string msg = "Q";
          msg += std::to_string(q);
          msg += ": every node failed (plan: ";
          msg += plan.ToString();
          msg += ")";
          return Status::Unavailable(std::move(msg));
        }
        if (elog.enabled()) {
          elog.Record(obs::EventLevel::kInfo, "cluster",
                      "partition.reassigned",
                      {{"q", q}, {"partition", p}, {"from", node},
                       {"to", best}});
        }
        node = best;
        tries_on_node = 0;
        if (node != home && !assigned_away) {
          assigned_away = true;
          ++run.reassigned_partitions;
        }
      }

      const PartitionExec& pe = ensure_exec(p);
      const double w = pe.work_s;
      const double deadline =
          std::max(opts_.min_timeout_s, opts_.timeout_factor * w);
      const double backoff =
          attempt_idx == 0
              ? 0.0
              : std::min(opts_.retry_backoff_cap_s,
                         opts_.retry_backoff_s *
                             std::pow(2.0, attempt_idx - 1));
      // Degraded last resort: no alternative node, or the partition has
      // bounced long enough — accept a straggler run over the deadline.
      const bool last_resort =
          live <= 1 || attempt_idx >= 2 * opts_.max_retries;

      const NodeFault* f = plan.FaultFor(node);
      double dur = w;
      StatusCode outcome = StatusCode::kOk;
      bool dies = false;
      if (f != nullptr) {
        switch (f->kind) {
          case FaultKind::kCrash:
            // Crash at the scan->aggregate phase boundary: half the
            // modeled work is spent, plus one round trip to detect it.
            outcome = StatusCode::kUnavailable;
            dur = std::min(0.5 * w, deadline) + opts_.per_node_latency_s;
            dies = true;
            break;
          case FaultKind::kSlowdown:
            dur = w * f->slowdown;
            if (dur > deadline && !last_resort) {
              dur = deadline;
              outcome = StatusCode::kDeadlineExceeded;
            }
            break;
          case FaultKind::kNetworkStall:
            if (flaky_used[node] < f->fail_attempts) {
              ++flaky_used[node];
              dur = w + f->stall_seconds;
              if (dur > deadline && !last_resort) {
                dur = deadline;
                outcome = StatusCode::kDeadlineExceeded;
              }
            }
            break;
          case FaultKind::kTransient:
            if (flaky_used[node] < f->fail_attempts) {
              ++flaky_used[node];
              outcome = StatusCode::kUnavailable;
              dur = std::min(0.5 * w, deadline) + opts_.per_node_latency_s;
            }
            break;
        }
      }

      const double start = node_clock[node] + backoff;
      const double end = start + dur;
      node_clock[node] = end;
      run.attempts.push_back({p, node, attempt_idx, start, end, outcome});
      ++attempt_idx;

      if (dies) {
        alive[node] = 0;
        --live;
        ++run.nodes_failed;
        if (elog.enabled()) {
          elog.Record(obs::EventLevel::kWarn, "cluster", "node.died",
                      {{"q", q}, {"node", node}, {"t_s", end}});
        }
      }
      if (outcome == StatusCode::kOk) {
        node_spill[node] += pe.spill_s;
        done = true;
      } else {
        ++run.retries;
        // Flight-recorder fault trigger: lands in the always-on rings
        // (and retroactively dumps the recent window when a fault dump
        // path is configured), so a service run disturbed by a simulated
        // fault can be explained after the fact.
        obs::flight::FlightRecorder::NoteFault(
            node, static_cast<int64_t>(outcome));
        if (elog.enabled()) {
          elog.Record(obs::EventLevel::kWarn, "cluster", "attempt.failed",
                      {{"q", q},
                       {"partition", p},
                       {"node", node},
                       {"attempt", attempt_idx - 1},
                       {"outcome", Status::CodeName(outcome)},
                       {"t_s", end}});
        }
        if (alive[node]) {
          ++tries_on_node;
          if (tries_on_node >= opts_.max_retries && live > 1) {
            // Give up on this node: move to the cheapest other survivor.
            int best = -1;
            for (int n = 0; n < pool_nodes; ++n) {
              if (!alive[n] || n == node) continue;
              if (best < 0 || node_clock[n] < node_clock[best]) best = n;
            }
            if (best >= 0) {
              if (elog.enabled()) {
                elog.Record(obs::EventLevel::kInfo, "cluster",
                            "partition.reassigned",
                            {{"q", q}, {"partition", p}, {"from", node},
                             {"to", best}});
              }
              node = best;
              tries_on_node = 0;
              if (node != home && !assigned_away) {
                assigned_away = true;
                ++run.reassigned_partitions;
              }
            }
          }
        }
      }
    }
  }

  // Slowest node bounds local work; spill attribution follows it.
  for (int n = 0; n < pool_nodes; ++n) {
    if (node_clock[n] > run.max_node_seconds) {
      run.max_node_seconds = node_clock[n];
      run.spill_seconds = node_spill[n];
    }
  }
  double clean_max_node = 0;
  std::vector<exec::Relation> partials;
  partials.reserve(nodes);
  for (int p = 0; p < nodes; ++p) {
    run.max_working_set_bytes =
        std::max(run.max_working_set_bytes, parts[p].working_set);
    run.network_bytes += scaled_bytes(parts[p].partial);
    clean_max_node = std::max(clean_max_node, parts[p].work_s);
    partials.push_back(std::move(parts[p].partial));
  }
  // Faults only stretch local work; network, merge and overhead are
  // identical to the clean run, so the degradation is the node-time delta.
  run.degraded_seconds = run.max_node_seconds - clean_max_node;

  // Network: every node ships its partial to the coordinator, whose
  // receive link is the bottleneck.
  run.network_seconds = fan_out ? NetworkSeconds(run.network_bytes, nodes)
                                : 0.0;

  // Merge on the coordinator (itself a Pi). Every merge in the distributed
  // subset consumes per-node aggregates (at most tens of rows per node), so
  // merge work does not scale with SF and is modeled unscaled.
  exec::QueryStats merge_stats;
  exec::Relation merged =
      MergePartials(q, node_dbs_[0], std::move(partials), &merge_stats);
  run.merge_seconds =
      model.WorkSeconds(pi, merge_stats, opts_.threads_per_node);

  // One query overhead (driver + plan setup) on the coordinator.
  const double overhead_s =
      model.QuerySeconds(pi, exec::QueryStats{}, 1);

  run.total_seconds = overhead_s + run.max_node_seconds +
                      run.network_seconds + run.merge_seconds;
  run.result = std::move(merged);

  // Per-node scalar rollups (straggler diagnosis): min/max/sum/mean/skew
  // of each node's modeled load. Derived from modeled quantities only, so
  // identical whether or not tracing was on.
  {
    std::vector<int> n_attempts(pool_nodes, 0);
    std::vector<int> n_failed(pool_nodes, 0);
    for (const AttemptRecord& a : run.attempts) {
      ++n_attempts[a.node];
      if (a.outcome != StatusCode::kOk) ++n_failed[a.node];
    }
    const int roll_nodes = fan_out ? pool_nodes : 1;
    std::vector<std::map<std::string, double>> per_node(roll_nodes);
    for (int n = 0; n < roll_nodes; ++n) {
      per_node[n]["node.busy_s"] = node_clock[n];
      per_node[n]["node.spill_s"] = node_spill[n];
      per_node[n]["node.attempts"] = n_attempts[n];
      per_node[n]["node.failed_attempts"] = n_failed[n];
      per_node[n]["node.dead"] = alive[n] ? 0.0 : 1.0;
    }
    run.node_rollups = obs::AggregateNodeScalars(per_node);
  }

  if (!plan.empty()) {
    auto& reg = obs::MetricsRegistry::Global();
    reg.counter("cluster.fault.attempts")
        .Add(static_cast<int64_t>(run.attempts.size()));
    reg.counter("cluster.fault.retries").Add(run.retries);
    reg.counter("cluster.fault.reassigned_partitions")
        .Add(run.reassigned_partitions);
    reg.counter("cluster.fault.nodes_failed").Add(run.nodes_failed);
  }
  if (traced) EmitClusterTrace(q, run, plan, root_ctx);
  if (elog.enabled()) {
    elog.Record(obs::EventLevel::kInfo, "cluster", "run.complete",
                {{"q", q},
                 {"total_s", run.total_seconds},
                 {"retries", run.retries},
                 {"reassigned", run.reassigned_partitions},
                 {"nodes_failed", run.nodes_failed}});
  }
  return run;
}

}  // namespace wimpi::cluster
