#include "cluster/wimpi_cluster.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "cluster/partials.h"
#include "cluster/partition.h"
#include "exec/exec_options.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/cancellation.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace wimpi::cluster {

WimpiCluster::WimpiCluster(const engine::Database& db,
                           const ClusterOptions& opts)
    : opts_(opts) {
  WIMPI_CHECK_GT(opts.num_nodes, 0);
  const auto parts =
      PartitionByKey(db.table("lineitem"), "l_orderkey", opts.num_nodes);
  node_dbs_.resize(opts.num_nodes);
  for (int i = 0; i < opts.num_nodes; ++i) {
    for (const auto& [name, table] : db.tables()) {
      if (name == "lineitem") continue;
      node_dbs_[i].AddTable(table);  // replicated (physically shared)
    }
    node_dbs_[i].AddTable(parts[i]);
  }
}

double WimpiCluster::NetworkSeconds(double bytes, int n_senders) const {
  return bytes * 8.0 / (opts_.node_net_mbps * 1e6) +
         opts_.per_node_latency_s * n_senders;
}

double WimpiCluster::NodeLogicalBytes(double model_sf) const {
  double replicated = 0;
  for (const char* t : {"orders", "customer", "part", "partsupp", "supplier",
                        "nation", "region"}) {
    replicated += tpch::LogicalTableBytes(t, model_sf);
  }
  return replicated +
         tpch::LogicalTableBytes("lineitem", model_sf) / opts_.num_nodes;
}

namespace {

// Cached real execution of one lineitem partition's partial plan. The
// partition's data and plan are fixed (deterministic hash ranges + replicas
// physically shared in host memory), so its relation and counters are
// identical whichever node the fault schedule runs it on: the partial
// executes once and failed/retried attempts are modeled from the cache.
struct PartitionExec {
  bool done = false;
  exec::Relation partial;
  double work_s = 0;  // modeled local work, spill included
  double spill_s = 0;
  double working_set = 0;
};

// Emits the per-attempt timeline as Chrome trace-event spans on modeled
// time (microseconds of simulated node clock), one row per node.
void TraceAttempts(int q, const std::vector<AttemptRecord>& attempts) {
  auto& sink = obs::TraceSink::Global();
  for (const AttemptRecord& a : attempts) {
    char name[64];
    std::snprintf(name, sizeof(name), "Q%d p%d try%d", q, a.partition,
                  a.attempt);
    char args[160];
    std::snprintf(args, sizeof(args),
                  "{\"partition\":%d,\"node\":%d,\"attempt\":%d,"
                  "\"outcome\":\"%s\"}",
                  a.partition, a.node, a.attempt,
                  Status::CodeName(a.outcome).c_str());
    sink.RecordComplete(name, "cluster",
                        static_cast<int64_t>(a.start_seconds * 1e6),
                        static_cast<int64_t>((a.end_seconds - a.start_seconds) *
                                             1e6),
                        args);
  }
}

}  // namespace

Result<DistributedRun> WimpiCluster::Run(int q,
                                         const hw::CostModel& model) const {
  if (!tpch::InSf10Subset(q)) {
    std::string msg = "Q";
    msg += std::to_string(q);
    msg += " is not in the distributed subset {1,3,4,5,6,13,14,19}";
    return Status::InvalidArgument(std::move(msg));
  }
  const hw::HardwareProfile& pi = hw::PiProfile();
  const bool fan_out = QueryFansOut(q);
  const int nodes = fan_out ? opts_.num_nodes : 1;
  const FaultPlan& plan = opts_.faults;

  DistributedRun run;
  run.nodes_used = nodes;

  // Partial-result sizes that scale with data (per-group outputs like Q3's)
  // are projected to the model SF; few-row aggregates are not.
  auto scaled_bytes = [&](const exec::Relation& r) {
    const double bytes = static_cast<double>(r.ValueBytes());
    return r.num_rows() > 100 ? bytes * opts_.sf_scale : bytes;
  };

  // ---- Real execution per partition (lazy: a query abandoned mid-way
  // never executes the remaining partitions, and the cancellation token
  // stops any in-flight morsel loop of the current one promptly). ----
  std::vector<PartitionExec> parts(nodes);
  parallel::CancellationToken cancel;
  auto ensure_exec = [&](int p) -> const PartitionExec& {
    PartitionExec& pe = parts[p];
    if (pe.done) return pe;
    exec::QueryStats stats;
    if (plan.empty()) {
      pe.partial = RunPartial(q, node_dbs_[p], &stats);
    } else {
      exec::ExecOptions eopts = exec::CurrentExecOptions();
      eopts.cancellation = &cancel;
      exec::ScopedExecOptions scope(eopts);
      pe.partial = RunPartial(q, node_dbs_[p], &stats);
    }
    stats.Scale(opts_.sf_scale);
    pe.work_s = model.WorkSeconds(pi, stats, opts_.threads_per_node);

    // Memory-pressure model: when the touched working set exceeds node
    // memory, the overshoot pages through the microSD card (the paper's
    // thrashing failure mode, Section III-C4).
    pe.working_set = stats.BaseTouchedBytes() + stats.peak_intermediate_bytes;
    const double overshoot =
        std::max(0.0, pe.working_set - opts_.node_memory_bytes);
    pe.spill_s =
        overshoot * opts_.thrash_factor / (opts_.microsd_mbps * 1e6);
    pe.work_s += pe.spill_s;
    pe.done = true;
    return pe;
  };

  // ---- Attempt schedule (modeled). Every partition retries on its home
  // node with capped exponential backoff, then reassigns to the surviving
  // node with the least accumulated work; crashes reassign immediately.
  // A partition that has failed 2*max_retries attempts (or has only one
  // node left to run on) stops honouring the deadline and completes as a
  // straggler, so any plan that leaves one live node always finishes. ----
  const int pool_nodes = opts_.num_nodes;
  std::vector<double> node_clock(pool_nodes, 0.0);
  std::vector<double> node_spill(pool_nodes, 0.0);
  std::vector<char> alive(pool_nodes, 1);
  std::vector<int> flaky_used(pool_nodes, 0);  // transient/stall failures used
  int live = pool_nodes;

  for (int p = 0; p < nodes; ++p) {
    const int home = p % pool_nodes;
    int node = home;
    int tries_on_node = 0;
    int attempt_idx = 0;
    bool assigned_away = false;
    for (bool done = false; !done;) {
      WIMPI_CHECK_LT(attempt_idx, 1000) << "fault schedule did not converge";
      // (Re)assign if the current node is gone: cheapest surviving node,
      // lowest index on ties — deterministic.
      if (!alive[node]) {
        int best = -1;
        for (int n = 0; n < pool_nodes; ++n) {
          if (!alive[n]) continue;
          if (best < 0 || node_clock[n] < node_clock[best]) best = n;
        }
        if (best < 0) {
          cancel.Cancel();  // stop any in-flight partial work promptly
          std::string msg = "Q";
          msg += std::to_string(q);
          msg += ": every node failed (plan: ";
          msg += plan.ToString();
          msg += ")";
          return Status::Unavailable(std::move(msg));
        }
        node = best;
        tries_on_node = 0;
        if (node != home && !assigned_away) {
          assigned_away = true;
          ++run.reassigned_partitions;
        }
      }

      const PartitionExec& pe = ensure_exec(p);
      const double w = pe.work_s;
      const double deadline =
          std::max(opts_.min_timeout_s, opts_.timeout_factor * w);
      const double backoff =
          attempt_idx == 0
              ? 0.0
              : std::min(opts_.retry_backoff_cap_s,
                         opts_.retry_backoff_s *
                             std::pow(2.0, attempt_idx - 1));
      // Degraded last resort: no alternative node, or the partition has
      // bounced long enough — accept a straggler run over the deadline.
      const bool last_resort =
          live <= 1 || attempt_idx >= 2 * opts_.max_retries;

      const NodeFault* f = plan.FaultFor(node);
      double dur = w;
      StatusCode outcome = StatusCode::kOk;
      bool dies = false;
      if (f != nullptr) {
        switch (f->kind) {
          case FaultKind::kCrash:
            // Crash at the scan->aggregate phase boundary: half the
            // modeled work is spent, plus one round trip to detect it.
            outcome = StatusCode::kUnavailable;
            dur = std::min(0.5 * w, deadline) + opts_.per_node_latency_s;
            dies = true;
            break;
          case FaultKind::kSlowdown:
            dur = w * f->slowdown;
            if (dur > deadline && !last_resort) {
              dur = deadline;
              outcome = StatusCode::kDeadlineExceeded;
            }
            break;
          case FaultKind::kNetworkStall:
            if (flaky_used[node] < f->fail_attempts) {
              ++flaky_used[node];
              dur = w + f->stall_seconds;
              if (dur > deadline && !last_resort) {
                dur = deadline;
                outcome = StatusCode::kDeadlineExceeded;
              }
            }
            break;
          case FaultKind::kTransient:
            if (flaky_used[node] < f->fail_attempts) {
              ++flaky_used[node];
              outcome = StatusCode::kUnavailable;
              dur = std::min(0.5 * w, deadline) + opts_.per_node_latency_s;
            }
            break;
        }
      }

      const double start = node_clock[node] + backoff;
      const double end = start + dur;
      node_clock[node] = end;
      run.attempts.push_back({p, node, attempt_idx, start, end, outcome});
      ++attempt_idx;

      if (dies) {
        alive[node] = 0;
        --live;
        ++run.nodes_failed;
      }
      if (outcome == StatusCode::kOk) {
        node_spill[node] += pe.spill_s;
        done = true;
      } else {
        ++run.retries;
        if (alive[node]) {
          ++tries_on_node;
          if (tries_on_node >= opts_.max_retries && live > 1) {
            // Give up on this node: move to the cheapest other survivor.
            int best = -1;
            for (int n = 0; n < pool_nodes; ++n) {
              if (!alive[n] || n == node) continue;
              if (best < 0 || node_clock[n] < node_clock[best]) best = n;
            }
            if (best >= 0) {
              node = best;
              tries_on_node = 0;
              if (node != home && !assigned_away) {
                assigned_away = true;
                ++run.reassigned_partitions;
              }
            }
          }
        }
      }
    }
  }

  // Slowest node bounds local work; spill attribution follows it.
  for (int n = 0; n < pool_nodes; ++n) {
    if (node_clock[n] > run.max_node_seconds) {
      run.max_node_seconds = node_clock[n];
      run.spill_seconds = node_spill[n];
    }
  }
  double clean_max_node = 0;
  std::vector<exec::Relation> partials;
  partials.reserve(nodes);
  for (int p = 0; p < nodes; ++p) {
    run.max_working_set_bytes =
        std::max(run.max_working_set_bytes, parts[p].working_set);
    run.network_bytes += scaled_bytes(parts[p].partial);
    clean_max_node = std::max(clean_max_node, parts[p].work_s);
    partials.push_back(std::move(parts[p].partial));
  }
  // Faults only stretch local work; network, merge and overhead are
  // identical to the clean run, so the degradation is the node-time delta.
  run.degraded_seconds = run.max_node_seconds - clean_max_node;

  // Network: every node ships its partial to the coordinator, whose
  // receive link is the bottleneck.
  run.network_seconds = fan_out ? NetworkSeconds(run.network_bytes, nodes)
                                : 0.0;

  // Merge on the coordinator (itself a Pi). Every merge in the distributed
  // subset consumes per-node aggregates (at most tens of rows per node), so
  // merge work does not scale with SF and is modeled unscaled.
  exec::QueryStats merge_stats;
  exec::Relation merged =
      MergePartials(q, node_dbs_[0], std::move(partials), &merge_stats);
  run.merge_seconds =
      model.WorkSeconds(pi, merge_stats, opts_.threads_per_node);

  // One query overhead (driver + plan setup) on the coordinator.
  const double overhead_s =
      model.QuerySeconds(pi, exec::QueryStats{}, 1);

  run.total_seconds = overhead_s + run.max_node_seconds +
                      run.network_seconds + run.merge_seconds;
  run.result = std::move(merged);

  if (!plan.empty()) {
    auto& reg = obs::MetricsRegistry::Global();
    reg.counter("cluster.fault.attempts")
        .Add(static_cast<int64_t>(run.attempts.size()));
    reg.counter("cluster.fault.retries").Add(run.retries);
    reg.counter("cluster.fault.reassigned_partitions")
        .Add(run.reassigned_partitions);
    reg.counter("cluster.fault.nodes_failed").Add(run.nodes_failed);
    if (obs::TraceSink::Global().enabled()) TraceAttempts(q, run.attempts);
  }
  return run;
}

}  // namespace wimpi::cluster
