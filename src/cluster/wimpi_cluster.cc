#include "cluster/wimpi_cluster.h"

#include <algorithm>

#include "cluster/partials.h"
#include "cluster/partition.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace wimpi::cluster {

WimpiCluster::WimpiCluster(const engine::Database& db,
                           const ClusterOptions& opts)
    : opts_(opts) {
  WIMPI_CHECK_GT(opts.num_nodes, 0);
  const auto parts =
      PartitionByKey(db.table("lineitem"), "l_orderkey", opts.num_nodes);
  node_dbs_.resize(opts.num_nodes);
  for (int i = 0; i < opts.num_nodes; ++i) {
    for (const auto& [name, table] : db.tables()) {
      if (name == "lineitem") continue;
      node_dbs_[i].AddTable(table);  // replicated (physically shared)
    }
    node_dbs_[i].AddTable(parts[i]);
  }
}

double WimpiCluster::NetworkSeconds(double bytes, int n_senders) const {
  return bytes * 8.0 / (opts_.node_net_mbps * 1e6) +
         opts_.per_node_latency_s * n_senders;
}

double WimpiCluster::NodeLogicalBytes(double model_sf) const {
  double replicated = 0;
  for (const char* t : {"orders", "customer", "part", "partsupp", "supplier",
                        "nation", "region"}) {
    replicated += tpch::LogicalTableBytes(t, model_sf);
  }
  return replicated +
         tpch::LogicalTableBytes("lineitem", model_sf) / opts_.num_nodes;
}

DistributedRun WimpiCluster::Run(int q, const hw::CostModel& model) const {
  const hw::HardwareProfile& pi = hw::PiProfile();
  const bool fan_out = QueryFansOut(q);
  const int nodes = fan_out ? opts_.num_nodes : 1;

  DistributedRun run;
  run.nodes_used = nodes;

  // Partial-result sizes that scale with data (per-group outputs like Q3's)
  // are projected to the model SF; few-row aggregates are not.
  auto scaled_bytes = [&](const exec::Relation& r) {
    const double bytes = static_cast<double>(r.ValueBytes());
    return r.num_rows() > 100 ? bytes * opts_.sf_scale : bytes;
  };

  std::vector<exec::Relation> partials;
  partials.reserve(nodes);
  for (int i = 0; i < nodes; ++i) {
    exec::QueryStats stats;
    exec::Relation partial = RunPartial(q, node_dbs_[i], &stats);
    stats.Scale(opts_.sf_scale);

    double node_s =
        model.WorkSeconds(pi, stats, opts_.threads_per_node);

    // Memory-pressure model: when the touched working set exceeds node
    // memory, the overshoot pages through the microSD card (the paper's
    // thrashing failure mode, Section III-C4).
    const double working_set =
        stats.BaseTouchedBytes() + stats.peak_intermediate_bytes;
    const double overshoot =
        std::max(0.0, working_set - opts_.node_memory_bytes);
    const double spill_s = overshoot * opts_.thrash_factor /
                           (opts_.microsd_mbps * 1e6);
    node_s += spill_s;

    run.max_working_set_bytes =
        std::max(run.max_working_set_bytes, working_set);
    if (node_s > run.max_node_seconds) {
      run.max_node_seconds = node_s;
      run.spill_seconds = spill_s;
    }
    run.network_bytes += scaled_bytes(partial);
    partials.push_back(std::move(partial));
  }

  // Network: every node ships its partial to the coordinator, whose
  // receive link is the bottleneck.
  run.network_seconds = fan_out ? NetworkSeconds(run.network_bytes, nodes)
                                : 0.0;

  // Merge on the coordinator (itself a Pi). Every merge in the distributed
  // subset consumes per-node aggregates (at most tens of rows per node), so
  // merge work does not scale with SF and is modeled unscaled.
  exec::QueryStats merge_stats;
  exec::Relation merged =
      MergePartials(q, node_dbs_[0], std::move(partials), &merge_stats);
  run.merge_seconds =
      model.WorkSeconds(pi, merge_stats, opts_.threads_per_node);

  // One query overhead (driver + plan setup) on the coordinator.
  const double overhead_s =
      model.QuerySeconds(pi, exec::QueryStats{}, 1);

  run.total_seconds = overhead_s + run.max_node_seconds +
                      run.network_seconds + run.merge_seconds;
  run.result = std::move(merged);
  return run;
}

}  // namespace wimpi::cluster
