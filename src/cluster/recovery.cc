#include "cluster/recovery.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "common/logging.h"

namespace wimpi::cluster {

namespace {

// A contiguous morsel range waiting on some worker's deque.
struct PendingRange {
  int partition = 0;
  parallel::MorselRange range;
  int prev_node = -1;
  bool stolen = false;
};

// An orphaned range: its owner crashed or left. Claimed whole by the
// first idle worker (reassignment, not a steal).
struct Orphan {
  int partition = 0;
  parallel::MorselRange range;
  int prev_node = 0;
  // Modeled time the range became orphaned (owner's clock at death /
  // departure). A claimant cannot start before this: re-execution is
  // causally downstream of the loss.
  double born = 0;
};

struct Worker {
  double clock = 0;
  double spill = 0;
  bool alive = true;
  int lifetime_executed = 0;   // morsels ever executed (crash trigger)
  int transient_failures = 0;  // failed checkpoint publishes so far
  int stalled_publishes = 0;   // net-stall hits absorbed so far
  std::deque<PendingRange> queue;
  // Progress on queue.front(): morsels executed / checkpointed measured
  // from range.begin, plus the modeled times the range and the current
  // un-checkpointed chunk started.
  int executed = 0;
  int checkpointed = 0;
  bool range_started = false;
  double range_start = 0;
  double chunk_start = 0;
};

}  // namespace

FineSchedule SimulateFineGrained(const FineInputs& in) {
  WIMPI_CHECK_GT(in.pool_nodes, 0);
  const int parts = static_cast<int>(in.work_s.size());
  WIMPI_CHECK_EQ(parts, static_cast<int>(in.morsels.size()));
  WIMPI_CHECK_EQ(parts, static_cast<int>(in.spill_s.size()));
  WIMPI_CHECK_EQ(parts, static_cast<int>(in.partial_bytes.size()));

  FineSchedule out;
  for (int p = 0; p < parts; ++p) {
    WIMPI_CHECK_GT(in.morsels[p], 0);
    out.total_morsels += in.morsels[p];
  }

  std::vector<Worker> workers(in.pool_nodes);
  std::vector<Orphan> orphans;
  int remaining = out.total_morsels;  // morsels not yet checkpointed

  // Initial placement mirrors the retry path: partition p starts on node
  // p mod pool, queued in ascending partition order.
  for (int p = 0; p < parts; ++p) {
    PendingRange pr;
    pr.partition = p;
    pr.range = {0, in.morsels[p]};
    workers[p % in.pool_nodes].queue.push_back(pr);
  }

  // Clean-makespan estimate anchoring resize fractions: the most loaded
  // initial worker's total work (checkpoint overhead ignored — the plan
  // only needs a stable, workload-scaled time base).
  double est = 0;
  for (int n = 0; n < in.pool_nodes; ++n) {
    double sum = 0;
    for (const PendingRange& pr : workers[n].queue) sum += in.work_s[pr.partition];
    est = std::max(est, sum);
  }
  if (est <= 0) est = 1e-6;

  // Crash trigger: a crash-faulted node dies after executing half an
  // average node's share of morsels — the fine-grained analogue of the
  // retry model's "fails after half the partition's work". Uniform in
  // lifetime morsels, so a thief that picked up stolen work can still
  // crash mid-steal.
  const int avg_morsels =
      (out.total_morsels + in.pool_nodes - 1) / in.pool_nodes;
  const int crash_after = std::max(1, (avg_morsels + 1) / 2);

  const auto fault_for = [&](int node) -> const NodeFault* {
    return in.faults == nullptr ? nullptr : in.faults->FaultFor(node);
  };
  const auto per_morsel_cost = [&](int p, int node) {
    double cost = in.work_s[p] / in.morsels[p];
    const NodeFault* f = fault_for(node);
    if (f != nullptr && f->kind == FaultKind::kSlowdown) cost *= f->slowdown;
    return cost;
  };

  // Publishes one merge-ready chunk. Returns false when the publish is
  // lost — a transient fault eats it, or a network stall exceeds the
  // publish deadline — and the chunk must be re-executed.
  const auto publish = [&](int node, int p, int chunk_morsels) {
    Worker& w = workers[node];
    const NodeFault* f = fault_for(node);
    if (f != nullptr && f->kind == FaultKind::kTransient &&
        w.transient_failures < f->fail_attempts) {
      ++w.transient_failures;
      return false;
    }
    const double bytes =
        in.partial_bytes[p] * static_cast<double>(chunk_morsels) /
        static_cast<double>(in.morsels[p]);
    double cost = in.per_node_latency_s + bytes * 8.0 / (in.net_mbps * 1e6);
    if (f != nullptr && f->kind == FaultKind::kNetworkStall &&
        w.stalled_publishes < f->fail_attempts) {
      ++w.stalled_publishes;
      if (f->stall_seconds > in.opts.publish_timeout_s) {
        // Stalled past the publish deadline: abandon the publish (the
        // chunk is lost) instead of waiting out the stall. The caller
        // re-executes at most checkpoint_interval morsels.
        w.clock += in.opts.publish_timeout_s;
        return false;
      }
      cost += f->stall_seconds;
    }
    w.clock += cost;
    CheckpointRecord ck;
    ck.partition = p;
    ck.node = node;
    ck.morsels = chunk_morsels;
    ck.bytes = bytes;
    ck.at_seconds = w.clock;
    out.checkpoints.push_back(ck);
    out.checkpoint_bytes += bytes;
    remaining -= chunk_morsels;
    return true;
  };

  // Closes the worker's current range after a loss or departure: emits
  // the checkpointed prefix (kOk) and the executed-but-lost chunk
  // (kUnavailable), and returns the range that still needs execution.
  const auto close_front = [&](int node) -> PendingRange {
    Worker& w = workers[node];
    PendingRange pr = w.queue.front();
    w.queue.pop_front();
    const int base = pr.range.begin;
    if (w.checkpointed > 0) {
      MorselSegment seg;
      seg.partition = pr.partition;
      seg.node = node;
      seg.begin = base;
      seg.end = base + w.checkpointed;
      seg.start_seconds = w.range_start;
      seg.end_seconds = w.chunk_start;
      seg.prev_node = pr.prev_node;
      seg.stolen = pr.stolen;
      seg.outcome = StatusCode::kOk;
      out.segments.push_back(seg);
    }
    if (w.executed > w.checkpointed) {
      MorselSegment seg;
      seg.partition = pr.partition;
      seg.node = node;
      seg.begin = base + w.checkpointed;
      seg.end = base + w.executed;
      seg.start_seconds = w.chunk_start;
      seg.end_seconds = w.clock;
      seg.prev_node = pr.prev_node;
      seg.stolen = pr.stolen;
      seg.outcome = StatusCode::kUnavailable;
      out.segments.push_back(seg);
      out.recovered_morsels += w.executed - w.checkpointed;
    }
    PendingRange rest;
    rest.partition = pr.partition;
    rest.range = {base + w.checkpointed, pr.range.end};
    rest.prev_node = node;
    w.executed = 0;
    w.checkpointed = 0;
    w.range_started = false;
    return rest;
  };

  const auto orphan_all = [&](int node) {
    Worker& w = workers[node];
    if (!w.queue.empty()) {
      PendingRange rest = close_front(node);
      if (!rest.range.empty()) {
        orphans.push_back({rest.partition, rest.range, node, w.clock});
      }
    }
    while (!w.queue.empty()) {
      PendingRange pr = w.queue.front();
      w.queue.pop_front();
      orphans.push_back({pr.partition, pr.range, node, w.clock});
    }
  };

  // Graceful leave: flush the un-checkpointed chunk as a final checkpoint
  // (a transient fault can still eat it — the chunk is then recovered like
  // any other loss), then orphan whatever the node had not started.
  const auto leave = [&](int node) {
    Worker& w = workers[node];
    if (!w.queue.empty() && w.executed > w.checkpointed) {
      if (publish(node, w.queue.front().partition,
                  w.executed - w.checkpointed)) {
        w.checkpointed = w.executed;
        w.chunk_start = w.clock;
      }
    }
    orphan_all(node);
    w.alive = false;
    ++out.leaves;
  };

  const auto crash = [&](int node) {
    orphan_all(node);
    workers[node].alive = false;
    ++out.nodes_failed;
  };

  size_t next_event = 0;
  const std::vector<ResizeEvent> no_events;
  const std::vector<ResizeEvent>& events =
      in.resize == nullptr ? no_events : in.resize->events;

  const auto fire_event = [&](const ResizeEvent& e, double at) {
    if (e.join) {
      Worker joiner;
      joiner.clock = at;
      workers.push_back(joiner);
      ++out.joins;
    } else if (e.node >= 0 && e.node < static_cast<int>(workers.size()) &&
               workers[e.node].alive) {
      leave(e.node);
    }
  };

  // Bounded: every iteration either executes a morsel, fires an event, or
  // terminates. Losses re-execute at most fail_attempts + 1 times per
  // node, so the generous cap only trips on a logic bug.
  const long max_iters =
      static_cast<long>(out.total_morsels + 16) *
      static_cast<long>(workers.size() + events.size() + 16) * 8;
  long iters = 0;

  while (remaining > 0) {
    WIMPI_CHECK_LT(iters++, max_iters);

    // Fire resize events that are due at the simulation front (or
    // unconditionally once nobody is left alive — a pending join is the
    // only thing that can rescue the run).
    bool any_alive = false;
    double front = std::numeric_limits<double>::infinity();
    for (const Worker& w : workers) {
      if (!w.alive) continue;
      any_alive = true;
      front = std::min(front, w.clock);
    }
    if (next_event < events.size()) {
      const double at = events[next_event].at_fraction * est;
      if (!any_alive || at <= front) {
        fire_event(events[next_event], at);
        ++next_event;
        continue;
      }
    }
    if (!any_alive) break;  // dead cluster, no rescue pending

    // Refill idle workers — earliest-idle first (clock, then id). Orphans
    // are claimed whole before any stealing: recovering lost work beats
    // rebalancing live work.
    for (bool acquired = true; acquired;) {
      acquired = false;
      int thief = -1;
      double thief_clock = 0;
      for (int i = 0; i < static_cast<int>(workers.size()); ++i) {
        if (!workers[i].alive || !workers[i].queue.empty()) continue;
        if (thief < 0 || workers[i].clock < thief_clock) {
          thief = i;
          thief_clock = workers[i].clock;
        }
      }
      if (thief < 0) break;
      Worker& tw = workers[thief];
      if (!orphans.empty()) {
        // Lowest (partition, begin) first: canonical claim order.
        size_t pick = 0;
        for (size_t i = 1; i < orphans.size(); ++i) {
          if (orphans[i].partition < orphans[pick].partition ||
              (orphans[i].partition == orphans[pick].partition &&
               orphans[i].range.begin < orphans[pick].range.begin)) {
            pick = i;
          }
        }
        PendingRange pr;
        pr.partition = orphans[pick].partition;
        pr.range = orphans[pick].range;
        pr.prev_node = orphans[pick].prev_node;
        pr.stolen = false;
        const double born = orphans[pick].born;
        orphans.erase(orphans.begin() + static_cast<long>(pick));
        // Fetch the published partials; the claim cannot predate the loss.
        tw.clock = std::max(tw.clock, born) + in.per_node_latency_s;
        tw.queue.push_back(pr);
        acquired = true;
        continue;
      }
      if (!in.opts.steal) break;
      std::vector<parallel::VictimLoad> loads(workers.size());
      for (int i = 0; i < static_cast<int>(workers.size()); ++i) {
        const Worker& w = workers[i];
        if (!w.alive || w.queue.empty()) continue;
        double work = 0;
        int unstarted_front = 0;
        for (size_t qi = 0; qi < w.queue.size(); ++qi) {
          const PendingRange& pr = w.queue[qi];
          int todo = pr.range.size();
          if (qi == 0) {
            todo -= w.executed;
            unstarted_front = todo;
          }
          work += todo * per_morsel_cost(pr.partition, i);
        }
        loads[i].remaining_work = work;
        loads[i].stealable_morsels =
            w.queue.size() > 1
                ? w.queue.back().range.size()
                : unstarted_front - 1;  // victim keeps the morsel in flight
      }
      const int victim =
          parallel::PickVictim(loads, thief, in.opts.min_steal_morsels);
      if (victim < 0) break;
      Worker& vw = workers[victim];
      PendingRange stolen;
      if (vw.queue.size() > 1) {
        // Whole un-started range off the back of the victim's deque.
        stolen = vw.queue.back();
        vw.queue.pop_back();
      } else {
        PendingRange& pr = vw.queue.front();
        parallel::MorselRange rest{pr.range.begin + vw.executed,
                                   pr.range.end};
        parallel::MorselRange taken =
            parallel::StealHalf(&rest, in.opts.min_steal_morsels);
        if (taken.empty()) break;
        pr.range.end = rest.end;
        stolen.partition = pr.partition;
        stolen.range = taken;
      }
      stolen.prev_node = victim;
      stolen.stolen = true;
      tw.clock += in.per_node_latency_s;
      StealRecord sr;
      sr.partition = stolen.partition;
      sr.victim = victim;
      sr.thief = thief;
      sr.begin = stolen.range.begin;
      sr.end = stolen.range.end;
      sr.at_seconds = tw.clock;
      out.steals.push_back(sr);
      out.stolen_morsels += stolen.range.size();
      tw.queue.push_back(stolen);
      acquired = true;
    }

    // Actor: smallest clock among alive workers holding work, lowest id
    // on ties. Executes exactly one morsel.
    int actor = -1;
    for (int i = 0; i < static_cast<int>(workers.size()); ++i) {
      if (!workers[i].alive || workers[i].queue.empty()) continue;
      if (actor < 0 || workers[i].clock < workers[actor].clock) actor = i;
    }
    if (actor < 0) {
      if (next_event < events.size()) {
        fire_event(events[next_event], events[next_event].at_fraction * est);
        ++next_event;
        continue;
      }
      break;  // idle survivors, unclaimable work: unrecoverable
    }

    Worker& w = workers[actor];
    PendingRange& pr = w.queue.front();
    const int p = pr.partition;
    if (!w.range_started) {
      w.range_started = true;
      w.range_start = w.clock;
      w.chunk_start = w.clock;
    }
    w.clock += per_morsel_cost(p, actor);
    w.spill += in.spill_s[p] / in.morsels[p];
    ++w.executed;
    ++w.lifetime_executed;

    const NodeFault* f = fault_for(actor);
    if (f != nullptr && f->kind == FaultKind::kCrash &&
        w.lifetime_executed >= crash_after) {
      crash(actor);
      continue;
    }

    const bool at_end = pr.range.begin + w.executed == pr.range.end;
    const int chunk = w.executed - w.checkpointed;
    if (chunk >= in.opts.checkpoint_interval || at_end) {
      if (publish(actor, p, chunk)) {
        w.checkpointed = w.executed;
        w.chunk_start = w.clock;
      } else {
        // The publish was lost (transient fault or stalled past the
        // deadline): re-queue the un-acknowledged tail to this same
        // worker and start over there.
        PendingRange rest = close_front(actor);
        if (!rest.range.empty()) w.queue.push_front(rest);
        continue;
      }
    }
    if (at_end) {
      MorselSegment seg;
      seg.partition = p;
      seg.node = actor;
      seg.begin = pr.range.begin;
      seg.end = pr.range.end;
      seg.start_seconds = w.range_start;
      seg.end_seconds = w.clock;
      seg.prev_node = pr.prev_node;
      seg.stolen = pr.stolen;
      seg.outcome = StatusCode::kOk;
      out.segments.push_back(seg);
      w.queue.pop_front();
      w.executed = 0;
      w.checkpointed = 0;
      w.range_started = false;
    }
  }

  out.completed = remaining == 0;
  out.node_clock.resize(workers.size());
  out.node_spill.resize(workers.size());
  out.alive.resize(workers.size());
  for (size_t i = 0; i < workers.size(); ++i) {
    out.node_clock[i] = workers[i].clock;
    out.node_spill[i] = workers[i].spill;
    out.alive[i] = workers[i].alive ? 1 : 0;
    out.makespan_s = std::max(out.makespan_s, workers[i].clock);
  }
  return out;
}

}  // namespace wimpi::cluster
