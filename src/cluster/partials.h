#ifndef WIMPI_CLUSTER_PARTIALS_H_
#define WIMPI_CLUSTER_PARTIALS_H_

#include <vector>

#include "engine/database.h"
#include "exec/counters.h"
#include "exec/relation.h"

namespace wimpi::cluster {

// Distributed execution of the paper's eight SF-10 queries, in the style of
// the paper's hand-written driver: each node runs a partial plan against
// its local lineitem partition (all other tables replicated), and the
// coordinator merges partial results. Q13 never touches lineitem, so it
// runs fully on a single node and the "partial" is already the answer --
// exactly the behaviour Table III shows (no speedup at any cluster size).

// True if `q` actually fans out (everything in the subset except Q13).
bool QueryFansOut(int q);

// Runs the partial plan for query `q` on one node's database.
exec::Relation RunPartial(int q, const engine::Database& node_db,
                          exec::QueryStats* stats);

// Merges partial results on the coordinator (`coord_db` supplies small
// replicated tables like nation). The merged relation equals the
// single-node RunQuery output.
exec::Relation MergePartials(int q, const engine::Database& coord_db,
                             std::vector<exec::Relation> partials,
                             exec::QueryStats* stats);

// Concatenates relations with identical schemas (string columns must share
// dictionaries, which holds for all partition/replica outputs).
exec::Relation ConcatRelations(std::vector<exec::Relation> parts,
                               exec::QueryStats* stats);

}  // namespace wimpi::cluster

#endif  // WIMPI_CLUSTER_PARTIALS_H_
