#ifndef WIMPI_CLUSTER_PARTITION_H_
#define WIMPI_CLUSTER_PARTITION_H_

#include <memory>
#include <vector>

#include "storage/table.h"

namespace wimpi::cluster {

// Hash-partitions `table` into `num_parts` tables on an int64 key column
// (the paper partitions lineitem on l_orderkey). Row order within each
// partition preserves source order; string columns share the source
// dictionaries, so partitioning does not duplicate dictionary storage.
std::vector<std::shared_ptr<storage::Table>> PartitionByKey(
    const storage::Table& table, const std::string& key_column,
    int num_parts);

}  // namespace wimpi::cluster

#endif  // WIMPI_CLUSTER_PARTITION_H_
