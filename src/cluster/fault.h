#ifndef WIMPI_CLUSTER_FAULT_H_
#define WIMPI_CLUSTER_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace wimpi::cluster {

// Deterministic fault injection for the simulated WIMPI cluster. A
// FaultPlan is data, not behaviour: it names which nodes misbehave and
// how, and the recovery driver in WimpiCluster::Run interprets it against
// modeled time. Nothing here reads a wall clock or a global RNG — the same
// plan against the same database always produces the same DistributedRun,
// byte for byte (the repo's determinism rule).
//
// The four kinds mirror what the paper's $35-SBC fleet actually suffers:
// microSD cards killing nodes outright, thermally throttled stragglers,
// the shared-USB network hiccuping, and nodes that drop out and come back.

enum class FaultKind {
  // Node dies at its first phase boundary and never comes back. Attempts
  // observe kUnavailable after half the partition's modeled work (scan
  // done, aggregate lost) and the partition is reassigned to a survivor.
  kCrash,
  // Node runs but every attempt takes `slowdown` times the modeled work
  // (thermal throttling / a worn card). Attempts that blow the modeled
  // deadline are abandoned (kDeadlineExceeded) and retried or reassigned.
  kSlowdown,
  // The node computes at full speed but its link stalls for
  // `stall_seconds` on delivery, for the first `fail_attempts` attempts;
  // afterwards the link recovers (a transient shared-USB hiccup).
  kNetworkStall,
  // Node fails its first `fail_attempts` attempts outright (kUnavailable
  // after half the modeled work), then recovers and serves normally.
  kTransient,
};

const char* FaultKindName(FaultKind kind);

struct NodeFault {
  int node = 0;
  FaultKind kind = FaultKind::kCrash;
  // kSlowdown: per-attempt multiplier on the node's modeled work (> 1).
  double slowdown = 1.0;
  // kNetworkStall: seconds the delivery stalls (modeled, added to the
  // attempt's duration).
  double stall_seconds = 0.0;
  // kTransient / kNetworkStall: number of leading attempts affected.
  int fail_attempts = 1;
};

struct FaultPlan {
  // The seed the plan was generated from (0 for hand-built plans);
  // carried for reporting and artifact output.
  uint64_t seed = 0;
  std::vector<NodeFault> faults;  // at most one entry per node

  bool empty() const { return faults.empty(); }
  // The fault injected on `node`, or nullptr when the node is healthy.
  const NodeFault* FaultFor(int node) const;

  // Deterministically derives a fault scenario from a single seed: how
  // many nodes misbehave, which ones, each kind and its magnitude all come
  // from one Rng(seed) stream. Crashes are capped at num_nodes - 1 so a
  // generated plan always leaves at least one live node (recoverable by
  // construction). Same (seed, num_nodes) => identical plan, always.
  static FaultPlan Generate(uint64_t seed, int num_nodes);

  // Convenience builders for tests and benches.
  static FaultPlan Crash(std::vector<int> nodes);
  static FaultPlan Slowdown(int node, double factor);
  static FaultPlan NetworkStall(int node, double stall_seconds,
                                int fail_attempts = 1);
  static FaultPlan Transient(int node, int fail_attempts = 1);

  // One line per fault, e.g. "node 7: slowdown x8".
  std::string ToString() const;
};

// ---- elastic membership (fine-grained recovery only, DESIGN.md §14) ----

// One membership change during a run. `at_fraction` is relative to the
// run's clean modeled makespan estimate, so the same plan scales with the
// workload instead of hard-coding absolute seconds. Joins introduce a new
// worker id past the initial pool; leaves are graceful (the node publishes
// a final checkpoint, then its remaining morsel ranges are redistributed
// by the same checkpoint/steal machinery that handles faults).
struct ResizeEvent {
  double at_fraction = 0.5;  // in (0, 1]
  int node = 0;              // leave: pool node id; join: assigned id
  bool join = true;
};

struct ResizePlan {
  uint64_t seed = 0;  // 0 for hand-built plans
  std::vector<ResizeEvent> events;

  bool empty() const { return events.empty(); }

  // Deterministically derives a resize scenario from one seed: 1..2
  // membership changes at seed-derived fractions. Leaves are capped at
  // num_nodes / 4, so a generated plan combined with a generated FaultPlan
  // (crashes <= num_nodes / 4) always keeps a live majority. Same
  // (seed, num_nodes) => identical plan, always.
  static ResizePlan Generate(uint64_t seed, int num_nodes);

  // Convenience builders for tests.
  static ResizePlan Join(double at_fraction);
  static ResizePlan Leave(int node, double at_fraction);

  // e.g. "join@0.3; node 2 leaves@0.6".
  std::string ToString() const;
};

// Deterministic jitter in [0, 1) for retry backoff: a pure hash of
// (seed, a, b), so identical fault plans reproduce identical modeled
// schedules while distinct (partition, attempt) pairs decorrelate their
// backoff waits (no modeled thundering herd on a recovering node).
double DeterministicJitter(uint64_t seed, uint64_t a, uint64_t b);

}  // namespace wimpi::cluster

#endif  // WIMPI_CLUSTER_FAULT_H_
