#include "cluster/partials.h"

#include "common/date.h"
#include "exec/relation_ops.h"
#include "obs/profiler.h"
#include "tpch/queries.h"
#include "tpch/query_utils.h"

namespace wimpi::cluster {

using engine::Database;
using tpch::AggFn;
using tpch::AggSpec;
using tpch::CmpOp;
using tpch::Cols;
using tpch::ColumnSource;
using tpch::JoinGather;
using tpch::JoinKind;
using tpch::Predicate;
using tpch::QueryStats;
using tpch::Relation;
using tpch::ScanAll;
using tpch::ScanGather;
using tpch::SelVec;

namespace {

void AddRevenue(Relation* r, const std::string& name, QueryStats* stats) {
  auto one_minus = exec::ConstMinusF64(1.0, r->column("l_discount"), stats);
  r->AddColumn(name,
               exec::MulF64(r->column("l_extendedprice"), *one_minus, stats));
}

Relation ScalarF64(const std::string& name, double v) {
  auto col = std::make_unique<storage::Column>(storage::DataType::kFloat64);
  col->AppendFloat64(v);
  Relation r;
  r.AddColumn(name, std::move(col));
  return r;
}

}  // namespace

bool QueryFansOut(int q) { return tpch::InSf10Subset(q) && q != 13; }

Relation ConcatRelations(std::vector<Relation> parts, QueryStats* stats) {
  return exec::ConcatRelations(std::move(parts), stats);
}

// ---------- Partial plans ----------

namespace {

Relation PartialQ1(const Database& db, QueryStats* stats) {
  Relation r = ScanGather(
      db.table("lineitem"),
      {Predicate::CmpDate("l_shipdate", CmpOp::kLe,
                          ParseDate("1998-12-01") - 90)},
      {"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice",
       "l_discount", "l_tax"},
      stats);
  auto one_minus = exec::ConstMinusF64(1.0, r.column("l_discount"), stats);
  auto disc_price =
      exec::MulF64(r.column("l_extendedprice"), *one_minus, stats);
  auto one_plus = exec::ConstPlusF64(1.0, r.column("l_tax"), stats);
  auto charge = exec::MulF64(*disc_price, *one_plus, stats);
  r.AddColumn("disc_price", std::move(disc_price));
  r.AddColumn("charge", std::move(charge));
  // Decomposed aggregates: ship sums + counts so the coordinator can
  // recombine exactly (avg = sum/count).
  return exec::HashAggregate(ColumnSource(r),
                             {"l_returnflag", "l_linestatus"},
                             {{AggFn::kSum, "l_quantity", "sum_qty"},
                              {AggFn::kSum, "l_extendedprice", "sum_base_price"},
                              {AggFn::kSum, "disc_price", "sum_disc_price"},
                              {AggFn::kSum, "charge", "sum_charge"},
                              {AggFn::kSum, "l_discount", "sum_disc"},
                              {AggFn::kCountStar, "", "count_order"}},
                             stats);
}

Relation MergeQ1(std::vector<Relation> partials, QueryStats* stats) {
  Relation all = exec::ConcatRelations(std::move(partials), stats);
  Relation agg = exec::HashAggregate(
      ColumnSource(all), {"l_returnflag", "l_linestatus"},
      {{AggFn::kSum, "sum_qty", "sum_qty"},
       {AggFn::kSum, "sum_base_price", "sum_base_price"},
       {AggFn::kSum, "sum_disc_price", "sum_disc_price"},
       {AggFn::kSum, "sum_charge", "sum_charge"},
       {AggFn::kSum, "sum_disc", "sum_disc"},
       {AggFn::kSumI64, "count_order", "count_order"}},
      stats);
  auto countf = exec::CastF64(agg.column("count_order"), stats);
  Relation out;
  out.AddColumn("l_returnflag", agg.TakeColumn(0));
  out.AddColumn("l_linestatus", agg.TakeColumn(1));
  out.AddColumn("sum_qty", agg.TakeColumn(2));
  out.AddColumn("sum_base_price", agg.TakeColumn(3));
  out.AddColumn("sum_disc_price", agg.TakeColumn(4));
  out.AddColumn("sum_charge", agg.TakeColumn(5));
  out.AddColumn("avg_qty", exec::DivF64(out.column("sum_qty"), *countf, stats));
  out.AddColumn("avg_price",
                exec::DivF64(out.column("sum_base_price"), *countf, stats));
  auto sum_disc = agg.TakeColumn(6);
  out.AddColumn("avg_disc", exec::DivF64(*sum_disc, *countf, stats));
  out.AddColumn("count_order", agg.TakeColumn(7));
  return exec::SortRelation(
      out, {{"l_returnflag", true}, {"l_linestatus", true}}, stats);
}

Relation PartialQ3(const Database& db, QueryStats* stats) {
  const int32_t cutoff = ParseDate("1995-03-15");
  Relation cust = ScanGather(db.table("customer"),
                             {Predicate::StrEq("c_mktsegment", "BUILDING")},
                             {"c_custkey"}, stats);
  Relation orders = ScanGather(
      db.table("orders"),
      {Predicate::CmpDate("o_orderdate", CmpOp::kLt, cutoff)},
      {"o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"}, stats);
  Relation o2 = JoinGather(cust, {"c_custkey"}, {}, orders, {"o_custkey"},
                           {"o_orderkey", "o_orderdate", "o_shippriority"},
                           JoinKind::kSemi, stats);
  Relation line = ScanGather(
      db.table("lineitem"),
      {Predicate::CmpDate("l_shipdate", CmpOp::kGt, cutoff)},
      {"l_orderkey", "l_extendedprice", "l_discount"}, stats);
  Relation j = JoinGather(o2, {"o_orderkey"},
                          {"o_orderdate", "o_shippriority"}, line,
                          {"l_orderkey"},
                          {"l_orderkey", "l_extendedprice", "l_discount"},
                          JoinKind::kInner, stats);
  AddRevenue(&j, "rev", stats);
  Relation agg = exec::HashAggregate(
      ColumnSource(j), {"l_orderkey", "o_orderdate", "o_shippriority"},
      {{AggFn::kSum, "rev", "revenue"}}, stats);
  // Orders are partitioned by l_orderkey, so groups are disjoint across
  // nodes: the node-local top 10 is sufficient for a correct global top 10.
  return exec::SortRelation(agg, {{"revenue", false}, {"o_orderdate", true}},
                            stats, 10);
}

Relation MergeQ3(std::vector<Relation> partials, QueryStats* stats) {
  Relation all = exec::ConcatRelations(std::move(partials), stats);
  // Re-sort on (revenue, o_orderdate): column order is
  // l_orderkey, o_orderdate, o_shippriority, revenue.
  return exec::SortRelation(all, {{"revenue", false}, {"o_orderdate", true}},
                            stats, 10);
}

Relation PartialQ4(const Database& db, QueryStats* stats) {
  const storage::Table& l = db.table("lineitem");
  const SelVec late = exec::FilterColCmpCol(
      ColumnSource(l), "l_commitdate", CmpOp::kLt, "l_receiptdate", stats);
  Relation lkeys = exec::GatherColumns(ColumnSource(l),
                                       Cols({"l_orderkey"}), late, stats);
  const int32_t lo = ParseDate("1993-07-01");
  Relation orders = ScanGather(
      db.table("orders"),
      {Predicate::BetweenDate("o_orderdate", lo, DateAddMonths(lo, 3) - 1)},
      {"o_orderkey", "o_orderpriority"}, stats);
  Relation j = JoinGather(lkeys, {"l_orderkey"}, {}, orders, {"o_orderkey"},
                          {"o_orderpriority"}, JoinKind::kSemi, stats);
  return exec::HashAggregate(ColumnSource(j), {"o_orderpriority"},
                             {{AggFn::kCountStar, "", "order_count"}},
                             stats);
}

Relation MergeQ4(std::vector<Relation> partials, QueryStats* stats) {
  Relation all = exec::ConcatRelations(std::move(partials), stats);
  Relation agg = exec::HashAggregate(
      ColumnSource(all), {"o_orderpriority"},
      {{AggFn::kSumI64, "order_count", "order_count"}}, stats);
  return exec::SortRelation(agg, {{"o_orderpriority", true}}, stats);
}

Relation PartialQ5(const Database& db, QueryStats* stats) {
  const std::vector<int32_t> asia = tpch::NationKeysInRegion(db, "ASIA");
  const int32_t lo = ParseDate("1994-01-01");
  Relation cust =
      ScanAll(db.table("customer"), {"c_custkey", "c_nationkey"}, stats);
  Relation orders = ScanGather(
      db.table("orders"),
      {Predicate::BetweenDate("o_orderdate", lo, DateAddMonths(lo, 12) - 1)},
      {"o_orderkey", "o_custkey"}, stats);
  Relation j1 =
      JoinGather(cust, {"c_custkey"}, {"c_nationkey"}, orders, {"o_custkey"},
                 {"o_orderkey"}, JoinKind::kInner, stats);
  Relation line =
      ScanAll(db.table("lineitem"),
              {"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"},
              stats);
  Relation j2 = JoinGather(j1, {"o_orderkey"}, {"c_nationkey"}, line,
                           {"l_orderkey"},
                           {"l_suppkey", "l_extendedprice", "l_discount"},
                           JoinKind::kInner, stats);
  Relation supp = ScanGather(db.table("supplier"),
                             {Predicate::InI32("s_nationkey", asia)},
                             {"s_suppkey", "s_nationkey"}, stats);
  Relation j3 = JoinGather(supp, {"s_suppkey", "s_nationkey"},
                           {"s_nationkey"}, j2,
                           {"l_suppkey", "c_nationkey"},
                           {"l_extendedprice", "l_discount"},
                           JoinKind::kInner, stats);
  AddRevenue(&j3, "rev", stats);
  return exec::HashAggregate(ColumnSource(j3), {"s_nationkey"},
                             {{AggFn::kSum, "rev", "revenue"}}, stats);
}

Relation MergeQ5(const Database& coord_db, std::vector<Relation> partials,
                 QueryStats* stats) {
  Relation all = exec::ConcatRelations(std::move(partials), stats);
  Relation agg = exec::HashAggregate(ColumnSource(all), {"s_nationkey"},
                                     {{AggFn::kSum, "revenue", "revenue"}},
                                     stats);
  Relation nations =
      ScanAll(coord_db.table("nation"), {"n_nationkey", "n_name"}, stats);
  Relation named =
      JoinGather(nations, {"n_nationkey"}, {"n_name"}, agg, {"s_nationkey"},
                 {"revenue"}, JoinKind::kInner, stats);
  return exec::SortRelation(named, {{"revenue", false}}, stats);
}

Relation PartialQ6(const Database& db, QueryStats* stats) {
  const int32_t lo = ParseDate("1994-01-01");
  Relation r = ScanGather(
      db.table("lineitem"),
      {Predicate::BetweenDate("l_shipdate", lo, DateAddMonths(lo, 12) - 1),
       Predicate::BetweenF64("l_discount", 0.05, 0.07),
       Predicate::CmpF64("l_quantity", CmpOp::kLt, 24)},
      {"l_extendedprice", "l_discount"}, stats);
  auto product =
      exec::MulF64(r.column("l_extendedprice"), r.column("l_discount"),
                   stats);
  return ScalarF64("revenue", exec::SumF64(*product, stats));
}

Relation MergeScalarSum(const std::string& name,
                        std::vector<Relation> partials, QueryStats* stats) {
  Relation all = exec::ConcatRelations(std::move(partials), stats);
  return ScalarF64(name, exec::SumF64(all.column(name), stats));
}

Relation PartialQ14(const Database& db, QueryStats* stats) {
  const int32_t lo = ParseDate("1995-09-01");
  Relation line = ScanGather(
      db.table("lineitem"),
      {Predicate::BetweenDate("l_shipdate", lo, DateAddMonths(lo, 1) - 1)},
      {"l_partkey", "l_extendedprice", "l_discount"}, stats);
  Relation parts =
      ScanAll(db.table("part"), {"p_partkey", "p_type"}, stats);
  Relation j = JoinGather(parts, {"p_partkey"}, {"p_type"}, line,
                          {"l_partkey"}, {"l_extendedprice", "l_discount"},
                          JoinKind::kInner, stats);
  AddRevenue(&j, "rev", stats);
  const auto promo = exec::StrMatchMask(
      j.column("p_type"),
      [](std::string_view s) { return s.substr(0, 5) == "PROMO"; }, 3.0,
      stats);
  auto promo_rev = exec::MaskedF64(j.column("rev"), promo, stats);
  Relation out;
  auto pcol = std::make_unique<storage::Column>(storage::DataType::kFloat64);
  pcol->AppendFloat64(exec::SumF64(*promo_rev, stats));
  auto tcol = std::make_unique<storage::Column>(storage::DataType::kFloat64);
  tcol->AppendFloat64(exec::SumF64(j.column("rev"), stats));
  out.AddColumn("promo", std::move(pcol));
  out.AddColumn("total", std::move(tcol));
  return out;
}

Relation MergeQ14(std::vector<Relation> partials, QueryStats* stats) {
  Relation all = exec::ConcatRelations(std::move(partials), stats);
  const double promo = exec::SumF64(all.column("promo"), stats);
  const double total = exec::SumF64(all.column("total"), stats);
  return ScalarF64("promo_revenue", total == 0 ? 0 : 100.0 * promo / total);
}

Relation PartialQ19(const Database& db, QueryStats* stats) {
  // Same plan as the single-node Q19; the scalar revenue merges by sum.
  exec::Relation r = tpch::RunQuery(19, db, stats);
  return r;
}

}  // namespace

Relation RunPartial(int q, const Database& node_db, QueryStats* stats) {
  obs::OpScope scope("RunPartial", 0);
  Relation r = [&]() -> Relation {
    switch (q) {
      case 1: return PartialQ1(node_db, stats);
      case 3: return PartialQ3(node_db, stats);
      case 4: return PartialQ4(node_db, stats);
      case 5: return PartialQ5(node_db, stats);
      case 6: return PartialQ6(node_db, stats);
      case 13: return tpch::RunQuery(13, node_db, stats);  // single node
      case 14: return PartialQ14(node_db, stats);
      case 19: return PartialQ19(node_db, stats);
      default:
        WIMPI_CHECK(false) << "Q" << q
                           << " is not in the distributed subset";
        return Relation();
    }
  }();
  scope.set_rows_out(r.num_rows());
  return r;
}

Relation MergePartials(int q, const Database& coord_db,
                       std::vector<Relation> partials, QueryStats* stats) {
  int64_t rows_in = 0;
  for (const Relation& p : partials) rows_in += p.num_rows();
  obs::OpScope scope("MergePartials", rows_in);
  Relation r = [&]() -> Relation {
    switch (q) {
      case 1: return MergeQ1(std::move(partials), stats);
      case 3: return MergeQ3(std::move(partials), stats);
      case 4: return MergeQ4(std::move(partials), stats);
      case 5: return MergeQ5(coord_db, std::move(partials), stats);
      case 6: return MergeScalarSum("revenue", std::move(partials), stats);
      case 13:
        WIMPI_CHECK_EQ(partials.size(), 1u);
        return std::move(partials[0]);
      case 14: return MergeQ14(std::move(partials), stats);
      case 19: return MergeScalarSum("revenue", std::move(partials), stats);
      default:
        WIMPI_CHECK(false) << "Q" << q
                           << " is not in the distributed subset";
        return Relation();
    }
  }();
  scope.set_rows_out(r.num_rows());
  return r;
}

}  // namespace wimpi::cluster
