#include "cluster/fault.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "common/rng.h"

namespace wimpi::cluster {

namespace {

std::string Fmt1(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kSlowdown:
      return "slowdown";
    case FaultKind::kNetworkStall:
      return "net-stall";
    case FaultKind::kTransient:
      return "transient";
  }
  return "unknown";
}

const NodeFault* FaultPlan::FaultFor(int node) const {
  for (const NodeFault& f : faults) {
    if (f.node == node) return &f;
  }
  return nullptr;
}

FaultPlan FaultPlan::Generate(uint64_t seed, int num_nodes) {
  WIMPI_CHECK_GT(num_nodes, 0);
  FaultPlan plan;
  plan.seed = seed;
  Rng rng(seed);

  // 1..max(1, num_nodes/4) faulted nodes: a handful on the paper's 24-node
  // fleet, never the whole cluster.
  const int max_faults = std::max(1, num_nodes / 4);
  const int n_faults = static_cast<int>(rng.Uniform(1, max_faults));

  // Distinct victim nodes, drawn without replacement.
  std::vector<int> victims;
  victims.reserve(n_faults);
  while (static_cast<int>(victims.size()) < n_faults) {
    const int node = static_cast<int>(rng.Uniform(0, num_nodes - 1));
    if (std::find(victims.begin(), victims.end(), node) == victims.end()) {
      victims.push_back(node);
    }
  }

  int crashes = 0;
  for (const int node : victims) {
    NodeFault f;
    f.node = node;
    FaultKind kind = static_cast<FaultKind>(rng.Uniform(0, 3));
    // A generated plan must stay recoverable: leave at least one node that
    // never crashes.
    if (kind == FaultKind::kCrash && crashes + 1 >= num_nodes) {
      kind = FaultKind::kTransient;
    }
    f.kind = kind;
    switch (kind) {
      case FaultKind::kCrash:
        ++crashes;
        break;
      case FaultKind::kSlowdown:
        // 2x..16x: from mild throttling to a nearly wedged card.
        f.slowdown = 2.0 + 14.0 * rng.NextDouble();
        break;
      case FaultKind::kNetworkStall:
        // 50 ms .. 2 s on the shared USB bus, clearing after 1-2 attempts.
        f.stall_seconds = 0.05 + 1.95 * rng.NextDouble();
        f.fail_attempts = static_cast<int>(rng.Uniform(1, 2));
        break;
      case FaultKind::kTransient:
        f.fail_attempts = static_cast<int>(rng.Uniform(1, 3));
        break;
    }
    plan.faults.push_back(f);
  }
  // Canonical node order so reports and artifacts are stable regardless of
  // draw order.
  std::sort(plan.faults.begin(), plan.faults.end(),
            [](const NodeFault& a, const NodeFault& b) {
              return a.node < b.node;
            });
  return plan;
}

FaultPlan FaultPlan::Crash(std::vector<int> nodes) {
  FaultPlan plan;
  for (const int n : nodes) {
    NodeFault f;
    f.node = n;
    f.kind = FaultKind::kCrash;
    plan.faults.push_back(f);
  }
  return plan;
}

FaultPlan FaultPlan::Slowdown(int node, double factor) {
  FaultPlan plan;
  NodeFault f;
  f.node = node;
  f.kind = FaultKind::kSlowdown;
  f.slowdown = factor;
  plan.faults.push_back(f);
  return plan;
}

FaultPlan FaultPlan::NetworkStall(int node, double stall_seconds,
                                  int fail_attempts) {
  FaultPlan plan;
  NodeFault f;
  f.node = node;
  f.kind = FaultKind::kNetworkStall;
  f.stall_seconds = stall_seconds;
  f.fail_attempts = fail_attempts;
  plan.faults.push_back(f);
  return plan;
}

FaultPlan FaultPlan::Transient(int node, int fail_attempts) {
  FaultPlan plan;
  NodeFault f;
  f.node = node;
  f.kind = FaultKind::kTransient;
  f.fail_attempts = fail_attempts;
  plan.faults.push_back(f);
  return plan;
}

std::string FaultPlan::ToString() const {
  if (faults.empty()) return "no faults";
  std::string out;
  for (const NodeFault& f : faults) {
    if (!out.empty()) out += "; ";
    out += "node " + std::to_string(f.node) + ": " + FaultKindName(f.kind);
    switch (f.kind) {
      case FaultKind::kCrash:
        break;
      case FaultKind::kSlowdown:
        out += " x" + Fmt1(f.slowdown);
        break;
      case FaultKind::kNetworkStall:
        out += " " + Fmt1(f.stall_seconds * 1e3) + "ms x" +
               std::to_string(f.fail_attempts);
        break;
      case FaultKind::kTransient:
        out += " x" + std::to_string(f.fail_attempts);
        break;
    }
  }
  return out;
}

ResizePlan ResizePlan::Generate(uint64_t seed, int num_nodes) {
  WIMPI_CHECK_GT(num_nodes, 0);
  ResizePlan plan;
  plan.seed = seed;
  // Decorrelate from FaultPlan::Generate(seed, ...) so chaos sweeps that
  // reuse one seed for both plans do not mirror each other's draws.
  Rng rng(seed ^ 0x7e57ab1e5eedULL);
  const int n_events = static_cast<int>(rng.Uniform(1, 2));
  const int max_leaves = num_nodes / 4;
  int leaves = 0;
  int next_join_id = num_nodes;  // joins get ids past the initial pool
  for (int i = 0; i < n_events; ++i) {
    ResizeEvent e;
    e.at_fraction = 0.1 + 0.7 * rng.NextDouble();
    const bool want_leave = rng.Bernoulli(0.5);
    if (want_leave && leaves < max_leaves) {
      e.join = false;
      e.node = static_cast<int>(rng.Uniform(0, num_nodes - 1));
      // One leave per node: retarget duplicates to a join instead.
      bool dup = false;
      for (const ResizeEvent& prev : plan.events) {
        if (!prev.join && prev.node == e.node) dup = true;
      }
      if (dup) {
        e.join = true;
        e.node = next_join_id++;
      } else {
        ++leaves;
      }
    } else {
      e.join = true;
      e.node = next_join_id++;
    }
    plan.events.push_back(e);
  }
  // Canonical fire order regardless of draw order.
  std::sort(plan.events.begin(), plan.events.end(),
            [](const ResizeEvent& a, const ResizeEvent& b) {
              if (a.at_fraction != b.at_fraction) {
                return a.at_fraction < b.at_fraction;
              }
              return a.node < b.node;
            });
  return plan;
}

ResizePlan ResizePlan::Join(double at_fraction) {
  ResizePlan plan;
  ResizeEvent e;
  e.at_fraction = at_fraction;
  e.node = -1;  // assigned by the driver (first free id past the pool)
  e.join = true;
  plan.events.push_back(e);
  return plan;
}

ResizePlan ResizePlan::Leave(int node, double at_fraction) {
  ResizePlan plan;
  ResizeEvent e;
  e.at_fraction = at_fraction;
  e.node = node;
  e.join = false;
  plan.events.push_back(e);
  return plan;
}

std::string ResizePlan::ToString() const {
  if (events.empty()) return "no resize";
  std::string out;
  for (const ResizeEvent& e : events) {
    if (!out.empty()) out += "; ";
    if (e.join) {
      out += "join@" + Fmt1(e.at_fraction);
    } else {
      out += "node " + std::to_string(e.node) + " leaves@" +
             Fmt1(e.at_fraction);
    }
  }
  return out;
}

double DeterministicJitter(uint64_t seed, uint64_t a, uint64_t b) {
  // splitmix64 over the mixed key (the same finalizer Rng::Seed uses).
  uint64_t x = seed * 0x9e3779b97f4a7c15ULL + a * 0xbf58476d1ce4e5b9ULL +
               b + 0x94d049bb133111ebULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace wimpi::cluster
