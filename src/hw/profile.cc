#include "hw/profile.h"

#include "common/logging.h"

namespace wimpi::hw {
namespace {

constexpr double kMiB = 1024.0 * 1024.0;
constexpr double kKiB = 1024.0;

std::vector<HardwareProfile> BuildProfiles() {
  std::vector<HardwareProfile> v;

  // --- On-Premises (dual-socket; one socket modeled for execution, the
  // MSRP analysis doubles the price per the paper) ---
  v.push_back({.name = "op-e5",
               .category = "On-Premises",
               .cpu = "Intel Xeon E5-2660 v2",
               .freq_ghz = 2.2,
               .cores = 10,
               .threads = 20,
               .llc_bytes = 25 * kMiB,
               .ipc = 1.00,  // Ivy Bridge reference point
               .db_ipc = 1.00,
               .div_ipc = 0.16,
               .mem_bw_single_gbps = 12,
               .mem_bw_all_gbps = 45,
               .mem_latency_ns = 90,
               .llc_latency_ns = 15,
               .msrp_usd = 1389,
               .sockets = 2,
               .tdp_watts = 95});
  v.push_back({.name = "op-gold",
               .category = "On-Premises",
               .cpu = "Intel Xeon Gold 6150",
               .freq_ghz = 2.7,
               .cores = 18,
               .threads = 36,
               .llc_bytes = 24.75 * kMiB,
               .ipc = 1.55,  // Skylake-SP
               .db_ipc = 1.15,
               .div_ipc = 0.22,
               .mem_bw_single_gbps = 18,
               .mem_bw_all_gbps = 105,
               .mem_latency_ns = 85,
               .llc_latency_ns = 18,
               .msrp_usd = 3358,
               .sockets = 2,
               .tdp_watts = 165});

  // --- Cloud (custom SKUs: no MSRP/TDP, hourly price only) ---
  v.push_back({.name = "c4.8xlarge",
               .category = "Cloud",
               .cpu = "Intel Xeon E5-2666 v3",
               .freq_ghz = 2.9,
               .cores = 9,
               .threads = 18,
               .llc_bytes = 25 * kMiB,
               .ipc = 1.25,  // Haswell
               .db_ipc = 1.05,
               .div_ipc = 0.18,
               .mem_bw_single_gbps = 13,
               .mem_bw_all_gbps = 55,
               .mem_latency_ns = 88,
               .llc_latency_ns = 16,
               .hourly_usd = 1.591});
  v.push_back({.name = "m4.10xlarge",
               .category = "Cloud",
               .cpu = "Intel Xeon E5-2676 v3",
               .freq_ghz = 2.4,
               .cores = 10,
               .threads = 20,
               .llc_bytes = 30 * kMiB,
               .ipc = 1.25,
               .db_ipc = 1.05,
               .div_ipc = 0.18,
               .mem_bw_single_gbps = 12,
               .mem_bw_all_gbps = 48,
               .mem_latency_ns = 90,
               .llc_latency_ns = 16,
               .hourly_usd = 2.00});
  v.push_back({.name = "m4.16xlarge",
               .category = "Cloud",
               .cpu = "Intel Xeon E5-2686 v4",
               .freq_ghz = 2.3,
               .cores = 16,
               .threads = 32,
               .llc_bytes = 45 * kMiB,
               .ipc = 1.30,  // Broadwell
               .db_ipc = 1.08,
               .div_ipc = 0.19,
               .mem_bw_single_gbps = 13,
               .mem_bw_all_gbps = 68,
               .mem_latency_ns = 90,
               .llc_latency_ns = 17,
               .hourly_usd = 3.20});
  v.push_back({.name = "z1d.metal",
               .category = "Cloud",
               .cpu = "Intel Xeon Platinum 8151",
               .freq_ghz = 3.4,  // sustained all-core turbo
               .cores = 12,
               .threads = 24,
               .llc_bytes = 24.75 * kMiB,
               .ipc = 1.55,  // Skylake-SP
               .db_ipc = 1.10,
               .div_ipc = 0.22,
               .mem_bw_single_gbps = 20,
               .mem_bw_all_gbps = 85,
               .mem_latency_ns = 85,
               .llc_latency_ns = 18,
               .hourly_usd = 4.464});
  v.push_back({.name = "m5.metal",
               .category = "Cloud",
               .cpu = "Intel Xeon Platinum 8259CL",
               .freq_ghz = 2.5,
               .cores = 24,
               .threads = 48,
               .llc_bytes = 35.75 * kMiB,
               .ipc = 1.55,  // Cascade Lake
               .db_ipc = 1.15,
               .div_ipc = 0.22,
               .mem_bw_single_gbps = 18,
               .mem_bw_all_gbps = 150,
               .mem_latency_ns = 85,
               .llc_latency_ns = 18,
               .hourly_usd = 4.608});
  v.push_back({.name = "a1.metal",
               .category = "Cloud",
               .cpu = "AWS Graviton",
               .freq_ghz = 2.3,
               .cores = 16,
               .threads = 16,  // no SMT
               .llc_bytes = 8 * kMiB,
               .ipc = 0.85,  // Cortex-A72
               .db_ipc = 0.80,
               .div_ipc = 0.22,
               .mem_bw_single_gbps = 10,
               .mem_bw_all_gbps = 45,
               .mem_latency_ns = 110,
               .llc_latency_ns = 25,
               .hourly_usd = 0.408});
  v.push_back({.name = "c6g.metal",
               .category = "Cloud",
               .cpu = "AWS Graviton2",
               .freq_ghz = 2.5,
               .cores = 64,
               .threads = 64,
               .llc_bytes = 32 * kMiB,
               .ipc = 1.30,  // Neoverse N1
               .db_ipc = 1.10,
               .div_ipc = 0.28,
               .mem_bw_single_gbps = 22,
               .mem_bw_all_gbps = 218,
               .mem_latency_ns = 95,
               .llc_latency_ns = 20,
               .hourly_usd = 2.176});

  // --- SBC ---
  v.push_back({.name = "pi3b+",
               .category = "SBC",
               .cpu = "ARM Cortex-A53",
               .freq_ghz = 1.4,
               .cores = 4,
               .threads = 4,
               .llc_bytes = 512 * kKiB,
               .ipc = 0.60,  // in-order A53
               // The paper's central observation: on branchy, cache-missy
               // interpreter code the simple in-order A53 loses far less
               // to the big cores than dense kernels suggest.
               .db_ipc = 0.85,
               .div_ipc = 0.25,
               .mem_bw_single_gbps = 2.0,
               .mem_bw_all_gbps = 2.2,  // single LPDDR2 channel
               .mem_latency_ns = 140,
               .llc_latency_ns = 30,
               .msrp_usd = 35,
               .sockets = 1,
               .hourly_usd = 0.0004,  // 5.1 W x US average $/kWh
               .tdp_watts = 5.1});    // whole-board max draw

  return v;
}

}  // namespace

const std::vector<HardwareProfile>& AllProfiles() {
  static const std::vector<HardwareProfile>& profiles =
      *new std::vector<HardwareProfile>(BuildProfiles());
  return profiles;
}

const HardwareProfile& ProfileByName(const std::string& name) {
  for (const auto& p : AllProfiles()) {
    if (p.name == name) return p;
  }
  WIMPI_CHECK(false) << "unknown hardware profile: " << name;
  return AllProfiles()[0];
}

const HardwareProfile& PiProfile() { return ProfileByName("pi3b+"); }

std::vector<const HardwareProfile*> ServerProfiles() {
  std::vector<const HardwareProfile*> out;
  for (const auto& p : AllProfiles()) {
    if (p.category != "SBC") out.push_back(&p);
  }
  return out;
}

std::vector<const HardwareProfile*> OnPremProfiles() {
  std::vector<const HardwareProfile*> out;
  for (const auto& p : AllProfiles()) {
    if (p.category == "On-Premises") out.push_back(&p);
  }
  return out;
}

std::vector<const HardwareProfile*> CloudProfiles() {
  std::vector<const HardwareProfile*> out;
  for (const auto& p : AllProfiles()) {
    if (p.category == "Cloud") out.push_back(&p);
  }
  return out;
}

}  // namespace wimpi::hw
