#ifndef WIMPI_HW_COST_MODEL_H_
#define WIMPI_HW_COST_MODEL_H_

#include "exec/counters.h"
#include "hw/profile.h"

namespace wimpi::hw {

// Tunable calibration constants. Defaults are calibrated against the
// paper's Table II (TPC-H SF 1 runtimes); see DESIGN.md §5 for the anchors.
struct CostModelOptions {
  // Cycles of real work per abstract work unit (operators count roughly one
  // unit per simple per-tuple operation, which costs a few instructions).
  double cycles_per_op = 2.6;
  // Multicore scaling of query work follows a sublinear law
  //   scale(p) = 1 + parallel_efficiency * (p - 1)^scaling_exponent,
  // matching the poor scaling MonetDB shows on sub-second queries in the
  // paper (op-e5's Table II times imply only ~3-5x from 20 threads).
  // Independent kernels (the CPU microbenchmarks) scale nearly linearly
  // and use their own law in micro::MicrobenchModel.
  double parallel_efficiency = 0.9;
  double scaling_exponent = 0.62;
  // Extra throughput from SMT when threads > cores.
  double smt_bonus = 1.15;
  // Overlapped outstanding random accesses per core (MLP).
  double mlp = 4.0;
  // MonetDB-style engines stop scaling beyond this many threads on
  // sub-second queries (observable in the paper's c6g.metal Table II
  // numbers, which do not reflect 64 cores).
  int max_db_threads = 24;
  // Fixed per-query work (optimizer, plan setup, result delivery) in
  // abstract ops, executed single-threaded. Reproduces the runtime floor
  // visible in Table II (e.g. Q2 at 8 ms on every Xeon).
  double query_overhead_ops = 8e6;
  // Fraction of peak (sysbench-style read-only) bandwidth that mixed
  // read/write operator traffic actually achieves.
  double stream_efficiency = 0.45;
  // Sequential bandwidth multiplier when an operator's stream fits in LLC.
  double llc_bw_multiplier = 4.0;
  // Fraction of LLC usable for streaming reuse.
  double llc_usable_fraction = 0.8;
};

// Converts the abstract work counters recorded during a (host) query
// execution into simulated wall-clock seconds on a hardware profile.
//
// Per-operator roofline: an operator costs
//   max(compute_time, sequential_memory_time) + random_access_time,
// where compute scales with cores (Amdahl on the operator's
// parallel_fraction), sequential traffic is bounded by the profile's
// aggregate bandwidth (or LLC bandwidth when the stream fits), and random
// accesses pay LLC or memory latency depending on the structure size,
// overlapped MLP-wide per core. Operator times sum: the engine is
// column-at-a-time (full materialization), so operators execute serially,
// exactly like the MonetDB instance the paper measured.
class CostModel {
 public:
  explicit CostModel(CostModelOptions opts = {}) : opts_(opts) {}

  const CostModelOptions& options() const { return opts_; }

  // The three roofs one operator sits under (OpSeconds returns
  // max(compute_s, seq_s) + rand_s). Exposed so callers can ask not just
  // how long an operator takes but *which wall it hits* — the modeled side
  // of the timeline's live bound-classification.
  struct OpRoofs {
    double compute_s = 0;
    double seq_s = 0;
    double rand_s = 0;
    // Bandwidth-bound: the sequential-memory roof dominates compute.
    bool BandwidthBound() const { return seq_s >= compute_s; }
  };
  OpRoofs OpRoofline(const HardwareProfile& hw, const exec::OpStats& op,
                     int threads = -1) const;

  // Simulated seconds for one operator on `hw` using `threads` threads
  // (threads <= 0 means all available).
  double OpSeconds(const HardwareProfile& hw, const exec::OpStats& op,
                   int threads = -1) const;

  // Seconds-weighted fraction of a query's modeled operator time spent
  // under the bandwidth roof. > 0.5 means the query as a whole is modeled
  // bandwidth-bound on `hw` (the paper's memory-wall claim, per query).
  double BandwidthBoundFraction(const HardwareProfile& hw,
                                const exec::QueryStats& s,
                                int threads = -1) const;

  // Simulated seconds for a whole query (sums operators, adds the fixed
  // per-query overhead).
  double QuerySeconds(const HardwareProfile& hw, const exec::QueryStats& s,
                      int threads = -1) const;

  // Like QuerySeconds but without the fixed overhead; used by the cluster
  // driver, which adds one overhead per distributed query, not per node.
  double WorkSeconds(const HardwareProfile& hw, const exec::QueryStats& s,
                     int threads = -1) const;

  // Effective parallel speedup of `hw` at `threads` threads.
  double ComputeScale(const HardwareProfile& hw, int threads) const;

 private:
  CostModelOptions opts_;
};

}  // namespace wimpi::hw

#endif  // WIMPI_HW_COST_MODEL_H_
