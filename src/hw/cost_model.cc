#include "hw/cost_model.h"

#include <algorithm>
#include <cmath>

namespace wimpi::hw {

double CostModel::ComputeScale(const HardwareProfile& hw, int threads) const {
  if (threads <= 0) threads = hw.threads;
  threads = std::min({threads, hw.threads, opts_.max_db_threads});
  const int phys = std::min(threads, hw.cores);
  double scale =
      1.0 + opts_.parallel_efficiency *
                std::pow(static_cast<double>(phys - 1),
                         opts_.scaling_exponent);
  if (threads > hw.cores) {
    // SMT adds a fixed throughput bonus, not linear scaling.
    scale *= opts_.smt_bonus;
  }
  return scale;
}

CostModel::OpRoofs CostModel::OpRoofline(const HardwareProfile& hw,
                                         const exec::OpStats& op,
                                         int threads) const {
  if (threads <= 0) threads = hw.threads;
  const double scale = ComputeScale(hw, threads);
  const double par = std::clamp(op.parallel_fraction, 0.0, 1.0);
  const double amdahl_scale = 1.0 / ((1.0 - par) + par / scale);

  // Compute roof.
  const double single_rate = hw.DbSingleCoreRate() / opts_.cycles_per_op;
  const double compute_s = op.compute_ops / (single_rate * amdahl_scale);

  // Sequential-bandwidth roof: single-core bandwidth at one thread, the
  // aggregate otherwise; a stream that fits in LLC runs faster.
  double bw_gbps = (threads <= 1 || par == 0.0) ? hw.mem_bw_single_gbps
                                                : hw.mem_bw_all_gbps;
  bw_gbps *= opts_.stream_efficiency;
  if (op.seq_bytes > 0 &&
      op.seq_bytes <= hw.llc_bytes * opts_.llc_usable_fraction) {
    bw_gbps *= opts_.llc_bw_multiplier;
  }
  const double seq_s = op.seq_bytes / (bw_gbps * 1e9);

  // Random-access latency, overlapped across cores and MLP.
  double rand_s = 0;
  if (op.rand_count > 0) {
    const double lat_ns =
        op.rand_struct_bytes <= hw.llc_bytes * opts_.llc_usable_fraction
            ? hw.llc_latency_ns
            : hw.mem_latency_ns;
    const int cores_used =
        std::max(1, std::min(threads, hw.cores));
    const double effective_lanes =
        (par == 0.0 ? 1.0 : cores_used) * opts_.mlp;
    rand_s = op.rand_count * lat_ns * 1e-9 / effective_lanes;
  }

  return {compute_s, seq_s, rand_s};
}

double CostModel::OpSeconds(const HardwareProfile& hw,
                            const exec::OpStats& op, int threads) const {
  const OpRoofs roofs = OpRoofline(hw, op, threads);
  return std::max(roofs.compute_s, roofs.seq_s) + roofs.rand_s;
}

double CostModel::BandwidthBoundFraction(const HardwareProfile& hw,
                                         const exec::QueryStats& s,
                                         int threads) const {
  double total = 0;
  double bandwidth = 0;
  for (const auto& op : s.ops) {
    const OpRoofs roofs = OpRoofline(hw, op, threads);
    const double sec = std::max(roofs.compute_s, roofs.seq_s) + roofs.rand_s;
    total += sec;
    if (roofs.BandwidthBound()) bandwidth += sec;
  }
  return total > 0 ? bandwidth / total : 0;
}

double CostModel::WorkSeconds(const HardwareProfile& hw,
                              const exec::QueryStats& s, int threads) const {
  double total = 0;
  for (const auto& op : s.ops) total += OpSeconds(hw, op, threads);
  return total;
}

double CostModel::QuerySeconds(const HardwareProfile& hw,
                               const exec::QueryStats& s,
                               int threads) const {
  const double overhead_s =
      opts_.query_overhead_ops / (hw.DbSingleCoreRate() / opts_.cycles_per_op);
  return overhead_s + WorkSeconds(hw, s, threads);
}

}  // namespace wimpi::hw
