#ifndef WIMPI_HW_HOST_ANCHOR_H_
#define WIMPI_HW_HOST_ANCHOR_H_

#include <functional>
#include <vector>

#include "hw/cost_model.h"
#include "hw/profile.h"

namespace wimpi::obs {
class MetricsRegistry;
}  // namespace wimpi::obs

namespace wimpi::hw {

// Model-vs-measured hook: the cost model's multicore scaling law is
// calibrated against the paper's published tables, but the engine can now
// actually run on N threads — these helpers compare the modeled speedup
// curve against speedups measured on the build host, giving the benches a
// grounded all-core anchor instead of a purely synthetic one.

// Pseudo-profile for the build host. Only the thread topology is known
// portably (hardware_concurrency; physical cores assumed equal), which is
// all ComputeScale consumes — the other fields keep their defaults and
// must not be used for absolute-time predictions.
HardwareProfile HostProfile();

// One thread-count sample of a measured-vs-modeled scaling curve.
struct ScalingPoint {
  int threads = 1;
  double measured_seconds = 0;
  double measured_speedup = 1;  // seconds(1 thread) / seconds(threads)
  double modeled_speedup = 1;   // CostModel::ComputeScale(host, threads)
};

// Runs `measure_seconds` (wall seconds of some fixed workload at a given
// thread count) at each entry of `thread_counts` and pairs the measured
// speedups with the cost model's prediction for `host`. The first entry
// should be 1 — it is the baseline; if absent, the smallest measured
// thread count is used as the baseline instead.
std::vector<ScalingPoint> AnchorScaling(
    const CostModel& model, const HardwareProfile& host,
    const std::vector<int>& thread_counts,
    const std::function<double(int)>& measure_seconds);

// Publishes the build host's fingerprint as an info gauge
// (host.info{cpu="...",threads="..."} = 1) so metrics scraped from
// different hosts are distinguishable. The cpu label uses the
// /proc/cpuinfo model name where readable, else HostProfile().cpu.
// nullptr = MetricsRegistry::Global().
void PublishHostInfo(obs::MetricsRegistry* registry = nullptr);

}  // namespace wimpi::hw

#endif  // WIMPI_HW_HOST_ANCHOR_H_
