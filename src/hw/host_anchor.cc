#include "hw/host_anchor.h"

#include <algorithm>
#include <thread>

namespace wimpi::hw {

HardwareProfile HostProfile() {
  HardwareProfile p;
  p.name = "host";
  p.category = "Host";
  p.cpu = "build host";
  const int hc =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  p.cores = hc;
  p.threads = hc;
  return p;
}

std::vector<ScalingPoint> AnchorScaling(
    const CostModel& model, const HardwareProfile& host,
    const std::vector<int>& thread_counts,
    const std::function<double(int)>& measure_seconds) {
  std::vector<ScalingPoint> points;
  points.reserve(thread_counts.size());
  double base_seconds = 0;
  double base_scale = 1;
  for (const int t : thread_counts) {
    ScalingPoint pt;
    pt.threads = t;
    pt.measured_seconds = measure_seconds(t);
    if (points.empty()) {
      base_seconds = pt.measured_seconds;
      base_scale = model.ComputeScale(host, t);
    }
    pt.measured_speedup = pt.measured_seconds > 0
                              ? base_seconds / pt.measured_seconds
                              : 0;
    pt.modeled_speedup = model.ComputeScale(host, t) / base_scale;
    points.push_back(pt);
  }
  return points;
}

}  // namespace wimpi::hw
