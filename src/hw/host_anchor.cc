#include "hw/host_anchor.h"

#include <algorithm>
#include <fstream>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace wimpi::hw {

namespace {

// Best-effort CPU model string: /proc/cpuinfo "model name" on Linux; the
// pseudo-profile's generic label otherwise.
std::string CpuModelName() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.compare(0, 10, "model name") != 0) continue;
    size_t start = colon + 1;
    while (start < line.size() && line[start] == ' ') ++start;
    if (start < line.size()) return line.substr(start);
  }
  return HostProfile().cpu;
}

}  // namespace

void PublishHostInfo(obs::MetricsRegistry* registry) {
  obs::MetricsRegistry& reg =
      registry != nullptr ? *registry : obs::MetricsRegistry::Global();
  const HardwareProfile host = HostProfile();
  reg.SetInfo("host.info", {{"cpu", CpuModelName()},
                            {"threads", std::to_string(host.threads)}});
}

HardwareProfile HostProfile() {
  HardwareProfile p;
  p.name = "host";
  p.category = "Host";
  p.cpu = "build host";
  const int hc =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  p.cores = hc;
  p.threads = hc;
  return p;
}

std::vector<ScalingPoint> AnchorScaling(
    const CostModel& model, const HardwareProfile& host,
    const std::vector<int>& thread_counts,
    const std::function<double(int)>& measure_seconds) {
  std::vector<ScalingPoint> points;
  points.reserve(thread_counts.size());
  double base_seconds = 0;
  double base_scale = 1;
  for (const int t : thread_counts) {
    ScalingPoint pt;
    pt.threads = t;
    pt.measured_seconds = measure_seconds(t);
    if (points.empty()) {
      base_seconds = pt.measured_seconds;
      base_scale = model.ComputeScale(host, t);
    }
    pt.measured_speedup = pt.measured_seconds > 0
                              ? base_seconds / pt.measured_seconds
                              : 0;
    pt.modeled_speedup = model.ComputeScale(host, t) / base_scale;
    points.push_back(pt);
  }
  return points;
}

}  // namespace wimpi::hw
