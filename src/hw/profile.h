#ifndef WIMPI_HW_PROFILE_H_
#define WIMPI_HW_PROFILE_H_

#include <string>
#include <vector>

namespace wimpi::hw {

// One hardware comparison point from the paper's Table I, extended with the
// microarchitectural parameters the cost model needs. The paper-visible
// fields (frequency, cores, LLC, MSRP, hourly, TDP) are transcribed from
// Table I; the calibration fields (ipc, memory bandwidths, latencies) are
// set so that the paper's own microbenchmark ratios hold (DESIGN.md §5).
struct HardwareProfile {
  std::string name;      // e.g. "op-e5"
  std::string category;  // "On-Premises" | "Cloud" | "SBC"
  std::string cpu;       // e.g. "Intel Xeon E5-2660 v2"

  double freq_ghz = 1.0;
  int cores = 1;        // physical cores
  int threads = 1;      // scheduled threads (2x cores when HT helps)
  double llc_bytes = 0;

  // Abstract work units retired per cycle per core in dense kernel code
  // (Whetstone/Dhrystone). Calibrated so that single-core compute ratios
  // match the paper's Figure 2 (Pi 2-3x below op-e5, 5-6x below
  // op-gold/m5, z1d best).
  double ipc = 1.0;

  // Work units per cycle in OLAP interpreter code (branchy, cache-missy):
  // newer wide cores gain far less here than in dense kernels, which is
  // why the paper's Table II shows op-gold only ~2x ahead of op-e5 while
  // Whetstone shows much more.
  double db_ipc = 1.0;

  // Integer divisions per cycle (throughput). Hardware dividers barely
  // improved across these generations, which is exactly why sysbench's
  // prime loop puts the Pi "nearly identical" to op-e5 (paper §II-C1).
  double div_ipc = 0.2;

  double mem_bw_single_gbps = 10;  // one core, sequential
  double mem_bw_all_gbps = 40;     // all cores, sequential
  double mem_latency_ns = 90;      // random access, memory resident
  double llc_latency_ns = 15;      // random access, LLC resident

  // Fraction of achievable mixed read/write bandwidth above which the
  // timeline sampler's roofline classification counts an interval as
  // bandwidth-saturated (obs/timeline/roofline.h). 0.6 is the knee of a
  // typical closed-loop stream curve: beyond it, extra threads add queuing
  // latency, not throughput.
  double bw_saturation_frac = 0.6;

  // Achievable mixed read/write sequential bandwidth with every core
  // streaming, and the saturation threshold derived from it. The 0.45
  // stream efficiency matches CostModelOptions::stream_efficiency: both
  // describe the same gap between sysbench-style peak and operator traffic.
  double AchievableBwGbps(double stream_efficiency = 0.45) const {
    return mem_bw_all_gbps * stream_efficiency;
  }
  double SaturationGbps(double stream_efficiency = 0.45) const {
    return AchievableBwGbps(stream_efficiency) * bw_saturation_frac;
  }

  // Economics; < 0 means "not public", matching the '-' cells in Table I.
  double msrp_usd = -1;   // per-socket CPU MSRP
  int sockets = 1;        // on-prem machines are dual socket
  double hourly_usd = -1;
  double tdp_watts = -1;  // SBC entry holds whole-board max draw

  // Single-thread work rates in units/second.
  double SingleCoreRate() const { return freq_ghz * 1e9 * ipc; }
  double DbSingleCoreRate() const { return freq_ghz * 1e9 * db_ipc; }
};

// All ten comparison points, in Table I order
// (op-e5, op-gold, c4.8xlarge, m4.10xlarge, m4.16xlarge, z1d.metal,
//  m5.metal, a1.metal, c6g.metal, pi3b+).
const std::vector<HardwareProfile>& AllProfiles();

// Lookup by name; CHECK-fails if unknown.
const HardwareProfile& ProfileByName(const std::string& name);

// The Raspberry Pi 3B+ profile.
const HardwareProfile& PiProfile();

// The nine server profiles (everything but the Pi).
std::vector<const HardwareProfile*> ServerProfiles();

// The two on-premises profiles (MSRP/TDP analyses).
std::vector<const HardwareProfile*> OnPremProfiles();

// The seven cloud profiles (hourly analysis).
std::vector<const HardwareProfile*> CloudProfiles();

}  // namespace wimpi::hw

#endif  // WIMPI_HW_PROFILE_H_
