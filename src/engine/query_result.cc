#include "engine/query_result.h"

#include <cstdio>

#include "common/date.h"

namespace wimpi::engine {

std::string FormatRow(const exec::Relation& rel, int64_t row,
                      int double_digits) {
  std::string out;
  for (int c = 0; c < rel.num_columns(); ++c) {
    if (c > 0) out += '|';
    const auto& col = rel.column(c);
    char buf[64];
    switch (col.type()) {
      case storage::DataType::kInt32:
        std::snprintf(buf, sizeof(buf), "%d", col.I32Data()[row]);
        out += buf;
        break;
      case storage::DataType::kInt64:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(col.I64Data()[row]));
        out += buf;
        break;
      case storage::DataType::kFloat64:
        std::snprintf(buf, sizeof(buf), "%.*f", double_digits,
                      col.F64Data()[row]);
        out += buf;
        break;
      case storage::DataType::kDate:
        out += FormatDate(col.I32Data()[row]);
        break;
      case storage::DataType::kString:
        out += std::string(col.StringAt(row));
        break;
    }
  }
  return out;
}

std::vector<std::string> FormatRelation(const exec::Relation& rel,
                                        int double_digits) {
  std::vector<std::string> rows;
  rows.reserve(rel.num_rows());
  for (int64_t r = 0; r < rel.num_rows(); ++r) {
    rows.push_back(FormatRow(rel, r, double_digits));
  }
  return rows;
}

}  // namespace wimpi::engine
