#ifndef WIMPI_ENGINE_EXECUTOR_H_
#define WIMPI_ENGINE_EXECUTOR_H_

#include <functional>
#include <string>
#include <utility>

#include "exec/counters.h"
#include "exec/exec_options.h"
#include "exec/relation.h"
#include "obs/profiler.h"

namespace wimpi::engine {

// Engine entry point for running query plans under a chosen degree of
// parallelism. The executor installs its ExecOptions for the duration of
// each plan (RAII), so operator-library calls inside the plan pick up the
// morsel-parallel paths; with the default options (one thread) every plan
// runs exactly as the single-threaded engine always has.
//
// Since the pipeline/executor split, the executor is a thin wrapper over
// the pipeline path: it only sets options, and every parallel phase a plan
// runs goes through exec::RunMorsels/RunChunks as a parallel::PipelineSpec
// dispatched to the ambient PipelineScheduler (the default delegates to
// the global TaskScheduler). The same plans run unchanged under the
// concurrent query service (src/service), which swaps in a fair scheduler
// to interleave many queries' pipelines — answers stay bit-identical at a
// given (num_threads, morsel_rows), enforced by the 22-query equivalence
// tests in both modes.
//
// Stats stay race-free without atomics: worker threads never touch the
// QueryStats — each operator's parallel phase collects per-morsel partial
// counters and the calling thread folds them into one OpStats after the
// morsels join, so `stats` sees the same single-stream of Add() calls as
// sequential execution.
class Executor {
 public:
  explicit Executor(exec::ExecOptions opts = {}) : opts_(opts) {}

  const exec::ExecOptions& options() const { return opts_; }
  void set_num_threads(int n) { opts_.num_threads = n; }
  void set_morsel_rows(int64_t rows) { opts_.morsel_rows = rows; }
  // Installs a cardinality estimator (typically a stats::StatsRegistry) so
  // operators record predicted output rows in OpStats.est_rows next to the
  // actuals. Observational only: answers are bit-identical either way. The
  // estimator must outlive every plan run under these options.
  void set_cardinality_estimator(const exec::CardinalityEstimator* est) {
    opts_.cardinality_estimator = est;
  }
  // Allows a registry with EnableAutoCollect to build missing table stats
  // lazily from a stride sample on first use (see ExecOptions).
  void set_collect_scan_stats(bool on) { opts_.collect_scan_stats = on; }

  // Runs `plan` (any callable taking QueryStats* — typically returning a
  // Relation) with this executor's options installed, restoring the
  // previous ambient options afterwards.
  template <typename Plan>
  auto Run(const Plan& plan, exec::QueryStats* stats = nullptr) const {
    exec::ScopedExecOptions scope(opts_);
    return plan(stats);
  }

  // Like Run, but with profiling installed for the duration of the plan:
  // `profile` receives the EXPLAIN ANALYZE-style operator tree (and, per
  // `popts`, trace spans land in obs::TraceSink::Global() and pool metrics
  // in obs::MetricsRegistry::Global()). The plan's results are identical to
  // an unprofiled Run — instrumentation only reads clocks, it never alters
  // execution.
  template <typename Plan>
  auto RunProfiled(const Plan& plan, const obs::ProfileOptions& popts,
                   obs::QueryProfile* profile,
                   exec::QueryStats* stats = nullptr,
                   std::string label = "query") const {
    exec::ScopedExecOptions scope(opts_);
    obs::ScopedProfiling prof(popts, profile, std::move(label));
    return plan(stats);
  }

 private:
  exec::ExecOptions opts_;
};

}  // namespace wimpi::engine

#endif  // WIMPI_ENGINE_EXECUTOR_H_
