#ifndef WIMPI_ENGINE_QUERY_RESULT_H_
#define WIMPI_ENGINE_QUERY_RESULT_H_

#include <string>
#include <vector>

#include "exec/relation.h"

namespace wimpi::engine {

// Renders a relation row as a '|'-separated string with doubles rounded to
// `double_digits` decimals; used by tests to compare engine results against
// reference implementations and by examples to print output.
std::string FormatRow(const exec::Relation& rel, int64_t row,
                      int double_digits = 2);

// All rows, one string each.
std::vector<std::string> FormatRelation(const exec::Relation& rel,
                                        int double_digits = 2);

}  // namespace wimpi::engine

#endif  // WIMPI_ENGINE_QUERY_RESULT_H_
