#ifndef WIMPI_ENGINE_DATABASE_H_
#define WIMPI_ENGINE_DATABASE_H_

#include <map>
#include <memory>
#include <string>

#include "common/logging.h"
#include "storage/table.h"

namespace wimpi::engine {

// A named collection of in-memory tables (the catalog). In the cluster
// simulator each node owns one Database; replicated tables are shared
// (shared_ptr) across nodes so host memory is not multiplied by the node
// count, while each node's logical memory accounting still counts them.
class Database {
 public:
  Database() = default;

  void AddTable(std::shared_ptr<storage::Table> table) {
    const std::string name = table->name();
    tables_[name] = std::move(table);
  }

  const storage::Table& table(const std::string& name) const {
    auto it = tables_.find(name);
    WIMPI_CHECK(it != tables_.end()) << "no table '" << name << "'";
    return *it->second;
  }

  std::shared_ptr<storage::Table> table_ptr(const std::string& name) const {
    auto it = tables_.find(name);
    WIMPI_CHECK(it != tables_.end()) << "no table '" << name << "'";
    return it->second;
  }

  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  const std::map<std::string, std::shared_ptr<storage::Table>>& tables()
      const {
    return tables_;
  }

  // Sum of MemoryBytes over all tables (logical size of this catalog).
  int64_t MemoryBytes() const {
    int64_t b = 0;
    for (const auto& [_, t] : tables_) b += t->MemoryBytes();
    return b;
  }

 private:
  std::map<std::string, std::shared_ptr<storage::Table>> tables_;
};

}  // namespace wimpi::engine

#endif  // WIMPI_ENGINE_DATABASE_H_
