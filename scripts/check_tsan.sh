#!/usr/bin/env bash
# Builds the parallel-execution and observability tests under
# ThreadSanitizer and runs them. Intended for CI: any data race in the
# thread pool, scheduler, the morsel-parallel operator paths, or the
# profiling/metrics/trace instrumentation fails the script.
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-tsan}"

cmake -S "${repo_root}" -B "${build_dir}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DWIMPI_SANITIZE=thread

cmake --build "${build_dir}" \
  --target parallel_test parallel_queries_test obs_test obs_queries_test \
           obs_perf_test obs_export_test memory_tracker_test fault_test \
           service_test flight_test stats_test timeline_test -j

# halt_on_error so the first race fails fast with a nonzero exit code.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"

"${build_dir}/tests/parallel_test"
# The full 132-case matrix regenerates TPC-H data per process under ctest;
# running the binary directly keeps the TSan pass quick while still covering
# every query at every thread count.
"${build_dir}/tests/parallel_queries_test"
# Observability: profiling/trace/pool-metrics instrumentation races against
# worker threads would surface here (profiled runs at every thread count).
"${build_dir}/tests/obs_test"
"${build_dir}/tests/obs_queries_test"
# Telemetry export: distributed-trace emission, the event-log ring, and
# the exposition writer against traced fault-injected cluster runs.
"${build_dir}/tests/obs_export_test"
# Perf-counter attach/detach around worker threads, and the MemoryTracker
# concurrent used/peak accounting.
"${build_dir}/tests/obs_perf_test"
"${build_dir}/tests/memory_tracker_test"
# Fault injection + recovery (cancellation tokens racing against morsel
# workers, retries/reassignment over the real parallel partial plans).
"${build_dir}/tests/fault_test"
# Query service: concurrent sessions over the shared pool (fair scheduler
# drain slots vs query drivers, admission reserve/release, cancellation
# and deadline racing mid-pipeline, the many-sessions stress case).
"${build_dir}/tests/service_test"
# Flight recorder: lock-free per-thread rings written by pool workers and
# drivers while triggers snapshot them, plus the SLO tracker and
# slow-query log under the service's concurrent finalize path.
"${build_dir}/tests/flight_test"
# Column statistics: the morsel-parallel BuildTableStats shard merge, and
# the registry's shared_mutex paths (concurrent Collect + estimation).
"${build_dir}/tests/stats_test"
# Roofline timeline: the sampler thread reading seqlock lane-activity
# slots and pool metrics while morsel workers run, and sampler start/stop
# racing query execution and service teardown.
"${build_dir}/tests/timeline_test"

echo "TSan parallel + obs test pass: OK"
