#!/usr/bin/env bash
# Builds the full test suite under AddressSanitizer (+ leak detection) and
# runs it. Intended for CI: any out-of-bounds access, use-after-free, or
# leak in the engine, the observability subsystem, or the tests fails the
# script.
#
# Usage: scripts/check_asan.sh [build-dir]   (default: build-asan)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-asan}"

cmake -S "${repo_root}" -B "${build_dir}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DWIMPI_SANITIZE=address

cmake --build "${build_dir}" -j

export ASAN_OPTIONS="halt_on_error=1 ${ASAN_OPTIONS:-}"
# Cached test databases (tests/parallel_queries_test.cc intentionally leaks
# its per-scale-factor engine::Database singletons) are not bugs.
export LSAN_OPTIONS="suppressions=${repo_root}/scripts/lsan_suppressions.txt ${LSAN_OPTIONS:-}"

ctest --test-dir "${build_dir}" --output-on-failure

echo "ASan test pass: OK"
