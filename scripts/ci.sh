#!/usr/bin/env bash
# Full CI pipeline: release build + complete ctest suite, a bench-smoke +
# artifact-regression stage (modeled runtimes gated against the committed
# baseline), a fault-injection smoke run under a fixed seed (degraded-mode
# runtimes and recovery counters gated the same way), a traced run of the
# same fault scenario structurally validated by wimpi_trace_check, a
# concurrent-streams throughput smoke (answer identity + admission
# invariants gated against the committed baseline), a flight-recorder
# stage (tight SLO + injected straggler must produce a structurally valid
# flight dump / slow-query log / exposition, and recording must not move
# mean latency), a plan-quality stage (all 22 queries with statistics
# collected + cardinality capture on: answers must stay bit-identical,
# sketch accuracy and Q-error residuals validated by wimpi_stats_check
# and gated against the committed baseline), a chaos-soak stage (hundreds
# of seed-derived fault x steal x resize scenarios through fine-grained
# recovery: answers must stay bit-identical, every recovery mechanism must
# be exercised, the fine-grained tail must dominate retry-only, counters
# gated against the committed baseline, one traced scenario validated by
# wimpi_trace_check), a roofline-timeline stage (all 22 queries with the
# sampler attached: answers bit-identical, modeled bound-class rows gated
# against the committed baseline, sampling must not move mean latency, and
# the dump must pass wimpi_timeline_check), then the sanitizer passes
# (TSan over the parallel + service + observability + fault + stats +
# timeline tests, ASan over everything). Each stage fails the script on
# the first error.
#
# Usage: scripts/ci.sh [build-dir]   (default: build)
#   WIMPI_CI_SKIP_SANITIZERS=1 scripts/ci.sh   # skip TSan/ASan stages
#   WIMPI_CI_SKIP_BENCH=1 scripts/ci.sh        # skip the bench-smoke gate
#   WIMPI_CI_FLIGHT_TOL=0.15 scripts/ci.sh     # flight-overhead gate (frac)
#   WIMPI_CI_TIMELINE_TOL=0.25 scripts/ci.sh   # sampler-overhead gate (frac)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

echo "=== [1/11] build + tests ==="
cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j
ctest --test-dir "${build_dir}" --output-on-failure

if [[ "${WIMPI_CI_SKIP_BENCH:-0}" != "1" ]]; then
  echo "=== [2/11] bench smoke + artifact regression gate ==="
  # Small physical SF keeps this a smoke run; the gated rows are modeled
  # runtimes (deterministic: fixed dbgen seed x Table I profiles), so a
  # committed baseline is stable across hosts. Wall times in the artifact
  # are informational only (no --wall-tol).
  artifact="${build_dir}/BENCH_table2_sf1.json"
  WIMPI_PERF_DISABLE=1 "${build_dir}/bench/bench_table2_sf1" \
    --physical-sf 0.01 --json "${artifact}" > /dev/null
  "${build_dir}/bench/wimpi_bench_compare" \
    "${repo_root}/bench/baselines/BENCH_table2_sf1.json" "${artifact}"

  echo "=== [3/11] fault-injection smoke + regression gate ==="
  # Same idea under a fixed fault seed: the degraded-mode runtimes and
  # recovery counters are pure functions of (dbgen seed, cost model, fault
  # seed), so they regress against a committed baseline like clean runs.
  fault_artifact="${build_dir}/BENCH_table3_faults.json"
  WIMPI_PERF_DISABLE=1 "${build_dir}/bench/bench_table3_sf10" \
    --physical-sf 0.01 --faults 42 --json "${fault_artifact}" > /dev/null
  "${build_dir}/bench/wimpi_bench_compare" \
    "${repo_root}/bench/baselines/BENCH_table3_faults.json" "${fault_artifact}"

  echo "=== [4/11] traced fault run + trace structure gate ==="
  # Re-run the same fault scenario with telemetry on and validate the
  # export: one coherent span tree (every retry parented to the attempt it
  # retried, every fault flow-linked to the retry it caused) and a
  # parseable event log. Catches refactors that silently drop spans or
  # break causality without failing any unit test.
  trace_file="${build_dir}/BENCH_table3_faults.trace.json"
  events_file="${build_dir}/BENCH_table3_faults.events.jsonl"
  WIMPI_PERF_DISABLE=1 "${build_dir}/bench/bench_table3_sf10" \
    --physical-sf 0.01 --faults 42 \
    --trace "${trace_file}" --events "${events_file}" > /dev/null
  "${build_dir}/bench/wimpi_trace_check" "${trace_file}" \
    --events "${events_file}"

  echo "=== [5/11] throughput smoke + regression gate ==="
  # Concurrent streams through the query service: the bench itself exits
  # nonzero on any answer differing from isolated execution or on a peak
  # reservation above the budget; the gated artifact rows (counts, per-
  # query checksums, pipeline/task totals) are deterministic, wall-clock
  # throughput/latency metrics informational.
  throughput_artifact="${build_dir}/BENCH_throughput.json"
  WIMPI_PERF_DISABLE=1 "${build_dir}/bench/bench_throughput" \
    --streams 4 --physical-sf 0.01 --json "${throughput_artifact}" > /dev/null
  "${build_dir}/bench/wimpi_bench_compare" \
    "${repo_root}/bench/baselines/BENCH_throughput.json" \
    "${throughput_artifact}"

  echo "=== [6/11] flight recorder + SLO gate ==="
  # Run the throughput bench with a deliberately tight SLO and one injected
  # straggler query per lap: every lap must trip a tail-based trigger, so
  # the run must leave behind flight dumps (base path + ".1", ...), a
  # slow-query log, and an exposition snapshot. wimpi_flight_check
  # validates structure (span nesting, event windows) and causality
  # (submit <= admit <= finish, cpu == driver + worker, queue wait <=
  # wall, the dumped window covers its triggering slow query).
  flight_dump="${build_dir}/BENCH_flight.trace.json"
  slow_log="${build_dir}/BENCH_flight.slow.jsonl"
  expo_file="${build_dir}/BENCH_flight.prom"
  WIMPI_PERF_DISABLE=1 "${build_dir}/bench/bench_throughput" \
    --streams 2 --laps 2 --physical-sf 0.01 \
    --slo-us 100000 --straggler-ms 150 \
    --flight-dump "${flight_dump}" --slow-log "${slow_log}" \
    --expo "${expo_file}" > /dev/null
  "${build_dir}/bench/wimpi_flight_check" "${flight_dump}" \
    --slow-log "${slow_log}" --expo "${expo_file}" --min-slow 2

  # Overhead gate: the always-on recorder must not move mean latency.
  # A/B on the same straggler-free workload, flight off vs on; only the
  # mean-latency rollup is compared (everything else in the artifact is
  # answer checksums already gated above). The tolerance is env-overridable
  # because single-core CI hosts are noisy; the paper-facing budget is the
  # TotalRecorded cost of one relaxed store per event, asserted in
  # flight_test, not wall time.
  flight_tol="${WIMPI_CI_FLIGHT_TOL:-0.15}"
  flight_off="${build_dir}/BENCH_flight_off.json"
  flight_on="${build_dir}/BENCH_flight_on.json"
  WIMPI_PERF_DISABLE=1 "${build_dir}/bench/bench_throughput" \
    --streams 2 --laps 2 --physical-sf 0.01 --flight-off \
    --json "${flight_off}" > /dev/null
  WIMPI_PERF_DISABLE=1 "${build_dir}/bench/bench_throughput" \
    --streams 2 --laps 2 --physical-sf 0.01 \
    --json "${flight_on}" > /dev/null
  "${build_dir}/bench/wimpi_bench_compare" \
    "${flight_off}" "${flight_on}" \
    --only mean_latency --wall-tol "${flight_tol}"

  echo "=== [7/11] plan-quality smoke + Q-error gate ==="
  # All 22 queries twice: seed path, then with column statistics collected
  # and the cardinality estimator installed. The bench exits nonzero if
  # any answer changes. The artifact rows (per-query Q-error residuals,
  # sketch NDV / quantile accuracy) are pure functions of the fixed dbgen
  # seed, so wimpi_stats_check gates them against the committed baseline
  # at the default tolerance on top of its structural invariants.
  stats_artifact="${build_dir}/BENCH_stats.json"
  WIMPI_PERF_DISABLE=1 "${build_dir}/bench/bench_stats_qerror" \
    --physical-sf 0.01 --json "${stats_artifact}" > /dev/null
  "${build_dir}/bench/wimpi_stats_check" "${stats_artifact}" \
    --baseline "${repo_root}/bench/baselines/BENCH_stats.json"

  echo "=== [8/11] chaos soak + recovery gate ==="
  # 200 SF-1 seeds plus an SF-10 subset through fine-grained recovery
  # (pinned sweep: seed-derived fault plans, resize on even seeds, steal
  # disabled every seventh). The bench exits nonzero on any checksum
  # mismatch; wimpi_chaos_check enforces the seed floors, that every
  # recovery mechanism fired, and that the fine-grained modeled tail
  # (p95/p99/max) strictly beats whole-partition retry. The counters and
  # tail latencies are pure functions of (dbgen seed, cost model, sweep
  # seeds), so wimpi_bench_compare gates them against the committed
  # baseline. One fine-grained scenario is exported with telemetry on and
  # structurally validated (steal/ckpt causality) by wimpi_trace_check.
  chaos_artifact="${build_dir}/BENCH_chaos.json"
  chaos_trace="${build_dir}/BENCH_chaos.trace.json"
  WIMPI_PERF_DISABLE=1 "${build_dir}/bench/bench_chaos" \
    --physical-sf 0.02 --seeds 200 --sf10-seeds 16 \
    --json "${chaos_artifact}" --trace "${chaos_trace}" > /dev/null
  "${build_dir}/bench/wimpi_chaos_check" "${chaos_artifact}"
  "${build_dir}/bench/wimpi_bench_compare" \
    "${repo_root}/bench/baselines/BENCH_chaos.json" "${chaos_artifact}"
  "${build_dir}/bench/wimpi_trace_check" "${chaos_trace}"

  echo "=== [9/11] roofline timeline + sampler overhead gate ==="
  # All 22 queries with the roofline sampler attached. The bench itself
  # exits nonzero if any sampled lap's answer checksum differs from the
  # first lap. Gated artifact rows are answer checksums plus modeled
  # bound-class verdicts on the fixed Table I profiles (pure functions of
  # the dbgen seed and cost model); measured GB/s / IPC live only in the
  # dump, which wimpi_timeline_check validates structurally (monotone
  # interval timestamps, bandwidth within the host roofline, Q1/Q6
  # classified, measured-vs-modeled agreement where the host PMU exposes
  # counters). Deliberately NOT run with WIMPI_PERF_DISABLE=1: that
  # variable force-disables the sampler this stage exists to exercise.
  timeline_tol="${WIMPI_CI_TIMELINE_TOL:-0.25}"
  timeline_off="${build_dir}/BENCH_timeline_off.json"
  timeline_on="${build_dir}/BENCH_timeline.json"
  timeline_dump="${build_dir}/BENCH_timeline.dump.jsonl"
  "${build_dir}/bench/bench_timeline" \
    --physical-sf 0.01 --laps 7 --off --json "${timeline_off}" > /dev/null
  "${build_dir}/bench/bench_timeline" \
    --physical-sf 0.01 --laps 7 --json "${timeline_on}" \
    --dump "${timeline_dump}" > /dev/null
  "${build_dir}/bench/wimpi_bench_compare" \
    "${repo_root}/bench/baselines/BENCH_timeline.json" "${timeline_on}"
  # Overhead gate: sampling must not move mean latency (A/B, sampler off
  # vs on, same workload; 7 laps so the mean is stable enough to gate).
  # The design budget is <= 2% when the sampler thread has a spare
  # hardware thread to ride (any multi-core host, including the Pi-class
  # targets). The default tolerance is wider because on a single-CPU CI
  # VM every 1 kHz sampler wakeup preempts the only core, so the A/B
  # measures context-switch pressure, not per-sample cost.
  "${build_dir}/bench/wimpi_bench_compare" \
    "${timeline_off}" "${timeline_on}" \
    --only mean_latency --wall-tol "${timeline_tol}"
  "${build_dir}/bench/wimpi_timeline_check" "${timeline_dump}"
else
  echo "=== bench stages skipped (WIMPI_CI_SKIP_BENCH=1) ==="
fi

if [[ "${WIMPI_CI_SKIP_SANITIZERS:-0}" != "1" ]]; then
  echo "=== [10/11] ThreadSanitizer (parallel + service + obs + faults) ==="
  "${repo_root}/scripts/check_tsan.sh"

  echo "=== [11/11] AddressSanitizer (full suite) ==="
  "${repo_root}/scripts/check_asan.sh"
else
  echo "=== sanitizer stages skipped (WIMPI_CI_SKIP_SANITIZERS=1) ==="
fi

echo "CI pass: OK"
