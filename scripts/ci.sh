#!/usr/bin/env bash
# Full CI pipeline: release build + complete ctest suite, then the
# sanitizer passes (TSan over the parallel + observability tests, ASan over
# everything). Each stage fails the script on the first error.
#
# Usage: scripts/ci.sh [build-dir]   (default: build)
#   WIMPI_CI_SKIP_SANITIZERS=1 scripts/ci.sh   # plain build + tests only
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

echo "=== [1/3] build + tests ==="
cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j
ctest --test-dir "${build_dir}" --output-on-failure

if [[ "${WIMPI_CI_SKIP_SANITIZERS:-0}" != "1" ]]; then
  echo "=== [2/3] ThreadSanitizer (parallel + obs) ==="
  "${repo_root}/scripts/check_tsan.sh"

  echo "=== [3/3] AddressSanitizer (full suite) ==="
  "${repo_root}/scripts/check_asan.sh"
else
  echo "=== sanitizer stages skipped (WIMPI_CI_SKIP_SANITIZERS=1) ==="
fi

echo "CI pass: OK"
