// wimpi_top: `top` for the simulated WIMPI cluster. Runs a distributed
// TPC-H query under a seed-derived fault plan and renders a per-node
// utilization/retry table — the straggler-diagnosis view: which node is
// throttled, which one died, where the retries went, and how skewed the
// busy time ended up (skew = max/mean; 1.0 means perfectly balanced).
//
// With --iters N it steps through N consecutive fault seeds; --follow
// redraws in place (ANSI clear) so the table reads like a live dashboard.
//
//   ./examples/wimpi_top [--query 1] [--sf 0.05] [--model-sf 10]
//                        [--nodes 24] [--seed 42] [--iters 1] [--follow]
//
// With --service the view flips to the concurrent query service on one
// node: closed-loop sessions hammer a QueryService while the dashboard
// renders active/queued/rejected counts and per-session latency
// percentiles from the live metrics registry.
//
//   ./examples/wimpi_top --service [--streams 4] [--sf 0.01]
//                        [--iters 5] [--interval-ms 500] [--follow]
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cluster/wimpi_cluster.h"
#include "common/cli.h"
#include "common/table_printer.h"
#include "obs/metrics.h"
#include "service/query_service.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace {

struct NodeStats {
  double busy_s = 0;
  int attempts = 0;
  int failed = 0;
  int partitions = 0;  // successful attempts == partitions served
};

// --service mode: drive a live QueryService with closed-loop sessions and
// render its state from the global metrics registry — the same counters,
// gauges, and histograms a real deployment would scrape.
int RunServiceTop(const wimpi::CommandLine& cli) {
  using wimpi::TablePrinter;
  const int streams = static_cast<int>(cli.GetInt("streams", 4));
  const double sf = cli.GetDouble("sf", 0.01);
  const int iters = static_cast<int>(cli.GetInt("iters", 5));
  const int interval_ms = static_cast<int>(cli.GetInt("interval-ms", 500));
  const bool follow = cli.GetBool("follow", false);

  wimpi::tpch::GenOptions gen;
  gen.scale_factor = sf;
  const wimpi::engine::Database db = wimpi::tpch::GenerateDatabase(gen);

  wimpi::service::ServiceOptions sopts;
  sopts.track_session_metrics = true;
  wimpi::service::QueryService svc(sopts);

  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int s = 0; s < streams; ++s) {
    clients.emplace_back([&, s] {
      wimpi::service::ClientSession session(&svc,
                                            "stream" + std::to_string(s),
                                            1.0 + (s % 2));  // mixed priority
      int i = s * 5;  // rotated query order per stream
      while (!stop.load(std::memory_order_relaxed)) {
        const int q = 1 + (i++ % 22);
        wimpi::service::QuerySpec spec;
        spec.label = "q" + std::to_string(q);
        spec.plan = [&db, q](wimpi::exec::QueryStats* st) {
          return wimpi::tpch::RunQuery(q, db, st);
        };
        (void)session.Execute(std::move(spec));
      }
    });
  }

  auto& reg = wimpi::obs::MetricsRegistry::Global();
  for (int iter = 0; iter < iters; ++iter) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    if (follow) std::printf("\x1b[2J\x1b[H");  // clear + home
    const auto scalars = reg.ScalarSnapshot();
    auto scalar = [&](const std::string& name) {
      const auto it = scalars.find(name);
      return it == scalars.end() ? 0.0 : it->second;
    };
    std::printf(
        "wimpi_top --service — %d streams at SF %g | active %.0f, queued "
        "%.0f | submitted %.0f, completed %.0f, rejected %.0f, cancelled "
        "%.0f, timeout %.0f | pool queue depth %.0f\n",
        streams, sf, scalar("service.active"), scalar("service.queued"),
        scalar("service.submitted"), scalar("service.completed"),
        scalar("service.rejected"), scalar("service.cancelled"),
        scalar("service.timeout"), scalar("pool.queue_depth"));

    TablePrinter t({"session", "queries", "p50 (ms)", "p99 (ms)"});
    for (int s = 0; s < streams; ++s) {
      const auto& h = reg.histogram("service.session.stream" +
                                    std::to_string(s) + ".latency_us");
      t.AddRow({"stream" + std::to_string(s), std::to_string(h.Count()),
                TablePrinter::Fixed(h.Percentile(0.5) / 1000.0, 2),
                TablePrinter::Fixed(h.Percentile(0.99) / 1000.0, 2)});
    }
    t.Print(std::cout);
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& c : clients) c.join();
  const auto& lat = reg.histogram("service.latency_us");
  std::printf(
      "done: %lld queries, service-wide p50 %.2f ms / p95 %.2f ms / p99 "
      "%.2f ms\n",
      static_cast<long long>(lat.Count()), lat.Percentile(0.5) / 1000.0,
      lat.Percentile(0.95) / 1000.0, lat.Percentile(0.99) / 1000.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using wimpi::TablePrinter;

  const wimpi::CommandLine cli(argc, argv);
  if (cli.GetBool("service", false)) return RunServiceTop(cli);
  const int query = static_cast<int>(cli.GetInt("query", 1));
  const double sf = cli.GetDouble("sf", 0.05);
  const double model_sf = cli.GetDouble("model-sf", 10.0);
  const int nodes = static_cast<int>(cli.GetInt("nodes", 24));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  const int iters = static_cast<int>(cli.GetInt("iters", 1));
  const bool follow = cli.GetBool("follow", false);

  if (!wimpi::tpch::InSf10Subset(query)) {
    std::printf("query must be one of 1,3,4,5,6,13,14,19\n");
    return 1;
  }

  wimpi::tpch::GenOptions gen;
  gen.scale_factor = sf;
  const wimpi::engine::Database db = wimpi::tpch::GenerateDatabase(gen);
  const wimpi::hw::CostModel model;

  for (int iter = 0; iter < iters; ++iter) {
    wimpi::cluster::ClusterOptions opts;
    opts.num_nodes = nodes;
    opts.sf_scale = model_sf / sf;
    opts.faults = wimpi::cluster::FaultPlan::Generate(seed + iter, nodes);
    const wimpi::cluster::WimpiCluster cluster(db, opts);
    const auto run = cluster.Run(query, model);
    if (!run.ok()) {
      std::printf("Q%d seed %llu: %s\n", query,
                  static_cast<unsigned long long>(seed + iter),
                  run.status().ToString().c_str());
      return 1;
    }

    std::map<int, NodeStats> per_node;
    for (int n = 0; n < run->nodes_used; ++n) per_node[n];
    for (const auto& a : run->attempts) {
      NodeStats& s = per_node[a.node];
      s.busy_s += a.end_seconds - a.start_seconds;
      ++s.attempts;
      if (a.outcome == wimpi::StatusCode::kOk) {
        ++s.partitions;
      } else {
        ++s.failed;
      }
    }

    if (follow) std::printf("\x1b[2J\x1b[H");  // clear + home
    std::printf(
        "wimpi_top — Q%d, %d nodes, modeled SF %g, fault seed %llu (%s)\n",
        query, nodes, model_sf,
        static_cast<unsigned long long>(seed + iter),
        opts.faults.empty() ? "no faults" : opts.faults.ToString().c_str());

    TablePrinter t({"node", "fault", "parts", "attempts", "failed",
                    "busy (s)", "util %"});
    for (const auto& [node, s] : per_node) {
      const wimpi::cluster::NodeFault* f = opts.faults.FaultFor(node);
      const double util =
          run->total_seconds > 0 ? 100.0 * s.busy_s / run->total_seconds : 0;
      t.AddRow({std::to_string(node),
                f != nullptr ? wimpi::cluster::FaultKindName(f->kind) : "-",
                std::to_string(s.partitions), std::to_string(s.attempts),
                std::to_string(s.failed), TablePrinter::Fixed(s.busy_s, 3),
                TablePrinter::Fixed(util, 1)});
    }
    t.Print(std::cout);

    const auto& roll = run->node_rollups;
    std::printf(
        "total %.3f s (degraded +%.3f s) | %d retries, %d reassigned, "
        "%d node(s) lost | busy skew %.2f (max/mean)\n",
        run->total_seconds, run->degraded_seconds, run->retries,
        run->reassigned_partitions, run->nodes_failed,
        roll.count("node.busy_s.skew") ? roll.at("node.busy_s.skew") : 0.0);
  }
  return 0;
}
