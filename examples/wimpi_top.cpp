// wimpi_top: `top` for the simulated WIMPI cluster. Runs a distributed
// TPC-H query under a seed-derived fault plan and renders a per-node
// utilization/retry table — the straggler-diagnosis view: which node is
// throttled, which one died, where the retries went, and how skewed the
// busy time ended up (skew = max/mean; 1.0 means perfectly balanced).
//
// With --iters N it steps through N consecutive fault seeds; --follow
// redraws in place (ANSI clear) so the table reads like a live dashboard.
// --fine switches the cluster to fine-grained recovery (morsel ranges +
// checkpoints + stealing, DESIGN.md §14): the table gains a "stolen"
// column (morsels each node executed that were stolen from a live
// victim — the cross-node rebalancing view) and --resize additionally
// applies a seed-derived membership plan (joined nodes appear as extra
// rows past the initial pool).
//
//   ./examples/wimpi_top [--query 1] [--sf 0.05] [--model-sf 10]
//                        [--nodes 24] [--seed 42] [--iters 1] [--follow]
//                        [--fine] [--resize]
//
// With --service the view flips to the concurrent query service on one
// node: closed-loop sessions hammer a QueryService while the dashboard
// renders active/queued/rejected counts and per-session latency
// percentiles from the live metrics registry.
//
//   ./examples/wimpi_top --service [--streams 4] [--sf 0.01]
//                        [--iters 5] [--interval-ms 500] [--follow]
//                        [--slo-us 250000]
//
// The service view also renders the always-on telemetry (ISSUE #7): SLO
// attainment/burn-rate per priority class, flight-recorder totals, the
// eventlog.dropped counter, and the tail of the slow-query log.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cluster/wimpi_cluster.h"
#include "common/cli.h"
#include "common/table_printer.h"
#include "obs/flight/flight_recorder.h"
#include "obs/flight/slow_query_log.h"
#include "obs/metrics.h"
#include "service/query_service.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace {

struct NodeStats {
  double busy_s = 0;
  int attempts = 0;
  int failed = 0;
  int partitions = 0;   // successful attempts == partitions served
  int stolen_morsels = 0;  // morsels executed here but stolen elsewhere
};

// --service mode: drive a live QueryService with closed-loop sessions and
// render its state from the global metrics registry — the same counters,
// gauges, and histograms a real deployment would scrape.
int RunServiceTop(const wimpi::CommandLine& cli) {
  using wimpi::TablePrinter;
  const int streams = static_cast<int>(cli.GetInt("streams", 4));
  const double sf = cli.GetDouble("sf", 0.01);
  const int iters = static_cast<int>(cli.GetInt("iters", 5));
  const int interval_ms = static_cast<int>(cli.GetInt("interval-ms", 500));
  const bool follow = cli.GetBool("follow", false);
  const int64_t slo_us = cli.GetInt("slo-us", 250 * 1000);

  wimpi::tpch::GenOptions gen;
  gen.scale_factor = sf;
  const wimpi::engine::Database db = wimpi::tpch::GenerateDatabase(gen);

  wimpi::service::ServiceOptions sopts;
  sopts.track_session_metrics = true;
  if (slo_us > 0) sopts.slo.default_objective_us = slo_us;
  wimpi::service::QueryService svc(sopts);

  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int s = 0; s < streams; ++s) {
    clients.emplace_back([&, s] {
      wimpi::service::ClientSession session(&svc,
                                            "stream" + std::to_string(s),
                                            1.0 + (s % 2));  // mixed priority
      int i = s * 5;  // rotated query order per stream
      while (!stop.load(std::memory_order_relaxed)) {
        const int q = 1 + (i++ % 22);
        wimpi::service::QuerySpec spec;
        spec.label = "q" + std::to_string(q);
        spec.plan = [&db, q](wimpi::exec::QueryStats* st) {
          return wimpi::tpch::RunQuery(q, db, st);
        };
        (void)session.Execute(std::move(spec));
      }
    });
  }

  auto& reg = wimpi::obs::MetricsRegistry::Global();
  for (int iter = 0; iter < iters; ++iter) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    if (follow) std::printf("\x1b[2J\x1b[H");  // clear + home
    const auto scalars = reg.ScalarSnapshot();
    auto scalar = [&](const std::string& name) {
      const auto it = scalars.find(name);
      return it == scalars.end() ? 0.0 : it->second;
    };
    std::printf(
        "wimpi_top --service — %d streams at SF %g | active %.0f, queued "
        "%.0f | submitted %.0f, completed %.0f, rejected %.0f, cancelled "
        "%.0f, timeout %.0f | pool queue depth %.0f\n",
        streams, sf, scalar("service.active"), scalar("service.queued"),
        scalar("service.submitted"), scalar("service.completed"),
        scalar("service.rejected"), scalar("service.cancelled"),
        scalar("service.timeout"), scalar("pool.queue_depth"));

    TablePrinter t({"session", "queries", "p50 (ms)", "p99 (ms)"});
    for (int s = 0; s < streams; ++s) {
      const auto& h = reg.histogram("service.session.stream" +
                                    std::to_string(s) + ".latency_us");
      t.AddRow({"stream" + std::to_string(s), std::to_string(h.Count()),
                TablePrinter::Fixed(h.Percentile(0.5) / 1000.0, 2),
                TablePrinter::Fixed(h.Percentile(0.99) / 1000.0, 2)});
    }
    t.Print(std::cout);

    // SLO attainment per priority class (slo.p<class>.* scalars).
    std::map<std::string, std::map<std::string, double>> slo_classes;
    for (const auto& [name, value] : scalars) {
      if (name.rfind("slo.p", 0) != 0) continue;
      const size_t dot = name.find('.', 5);
      if (dot == std::string::npos) continue;
      slo_classes[name.substr(4, dot - 4)][name.substr(dot + 1)] = value;
    }
    if (!slo_classes.empty()) {
      TablePrinter slo_t({"class", "objective (ms)", "attainment",
                          "burn rate", "total", "breaches"});
      for (const auto& [cls, fields] : slo_classes) {
        auto field = [&](const std::string& key) {
          const auto it = fields.find(key);
          return it == fields.end() ? 0.0 : it->second;
        };
        slo_t.AddRow({cls,
                      TablePrinter::Fixed(field("objective_us") / 1000.0, 1),
                      TablePrinter::Fixed(field("attainment"), 4),
                      TablePrinter::Fixed(field("burn_rate"), 2),
                      TablePrinter::Fixed(field("total"), 0),
                      TablePrinter::Fixed(field("breaches"), 0)});
      }
      slo_t.Print(std::cout);
    }

    // Flight recorder + structured-log health, from the same registry a
    // scraper would read.
    const auto& rec = wimpi::obs::flight::FlightRecorder::Global();
    std::printf(
        "flight: %s, %lld events in %zu ring(s) (%lld overwritten) | "
        "triggers: latency %.0f, status %.0f, fault %.0f | dumps %.0f | "
        "eventlog dropped %.0f\n",
        rec.enabled() ? "on" : "off",
        static_cast<long long>(rec.TotalRecorded()), rec.ring_count(),
        static_cast<long long>(rec.TotalDropped()),
        scalar("flight.trigger.latency"), scalar("flight.trigger.status"),
        scalar("flight.trigger.fault"), scalar("flight.dumps"),
        scalar("eventlog.dropped"));

    // Tail of the slow-query log: the most recent triggered queries.
    const auto slow = wimpi::obs::flight::SlowQueryLog::Global().Snapshot();
    if (!slow.empty()) {
      TablePrinter sq({"slow query", "trigger", "status", "wall (ms)",
                       "queue (ms)", "cpu (ms)"});
      const size_t first = slow.size() > 3 ? slow.size() - 3 : 0;
      for (size_t k = first; k < slow.size(); ++k) {
        const auto& e = slow[k];
        sq.AddRow({e.label, e.trigger, e.status,
                   TablePrinter::Fixed(e.report.wall_us / 1000.0, 2),
                   TablePrinter::Fixed(e.report.queue_wait_us / 1000.0, 2),
                   TablePrinter::Fixed(e.report.cpu_us / 1000.0, 2)});
      }
      sq.Print(std::cout);
    }
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& c : clients) c.join();
  const auto& lat = reg.histogram("service.latency_us");
  std::printf(
      "done: %lld queries, service-wide p50 %.2f ms / p95 %.2f ms / p99 "
      "%.2f ms\n",
      static_cast<long long>(lat.Count()), lat.Percentile(0.5) / 1000.0,
      lat.Percentile(0.95) / 1000.0, lat.Percentile(0.99) / 1000.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using wimpi::TablePrinter;

  const wimpi::CommandLine cli(argc, argv);
  if (cli.GetBool("service", false)) return RunServiceTop(cli);
  const int query = static_cast<int>(cli.GetInt("query", 1));
  const double sf = cli.GetDouble("sf", 0.05);
  const double model_sf = cli.GetDouble("model-sf", 10.0);
  const int nodes = static_cast<int>(cli.GetInt("nodes", 24));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  const int iters = static_cast<int>(cli.GetInt("iters", 1));
  const bool follow = cli.GetBool("follow", false);
  const bool fine = cli.GetBool("fine", false);
  const bool resize = cli.GetBool("resize", false);

  if (!wimpi::tpch::InSf10Subset(query)) {
    std::printf("query must be one of 1,3,4,5,6,13,14,19\n");
    return 1;
  }

  wimpi::tpch::GenOptions gen;
  gen.scale_factor = sf;
  const wimpi::engine::Database db = wimpi::tpch::GenerateDatabase(gen);
  const wimpi::hw::CostModel model;

  for (int iter = 0; iter < iters; ++iter) {
    wimpi::cluster::ClusterOptions opts;
    opts.num_nodes = nodes;
    opts.sf_scale = model_sf / sf;
    opts.faults = wimpi::cluster::FaultPlan::Generate(seed + iter, nodes);
    if (fine) {
      opts.recovery.mode = wimpi::cluster::RecoveryMode::kFineGrained;
      if (resize) {
        opts.resize = wimpi::cluster::ResizePlan::Generate(seed + iter, nodes);
      }
    }
    const wimpi::cluster::WimpiCluster cluster(db, opts);
    const auto run = cluster.Run(query, model);
    if (!run.ok()) {
      std::printf("Q%d seed %llu: %s\n", query,
                  static_cast<unsigned long long>(seed + iter),
                  run.status().ToString().c_str());
      return 1;
    }

    std::map<int, NodeStats> per_node;
    for (int n = 0; n < run->nodes_used; ++n) per_node[n];
    for (const auto& a : run->attempts) {
      NodeStats& s = per_node[a.node];
      s.busy_s += a.end_seconds - a.start_seconds;
      ++s.attempts;
      if (a.outcome == wimpi::StatusCode::kOk) {
        ++s.partitions;
        // Steal provenance (fine mode): credit executed stolen morsels to
        // the thief — the per-node "how much work was rebalanced here"
        // column. Retry-mode attempts never set `stolen`.
        if (a.stolen) s.stolen_morsels += a.morsel_end - a.morsel_begin;
      } else {
        ++s.failed;
      }
    }

    if (follow) std::printf("\x1b[2J\x1b[H");  // clear + home
    std::printf(
        "wimpi_top — Q%d, %d nodes, modeled SF %g, fault seed %llu (%s)\n",
        query, nodes, model_sf,
        static_cast<unsigned long long>(seed + iter),
        opts.faults.empty() ? "no faults" : opts.faults.ToString().c_str());

    // Fine mode: "parts" becomes OK segments (a partition executes as many
    // morsel ranges), and the stolen column shows rebalanced work.
    std::vector<std::string> header = {"node",   "fault",    "parts",
                                       "attempts", "failed", "busy (s)",
                                       "util %"};
    if (fine) {
      header[2] = "segs";
      header.push_back("stolen");
    }
    TablePrinter t(header);
    for (const auto& [node, s] : per_node) {
      const wimpi::cluster::NodeFault* f = opts.faults.FaultFor(node);
      const double util =
          run->total_seconds > 0 ? 100.0 * s.busy_s / run->total_seconds : 0;
      std::vector<std::string> row = {
          std::to_string(node),
          f != nullptr ? wimpi::cluster::FaultKindName(f->kind) : "-",
          std::to_string(s.partitions), std::to_string(s.attempts),
          std::to_string(s.failed), TablePrinter::Fixed(s.busy_s, 3),
          TablePrinter::Fixed(util, 1)};
      if (fine) row.push_back(std::to_string(s.stolen_morsels));
      t.AddRow(std::move(row));
    }
    t.Print(std::cout);

    const auto& roll = run->node_rollups;
    std::printf(
        "total %.3f s (degraded +%.3f s) | %d retries, %d reassigned, "
        "%d node(s) lost | busy skew %.2f (max/mean)\n",
        run->total_seconds, run->degraded_seconds, run->retries,
        run->reassigned_partitions, run->nodes_failed,
        roll.count("node.busy_s.skew") ? roll.at("node.busy_s.skew") : 0.0);
    if (fine) {
      std::printf(
          "fine recovery: %d morsels, %d steals (%d morsels stolen), "
          "%d ckpts, %d recovered | joins %d, leaves %d\n",
          run->total_morsels, run->steals, run->stolen_morsels,
          run->checkpoints, run->recovered_morsels, run->joins,
          run->leaves);
    }
  }
  return 0;
}
