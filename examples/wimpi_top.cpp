// wimpi_top: `top` for the simulated WIMPI cluster. Runs a distributed
// TPC-H query under a seed-derived fault plan and renders a per-node
// utilization/retry table — the straggler-diagnosis view: which node is
// throttled, which one died, where the retries went, and how skewed the
// busy time ended up (skew = max/mean; 1.0 means perfectly balanced).
//
// With --iters N it steps through N consecutive fault seeds; --follow
// redraws in place (ANSI clear) so the table reads like a live dashboard.
//
//   ./examples/wimpi_top [--query 1] [--sf 0.05] [--model-sf 10]
//                        [--nodes 24] [--seed 42] [--iters 1] [--follow]
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "cluster/wimpi_cluster.h"
#include "common/cli.h"
#include "common/table_printer.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace {

struct NodeStats {
  double busy_s = 0;
  int attempts = 0;
  int failed = 0;
  int partitions = 0;  // successful attempts == partitions served
};

}  // namespace

int main(int argc, char** argv) {
  using wimpi::TablePrinter;

  const wimpi::CommandLine cli(argc, argv);
  const int query = static_cast<int>(cli.GetInt("query", 1));
  const double sf = cli.GetDouble("sf", 0.05);
  const double model_sf = cli.GetDouble("model-sf", 10.0);
  const int nodes = static_cast<int>(cli.GetInt("nodes", 24));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  const int iters = static_cast<int>(cli.GetInt("iters", 1));
  const bool follow = cli.GetBool("follow", false);

  if (!wimpi::tpch::InSf10Subset(query)) {
    std::printf("query must be one of 1,3,4,5,6,13,14,19\n");
    return 1;
  }

  wimpi::tpch::GenOptions gen;
  gen.scale_factor = sf;
  const wimpi::engine::Database db = wimpi::tpch::GenerateDatabase(gen);
  const wimpi::hw::CostModel model;

  for (int iter = 0; iter < iters; ++iter) {
    wimpi::cluster::ClusterOptions opts;
    opts.num_nodes = nodes;
    opts.sf_scale = model_sf / sf;
    opts.faults = wimpi::cluster::FaultPlan::Generate(seed + iter, nodes);
    const wimpi::cluster::WimpiCluster cluster(db, opts);
    const auto run = cluster.Run(query, model);
    if (!run.ok()) {
      std::printf("Q%d seed %llu: %s\n", query,
                  static_cast<unsigned long long>(seed + iter),
                  run.status().ToString().c_str());
      return 1;
    }

    std::map<int, NodeStats> per_node;
    for (int n = 0; n < run->nodes_used; ++n) per_node[n];
    for (const auto& a : run->attempts) {
      NodeStats& s = per_node[a.node];
      s.busy_s += a.end_seconds - a.start_seconds;
      ++s.attempts;
      if (a.outcome == wimpi::StatusCode::kOk) {
        ++s.partitions;
      } else {
        ++s.failed;
      }
    }

    if (follow) std::printf("\x1b[2J\x1b[H");  // clear + home
    std::printf(
        "wimpi_top — Q%d, %d nodes, modeled SF %g, fault seed %llu (%s)\n",
        query, nodes, model_sf,
        static_cast<unsigned long long>(seed + iter),
        opts.faults.empty() ? "no faults" : opts.faults.ToString().c_str());

    TablePrinter t({"node", "fault", "parts", "attempts", "failed",
                    "busy (s)", "util %"});
    for (const auto& [node, s] : per_node) {
      const wimpi::cluster::NodeFault* f = opts.faults.FaultFor(node);
      const double util =
          run->total_seconds > 0 ? 100.0 * s.busy_s / run->total_seconds : 0;
      t.AddRow({std::to_string(node),
                f != nullptr ? wimpi::cluster::FaultKindName(f->kind) : "-",
                std::to_string(s.partitions), std::to_string(s.attempts),
                std::to_string(s.failed), TablePrinter::Fixed(s.busy_s, 3),
                TablePrinter::Fixed(util, 1)});
    }
    t.Print(std::cout);

    const auto& roll = run->node_rollups;
    std::printf(
        "total %.3f s (degraded +%.3f s) | %d retries, %d reassigned, "
        "%d node(s) lost | busy skew %.2f (max/mean)\n",
        run->total_seconds, run->degraded_seconds, run->retries,
        run->reassigned_partitions, run->nodes_failed,
        roll.count("node.busy_s.skew") ? roll.at("node.busy_s.skew") : 0.0);
  }
  return 0;
}
