// Hardware advisor: given a nightly batch workload (a mix of TPC-H
// queries), compare deployment options -- each server profile and WIMPI
// cluster sizes -- on runtime, purchase cost, hourly cost, and energy, and
// flag the cheapest option that meets a latency budget. This is the
// decision the paper argues SBC clusters change.
//
//   ./examples/hardware_advisor [--sf 0.05] [--model-sf 10] [--budget-s 5]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "analysis/metrics.h"
#include "cluster/wimpi_cluster.h"
#include "common/cli.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

int main(int argc, char** argv) {
  const wimpi::CommandLine cli(argc, argv);
  const double sf = cli.GetDouble("sf", 0.05);
  const double model_sf = cli.GetDouble("model-sf", 10.0);
  const double budget_s = cli.GetDouble("budget-s", 5.0);

  // The batch: the paper's eight representative queries, once each.
  const std::vector<int> workload = {1, 3, 4, 5, 6, 13, 14, 19};

  wimpi::tpch::GenOptions gen;
  gen.scale_factor = sf;
  const wimpi::engine::Database db = wimpi::tpch::GenerateDatabase(gen);
  const wimpi::hw::CostModel model;

  struct Option {
    std::string name;
    double runtime_s = 0;
    double purchase_usd = -1;
    double hourly_usd = -1;
    double energy_j = -1;
  };
  std::vector<Option> options;

  // Server options (modeled single-node runs at the target SF).
  for (const auto& p : wimpi::hw::AllProfiles()) {
    if (p.name == "pi3b+") continue;
    Option o;
    o.name = p.name;
    for (const int q : workload) {
      wimpi::exec::QueryStats stats;
      wimpi::tpch::RunQuery(q, db, &stats);
      stats.Scale(model_sf / sf);
      o.runtime_s += model.QuerySeconds(p, stats);
    }
    o.purchase_usd = wimpi::analysis::ServerMsrp(p);
    o.hourly_usd = wimpi::analysis::ServerHourly(p);
    o.energy_j = wimpi::analysis::ServerEnergyJoules(p, o.runtime_s);
    options.push_back(o);
  }

  // WIMPI options.
  for (const int nodes : {8, 16, 24}) {
    wimpi::cluster::ClusterOptions copts;
    copts.num_nodes = nodes;
    copts.sf_scale = model_sf / sf;
    const wimpi::cluster::WimpiCluster wimpi(db, copts);
    Option o;
    o.name = "wimpi-" + std::to_string(nodes);
    for (const int q : workload) {
      o.runtime_s += wimpi.Run(q, model).value().total_seconds;
    }
    o.purchase_usd = wimpi::analysis::PiClusterMsrp(nodes);
    o.hourly_usd = wimpi::analysis::PiClusterHourly(nodes);
    o.energy_j = wimpi::analysis::PiClusterEnergyJoules(nodes, o.runtime_s);
    options.push_back(o);
  }

  std::printf("Batch of %zu queries at SF %g, latency budget %.1f s:\n\n",
              workload.size(), model_sf, budget_s);
  std::printf("%-14s %10s %12s %12s %12s %8s\n", "option", "runtime",
              "purchase $", "$/hour", "energy (J)", "fits?");
  const Option* best = nullptr;
  for (const auto& o : options) {
    const bool fits = o.runtime_s <= budget_s;
    auto fmt = [](double v, const char* unit) {
      static char buf[32];
      if (v < 0) {
        std::snprintf(buf, sizeof(buf), "n/a");
      } else {
        std::snprintf(buf, sizeof(buf), "%.4g%s", v, unit);
      }
      return std::string(buf);
    };
    std::printf("%-14s %9.2fs %12s %12s %12s %8s\n", o.name.c_str(),
                o.runtime_s, fmt(o.purchase_usd, "").c_str(),
                fmt(o.hourly_usd, "").c_str(), fmt(o.energy_j, "").c_str(),
                fits ? "yes" : "no");
    if (fits && o.purchase_usd > 0 &&
        (best == nullptr || o.purchase_usd < best->purchase_usd)) {
      best = &o;
    }
  }
  if (best != nullptr) {
    std::printf(
        "\nCheapest (by purchase price, where public) option within the "
        "budget: %s ($%.0f)\n",
        best->name.c_str(), best->purchase_usd);
  } else {
    std::printf("\nNo option with a public purchase price fits the "
                "budget.\n");
  }
  return 0;
}
