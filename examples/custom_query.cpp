// Using the operator library directly (without the TPC-H plans): build a
// small sales table and answer an ad-hoc question -- revenue and order
// count per region for large orders, sorted by revenue.
//
// This is the public API a downstream user composes: Column/Table for
// storage, Filter/Gather/HashJoin/HashAggregate/Sort for execution, and a
// QueryStats to see what the query cost.
#include <cstdio>

#include "common/rng.h"
#include "engine/query_result.h"
#include "exec/aggregate.h"
#include "exec/expr.h"
#include "exec/filter.h"
#include "exec/join.h"
#include "exec/sort.h"
#include "storage/table.h"

int main() {
  using namespace wimpi;

  // --- Build a 1M-row sales fact table and a tiny region dimension. ---
  storage::Schema sales_schema({{"region_id", storage::DataType::kInt32},
                                {"amount", storage::DataType::kFloat64},
                                {"quantity", storage::DataType::kFloat64}});
  storage::Table sales("sales", sales_schema);
  Rng rng(7);
  for (int i = 0; i < 1'000'000; ++i) {
    sales.column(0).AppendInt32(static_cast<int32_t>(rng.Uniform(0, 4)));
    sales.column(1).AppendFloat64(rng.NextDouble() * 1000);
    sales.column(2).AppendFloat64(static_cast<double>(rng.Uniform(1, 50)));
  }
  sales.FinishLoad();

  storage::Schema region_schema({{"region_id", storage::DataType::kInt32},
                                 {"region_name", storage::DataType::kString}});
  storage::Table region("region", region_schema);
  const char* names[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                         "MIDDLE EAST"};
  for (int i = 0; i < 5; ++i) {
    region.column(0).AppendInt32(i);
    region.column(1).AppendString(names[i]);
  }
  region.FinishLoad();

  exec::QueryStats stats;

  // --- WHERE quantity >= 25 AND amount > 500 ---
  const exec::ColumnSource src(sales);
  const exec::SelVec sel = exec::Filter(
      src,
      {exec::Predicate::CmpF64("quantity", exec::CmpOp::kGe, 25),
       exec::Predicate::CmpF64("amount", exec::CmpOp::kGt, 500)},
      &stats);
  exec::Relation filtered = exec::GatherColumns(
      src, {{"region_id", "region_id"}, {"amount", "amount"}}, sel, &stats);

  // --- GROUP BY region_id: SUM(amount), COUNT(*) ---
  exec::Relation agg = exec::HashAggregate(
      exec::ColumnSource(filtered), {"region_id"},
      {{exec::AggFn::kSum, "amount", "revenue"},
       {exec::AggFn::kCountStar, "", "orders"}},
      &stats);

  // --- JOIN region names, ORDER BY revenue DESC ---
  exec::Relation dim;
  {
    const exec::ColumnSource rsrc(region);
    exec::SelVec all(region.num_rows());
    for (int64_t i = 0; i < region.num_rows(); ++i) {
      all[i] = static_cast<int32_t>(i);
    }
    dim = exec::GatherColumns(
        rsrc, {{"region_id", "region_id"}, {"region_name", "region_name"}},
        all, &stats);
  }
  const exec::JoinResult jr =
      exec::HashJoin({&dim.column("region_id")}, {&agg.column("region_id")},
                     exec::JoinKind::kInner, &stats);
  exec::Relation named;
  named.AddColumn("region", exec::Gather(dim.column("region_name"),
                                         jr.build_idx, &stats));
  named.AddColumn("revenue",
                  exec::Gather(agg.column("revenue"), jr.probe_idx, &stats));
  named.AddColumn("orders",
                  exec::Gather(agg.column("orders"), jr.probe_idx, &stats));
  exec::Relation result =
      exec::SortRelation(named, {{"revenue", false}}, &stats);

  std::printf("region        revenue        orders\n");
  for (const auto& row : engine::FormatRelation(result)) {
    std::printf("%s\n", row.c_str());
  }
  std::printf("\n(%zu operators, %.1fM compute ops, %.1f MB streamed)\n",
              stats.ops.size(), stats.TotalComputeOps() / 1e6,
              stats.TotalSeqBytes() / 1e6);
  return 0;
}
