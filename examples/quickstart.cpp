// Quickstart: generate a small TPC-H database, run two queries on the
// in-memory columnar engine, inspect the recorded work counters, and
// project runtimes onto the paper's hardware comparison points.
//
//   ./examples/quickstart [--sf 0.05]
#include <cstdio>
#include <iostream>

#include "common/cli.h"
#include "engine/query_result.h"
#include "hw/cost_model.h"
#include "hw/profile.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

int main(int argc, char** argv) {
  const wimpi::CommandLine cli(argc, argv);
  const double sf = cli.GetDouble("sf", 0.05);

  // 1. Generate data (deterministic; same options => identical database).
  wimpi::tpch::GenOptions gen;
  gen.scale_factor = sf;
  const wimpi::engine::Database db = wimpi::tpch::GenerateDatabase(gen);
  std::printf("Generated TPC-H SF %g: %lld lineitem rows, %.1f MB\n\n", sf,
              static_cast<long long>(db.table("lineitem").num_rows()),
              db.MemoryBytes() / 1e6);

  // 2. Run Q6 (a selective scan) and print the result.
  wimpi::exec::QueryStats q6_stats;
  const wimpi::exec::Relation q6 = wimpi::tpch::RunQuery(6, db, &q6_stats);
  std::printf("Q6 revenue: %s\n", wimpi::engine::FormatRow(q6, 0).c_str());

  // 3. Run Q1 (a heavy aggregation) and print all group rows.
  wimpi::exec::QueryStats q1_stats;
  const wimpi::exec::Relation q1 = wimpi::tpch::RunQuery(1, db, &q1_stats);
  std::printf("\nQ1 (%lld groups):\n",
              static_cast<long long>(q1.num_rows()));
  for (const auto& row : wimpi::engine::FormatRelation(q1)) {
    std::printf("  %s\n", row.c_str());
  }

  // 4. Inspect the work counters the engine recorded.
  std::printf("\nQ1 recorded work: %.1fM compute ops, %.1f MB streamed, "
              "%.1fK random accesses across %zu operators\n",
              q1_stats.TotalComputeOps() / 1e6,
              q1_stats.TotalSeqBytes() / 1e6,
              q1_stats.TotalRandCount() / 1e3, q1_stats.ops.size());

  // 5. Project the same execution onto the paper's hardware.
  const wimpi::hw::CostModel model;
  std::printf("\nModeled Q1 runtime at this scale factor:\n");
  for (const char* name : {"pi3b+", "op-e5", "op-gold", "c6g.metal"}) {
    const auto& p = wimpi::hw::ProfileByName(name);
    std::printf("  %-10s %7.4f s\n", name,
                model.QuerySeconds(p, q1_stats));
  }
  return 0;
}
