// WIMPI cluster scaling: how a distributed TPC-H query behaves as Pi nodes
// are added, and why the paper's hand-written driver (local joins + partial
// aggregation) beats the naive plan that ships raw rows to one node.
//
//   ./examples/cluster_scaling [--query 1] [--sf 0.05] [--model-sf 10]
//                              [--faults <seed>]
#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "cluster/partials.h"
#include "cluster/wimpi_cluster.h"
#include "common/cli.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

int main(int argc, char** argv) {
  const wimpi::CommandLine cli(argc, argv);
  const int query = static_cast<int>(cli.GetInt("query", 1));
  const double sf = cli.GetDouble("sf", 0.05);
  const double model_sf = cli.GetDouble("model-sf", 10.0);

  if (!wimpi::tpch::InSf10Subset(query)) {
    std::printf("query must be one of 1,3,4,5,6,13,14,19\n");
    return 1;
  }

  wimpi::tpch::GenOptions gen;
  gen.scale_factor = sf;
  const wimpi::engine::Database db = wimpi::tpch::GenerateDatabase(gen);
  const wimpi::hw::CostModel model;

  std::printf("Q%d on WIMPI at modeled SF %g:\n", query, model_sf);
  std::printf("%6s %12s %12s %12s %12s %14s\n", "nodes", "total(s)",
              "node work", "network", "merge", "working set");
  for (const int nodes : {2, 4, 8, 12, 16, 20, 24}) {
    wimpi::cluster::ClusterOptions opts;
    opts.num_nodes = nodes;
    opts.sf_scale = model_sf / sf;
    const wimpi::cluster::WimpiCluster wimpi(db, opts);
    const auto run = wimpi.Run(query, model);
    if (!run.ok()) {
      std::printf("Q%d failed: %s\n", query, run.status().ToString().c_str());
      return 1;
    }
    std::printf("%6d %12.3f %12.3f %12.3f %12.3f %11.2f MB\n", nodes,
                run->total_seconds, run->max_node_seconds,
                run->network_seconds, run->merge_seconds,
                run->max_working_set_bytes / 1e6);
  }

  // The paper's §III-C3 anecdote: MonetDB's built-in distributed planner
  // shipped large intermediates to a single node, grinding the cluster to
  // a halt; their simple driver merged partial aggregates instead. Compare
  // the network volumes of the two plans at 24 nodes.
  wimpi::cluster::ClusterOptions opts;
  opts.num_nodes = 24;
  opts.sf_scale = model_sf / sf;
  const wimpi::cluster::WimpiCluster wimpi(db, opts);
  const auto run = wimpi.Run(query, model).value();

  // Naive plan: every node ships its filtered lineitem rows (the join
  // inputs) instead of partial aggregates.
  double naive_bytes = 0;
  {
    // Approximate: the scan output bytes of each node's partial stats are
    // what the naive plan would put on the wire.
    for (int i = 0; i < 24; ++i) {
      wimpi::exec::QueryStats stats;
      wimpi::cluster::RunPartial(query, wimpi.node_db(i), &stats);
      stats.Scale(opts.sf_scale);
      for (const auto& op : stats.ops) {
        if (op.op.rfind("gather", 0) == 0) naive_bytes += op.output_bytes;
      }
    }
  }
  const double naive_net_s = wimpi.NetworkSeconds(naive_bytes, 24);
  std::printf(
      "\nDriver comparison at 24 nodes (paper §III-C3):\n"
      "  partial-aggregate driver : %10.2f MB on the wire, %8.3f s\n"
      "  naive ship-rows plan     : %10.2f MB on the wire, %8.3f s "
      "(%.0fx more traffic)\n",
      run.network_bytes / 1e6, run.network_seconds, naive_bytes / 1e6,
      naive_net_s, naive_bytes / std::max(run.network_bytes, 1.0));

  // Optional fault-injection demo: the same query under a seed-derived
  // fault plan returns the identical answer, only slower.
  const uint64_t fault_seed = static_cast<uint64_t>(cli.GetInt("faults", 0));
  if (fault_seed != 0) {
    wimpi::cluster::ClusterOptions fopts = opts;
    fopts.faults =
        wimpi::cluster::FaultPlan::Generate(fault_seed, fopts.num_nodes);
    const wimpi::cluster::WimpiCluster faulty(db, fopts);
    const auto fr = faulty.Run(query, model);
    if (!fr.ok()) {
      std::printf("\nfaults: %s\n", fr.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "\nFault injection (seed %llu: %s):\n"
        "  clean %.3f s -> faulted %.3f s (+%.3f s degraded), %d retries, "
        "%d partitions reassigned, %d nodes lost\n",
        static_cast<unsigned long long>(fault_seed),
        fopts.faults.ToString().c_str(), run.total_seconds, fr->total_seconds,
        fr->degraded_seconds, fr->retries, fr->reassigned_partitions,
        fr->nodes_failed);
  }
  return 0;
}
