// wimpi_profile: EXPLAIN ANALYZE for the wimpi engine. Runs TPC-H queries
// with the operator profiler installed and prints, per query:
//
//   * the operator tree with measured wall time, rows in/out, parallel
//     fan-out, and the abstract work counters (OpStats) side by side;
//   * a cost-model residual report (measured vs modeled per-operator-class
//     seconds, anchored to this host's total).
//
// Optionally dumps per-morsel/per-task spans as Chrome trace-event JSON
// (chrome://tracing, ui.perfetto.dev) and the thread-pool latency metrics.
//
// With --perf, hardware counters (perf_event_open) are attached to the run:
// the tree gains per-operator IPC / LLC-miss columns and a counter-residual
// report compares measured instructions and DRAM traffic against the
// abstract work counters. Degrades to "counters unavailable" where the PMU
// is hidden (containers, VMs, perf_event_paranoid).
//
// With --stats, column statistics are collected for every table up front
// (stats::StatsRegistry) and installed as the cardinality estimator: each
// query then prints a cardinality-residual report — per-operator-class
// Q-error (max(est/act, act/est)) with the worst offender per class —
// next to the cost-model and counter residuals. Answers are bit-identical
// with or without --stats.
//
//   ./examples/wimpi_profile [--sf 0.1] [--q 1,6] [--threads 4]
//                            [--trace trace.json] [--json profile.json]
//                            [--metrics] [--metrics-prom metrics.prom]
//                            [--perf] [--stats]
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/file_util.h"
#include "engine/executor.h"
#include "hw/cost_model.h"
#include "hw/host_anchor.h"
#include "obs/export/exposition.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/residual.h"
#include "obs/trace.h"
#include "stats/registry.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace {

bool WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

std::vector<int> ParseQueries(const std::string& spec) {
  std::vector<int> out;
  int cur = -1;
  for (const char c : spec) {
    if (c >= '0' && c <= '9') {
      cur = (cur < 0 ? 0 : cur * 10) + (c - '0');
    } else if (cur >= 0) {
      out.push_back(cur);
      cur = -1;
    }
  }
  if (cur >= 0) out.push_back(cur);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const wimpi::CommandLine cli(argc, argv);
  const double sf = cli.GetDouble("sf", 0.1);
  const int threads = static_cast<int>(cli.GetInt("threads", 1));
  const std::string trace_path = cli.GetString("trace", "");
  const std::string json_path = cli.GetString("json", "");
  // --metrics-prom with no value prints the exposition to stdout; with a
  // value it writes the file.
  std::string prom_path = cli.GetString("metrics-prom", "");
  const bool prom_stdout = prom_path == "true";
  if (prom_stdout) prom_path.clear();
  const bool pool_metrics = cli.GetBool("metrics", false) || prom_stdout ||
                            !prom_path.empty();
  const bool residuals = cli.GetBool("residual", true);
  const bool perf = cli.GetBool("perf", false);
  const bool stats_on = cli.GetBool("stats", false);
  const std::vector<int> queries = ParseQueries(cli.GetString("q", "1,6"));

  // Fail on unwritable output paths before generating data and running
  // queries, not after.
  for (const std::string& path : {trace_path, json_path, prom_path}) {
    std::string path_error;
    if (!path.empty() && !wimpi::ValidateWritablePath(path, &path_error)) {
      std::fprintf(stderr, "%s\n", path_error.c_str());
      return 1;
    }
  }

  wimpi::tpch::GenOptions gen;
  gen.scale_factor = sf;
  const wimpi::engine::Database db = wimpi::tpch::GenerateDatabase(gen);
  std::printf("TPC-H SF %g (%lld lineitem rows), %d thread%s\n", sf,
              static_cast<long long>(db.table("lineitem").num_rows()),
              threads, threads == 1 ? "" : "s");

  wimpi::engine::Executor ex;
  ex.set_num_threads(threads);

  wimpi::stats::StatsRegistry registry;
  if (stats_on) {
    registry.CollectDatabase(db);
    ex.set_cardinality_estimator(&registry);
    std::printf("collected column statistics for %zu tables\n",
                db.tables().size());
  }

  wimpi::obs::ProfileOptions popts;
  popts.trace = !trace_path.empty();
  popts.pool_metrics = pool_metrics;
  popts.perf_counters = perf;
  if (perf && threads > 1) {
    std::printf("note: perf counters only observe the profiling thread and "
                "workers spawned after it; use --threads 1 for full "
                "coverage.\n");
  }

  const wimpi::hw::CostModel model;
  const wimpi::hw::HardwareProfile host = wimpi::hw::HostProfile();

  std::string profiles_json;  // accumulated {"Q1":{...},...} for --json
  for (const int q : queries) {
    wimpi::exec::QueryStats stats;
    wimpi::obs::QueryProfile profile;
    const wimpi::exec::Relation result = ex.RunProfiled(
        [&](wimpi::exec::QueryStats* s) {
          return wimpi::tpch::RunQuery(q, db, s);
        },
        popts, &profile, &stats, "Q" + std::to_string(q));
    std::printf("\n=== Q%d: %lld result row%s ===\n", q,
                static_cast<long long>(result.num_rows()),
                result.num_rows() == 1 ? "" : "s");
    std::printf("%s", profile.FormatTree().c_str());
    if (!json_path.empty()) {
      if (!profiles_json.empty()) profiles_json += ",";
      profiles_json += "\"Q" + std::to_string(q) + "\":" + profile.ToJson();
    }
    if (residuals) {
      const wimpi::obs::ResidualReport report =
          wimpi::obs::CostModelResiduals(profile, model, host, threads);
      std::printf("%s", report.Format().c_str());
    }
    if (perf) {
      std::printf("%s",
                  wimpi::obs::CounterResiduals(profile).Format().c_str());
    }
    if (stats_on) {
      const wimpi::obs::CardinalityReport card =
          wimpi::obs::CardinalityResiduals(profile);
      std::printf("%s", card.Format().c_str());
      wimpi::obs::RecordCardinalityMetrics(card);
    }
  }

  if (pool_metrics) {
    std::printf("\n--- pool metrics ---\n%s",
                wimpi::obs::MetricsRegistry::Global().FormatText().c_str());
  }
  if (prom_stdout || !prom_path.empty()) {
    // Host fingerprint so expositions from different machines are
    // distinguishable after scraping.
    wimpi::hw::PublishHostInfo();
  }
  if (prom_stdout) {
    std::printf("\n--- prometheus exposition ---\n%s",
                wimpi::obs::ExpositionFormat::WriteGlobal().c_str());
  }
  if (!prom_path.empty()) {
    if (!WriteTextFile(prom_path, wimpi::obs::ExpositionFormat::WriteGlobal()))
      return 1;
    std::printf("\nWrote Prometheus exposition to %s\n", prom_path.c_str());
  }
  if (!json_path.empty()) {
    if (!WriteTextFile(json_path, "{\"queries\":{" + profiles_json + "}}\n"))
      return 1;
    std::printf("\nWrote profile JSON to %s\n", json_path.c_str());
  }
  if (!trace_path.empty()) {
    if (!wimpi::obs::TraceSink::Global().WriteFile(trace_path)) return 1;
    std::printf("\nWrote %zu trace events to %s\n",
                wimpi::obs::TraceSink::Global().size(), trace_path.c_str());
  }
  return 0;
}
