// wimpi_profile: EXPLAIN ANALYZE for the wimpi engine. Runs TPC-H queries
// with the operator profiler installed and prints, per query:
//
//   * the operator tree with measured wall time, rows in/out, parallel
//     fan-out, and the abstract work counters (OpStats) side by side;
//   * a cost-model residual report (measured vs modeled per-operator-class
//     seconds, anchored to this host's total).
//
// Optionally dumps per-morsel/per-task spans as Chrome trace-event JSON
// (chrome://tracing, ui.perfetto.dev) and the thread-pool latency metrics.
//
// With --perf, hardware counters (perf_event_open) are attached to the run:
// the tree gains per-operator IPC / LLC-miss columns and a counter-residual
// report compares measured instructions and DRAM traffic against the
// abstract work counters. Degrades to "counters unavailable" where the PMU
// is hidden (containers, VMs, perf_event_paranoid).
//
// With --stats, column statistics are collected for every table up front
// (stats::StatsRegistry) and installed as the cardinality estimator: each
// query then prints a cardinality-residual report — per-operator-class
// Q-error (max(est/act, act/est)) with the worst offender per class —
// next to the cost-model and counter residuals. Answers are bit-identical
// with or without --stats.
//
// With --timeline, the roofline timeline sampler (obs/timeline/) runs in
// the background and each query prints an ASCII sparkline table — GB/s,
// IPC, and occupancy (busy cores) per bucket (--timeline-bucket-ms,
// default 10) — plus the per-pipeline roofline summary cross-checked
// against the cost model. --timeline-json dumps the sampled series as
// JSONL; with --trace, counter tracks ride along inside the Chrome trace.
// On hosts without a PMU the sparklines degrade to occupancy/memory only.
//
//   ./examples/wimpi_profile [--sf 0.1] [--q 1,6] [--threads 4]
//                            [--trace trace.json] [--json profile.json]
//                            [--metrics] [--metrics-prom metrics.prom]
//                            [--perf] [--stats]
//                            [--timeline] [--timeline-period-us 1000]
//                            [--timeline-bucket-ms 10]
//                            [--timeline-json timeline.jsonl]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/file_util.h"
#include "common/json.h"
#include "engine/executor.h"
#include "hw/cost_model.h"
#include "hw/host_anchor.h"
#include "obs/export/exposition.h"
#include "obs/metrics.h"
#include "obs/clock.h"
#include "obs/profiler.h"
#include "obs/residual.h"
#include "obs/timeline/roofline.h"
#include "obs/timeline/sampler.h"
#include "obs/trace.h"
#include "stats/registry.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace {

bool WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

// One sparkline row: `values` bucketed onto a pure-ASCII intensity ramp
// (blank = no data for that bucket, i.e. value < 0).
std::string Sparkline(const std::vector<double>& values, double vmax) {
  static const char kRamp[] = ".:-=+*#%@";
  constexpr int kLevels = static_cast<int>(sizeof(kRamp) - 1);
  std::string out;
  out.reserve(values.size());
  for (const double v : values) {
    if (v < 0) {
      out += ' ';
    } else if (vmax <= 0) {
      out += kRamp[0];
    } else {
      const int level = std::min(
          kLevels - 1, static_cast<int>(v / vmax * (kLevels - 1) + 0.5));
      out += kRamp[level];
    }
  }
  return out;
}

// Time-weighted bucket means of one interval signal over [start, end).
// Buckets with no data read -1 (rendered blank).
std::vector<double> BucketSignal(
    const std::vector<wimpi::obs::timeline::TimelineInterval>& ivs,
    int64_t start_us, int64_t bucket_us, size_t buckets,
    double (*get)(const wimpi::obs::timeline::TimelineInterval&)) {
  std::vector<double> sum(buckets, 0), weight(buckets, 0);
  for (const auto& iv : ivs) {
    const double v = get(iv);
    if (v < 0) continue;
    // Attribute the interval to every bucket it overlaps, by overlap time.
    for (size_t b = 0; b < buckets; ++b) {
      const int64_t b0 = start_us + static_cast<int64_t>(b) * bucket_us;
      const int64_t b1 = b0 + bucket_us;
      const int64_t lo = std::max(iv.t0_us, b0);
      const int64_t hi = std::min(iv.t1_us, b1);
      if (hi <= lo) continue;
      const double w = static_cast<double>(hi - lo);
      sum[b] += v * w;
      weight[b] += w;
    }
  }
  std::vector<double> out(buckets, -1);
  for (size_t b = 0; b < buckets; ++b) {
    if (weight[b] > 0) out[b] = sum[b] / weight[b];
  }
  return out;
}

void PrintSparkRow(const char* name, const std::vector<double>& v) {
  const double vmax = *std::max_element(v.begin(), v.end());
  if (vmax < 0) {
    std::printf("  %-5s unavailable (PMU hidden)\n", name);
    return;
  }
  std::printf("  %-5s [max %6.2f] |%s|\n", name, vmax,
              Sparkline(v, vmax).c_str());
}

std::vector<int> ParseQueries(const std::string& spec) {
  std::vector<int> out;
  int cur = -1;
  for (const char c : spec) {
    if (c >= '0' && c <= '9') {
      cur = (cur < 0 ? 0 : cur * 10) + (c - '0');
    } else if (cur >= 0) {
      out.push_back(cur);
      cur = -1;
    }
  }
  if (cur >= 0) out.push_back(cur);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const wimpi::CommandLine cli(argc, argv);
  const double sf = cli.GetDouble("sf", 0.1);
  const int threads = static_cast<int>(cli.GetInt("threads", 1));
  const std::string trace_path = cli.GetString("trace", "");
  const std::string json_path = cli.GetString("json", "");
  // --metrics-prom with no value prints the exposition to stdout; with a
  // value it writes the file.
  std::string prom_path = cli.GetString("metrics-prom", "");
  const bool prom_stdout = prom_path == "true";
  if (prom_stdout) prom_path.clear();
  const bool pool_metrics = cli.GetBool("metrics", false) || prom_stdout ||
                            !prom_path.empty();
  const bool residuals = cli.GetBool("residual", true);
  const bool perf = cli.GetBool("perf", false);
  const bool stats_on = cli.GetBool("stats", false);
  const std::string timeline_json = cli.GetString("timeline-json", "");
  const bool timeline_on = cli.GetBool("timeline", false) ||
                           !timeline_json.empty();
  const int64_t timeline_period_us = cli.GetInt("timeline-period-us", 1000);
  const int64_t bucket_ms = cli.GetInt("timeline-bucket-ms", 10);
  const std::vector<int> queries = ParseQueries(cli.GetString("q", "1,6"));

  // Fail on unwritable output paths before generating data and running
  // queries, not after.
  for (const std::string& path :
       {trace_path, json_path, prom_path, timeline_json}) {
    std::string path_error;
    if (!path.empty() && !wimpi::ValidateWritablePath(path, &path_error)) {
      std::fprintf(stderr, "%s\n", path_error.c_str());
      return 1;
    }
  }

  wimpi::tpch::GenOptions gen;
  gen.scale_factor = sf;
  const wimpi::engine::Database db = wimpi::tpch::GenerateDatabase(gen);
  std::printf("TPC-H SF %g (%lld lineitem rows), %d thread%s\n", sf,
              static_cast<long long>(db.table("lineitem").num_rows()),
              threads, threads == 1 ? "" : "s");

  wimpi::engine::Executor ex;
  ex.set_num_threads(threads);

  wimpi::stats::StatsRegistry registry;
  if (stats_on) {
    registry.CollectDatabase(db);
    ex.set_cardinality_estimator(&registry);
    std::printf("collected column statistics for %zu tables\n",
                db.tables().size());
  }

  wimpi::obs::ProfileOptions popts;
  popts.trace = !trace_path.empty();
  popts.pool_metrics = pool_metrics;
  popts.perf_counters = perf;
  if (perf && threads > 1) {
    std::printf("note: perf counters only observe the profiling thread and "
                "workers spawned after it; use --threads 1 for full "
                "coverage.\n");
  }

  const wimpi::hw::CostModel model;
  const wimpi::hw::HardwareProfile host = wimpi::hw::HostProfile();

  namespace tl = wimpi::obs::timeline;
  tl::TimelineSampler& sampler = tl::TimelineSampler::Global();
  bool sampling = false;
  if (timeline_on) {
    tl::SamplerOptions sopts;
    sopts.period_us = timeline_period_us;
    sampling = sampler.Start(sopts);
    if (!sampling) {
      std::printf("note: timeline sampler refused to start: %s\n",
                  sampler.note().c_str());
    } else if (!sampler.note().empty()) {
      std::printf("note: timeline sampler degraded: %s\n",
                  sampler.note().c_str());
    }
  }
  const tl::RooflineSpec roofline_spec =
      tl::RooflineSpec::FromProfile(host, threads, model);
  std::vector<std::pair<int, tl::QueryTimeline>> timelines;

  std::string profiles_json;  // accumulated {"Q1":{...},...} for --json
  for (const int q : queries) {
    wimpi::exec::QueryStats stats;
    wimpi::obs::QueryProfile profile;
    const int64_t tl_start = wimpi::obs::NowMicros();
    const wimpi::exec::Relation result = ex.RunProfiled(
        [&](wimpi::exec::QueryStats* s) {
          return wimpi::tpch::RunQuery(q, db, s);
        },
        popts, &profile, &stats, "Q" + std::to_string(q));
    const int64_t tl_end = wimpi::obs::NowMicros();
    std::printf("\n=== Q%d: %lld result row%s ===\n", q,
                static_cast<long long>(result.num_rows()),
                result.num_rows() == 1 ? "" : "s");
    std::printf("%s", profile.FormatTree().c_str());
    if (!json_path.empty()) {
      if (!profiles_json.empty()) profiles_json += ",";
      profiles_json += "\"Q" + std::to_string(q) + "\":" + profile.ToJson();
    }
    if (residuals) {
      const wimpi::obs::ResidualReport report =
          wimpi::obs::CostModelResiduals(profile, model, host, threads);
      std::printf("%s", report.Format().c_str());
    }
    if (perf) {
      std::printf("%s",
                  wimpi::obs::CounterResiduals(profile).Format().c_str());
    }
    if (stats_on) {
      const wimpi::obs::CardinalityReport card =
          wimpi::obs::CardinalityResiduals(profile);
      std::printf("%s", card.Format().c_str());
      wimpi::obs::RecordCardinalityMetrics(card);
    }
    if (sampling) {
      tl::QueryTimeline qtl = sampler.Slice(tl_start, tl_end);
      const std::vector<tl::TimelineInterval> ivs = qtl.Intervals();
      const int64_t bucket_us = bucket_ms * 1000;
      const size_t buckets = static_cast<size_t>(
          std::max<int64_t>(1, (tl_end - tl_start + bucket_us - 1) /
                                   bucket_us));
      std::printf("\n--- timeline (%lld ms in %zu x %lld ms buckets, "
                  "%zu samples) ---\n",
                  static_cast<long long>((tl_end - tl_start) / 1000), buckets,
                  static_cast<long long>(bucket_ms), qtl.samples.size());
      if (ivs.empty()) {
        std::printf("  (query finished between sampler ticks; lower "
                    "--timeline-period-us for sub-period queries)\n");
      } else {
        PrintSparkRow("GB/s",
                      BucketSignal(ivs, tl_start, bucket_us, buckets,
                                   [](const tl::TimelineInterval& iv) {
                                     return iv.gbps;
                                   }));
        PrintSparkRow("IPC",
                      BucketSignal(ivs, tl_start, bucket_us, buckets,
                                   [](const tl::TimelineInterval& iv) {
                                     return iv.ipc;
                                   }));
        // Occupancy: busy cores from the task clock where counted, else
        // lanes observed mid-pipeline (always available).
        PrintSparkRow("occ",
                      BucketSignal(ivs, tl_start, bucket_us, buckets,
                                   [](const tl::TimelineInterval& iv) {
                                     return iv.cpu_util >= 0
                                                ? iv.cpu_util
                                                : static_cast<double>(
                                                      iv.num_active);
                                   }));
        tl::RooflineSummary summary =
            tl::BuildRooflineSummary(qtl, roofline_spec);
        tl::CrossCheckWithModel(model, host, stats, threads, &summary);
        std::printf("%s", summary.Format().c_str());
      }
      timelines.emplace_back(q, std::move(qtl));
    }
  }
  if (sampling) sampler.Stop();

  if (pool_metrics) {
    std::printf("\n--- pool metrics ---\n%s",
                wimpi::obs::MetricsRegistry::Global().FormatText().c_str());
  }
  if (prom_stdout || !prom_path.empty()) {
    // Host fingerprint so expositions from different machines are
    // distinguishable after scraping.
    wimpi::hw::PublishHostInfo();
  }
  if (prom_stdout) {
    std::printf("\n--- prometheus exposition ---\n%s",
                wimpi::obs::ExpositionFormat::WriteGlobal().c_str());
  }
  if (!prom_path.empty()) {
    if (!WriteTextFile(prom_path, wimpi::obs::ExpositionFormat::WriteGlobal()))
      return 1;
    std::printf("\nWrote Prometheus exposition to %s\n", prom_path.c_str());
  }
  if (!json_path.empty()) {
    if (!WriteTextFile(json_path, "{\"queries\":{" + profiles_json + "}}\n"))
      return 1;
    std::printf("\nWrote profile JSON to %s\n", json_path.c_str());
  }
  if (!timeline_json.empty()) {
    // One JSONL stream: per query a {"type":"query"} line (written with
    // the shared JsonWriter) followed by that query's timeline header and
    // interval lines.
    std::string out;
    for (const auto& [q, qtl] : timelines) {
      wimpi::JsonWriter w;
      w.BeginObject()
          .Key("type").String("query")
          .Key("q").Int(q)
          .Key("samples").Int(static_cast<int64_t>(qtl.samples.size()))
          .EndObject();
      out += w.str();
      out += '\n';
      out += qtl.ToJsonl();
    }
    if (!WriteTextFile(timeline_json, out)) return 1;
    std::printf("\nWrote timeline JSONL for %zu quer(ies) to %s\n",
                timelines.size(), timeline_json.c_str());
  }
  if (!trace_path.empty()) {
    // Counter tracks render alongside the span tree in chrome://tracing /
    // Perfetto: bandwidth and occupancy as graphs above the operators.
    for (const auto& [q, qtl] : timelines) {
      (void)q;
      qtl.AppendCounterTracks(&wimpi::obs::TraceSink::Global());
    }
    if (!wimpi::obs::TraceSink::Global().WriteFile(trace_path)) return 1;
    std::printf("\nWrote %zu trace events to %s\n",
                wimpi::obs::TraceSink::Global().size(), trace_path.c_str());
  }
  return 0;
}
