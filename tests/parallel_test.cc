// Unit tests for the parallel subsystem (thread pool, morsel scheduler,
// task graphs) and 1-vs-N-thread equivalence of the parallel operator
// paths. Thread counts here exceed the host's core count on purpose: the
// determinism guarantees must hold regardless of physical parallelism.
#include <atomic>
#include <cmath>
#include <future>
#include <memory>
#include <random>
#include <stdexcept>
#include <vector>

#include "exec/aggregate.h"
#include "exec/exec_options.h"
#include "exec/expr.h"
#include "exec/filter.h"
#include "exec/join.h"
#include "exec/relation_ops.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "parallel/cancellation.h"
#include "parallel/steal.h"
#include "parallel/task_scheduler.h"
#include "parallel/thread_pool.h"
#include "storage/column.h"

namespace wimpi {
namespace {

using parallel::Morsel;
using parallel::SplitMorsels;
using parallel::TaskScheduler;
using parallel::ThreadPool;

// ---------- ThreadPool ----------

TEST(ThreadPoolTest, StartupAndShutdown) {
  for (int size : {1, 2, 4, 8}) {
    ThreadPool pool(size);
    EXPECT_EQ(pool.size(), size);
  }
  // Destruction with queued work drains the queue.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, SubmitRunsTasksAndFuturesComplete) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool survives a throwing task.
  auto ok = pool.Submit([] {});
  ok.get();
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const int64_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](int64_t i) { hits[i].fetch_add(1); });
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(1000,
                       [&](int64_t i) {
                         ran.fetch_add(1);
                         if (i == 37) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // Pool remains usable afterwards.
  pool.ParallelFor(100, [&](int64_t) { ran.fetch_add(1); });
  EXPECT_GE(ran.load(), 100);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // A worker that fans out again must not wait for a pool slot it is
  // occupying itself — nested loops run inline on the worker.
  ThreadPool pool(2);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(8, [&](int64_t) {
    EXPECT_TRUE(ThreadPool::OnWorkerThread() || true);
    pool.ParallelFor(16, [&](int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPoolTest, OnWorkerThreadDistinguishesCallers) {
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
  ThreadPool pool(2);
  bool on_worker = false;
  pool.Submit([&on_worker] { on_worker = ThreadPool::OnWorkerThread(); })
      .get();
  EXPECT_TRUE(on_worker);
}

TEST(ThreadPoolTest, QueueDepthGaugeTracksBacklog) {
  obs::SetPoolMetricsEnabled(true);
  auto& gauge = obs::MetricsRegistry::Global().gauge("pool.queue_depth");
  {
    ThreadPool pool(1);
    // Pin the only worker so subsequent submits pile up in the queue.
    std::promise<void> release;
    std::shared_future<void> released = release.get_future().share();
    std::promise<void> entered;
    auto blocker = pool.Submit([&] {
      entered.set_value();
      released.wait();
    });
    entered.get_future().wait();
    std::vector<std::future<void>> queued;
    for (int i = 0; i < 3; ++i) {
      queued.push_back(pool.Submit([released] { released.wait(); }));
    }
    EXPECT_EQ(gauge.Value(), 3.0);
    release.set_value();
    blocker.get();
    for (auto& f : queued) f.get();
    // Every pop republished the depth; drained pool reads zero.
    EXPECT_EQ(gauge.Value(), 0.0);
  }
  obs::SetPoolMetricsEnabled(false);
}

// ---------- Morsel splitting ----------

TEST(SplitMorselsTest, CoversRangeWithRaggedTail) {
  const auto morsels = SplitMorsels(100, 32);
  ASSERT_EQ(morsels.size(), 4u);
  int64_t expect_begin = 0;
  for (size_t i = 0; i < morsels.size(); ++i) {
    EXPECT_EQ(morsels[i].index, static_cast<int>(i));
    EXPECT_EQ(morsels[i].begin, expect_begin);
    expect_begin = morsels[i].end;
  }
  EXPECT_EQ(morsels.back().end, 100);
  EXPECT_EQ(morsels.back().rows(), 4);
}

TEST(SplitMorselsTest, EmptyAndSingle) {
  EXPECT_TRUE(SplitMorsels(0, 64).empty());
  const auto one = SplitMorsels(10, 64);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].rows(), 10);
}

TEST(TaskSchedulerTest, RunMorselsVisitsEachMorselOnce) {
  TaskScheduler sched(4);
  const int64_t total = 1 << 16;
  const int64_t morsel_rows = 1000;
  const auto expected = SplitMorsels(total, morsel_rows);
  std::vector<std::atomic<int>> seen(expected.size());
  for (int threads : {1, 2, 4, 7}) {
    for (auto& s : seen) s.store(0);
    sched.RunMorsels(total, morsel_rows, threads, [&](const Morsel& m) {
      ASSERT_LT(static_cast<size_t>(m.index), expected.size());
      EXPECT_EQ(m.begin, expected[m.index].begin);
      EXPECT_EQ(m.end, expected[m.index].end);
      seen[m.index].fetch_add(1);
    });
    for (size_t i = 0; i < seen.size(); ++i) {
      ASSERT_EQ(seen[i].load(), 1) << "threads=" << threads << " morsel " << i;
    }
  }
}

// ---------- Task graphs ----------

TEST(TaskSchedulerTest, TaskGraphHonorsDependencies) {
  TaskScheduler sched(4);
  // Diamond: 0 -> {1, 2} -> 3.
  std::atomic<int> order{0};
  std::vector<int> finished_at(4, -1);
  std::vector<std::function<void()>> nodes;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back([&, i] { finished_at[i] = order.fetch_add(1); });
  }
  sched.RunTaskGraph(nodes, {{}, {0}, {0}, {1, 2}});
  EXPECT_LT(finished_at[0], finished_at[1]);
  EXPECT_LT(finished_at[0], finished_at[2]);
  EXPECT_LT(finished_at[1], finished_at[3]);
  EXPECT_LT(finished_at[2], finished_at[3]);
}

TEST(TaskSchedulerTest, TaskGraphPropagatesExceptions) {
  TaskScheduler sched(2);
  std::vector<std::function<void()>> nodes;
  nodes.push_back([] {});
  nodes.push_back([] { throw std::runtime_error("node failed"); });
  nodes.push_back([] {});
  EXPECT_THROW(sched.RunTaskGraph(nodes, {{}, {0}, {1}}),
               std::runtime_error);
}

// ---------- Cooperative cancellation ----------

TEST(CancellationTest, ParallelForStopsClaimingIterations) {
  ThreadPool pool(4);
  parallel::CancellationToken cancel;
  std::atomic<int> ran{0};
  // Cancel from inside the loop: remaining un-claimed iterations are
  // skipped, in-flight bodies finish, and the call returns normally.
  pool.ParallelFor(
      100000,
      [&](int64_t i) {
        ran.fetch_add(1);
        if (i == 10) cancel.Cancel();
      },
      /*max_workers=*/4, &cancel);
  EXPECT_GE(ran.load(), 1);
  EXPECT_LT(ran.load(), 100000);
  // Pool stays usable; a fresh token runs everything.
  cancel.Reset();
  ran.store(0);
  pool.ParallelFor(64, [&](int64_t) { ran.fetch_add(1); }, 4, &cancel);
  EXPECT_EQ(ran.load(), 64);
}

TEST(CancellationTest, PreCancelledTokenSkipsInlinePathToo) {
  ThreadPool pool(2);
  parallel::CancellationToken cancel;
  cancel.Cancel();
  std::atomic<int> ran{0};
  // n == 1 takes the inline path; it must honour the token as well.
  pool.ParallelFor(1, [&](int64_t) { ran.fetch_add(1); }, 2, &cancel);
  pool.ParallelFor(1000, [&](int64_t) { ran.fetch_add(1); }, 2, &cancel);
  EXPECT_EQ(ran.load(), 0);
}

TEST(CancellationTest, RunMorselsStopsEarly) {
  TaskScheduler sched(4);
  parallel::CancellationToken cancel;
  std::atomic<int> ran{0};
  sched.RunMorsels(
      1 << 20, 256, 4,
      [&](const Morsel& m) {
        ran.fetch_add(1);
        if (m.index == 3) cancel.Cancel();
      },
      &cancel);
  EXPECT_GE(ran.load(), 1);
  EXPECT_LT(ran.load(), (1 << 20) / 256);
}

TEST(CancellationTest, RunTaskGraphSkipsAfterCancel) {
  TaskScheduler sched(2);
  parallel::CancellationToken cancel;
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> nodes;
  nodes.push_back([&] {
    ran.fetch_add(1);
    cancel.Cancel();
  });
  for (int i = 0; i < 4; ++i) {
    nodes.push_back([&] { ran.fetch_add(1); });
  }
  // A chain after the cancelling node: successors must be skipped.
  sched.RunTaskGraph(nodes, {{}, {0}, {1}, {2}, {3}}, &cancel);
  EXPECT_EQ(ran.load(), 1);
}

// ---------- Worker exception context ----------

TEST(TaskErrorTest, ParallelForWrapsWithIterationIndex) {
  ThreadPool pool(4);
  try {
    pool.ParallelFor(100, [&](int64_t i) {
      if (i == 37) throw std::runtime_error("boom");
    });
    FAIL() << "expected TaskError";
  } catch (const parallel::TaskError& e) {
    EXPECT_NE(std::string(e.what()).find("[parallel-for i=37]"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(TaskErrorTest, RunMorselsWrapsWithOpLabelAndMorselRange) {
  TaskScheduler sched(4);
  try {
    sched.RunMorsels(10000, 100, 4, [&](const Morsel& m) {
      if (m.index == 7) throw std::runtime_error("bad morsel");
    });
    FAIL() << "expected TaskError";
  } catch (const parallel::TaskError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("[op plan morsel 7 rows 700..800]"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("bad morsel"), std::string::npos);
    // Single-wrap: the inner morsel context survives; no outer
    // parallel-for frame is stacked on top.
    EXPECT_EQ(what.find("[parallel-for"), std::string::npos) << what;
  }
}

TEST(TaskErrorTest, RunTaskGraphWrapsWithNodeIndex) {
  TaskScheduler sched(2);
  std::vector<std::function<void()>> nodes;
  nodes.push_back([] {});
  nodes.push_back([] { throw std::runtime_error("node failed"); });
  try {
    sched.RunTaskGraph(nodes, {{}, {0}});
    FAIL() << "expected TaskError";
  } catch (const parallel::TaskError& e) {
    EXPECT_NE(std::string(e.what()).find("[graph node 1]"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("node failed"), std::string::npos);
  }
}

TEST(TaskErrorTest, IsARuntimeErrorForExistingCallers) {
  // Call sites that catch std::runtime_error keep working unchanged.
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(100, [](int64_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
}

// ---------- Operator equivalence: 1 thread vs many ----------

// Forces many morsels so the parallel paths genuinely split the input.
exec::ExecOptions ManyThreadOptions() {
  exec::ExecOptions o;
  o.num_threads = 4;
  o.morsel_rows = 1024;
  return o;
}

std::vector<double> F64(const storage::Column& c) {
  return std::vector<double>(c.F64Data(), c.F64Data() + c.size());
}
std::vector<int32_t> I32(const storage::Column& c) {
  return std::vector<int32_t>(c.I32Data(), c.I32Data() + c.size());
}
std::vector<int64_t> I64(const storage::Column& c) {
  return std::vector<int64_t>(c.I64Data(), c.I64Data() + c.size());
}

std::unique_ptr<storage::Column> MakeF64(int64_t n, uint64_t seed) {
  auto col = std::make_unique<storage::Column>(storage::DataType::kFloat64);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(0.0, 100.0);
  for (int64_t i = 0; i < n; ++i) col->AppendFloat64(dist(rng));
  return col;
}

std::unique_ptr<storage::Column> MakeI32(int64_t n, int32_t cardinality,
                                         uint64_t seed) {
  auto col = std::make_unique<storage::Column>(storage::DataType::kInt32);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int32_t> dist(0, cardinality - 1);
  for (int64_t i = 0; i < n; ++i) col->AppendInt32(dist(rng));
  return col;
}

TEST(ParallelOperatorsTest, FilterMatchesSequential) {
  const int64_t n = 50000;
  auto vals = MakeF64(n, 1);
  exec::Relation rel;
  rel.AddColumn("v", std::move(vals));
  const exec::ColumnSource src(rel);
  const auto preds = std::vector<exec::Predicate>{
      exec::Predicate::CmpF64("v", exec::CmpOp::kLt, 42.0)};

  const exec::SelVec seq = exec::Filter(src, preds, nullptr);
  exec::ScopedExecOptions scope(ManyThreadOptions());
  const exec::SelVec par = exec::Filter(src, preds, nullptr);
  EXPECT_EQ(par, seq);
}

TEST(ParallelOperatorsTest, GatherAndExprMatchSequential) {
  const int64_t n = 50000;
  exec::Relation rel;
  rel.AddColumn("a", MakeF64(n, 2));
  rel.AddColumn("b", MakeF64(n, 3));
  const exec::ColumnSource src(rel);
  const exec::SelVec sel = exec::Filter(
      src, {exec::Predicate::CmpF64("a", exec::CmpOp::kGe, 25.0)}, nullptr);

  const auto seq_gather = exec::Gather(rel.column("a"), sel, nullptr);
  const auto seq_mul =
      exec::MulF64(rel.column("a"), rel.column("b"), nullptr);

  exec::ScopedExecOptions scope(ManyThreadOptions());
  const auto par_gather = exec::Gather(rel.column("a"), sel, nullptr);
  const auto par_mul =
      exec::MulF64(rel.column("a"), rel.column("b"), nullptr);

  EXPECT_EQ(F64(*par_gather), F64(*seq_gather));
  EXPECT_EQ(F64(*par_mul), F64(*seq_mul));
}

TEST(ParallelOperatorsTest, HashJoinMatchesSequentialExactly) {
  const int64_t n_build = 20000, n_probe = 60000;
  auto build = MakeI32(n_build, 5000, 4);
  auto probe = MakeI32(n_probe, 5000, 5);

  const exec::JoinResult seq = exec::HashJoin(
      {build.get()}, {probe.get()}, exec::JoinKind::kInner, nullptr);
  exec::ScopedExecOptions scope(ManyThreadOptions());
  const exec::JoinResult par = exec::HashJoin(
      {build.get()}, {probe.get()}, exec::JoinKind::kInner, nullptr);

  // The bucket-partitioned parallel build reproduces the sequential LIFO
  // chains, so even the match *order* is identical.
  EXPECT_EQ(par.build_idx, seq.build_idx);
  EXPECT_EQ(par.probe_idx, seq.probe_idx);
}

TEST(ParallelOperatorsTest, SemiAndAntiJoinMatchSequential) {
  const int64_t n_build = 10000, n_probe = 30000;
  auto build = MakeI32(n_build, 2000, 6);
  auto probe = MakeI32(n_probe, 4000, 7);
  for (const auto kind : {exec::JoinKind::kSemi, exec::JoinKind::kAnti}) {
    const exec::JoinResult seq =
        exec::HashJoin({build.get()}, {probe.get()}, kind, nullptr);
    exec::ScopedExecOptions scope(ManyThreadOptions());
    const exec::JoinResult par =
        exec::HashJoin({build.get()}, {probe.get()}, kind, nullptr);
    EXPECT_EQ(par.probe_idx, seq.probe_idx);
  }
}

TEST(ParallelOperatorsTest, HashAggregateMatchesSequential) {
  const int64_t n = 80000;
  exec::Relation rel;
  rel.AddColumn("k", MakeI32(n, 300, 8));
  rel.AddColumn("v", MakeF64(n, 9));
  const exec::ColumnSource src(rel);
  const std::vector<exec::AggSpec> aggs = {
      {exec::AggFn::kSum, "v", "sum_v"},
      {exec::AggFn::kAvg, "v", "avg_v"},
      {exec::AggFn::kMin, "v", "min_v"},
      {exec::AggFn::kMax, "v", "max_v"},
      {exec::AggFn::kCountStar, "", "cnt"}};

  const exec::Relation seq = exec::HashAggregate(src, {"k"}, aggs, nullptr);
  exec::ScopedExecOptions scope(ManyThreadOptions());
  const exec::Relation par = exec::HashAggregate(src, {"k"}, aggs, nullptr);

  // Same groups in the same (first-appearance) order; integer aggregates
  // exact, floating sums within reassociation tolerance.
  ASSERT_EQ(par.num_rows(), seq.num_rows());
  EXPECT_EQ(I32(par.column("k")), I32(seq.column("k")));
  EXPECT_EQ(I64(par.column("cnt")), I64(seq.column("cnt")));
  EXPECT_EQ(F64(par.column("min_v")), F64(seq.column("min_v")));
  EXPECT_EQ(F64(par.column("max_v")), F64(seq.column("max_v")));
  for (int64_t g = 0; g < seq.num_rows(); ++g) {
    EXPECT_NEAR(par.column("sum_v").F64Data()[g],
                seq.column("sum_v").F64Data()[g],
                1e-9 * std::max(1.0, std::fabs(seq.column("sum_v").F64Data()[g])));
    EXPECT_NEAR(par.column("avg_v").F64Data()[g],
                seq.column("avg_v").F64Data()[g], 1e-9);
  }
}

TEST(ParallelOperatorsTest, GlobalAggregateAndScalarReductions) {
  const int64_t n = 70000;
  exec::Relation rel;
  rel.AddColumn("v", MakeF64(n, 10));
  const exec::ColumnSource src(rel);

  const exec::Relation seq = exec::HashAggregate(
      src, {}, {{exec::AggFn::kSum, "v", "s"}, {exec::AggFn::kCountStar, "", "c"}},
      nullptr);
  const double seq_sum = exec::SumF64(rel.column("v"), nullptr);
  const double seq_max = exec::MaxF64(rel.column("v"), nullptr);

  exec::ScopedExecOptions scope(ManyThreadOptions());
  const exec::Relation par = exec::HashAggregate(
      src, {}, {{exec::AggFn::kSum, "v", "s"}, {exec::AggFn::kCountStar, "", "c"}},
      nullptr);
  const double par_sum = exec::SumF64(rel.column("v"), nullptr);
  const double par_max = exec::MaxF64(rel.column("v"), nullptr);

  ASSERT_EQ(par.num_rows(), 1);
  EXPECT_EQ(par.column("c").I64Data()[0], seq.column("c").I64Data()[0]);
  EXPECT_NEAR(par.column("s").F64Data()[0], seq.column("s").F64Data()[0],
              1e-9 * std::fabs(seq.column("s").F64Data()[0]));
  EXPECT_NEAR(par_sum, seq_sum, 1e-9 * std::fabs(seq_sum));
  EXPECT_EQ(par_max, seq_max);  // max is reassociation-free
}

TEST(ParallelOperatorsTest, DeterministicAcrossRepeatedParallelRuns) {
  const int64_t n = 60000;
  exec::Relation rel;
  rel.AddColumn("k", MakeI32(n, 1000, 11));
  rel.AddColumn("v", MakeF64(n, 12));
  const exec::ColumnSource src(rel);
  exec::ScopedExecOptions scope(ManyThreadOptions());

  const exec::Relation a = exec::HashAggregate(
      src, {"k"}, {{exec::AggFn::kSum, "v", "s"}}, nullptr);
  const exec::Relation b = exec::HashAggregate(
      src, {"k"}, {{exec::AggFn::kSum, "v", "s"}}, nullptr);
  // Bit-identical across runs at a fixed thread count: morsel boundaries
  // and merge order are deterministic, whichever workers ran the morsels.
  EXPECT_EQ(I32(a.column("k")), I32(b.column("k")));
  EXPECT_EQ(F64(a.column("s")), F64(b.column("s")));
}

TEST(ParallelOperatorsTest, StatsAreThreadCountInvariant) {
  // Workers never touch QueryStats: the caller folds per-morsel partials
  // into one OpStats after the morsels join, so the counter stream is
  // identical to sequential execution for deterministic operators.
  const int64_t n = 50000;
  exec::Relation rel;
  rel.AddColumn("v", MakeF64(n, 13));
  const exec::ColumnSource src(rel);
  const auto preds = std::vector<exec::Predicate>{
      exec::Predicate::CmpF64("v", exec::CmpOp::kLt, 50.0)};

  exec::QueryStats seq_stats;
  const exec::SelVec sel = exec::Filter(src, preds, &seq_stats);
  exec::SumF64(rel.column("v"), &seq_stats);

  exec::QueryStats par_stats;
  {
    exec::ScopedExecOptions scope(ManyThreadOptions());
    exec::Filter(src, preds, &par_stats);
    exec::SumF64(rel.column("v"), &par_stats);
  }

  ASSERT_EQ(par_stats.ops.size(), seq_stats.ops.size());
  for (size_t i = 0; i < seq_stats.ops.size(); ++i) {
    EXPECT_EQ(par_stats.ops[i].op, seq_stats.ops[i].op);
    EXPECT_EQ(par_stats.ops[i].compute_ops, seq_stats.ops[i].compute_ops);
    EXPECT_EQ(par_stats.ops[i].seq_bytes, seq_stats.ops[i].seq_bytes);
    EXPECT_EQ(par_stats.ops[i].rand_count, seq_stats.ops[i].rand_count);
  }
  EXPECT_FALSE(sel.empty());
}

TEST(ParallelOperatorsTest, PlannedThreadsGates) {
  // Default options: everything sequential.
  EXPECT_EQ(exec::PlannedThreads(1 << 20), 1);
  {
    exec::ScopedExecOptions scope(ManyThreadOptions());
    EXPECT_EQ(exec::PlannedThreads(1 << 20), 4);
    // Tiny inputs do not fan out.
    EXPECT_EQ(exec::PlannedThreads(100), 1);
    // Workers never re-parallelize.
    ThreadPool pool(1);
    int nested = -1;
    pool.Submit([&nested] { nested = exec::PlannedThreads(1 << 20); }).get();
    EXPECT_EQ(nested, 1);
  }
  EXPECT_EQ(exec::PlannedThreads(1 << 20), 1);
}

TEST(StealPrimitivesTest, MorselCountForRowsBounds) {
  using parallel::MorselCountForRows;
  // Degenerate inputs collapse to one morsel.
  EXPECT_EQ(MorselCountForRows(0, 1.0, 1024, 256), 1);
  EXPECT_EQ(MorselCountForRows(-5, 1.0, 1024, 256), 1);
  EXPECT_EQ(MorselCountForRows(100, 1.0, 0, 256), 1);
  // Exact and ceiling division at the model scale.
  EXPECT_EQ(MorselCountForRows(2048, 1.0, 1024, 256), 2);
  EXPECT_EQ(MorselCountForRows(2049, 1.0, 1024, 256), 3);
  // The SF scale multiplies the logical row count.
  EXPECT_EQ(MorselCountForRows(1024, 4.0, 1024, 256), 4);
  // Cap: SF-100-class partitions stay cheap to model.
  EXPECT_EQ(MorselCountForRows(1 << 30, 10.0, 1024, 256), 256);
}

TEST(StealPrimitivesTest, StealHalfSplitsAndRespectsMinimum) {
  using parallel::MorselRange;
  using parallel::StealHalf;
  // Victim keeps the first half rounded up; thief takes the tail.
  MorselRange v{0, 10};
  const MorselRange stolen = StealHalf(&v, 2);
  EXPECT_EQ(v.begin, 0);
  EXPECT_EQ(v.end, 5);
  EXPECT_EQ(stolen.begin, 5);
  EXPECT_EQ(stolen.end, 10);
  // Odd sizes: victim keeps the extra morsel.
  MorselRange odd{4, 9};
  const MorselRange tail = StealHalf(&odd, 2);
  EXPECT_EQ(odd.end, 7);
  EXPECT_EQ(tail.begin, 7);
  EXPECT_EQ(tail.end, 9);
  // Below the minimum nothing moves.
  MorselRange tiny{0, 1};
  EXPECT_TRUE(StealHalf(&tiny, 2).empty());
  EXPECT_EQ(tiny.size(), 1);
}

TEST(StealPrimitivesTest, PickVictimPrefersMostLoaded) {
  using parallel::PickVictim;
  using parallel::VictimLoad;
  const std::vector<VictimLoad> loads = {
      {1.0, 4}, {5.0, 8}, {5.0, 8}, {0.5, 1}};
  // Most remaining work wins; ties break to the lowest index.
  EXPECT_EQ(PickVictim(loads, 0, 2), 1);
  // A thief never robs itself.
  EXPECT_EQ(PickVictim(loads, 1, 2), 2);
  // Victims below the min-steal threshold are skipped (index 3).
  EXPECT_EQ(PickVictim({{9.0, 1}, {1.0, 4}}, 2, 2), 1);
  // Nothing worth stealing.
  EXPECT_EQ(PickVictim({{9.0, 1}, {1.0, 0}}, 2, 2), -1);
}

}  // namespace
}  // namespace wimpi
