// Unit tests for the observability subsystem: metrics registry, trace
// sink/JSON export, operator profiler tree, and cost-model residuals.
#include <algorithm>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "engine/executor.h"
#include "exec/counters.h"
#include "exec/exec_options.h"
#include "gtest/gtest.h"
#include "hw/cost_model.h"
#include "hw/host_anchor.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/residual.h"
#include "obs/trace.h"
#include "obs/tracing/span.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace wimpi {
namespace {

// ---------- Metrics ----------

TEST(Metrics, CounterAndGauge) {
  obs::Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Add(5);
  c.Add(7);
  EXPECT_EQ(c.Value(), 12);
  c.Reset();
  EXPECT_EQ(c.Value(), 0);

  obs::Gauge g;
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.Value(), 3.5);
  g.Set(-1);
  EXPECT_DOUBLE_EQ(g.Value(), -1);
}

TEST(Metrics, HistogramBasics) {
  obs::Histogram h({1, 10, 100, 1000});
  EXPECT_EQ(h.Count(), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0);

  for (const double v : {0.5, 5.0, 5.0, 50.0, 500.0, 5000.0}) h.Record(v);
  EXPECT_EQ(h.Count(), 6);
  EXPECT_DOUBLE_EQ(h.Sum(), 5560.5);
  EXPECT_DOUBLE_EQ(h.Min(), 0.5);
  EXPECT_DOUBLE_EQ(h.Max(), 5000.0);
  const std::vector<int64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 5u);  // 4 bounds + overflow
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(counts[4], 1);

  h.Reset();
  EXPECT_EQ(h.Count(), 0);
  EXPECT_DOUBLE_EQ(h.Sum(), 0);
}

TEST(Metrics, HistogramPercentilesOrderedAndBounded) {
  obs::Histogram h(obs::Histogram::DefaultLatencyBoundsUs());
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  const double p50 = h.Percentile(0.5);
  const double p95 = h.Percentile(0.95);
  const double p99 = h.Percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Estimates stay inside the observed range (no bucket-edge overshoot).
  EXPECT_GE(p50, h.Min());
  EXPECT_LE(p99, h.Max());
  // And are in the right ballpark for a uniform 1..1000 sample.
  EXPECT_GT(p50, 100);
  EXPECT_LT(p50, 1000);
  EXPECT_GT(p99, 500);
}

TEST(Metrics, RegistryStableReferencesAndReset) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter& a = reg.counter("test.obs.counter");
  obs::Counter& b = reg.counter("test.obs.counter");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.Value(), 3);

  obs::Histogram& h = reg.histogram("test.obs.hist");
  h.Record(42);
  const auto snap = reg.ScalarSnapshot();
  EXPECT_DOUBLE_EQ(snap.at("test.obs.counter"), 3);
  EXPECT_DOUBLE_EQ(snap.at("test.obs.hist.count"), 1);

  const std::string text = reg.FormatText();
  EXPECT_NE(text.find("test.obs.counter 3"), std::string::npos);
  EXPECT_NE(text.find("test.obs.hist"), std::string::npos);

  reg.Reset();
  EXPECT_EQ(a.Value(), 0);
  EXPECT_EQ(h.Count(), 0);
}

// ---------- Trace ----------
// (JSON escaping itself is covered in common_test.cc; the escape helper
// lives in common/json.h now.)

TEST(Trace, DisabledSinkRecordsNothing) {
  auto& sink = obs::TraceSink::Global();
  sink.Clear();
  ASSERT_FALSE(sink.enabled());
  { obs::Span span("ignored", "test"); }
  EXPECT_EQ(sink.size(), 0u);
}

TEST(Trace, SpansAndJsonShape) {
  auto& sink = obs::TraceSink::Global();
  sink.Clear();
  sink.set_enabled(true);
  {
    obs::Span outer("outer \"quoted\"", "test");
    obs::Span inner(std::string("inner"), "test",
                    "{\"morsel\":3,\"rows\":65536}");
  }
  sink.set_enabled(false);
  ASSERT_EQ(sink.size(), 2u);

  const auto events = sink.Snapshot();
  // Spans record at destruction: inner closes first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer \"quoted\"");
  EXPECT_GE(events[1].dur_us, events[0].dur_us);
  // Nested spans form a causal tree in one trace.
  EXPECT_EQ(events[0].trace_id, events[1].trace_id);
  EXPECT_EQ(events[0].parent_id, events[1].span_id);
  EXPECT_EQ(events[1].parent_id, 0u);

  const std::string json = sink.ToJson();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Caller args are merged behind the span ids inside the same object.
  EXPECT_NE(json.find("\"morsel\":3,\"rows\":65536}"), std::string::npos);
  EXPECT_NE(json.find("\"span\":"), std::string::npos);
  EXPECT_NE(json.find("\"parent\":"), std::string::npos);
  // The quote in the name is escaped — the raw sequence `r "q` would break
  // the JSON string literal.
  EXPECT_NE(json.find("outer \\\"quoted\\\""), std::string::npos);
  sink.Clear();
}

TEST(Trace, ContextPropagatesAcrossThreadsViaScopedContext) {
  auto& sink = obs::TraceSink::Global();
  sink.Clear();
  sink.set_enabled(true);
  obs::SpanContext parent_ctx;
  {
    obs::Span parent("parent", "test");
    parent_ctx = parent.context();
    std::thread worker([parent_ctx] {
      obs::ScopedSpanContext adopt(parent_ctx);
      obs::Span child("child", "test");
    });
    worker.join();
  }
  sink.set_enabled(false);
  const auto events = sink.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "child");
  EXPECT_EQ(events[0].trace_id, parent_ctx.trace_id);
  EXPECT_EQ(events[0].parent_id, parent_ctx.span_id);
  sink.Clear();
}

// ---------- Profiler ----------

TEST(Profiler, InactiveScopesAreNoops) {
  EXPECT_FALSE(obs::ProfilerActive());
  obs::OpScope scope("Filter", 100);
  EXPECT_FALSE(scope.active());
  EXPECT_STREQ(obs::CurrentOpLabel(), "plan");
}

TEST(Profiler, TreeStructureAndStatsAttribution) {
  obs::QueryProfile profile;
  exec::QueryStats stats;
  {
    obs::ScopedProfiling prof({}, &profile, "unit");
    EXPECT_TRUE(obs::ProfilerActive());
    {
      obs::OpScope outer("HashJoin", 1000);
      EXPECT_TRUE(outer.active());
      EXPECT_STREQ(obs::CurrentOpLabel(), "HashJoin");
      {
        obs::OpScope build("hash_build", 400);
        exec::OpStats s;
        s.op = "hash_build";
        s.compute_ops = 123;
        stats.Add(std::move(s));  // lands on the innermost scope
        obs::NoteParallelPhase(4, 7);
      }
      outer.set_rows_out(50);
    }
    {
      obs::OpScope top("Filter", 1000);
      top.set_rows_out(10);
    }
    // Recorded outside any OpScope: attributed to the root (plan glue).
    exec::OpStats glue;
    glue.op = "glue";
    stats.Add(std::move(glue));
  }
  EXPECT_FALSE(obs::ProfilerActive());

  EXPECT_EQ(profile.root.name, "unit");
  ASSERT_EQ(profile.root.children.size(), 2u);
  const obs::ProfileNode& join = *profile.root.children[0];
  EXPECT_EQ(join.name, "HashJoin");
  EXPECT_EQ(join.rows_in, 1000);
  EXPECT_EQ(join.rows_out, 50);
  ASSERT_EQ(join.children.size(), 1u);
  const obs::ProfileNode& build = *join.children[0];
  EXPECT_EQ(build.name, "hash_build");
  EXPECT_EQ(build.threads, 4);
  EXPECT_EQ(build.morsels, 7);
  ASSERT_EQ(build.op_stats.size(), 1u);
  EXPECT_EQ(build.op_stats[0].op, "hash_build");
  EXPECT_DOUBLE_EQ(build.op_stats[0].compute_ops, 123);
  EXPECT_TRUE(join.op_stats.empty());
  ASSERT_EQ(profile.root.op_stats.size(), 1u);
  EXPECT_EQ(profile.root.op_stats[0].op, "glue");

  // Wall-clock accounting is hierarchical and non-negative.
  EXPECT_GE(profile.wall_seconds, profile.OperatorSeconds());
  EXPECT_GE(join.wall_seconds, join.ChildSeconds());
  EXPECT_GE(build.wall_seconds, 0);

  // The QueryStats single stream is untouched by attribution.
  ASSERT_EQ(stats.ops.size(), 2u);
  EXPECT_EQ(stats.ops[0].op, "hash_build");
  EXPECT_EQ(stats.ops[1].op, "glue");

  const std::string tree = profile.FormatTree();
  EXPECT_NE(tree.find("HashJoin"), std::string::npos);
  EXPECT_NE(tree.find("hash_build"), std::string::npos);
  EXPECT_NE(tree.find("rows 1000->50"), std::string::npos);
  EXPECT_NE(tree.find("threads 4"), std::string::npos);
  EXPECT_NE(tree.find("wall "), std::string::npos);
}

// A real profiled query: the tree's operator time must account for most of
// the measured wall time (the acceptance bar is 20% glue; we assert half to
// stay robust on loaded CI machines).
TEST(Profiler, OperatorTimeCoversQueryWall) {
  tpch::GenOptions gen;
  gen.scale_factor = 0.05;
  const engine::Database db = tpch::GenerateDatabase(gen);

  engine::Executor ex;
  obs::QueryProfile profile;
  exec::QueryStats stats;
  const exec::Relation r = ex.RunProfiled(
      [&](exec::QueryStats* s) { return tpch::RunQuery(1, db, s); },
      obs::ProfileOptions{}, &profile, &stats, "Q1");
  EXPECT_EQ(r.num_rows(), 4);

  EXPECT_GT(profile.wall_seconds, 0);
  EXPECT_FALSE(profile.root.children.empty());
  const double op_s = profile.OperatorSeconds();
  EXPECT_LE(op_s, profile.wall_seconds);
  EXPECT_GE(op_s, 0.5 * profile.wall_seconds)
      << profile.FormatTree();

  // Every OpStats the query recorded is attributed somewhere in the tree.
  std::function<size_t(const obs::ProfileNode&)> count_stats =
      [&](const obs::ProfileNode& n) {
        size_t c = n.op_stats.size();
        for (const auto& ch : n.children) c += count_stats(*ch);
        return c;
      };
  EXPECT_EQ(count_stats(profile.root), stats.ops.size());
}

// ---------- Residuals ----------

TEST(Residuals, ReportSharesAndAnchor) {
  tpch::GenOptions gen;
  gen.scale_factor = 0.02;
  const engine::Database db = tpch::GenerateDatabase(gen);

  engine::Executor ex;
  const hw::CostModel model;
  const hw::HardwareProfile host = hw::HostProfile();

  for (const int q : {1, 6}) {
    obs::QueryProfile profile;
    exec::QueryStats stats;  // OpStats only exist when the plan records them
    ex.RunProfiled(
        [&](exec::QueryStats* s) { return tpch::RunQuery(q, db, s); },
        obs::ProfileOptions{}, &profile, &stats, "Q" + std::to_string(q));

    const obs::ResidualReport report =
        obs::CostModelResiduals(profile, model, host, 1);
    EXPECT_FALSE(report.entries.empty()) << "Q" << q;
    EXPECT_GT(report.anchor, 0) << "Q" << q;
    EXPECT_GT(report.measured_total_seconds, 0) << "Q" << q;
    EXPECT_GT(report.modeled_total_seconds, 0) << "Q" << q;

    double measured_share = 0, modeled_share = 0, anchored_total = 0;
    for (const auto& e : report.entries) {
      measured_share += e.measured_share;
      modeled_share += e.modeled_share;
      anchored_total += e.anchored_model_seconds;
      EXPECT_NEAR(e.residual_seconds,
                  e.measured_seconds - e.anchored_model_seconds, 1e-12);
    }
    EXPECT_NEAR(measured_share, 1.0, 1e-9) << "Q" << q;
    EXPECT_NEAR(modeled_share, 1.0, 1e-9) << "Q" << q;
    // The anchor makes modeled and measured totals agree by construction.
    EXPECT_NEAR(anchored_total, report.measured_total_seconds,
                1e-9 * std::max(1.0, report.measured_total_seconds))
        << "Q" << q;

    const std::string text = report.Format();
    EXPECT_NE(text.find("op class"), std::string::npos);
    EXPECT_NE(text.find("anchor"), std::string::npos);
  }
}

}  // namespace
}  // namespace wimpi
