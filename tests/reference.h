#ifndef WIMPI_TESTS_REFERENCE_H_
#define WIMPI_TESTS_REFERENCE_H_

// Independent row-at-a-time reference implementations of all 22 TPC-H
// queries, used to validate the vectorized engine. They share nothing with
// the engine except the loaded tables: plain loops, std::map groupings and
// std::sort, following the SQL text directly (including the correlated
// subqueries, evaluated naively).

#include <string>
#include <variant>
#include <vector>

#include "engine/database.h"

namespace wimpi::tpch_ref {

using RefValue = std::variant<int64_t, double, std::string>;
using RefRow = std::vector<RefValue>;
using RefResult = std::vector<RefRow>;

// Runs reference query `q` (1..22).
RefResult RunReference(int q, const engine::Database& db);

}  // namespace wimpi::tpch_ref

#endif  // WIMPI_TESTS_REFERENCE_H_
