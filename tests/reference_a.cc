// Reference (naive) implementations of TPC-H Q1-Q11.
#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "common/date.h"
#include "common/strings.h"
#include "reference_util.h"

namespace wimpi::tpch_ref {

using wimpi::Contains;
using wimpi::DateAddMonths;
using wimpi::DateYear;
using wimpi::LikeMatch;
using wimpi::ParseDate;
using wimpi::StartsWith;

RefResult RefQ1(const engine::Database& db) {
  struct Acc {
    double qty = 0, base = 0, disc_price = 0, charge = 0, disc = 0;
    int64_t n = 0;
  };
  const int32_t cutoff = ParseDate("1998-12-01") - 90;
  std::map<std::pair<std::string, std::string>, Acc> groups;
  for (const auto& l : LoadLineitem(db)) {
    if (l.ship > cutoff) continue;
    Acc& a = groups[{l.rf, l.ls}];
    a.qty += l.qty;
    a.base += l.price;
    a.disc_price += l.price * (1 - l.disc);
    a.charge += l.price * (1 - l.disc) * (1 + l.tax);
    a.disc += l.disc;
    ++a.n;
  }
  RefResult out;
  for (const auto& [k, a] : groups) {
    const double n = static_cast<double>(a.n);
    out.push_back({k.first, k.second, a.qty, a.base, a.disc_price, a.charge,
                   a.qty / n, a.base / n, a.disc / n, a.n});
  }
  return out;
}

RefResult RefQ2(const engine::Database& db) {
  const auto europe = RefRegionNations(db, "EUROPE");
  auto in_europe = [&](int32_t nk) {
    return std::find(europe.begin(), europe.end(), nk) != europe.end();
  };
  const auto suppliers = LoadSupplier(db);
  const auto parts = LoadPart(db);
  const auto ps = LoadPartsupp(db);
  const auto nations = LoadNation(db);

  std::unordered_map<int32_t, const SupplierRow*> supp_by_key;
  for (const auto& s : suppliers) supp_by_key[s.suppkey] = &s;
  std::unordered_map<int32_t, const PartRow*> part_by_key;
  for (const auto& p : parts) {
    if (p.size == 15 && LikeMatch(p.type, "%BRASS")) part_by_key[p.partkey] = &p;
  }
  std::unordered_map<int32_t, std::string> nation_name;
  for (const auto& n : nations) nation_name[n.nationkey] = n.name;

  // min European supplycost per qualifying part
  std::unordered_map<int32_t, double> min_cost;
  for (const auto& x : ps) {
    if (!part_by_key.count(x.partkey)) continue;
    const auto* s = supp_by_key.at(x.suppkey);
    if (!in_europe(s->nationkey)) continue;
    auto it = min_cost.find(x.partkey);
    if (it == min_cost.end() || x.supplycost < it->second) {
      min_cost[x.partkey] = x.supplycost;
    }
  }
  struct Row {
    double acctbal;
    std::string nname, sname;
    int32_t partkey;
    std::string mfgr, addr, phone, comment;
  };
  std::vector<Row> rows;
  for (const auto& x : ps) {
    auto pit = part_by_key.find(x.partkey);
    if (pit == part_by_key.end()) continue;
    const auto* s = supp_by_key.at(x.suppkey);
    if (!in_europe(s->nationkey)) continue;
    if (x.supplycost != min_cost.at(x.partkey)) continue;
    rows.push_back({s->acctbal, nation_name[s->nationkey], s->name, x.partkey,
                    pit->second->mfgr, s->address, s->phone, s->comment});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return std::tie(b.acctbal, a.nname, a.sname, a.partkey) <
           std::tie(a.acctbal, b.nname, b.sname, b.partkey);
  });
  if (rows.size() > 100) rows.resize(100);
  RefResult out;
  for (const auto& r : rows) {
    out.push_back({r.nname, r.acctbal, r.sname, static_cast<int64_t>(r.partkey),
                   r.mfgr, r.addr, r.phone, r.comment});
  }
  return out;
}

RefResult RefQ3(const engine::Database& db) {
  const int32_t cutoff = ParseDate("1995-03-15");
  std::unordered_set<int32_t> building;
  for (const auto& c : LoadCustomer(db)) {
    if (c.mktsegment == "BUILDING") building.insert(c.custkey);
  }
  struct OrderInfo {
    int32_t date, ship;
  };
  std::unordered_map<int64_t, OrderInfo> orders;
  for (const auto& o : LoadOrders(db)) {
    if (o.orderdate < cutoff && building.count(o.custkey)) {
      orders[o.orderkey] = {o.orderdate, o.shippriority};
    }
  }
  std::map<int64_t, double> revenue;
  for (const auto& l : LoadLineitem(db)) {
    if (l.ship <= cutoff) continue;
    auto it = orders.find(l.orderkey);
    if (it == orders.end()) continue;
    revenue[l.orderkey] += l.price * (1 - l.disc);
  }
  struct Row {
    int64_t okey;
    double rev;
    int32_t date, ship;
  };
  std::vector<Row> rows;
  for (const auto& [k, r] : revenue) {
    rows.push_back({k, r, orders[k].date, orders[k].ship});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.rev != b.rev) return a.rev > b.rev;
    return a.date < b.date;
  });
  if (rows.size() > 10) rows.resize(10);
  RefResult out;
  for (const auto& r : rows) {
    out.push_back({r.okey, static_cast<int64_t>(r.date),
                   static_cast<int64_t>(r.ship), r.rev});
  }
  return out;
}

RefResult RefQ4(const engine::Database& db) {
  const int32_t lo = ParseDate("1993-07-01");
  const int32_t hi = DateAddMonths(lo, 3) - 1;
  std::unordered_set<int64_t> late_orders;
  for (const auto& l : LoadLineitem(db)) {
    if (l.commit < l.receipt) late_orders.insert(l.orderkey);
  }
  std::map<std::string, int64_t> counts;
  for (const auto& o : LoadOrders(db)) {
    if (o.orderdate >= lo && o.orderdate <= hi &&
        late_orders.count(o.orderkey)) {
      ++counts[o.priority];
    }
  }
  RefResult out;
  for (const auto& [k, v] : counts) out.push_back({k, v});
  return out;
}

RefResult RefQ5(const engine::Database& db) {
  const auto asia = RefRegionNations(db, "ASIA");
  const int32_t lo = ParseDate("1994-01-01");
  const int32_t hi = DateAddMonths(lo, 12) - 1;
  std::unordered_map<int32_t, int32_t> cust_nation;
  for (const auto& c : LoadCustomer(db)) cust_nation[c.custkey] = c.nationkey;
  std::unordered_map<int64_t, int32_t> order_cnation;
  for (const auto& o : LoadOrders(db)) {
    if (o.orderdate >= lo && o.orderdate <= hi) {
      order_cnation[o.orderkey] = cust_nation[o.custkey];
    }
  }
  std::unordered_map<int32_t, int32_t> supp_nation;
  for (const auto& s : LoadSupplier(db)) supp_nation[s.suppkey] = s.nationkey;
  auto in_asia = [&](int32_t nk) {
    return std::find(asia.begin(), asia.end(), nk) != asia.end();
  };
  std::map<int32_t, double> rev;
  for (const auto& l : LoadLineitem(db)) {
    auto it = order_cnation.find(l.orderkey);
    if (it == order_cnation.end()) continue;
    const int32_t snk = supp_nation[l.suppkey];
    if (snk != it->second || !in_asia(snk)) continue;
    rev[snk] += l.price * (1 - l.disc);
  }
  std::unordered_map<int32_t, std::string> nation_name;
  for (const auto& n : LoadNation(db)) nation_name[n.nationkey] = n.name;
  std::vector<std::pair<std::string, double>> rows;
  for (const auto& [nk, r] : rev) rows.push_back({nation_name[nk], r});
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  RefResult out;
  for (const auto& [n, r] : rows) out.push_back({n, r});
  return out;
}

RefResult RefQ6(const engine::Database& db) {
  const int32_t lo = ParseDate("1994-01-01");
  const int32_t hi = DateAddMonths(lo, 12) - 1;
  double rev = 0;
  for (const auto& l : LoadLineitem(db)) {
    if (l.ship >= lo && l.ship <= hi && l.disc >= 0.05 && l.disc <= 0.07 &&
        l.qty < 24) {
      rev += l.price * l.disc;
    }
  }
  return {{rev}};
}

RefResult RefQ7(const engine::Database& db) {
  const int32_t france = RefNationKey(db, "FRANCE");
  const int32_t germany = RefNationKey(db, "GERMANY");
  std::unordered_map<int32_t, int32_t> supp_nation, cust_nation;
  for (const auto& s : LoadSupplier(db)) supp_nation[s.suppkey] = s.nationkey;
  for (const auto& c : LoadCustomer(db)) cust_nation[c.custkey] = c.nationkey;
  std::unordered_map<int64_t, int32_t> order_cust;
  for (const auto& o : LoadOrders(db)) order_cust[o.orderkey] = o.custkey;

  std::unordered_map<int32_t, std::string> nation_name;
  for (const auto& n : LoadNation(db)) nation_name[n.nationkey] = n.name;

  std::map<std::tuple<std::string, std::string, int32_t>, double> rev;
  const int32_t lo = ParseDate("1995-01-01");
  const int32_t hi = ParseDate("1996-12-31");
  for (const auto& l : LoadLineitem(db)) {
    if (l.ship < lo || l.ship > hi) continue;
    const int32_t sn = supp_nation[l.suppkey];
    const int32_t cn = cust_nation[order_cust[l.orderkey]];
    const bool fr_de = sn == france && cn == germany;
    const bool de_fr = sn == germany && cn == france;
    if (!fr_de && !de_fr) continue;
    rev[{nation_name[sn], nation_name[cn], DateYear(l.ship)}] +=
        l.price * (1 - l.disc);
  }
  RefResult out;
  for (const auto& [k, v] : rev) {
    // Engine output order: cust_nation, supp_nation, l_year, revenue.
    out.push_back({std::get<1>(k), std::get<0>(k),
                   static_cast<int64_t>(std::get<2>(k)), v});
  }
  // Engine sorts by supp_nation, cust_nation, year.
  std::sort(out.begin(), out.end(), [](const RefRow& a, const RefRow& b) {
    return std::tie(std::get<std::string>(a[1]), std::get<std::string>(a[0]),
                    std::get<int64_t>(a[2])) <
           std::tie(std::get<std::string>(b[1]), std::get<std::string>(b[0]),
                    std::get<int64_t>(b[2]));
  });
  return out;
}

RefResult RefQ8(const engine::Database& db) {
  const auto america = RefRegionNations(db, "AMERICA");
  const int32_t brazil = RefNationKey(db, "BRAZIL");
  auto in_america = [&](int32_t nk) {
    return std::find(america.begin(), america.end(), nk) != america.end();
  };
  std::unordered_set<int32_t> steel_parts;
  for (const auto& p : LoadPart(db)) {
    if (p.type == "ECONOMY ANODIZED STEEL") steel_parts.insert(p.partkey);
  }
  std::unordered_map<int32_t, int32_t> cust_nation, supp_nation;
  for (const auto& c : LoadCustomer(db)) cust_nation[c.custkey] = c.nationkey;
  for (const auto& s : LoadSupplier(db)) supp_nation[s.suppkey] = s.nationkey;
  struct OInfo {
    int32_t custkey, date;
  };
  std::unordered_map<int64_t, OInfo> orders;
  const int32_t lo = ParseDate("1995-01-01");
  const int32_t hi = ParseDate("1996-12-31");
  for (const auto& o : LoadOrders(db)) {
    if (o.orderdate >= lo && o.orderdate <= hi) {
      orders[o.orderkey] = {o.custkey, o.orderdate};
    }
  }
  std::map<int32_t, std::pair<double, double>> by_year;  // brazil, total
  for (const auto& l : LoadLineitem(db)) {
    if (!steel_parts.count(l.partkey)) continue;
    auto it = orders.find(l.orderkey);
    if (it == orders.end()) continue;
    if (!in_america(cust_nation[it->second.custkey])) continue;
    const double volume = l.price * (1 - l.disc);
    auto& [br, tot] = by_year[DateYear(it->second.date)];
    tot += volume;
    if (supp_nation[l.suppkey] == brazil) br += volume;
  }
  RefResult out;
  for (const auto& [year, v] : by_year) {
    out.push_back({static_cast<int64_t>(year),
                   v.second == 0 ? 0.0 : v.first / v.second});
  }
  return out;
}

RefResult RefQ9(const engine::Database& db) {
  std::unordered_set<int32_t> green_parts;
  for (const auto& p : LoadPart(db)) {
    if (Contains(p.name, "green")) green_parts.insert(p.partkey);
  }
  std::unordered_map<int32_t, int32_t> supp_nation;
  for (const auto& s : LoadSupplier(db)) supp_nation[s.suppkey] = s.nationkey;
  std::unordered_map<int64_t, double> ps_cost;  // (partkey,suppkey) packed
  for (const auto& x : LoadPartsupp(db)) {
    ps_cost[(static_cast<int64_t>(x.partkey) << 32) | x.suppkey] =
        x.supplycost;
  }
  std::unordered_map<int64_t, int32_t> order_date;
  for (const auto& o : LoadOrders(db)) order_date[o.orderkey] = o.orderdate;
  std::unordered_map<int32_t, std::string> nation_name;
  for (const auto& n : LoadNation(db)) nation_name[n.nationkey] = n.name;

  std::map<std::pair<std::string, int32_t>, double> profit;
  for (const auto& l : LoadLineitem(db)) {
    if (!green_parts.count(l.partkey)) continue;
    const double cost =
        ps_cost.at((static_cast<int64_t>(l.partkey) << 32) | l.suppkey);
    const double amount = l.price * (1 - l.disc) - cost * l.qty;
    profit[{nation_name[supp_nation[l.suppkey]],
            DateYear(order_date[l.orderkey])}] += amount;
  }
  std::vector<std::tuple<std::string, int32_t, double>> rows;
  for (const auto& [k, v] : profit) rows.push_back({k.first, k.second, v});
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) < std::get<0>(b);
    return std::get<1>(a) > std::get<1>(b);
  });
  RefResult out;
  for (const auto& [n, y, v] : rows) {
    out.push_back({n, static_cast<int64_t>(y), v});
  }
  return out;
}

RefResult RefQ10(const engine::Database& db) {
  const int32_t lo = ParseDate("1993-10-01");
  const int32_t hi = DateAddMonths(lo, 3) - 1;
  std::unordered_map<int64_t, int32_t> order_cust;
  for (const auto& o : LoadOrders(db)) {
    if (o.orderdate >= lo && o.orderdate <= hi) {
      order_cust[o.orderkey] = o.custkey;
    }
  }
  std::unordered_map<int32_t, double> rev;
  for (const auto& l : LoadLineitem(db)) {
    if (l.rf != "R") continue;
    auto it = order_cust.find(l.orderkey);
    if (it == order_cust.end()) continue;
    rev[it->second] += l.price * (1 - l.disc);
  }
  std::unordered_map<int32_t, std::string> nation_name;
  for (const auto& n : LoadNation(db)) nation_name[n.nationkey] = n.name;
  struct Row {
    std::string nname;
    int32_t custkey;
    std::string cname;
    double revenue, acctbal;
    std::string phone, address, comment;
  };
  std::vector<Row> rows;
  for (const auto& c : LoadCustomer(db)) {
    auto it = rev.find(c.custkey);
    if (it == rev.end()) continue;
    rows.push_back({nation_name[c.nationkey], c.custkey, c.name, it->second,
                    c.acctbal, c.phone, c.address, c.comment});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.revenue != b.revenue) return a.revenue > b.revenue;
    return a.custkey < b.custkey;
  });
  if (rows.size() > 20) rows.resize(20);
  RefResult out;
  for (const auto& r : rows) {
    out.push_back({r.nname, static_cast<int64_t>(r.custkey), r.cname,
                   r.revenue, r.acctbal, r.phone, r.address, r.comment});
  }
  return out;
}

RefResult RefQ11(const engine::Database& db) {
  const int32_t germany = RefNationKey(db, "GERMANY");
  const double sf =
      static_cast<double>(db.table("supplier").num_rows()) / 10000.0;
  std::unordered_set<int32_t> german;
  for (const auto& s : LoadSupplier(db)) {
    if (s.nationkey == germany) german.insert(s.suppkey);
  }
  std::unordered_map<int32_t, double> value;
  double total = 0;
  for (const auto& x : LoadPartsupp(db)) {
    if (!german.count(x.suppkey)) continue;
    const double v = x.supplycost * x.availqty;
    value[x.partkey] += v;
    total += v;
  }
  const double threshold = total * 0.0001 / sf;
  std::vector<std::pair<int32_t, double>> rows;
  for (const auto& [k, v] : value) {
    if (v > threshold) rows.push_back({k, v});
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  RefResult out;
  for (const auto& [k, v] : rows) {
    out.push_back({static_cast<int64_t>(k), v});
  }
  return out;
}

}  // namespace wimpi::tpch_ref
