#include "storage/column.h"
#include "storage/dictionary.h"
#include "storage/memory_tracker.h"
#include "storage/table.h"

#include "gtest/gtest.h"

namespace wimpi::storage {
namespace {

TEST(DictionaryTest, CodesAreDenseAndStable) {
  Dictionary d;
  EXPECT_EQ(d.GetOrAdd("AIR"), 0);
  EXPECT_EQ(d.GetOrAdd("MAIL"), 1);
  EXPECT_EQ(d.GetOrAdd("AIR"), 0);
  EXPECT_EQ(d.size(), 2);
  EXPECT_EQ(d.ValueAt(1), "MAIL");
  EXPECT_EQ(d.Find("MAIL"), 1);
  EXPECT_EQ(d.Find("SHIP"), -1);
}

TEST(DictionaryTest, FreezeKeepsLookup) {
  Dictionary d;
  d.GetOrAdd("a");
  d.GetOrAdd("b");
  const int64_t before = d.MemoryBytes();
  d.FreezeForRead();
  EXPECT_LT(d.MemoryBytes(), before);
  EXPECT_EQ(d.Find("b"), 1);  // falls back to linear scan
  EXPECT_EQ(d.ValueAt(0), "a");
}

TEST(ColumnTest, TypedStorage) {
  Column c32(DataType::kInt32);
  c32.AppendInt32(7);
  EXPECT_EQ(c32.size(), 1);
  EXPECT_EQ(c32.I32Data()[0], 7);

  Column c64(DataType::kInt64);
  c64.AppendInt64(1LL << 40);
  EXPECT_EQ(c64.I64Data()[0], 1LL << 40);

  Column cf(DataType::kFloat64);
  cf.AppendFloat64(2.5);
  EXPECT_DOUBLE_EQ(cf.F64Data()[0], 2.5);

  Column cs(DataType::kString);
  cs.AppendString("x");
  cs.AppendString("y");
  cs.AppendString("x");
  EXPECT_EQ(cs.size(), 3);
  EXPECT_EQ(cs.I32Data()[2], cs.I32Data()[0]);
  EXPECT_EQ(cs.StringAt(1), "y");
}

TEST(ColumnTest, ValueBytesTracksCapacity) {
  Column c(DataType::kInt64);
  for (int i = 0; i < 100; ++i) c.AppendInt64(i);
  c.ShrinkToFit();
  EXPECT_EQ(c.ValueBytes(), 100 * 8);
}

TEST(TableTest, FinishLoadComputesRows) {
  Schema s({{"k", DataType::kInt32}, {"v", DataType::kFloat64}});
  Table t("t", s);
  for (int i = 0; i < 10; ++i) {
    t.column(0).AppendInt32(i);
    t.column(1).AppendFloat64(i * 0.5);
  }
  t.FinishLoad();
  EXPECT_EQ(t.num_rows(), 10);
  EXPECT_EQ(t.ColumnIndex("v"), 1);
  EXPECT_GT(t.MemoryBytes(), 0);
}

TEST(TableTest, NewTableLikeSharesDictionaries) {
  Schema s({{"name", DataType::kString}});
  Table t("t", s);
  t.column(0).AppendString("alpha");
  t.FinishLoad();
  auto like = NewTableLike(t, "t2");
  EXPECT_EQ(like->column(0).dict().get(), t.column(0).dict().get());
  like->column(0).AppendCode(0);
  like->FinishLoad();
  EXPECT_EQ(like->column(0).StringAt(0), "alpha");
}

TEST(TableTest, SharedDictionaryCountedOnce) {
  Schema s({{"a", DataType::kString}});
  Table t("t", s);
  for (int i = 0; i < 100; ++i) t.column("a").AppendString("v" + std::to_string(i));
  t.FinishLoad();
  auto part = NewTableLike(t, "part");
  part->column(0).AppendCode(0);
  part->FinishLoad();
  // The partition's memory is its codes plus the (shared) dictionary; it
  // must not be larger than the source table's memory.
  EXPECT_LE(part->MemoryBytes(), t.MemoryBytes());
}

TEST(MemoryTrackerTest, BudgetAndPeak) {
  MemoryTracker m(1000);
  m.Consume(600);
  EXPECT_FALSE(m.over_budget());
  m.Consume(600);
  EXPECT_TRUE(m.over_budget());
  EXPECT_EQ(m.peak(), 1200);
  EXPECT_EQ(m.PeakOvershoot(), 200);
  EXPECT_FALSE(m.CheckBudget("x").ok());
  m.Release(600);
  EXPECT_FALSE(m.over_budget());
  EXPECT_EQ(m.peak(), 1200);  // peak is sticky
  m.Reset();
  EXPECT_EQ(m.used(), 0);
  EXPECT_EQ(m.peak(), 0);
}

TEST(MemoryTrackerTest, UnlimitedNeverOverBudget) {
  MemoryTracker m;
  m.Consume(1LL << 40);
  EXPECT_FALSE(m.over_budget());
  EXPECT_EQ(m.PeakOvershoot(), 0);
  EXPECT_TRUE(m.CheckBudget("x").ok());
}

}  // namespace
}  // namespace wimpi::storage
