#ifndef WIMPI_TESTS_TEST_UTIL_H_
#define WIMPI_TESTS_TEST_UTIL_H_

#include <cmath>
#include <sstream>
#include <string>

#include "exec/relation.h"
#include "gtest/gtest.h"
#include "reference.h"

namespace wimpi {

// Converts an engine relation to reference-result form: int32/date/int64 ->
// int64, float64 -> double, string -> std::string.
inline tpch_ref::RefResult ToRefResult(const exec::Relation& rel) {
  tpch_ref::RefResult out;
  out.reserve(rel.num_rows());
  for (int64_t r = 0; r < rel.num_rows(); ++r) {
    tpch_ref::RefRow row;
    for (int c = 0; c < rel.num_columns(); ++c) {
      const auto& col = rel.column(c);
      switch (col.type()) {
        case storage::DataType::kInt64:
          row.emplace_back(col.I64Data()[r]);
          break;
        case storage::DataType::kFloat64:
          row.emplace_back(col.F64Data()[r]);
          break;
        case storage::DataType::kString:
          row.emplace_back(std::string(col.StringAt(r)));
          break;
        default:
          row.emplace_back(static_cast<int64_t>(col.I32Data()[r]));
          break;
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

inline std::string RefRowToString(const tpch_ref::RefRow& row) {
  std::ostringstream os;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) os << '|';
    if (std::holds_alternative<int64_t>(row[i])) {
      os << std::get<int64_t>(row[i]);
    } else if (std::holds_alternative<double>(row[i])) {
      os << std::get<double>(row[i]);
    } else {
      os << std::get<std::string>(row[i]);
    }
  }
  return os.str();
}

// Cell-wise comparison with relative/absolute tolerance on doubles.
inline void ExpectRefResultsEqual(const tpch_ref::RefResult& actual,
                                  const tpch_ref::RefResult& expected,
                                  double tol = 1e-6) {
  ASSERT_EQ(actual.size(), expected.size()) << "row count mismatch";
  for (size_t r = 0; r < actual.size(); ++r) {
    ASSERT_EQ(actual[r].size(), expected[r].size()) << "arity at row " << r;
    for (size_t c = 0; c < actual[r].size(); ++c) {
      const auto& a = actual[r][c];
      const auto& e = expected[r][c];
      if (std::holds_alternative<double>(e)) {
        ASSERT_TRUE(std::holds_alternative<double>(a))
            << "type mismatch at (" << r << "," << c << ")";
        const double av = std::get<double>(a);
        const double ev = std::get<double>(e);
        const double bound = tol * std::max({1.0, std::fabs(av), std::fabs(ev)});
        ASSERT_NEAR(av, ev, bound)
            << "row " << r << " col " << c << "\n actual:   "
            << RefRowToString(actual[r]) << "\n expected: "
            << RefRowToString(expected[r]);
      } else {
        ASSERT_TRUE(a == e) << "row " << r << " col " << c
                            << "\n actual:   " << RefRowToString(actual[r])
                            << "\n expected: " << RefRowToString(expected[r]);
      }
    }
  }
}

}  // namespace wimpi

#endif  // WIMPI_TESTS_TEST_UTIL_H_
