// Benchmark artifact pipeline: write/read round-trip, and the regression
// comparison semantics wimpi_bench_compare and the CI gate rely on.
#include "artifact.h"

#include <cstdio>
#include <string>

#include "gtest/gtest.h"

namespace wimpi::bench {
namespace {

RunArtifact SampleArtifact() {
  RunArtifact a = MakeArtifact("table2_sf1", /*model_sf=*/1.0);
  a.rows["pi3b+"]["Q1"] = 12.5;
  a.rows["pi3b+"]["Q6"] = 1.75;
  a.rows["op-e5"]["Q1"] = 1.25;
  a.rows["op-e5"]["Q6"] = 0.2;
  a.rows["host"]["Q1.wall_seconds"] = 0.042;
  a.metrics["pool.tasks"] = 128;
  return a;
}

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

TEST(Artifact, MakeFillsEnvironment) {
  const RunArtifact a = MakeArtifact("smoke", 0.5);
  EXPECT_EQ(a.schema_version, kArtifactSchemaVersion);
  EXPECT_EQ(a.bench, "smoke");
  EXPECT_DOUBLE_EQ(a.model_sf, 0.5);
  EXPECT_EQ(a.unit, "seconds");
  EXPECT_FALSE(a.git_sha.empty());
  EXPECT_GE(a.host_threads, 1);
}

TEST(Artifact, WriteReadRoundTrip) {
  const RunArtifact a = SampleArtifact();
  const std::string path = TempPath("wimpi_artifact_roundtrip.json");
  ASSERT_TRUE(WriteArtifact(path, a));

  RunArtifact b;
  std::string error;
  ASSERT_TRUE(ReadArtifact(path, &b, &error)) << error;
  EXPECT_EQ(b.schema_version, a.schema_version);
  EXPECT_EQ(b.bench, a.bench);
  EXPECT_EQ(b.git_sha, a.git_sha);
  EXPECT_DOUBLE_EQ(b.model_sf, a.model_sf);
  EXPECT_EQ(b.unit, a.unit);
  EXPECT_EQ(b.hostname, a.hostname);
  EXPECT_EQ(b.host_threads, a.host_threads);
  EXPECT_EQ(b.perf_available, a.perf_available);
  EXPECT_EQ(b.rows, a.rows);
  EXPECT_EQ(b.metrics, a.metrics);
  std::remove(path.c_str());
}

TEST(Artifact, ReadRejectsWrongSchemaVersion) {
  RunArtifact a = SampleArtifact();
  a.schema_version = kArtifactSchemaVersion + 1;
  const std::string path = TempPath("wimpi_artifact_badversion.json");
  ASSERT_TRUE(WriteArtifact(path, a));
  RunArtifact b;
  std::string error;
  EXPECT_FALSE(ReadArtifact(path, &b, &error));
  EXPECT_NE(error.find("schema"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Artifact, ReadReportsMissingFile) {
  RunArtifact b;
  std::string error;
  EXPECT_FALSE(ReadArtifact(TempPath("wimpi_artifact_nonexistent.json"),
                            &b, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ArtifactCompare, SelfCompareIsClean) {
  const RunArtifact a = SampleArtifact();
  const CompareResult r = CompareArtifacts(a, a, CompareOptions{});
  EXPECT_TRUE(r.ok) << r.Format();
  EXPECT_TRUE(r.diffs.empty());
  EXPECT_TRUE(r.errors.empty());
}

TEST(ArtifactCompare, WithinToleranceIsClean) {
  const RunArtifact base = SampleArtifact();
  RunArtifact cur = base;
  cur.rows["pi3b+"]["Q1"] *= 1.01;  // inside the 2% default
  const CompareResult r = CompareArtifacts(base, cur, CompareOptions{});
  EXPECT_TRUE(r.ok) << r.Format();
}

TEST(ArtifactCompare, RegressionBeyondToleranceFails) {
  const RunArtifact base = SampleArtifact();
  RunArtifact cur = base;
  cur.rows["pi3b+"]["Q1"] *= 1.10;  // 10% slower
  const CompareResult r = CompareArtifacts(base, cur, CompareOptions{});
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.diffs.empty());
  EXPECT_TRUE(r.diffs[0].regression);
  EXPECT_EQ(r.diffs[0].series, "pi3b+");
  EXPECT_EQ(r.diffs[0].metric, "Q1");
  EXPECT_NE(r.Format().find("REGRESSION"), std::string::npos);
}

TEST(ArtifactCompare, ImprovementIsReportedButPasses) {
  const RunArtifact base = SampleArtifact();
  RunArtifact cur = base;
  cur.rows["pi3b+"]["Q1"] *= 0.80;  // 20% faster
  const CompareResult r = CompareArtifacts(base, cur, CompareOptions{});
  EXPECT_TRUE(r.ok) << r.Format();
  ASSERT_FALSE(r.diffs.empty());
  EXPECT_FALSE(r.diffs[0].regression);
}

TEST(ArtifactCompare, MissingMetricFailsUnlessAllowed) {
  const RunArtifact base = SampleArtifact();
  RunArtifact cur = base;
  cur.rows["op-e5"].erase("Q6");
  CompareOptions opts;
  const CompareResult strict = CompareArtifacts(base, cur, opts);
  EXPECT_FALSE(strict.ok);
  EXPECT_FALSE(strict.errors.empty());

  opts.fail_on_missing = false;
  const CompareResult lax = CompareArtifacts(base, cur, opts);
  EXPECT_TRUE(lax.ok) << lax.Format();
}

TEST(ArtifactCompare, MeasuredMetricsGatedOnlyByWallTol) {
  const RunArtifact base = SampleArtifact();
  RunArtifact cur = base;
  cur.rows["host"]["Q1.wall_seconds"] *= 3.0;  // huge, but host noise

  const CompareResult lax = CompareArtifacts(base, cur, CompareOptions{});
  EXPECT_TRUE(lax.ok) << lax.Format();  // wall_tol unset -> informational

  CompareOptions opts;
  opts.wall_tol = 0.5;
  const CompareResult strict = CompareArtifacts(base, cur, opts);
  EXPECT_FALSE(strict.ok);
}

TEST(ArtifactCompare, StructuralMismatchesAreErrors) {
  const RunArtifact base = SampleArtifact();
  RunArtifact cur = base;
  cur.bench = "table3_sf10";
  const CompareResult r = CompareArtifacts(base, cur, CompareOptions{});
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.errors.empty());
}

TEST(ArtifactCompare, TinyAbsoluteDifferencesIgnored) {
  RunArtifact base = SampleArtifact();
  base.rows["op-e5"]["Qz"] = 0.0;
  RunArtifact cur = base;
  cur.rows["op-e5"]["Qz"] = 5e-7;  // below abs_floor, infinite relative
  const CompareResult r = CompareArtifacts(base, cur, CompareOptions{});
  EXPECT_TRUE(r.ok) << r.Format();
}

}  // namespace
}  // namespace wimpi::bench
