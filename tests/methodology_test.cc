// Methodology validation: the benches execute at a small physical SF and
// project counters to the target SF. That is only sound if the recorded
// work actually scales (near-)linearly with SF -- verified here by
// generating two physical sizes and comparing scaled counters, and by
// checking that modeled runtimes are SF-consistent.
#include "gtest/gtest.h"
#include "hw/cost_model.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace wimpi {
namespace {

engine::Database Gen(double sf) {
  tpch::GenOptions opts;
  opts.scale_factor = sf;
  return tpch::GenerateDatabase(opts);
}

class SfInvarianceTest : public ::testing::TestWithParam<int> {};
// The SF 10 subset plus two join-heavy extras.
INSTANTIATE_TEST_SUITE_P(Queries, SfInvarianceTest,
                         ::testing::Values(1, 3, 5, 6, 9, 13, 18),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

TEST_P(SfInvarianceTest, CountersScaleNearLinearlyWithSf) {
  const int q = GetParam();
  static const engine::Database& small = *new engine::Database(Gen(0.01));
  static const engine::Database& big = *new engine::Database(Gen(0.04));

  exec::QueryStats s_small, s_big;
  tpch::RunQuery(q, small, &s_small);
  tpch::RunQuery(q, big, &s_big);
  s_small.Scale(4.0);  // project 0.01 -> 0.04

  // Totals after projection should match the genuinely larger run within
  // a modest factor (hash-table sizes and selectivity noise allowed).
  const double seq_ratio = s_small.TotalSeqBytes() / s_big.TotalSeqBytes();
  const double ops_ratio =
      s_small.TotalComputeOps() / s_big.TotalComputeOps();
  EXPECT_GT(seq_ratio, 0.7) << "Q" << q;
  EXPECT_LT(seq_ratio, 1.4) << "Q" << q;
  EXPECT_GT(ops_ratio, 0.7) << "Q" << q;
  EXPECT_LT(ops_ratio, 1.4) << "Q" << q;

  // And the modeled Pi runtime projected from the small run should agree
  // with the modeled runtime of the real larger run.
  const hw::CostModel model;
  const double projected = model.QuerySeconds(hw::PiProfile(), s_small);
  const double direct = model.QuerySeconds(hw::PiProfile(), s_big);
  EXPECT_GT(projected / direct, 0.65) << "Q" << q;
  EXPECT_LT(projected / direct, 1.5) << "Q" << q;
}

}  // namespace
}  // namespace wimpi
