#ifndef WIMPI_TESTS_REFERENCE_UTIL_H_
#define WIMPI_TESTS_REFERENCE_UTIL_H_

// Shared row-struct loaders for the reference TPC-H implementations.

#include <string>
#include <vector>

#include "engine/database.h"
#include "reference.h"

namespace wimpi::tpch_ref {

struct LineitemRow {
  int64_t orderkey;
  int32_t partkey, suppkey, linenumber;
  double qty, price, disc, tax;
  std::string rf, ls;
  int32_t ship, commit, receipt;
  std::string instr, mode;
};

struct OrderRow {
  int64_t orderkey;
  int32_t custkey;
  std::string status;
  double totalprice;
  int32_t orderdate;
  std::string priority;
  int32_t shippriority;
  std::string comment;
};

struct CustomerRow {
  int32_t custkey;
  std::string name, address;
  int32_t nationkey;
  std::string phone;
  double acctbal;
  std::string mktsegment, comment;
};

struct SupplierRow {
  int32_t suppkey;
  std::string name, address;
  int32_t nationkey;
  std::string phone;
  double acctbal;
  std::string comment;
};

struct PartRow {
  int32_t partkey;
  std::string name, mfgr, brand, type;
  int32_t size;
  std::string container;
  double retailprice;
};

struct PartsuppRow {
  int32_t partkey, suppkey, availqty;
  double supplycost;
};

struct NationRow {
  int32_t nationkey;
  std::string name;
  int32_t regionkey;
};

struct RegionRow {
  int32_t regionkey;
  std::string name;
};

std::vector<LineitemRow> LoadLineitem(const engine::Database& db);
std::vector<OrderRow> LoadOrders(const engine::Database& db);
std::vector<CustomerRow> LoadCustomer(const engine::Database& db);
std::vector<SupplierRow> LoadSupplier(const engine::Database& db);
std::vector<PartRow> LoadPart(const engine::Database& db);
std::vector<PartsuppRow> LoadPartsupp(const engine::Database& db);
std::vector<NationRow> LoadNation(const engine::Database& db);
std::vector<RegionRow> LoadRegion(const engine::Database& db);

// n_nationkey by name / nation keys in a region, naive scans.
int32_t RefNationKey(const engine::Database& db, const std::string& name);
std::vector<int32_t> RefRegionNations(const engine::Database& db,
                                      const std::string& region);

// Per-query reference entry points.
RefResult RefQ1(const engine::Database& db);
RefResult RefQ2(const engine::Database& db);
RefResult RefQ3(const engine::Database& db);
RefResult RefQ4(const engine::Database& db);
RefResult RefQ5(const engine::Database& db);
RefResult RefQ6(const engine::Database& db);
RefResult RefQ7(const engine::Database& db);
RefResult RefQ8(const engine::Database& db);
RefResult RefQ9(const engine::Database& db);
RefResult RefQ10(const engine::Database& db);
RefResult RefQ11(const engine::Database& db);
RefResult RefQ12(const engine::Database& db);
RefResult RefQ13(const engine::Database& db);
RefResult RefQ14(const engine::Database& db);
RefResult RefQ15(const engine::Database& db);
RefResult RefQ16(const engine::Database& db);
RefResult RefQ17(const engine::Database& db);
RefResult RefQ18(const engine::Database& db);
RefResult RefQ19(const engine::Database& db);
RefResult RefQ20(const engine::Database& db);
RefResult RefQ21(const engine::Database& db);
RefResult RefQ22(const engine::Database& db);

}  // namespace wimpi::tpch_ref

#endif  // WIMPI_TESTS_REFERENCE_UTIL_H_
