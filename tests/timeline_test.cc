// The roofline timeline sampler (ISSUE #10) must be an observer, not a
// participant: every TPC-H query runs bit-identically with the sampler on
// or off, at every thread count. Also covered here:
//   * the saturation / ridge classification math on synthetic counter
//     deltas (no PMU needed);
//   * interval differencing and pipeline-window reconstruction from
//     synthetic sample series;
//   * sampler lifecycle — WIMPI_PERF_DISABLE=1 refusal, double-start
//     refusal, graceful degradation when perf_event_open counts nothing,
//     and start/stop racing query execution (the TSan pass runs this);
//   * the service attachment: QueryResourceReport carries the query's
//     slice, and a slow-query flight dump writes a .timeline.jsonl
//     sidecar;
//   * the modeled side: Q1 is bandwidth-bound on the Pi profile at SF 1,
//     and OpSeconds is exactly the roofline max the classifier uses.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "gtest/gtest.h"
#include "hw/cost_model.h"
#include "hw/profile.h"
#include "obs/clock.h"
#include "obs/timeline/roofline.h"
#include "obs/timeline/sampler.h"
#include "obs/timeline/timeline.h"
#include "service/query_service.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace wimpi {
namespace {

namespace tl = obs::timeline;

const engine::Database& TestDb() {
  static engine::Database* db = nullptr;
  if (db == nullptr) {
    tpch::GenOptions opts;
    opts.scale_factor = 0.01;
    db = new engine::Database(tpch::GenerateDatabase(opts));
  }
  return *db;
}

std::vector<int> ThreadCounts() {
  const int hc =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  std::vector<int> counts = {1, 2, 4};
  if (hc != 1 && hc != 2 && hc != 4) counts.push_back(hc);
  return counts;
}

// Exact (bit-level) relation comparison, same bar as obs_queries_test.
void ExpectRelationsIdentical(const exec::Relation& a,
                              const exec::Relation& b) {
  ASSERT_EQ(a.num_columns(), b.num_columns());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  const int64_t n = a.num_rows();
  for (int c = 0; c < a.num_columns(); ++c) {
    ASSERT_EQ(a.name(c), b.name(c));
    const auto& ca = a.column(c);
    const auto& cb = b.column(c);
    ASSERT_EQ(ca.type(), cb.type()) << "column " << a.name(c);
    for (int64_t r = 0; r < n; ++r) {
      switch (ca.type()) {
        case storage::DataType::kInt64:
          ASSERT_EQ(ca.I64Data()[r], cb.I64Data()[r])
              << a.name(c) << " row " << r;
          break;
        case storage::DataType::kFloat64:
          ASSERT_EQ(ca.F64Data()[r], cb.F64Data()[r])
              << a.name(c) << " row " << r;
          break;
        case storage::DataType::kString:
          ASSERT_EQ(ca.StringAt(r), cb.StringAt(r))
              << a.name(c) << " row " << r;
          break;
        default:
          ASSERT_EQ(ca.I32Data()[r], cb.I32Data()[r])
              << a.name(c) << " row " << r;
          break;
      }
    }
  }
}

// Synthetic sample with cumulative counters (the layout the sampler rings).
obs::timeline::TimelineSample Sample(int64_t ts_us, int64_t instructions,
                                     int64_t cycles, int64_t llc_misses,
                                     int64_t task_clock_ns) {
  tl::TimelineSample s;
  s.ts_us = ts_us;
  if (instructions >= 0) s.perf.Set(obs::PerfEvent::kInstructions, instructions);
  if (cycles >= 0) s.perf.Set(obs::PerfEvent::kCycles, cycles);
  if (llc_misses >= 0) s.perf.Set(obs::PerfEvent::kLlcMisses, llc_misses);
  if (task_clock_ns >= 0) s.perf.Set(obs::PerfEvent::kTaskClockNs, task_clock_ns);
  return s;
}

tl::RooflineSpec SyntheticSpec() {
  tl::RooflineSpec spec;
  spec.profile = "synthetic";
  spec.peak_gbps = 40;
  spec.achievable_gbps = 18;
  spec.saturation_gbps = 10;
  spec.peak_instr_per_sec = 9e9;
  spec.ridge_instr_per_byte = 0.5;  // 9e9 instr/s / 18 GB/s
  return spec;
}

// ---------------------------------------------------------------------------
// Math on synthetic counters
// ---------------------------------------------------------------------------

TEST(TimelineMath, IntervalRatesFromCumulativeCounters) {
  tl::QueryTimeline t;
  t.start_us = 0;
  t.end_us = 2000;
  // 1 ms apart; second tick moved 1e6 instructions, 5e5 cycles, 31250
  // LLC misses (= 2 MB = 2 GB/s), 4e5 ns of task clock (0.4 busy cores).
  t.samples.push_back(Sample(1000, 1000000, 500000, 10000, 100000));
  t.samples.push_back(
      Sample(2000, 2000000, 1000000, 10000 + 31250, 500000));
  const std::vector<tl::TimelineInterval> ivs = t.Intervals();
  ASSERT_EQ(ivs.size(), 1u);
  const tl::TimelineInterval& iv = ivs[0];
  EXPECT_EQ(iv.t0_us, 1000);
  EXPECT_EQ(iv.t1_us, 2000);
  EXPECT_NEAR(iv.dt_s, 1e-3, 1e-9);
  EXPECT_NEAR(iv.gbps, 31250 * 64.0 / 1e-3 / 1e9, 1e-6);  // = 2.0
  EXPECT_NEAR(iv.ipc, 2.0, 1e-9);
  EXPECT_NEAR(iv.instr_per_sec, 1e9, 1);
  EXPECT_NEAR(iv.cpu_util, 0.4, 1e-9);
}

TEST(TimelineMath, UnavailableCountersYieldUnavailableRates) {
  tl::QueryTimeline t;
  t.samples.push_back(Sample(0, -1, -1, -1, -1));
  t.samples.push_back(Sample(1000, -1, -1, -1, -1));
  const std::vector<tl::TimelineInterval> ivs = t.Intervals();
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_LT(ivs[0].gbps, 0);
  EXPECT_LT(ivs[0].ipc, 0);
  EXPECT_LT(ivs[0].cpu_util, 0);
  // Structure is still valid: timestamps survive degradation.
  EXPECT_EQ(ivs[0].t1_us, 1000);
}

TEST(TimelineMath, SaturationClassifiesBandwidthBound) {
  const tl::RooflineSpec spec = SyntheticSpec();
  tl::TimelineInterval iv;
  iv.gbps = 12;  // above the 10 GB/s saturation threshold
  iv.instr_per_sec = 50e9;  // even with huge compute throughput
  EXPECT_EQ(tl::ClassifyInterval(iv, spec), tl::BoundClass::kBandwidth);
}

TEST(TimelineMath, RidgeClassifiesIntensity) {
  const tl::RooflineSpec spec = SyntheticSpec();
  tl::TimelineInterval low;
  low.gbps = 5;                // unsaturated...
  low.instr_per_sec = 1e9;     // 0.2 instr/byte < ridge 0.5
  EXPECT_EQ(tl::ClassifyInterval(low, spec), tl::BoundClass::kBandwidth);

  tl::TimelineInterval high;
  high.gbps = 5;
  high.instr_per_sec = 10e9;   // 2 instr/byte > ridge
  EXPECT_EQ(tl::ClassifyInterval(high, spec), tl::BoundClass::kCompute);
}

TEST(TimelineMath, MissingBandwidthIsUnknown) {
  const tl::RooflineSpec spec = SyntheticSpec();
  tl::TimelineInterval iv;  // gbps = -1
  iv.instr_per_sec = 1e9;
  EXPECT_EQ(tl::ClassifyInterval(iv, spec), tl::BoundClass::kUnknown);
}

TEST(TimelineMath, PipelineWindowReconstruction) {
  tl::QueryTimeline t;
  static const char* kScan = "Scan";
  auto active = [](tl::TimelineSample s, int lane, uint64_t seq,
                   const char* label, uint64_t query) {
    s.active[0] = {lane, query, seq, label};
    s.num_active = 1;
    return s;
  };
  t.samples.push_back(Sample(0, 0, 0, 0, 0));  // idle
  t.samples.push_back(active(Sample(1000, 1000, 1000, 100, 0), 3, 7, kScan, 42));
  t.samples.push_back(active(Sample(2000, 2000, 2000, 200, 0), 3, 7, kScan, 42));
  t.samples.push_back(Sample(3000, 3000, 3000, 300, 0));  // idle again
  const std::vector<tl::PipelineWindow> windows = t.PipelineWindows();
  ASSERT_EQ(windows.size(), 1u);
  const tl::PipelineWindow& w = windows[0];
  EXPECT_EQ(w.lane, 3);
  EXPECT_EQ(w.seq, 7u);
  EXPECT_EQ(w.query_id, 42u);
  EXPECT_STREQ(w.label, "Scan");
  // Start attributed to the tick before first observation.
  EXPECT_EQ(w.t0_us, 0);
  EXPECT_EQ(w.t1_us, 2000);
  // A new seq on the same lane is a new window, not an extension.
  t.samples[3] = active(Sample(3000, 3000, 3000, 300, 0), 3, 9, kScan, 42);
  EXPECT_EQ(t.PipelineWindows().size(), 2u);
}

TEST(TimelineMath, ToJsonlParsesLineByLine) {
  tl::QueryTimeline t;
  t.start_us = 0;
  t.end_us = 2000;
  t.period_us = 1000;
  t.perf_available = true;
  t.samples.push_back(Sample(1000, 1000, 1000, 0, 0));
  t.samples.push_back(Sample(2000, 2000, 2000, 1000, 0));
  std::stringstream ss(t.ToJsonl());
  std::string line;
  int n = 0;
  while (std::getline(ss, line)) {
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonValue::Parse(line, &doc, &error)) << error;
    EXPECT_EQ(doc.GetString("type", ""), n == 0 ? "header" : "interval");
    ++n;
  }
  EXPECT_EQ(n, 2);  // header + one interval
}

// ---------------------------------------------------------------------------
// Sampler lifecycle
// ---------------------------------------------------------------------------

TEST(TimelineSamplerTest, RefusesWhenDisabledByEnv) {
  ::setenv("WIMPI_PERF_DISABLE", "1", 1);
  tl::TimelineSampler& s = tl::TimelineSampler::Global();
  EXPECT_FALSE(s.Start());
  EXPECT_FALSE(s.enabled());
  EXPECT_FALSE(tl::SamplerEnabled());
  EXPECT_NE(s.note().find("WIMPI_PERF_DISABLE"), std::string::npos);
  ::unsetenv("WIMPI_PERF_DISABLE");
}

TEST(TimelineSamplerTest, RefusesDoubleStart) {
  ::unsetenv("WIMPI_PERF_DISABLE");
  tl::TimelineSampler& s = tl::TimelineSampler::Global();
  tl::SamplerOptions opts;
  opts.period_us = 200;
  ASSERT_TRUE(s.Start(opts));
  EXPECT_FALSE(s.Start(opts));
  EXPECT_TRUE(s.enabled());
  s.Stop();
  EXPECT_FALSE(s.enabled());
}

TEST(TimelineSamplerTest, DegradedSamplingStaysMonotoneAndSliceable) {
  ::unsetenv("WIMPI_PERF_DISABLE");
  tl::TimelineSampler& s = tl::TimelineSampler::Global();
  tl::SamplerOptions opts;
  opts.period_us = 200;
  ASSERT_TRUE(s.Start(opts));
  const int64_t t0 = obs::NowMicros();
  // Real work under the sampler, whatever the host's PMU situation.
  engine::Executor ex;
  ex.set_num_threads(2);
  ex.set_morsel_rows(4096);
  ex.Run([&](exec::QueryStats* st) { return tpch::RunQuery(1, TestDb(), st); });
  // The sampler ticks on its own clock; give it a few periods.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const int64_t t1 = obs::NowMicros();
  EXPECT_GT(s.ticks(), 0);
  const tl::QueryTimeline slice = s.Slice(t0, t1);
  s.Stop();
  ASSERT_FALSE(slice.empty());
  int64_t prev = 0;
  for (const tl::TimelineSample& sample : slice.samples) {
    EXPECT_GE(sample.ts_us, t0);
    EXPECT_LT(sample.ts_us, t1);
    EXPECT_GE(sample.ts_us, prev) << "timestamps must be monotone";
    prev = sample.ts_us;
  }
  // Whatever the host's counters, every interval is structurally valid.
  for (const tl::TimelineInterval& iv : slice.Intervals()) {
    EXPECT_GE(iv.t1_us, iv.t0_us);
    EXPECT_GE(iv.num_active, 0);
  }
}

TEST(TimelineSamplerTest, ActivityRegistryPublishesWhileEnabled) {
  ::unsetenv("WIMPI_PERF_DISABLE");
  tl::TimelineSampler& s = tl::TimelineSampler::Global();
  tl::SamplerOptions opts;
  opts.period_us = 10000;  // slow ticks; we read the slots directly
  ASSERT_TRUE(s.Start(opts));
  static const char* kLabel = "probe";
  {
    tl::ScopedPipelineActivity activity(5, kLabel, 99);
    tl::LaneActivity& slot = tl::LaneSlot(5);
    EXPECT_EQ(slot.seq.load() % 2, 1u) << "active lane has odd seq";
    EXPECT_STREQ(slot.label.load(), "probe");
    EXPECT_EQ(slot.query_id.load(), 99u);
  }
  tl::LaneActivity& slot = tl::LaneSlot(5);
  EXPECT_EQ(slot.seq.load() % 2, 0u) << "closed lane has even seq";
  EXPECT_EQ(slot.label.load(), nullptr);
  s.Stop();
  // With the sampler off the scope is a no-op: seq must not move.
  const uint64_t seq_before = slot.seq.load();
  { tl::ScopedPipelineActivity activity(5, kLabel, 99); }
  EXPECT_EQ(slot.seq.load(), seq_before);
}

// The TSan pass runs this: sampler start/stop racing live queries and
// query teardown must be clean.
TEST(TimelineSamplerTest, StartStopRacesQueryExecution) {
  ::unsetenv("WIMPI_PERF_DISABLE");
  tl::TimelineSampler& s = tl::TimelineSampler::Global();
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    tl::SamplerOptions opts;
    opts.period_us = 100;
    while (!stop.load()) {
      s.Start(opts);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      s.Stop();
    }
  });
  for (int lap = 0; lap < 3; ++lap) {
    for (const int q : {1, 6, 14}) {
      engine::Executor ex;
      ex.set_num_threads(4);
      ex.set_morsel_rows(4096);
      ex.Run([&](exec::QueryStats* st) {
        return tpch::RunQuery(q, TestDb(), st);
      });
    }
  }
  stop.store(true);
  toggler.join();
  EXPECT_FALSE(s.enabled());
}

// ---------------------------------------------------------------------------
// Service attachment
// ---------------------------------------------------------------------------

TEST(TimelineServiceTest, ResourceReportCarriesTimeline) {
  ::unsetenv("WIMPI_PERF_DISABLE");
  tl::TimelineSampler& s = tl::TimelineSampler::Global();
  tl::SamplerOptions opts;
  opts.period_us = 200;
  ASSERT_TRUE(s.Start(opts));
  {
    service::ServiceOptions sopts;
    sopts.max_active = 2;
    service::QueryService svc(sopts);
    service::QuerySpec spec;
    spec.label = "q1";
    spec.plan = [](exec::QueryStats* st) {
      // Keep the query on the sampler's clock long enough to catch ticks.
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
      return tpch::RunQuery(1, TestDb(), st);
    };
    service::QueryTicket ticket = svc.Submit(std::move(spec));
    ASSERT_TRUE(ticket.Wait().ok());
    const obs::flight::QueryResourceReport& r = ticket.resources();
    EXPECT_TRUE(r.timeline_valid);
    EXPECT_FALSE(r.timeline.samples.empty());
    for (const tl::TimelineSample& sample : r.timeline.samples) {
      EXPECT_GE(sample.ts_us, r.timeline.start_us);
      EXPECT_LT(sample.ts_us, r.timeline.end_us);
    }
  }
  s.Stop();

  // Sampler off: reports carry no timeline.
  service::ServiceOptions sopts;
  service::QueryService svc(sopts);
  service::QuerySpec spec;
  spec.plan = [](exec::QueryStats* st) {
    return tpch::RunQuery(6, TestDb(), st);
  };
  service::QueryTicket ticket = svc.Submit(std::move(spec));
  ASSERT_TRUE(ticket.Wait().ok());
  EXPECT_FALSE(ticket.resources().timeline_valid);
}

TEST(TimelineServiceTest, SlowQueryDumpWritesTimelineSidecar) {
  ::unsetenv("WIMPI_PERF_DISABLE");
  tl::TimelineSampler& s = tl::TimelineSampler::Global();
  tl::SamplerOptions opts;
  opts.period_us = 200;
  ASSERT_TRUE(s.Start(opts));
  const std::string dump = ::testing::TempDir() + "timeline_dump.json";
  {
    service::ServiceOptions sopts;
    sopts.flight.latency_threshold_us = 1;  // everything is slow
    sopts.flight.dump_path = dump;
    sopts.flight.max_dumps = 1;
    service::QueryService svc(sopts);
    service::QuerySpec spec;
    spec.label = "slow";
    spec.plan = [](exec::QueryStats* st) {
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
      return tpch::RunQuery(6, TestDb(), st);
    };
    ASSERT_TRUE(svc.Submit(std::move(spec)).Wait().ok());
  }  // ~QueryService flushes pending dumps
  s.Stop();

  std::ifstream sidecar(dump + ".timeline.jsonl");
  ASSERT_TRUE(sidecar.is_open())
      << "slow-query dump must write a timeline sidecar";
  std::string line;
  int lines = 0;
  bool header = false;
  while (std::getline(sidecar, line)) {
    if (line.empty()) continue;
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonValue::Parse(line, &doc, &error)) << error;
    if (doc.GetString("type", "") == "header") header = true;
    ++lines;
  }
  EXPECT_TRUE(header);
  EXPECT_GE(lines, 1);
  std::remove((dump + ".timeline.jsonl").c_str());
  std::remove(dump.c_str());
}

// ---------------------------------------------------------------------------
// Modeled side
// ---------------------------------------------------------------------------

TEST(TimelineModelTest, Q1IsBandwidthBoundOnThePiAtSf1) {
  engine::Executor ex;
  ex.set_num_threads(1);
  exec::QueryStats stats;
  ex.Run([&](exec::QueryStats* st) { return tpch::RunQuery(1, TestDb(), st); },
         &stats);
  stats.Scale(100);  // SF 0.01 counters -> the paper's SF 1 claim
  const hw::CostModel model;
  const hw::HardwareProfile& pi = hw::ProfileByName("pi3b+");
  double frac = 0;
  EXPECT_EQ(tl::ModeledQueryBound(model, pi, stats, pi.threads, &frac),
            tl::BoundClass::kBandwidth);
  EXPECT_GT(frac, 0.5);
}

TEST(TimelineModelTest, OpSecondsEqualsRooflineMax) {
  engine::Executor ex;
  ex.set_num_threads(1);
  exec::QueryStats stats;
  ex.Run([&](exec::QueryStats* st) { return tpch::RunQuery(6, TestDb(), st); },
         &stats);
  const hw::CostModel model;
  for (const auto* p : {&hw::ProfileByName("pi3b+"),
                        &hw::ProfileByName("op-gold")}) {
    for (const auto& op : stats.ops) {
      const hw::CostModel::OpRoofs roofs = model.OpRoofline(*p, op);
      const double expected =
          std::max(roofs.compute_s, roofs.seq_s) + roofs.rand_s;
      EXPECT_NEAR(model.OpSeconds(*p, op), expected, expected * 1e-12);
    }
  }
}

TEST(TimelineModelTest, RooflineSpecFromProfileIsConsistent) {
  const hw::CostModel model;
  const hw::HardwareProfile& pi = hw::ProfileByName("pi3b+");
  const tl::RooflineSpec spec =
      tl::RooflineSpec::FromProfile(pi, pi.threads, model);
  EXPECT_DOUBLE_EQ(spec.peak_gbps, pi.mem_bw_all_gbps);
  EXPECT_GT(spec.achievable_gbps, 0);
  EXPECT_LT(spec.achievable_gbps, spec.peak_gbps);
  EXPECT_GT(spec.saturation_gbps, 0);
  EXPECT_LT(spec.saturation_gbps, spec.achievable_gbps);
  EXPECT_GT(spec.ridge_instr_per_byte, 0);
}

// ---------------------------------------------------------------------------
// Bit-identity across all 22 queries and all thread counts
// ---------------------------------------------------------------------------

class TimelineQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(TimelineQueryTest, SampledRunIsBitIdenticalAtEveryThreadCount) {
  ::unsetenv("WIMPI_PERF_DISABLE");
  const int q = GetParam();
  const engine::Database& db = TestDb();
  tl::TimelineSampler& sampler = tl::TimelineSampler::Global();

  for (const int threads : ThreadCounts()) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    engine::Executor ex;
    ex.set_num_threads(threads);
    ex.set_morsel_rows(4096);  // real fan-out even at SF 0.01

    const exec::Relation plain =
        ex.Run([&](exec::QueryStats* s) { return tpch::RunQuery(q, db, s); });

    tl::SamplerOptions opts;
    opts.period_us = 200;  // aggressive: several ticks even in short queries
    ASSERT_TRUE(sampler.Start(opts));
    const exec::Relation sampled =
        ex.Run([&](exec::QueryStats* s) { return tpch::RunQuery(q, db, s); });
    sampler.Stop();

    ExpectRelationsIdentical(sampled, plain);
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TimelineQueryTest,
                         ::testing::Range(1, 23));

}  // namespace
}  // namespace wimpi
