// Column statistics & plan-quality observability (DESIGN.md §13):
//   * HyperLogLog accuracy (< 3% relative error at the default 2^14
//     registers across a cardinality sweep) and shard-merge identity;
//   * equi-depth histogram accuracy on uniform, point-mass-skewed, and
//     real TPC-H distributions (key-like l_orderkey, low-NDV
//     l_returnflag);
//   * BuildTableStats determinism: bit-identical statistics at any thread
//     count, and sampled builds that stay close to eager ones;
//   * StatsRegistry selectivity / join-cardinality estimates against
//     ground truth, lazy auto-collect, and concurrent collect+estimate
//     (the TSan target for the registry's shared_mutex paths);
//   * cardinality capture end to end: all 22 TPC-H answers bit-identical
//     with the estimator installed, rows_in/rows_out recorded, Q-error
//     residual reports (including Scale() invariance) and their metrics /
//     exposition round trip.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "exec/exec_options.h"
#include "exec/filter.h"
#include "gtest/gtest.h"
#include "obs/export/exposition.h"
#include "obs/metrics.h"
#include "obs/residual.h"
#include "stats/registry.h"
#include "stats/sketch.h"
#include "stats/table_stats.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace wimpi {
namespace {

engine::Database& TestDb() {
  static engine::Database* db = nullptr;
  if (db == nullptr) {
    tpch::GenOptions opts;
    opts.scale_factor = 0.01;
    db = new engine::Database(tpch::GenerateDatabase(opts));
  }
  return *db;
}

double ValueAt(const storage::Column& col, int64_t row) {
  switch (col.type()) {
    case storage::DataType::kInt64:
      return static_cast<double>(col.I64Data()[row]);
    case storage::DataType::kFloat64:
      return col.F64Data()[row];
    default:
      return static_cast<double>(col.I32Data()[row]);
  }
}

// Exact fraction of rows with value <= v.
double TrueFractionAtMost(const storage::Column& col, double v) {
  const int64_t n = col.size();
  int64_t c = 0;
  for (int64_t r = 0; r < n; ++r) c += ValueAt(col, r) <= v ? 1 : 0;
  return n == 0 ? 0 : static_cast<double>(c) / static_cast<double>(n);
}

int64_t ExactNdv(const storage::Column& col) {
  std::set<double> s;
  for (int64_t r = 0; r < col.size(); ++r) s.insert(ValueAt(col, r));
  return static_cast<int64_t>(s.size());
}

// ---------------------------------------------------------------------------
// HyperLogLog
// ---------------------------------------------------------------------------

TEST(HllSketchTest, RelativeErrorUnderThreePercentAcrossSweep) {
  // Standard error at p=14 is ~0.8%; 3% is nearly 4 sigma, so this sweep
  // is a real accuracy gate, not a tautology.
  for (const int64_t n : {100LL, 1000LL, 10'000LL, 100'000LL, 1'000'000LL}) {
    stats::HllSketch hll;
    for (int64_t i = 0; i < n; ++i) {
      hll.AddHash(HashInt64(static_cast<uint64_t>(i)));
    }
    const double est = hll.Estimate();
    const double rel = std::abs(est - static_cast<double>(n)) / n;
    EXPECT_LT(rel, 0.03) << "n=" << n << " est=" << est;
  }
}

TEST(HllSketchTest, DuplicatesDoNotInflate) {
  stats::HllSketch hll;
  for (int64_t i = 0; i < 500'000; ++i) {
    hll.AddHash(HashInt64(static_cast<uint64_t>(i % 100)));
  }
  EXPECT_NEAR(hll.Estimate(), 100, 3);
}

TEST(HllSketchTest, ShardMergeMatchesSequentialBitForBit) {
  // Register-wise max is what makes parallel collection deterministic:
  // any partitioning of the input merged in any order must reproduce the
  // sequential registers exactly.
  constexpr int64_t kN = 200'000;
  stats::HllSketch sequential;
  for (int64_t i = 0; i < kN; ++i) {
    sequential.AddHash(HashInt64(static_cast<uint64_t>(i)));
  }
  constexpr int kShards = 7;  // deliberately not a divisor of kN
  std::vector<stats::HllSketch> shards(kShards);
  for (int64_t i = 0; i < kN; ++i) {
    shards[i % kShards].AddHash(HashInt64(static_cast<uint64_t>(i)));
  }
  // Merge back-to-front to exercise a non-insertion order.
  stats::HllSketch merged;
  for (int s = kShards - 1; s >= 0; --s) merged.Merge(shards[s]);
  EXPECT_EQ(merged.registers(), sequential.registers());
  EXPECT_EQ(merged.Estimate(), sequential.Estimate());
}

// ---------------------------------------------------------------------------
// Equi-depth histogram
// ---------------------------------------------------------------------------

TEST(EquiDepthHistogramTest, UniformQuantilesWithinOneBucket) {
  std::vector<double> sample;
  for (int i = 0; i < 10'000; ++i) sample.push_back(i);
  const auto h = stats::EquiDepthHistogram::FromSample(sample, 64);
  ASSERT_FALSE(h.empty());
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 9999);
  // One of 64 buckets holds ~1.6% of the mass; quantiles must land within
  // about one bucket of truth.
  for (int i = 1; i <= 9; ++i) {
    const double q = i / 10.0;
    EXPECT_NEAR(h.Quantile(q), q * 9999, 9999.0 / 32) << "q=" << q;
    EXPECT_NEAR(h.FractionAtMost(q * 9999), q, 1.0 / 32) << "q=" << q;
  }
}

TEST(EquiDepthHistogramTest, PointMassResolvedExactly) {
  // 90% zeros, 10% spread: the duplicate-bound collapse must keep the
  // point mass at 0 visible as the <= / < gap.
  std::vector<double> sample;
  for (int i = 0; i < 9000; ++i) sample.push_back(0);
  for (int i = 0; i < 1000; ++i) sample.push_back(1 + i);
  const auto h = stats::EquiDepthHistogram::FromSample(sample, 64);
  ASSERT_FALSE(h.empty());
  EXPECT_NEAR(h.FractionAtMost(0), 0.9, 1e-9);
  EXPECT_NEAR(h.FractionBelow(0), 0.0, 1e-9);
  EXPECT_NEAR(h.FractionAtMost(1000), 1.0, 0.05);
}

TEST(EquiDepthHistogramTest, EmptyAndSingletonSamples) {
  EXPECT_TRUE(stats::EquiDepthHistogram::FromSample({}, 64).empty());
  const auto h = stats::EquiDepthHistogram::FromSample({42.0}, 64);
  if (!h.empty()) {
    EXPECT_NEAR(h.FractionAtMost(42), 1.0, 1e-9);
    EXPECT_NEAR(h.FractionAtMost(41), 0.0, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// BuildTableStats on real TPC-H data
// ---------------------------------------------------------------------------

TEST(BuildTableStatsTest, LineitemAccuracy) {
  const storage::Table& li = TestDb().table("lineitem");
  const stats::TableStats ts = stats::BuildTableStats(li);
  EXPECT_EQ(ts.row_count, li.num_rows());

  // Key-like column with duplicates (1-7 lineitems per order).
  const stats::ColumnStats* okey = ts.Find("l_orderkey");
  ASSERT_NE(okey, nullptr);
  const double okey_exact =
      static_cast<double>(ExactNdv(li.column("l_orderkey")));
  EXPECT_LT(std::abs(okey->ndv - okey_exact) / okey_exact, 0.03);

  // Low-NDV column: linear counting makes this essentially exact.
  const stats::ColumnStats* flag = ts.Find("l_returnflag");
  ASSERT_NE(flag, nullptr);
  EXPECT_NEAR(flag->ndv, 3, 0.1);
  EXPECT_FALSE(flag->numeric());
  EXPECT_GT(flag->avg_width, 0);

  // Histogram rank accuracy on a date column: the histogram's answer for
  // FractionAtMost must track the exact CDF within a few buckets.
  const stats::ColumnStats* ship = ts.Find("l_shipdate");
  ASSERT_NE(ship, nullptr);
  ASSERT_FALSE(ship->histogram.empty());
  const storage::Column& ship_col = li.column("l_shipdate");
  for (int i = 1; i <= 9; ++i) {
    const double q = i / 10.0;
    const double v = ship->histogram.Quantile(q);
    EXPECT_NEAR(TrueFractionAtMost(ship_col, v), q, 0.05) << "q=" << q;
  }
  // Eager build: min/max are exact.
  double true_min = ValueAt(ship_col, 0), true_max = ValueAt(ship_col, 0);
  for (int64_t r = 1; r < ship_col.size(); ++r) {
    true_min = std::min(true_min, ValueAt(ship_col, r));
    true_max = std::max(true_max, ValueAt(ship_col, r));
  }
  EXPECT_EQ(ship->min_value, true_min);
  EXPECT_EQ(ship->max_value, true_max);
}

TEST(BuildTableStatsTest, BitIdenticalAtAnyThreadCount) {
  const storage::Table& li = TestDb().table("lineitem");
  stats::TableStats base;
  {
    exec::ExecOptions opts;  // sequential
    exec::ScopedExecOptions scope(opts);
    base = stats::BuildTableStats(li);
  }
  for (const int threads : {2, 4, 16}) {
    exec::ExecOptions opts;
    opts.num_threads = threads;
    opts.morsel_rows = 4096;  // force real fan-out at SF 0.01
    exec::ScopedExecOptions scope(opts);
    const stats::TableStats par = stats::BuildTableStats(li);
    ASSERT_EQ(par.columns.size(), base.columns.size());
    for (const auto& [name, cs] : base.columns) {
      const stats::ColumnStats* pc = par.Find(name);
      ASSERT_NE(pc, nullptr) << name;
      SCOPED_TRACE(name + " @" + std::to_string(threads) + " threads");
      // Bit-equal, not approximately equal: shard merge is exact.
      EXPECT_EQ(pc->ndv, cs.ndv);
      EXPECT_EQ(pc->min_value, cs.min_value);
      EXPECT_EQ(pc->max_value, cs.max_value);
      EXPECT_EQ(pc->avg_width, cs.avg_width);
      EXPECT_EQ(pc->sample_rows, cs.sample_rows);
      EXPECT_EQ(pc->histogram.bounds(), cs.histogram.bounds());
    }
  }
}

TEST(BuildTableStatsTest, SampledBuildStaysClose) {
  const storage::Table& li = TestDb().table("lineitem");
  const stats::TableStats eager = stats::BuildTableStats(li);
  stats::StatsBuildOptions opts;
  opts.scan_stride = 16;
  const stats::TableStats sampled = stats::BuildTableStats(li, opts);
  EXPECT_EQ(sampled.row_count, li.num_rows());

  const stats::ColumnStats* se = sampled.Find("l_extendedprice");
  const stats::ColumnStats* ee = eager.Find("l_extendedprice");
  ASSERT_NE(se, nullptr);
  ASSERT_NE(ee, nullptr);
  EXPECT_LT(se->sample_rows, ee->sample_rows);

  // Unique key: a stride sample sees all-distinct values and the linear
  // scale-up reconstructs ~|rows| exactly (the case it is designed for).
  const storage::Table& ord = TestDb().table("orders");
  const stats::TableStats sampled_ord = stats::BuildTableStats(ord, opts);
  const double ord_rows = static_cast<double>(ord.num_rows());
  EXPECT_NEAR(sampled_ord.Find("o_orderkey")->ndv / ord_rows, 1.0, 0.1);

  // FK column with small multiplicity (~4 lineitems per order): a 1/16
  // stride sample cannot distinguish it from a unique key, so the scaled
  // NDV over-estimates — but never below the eager estimate and never
  // above the row count (the documented failure direction; selectivities
  // built on it err toward less filtering, not more).
  const stats::ColumnStats* sk = sampled.Find("l_orderkey");
  const stats::ColumnStats* ek = eager.Find("l_orderkey");
  EXPECT_GE(sk->ndv, 0.9 * ek->ndv);
  EXPECT_LE(sk->ndv, static_cast<double>(li.num_rows()));
  // Low-NDV column: sampling cannot miss any of 3 heavy values.
  EXPECT_NEAR(sampled.Find("l_returnflag")->ndv, 3, 0.1);
}

// ---------------------------------------------------------------------------
// StatsRegistry estimates vs ground truth
// ---------------------------------------------------------------------------

TEST(StatsRegistryTest, SelectivityTracksGroundTruth) {
  stats::StatsRegistry reg;
  reg.Collect(*TestDb().table_ptr("lineitem"));

  const storage::Column& qty = TestDb().table("lineitem").column("l_quantity");
  const double truth = TrueFractionAtMost(qty, 25);
  const double est = reg.EstimateSelectivity(
      "lineitem", {exec::Predicate::CmpF64("l_quantity", exec::CmpOp::kLe, 25)});
  EXPECT_NEAR(est, truth, 0.05);

  // Conjunction under independence: product of marginals.
  const double est2 = reg.EstimateSelectivity(
      "lineitem",
      {exec::Predicate::CmpF64("l_quantity", exec::CmpOp::kLe, 25),
       exec::Predicate::StrEq("l_returnflag", "R")});
  EXPECT_GT(est2, 0);
  EXPECT_LT(est2, est);

  // Unknown table: no knowledge means no reduction assumed.
  EXPECT_EQ(reg.EstimateSelectivity(
                "nope", {exec::Predicate::CmpF64("x", exec::CmpOp::kLe, 1)}),
            1.0);
}

TEST(StatsRegistryTest, ForeignKeyJoinCardinality) {
  stats::StatsRegistry reg;
  reg.Collect(*TestDb().table_ptr("orders"));
  reg.Collect(*TestDb().table_ptr("lineitem"));
  const double li_rows =
      static_cast<double>(TestDb().table("lineitem").num_rows());
  // FK join: every lineitem matches exactly one order, so the true output
  // is |lineitem|. The estimate uses NDV(o_orderkey) ~ |orders|, so it
  // must land within HLL error of the truth.
  const double est = reg.EstimateJoinCardinality(
      "orders", "lineitem", {{"o_orderkey", "l_orderkey"}});
  ASSERT_GT(est, 0);
  EXPECT_GT(est, 0.8 * li_rows);
  EXPECT_LT(est, 1.25 * li_rows);
}

TEST(StatsRegistryTest, GroupByEstimateUsesNdv) {
  stats::StatsRegistry reg;
  reg.Collect(*TestDb().table_ptr("lineitem"));
  const storage::Table& li = TestDb().table("lineitem");
  const exec::ColumnSource src(li);
  // Q1's grouping: 3 flags x 2 statuses -> at most 6 groups (4 real).
  const double est = reg.EstimateGroupRows(
      src, {"l_returnflag", "l_linestatus"}, li.num_rows());
  ASSERT_GT(est, 0);
  EXPECT_LE(est, 10);
}

TEST(StatsRegistryTest, AutoCollectBuildsStatsLazily) {
  stats::StatsRegistry reg;
  reg.EnableAutoCollect(&TestDb());
  const storage::Table& li = TestDb().table("lineitem");
  const exec::ColumnSource src(li);
  const auto pred = exec::Predicate::CmpF64("l_quantity", exec::CmpOp::kLe, 25);

  // Flag off (default): no estimate, nothing collected.
  EXPECT_LT(reg.EstimateFilterRows(src, pred, li.num_rows()), 0);
  EXPECT_EQ(reg.Find("lineitem"), nullptr);

  // Flag on: the first estimate triggers a sampled build.
  exec::ExecOptions opts;
  opts.collect_scan_stats = true;
  exec::ScopedExecOptions scope(opts);
  const double est = reg.EstimateFilterRows(src, pred, li.num_rows());
  EXPECT_GE(est, 0);
  ASSERT_NE(reg.Find("lineitem"), nullptr);
  // Sampled, not eager.
  const stats::ColumnStats* cs = reg.FindColumn("lineitem", "l_quantity");
  ASSERT_NE(cs, nullptr);
  EXPECT_LT(cs->sample_rows, cs->row_count);
}

TEST(StatsRegistryTest, ConcurrentCollectAndEstimate) {
  // TSan target: exclusive-lock collection of several tables racing with
  // shared-lock estimation against an already-collected one.
  stats::StatsRegistry reg;
  reg.Collect(*TestDb().table_ptr("lineitem"));
  const std::vector<std::string> to_collect = {"orders", "customer", "part",
                                               "supplier", "nation", "region"};
  std::vector<std::thread> workers;
  for (const auto& name : to_collect) {
    workers.emplace_back(
        [&reg, name] { reg.Collect(*TestDb().table_ptr(name)); });
  }
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&reg] {
      for (int i = 0; i < 200; ++i) {
        const double est = reg.EstimateSelectivity(
            "lineitem",
            {exec::Predicate::CmpF64("l_quantity", exec::CmpOp::kLe, 25)});
        ASSERT_GE(est, 0);
        ASSERT_LE(est, 1);
      }
    });
  }
  for (auto& w : workers) w.join();
  for (const auto& name : to_collect) {
    EXPECT_NE(reg.Find(name), nullptr) << name;
  }
}

// ---------------------------------------------------------------------------
// Cardinality capture end to end
// ---------------------------------------------------------------------------

void ExpectRelationsIdentical(const exec::Relation& a,
                              const exec::Relation& b) {
  ASSERT_EQ(a.num_columns(), b.num_columns());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  const int64_t n = a.num_rows();
  for (int c = 0; c < a.num_columns(); ++c) {
    ASSERT_EQ(a.name(c), b.name(c));
    const auto& ca = a.column(c);
    const auto& cb = b.column(c);
    ASSERT_EQ(ca.type(), cb.type()) << "column " << a.name(c);
    for (int64_t r = 0; r < n; ++r) {
      switch (ca.type()) {
        case storage::DataType::kInt64:
          ASSERT_EQ(ca.I64Data()[r], cb.I64Data()[r]) << a.name(c) << " " << r;
          break;
        case storage::DataType::kFloat64:
          ASSERT_EQ(ca.F64Data()[r], cb.F64Data()[r]) << a.name(c) << " " << r;
          break;
        case storage::DataType::kString:
          ASSERT_EQ(ca.StringAt(r), cb.StringAt(r)) << a.name(c) << " " << r;
          break;
        default:
          ASSERT_EQ(ca.I32Data()[r], cb.I32Data()[r]) << a.name(c) << " " << r;
          break;
      }
    }
  }
}

TEST(CardinalityCaptureTest, AllQueriesBitIdenticalWithEstimator) {
  stats::StatsRegistry reg;
  reg.CollectDatabase(TestDb());
  for (int q = 1; q <= 22; ++q) {
    SCOPED_TRACE("Q" + std::to_string(q));
    engine::Executor plain;
    plain.set_num_threads(2);
    exec::QueryStats plain_stats;
    const exec::Relation without = plain.Run(
        [&](exec::QueryStats* s) { return tpch::RunQuery(q, TestDb(), s); },
        &plain_stats);

    engine::Executor ex;
    ex.set_num_threads(2);
    ex.set_cardinality_estimator(&reg);
    exec::QueryStats stats;
    const exec::Relation with = ex.Run(
        [&](exec::QueryStats* s) { return tpch::RunQuery(q, TestDb(), s); },
        &stats);

    ExpectRelationsIdentical(with, without);

    // No estimator installed -> est_rows stays -1 everywhere.
    for (const auto& op : plain_stats.ops) {
      ASSERT_EQ(op.est_rows, -1) << op.op;
    }
    // Estimator installed -> every query has estimated operators.
    const obs::CardinalityReport rep = obs::CardinalityResiduals(stats);
    EXPECT_GT(rep.estimated, 0);
    EXPECT_GE(rep.recorded, rep.estimated);
    EXPECT_GE(rep.max_q, 1);
  }
}

TEST(CardinalityCaptureTest, FilterRecordsInputAndOutputRows) {
  engine::Executor ex;
  exec::QueryStats stats;
  ex.Run([&](exec::QueryStats* s) { return tpch::RunQuery(6, TestDb(), s); },
         &stats);
  bool found = false;
  for (const auto& op : stats.ops) {
    if (op.op.rfind("filter(", 0) == 0) {
      found = true;
      EXPECT_GE(op.rows_in, 0) << op.op;
      EXPECT_GE(op.rows_out, 0) << op.op;
      EXPECT_LE(op.rows_out, op.rows_in) << op.op;
    }
  }
  EXPECT_TRUE(found) << "Q6 produced no filter OpStats";
}

// ---------------------------------------------------------------------------
// Q-error residuals
// ---------------------------------------------------------------------------

TEST(QErrorTest, Definition) {
  EXPECT_EQ(obs::QError(10, 5), 2);
  EXPECT_EQ(obs::QError(5, 10), 2);
  EXPECT_EQ(obs::QError(7, 7), 1);
  // Zero-row sides clamp to one row instead of producing infinities.
  EXPECT_EQ(obs::QError(0, 0), 1);
  EXPECT_EQ(obs::QError(0, 50), 50);
  EXPECT_EQ(obs::QError(50, 0), 50);
}

exec::QueryStats SyntheticStats() {
  exec::QueryStats qs;
  exec::OpStats scan;
  scan.op = "scan(lineitem)";
  scan.rows_in = 1000;
  scan.rows_out = 1000;  // recorded, never estimated
  qs.Add(scan);
  exec::OpStats f1;
  f1.op = "filter(l_shipdate)";
  f1.rows_in = 1000;
  f1.rows_out = 100;
  f1.est_rows = 200;  // Q = 2
  qs.Add(f1);
  exec::OpStats f2;
  f2.op = "filter(l_quantity)";
  f2.rows_in = 1000;
  f2.rows_out = 500;
  f2.est_rows = 125;  // Q = 4, worst
  qs.Add(f2);
  exec::OpStats join;
  join.op = "hash_probe(orders)";
  join.rows_in = 100;
  join.rows_out = 100;
  join.est_rows = 100;  // Q = 1
  qs.Add(join);
  return qs;
}

TEST(CardinalityResidualsTest, AggregatesPerClass) {
  const obs::CardinalityReport rep =
      obs::CardinalityResiduals(SyntheticStats(), "synthetic");
  EXPECT_EQ(rep.label, "synthetic");
  EXPECT_EQ(rep.recorded, 4);
  EXPECT_EQ(rep.estimated, 3);
  EXPECT_EQ(rep.max_q, 4);
  // geomean over {2, 4, 1} = 2
  EXPECT_NEAR(rep.geomean_q, 2.0, 1e-9);
  ASSERT_FALSE(rep.classes.empty());
  // Classes sorted by max_q descending: filter (4) first.
  EXPECT_EQ(rep.classes.front().op_class, "filter");
  EXPECT_EQ(rep.classes.front().ops, 2);
  EXPECT_EQ(rep.classes.front().max_q, 4);
  EXPECT_EQ(rep.classes.front().worst.op, "filter(l_quantity)");
  // Entries worst-first.
  ASSERT_EQ(rep.entries.size(), 3u);
  EXPECT_EQ(rep.entries.front().q_error, 4);
  // The report renders without crashing and names the worst offender.
  EXPECT_NE(rep.Format().find("filter"), std::string::npos);
}

TEST(CardinalityResidualsTest, QErrorInvariantUnderScale) {
  // SF projection scales est and actual together, so plan quality must
  // read the same after QueryStats::Scale.
  exec::QueryStats qs = SyntheticStats();
  const obs::CardinalityReport before = obs::CardinalityResiduals(qs);
  qs.Scale(10);
  const obs::CardinalityReport after = obs::CardinalityResiduals(qs);
  EXPECT_EQ(after.recorded, before.recorded);
  EXPECT_EQ(after.estimated, before.estimated);
  EXPECT_EQ(after.max_q, before.max_q);
  EXPECT_NEAR(after.geomean_q, before.geomean_q, 1e-12);
}

TEST(CardinalityResidualsTest, NoEstimatesProducesEmptyReport) {
  exec::QueryStats qs;
  exec::OpStats scan;
  scan.op = "scan(lineitem)";
  scan.rows_in = 10;
  scan.rows_out = 10;
  qs.Add(scan);
  const obs::CardinalityReport rep = obs::CardinalityResiduals(qs);
  EXPECT_EQ(rep.recorded, 1);
  EXPECT_EQ(rep.estimated, 0);
  EXPECT_EQ(rep.max_q, 1);
  EXPECT_TRUE(rep.classes.empty());
  EXPECT_FALSE(rep.Format().empty());
}

TEST(CardinalityMetricsTest, PublishesAndExposes) {
  obs::MetricsRegistry::Global().ResetForTesting();
  const obs::CardinalityReport rep =
      obs::CardinalityResiduals(SyntheticStats());
  obs::RecordCardinalityMetrics(rep);

  const auto scalars = obs::MetricsRegistry::Global().ScalarSnapshot();
  const auto find = [&](const std::string& k) {
    const auto it = scalars.find(k);
    return it == scalars.end() ? -1.0 : it->second;
  };
  EXPECT_EQ(find("stats.qerror.ops.recorded"), 4);
  EXPECT_EQ(find("stats.qerror.ops.estimated"), 3);
  EXPECT_EQ(find("stats.qerror.max"), 4);

  // Max gauge is monotone across reports.
  exec::QueryStats mild;
  exec::OpStats op;
  op.op = "filter(x)";
  op.rows_in = 10;
  op.rows_out = 10;
  op.est_rows = 10;
  mild.Add(op);
  obs::RecordCardinalityMetrics(obs::CardinalityResiduals(mild));
  EXPECT_EQ(obs::MetricsRegistry::Global()
                .ScalarSnapshot()
                .at("stats.qerror.max"),
            4);

  // The exposition writer renders the Q-error histogram family and the
  // parser reads it back.
  const std::string text = obs::ExpositionFormat::WriteGlobal();
  EXPECT_NE(text.find("wimpi_stats_qerror_bucket"), std::string::npos);
  EXPECT_NE(text.find("wimpi_stats_qerror_class_filter"), std::string::npos);
  std::vector<obs::ExpositionSample> samples;
  std::string error;
  ASSERT_TRUE(obs::ExpositionFormat::Parse(text, &samples, &error)) << error;
  obs::MetricsRegistry::Global().ResetForTesting();
}

}  // namespace
}  // namespace wimpi
